package aqp_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	aqp "repro"
)

// TestConcurrentQueriesWithWriter runs mixed exact, advisor-routed,
// online, and OLA queries from many goroutines against one DB while a
// writer appends rows — the embedded-library analogue of the aqpd
// stress test. Under -race this verifies snapshot isolation of scans
// and the engines' internal locking.
func TestConcurrentQueriesWithWriter(t *testing.T) {
	db := aqp.New()
	tbl, err := db.CreateTable("t", aqp.Schema{
		{Name: "id", Type: aqp.TypeInt64},
		{Name: "x", Type: aqp.TypeFloat64},
		{Name: "g", Type: aqp.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	const seedRows = 50000
	batch := make([][]aqp.Value, 0, 8192)
	for i := 0; i < seedRows; i++ {
		batch = append(batch, []aqp.Value{
			aqp.Int64(int64(i)),
			aqp.Float64(float64(i % 1000)),
			aqp.Str(fmt.Sprintf("g%d", i%4)),
		})
		if len(batch) == cap(batch) {
			if err := tbl.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := tbl.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildSynopsis("t", "x"); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildOfflineSamples("t", [][]string{{"g"}}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writerErr atomic.Value
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := tbl.AppendRow(
				aqp.Int64(int64(seedRows+i)),
				aqp.Float64(float64(i%1000)),
				aqp.Str(fmt.Sprintf("g%d", i%4)),
			)
			if err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()

	spec := aqp.ErrorSpec{RelError: 0.05, Confidence: 0.95}
	workers := []func(context.Context) error{
		func(ctx context.Context) error {
			res, err := db.QueryContext(ctx, "SELECT COUNT(*), SUM(x) FROM t")
			if err != nil {
				return err
			}
			// A snapshot is internally consistent: COUNT must be at
			// least the seeded prefix, SUM nonnegative.
			if res.Float(0, 0) < seedRows {
				return fmt.Errorf("COUNT(*) = %v < seeded %d", res.Float(0, 0), seedRows)
			}
			return nil
		},
		func(ctx context.Context) error {
			_, err := db.QueryApproxContext(ctx, "SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%")
			return err
		},
		func(ctx context.Context) error {
			_, err := db.QueryOnlineContext(ctx, "SELECT AVG(x) FROM t GROUP BY g", spec)
			return err
		},
		func(ctx context.Context) error {
			res, err := db.QueryOLAContext(ctx, "SELECT AVG(x) FROM t", spec)
			if err != nil {
				return err
			}
			if len(res.Items) == 0 || !res.Items[0][0].HasCI {
				return errors.New("ola answer lacks CI")
			}
			return nil
		},
		func(ctx context.Context) error {
			_, err := db.QueryOfflineContext(ctx, "SELECT SUM(x) FROM t", spec)
			return err
		},
		func(ctx context.Context) error {
			_, err := db.Advise("SELECT COUNT(*) FROM t WHERE x > 500 WITH ERROR 5%")
			return err
		},
	}

	const goroutines = 16
	const iters = 6
	errc := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := workers[(g+i)%len(workers)](ctx); err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := writerErr.Load(); err != nil {
		t.Fatalf("writer failed: %v", err)
	}
}

// TestQueryContextDeadline checks the two deadline behaviors side by
// side at the library level: exact fails with ctx.Err, OLA degrades to
// its best partial estimate.
func TestQueryContextDeadline(t *testing.T) {
	db := aqp.New(aqp.WithOLAConfig(aqp.OLAConfig{
		ChunkRows: 1024, MaxFraction: 1, StopWhenSpecMet: false, Seed: 3, MaxBuildRows: 1 << 20,
	}))
	tbl, err := db.CreateTable("big", aqp.Schema{{Name: "x", Type: aqp.TypeFloat64}})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]aqp.Value, 0, 8192)
	for i := 0; i < 1<<20; i++ {
		rows = append(rows, []aqp.Value{aqp.Float64(float64(i % 100))})
		if len(rows) == cap(rows) {
			if err := tbl.AppendRows(rows); err != nil {
				t.Fatal(err)
			}
			rows = rows[:0]
		}
	}
	if err := tbl.AppendRows(rows); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := db.QueryContext(ctx, "SELECT SUM(x) FROM big"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exact err = %v, want DeadlineExceeded", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel2()
	res, err := db.QueryOLAContext(ctx2, "SELECT AVG(x) FROM big", aqp.ErrorSpec{RelError: 0.0001, Confidence: 0.99})
	if err != nil {
		t.Fatalf("ola err = %v, want partial result", err)
	}
	if !res.Diagnostics.Partial {
		t.Fatalf("ola scanned all %d rows; expected deadline truncation", res.Diagnostics.Counters.RowsScanned)
	}
	if res.Guarantee != aqp.GuaranteeAPosteriori {
		t.Fatalf("guarantee = %v, want a-posteriori", res.Guarantee)
	}
	got := res.Float(0, 0)
	if got < 39 || got > 60 {
		t.Fatalf("partial AVG = %v, want ~49.5", got)
	}
}
