// Package aqp is the public API of this repository: an embeddable
// approximate-query-processing framework reproducing the design space of
// "Approximate Query Processing: No Silver Bullet" (SIGMOD 2017).
//
// A DB wraps an in-memory columnar catalog and four interchangeable query
// engines — exact, online sampling (Quickr-style), offline precomputed
// samples (BlinkDB-style), and online aggregation — plus precomputed
// synopses (histograms, Count-Min, HyperLogLog) and an advisor that picks
// a technique per query and reports the statistical strength of each
// answer. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// the reproduced experiments.
//
// Quickstart:
//
//	db := aqp.New()
//	tbl, _ := db.CreateTable("t", aqp.Schema{
//		{Name: "x", Type: aqp.TypeFloat64},
//	})
//	tbl.AppendRow(aqp.Float64(3.14))
//	res, _ := db.Query("SELECT COUNT(*), AVG(x) FROM t")
//	approx, _ := db.QueryApprox("SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%")
package aqp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Re-exported substrate types, so downstream users rarely need internal
// packages.
type (
	// Type is a column type.
	Type = storage.Type
	// Value is a dynamically typed scalar.
	Value = storage.Value
	// Schema is an ordered list of column definitions.
	Schema = storage.Schema
	// ColumnDef describes one column.
	ColumnDef = storage.ColumnDef
	// Table is an append-only columnar table.
	Table = storage.Table
	// Catalog is a named collection of tables.
	Catalog = storage.Catalog
	// ErrorSpec is the (relative error, confidence) accuracy contract.
	ErrorSpec = core.ErrorSpec
	// Result is an annotated query result.
	Result = core.Result
	// ItemResult annotates one output value with its CI.
	ItemResult = core.ItemResult
	// Technique tags the engine that answered.
	Technique = core.Technique
	// Guarantee grades the statistical strength of an answer.
	Guarantee = core.Guarantee
	// Decision explains an advisor routing choice.
	Decision = core.Decision
	// Interval is a confidence interval.
	Interval = stats.Interval
	// Progress is an online-aggregation checkpoint.
	Progress = core.Progress
	// OnlineConfig tunes the query-time sampling engine.
	OnlineConfig = core.OnlineConfig
	// OfflineConfig tunes offline sample construction.
	OfflineConfig = core.OfflineConfig
	// OLAConfig tunes online aggregation.
	OLAConfig = core.OLAConfig
	// ContractConfig tunes two-stage a-priori error-contract execution.
	ContractConfig = core.ContractConfig
	// ContractSummary records a contract execution's pilot sizing, cost,
	// and verdict (Result.Diagnostics.Contract).
	ContractSummary = contract.Summary
	// ContractVerdict is the met/missed/infeasible outcome of a contract.
	ContractVerdict = contract.Verdict
	// Profile is a structured per-query execution profile (span tree).
	Profile = trace.Profile
	// ShardKey declares how a table is partitioned into shards.
	ShardKey = shard.Key
	// ShardGroup is a sharded view over a table.
	ShardGroup = shard.Group
	// ShardHealth is one shard's liveness summary.
	ShardHealth = shard.Health
	// RemoteShardOptions tunes the robustness envelope (deadlines, retry,
	// hedging, health probing) around remote-shard RPC calls.
	RemoteShardOptions = shard.RemoteOptions
)

// Shard key kinds.
const (
	// ShardHash spreads rows uniformly by key hash (lost shards can be
	// extrapolated over).
	ShardHash = shard.KeyHash
	// ShardRange holds contiguous key ranges per shard (range predicates
	// prune shards; lost shards are a systematic gap).
	ShardRange = shard.KeyRange
)

// ParseShardKind parses a shard-kind name: "hash" (or "") or "range".
func ParseShardKind(s string) (shard.KeyKind, error) { return shard.ParseKeyKind(s) }

// Contract verdicts and the refusal flag.
const (
	// ContractMet: stage two ran at the sized fraction and the realized
	// error is at or below the target.
	ContractMet = contract.VerdictMet
	// ContractMissed: the realized error exceeded the target, or the run
	// degraded mid-flight.
	ContractMissed = contract.VerdictMissed
	// ContractInfeasible: the target is provably unreachable within the
	// admission budget; the answer is best-effort a-posteriori.
	ContractInfeasible = contract.VerdictInfeasible
	// ContractInfeasibleFlag is the diagnostics message token attached to
	// refused contracts.
	ContractInfeasibleFlag = contract.InfeasibleFlag
)

// Column types.
const (
	TypeInt64   = storage.TypeInt64
	TypeFloat64 = storage.TypeFloat64
	TypeString  = storage.TypeString
	TypeBool    = storage.TypeBool
)

// Guarantee levels.
const (
	GuaranteeExact       = core.GuaranteeExact
	GuaranteeAPriori     = core.GuaranteeAPriori
	GuaranteeAPosteriori = core.GuaranteeAPosteriori
	GuaranteeNone        = core.GuaranteeNone
)

// Techniques.
const (
	TechniqueExact    = core.TechniqueExact
	TechniqueOnline   = core.TechniqueOnline
	TechniqueOffline  = core.TechniqueOffline
	TechniqueOLA      = core.TechniqueOLA
	TechniqueSynopsis = core.TechniqueSynopsis
)

// Value constructors.
var (
	// Int64 wraps an int64 value.
	Int64 = storage.Int64
	// Float64 wraps a float64 value.
	Float64 = storage.Float64
	// Str wraps a string value.
	Str = storage.Str
	// Bool wraps a bool value.
	Bool = storage.Bool
	// Null returns a typed NULL.
	Null = storage.NullValue
	// DefaultErrorSpec is 5% error at 95% confidence.
	DefaultErrorSpec = core.DefaultErrorSpec
)

// Typed error taxonomy re-exports: every error escaping an engine is
// classified against these sentinels (test with errors.Is), so callers
// can map failure classes without importing internal packages.
var (
	// ErrTimeout classifies deadline expiry.
	ErrTimeout = core.ErrTimeout
	// ErrOverloaded classifies admission-control shedding.
	ErrOverloaded = core.ErrOverloaded
	// ErrEngineUnavailable classifies an engine that cannot currently serve.
	ErrEngineUnavailable = core.ErrEngineUnavailable
	// ErrQueryPanic classifies a panic recovered while executing one query.
	ErrQueryPanic = core.ErrQueryPanic
)

// Option configures a DB.
type Option func(*DB)

// WithOnlineConfig overrides the online engine configuration.
func WithOnlineConfig(cfg OnlineConfig) Option {
	return func(db *DB) { db.onlineCfg = cfg }
}

// WithOfflineConfig overrides the offline engine configuration.
func WithOfflineConfig(cfg OfflineConfig) Option {
	return func(db *DB) { db.offlineCfg = cfg }
}

// WithOLAConfig overrides the online-aggregation configuration.
func WithOLAConfig(cfg OLAConfig) Option {
	return func(db *DB) { db.olaCfg = cfg }
}

// WithContractConfig overrides the two-stage contract configuration
// (pilot fraction, admission budget, variance confidence).
func WithContractConfig(cfg ContractConfig) Option {
	return func(db *DB) { db.contractCfg = cfg }
}

// WithParallelism sets the default morsel-parallel worker count for every
// engine. 0 (the default) defers to a per-query context override, a plan
// hint, or runtime.GOMAXPROCS; 1 forces serial execution. Results are
// bit-identical regardless of the worker count.
func WithParallelism(workers int) Option {
	return func(db *DB) { db.workers = workers }
}

// DB is the top-level handle: a catalog plus the engine suite.
type DB struct {
	catalog     *storage.Catalog
	onlineCfg   OnlineConfig
	offlineCfg  OfflineConfig
	olaCfg      OLAConfig
	contractCfg ContractConfig
	workers     int

	exact    *core.ExactEngine
	online   *core.OnlineEngine
	offline  *core.OfflineEngine
	ola      *core.OLAEngine
	synopsis *core.SynopsisEngine
	advisor  *core.Advisor
	shards   *shard.Map
}

// New creates an empty database.
func New(opts ...Option) *DB {
	return Open(storage.NewCatalog(), opts...)
}

// Open wraps an existing catalog (e.g. one produced by a workload
// generator).
func Open(cat *storage.Catalog, opts ...Option) *DB {
	db := &DB{
		catalog:     cat,
		onlineCfg:   core.DefaultOnlineConfig(),
		offlineCfg:  core.DefaultOfflineConfig(),
		olaCfg:      core.DefaultOLAConfig(),
		contractCfg: core.DefaultContractConfig(),
	}
	for _, o := range opts {
		o(db)
	}
	if db.workers > 0 {
		db.onlineCfg.Workers = db.workers
		db.offlineCfg.Workers = db.workers
		db.olaCfg.Workers = db.workers
	}
	db.shards = shard.NewMap()
	db.exact = core.NewExactEngine(cat)
	db.exact.Workers = db.workers
	db.exact.Shards = db.shards
	db.online = core.NewOnlineEngine(cat, db.onlineCfg)
	db.online.Shards = db.shards
	db.offline = core.NewOfflineEngine(cat, db.offlineCfg)
	db.ola = core.NewOLAEngine(cat, db.olaCfg)
	db.synopsis = core.NewSynopsisEngine(cat)
	db.advisor = core.NewAdvisor(db.exact, db.online, db.offline, db.ola, db.synopsis)
	return db
}

// Catalog returns the underlying catalog.
func (db *DB) Catalog() *storage.Catalog { return db.catalog }

// CreateTable creates and registers an empty table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	t := storage.NewTable(name, schema)
	if err := db.catalog.Add(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Table looks up a registered table.
func (db *DB) Table(name string) (*Table, error) { return db.catalog.Table(name) }

// ShardTable partitions a registered table into independent shards by the
// declared key. Single-table aggregate queries over it then execute
// scatter-gather: every shard computes its own partial estimate (with an
// independently seeded sample under approximate engines) and the partials
// compose into one stratified answer. The base table remains the ingest
// surface — new rows are routed to shards before every query. With
// key.Count == 1 execution is bit-identical to the unsharded engine.
func (db *DB) ShardTable(name string, key ShardKey) (*ShardGroup, error) {
	t, err := db.catalog.Table(name)
	if err != nil {
		return nil, err
	}
	g, err := shard.Partition(t, key, fault.BreakerConfig{})
	if err != nil {
		return nil, err
	}
	if err := db.shards.Add(g); err != nil {
		return nil, err
	}
	return g, nil
}

// AttachRemoteShards registers a sharded view whose shards live in other
// processes, one per address, reached over the shard wire protocol. The
// base table stays local as the planning surface and ground-truth row
// source; estimates scatter over the remote shard servers with the full
// robustness envelope (per-call deadlines, seeded retries, hedged
// requests, breakers, background health probes). Each address must be
// serving the matching partition at attach time — an unreachable shard
// fails the attach loudly rather than degrading silently later.
// Remote groups are static: Sync is a no-op, so the partition files on
// the servers must already agree with the declared key.
func (db *DB) AttachRemoteShards(name string, key ShardKey, addrs []string, opt RemoteShardOptions) (*ShardGroup, error) {
	t, err := db.catalog.Table(name)
	if err != nil {
		return nil, err
	}
	g, err := shard.AttachRemote(t, key, addrs, opt, fault.BreakerConfig{})
	if err != nil {
		return nil, err
	}
	if err := db.shards.Add(g); err != nil {
		g.Close()
		return nil, err
	}
	return g, nil
}

// Shards returns the registry of sharded tables (nil-safe, possibly empty).
func (db *DB) Shards() *shard.Map { return db.shards }

// Close releases background resources: remote-shard health probers and
// open RPC connections. Safe on a DB with no remote shards.
func (db *DB) Close() { db.shards.Close() }

// QueryProfile collects a per-query execution profile. Obtain one with
// WithProfile, run any query under the returned context, then read the
// span tree via Profile or the pretty rendering via String.
type QueryProfile struct {
	tr *trace.Tracer
}

// WithProfile returns a context that records a span trace for queries run
// under it, plus the handle to read the profile afterwards. Tracing is
// observational only: results are bit-identical with and without it.
func WithProfile(ctx context.Context) (context.Context, *QueryProfile) {
	tr := trace.New("query")
	return trace.WithTracer(ctx, tr), &QueryProfile{tr: tr}
}

// Profile snapshots the recorded span tree (nil before any query ran
// anything; safe to call multiple times).
func (p *QueryProfile) Profile() *Profile { return p.tr.Profile() }

// String renders the profile as an indented tree.
func (p *QueryProfile) String() string { return p.tr.Profile().String() }

// runStatement dispatches an already-parsed statement through run,
// handling the EXPLAIN prefix: plain EXPLAIN returns the optimized plan
// as rows without executing; EXPLAIN ANALYZE executes under a tracer
// (reusing a caller-installed one) and returns the rendered profile,
// keeping the executed query's technique, guarantee, and diagnostics.
func (db *DB) runStatement(ctx context.Context, stmt *sqlparse.SelectStmt, run func(context.Context) (*Result, error)) (*Result, error) {
	if !stmt.Explain {
		res, err := run(ctx)
		if err != nil {
			return nil, err
		}
		// Every facade entry point flows through here, so this one stamp
		// gives library users (and everything downstream: audits, logs,
		// the workload registry) the query's shape identity.
		res.Diagnostics.Fingerprint = stmt.Fingerprint().Hash
		return res, nil
	}
	if !stmt.Analyze {
		p, err := plan.Build(stmt, db.catalog)
		if err != nil {
			return nil, err
		}
		return textResult("plan", plan.Explain(p)), nil
	}
	sp, runCtx := trace.StartSpan(ctx, "query")
	if sp == nil {
		// No caller-installed tracer: make one rooted at this query.
		tr := trace.New("query")
		runCtx = trace.WithTracer(ctx, tr)
		sp = tr.Root()
	}
	res, err := run(runCtx)
	if err != nil {
		return nil, err
	}
	sp.End()
	res.Diagnostics.Fingerprint = stmt.Fingerprint().Hash
	out := textResult("explain analyze", sp.Snapshot().String())
	out.Technique = res.Technique
	out.Guarantee = res.Guarantee
	out.Spec = res.Spec
	out.Diagnostics = res.Diagnostics
	return out, nil
}

// textResult wraps pre-rendered text as a single-column result, one line
// per row.
func textResult(col, text string) *Result {
	r := &Result{Columns: []string{col}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		r.Rows = append(r.Rows, []storage.Value{storage.Str(line)})
		r.Items = append(r.Items, []ItemResult{{Name: col, Value: storage.Str(line)}})
	}
	return r
}

// Query executes a query exactly.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a context: scans observe cancellation and
// deadlines, returning ctx.Err() when exceeded.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		return db.exact.ExecuteContext(ctx, stmt, DefaultErrorSpec)
	})
}

// QueryApprox routes a query through the advisor: offline samples when a
// certified fresh sample exists, synopses for their narrow class, online
// sampling otherwise, exact when nothing else is defensible. A `WITH
// ERROR e% CONFIDENCE c%` clause in the SQL overrides spec.
func (db *DB) QueryApprox(sql string, spec ...ErrorSpec) (*Result, error) {
	return db.QueryApproxContext(context.Background(), sql, spec...)
}

// QueryApproxContext is QueryApprox under a context. The advisor-chosen
// engine observes cancellation; the OLA engine degrades gracefully,
// returning its best progressive estimate at the deadline.
func (db *DB) QueryApproxContext(ctx context.Context, sql string, spec ...ErrorSpec) (*Result, error) {
	s := DefaultErrorSpec
	if len(spec) > 0 {
		s = spec[0]
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		res, dec, err := db.advisor.ExecuteStmtContext(ctx, stmt, s)
		if err != nil {
			return nil, err
		}
		res.Diagnostics.Messages = append(res.Diagnostics.Messages, "advisor: "+dec.Reason)
		return res, nil
	})
}

// Advise explains which technique the advisor would use, without running
// the query.
func (db *DB) Advise(sql string, spec ...ErrorSpec) (Decision, error) {
	s := DefaultErrorSpec
	if len(spec) > 0 {
		s = spec[0]
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return Decision{}, err
	}
	if stmt.Error != nil {
		s = ErrorSpec{RelError: stmt.Error.RelError, Confidence: stmt.Error.Confidence}
	}
	return db.advisor.Choose(stmt, s), nil
}

// QueryAsWritten executes the SQL exactly as written, honoring any
// TABLESAMPLE clauses, and annotates aggregates with confidence intervals
// when sampling was involved. This is the manual-control path for users
// who place their own samplers.
func (db *DB) QueryAsWritten(sql string, spec ...ErrorSpec) (*Result, error) {
	return db.QueryAsWrittenContext(context.Background(), sql, spec...)
}

// QueryAsWrittenContext is QueryAsWritten under a context.
func (db *DB) QueryAsWrittenContext(ctx context.Context, sql string, spec ...ErrorSpec) (*Result, error) {
	s := DefaultErrorSpec
	if len(spec) > 0 {
		s = spec[0]
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if stmt.Error != nil {
		s = ErrorSpec{RelError: stmt.Error.RelError, Confidence: stmt.Error.Confidence}
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		return core.ExecuteAsWrittenContext(ctx, db.catalog, stmt, s)
	})
}

// QueryOnline forces the query-time-sampling engine.
func (db *DB) QueryOnline(sql string, spec ErrorSpec) (*Result, error) {
	return db.QueryOnlineContext(context.Background(), sql, spec)
}

// QueryOnlineContext is QueryOnline under a context.
func (db *DB) QueryOnlineContext(ctx context.Context, sql string, spec ErrorSpec) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		return db.online.ExecuteContext(ctx, stmt, spec)
	})
}

// QueryOffline forces the offline-samples engine.
func (db *DB) QueryOffline(sql string, spec ErrorSpec) (*Result, error) {
	return db.QueryOfflineContext(context.Background(), sql, spec)
}

// QueryOfflineContext is QueryOffline under a context.
func (db *DB) QueryOfflineContext(ctx context.Context, sql string, spec ErrorSpec) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		return db.offline.ExecuteContext(ctx, stmt, spec)
	})
}

// QueryOLA runs online aggregation to completion (or early stop per
// config), ignoring intermediate checkpoints.
func (db *DB) QueryOLA(sql string, spec ErrorSpec) (*Result, error) {
	return db.QueryOLAContext(context.Background(), sql, spec)
}

// QueryOLAContext is QueryOLA under a context. Unlike the other engines,
// OLA treats an expired deadline as a stopping rule, not an error: it
// returns the best progressive estimate accumulated so far with its
// a-posteriori interval.
func (db *DB) QueryOLAContext(ctx context.Context, sql string, spec ErrorSpec) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		return db.ola.ExecuteContext(ctx, stmt, spec)
	})
}

// QueryContract runs the query under an a-priori error contract on the
// online engine: a pilot run sizes the stage-two sampling fraction that
// makes the realized CI land at or below the target, stage two runs at
// that fraction, and Diagnostics.Contract records the sizing and the
// met/missed/infeasible verdict. A `WITH ERROR e% CONFIDENCE c%` clause
// overrides spec — that clause is the contract syntax. Targets provably
// unreachable within the admission budget are refused honestly: the
// result degrades to a best-effort a-posteriori CI and the diagnostics
// carry ContractInfeasibleFlag.
func (db *DB) QueryContract(sql string, spec ...ErrorSpec) (*Result, error) {
	return db.QueryContractContext(context.Background(), sql, spec...)
}

// QueryContractContext is QueryContract under a context.
func (db *DB) QueryContractContext(ctx context.Context, sql string, spec ...ErrorSpec) (*Result, error) {
	return db.QueryContractOnContext(ctx, TechniqueOnline, sql, spec...)
}

// QueryContractOn is QueryContract pinned to a specific engine:
// TechniqueOnline (Bernoulli two-stage), TechniqueOLA (Stein-style
// two-stage prefix sampling on one seeded permutation), or
// TechniqueOffline (two transient uniform samples drawn from the base
// table). Other techniques are rejected.
func (db *DB) QueryContractOn(tech Technique, sql string, spec ...ErrorSpec) (*Result, error) {
	return db.QueryContractOnContext(context.Background(), tech, sql, spec...)
}

// QueryContractOnContext is QueryContractOn under a context.
func (db *DB) QueryContractOnContext(ctx context.Context, tech Technique, sql string, spec ...ErrorSpec) (*Result, error) {
	s := DefaultErrorSpec
	if len(spec) > 0 {
		s = spec[0]
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if stmt.Error != nil {
		s = ErrorSpec{RelError: stmt.Error.RelError, Confidence: stmt.Error.Confidence}
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		switch tech {
		case TechniqueOnline:
			return db.online.ExecuteContract(ctx, stmt, s, db.contractCfg)
		case TechniqueOLA:
			return db.ola.ExecuteContract(ctx, stmt, s, db.contractCfg)
		case TechniqueOffline:
			return db.offline.ExecuteContract(ctx, stmt, s, db.contractCfg)
		default:
			return nil, fmt.Errorf("aqp: technique %s does not support error contracts", tech)
		}
	})
}

// QuerySynopsis answers the query from precomputed synopses alone
// (histogram/HLL/CMS) in O(synopsis) time; queries outside the narrow
// synopsis-answerable class fail rather than fall back.
func (db *DB) QuerySynopsis(sql string, spec ErrorSpec) (*Result, error) {
	return db.QuerySynopsisContext(context.Background(), sql, spec)
}

// QuerySynopsisContext is QuerySynopsis under a context.
func (db *DB) QuerySynopsisContext(ctx context.Context, sql string, spec ErrorSpec) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		return db.synopsis.ExecuteContext(ctx, stmt, spec)
	})
}

// QueryProgressive runs online aggregation, invoking observe at every
// checkpoint; observe returning false stops the stream.
func (db *DB) QueryProgressive(sql string, spec ErrorSpec, observe func(Progress) bool) (*Result, error) {
	return db.QueryProgressiveContext(context.Background(), sql, spec, observe)
}

// QueryProgressiveContext is QueryProgressive under a context; deadline
// expiry stops the stream like an observe returning false.
func (db *DB) QueryProgressiveContext(ctx context.Context, sql string, spec ErrorSpec, observe func(Progress) bool) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.runStatement(ctx, stmt, func(ctx context.Context) (*Result, error) {
		return db.ola.ExecuteProgressiveContext(ctx, stmt, spec, observe)
	})
}

// BuildOfflineSamples materializes the offline sample ladder for a table
// over the given query column sets (the precomputation step).
func (db *DB) BuildOfflineSamples(table string, qcsList [][]string) error {
	return db.offline.BuildSamples(table, qcsList)
}

// ProfileOffline runs profiling queries to build the error–latency
// profile that certifies offline samples against error specs.
func (db *DB) ProfileOffline(sqls ...string) error {
	for _, q := range sqls {
		if err := db.offline.ProfileQuery(q); err != nil {
			return err
		}
	}
	return nil
}

// RebuildOfflineSamples refreshes a table's samples after updates,
// accumulating maintenance cost.
func (db *DB) RebuildOfflineSamples(table string) error { return db.offline.Rebuild(table) }

// OfflineEngine exposes the offline engine for advanced inspection
// (maintenance stats, stored samples).
func (db *DB) OfflineEngine() *core.OfflineEngine { return db.offline }

// OnlineEngine exposes the online engine.
func (db *DB) OnlineEngine() *core.OnlineEngine { return db.online }

// SynopsisEngine exposes the synopsis engine.
func (db *DB) SynopsisEngine() *core.SynopsisEngine { return db.synopsis }

// BuildSynopsis builds histogram/HLL/CMS synopses for a column.
func (db *DB) BuildSynopsis(table, column string) error {
	return db.synopsis.BuildColumn(table, column, 0)
}

// PropertyMatrix measures the no-silver-bullet matrix over probe queries.
func (db *DB) PropertyMatrix(probe []string, spec ErrorSpec) ([]core.TechniqueProperties, error) {
	return db.advisor.Matrix(probe, spec)
}

// Explain renders the optimized logical plan of a query.
func (db *DB) Explain(sql string) (string, error) {
	return db.ExplainContext(context.Background(), sql)
}

// ExplainContext is Explain under a context. Planning is CPU-bound and
// quick; the context is checked once before work begins.
func (db *DB) ExplainContext(ctx context.Context, sql string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(stmt, db.catalog)
	if err != nil {
		return "", err
	}
	return plan.Explain(p), nil
}

// Exec runs a raw plan for a statement and returns the executor-level
// result — an escape hatch for tooling that needs counters or weights.
func (db *DB) Exec(sql string) (*exec.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(stmt, db.catalog)
	if err != nil {
		return nil, err
	}
	return exec.Run(p)
}

// FormatResult renders a result as an aligned text table with CI
// annotations for approximate aggregates.
func FormatResult(r *Result) string {
	out := ""
	for _, c := range r.Columns {
		out += fmt.Sprintf("%-22s", c)
	}
	out += "\n"
	for i, row := range r.Rows {
		for j, v := range row {
			cell := v.String()
			if j < len(r.Items[i]) {
				it := r.Items[i][j]
				if it.HasCI && it.CI.Width() > 0 {
					cell += fmt.Sprintf(" ±%.3g", it.CI.HalfWidth())
				}
			}
			out += fmt.Sprintf("%-22s", cell)
		}
		out += "\n"
	}
	out += fmt.Sprintf("-- technique=%s guarantee=%s rows_scanned=%d sample_fraction=%.4f latency=%s\n",
		r.Technique, r.Guarantee, r.Diagnostics.Counters.RowsScanned,
		r.Diagnostics.SampleFraction, r.Diagnostics.Latency)
	// Shard line only for sharded executions: zero-shard output is
	// byte-identical to what this function produced before sharding.
	if sh := r.Diagnostics.Shards; sh != nil {
		out += fmt.Sprintf("-- shards=%d key=%s coverage=%.4f degraded=%d pruned=%d extrapolated=%v\n",
			sh.Count, sh.Key, sh.CoverageFraction, len(sh.Degraded), len(sh.Pruned), sh.Extrapolated)
	}
	// Contract line only for contract executions: ordinary output is
	// byte-identical to what this function produced before contracts.
	if c := r.Diagnostics.Contract; c != nil {
		out += fmt.Sprintf("-- contract verdict=%s target=%.4g realized=%.4g pilot=%d rows (%.4g) final=%d rows (%.4g) required=%.4g budget=%.4g\n",
			c.Verdict, c.TargetRelError, c.RealizedRelError,
			c.PilotRows, c.PilotFraction, c.FinalRows, c.FinalFraction,
			c.RequiredFraction, c.BudgetFraction)
	}
	return out
}
