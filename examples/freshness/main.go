// Freshness: the maintenance liability of offline samples. An offline
// sample certified for a 10% error answers instantly — until the data
// moves underneath it. This example builds samples, serves from them,
// drifts the table, shows the silent bias of stale serving, and pays the
// rebuild bill.
package main

import (
	"fmt"
	"log"

	aqp "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 5, Rows: 1_000_000, NumGroups: 50, Skew: 1.1})
	if err != nil {
		log.Fatal(err)
	}
	offCfg := core.DefaultOfflineConfig()
	offCfg.Caps = []int{1024, 4096}
	offCfg.UniformRates = nil
	offCfg.StalePolicy = core.StaleServe // what a lazy deployment does
	db := aqp.Open(ev.Catalog, aqp.WithOfflineConfig(offCfg))

	const q = "SELECT ev_group, SUM(ev_value) AS total FROM events GROUP BY ev_group"
	spec := aqp.ErrorSpec{RelError: 0.15, Confidence: 0.95}

	// Precompute + profile (the offline stage).
	if err := db.BuildOfflineSamples("events", [][]string{{"ev_group"}}); err != nil {
		log.Fatal(err)
	}
	if err := db.ProfileOffline(q); err != nil {
		log.Fatal(err)
	}
	m := db.OfflineEngine().Maintenance
	fmt.Printf("precompute: %d samples, %d rows scanned\n", m.SamplesBuilt, m.RowsScanned)

	run := func(label string) {
		res, err := db.QueryOffline(q, spec)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		ti := res.ColumnIndex("total")
		for i := 0; i < res.NumRows() && i < exact.NumRows(); i++ {
			e := exact.Float(i, ti)
			if e == 0 {
				continue
			}
			re := (res.Float(i, ti) - e) / e
			if re < 0 {
				re = -re
			}
			if re > worst {
				worst = re
			}
		}
		fmt.Printf("%-22s guarantee=%-12s stale=%-5v worst_group_err=%5.1f%%  latency=%s\n",
			label, res.Guarantee, res.Diagnostics.Stale, worst*100,
			res.Diagnostics.Latency.Round(1000))
	}

	run("fresh:")

	// The data drifts: 20% more rows with 8x larger values.
	if err := ev.AppendShifted(200_000, 8, 99); err != nil {
		log.Fatal(err)
	}
	run("after drift (stale):")

	// Pay the maintenance bill.
	before := db.OfflineEngine().Maintenance.RowsScanned
	if err := db.RebuildOfflineSamples("events"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuild scanned %d rows\n", db.OfflineEngine().Maintenance.RowsScanned-before)
	run("after rebuild:")
}
