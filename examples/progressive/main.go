// Progressive: online aggregation over a join. The query streams the fact
// table in random order against fully-built dimensions, emitting estimates
// whose confidence intervals tighten as 1/sqrt(rows read) — the dashboard
// experience where the number appears immediately and sharpens in place.
package main

import (
	"fmt"
	"log"
	"strings"

	aqp "repro"
	"repro/internal/workload"
)

func main() {
	star, err := workload.GenerateStar(workload.Config{Seed: 9, LineitemRows: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	db := aqp.Open(star.Catalog, aqp.WithOLAConfig(aqp.OLAConfig{
		ChunkRows:       50_000,
		MaxFraction:     1,
		MaxBuildRows:    1 << 20,
		StopWhenSpecMet: true, // stop once every CI is inside the spec
		Seed:            4,
	}))

	const q = `SELECT o_orderpriority, SUM(l_extendedprice) AS revenue
		FROM lineitem JOIN orders ON l_orderkey = o_orderkey
		GROUP BY o_orderpriority`

	exact, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact answer took %s; now the progressive version:\n\n",
		exact.Diagnostics.Latency.Round(1_000_000))

	fmt.Printf("%-9s %-12s %s\n", "read", "max CI ±", "revenue by priority (1-URGENT shown with interval)")
	res, err := db.QueryProgressive(q, aqp.ErrorSpec{RelError: 0.02, Confidence: 0.95},
		func(p aqp.Progress) bool {
			it := p.Result.Items[0][1] // first group's revenue
			bar := strings.Repeat("#", int(p.Fraction*30))
			fmt.Printf("%7.1f%%  ±%6.2f%%    %-30s %.4g\n",
				p.Fraction*100, p.Result.MaxRelHalfWidth()*100, bar, it.Value.AsFloat())
			return true // keep streaming; the engine stops when the spec is met
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstopped at %.1f%% of the data (%s), guarantee=%s\n",
		res.Diagnostics.SampleFraction*100, res.Diagnostics.Latency.Round(1_000_000), res.Guarantee)
	for _, m := range res.Diagnostics.Messages {
		fmt.Println("  ·", m)
	}
	fmt.Println("\nfinal estimates vs exact:")
	revIdx := res.ColumnIndex("revenue")
	for i := 0; i < res.NumRows() && i < exact.NumRows(); i++ {
		est := res.Float(i, revIdx)
		truth := exact.Float(i, revIdx)
		fmt.Printf("  %-16s est %.4g  exact %.4g  (err %.2f%%)\n",
			res.Rows[i][0].S, est, truth, 100*abs(est-truth)/truth)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
