// Joins: why sampling both sides of a join needs the universe sampler.
// Uniformly sampling both inputs at rate p keeps only ~p² of the join
// output; universe sampling (hashing the join key identically on both
// sides) keeps an aligned p-fraction.
package main

import (
	"fmt"
	"log"

	aqp "repro"
	"repro/internal/workload"
)

func main() {
	star, err := workload.GenerateStar(workload.Config{Seed: 3, LineitemRows: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	db := aqp.Open(star.Catalog, aqp.WithOnlineConfig(aqp.OnlineConfig{
		DefaultRate: 0.02, MinTableRows: 10_000, DistinctKeep: 30, Seed: 1}))

	const base = "SELECT COUNT(*) AS pairs, SUM(l_extendedprice) AS revenue FROM lineitem%s JOIN orders%s ON l_orderkey = o_orderkey"

	exact, err := db.Query(fmt.Sprintf(base, "", ""))
	if err != nil {
		log.Fatal(err)
	}
	truePairs := exact.Float(0, 0)
	trueRev := exact.Float(0, 1)
	fmt.Printf("exact:          pairs=%-10.0f revenue=%-14.0f (%s)\n",
		truePairs, trueRev, exact.Diagnostics.Latency.Round(1000))

	report := func(label string, res *aqp.Result) {
		pairs := res.Float(0, 0)
		rev := res.Float(0, 1)
		ci := "n/a"
		if it := res.Items[0][0]; it.HasCI {
			ci = fmt.Sprintf("±%.1f%%", it.RelHalfWidth*100)
		}
		fmt.Printf("%-15s pairs=%-10.0f (err %5.1f%%, CI %-7s)  revenue=%-14.0f (err %5.1f%%)  rows_emitted=%d\n",
			label, pairs, 100*abs(pairs-truePairs)/truePairs, ci,
			rev, 100*abs(rev-trueRev)/trueRev,
			res.Diagnostics.Counters.RowsEmitted)
	}

	// Uniform 1% on both sides: the join starves (~0.01% of pairs kept).
	uniform, err := db.QueryAsWritten(fmt.Sprintf(base,
		" TABLESAMPLE BERNOULLI (1)", " TABLESAMPLE BERNOULLI (1)"))
	if err != nil {
		log.Fatal(err)
	}
	report("uniform-both:", uniform)

	// Universe 1% on both sides, same key domain: aligned samples.
	universe, err := db.QueryAsWritten(fmt.Sprintf(base,
		" TABLESAMPLE UNIVERSE (1) ON (l_orderkey)", " TABLESAMPLE UNIVERSE (1) ON (o_orderkey)"))
	if err != nil {
		log.Fatal(err)
	}
	report("universe-both:", universe)

	// The online engine places universe samplers automatically.
	auto, err := db.QueryOnline(fmt.Sprintf(base, "", ""), aqp.ErrorSpec{RelError: 0.1, Confidence: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	report("online (auto):", auto)
	for _, m := range auto.Diagnostics.Messages {
		fmt.Println("  ·", m)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
