// Dashboard: a skewed web-analytics workload where a dashboard needs
// per-group counts fast. Uniform sampling silently drops the tail groups;
// the distinct sampler — which the online engine picks automatically for
// GROUP BY queries — keeps every group alive.
package main

import (
	"fmt"
	"log"

	aqp "repro"
	"repro/internal/workload"
)

func main() {
	// 2M events across 2000 Zipf-skewed groups: a few huge, a long tail.
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 7, Rows: 2_000_000, NumGroups: 2000, Skew: 1.5})
	if err != nil {
		log.Fatal(err)
	}
	db := aqp.Open(ev.Catalog, aqp.WithOnlineConfig(aqp.OnlineConfig{
		DefaultRate: 0.01, MinTableRows: 10_000, DistinctKeep: 30, Seed: 1}))

	const q = "SELECT ev_group, COUNT(*) AS hits, SUM(ev_value) AS load FROM events GROUP BY ev_group"

	exact, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact:   %4d groups, %8d rows scanned, %s\n",
		exact.NumRows(), exact.Diagnostics.Counters.RowsScanned, exact.Diagnostics.Latency.Round(1000))

	// Naive uniform sampling at 0.5% — watch the tail groups disappear.
	uniform, err := db.QueryAsWritten(
		"SELECT ev_group, COUNT(*) AS hits, SUM(ev_value) AS load FROM events TABLESAMPLE BERNOULLI (0.5) GROUP BY ev_group")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform: %4d groups (%d lost)\n",
		uniform.NumRows(), exact.NumRows()-uniform.NumRows())

	// The online engine's distinct sampler keeps them all.
	approx, err := db.QueryOnline(q, aqp.ErrorSpec{RelError: 0.1, Confidence: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct:%4d groups (%d lost), %8d rows emitted, %s, guarantee=%s\n",
		approx.NumRows(), exact.NumRows()-approx.NumRows(),
		approx.Diagnostics.Counters.RowsEmitted,
		approx.Diagnostics.Latency.Round(1000), approx.Guarantee)
	for _, m := range approx.Diagnostics.Messages {
		fmt.Println("  ·", m)
	}

	// Head groups: estimates vs truth.
	fmt.Println("\nhead groups, approximate vs exact hit counts:")
	hits := approx.ColumnIndex("hits")
	for i := 0; i < 5 && i < approx.NumRows(); i++ {
		g := approx.Rows[i][0].I
		est := approx.Float(i, hits)
		var truth float64
		for j := 0; j < exact.NumRows(); j++ {
			if exact.Rows[j][0].I == g {
				truth = exact.Float(j, hits)
				break
			}
		}
		it := approx.Items[i][hits]
		fmt.Printf("  group %-4d est %-10.0f exact %-10.0f CI ±%.1f%%\n",
			g, est, truth, it.RelHalfWidth*100)
	}
}
