// Quickstart: create a table, load rows, and compare an exact answer with
// an advisor-routed approximate answer carrying confidence intervals.
package main

import (
	"fmt"
	"log"
	"math/rand"

	aqp "repro"
)

func main() {
	db := aqp.New()

	// A 500k-row measurements table.
	tbl, err := db.CreateTable("measurements", aqp.Schema{
		{Name: "sensor", Type: aqp.TypeString},
		{Name: "temp", Type: aqp.TypeFloat64},
		{Name: "ok", Type: aqp.TypeBool},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sensors := []string{"north", "south", "east", "west"}
	for i := 0; i < 500_000; i++ {
		if err := tbl.AppendRow(
			aqp.Str(sensors[rng.Intn(len(sensors))]),
			aqp.Float64(20+rng.NormFloat64()*5),
			aqp.Bool(rng.Float64() < 0.98),
		); err != nil {
			log.Fatal(err)
		}
	}

	// Exact execution.
	exact, err := db.Query("SELECT sensor, COUNT(*) AS n, AVG(temp) AS avg_temp FROM measurements GROUP BY sensor ORDER BY sensor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact:")
	fmt.Print(aqp.FormatResult(exact))

	// Approximate execution with an error contract in the SQL itself.
	approx, err := db.QueryApprox(
		"SELECT sensor, COUNT(*) AS n, AVG(temp) AS avg_temp FROM measurements GROUP BY sensor ORDER BY sensor WITH ERROR 5% CONFIDENCE 95%")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\napproximate (advisor-routed):")
	fmt.Print(aqp.FormatResult(approx))
	for _, m := range approx.Diagnostics.Messages {
		fmt.Println("  ·", m)
	}

	// Per-item confidence intervals.
	fmt.Println("\nconfidence intervals:")
	for i, row := range approx.Items {
		for _, it := range row {
			if it.HasCI && it.IsAggregate {
				fmt.Printf("  row %d %-10s = %-12s CI [%.1f, %.1f] (±%.2f%%)\n",
					i, it.Name, it.Value.String(), it.CI.Lo, it.CI.Hi, it.RelHalfWidth*100)
			}
		}
	}
}
