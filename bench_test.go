package aqp

// One benchmark per reproduced experiment (E1–E12, see DESIGN.md's
// per-experiment index) plus micro-benchmarks for the substrate. The
// experiment benches run the same code as `aqpbench -exp=<id>` at a
// reduced scale and report domain metrics via b.ReportMetric; run
// `go run ./cmd/aqpbench` for the full-size tables.

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

func benchScale(b *testing.B) experiments.Scale {
	b.Helper()
	s := experiments.SmallScale
	s.Rows = 50_000
	s.Trials = 5
	return s
}

func runExperiment(b *testing.B, id string) {
	s := benchScale(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// BenchmarkE1ErrorVsRate regenerates the error-vs-sampling-rate curve.
func BenchmarkE1ErrorVsRate(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2SpeedupVsRate regenerates the work-saved/crossover table.
func BenchmarkE2SpeedupVsRate(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3GroupCoverage regenerates uniform-vs-distinct group coverage.
func BenchmarkE3GroupCoverage(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4JoinSampling regenerates the join-over-samples comparison.
func BenchmarkE4JoinSampling(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5OfflineVsOnline regenerates the QCS-drift comparison.
func BenchmarkE5OfflineVsOnline(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6Maintenance regenerates the staleness-drift table.
func BenchmarkE6Maintenance(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7CICoverage regenerates the CI-coverage table.
func BenchmarkE7CICoverage(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8Synopses regenerates the synopses-vs-sampling table.
func BenchmarkE8Synopses(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9OnePass regenerates the passes-over-data table.
func BenchmarkE9OnePass(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10ELP regenerates the error–latency-profile table.
func BenchmarkE10ELP(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11OLA regenerates the online-aggregation convergence table.
func BenchmarkE11OLA(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12Matrix regenerates the no-silver-bullet matrix.
func BenchmarkE12Matrix(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13OutlierIndex regenerates the heavy-tail outlier-index table.
func BenchmarkE13OutlierIndex(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14SampleBudget regenerates the budgeted-selection table.
func BenchmarkE14SampleBudget(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15BlockLayout regenerates the block design-effect table.
func BenchmarkE15BlockLayout(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16SampleReuse regenerates the Taster-style reuse table.
func BenchmarkE16SampleReuse(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE17QuerySuite regenerates the per-query engine comparison.
func BenchmarkE17QuerySuite(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE18NeymanAllocation regenerates the allocation ablation.
func BenchmarkE18NeymanAllocation(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkE19Percentiles regenerates the DKW percentile table.
func BenchmarkE19Percentiles(b *testing.B) { runExperiment(b, "E19") }

// --- substrate micro-benchmarks ---

func benchStar(b *testing.B, rows int) *workload.Star {
	b.Helper()
	star, err := workload.GenerateStar(workload.Config{Seed: 1, LineitemRows: rows})
	if err != nil {
		b.Fatal(err)
	}
	return star
}

func mustPlan(b *testing.B, cat *storage.Catalog, sql string) plan.Node {
	b.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkScanSum measures a full-scan SUM through the executor.
func BenchmarkScanSum(b *testing.B) {
	star := benchStar(b, 200_000)
	p := mustPlan(b, star.Catalog, "SELECT SUM(l_extendedprice) FROM lineitem")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(200_000*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkScanFiltered measures scan with a pushed-down predicate.
func BenchmarkScanFiltered(b *testing.B) {
	star := benchStar(b, 200_000)
	p := mustPlan(b, star.Catalog,
		"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 10 AND l_discount > 0.02")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin measures the join of lineitem with orders.
func BenchmarkHashJoin(b *testing.B) {
	star := benchStar(b, 100_000)
	p := mustPlan(b, star.Catalog,
		"SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashAggregate measures a multi-aggregate GROUP BY.
func BenchmarkHashAggregate(b *testing.B) {
	star := benchStar(b, 200_000)
	p := mustPlan(b, star.Catalog,
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity), AVG(l_extendedprice), COUNT(*)
		 FROM lineitem GROUP BY l_returnflag, l_linestatus`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockSampledScan measures the block sampler's scan savings.
func BenchmarkBlockSampledScan(b *testing.B) {
	star := benchStar(b, 200_000)
	for _, ratePct := range []int{1, 10} {
		b.Run(fmt.Sprintf("rate=%d%%", ratePct), func(b *testing.B) {
			p := mustPlan(b, star.Catalog, fmt.Sprintf(
				"SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE SYSTEM (%d)", ratePct))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSamplerDecide measures per-row sampler decision cost.
func BenchmarkSamplerDecide(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = storage.Int64(int64(i)).GroupKey()
	}
	samplers := []struct {
		name string
		s    sample.RowSampler
	}{
		{"uniform", sample.NewUniform(0.01, 1)},
		{"block", sample.NewBlock(0.01, 1024, 1)},
		{"universe", sample.NewUniverse(0.01, 7)},
		{"distinct", sample.NewDistinct(0.01, 4, 1)},
	}
	for _, sp := range samplers {
		b.Run(sp.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp.s.Decide(i, keys[i&1023])
			}
		})
	}
}

// BenchmarkParse measures SQL parsing throughput.
func BenchmarkParse(b *testing.B) {
	sql := `SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS q, AVG(l_extendedprice) AS p,
		COUNT(*) AS n FROM lineitem TABLESAMPLE BERNOULLI (1)
		WHERE l_shipdate <= 2000 AND l_discount BETWEEN 0.02 AND 0.06
		GROUP BY l_returnflag, l_linestatus HAVING COUNT(*) > 10
		ORDER BY q DESC LIMIT 5 WITH ERROR 5% CONFIDENCE 95%`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantiles measures the statistical quantile functions.
func BenchmarkQuantiles(b *testing.B) {
	b.Run("normal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.NormalQuantile(0.975)
		}
	})
	b.Run("student-t", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.StudentTQuantile(0.975, 29)
		}
	})
	b.Run("chi-square", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.ChiSquareQuantile(0.95, 10)
		}
	})
}

// BenchmarkHTEstimator measures the estimator accumulation hot loop.
func BenchmarkHTEstimator(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	b.ResetTimer()
	var ht stats.HTEstimator
	for i := 0; i < b.N; i++ {
		ht.Add(xs[i&4095], 100)
	}
	if ht.N() == 0 {
		b.Fatal("no adds")
	}
}

// BenchmarkStratifiedBuild measures offline sample construction cost —
// the precompute/maintenance bill.
func BenchmarkStratifiedBuild(b *testing.B) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 1, Rows: 100_000, NumGroups: 64, Skew: 1.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sample.BuildStratified(ev.Table, sample.StratifiedConfig{
			KeyColumns: []string{"ev_group"}, CapPerStratum: 256, Seed: int64(i),
		}, "bench_sample_"+strconv.Itoa(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "rows/s")
}
