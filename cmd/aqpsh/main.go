// Command aqpsh is an interactive shell over the AQP framework. It
// generates demo data on demand and executes SQL — exactly, approximately
// via the advisor, or through a forced engine.
//
// Meta commands:
//
//	\gen star <rows> [skew]     generate the TPC-H-like star schema
//	\gen events <rows> <groups> [skew]
//	\tables                     list tables
//	\explain <sql>              show the optimized plan
//	\analyze <sql>              run the query and print its span profile
//	\exact <sql>                force exact execution
//	\online <sql>               force query-time sampling
//	\offline <sql>              force offline samples
//	\ola <sql>                  force online aggregation (progressive)
//	\contract [engine] <sql>    a-priori contract: pilot-sized two-stage run
//	                            (engine: online, ola, or offline; default online)
//	\prep <table> <col,col...>  build offline samples on a QCS
//	\profile <sql>              profile a query shape for offline certification
//	\synopsis <table> <col>     build histogram/HLL/CMS synopses
//	\advise <sql>               show which engine the advisor would pick
//	\shard <table> <col> <n> [hash|range]  partition a table for scatter-gather
//	\shards                     list sharded tables with per-shard health
//	\matrix <sql> [; <sql>...]  measure the no-silver-bullet matrix on probes
//	\audit                      print the continuous accuracy-audit report
//	\slo                        evaluate the SLO objectives over this session
//	\flight [n]                 summarize the last n flight-recorded queries
//	\top [n]                    per-fingerprint workload scorecards, busiest first
//	\faults                     list fault-injection points with hit/fire counts
//	\faults arm <rules> [seed]  arm chaos injection (point:kind:prob[:latency],...)
//	\faults off                 disarm chaos injection
//	\quit
//
// Plain SQL runs through the advisor; append `WITH ERROR 5% CONFIDENCE
// 95%` to set the accuracy contract. Every approximate answer is also
// handed to an embedded accuracy auditor, which re-executes it exactly
// in the background; \audit shows the rolling CI-coverage report.
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	aqp "repro"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/insight"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// shell bundles the open DB with its embedded accuracy auditor and a
// session-local telemetry stack (metrics registry, flight recorder, SLO
// engine); \gen swaps the DB and auditor, telemetry spans the session.
type shell struct {
	db  *aqp.DB
	aud *audit.Auditor

	met     *server.Metrics
	flight  *telemetry.Recorder
	tstore  *telemetry.Store
	slo     *telemetry.SLO
	insight *insight.Registry
}

// setDB replaces the database and rebinds the auditor to it.
func (sh *shell) setDB(db *aqp.DB) {
	sh.aud.Close()
	sh.db = db
	sh.aud = sh.newAuditor(db)
}

// initTelemetry builds the session-local observability stack. The store
// is snapped on demand (\slo), never on a ticker — an interactive shell
// has no background cadence worth paying for.
func (sh *shell) initTelemetry() {
	sh.met = server.NewMetrics()
	sh.flight = telemetry.NewRecorder(telemetry.RecorderConfig{Queries: 64})
	sh.insight = insight.New(insight.Config{OnEvent: func(ev insight.Event) {
		// Mirror aqpd: sentinel transitions land on the session's flight
		// timeline so \flight and \top tell one story.
		switch ev.Kind {
		case insight.EventRegression:
			sh.met.Inc(server.Key("workload_regressions_total", "signal", ev.Signal))
			sh.flight.AddEvent(telemetry.Event{Kind: "workload_regression", Name: ev.Fingerprint, Shard: -1})
		case insight.EventRecovered:
			sh.flight.AddEvent(telemetry.Event{Kind: "workload_recovered", Name: ev.Fingerprint, Shard: -1})
		}
	}})
	sh.tstore = telemetry.NewStore(telemetry.StoreConfig{
		Collect: func() telemetry.Sample { return sh.met.TelemetrySample(nil) },
	})
	sh.slo = telemetry.NewSLO(sh.tstore, nil, nil)
	sh.tstore.Snap() // baseline edge for the first \slo
}

// record files one executed statement with the session metrics and the
// flight recorder, so \slo and \flight observe shell work the same way
// aqpd observes served queries.
func (sh *shell) record(sql string, res *aqp.Result, err error, start time.Time) {
	latencyMS := float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		sh.met.Inc("queries_errors_total")
		sh.met.Inc("queries_total")
		fp := sh.insight.Offer(sql, insight.Observation{LatencyMS: latencyMS, Err: true})
		sh.flight.Record(telemetry.QueryRecord{
			Start: start, SQL: sql, Status: 500, Err: err.Error(), LatencyMS: latencyMS,
			Fingerprint: fp,
		})
		return
	}
	tech := string(res.Technique)
	sh.met.Inc(server.Key("queries_total", "technique", tech))
	sh.met.Observe(server.Key("query_latency_ms", "technique", tech), latencyMS)
	if res.Diagnostics.Degraded {
		sh.met.Inc("queries_degraded_total")
	}
	obs := insight.Observation{
		Technique:   tech,
		LatencyMS:   latencyMS,
		RowsScanned: res.Diagnostics.Counters.RowsScanned,
		RelWidth:    res.MaxRelHalfWidth(),
		Approximate: res.Guarantee != core.GuaranteeExact,
		Degraded:    res.Diagnostics.Degraded,
		Partial:     res.Diagnostics.Partial,
	}
	if c := res.Diagnostics.Contract; c != nil {
		obs.ContractVerdict = string(c.Verdict)
	}
	sh.insight.Offer(sql, obs)
	qr := telemetry.QueryRecord{
		Start: start, SQL: sql, Technique: tech, Status: 200,
		LatencyMS:   latencyMS,
		RowsScanned: res.Diagnostics.Counters.RowsScanned,
		Degraded:    res.Diagnostics.Degraded,
		Partial:     res.Diagnostics.Partial,
		Fingerprint: res.Diagnostics.Fingerprint,
	}
	if c := res.Diagnostics.Contract; c != nil {
		qr.ContractVerdict = string(c.Verdict)
	}
	sh.flight.Record(qr)
}

// newAuditor audits every approximate answer (fraction 1, no capacity
// gate — a single-user shell has no foreground to starve). Verdicts
// feed the session's per-fingerprint coverage scorecards (\top).
func (sh *shell) newAuditor(db *aqp.DB) *audit.Auditor {
	return audit.New(db, nil, audit.Config{Fraction: 1, Seed: 42,
		OnEvent: func(ev audit.Event) {
			if sh.insight == nil {
				return
			}
			switch ev.Kind {
			case audit.EventCovered:
				sh.insight.ReportAudit(ev.Fingerprint, ev.Technique, true)
			case audit.EventMissed:
				sh.insight.ReportAudit(ev.Fingerprint, ev.Technique, false)
			}
		}})
}

func main() {
	sh := &shell{db: aqp.New()}
	sh.initTelemetry()
	sh.aud = sh.newAuditor(sh.db)
	fmt.Println("aqpsh — approximate query shell (\\gen to create data, \\quit to exit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("aqp> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if quit := meta(sh, line); quit {
				return
			}
			continue
		}
		start := time.Now()
		res, err := sh.db.QueryApprox(line)
		sh.record(line, res, err, start)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(aqp.FormatResult(res))
		for _, m := range res.Diagnostics.Messages {
			fmt.Println("  ·", m)
		}
		sh.aud.Offer(res, line)
	}
}

// meta handles backslash commands; returns true to quit.
func meta(sh *shell, line string) bool {
	db := sh.db
	fields := strings.Fields(line)
	cmd := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(line, cmd))
	switch cmd {
	case "\\quit", "\\q":
		return true
	case "\\tables":
		for _, n := range db.Catalog().Names() {
			t, err := db.Table(n)
			if err != nil {
				continue
			}
			fmt.Printf("%-12s %8d rows  (%s)\n", n, t.NumRows(),
				strings.Join(t.Schema().Names(), ", "))
		}
	case "\\gen":
		if len(fields) < 3 {
			fmt.Println("usage: \\gen star <rows> [skew] | \\gen events <rows> <groups> [skew]")
			return false
		}
		rows, err := strconv.Atoi(fields[2])
		if err != nil {
			fmt.Println("bad row count:", fields[2])
			return false
		}
		switch fields[1] {
		case "star":
			skew := 0.0
			if len(fields) > 3 {
				skew, _ = strconv.ParseFloat(fields[3], 64)
			}
			star, err := workload.GenerateStar(workload.Config{Seed: 42, LineitemRows: rows, Skew: skew})
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			sh.setDB(aqp.Open(star.Catalog))
			fmt.Printf("generated star schema: lineitem=%d orders=%d customer=%d part=%d supplier=%d\n",
				star.Lineitem.NumRows(), star.Orders.NumRows(), star.Customer.NumRows(),
				star.Part.NumRows(), star.Supplier.NumRows())
		case "events":
			if len(fields) < 4 {
				fmt.Println("usage: \\gen events <rows> <groups> [skew]")
				return false
			}
			groups, _ := strconv.Atoi(fields[3])
			skew := 0.0
			if len(fields) > 4 {
				skew, _ = strconv.ParseFloat(fields[4], 64)
			}
			ev, err := workload.GenerateEvents(workload.EventsConfig{
				Seed: 42, Rows: rows, NumGroups: groups, Skew: skew})
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			sh.setDB(aqp.Open(ev.Catalog))
			fmt.Printf("generated events: %d rows, %d groups, skew %.2f\n", rows, groups, skew)
		default:
			fmt.Println("unknown dataset:", fields[1])
		}
	case "\\explain":
		out, err := db.Explain(rest)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(out)
	case "\\analyze":
		// Execute through the advisor under a tracer and print the raw
		// span tree: per-operator timings, rows in/out, worker morsels.
		ctx, prof := aqp.WithProfile(context.Background())
		res, err := db.QueryApproxContext(ctx, rest)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(prof.String())
		fmt.Printf("-- technique=%s guarantee=%s rows_scanned=%d latency=%s\n",
			res.Technique, res.Guarantee,
			res.Diagnostics.Counters.RowsScanned, res.Diagnostics.Latency)
		if shd := res.Diagnostics.Shards; shd != nil {
			fmt.Printf("-- shards=%d key=%s coverage=%.4f degraded=%d pruned=%d extrapolated=%v\n",
				shd.Count, shd.Key, shd.CoverageFraction,
				len(shd.Degraded), len(shd.Pruned), shd.Extrapolated)
		}
	case "\\advise":
		d, err := db.Advise(rest)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("technique=%s guarantee=%s reason=%s\n", d.Technique, d.Guarantee, d.Reason)
	case "\\exact":
		res, err := db.Query(rest)
		sh.show(rest, res, err)
	case "\\online":
		res, err := db.QueryOnline(rest, aqp.DefaultErrorSpec)
		sh.show(rest, res, err)
	case "\\offline":
		res, err := db.QueryOffline(rest, aqp.DefaultErrorSpec)
		sh.show(rest, res, err)
	case "\\ola":
		res, err := db.QueryProgressive(rest, aqp.DefaultErrorSpec, func(p aqp.Progress) bool {
			fmt.Printf("  %5.1f%% read, current max CI half-width %.4f\n",
				p.Fraction*100, p.Result.MaxRelHalfWidth())
			return true
		})
		sh.show(rest, res, err)
	case "\\contract":
		// Pilot-sized two-stage execution: FormatResult appends the
		// contract footer (verdict, sized fractions, pilot/final rows).
		tech := aqp.TechniqueOnline
		sql := rest
		if len(fields) > 1 {
			switch fields[1] {
			case "online", "ola", "offline":
				if fields[1] == "ola" {
					tech = aqp.TechniqueOLA
				} else if fields[1] == "offline" {
					tech = aqp.TechniqueOffline
				}
				sql = strings.TrimSpace(strings.TrimPrefix(rest, fields[1]))
			}
		}
		if strings.TrimSpace(sql) == "" {
			fmt.Println("usage: \\contract [online|ola|offline] <sql WITH ERROR e% CONFIDENCE c%>")
			return false
		}
		res, err := db.QueryContractOn(tech, sql)
		sh.show(sql, res, err)
		if err == nil {
			sh.aud.Offer(res, sql)
		}
	case "\\prep":
		if len(fields) < 3 {
			fmt.Println("usage: \\prep <table> <col[,col...]>")
			return false
		}
		qcs := strings.Split(fields[2], ",")
		if err := db.BuildOfflineSamples(fields[1], [][]string{qcs}); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("built offline samples for %s on (%s)\n", fields[1], fields[2])
	case "\\profile":
		if err := db.ProfileOffline(rest); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Println("profiled")
	case "\\matrix":
		probes := []string{}
		for _, q := range strings.Split(rest, ";") {
			if q = strings.TrimSpace(q); q != "" {
				probes = append(probes, q)
			}
		}
		if len(probes) == 0 {
			fmt.Println("usage: \\matrix <sql> [; <sql>...]")
			return false
		}
		rows, err := db.PropertyMatrix(probes, aqp.DefaultErrorSpec)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("%-20s %10s %10s %11s %12s\n",
			"technique", "supported", "a-priori", "work-saved", "precompute")
		for _, r := range rows {
			fmt.Printf("%-20s %9.0f%% %9.0f%% %10.0f%% %12d\n",
				r.Technique, r.SupportedFraction*100, r.APrioriFraction*100,
				r.MeanWorkSaved*100, r.PrecomputeRows)
		}
	case "\\audit":
		// Wait for pending background re-executions so the report covers
		// everything offered so far.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sh.aud.Drain(ctx); err != nil {
			fmt.Printf("warning: audit backlog not drained: %v\n", err)
		}
		fmt.Print(sh.aud.Report().String())
	case "\\slo":
		// Snap a fresh edge so the evaluation covers everything since the
		// previous \slo (or session start).
		sh.tstore.Snap()
		fmt.Printf("%-18s %-13s %7s %10s %10s %8s  %s\n",
			"OBJECTIVE", "KIND", "TARGET", "FAST_BURN", "SLOW_BURN", "BUDGET", "STATE")
		for _, st := range sh.slo.Evaluate() {
			fmt.Printf("%-18s %-13s %6.2f%% %10.2f %10.2f %7.0f%%  %s\n",
				st.Objective.Name, st.Objective.Kind, st.Objective.Target*100,
				st.Fast.Burn, st.Slow.Burn, st.BudgetRemaining*100, st.State)
		}
	case "\\flight":
		n := 10
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				fmt.Println("usage: \\flight [n]")
				return false
			}
			n = v
		}
		b := sh.flight.Snapshot("aqpsh")
		if len(b.Queries) == 0 {
			fmt.Println("flight recorder empty (run some queries first)")
			return false
		}
		if len(b.Queries) > n {
			b.Queries = b.Queries[len(b.Queries)-n:]
		}
		fmt.Printf("%4s %6s %-18s %-8s %-10s %-10s %9s  %s\n",
			"SEQ", "STATUS", "TECHNIQUE", "DEGRADED", "VERDICT", "KEEP", "LATENCY", "SQL")
		for _, qr := range b.Queries {
			verdict, keep, tech := qr.ContractVerdict, qr.Keep, qr.Technique
			if verdict == "" {
				verdict = "-"
			}
			if keep == "" {
				keep = "-"
			}
			if tech == "" {
				tech = "-"
			}
			sql := qr.SQL
			if len(sql) > 48 {
				sql = sql[:45] + "..."
			}
			fmt.Printf("%4d %6d %-18s %-8v %-10s %-10s %7.2fms  %s\n",
				qr.Seq, qr.Status, tech, qr.Degraded, verdict, keep, qr.LatencyMS, sql)
		}
	case "\\top":
		n := 10
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				fmt.Println("usage: \\top [n]")
				return false
			}
			n = v
		}
		cards := sh.insight.Top(n, insight.ByTraffic)
		if len(cards) == 0 {
			fmt.Println("no query shapes fingerprinted yet (run some SQL first)")
			return false
		}
		sum := sh.insight.Summary()
		fmt.Printf("%d shape(s) tracked, %d quer%s offered",
			sum.Fingerprints, sum.Offered, plural(sum.Offered, "y", "ies"))
		if sum.Evictions > 0 {
			fmt.Printf(", %d evicted", sum.Evictions)
		}
		if sum.Regressions > 0 {
			fmt.Printf(", %d regression(s)", sum.Regressions)
		}
		fmt.Println()
		fmt.Printf("%-16s %7s %5s %9s %9s %8s %6s %-14s %s\n",
			"FINGERPRINT", "QUERIES", "ERRS", "P50", "P95", "WIDTH95", "REGR", "TECHNIQUES", "TEMPLATE")
		for _, c := range cards {
			techs := make([]string, 0, len(c.Techniques))
			for _, tc := range c.Techniques {
				techs = append(techs, tc.Technique)
			}
			tmpl := c.Template
			if len(tmpl) > 56 {
				tmpl = tmpl[:53] + "..."
			}
			regr := fmt.Sprintf("%d", c.Regressions)
			if len(c.Active) > 0 {
				regr += "!"
			}
			fmt.Printf("%-16s %7d %5d %7.2fms %7.2fms %8.4f %6s %-14s %s\n",
				c.Fingerprint, c.Queries, c.Errors,
				c.LatencyP50MS, c.LatencyP95MS, c.RelWidthP95, regr,
				strings.Join(techs, ","), tmpl)
		}
	case "\\shard":
		if len(fields) < 4 {
			fmt.Println("usage: \\shard <table> <col> <count> [hash|range]")
			return false
		}
		count, err := strconv.Atoi(fields[3])
		if err != nil {
			fmt.Println("bad shard count:", fields[3])
			return false
		}
		kindName := "hash"
		if len(fields) > 4 {
			kindName = fields[4]
		}
		kind, err := aqp.ParseShardKind(kindName)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		g, err := db.ShardTable(fields[1], aqp.ShardKey{Column: fields[2], Kind: kind, Count: count})
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("sharded %s: %s\n", fields[1], g.Key())
	case "\\shards":
		names := db.Shards().Names()
		if len(names) == 0 {
			fmt.Println("no sharded tables (\\shard <table> <col> <count> to create)")
			return false
		}
		for _, n := range names {
			g := db.Shards().Get(n)
			fmt.Printf("%s: %s, %d rows\n", n, g.Key(), g.Rows())
			fmt.Printf("  %-6s %-7s %10s %8s %8s %12s %8s  %s\n",
				"SHARD", "KIND", "ROWS", "OPEN", "TRIPS", "SAMPLE_ROWS", "FRESH", "REMOTE")
			for _, h := range g.Health() {
				remote := ""
				if h.Kind == "remote" {
					state := "up"
					if !h.Alive {
						state = "DOWN"
					}
					remote = fmt.Sprintf("%s %s probe=%.1fms retries=%d hedges=%d/%d",
						h.Addr, state, h.ProbeLatencyMS, h.Retries, h.HedgeWins, h.Hedges)
				}
				fmt.Printf("  %-6d %-7s %10d %8v %8d %12d %8v  %s\n",
					h.ID, h.Kind, h.Rows, h.Open, h.Trips, h.SampleRows, h.SampleFresh, remote)
			}
		}
	case "\\synopsis":
		if len(fields) < 3 {
			fmt.Println("usage: \\synopsis <table> <col>")
			return false
		}
		if err := db.BuildSynopsis(fields[1], fields[2]); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("built synopses for %s.%s\n", fields[1], fields[2])
	case "\\faults":
		switch {
		case len(fields) >= 3 && fields[1] == "arm":
			rules, err := fault.ParseRules(fields[2])
			if err != nil {
				fmt.Println("error:", err)
				return false
			}
			var seed int64 = 1
			if len(fields) >= 4 {
				if seed, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
					fmt.Println("error: bad seed:", fields[3])
					return false
				}
			}
			fault.Install(fault.Schedule{Seed: seed, Rules: rules})
			fmt.Printf("chaos armed (seed %d)\n", seed)
		case len(fields) >= 2 && fields[1] == "off":
			fault.Uninstall()
			fmt.Println("chaos disarmed")
		case len(fields) >= 2:
			fmt.Println("usage: \\faults [arm <point:kind:prob[:latency],...> [seed] | off]")
			return false
		}
		fmt.Printf("injection %s\n", map[bool]string{true: "ARMED", false: "disarmed"}[fault.Active()])
		fmt.Printf("%-24s %8s %8s  %s\n", "POINT", "HITS", "FIRES", "RULE")
		for _, st := range fault.Status() {
			rule := st.Rule
			if rule == "" {
				rule = "-"
			}
			fmt.Printf("%-24s %8d %8d  %s\n", st.Name, st.Hits, st.Fires, rule)
		}
	default:
		fmt.Println("unknown command:", cmd)
	}
	return false
}

// show records the statement with the session telemetry and prints the
// result (or error). The result's own measured latency stands in for a
// wall clock started before execution.
func (sh *shell) show(sql string, res *aqp.Result, err error) {
	start := time.Now()
	if res != nil {
		start = start.Add(-res.Diagnostics.Latency)
	}
	sh.record(sql, res, err, start)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(aqp.FormatResult(res))
	for _, m := range res.Diagnostics.Messages {
		fmt.Println("  ·", m)
	}
}

// plural picks the singular or plural suffix for n.
func plural(n uint64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
