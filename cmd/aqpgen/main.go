// Command aqpgen generates the repository's deterministic synthetic
// datasets and writes them as CSV files, so the workloads used by the
// experiment suite can be inspected or loaded into other systems.
//
// Usage:
//
//	aqpgen -dataset star   -rows 1000000 -skew 1.2 -out ./data
//	aqpgen -dataset events -rows 500000  -groups 200 -skew 1.4 -dist pareto -out ./data
//	aqpgen -dataset events -rows 500000 -drift 50000 -drift-factor 4 -out ./data
//
// -drift appends skewed rows after generation, shifting the value
// distribution the way a live update stream would — the dataset for
// demonstrating sample-staleness detection by the accuracy auditor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	aqp "repro"
	"repro/internal/fault"
	"repro/internal/shard"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "star", "star | events")
		rows    = flag.Int("rows", 100_000, "fact-table rows")
		skew    = flag.Float64("skew", 0, "Zipf skew exponent (0 = uniform)")
		groups  = flag.Int("groups", 100, "events: number of groups")
		dist    = flag.String("dist", "exp", "events: value distribution (uniform|exp|lognormal|pareto)")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("out", ".", "output directory")
		drift   = flag.Int("drift", 0, "events: append this many drifted rows after generation (staleness demo)")
		driftX  = flag.Float64("drift-factor", 4, "events: multiplier on drifted-row values")
		shards  = flag.Int("shards", 0, "also emit each table pre-partitioned into this many shards (requires -shard-key)")
		shKey   = flag.String("shard-key", "", "shard-routing column for -shards")
		shKind  = flag.String("shard-kind", "hash", "shard routing for -shards: hash or range")
		fprints = flag.Bool("fingerprints", false, "also emit queries.manifest.json: the dataset's query templates with their workload-insight fingerprints, for correlating GET /workload scorecards with the generated benchmark")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	var tables []*storage.Table
	switch *dataset {
	case "star":
		star, err := workload.GenerateStar(workload.Config{
			Seed: *seed, LineitemRows: *rows, Skew: *skew})
		if err != nil {
			fatal(err)
		}
		tables = []*storage.Table{star.Lineitem, star.Orders, star.Customer, star.Part, star.Supplier}
	case "events":
		ev, err := workload.GenerateEvents(workload.EventsConfig{
			Seed: *seed, Rows: *rows, NumGroups: *groups, Skew: *skew, ValueDist: *dist})
		if err != nil {
			fatal(err)
		}
		if *drift > 0 {
			if err := ev.AppendShifted(*drift, *driftX, *seed+1); err != nil {
				fatal(err)
			}
			fmt.Printf("appended %d drifted rows (values ×%g) after the base %d\n",
				*drift, *driftX, *rows)
		}
		tables = []*storage.Table{ev.Table}
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	if *drift > 0 && *dataset != "events" {
		fatal(fmt.Errorf("-drift applies to -dataset events only"))
	}

	for _, t := range tables {
		path := filepath.Join(*out, t.Name()+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		if err := aqp.DumpTableCSV(w, t); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows())
		if *shards > 0 {
			if err := writeShards(*out, t, *shards, *shKey, *shKind); err != nil {
				fatal(err)
			}
		}
	}
	if *fprints {
		if err := writeFingerprints(*out, *dataset, *seed); err != nil {
			fatal(err)
		}
	}
}

// templateEntry is one query template's workload-insight identity in
// queries.manifest.json.
type templateEntry struct {
	Name string `json:"name"`
	// SQL is one concrete instantiation (deterministic under -seed).
	SQL string `json:"sql"`
	// Fingerprint is the shape hash every instantiation of this template
	// shares — the key into GET /workload and aqpsh \top.
	Fingerprint string `json:"fingerprint"`
	// Template is the literal-normalized canonical SQL behind the hash.
	Template string `json:"template"`
	// QCS is the syntactic query-column-set the fingerprint keys on;
	// DeclaredQCS is the template author's stratification intent.
	QCS         []string `json:"qcs,omitempty"`
	DeclaredQCS []string `json:"declared_qcs,omitempty"`
}

// writeFingerprints renders the dataset's query templates, fingerprints
// them, and writes queries.manifest.json. Two independent
// instantiations of each template must share a fingerprint — a template
// whose random literals moved the hash would make /workload scorecards
// unjoinable, so that is a generation error.
func writeFingerprints(out, dataset string, seed int64) error {
	var tmpls []workload.Template
	switch dataset {
	case "star":
		tmpls = workload.StarTemplates()
	case "events":
		tmpls = workload.EventTemplates()
	default:
		return fmt.Errorf("no templates for dataset %q", dataset)
	}
	rng := rand.New(rand.NewSource(seed))
	entries := make([]templateEntry, 0, len(tmpls))
	for _, tm := range tmpls {
		sql := tm.Instantiate(rng)
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return fmt.Errorf("template %s: %q does not parse: %w", tm.Name, sql, err)
		}
		fp := stmt.Fingerprint()
		again, err := sqlparse.Parse(tm.Instantiate(rng))
		if err != nil {
			return fmt.Errorf("template %s: re-instantiation does not parse: %w", tm.Name, err)
		}
		if fp2 := again.Fingerprint(); fp2.Hash != fp.Hash {
			return fmt.Errorf("template %s is not literal-stable: %s vs %s (%q vs %q)",
				tm.Name, fp.Hash, fp2.Hash, fp.Template, fp2.Template)
		}
		entries = append(entries, templateEntry{
			Name:        tm.Name,
			SQL:         sql,
			Fingerprint: fp.Hash,
			Template:    fp.Template,
			QCS:         fp.QCS,
			DeclaredQCS: tm.QCS,
		})
	}
	path := filepath.Join(out, "queries.manifest.json")
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d templates fingerprinted)\n", path, len(entries))
	return nil
}

// shardManifest records a pre-partitioned dataset's layout so loaders can
// verify per-shard row counts against what the generator routed.
type shardManifest struct {
	Table        string   `json:"table"`
	Rows         int      `json:"rows"`
	Key          string   `json:"key"`
	Kind         string   `json:"kind"`
	Count        int      `json:"count"`
	RowsPerShard []int    `json:"rows_per_shard"`
	Files        []string `json:"files"`
}

// writeShards partitions one generated table with the same routing the
// engine uses at query time and emits <table>.shard<i>.csv per shard plus
// <table>.manifest.json with the per-shard row counts.
func writeShards(out string, t *storage.Table, count int, keyCol, kindName string) error {
	kind, err := aqp.ParseShardKind(kindName)
	if err != nil {
		return err
	}
	if keyCol == "" {
		return fmt.Errorf("-shards requires -shard-key")
	}
	if t.Schema().ColumnIndex(keyCol) < 0 {
		// Star tables don't share a key column; shard only where it exists.
		fmt.Printf("skip %s: no column %q\n", t.Name(), keyCol)
		return nil
	}
	g, err := shard.Partition(t, shard.Key{Column: keyCol, Kind: kind, Count: count}, fault.BreakerConfig{})
	if err != nil {
		return err
	}
	man := shardManifest{
		Table: t.Name(), Rows: t.NumRows(),
		Key: keyCol, Kind: kind.String(), Count: count,
	}
	for i, sh := range g.Shards() {
		path := filepath.Join(out, fmt.Sprintf("%s.shard%d.csv", t.Name(), i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriterSize(f, 1<<20)
		if err := aqp.DumpTableCSV(w, g.ShardTable(i)); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.RowsPerShard = append(man.RowsPerShard, sh.Rows())
		man.Files = append(man.Files, filepath.Base(path))
		fmt.Printf("wrote %s (%d rows)\n", path, sh.Rows())
	}
	manPath := filepath.Join(out, t.Name()+".manifest.json")
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(manPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s over %q, %d shards)\n", manPath, man.Kind, keyCol, count)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqpgen:", err)
	os.Exit(1)
}
