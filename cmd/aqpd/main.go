// Command aqpd serves an aqp.DB over HTTP/JSON: a concurrent
// approximate-query service with admission control, per-request
// deadlines, and metrics.
//
// Usage:
//
//	aqpd -gen 1000000                     # serve a synthetic star schema
//	aqpd -load orders=orders.csv          # serve CSV tables (repeatable)
//
// Endpoints: POST /query, GET /tables, POST /samples/build,
// GET /metrics, GET /audit, GET /faults, GET /shards, GET /healthz. See
// README.md for a curl quickstart. -chaos-config arms deterministic
// fault injection for resilience drills; -shards enables scatter-gather
// execution over partitioned tables.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	aqp "repro"
	"repro/internal/fault"
	"repro/internal/server"
	telemetrypkg "repro/internal/telemetry"
	"repro/internal/workload"
)

// flightSink builds the destination for automatic flight-recorder dumps:
// one timestamped JSON file per dump under dir, or indented JSON on
// stderr when no directory is configured.
func flightSink(dir string) func(telemetrypkg.Bundle) {
	return func(b telemetrypkg.Bundle) {
		if dir == "" {
			log.Printf("aqpd: flight dump (%s) follows", b.Reason)
			if err := b.WriteJSON(os.Stderr); err != nil {
				log.Printf("aqpd: flight dump: %v", err)
			}
			return
		}
		reason := strings.NewReplacer(":", "-", "/", "-").Replace(b.Reason)
		path := fmt.Sprintf("%s/flight-%s-%d.json", dir, reason, time.Now().UnixNano())
		f, err := os.Create(path)
		if err != nil {
			log.Printf("aqpd: flight dump: %v", err)
			return
		}
		defer f.Close()
		if err := b.WriteJSON(f); err != nil {
			log.Printf("aqpd: flight dump %s: %v", path, err)
			return
		}
		log.Printf("aqpd: flight dump (%s) written to %s", b.Reason, path)
	}
}

// loadFlags collects repeated -load name=path.csv flags.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }

func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		gen        = flag.Int("gen", 0, "generate a synthetic star schema with this many fact rows")
		genSkew    = flag.Float64("gen-skew", 0, "Zipf skew for the generated workload (0 = uniform)")
		seed       = flag.Int64("seed", 1, "workload generator seed")
		workers    = flag.Int("workers", 4, "max concurrently executing queries")
		qryWorkers = flag.Int("query-workers", 0, "per-query morsel-parallel worker cap (0 = GOMAXPROCS/workers)")
		queueCap   = flag.Int("queue", 8, "max queries waiting for a worker before shedding")
		defTimeout = flag.Duration("timeout", 30*time.Second, "default per-query deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		drainWait  = flag.Duration("drain", 30*time.Second, "max wait for in-flight queries at shutdown")
		slowQuery  = flag.Duration("slow-query", time.Second, "log completed queries at WARN when at least this slow")
		logLevel   = flag.String("log-level", "info", "query log level: debug logs every query, info only slow ones and errors")
		logFormat  = flag.String("log-format", "text", "query log format: text or json")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		auditFrac  = flag.Float64("audit-fraction", 0, "fraction of served approximate queries re-checked exactly in the background (0 disables accuracy auditing)")
		auditQueue = flag.Int("audit-queue", 64, "max pending audits before the oldest is shed")
		auditWin   = flag.Int("audit-window", 256, "rolling window of the per-technique coverage estimators")
		chaosCfg   = flag.String("chaos-config", "", "arm fault injection: comma-separated point:kind:prob[:latency] rules (kind: error|panic|latency; point may be *); GET /faults lists points")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed of the deterministic fault-injection decisions")
		degradeBgt = flag.Duration("degrade-budget", 500*time.Millisecond, "per-rung time budget of the graceful-degradation ladder (negative disables)")
		shards     = flag.Int("shards", 0, "partition tables into this many shards for scatter-gather execution (0 disables)")
		shardKey   = flag.String("shard-key", "", "shard-routing column (required with -shards > 1)")
		shardKind  = flag.String("shard-kind", "hash", "shard routing: hash or range")
		shardTable = flag.String("shard-table", "", "table to shard (default: every table that has the -shard-key column)")
		shardServe = flag.Bool("shard-serve", false, "run as a shard server: serve one loaded table's partition over the shard wire protocol (/shard/estimate, /shard/rebuild, /shard/health) instead of the full query API")
		shardID    = flag.Int("shard-id", 0, "this shard's index within its group (with -shard-serve)")
		remoteCall = flag.Duration("remote-call-timeout", 0, "per-call deadline on remote-shard RPCs (0 = library default)")
		remoteHdg  = flag.Duration("remote-hedge-delay", 0, "remote-shard hedge delay (0 = adaptive p95, negative disables hedging)")
		remotePrb  = flag.Duration("remote-probe-interval", 0, "remote-shard health-probe cadence (0 = library default, negative disables)")
		telemetry  = flag.Bool("telemetry", false, "enable the observability layer: metric time-series (GET /metrics/history), SLO engine (GET /slo), flight recorder (GET /debug/flightrecord, dumped on SIGQUIT), span export (GET /debug/spans)")
		telemStep  = flag.Duration("telemetry-step", 10*time.Second, "metric snapshot cadence")
		telemWin   = flag.Duration("telemetry-window", 15*time.Minute, "metric history retention window")
		sloConfig  = flag.String("slo-config", "", "JSON file of SLO objectives (default: built-in latency/coverage/contract/degradation objectives)")
		flightN    = flag.Int("flight-queries", 64, "flight-recorder ring size (last N queries, plus N notable)")
		workloadN  = flag.Int("workload-cap", 256, "max query fingerprints tracked by workload insight (GET /workload); LRU-evicted beyond the cap, negative disables")
		flightDump = flag.String("flight-dump", "", "directory for automatic flight-recorder dumps (panic, SLO fast burn, SIGQUIT); empty logs dumps to stderr as JSON")
		loads      loadFlags
		remotes    loadFlags
	)
	flag.Var(&loads, "load", "load a CSV table as name=path.csv (repeatable; types inferred)")
	flag.Var(&remotes, "remote-shards", "attach remote shards as table=addr1,addr2,... (repeatable; requires -shard-key; shard i must be served at the i-th address)")
	flag.Parse()

	if *chaosCfg != "" {
		rules, err := fault.ParseRules(*chaosCfg)
		if err != nil {
			log.Fatalf("aqpd: -chaos-config: %v", err)
		}
		fault.Install(fault.Schedule{Seed: *chaosSeed, Rules: rules})
		var armed []string
		for _, st := range fault.Status() {
			if st.Rule != "" {
				armed = append(armed, st.Rule)
			}
		}
		log.Printf("aqpd: CHAOS INJECTION ARMED (seed %d): %s", *chaosSeed, strings.Join(armed, "  "))
	}

	db, err := buildDB(*gen, *genSkew, *seed, loads)
	if err != nil {
		log.Fatalf("aqpd: %v", err)
	}
	names := db.Catalog().Names()
	if len(names) == 0 {
		log.Fatalf("aqpd: no tables; use -gen N and/or -load name=path.csv")
	}
	for _, n := range names {
		if t, err := db.Table(n); err == nil {
			log.Printf("table %s: %d rows, %d columns", n, t.NumRows(), len(t.Schema()))
		}
	}

	if *shardServe {
		if err := runShardServer(db, *addr, *shardID, *shardTable); err != nil {
			log.Fatalf("aqpd: %v", err)
		}
		return
	}

	if *shards > 0 {
		if err := shardTables(db, *shards, *shardKey, *shardKind, *shardTable); err != nil {
			log.Fatalf("aqpd: %v", err)
		}
	}
	if len(remotes) > 0 {
		opt := aqp.RemoteShardOptions{
			CallTimeout:   *remoteCall,
			HedgeDelay:    *remoteHdg,
			ProbeInterval: *remotePrb,
		}
		if err := attachRemotes(db, remotes, *shardKey, *shardKind, opt); err != nil {
			log.Fatalf("aqpd: %v", err)
		}
		defer db.Close()
	}

	level := slog.LevelInfo
	if *logLevel == "debug" {
		level = slog.LevelDebug
	}
	var handler slog.Handler
	if *logFormat == "json" {
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	} else {
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}

	cfg := server.Config{
		Workers:         *workers,
		QueueCap:        *queueCap,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		MaxQueryWorkers: *qryWorkers,
		Logger:          slog.New(handler),
		SlowQuery:       *slowQuery,
		EnablePprof:     *pprofOn,
		AuditFraction:   *auditFrac,
		AuditQueueCap:   *auditQueue,
		AuditWindow:     *auditWin,
		AuditSeed:       *seed,
		DegradeBudget:   *degradeBgt,
	}
	if *telemetry {
		cfg.Telemetry = true
		cfg.TelemetryStep = *telemStep
		cfg.TelemetryWindow = *telemWin
		cfg.FlightQueries = *flightN
		cfg.FlightSink = flightSink(*flightDump)
		cfg.WorkloadCap = *workloadN
		if *sloConfig != "" {
			raw, err := os.ReadFile(*sloConfig)
			if err != nil {
				log.Fatalf("aqpd: -slo-config: %v", err)
			}
			objs, err := telemetrypkg.ParseObjectives(raw)
			if err != nil {
				log.Fatalf("aqpd: -slo-config: %v", err)
			}
			cfg.Objectives = objs
		}
	}
	srv := server.New(db, cfg)
	if *telemetry {
		srv.TelemetryStore().Start()
		defer srv.TelemetryStore().Close()
		log.Printf("aqpd: telemetry on (step %s, window %s, flight ring %d, workload cap %d); GET /metrics/history, /slo, /workload, /debug/flightrecord, /debug/spans",
			*telemStep, *telemWin, *flightN, *workloadN)
		// SIGQUIT dumps the flight recorder instead of killing the
		// process — the operator's "what just happened" button.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				b := srv.FlightBundle("sigquit")
				cfg.FlightSink(b)
				log.Printf("aqpd: SIGQUIT flight dump: %d queries, %d events", len(b.Queries), len(b.Events))
			}
		}()
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("aqpd listening on %s (%d workers, queue %d, default timeout %s)",
		*addr, *workers, *queueCap, *defTimeout)
	if *auditFrac > 0 {
		log.Printf("aqpd: accuracy auditing %.0f%% of approximate queries (queue %d, window %d); GET /audit for the report",
			*auditFrac*100, *auditQueue, *auditWin)
	}

	select {
	case err := <-errc:
		log.Fatalf("aqpd: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("aqpd: shutdown requested, draining in-flight queries (up to %s)", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop admitting new queries first, then close listeners; queued and
	// running queries finish inside the drain budget.
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("aqpd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("aqpd: http shutdown: %v", err)
	}
	log.Printf("aqpd: bye")
}

// runShardServer serves one loaded table's partition over the shard wire
// protocol, blocking until SIGTERM/interrupt. The process is a leaf: no
// admission control, no engines — the coordinator owns query semantics.
func runShardServer(db *aqp.DB, addr string, shardID int, only string) error {
	names := db.Catalog().Names()
	name := only
	if name == "" {
		if len(names) != 1 {
			return fmt.Errorf("-shard-serve with %d tables loaded requires -shard-table", len(names))
		}
		name = names[0]
	}
	t, err := db.Table(name)
	if err != nil {
		return err
	}
	ss := server.NewShardServer(t, server.ShardServerConfig{ShardID: shardID, Table: name})
	httpSrv := &http.Server{Addr: addr, Handler: ss.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	// The machine-readable line that process supervisors (and the
	// aqpbench chaos gate) wait for before pointing a coordinator here.
	fmt.Printf("SHARD-LISTENING %s\n", ln.Addr().String())
	os.Stdout.Sync()
	log.Printf("aqpd: shard server for table %s (shard %d, %d rows) on %s",
		name, shardID, t.NumRows(), ln.Addr().String())
	select {
	case err := <-errc:
		return fmt.Errorf("shard serve: %w", err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}

// attachRemotes wires -remote-shards specs into the DB: each spec's table
// scatters estimates over the listed shard servers under the robustness
// envelope. Attach is loud: any unreachable shard fails startup.
func attachRemotes(db *aqp.DB, specs []string, keyCol, kindName string, opt aqp.RemoteShardOptions) error {
	kind, err := aqp.ParseShardKind(kindName)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		name, list, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -remote-shards %q: want table=addr1,addr2,...", spec)
		}
		addrs := strings.Split(list, ",")
		if len(addrs) > 1 && keyCol == "" {
			return fmt.Errorf("-remote-shards %s: %d shards require -shard-key", name, len(addrs))
		}
		key := aqp.ShardKey{Column: keyCol, Kind: kind, Count: len(addrs)}
		g, err := db.AttachRemoteShards(name, key, addrs, opt)
		if err != nil {
			return fmt.Errorf("attach remote shards for %s: %w", name, err)
		}
		log.Printf("table %s: %d remote shards attached (%s): %s",
			name, len(addrs), g.Key(), strings.Join(addrs, " "))
	}
	return nil
}

// shardTables partitions the named table (or every table carrying the key
// column) into count shards, so queries scatter-gather with per-shard
// containment. GET /shards reports the resulting layout.
func shardTables(db *aqp.DB, count int, keyCol, kindName, only string) error {
	kind, err := aqp.ParseShardKind(kindName)
	if err != nil {
		return err
	}
	if count > 1 && keyCol == "" {
		return fmt.Errorf("-shards %d requires -shard-key", count)
	}
	key := aqp.ShardKey{Column: keyCol, Kind: kind, Count: count}
	for _, n := range db.Catalog().Names() {
		if only != "" && n != only {
			continue
		}
		if only == "" && keyCol != "" {
			t, err := db.Table(n)
			if err != nil || t.Schema().ColumnIndex(keyCol) < 0 {
				continue
			}
		}
		g, err := db.ShardTable(n, key)
		if err != nil {
			return fmt.Errorf("shard %s: %w", n, err)
		}
		log.Printf("table %s sharded: %s", n, g.Key())
	}
	if len(db.Shards().Names()) == 0 {
		return fmt.Errorf("-shards matched no table (key column %q, table %q)", keyCol, only)
	}
	return nil
}

// buildDB assembles the catalog from the generator and/or CSV loads.
func buildDB(gen int, skew float64, seed int64, loads loadFlags) (*aqp.DB, error) {
	var db *aqp.DB
	if gen > 0 {
		star, err := workload.GenerateStar(workload.Config{
			Seed: seed, LineitemRows: gen, Skew: skew,
		})
		if err != nil {
			return nil, fmt.Errorf("generate workload: %w", err)
		}
		db = aqp.Open(star.Catalog)
	} else {
		db = aqp.New()
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -load %q: want name=path.csv", spec)
		}
		if _, err := server.LoadCSVFile(db, name, path); err != nil {
			return nil, fmt.Errorf("load %s: %w", spec, err)
		}
	}
	return db, nil
}
