package main

// The remote-shard chaos gate: the only place the full multi-process
// topology is exercised for real. The parent re-execs itself once per
// shard (-remote-shard-child); each child deterministically regenerates
// the same dataset, carves out its own partition, and serves the shard
// wire protocol on an ephemeral port. The parent then proves the two
// hard guarantees of the remote seam:
//
//  1. Healthy remote answers — estimates AND CI bounds — are
//     bit-identical to an in-process shard group over the same data at
//     the same N and seeds.
//  2. SIGKILLing a shard server mid-flight yields Degraded-flagged
//     honest answers (exact refuses to extrapolate and drops its
//     guarantee; sampled extrapolates the surviving hash shards and says
//     so), attributed in the response, GET /shards, and the flight
//     recorder — never a silently wrong answer.
//
// The gate writes results/remote_flight.json for jq validation in CI.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	osexec "os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	aqp "repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// remoteGateShards is the cluster size the gate boots. Hash-sharded so a
// killed shard is an unbiased loss the survivors may extrapolate over.
const remoteGateShards = 4

var remoteShardKey = aqp.ShardKey{Column: "ev_user", Kind: aqp.ShardHash, Count: remoteGateShards}

// remoteGateDB builds the gate's deterministic dataset and engine config.
// Parent coordinators and shard children all call this with the same
// (rows, seed), which is what makes cross-process partitions and samples
// line up byte for byte.
func remoteGateDB(rows int, seed int64) (*aqp.DB, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8,
	})
	if err != nil {
		return nil, err
	}
	return aqp.Open(ev.Catalog, aqp.WithOnlineConfig(core.OnlineConfig{
		DefaultRate: 0.1, MinTableRows: 1, Seed: seed,
	})), nil
}

// runRemoteShardChild is the re-exec target: serve one shard of the
// gate's table on an ephemeral port until killed. The SHARD-LISTENING
// line on stdout is the machine-readable readiness handshake the parent
// (and any process supervisor) waits on.
func runRemoteShardChild(id, count, rows int, seed int64) error {
	if id < 0 || count <= id {
		return fmt.Errorf("shard child id %d out of range for count %d", id, count)
	}
	db, err := remoteGateDB(rows, seed)
	if err != nil {
		return err
	}
	key := remoteShardKey
	key.Count = count
	g, err := db.ShardTable("events", key)
	if err != nil {
		return err
	}
	ss := server.NewShardServer(g.ShardTable(id), server.ShardServerConfig{ShardID: id, Table: "events"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("SHARD-LISTENING %s\n", ln.Addr())
	return http.Serve(ln, ss.Handler())
}

// spawnShardChild boots one shard-server child process and waits for its
// readiness handshake, returning the base URL and the process handle.
func spawnShardChild(id, count, rows int, seed int64) (*osexec.Cmd, string, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, "", err
	}
	cmd := osexec.Command(self,
		fmt.Sprintf("-remote-shard-child=%d", id),
		fmt.Sprintf("-remote-shard-count=%d", count),
		fmt.Sprintf("-rows=%d", rows),
		fmt.Sprintf("-seed=%d", seed),
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "SHARD-LISTENING "); ok {
				addrCh <- a
				break
			}
		}
		io.Copy(io.Discard, out)
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			return nil, "", fmt.Errorf("shard child %d exited before announcing its address", id)
		}
		return cmd, "http://" + addr, nil
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("shard child %d did not announce within 60s", id)
	}
}

// remoteGateSummary is the machine-readable gate outcome CI validates
// with jq alongside the embedded flight-recorder bundle.
type remoteGateSummary struct {
	Shards              int             `json:"shards"`
	Rows                int             `json:"rows"`
	Seed                int64           `json:"seed"`
	Killed              int             `json:"killed"`
	HealthyBitIdentical bool            `json:"healthy_bit_identical"`
	HealthyQueries      int             `json:"healthy_queries"`
	Degraded            []int           `json:"degraded"`
	Extrapolated        bool            `json:"extrapolated"`
	Coverage            float64         `json:"coverage"`
	ExactGuarantee      string          `json:"exact_guarantee"`
	DeadShardAttributed bool            `json:"dead_shard_attributed"`
	Flight              json.RawMessage `json:"flight"`
}

func runRemoteGate(rows int, seed int64, outDir string) error {
	if rows < 8192 {
		rows = 8192
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	post := func(h http.Handler, req server.QueryRequest) (int, server.QueryResponse, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, server.QueryResponse{}, nil, err
		}
		r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		var qr server.QueryResponse
		if w.Code == http.StatusOK {
			if err := json.Unmarshal(w.Body.Bytes(), &qr); err != nil {
				return w.Code, qr, w.Body.Bytes(), fmt.Errorf("decode 200 body: %w", err)
			}
		}
		return w.Code, qr, w.Body.Bytes(), nil
	}
	normalize := func(qr server.QueryResponse) server.QueryResponse {
		qr.LatencyMS = 0
		qr.Messages = nil
		qr.Trace = nil
		qr.TraceID = ""
		return qr
	}
	requests := []server.QueryRequest{
		{SQL: "SELECT COUNT(*) AS c, SUM(ev_value) AS s FROM events", Mode: "exact"},
		{SQL: "SELECT ev_group, COUNT(*) AS c, AVG(ev_value) AS a FROM events GROUP BY ev_group ORDER BY ev_group", Mode: "exact"},
		{SQL: "SELECT COUNT(*) AS c, SUM(ev_value) AS s FROM events", Mode: "online", RelError: 0.5, Confidence: 0.95},
		{SQL: "SELECT ev_group, SUM(ev_value) AS s FROM events GROUP BY ev_group ORDER BY ev_group", Mode: "online", RelError: 0.5, Confidence: 0.95},
	}

	// In-process reference: the same data sharded locally at the same N.
	ldb, err := remoteGateDB(rows, seed)
	if err != nil {
		return err
	}
	if _, err := ldb.ShardTable("events", remoteShardKey); err != nil {
		return err
	}
	lh := server.New(ldb, server.Config{Workers: 4, Logger: logger}).Handler()
	var local []server.QueryResponse
	for _, req := range requests {
		code, qr, raw, err := post(lh, req)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("local %q: status %d: %s", req.SQL, code, raw)
		}
		local = append(local, normalize(qr))
	}

	// Boot the shard-server children.
	cmds := make([]*osexec.Cmd, remoteGateShards)
	urls := make([]string, remoteGateShards)
	defer func() {
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()
	for i := 0; i < remoteGateShards; i++ {
		cmd, url, err := spawnShardChild(i, remoteGateShards, rows, seed)
		if err != nil {
			return fmt.Errorf("boot shard %d: %w", i, err)
		}
		cmds[i], urls[i] = cmd, url
		fmt.Printf("remote gate: shard %d pid %d at %s\n", i, cmd.Process.Pid, url)
	}

	// Remote coordinator over the children.
	rdb, err := remoteGateDB(rows, seed)
	if err != nil {
		return err
	}
	if _, err := rdb.AttachRemoteShards("events", remoteShardKey, urls, aqp.RemoteShardOptions{
		ProbeInterval: 100 * time.Millisecond,
		Retry:         fault.RetryConfig{Tries: 2, Base: 5 * time.Millisecond},
	}); err != nil {
		return fmt.Errorf("attach remote shards: %w", err)
	}
	defer rdb.Close()
	rsrv := server.New(rdb, server.Config{Workers: 4, Telemetry: true, FlightQueries: 32, Logger: logger})
	rh := rsrv.Handler()

	// Phase 1 — healthy bit-identity across the process boundary.
	for qi, req := range requests {
		code, qr, raw, err := post(rh, req)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("remote healthy %q: status %d: %s", req.SQL, code, raw)
		}
		if qr.Shards == nil || len(qr.Shards.Degraded) != 0 {
			return fmt.Errorf("remote healthy %q: degraded with all shards up: %s", req.SQL, raw)
		}
		rn := normalize(qr)
		if !reflect.DeepEqual(local[qi], rn) {
			lj, _ := json.Marshal(local[qi])
			rj, _ := json.Marshal(rn)
			return fmt.Errorf("remote answer differs from in-process shards for %q (mode %s):\nlocal:  %s\nremote: %s",
				req.SQL, req.Mode, lj, rj)
		}
	}
	fmt.Printf("remote gate: %d healthy responses bit-identical to in-process shards\n", len(requests))

	// Phase 2 — SIGKILL one shard mid-flight; answers must stay honest.
	const victim = 1
	if err := cmds[victim].Process.Kill(); err != nil {
		return fmt.Errorf("kill shard %d: %w", victim, err)
	}
	cmds[victim].Wait()
	cmds[victim] = nil
	fmt.Printf("remote gate: SIGKILLed shard %d\n", victim)

	sum := remoteGateSummary{
		Shards: remoteGateShards, Rows: rows, Seed: seed, Killed: victim,
		HealthyBitIdentical: true, HealthyQueries: len(requests),
	}

	// Exact under loss: flagged degraded, guarantee gone, no extrapolation.
	code, exQR, raw, err := post(rh, requests[0])
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("degraded exact query: status %d: %s", code, raw)
	}
	if exQR.Shards == nil || len(exQR.Shards.Degraded) != 1 || exQR.Shards.Degraded[0] != victim {
		return fmt.Errorf("killed shard not attributed in exact response: %s", raw)
	}
	if !exQR.Degraded || exQR.Guarantee != "none" || exQR.Shards.Extrapolated {
		return fmt.Errorf("degraded exact answer not honest (degraded=%v guarantee=%q extrapolated=%v): %s",
			exQR.Degraded, exQR.Guarantee, exQR.Shards.Extrapolated, raw)
	}
	sum.ExactGuarantee = exQR.Guarantee

	// Sampled under loss: extrapolated over the surviving hash shards,
	// flagged, with well-formed CIs.
	code, olQR, raw, err := post(rh, requests[2])
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("degraded online query: status %d: %s", code, raw)
	}
	sh := olQR.Shards
	if sh == nil || len(sh.Degraded) != 1 || sh.Degraded[0] != victim || !sh.Extrapolated {
		return fmt.Errorf("degraded online answer not extrapolation-flagged: %s", raw)
	}
	if sh.Coverage <= 0 || sh.Coverage >= 1 {
		return fmt.Errorf("degraded coverage %v not in (0,1): %s", sh.Coverage, raw)
	}
	for _, row := range olQR.Items {
		for _, it := range row {
			if it.HasCI && (!(it.CILo <= it.CIHi) || !(it.Confidence > 0 && it.Confidence <= 1)) {
				return fmt.Errorf("degraded online CI invalid [%g, %g] @ %g: %s", it.CILo, it.CIHi, it.Confidence, raw)
			}
		}
	}
	sum.Degraded = sh.Degraded
	sum.Extrapolated = sh.Extrapolated
	sum.Coverage = sh.Coverage

	// GET /shards must mark the victim down, with address attribution.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := httptest.NewRequest(http.MethodGet, "/shards", nil)
		w := httptest.NewRecorder()
		rh.ServeHTTP(w, r)
		var groups []server.ShardGroupStatus
		if err := json.Unmarshal(w.Body.Bytes(), &groups); err != nil {
			return fmt.Errorf("decode /shards: %w", err)
		}
		if len(groups) == 1 && len(groups[0].Health) == remoteGateShards {
			h := groups[0].Health[victim]
			if !h.Alive && h.Kind == "remote" && h.Addr == urls[victim] {
				sum.DeadShardAttributed = true
			}
		}
		if sum.DeadShardAttributed {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/shards never attributed dead shard %d", victim)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Flight-recorder dump for jq validation in CI.
	bundle := rsrv.FlightBundle("remote-gate")
	sawRemote := false
	for _, e := range bundle.Events {
		if e.Kind == "shard_remote" || e.Kind == "shard" {
			sawRemote = true
			break
		}
	}
	if !sawRemote {
		return fmt.Errorf("flight recorder holds no shard events after the kill")
	}
	if err := writeRemoteGateJSON(outDir, sum, bundle); err != nil {
		return err
	}

	fmt.Printf("remote gate OK: %d shards, killed %d, coverage %.4f, exact guarantee %q, extrapolated sampled answer, dead shard attributed\n",
		remoteGateShards, victim, sum.Coverage, sum.ExactGuarantee)
	return nil
}

func writeRemoteGateJSON(dir string, sum remoteGateSummary, bundle telemetry.Bundle) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fb, err := json.Marshal(bundle)
	if err != nil {
		return err
	}
	sum.Flight = fb
	path := filepath.Join(dir, "remote_flight.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
