// Command aqpbench runs the reproduction experiment suite (E1–E12; see
// DESIGN.md for the per-experiment index) and prints paper-style tables.
//
// Usage:
//
//	aqpbench -exp E4              # one experiment
//	aqpbench -exp all -rows 1000000 -trials 30
//	aqpbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment ID (E1..E12) or 'all'")
		rows   = flag.Int("rows", experiments.DefaultScale.Rows, "fact-table rows")
		trials = flag.Int("trials", experiments.DefaultScale.Trials, "Monte-Carlo trials")
		seed   = flag.Int64("seed", experiments.DefaultScale.Seed, "random seed")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, experiments.Describe(id))
		}
		return
	}

	scale := experiments.Scale{Rows: *rows, Trials: *trials, Seed: *seed}
	ids := experiments.IDs()
	if !strings.EqualFold(*exp, "all") {
		ids = strings.Split(strings.ToUpper(*exp), ",")
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tab)
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
