// Command aqpbench runs the reproduction experiment suite (E1–E12; see
// DESIGN.md for the per-experiment index) and prints paper-style tables.
//
// Usage:
//
//	aqpbench -exp E4              # one experiment
//	aqpbench -exp all -rows 1000000 -trials 30
//	aqpbench -exp E4 -json        # also write results/bench_E4.json
//	aqpbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

// benchJSON is the machine-readable form of one experiment run.
type benchJSON struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Rows      int        `json:"rows"`
	Trials    int        `json:"trials"`
	Seed      int64      `json:"seed"`
	Workers   int        `json:"workers,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Header    []string   `json:"header"`
	Data      [][]string `json:"data"`
	Notes     []string   `json:"notes,omitempty"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (E1..E12) or 'all'")
		rows    = flag.Int("rows", experiments.DefaultScale.Rows, "fact-table rows")
		trials  = flag.Int("trials", experiments.DefaultScale.Trials, "Monte-Carlo trials")
		seed    = flag.Int64("seed", experiments.DefaultScale.Seed, "random seed")
		workers = flag.Int("workers", 0, "morsel-parallel workers per query (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "also write each table to results/bench_<id>.json")
		outDir  = flag.String("out", "results", "directory for -json output")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, experiments.Describe(id))
		}
		return
	}

	scale := experiments.Scale{Rows: *rows, Trials: *trials, Seed: *seed, Workers: *workers}
	ids := experiments.IDs()
	if !strings.EqualFold(*exp, "all") {
		ids = strings.Split(strings.ToUpper(*exp), ",")
	}
	if *jsonOut {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Println(tab)
		fmt.Printf("(%s completed in %s)\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonOut {
			if err := writeJSON(*outDir, tab, scale, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "aqpbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// writeJSON serializes one experiment table to <dir>/bench_<id>.json.
func writeJSON(dir string, tab *experiments.Table, scale experiments.Scale, elapsed time.Duration) error {
	out := benchJSON{
		ID:        tab.ID,
		Title:     tab.Title,
		Rows:      scale.Rows,
		Trials:    scale.Trials,
		Seed:      scale.Seed,
		Workers:   scale.Workers,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		Header:    tab.Header,
		Data:      tab.Rows,
		Notes:     tab.Notes,
	}
	path := filepath.Join(dir, fmt.Sprintf("bench_%s.json", tab.ID))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
