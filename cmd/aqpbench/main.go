// Command aqpbench runs the reproduction experiment suite (E1–E12; see
// DESIGN.md for the per-experiment index) and prints paper-style tables.
//
// Usage:
//
//	aqpbench -exp E4              # one experiment
//	aqpbench -exp all -rows 1000000 -trials 30
//	aqpbench -exp E4 -json        # also write results/bench_E4.json
//	aqpbench -profile             # print an EXPLAIN ANALYZE span profile
//	aqpbench -audit               # smoke-test the accuracy-audit lane
//	aqpbench -chaos               # chaos gate: inject faults, assert survival
//	aqpbench -remote              # remote-shard gate: multi-process cluster, kill a shard, assert honesty
//	aqpbench -telemetry-overhead  # observability-cost gate: p50 regression < 3%
//	aqpbench -list
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"time"

	aqp "repro"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchJSON is the machine-readable form of one experiment run.
type benchJSON struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Rows      int        `json:"rows"`
	Trials    int        `json:"trials"`
	Seed      int64      `json:"seed"`
	Workers   int        `json:"workers,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Header    []string   `json:"header"`
	Data      [][]string `json:"data"`
	Notes     []string   `json:"notes,omitempty"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (E1..E12) or 'all'")
		rows    = flag.Int("rows", experiments.DefaultScale.Rows, "fact-table rows")
		trials  = flag.Int("trials", experiments.DefaultScale.Trials, "Monte-Carlo trials")
		seed    = flag.Int64("seed", experiments.DefaultScale.Seed, "random seed")
		workers = flag.Int("workers", 0, "morsel-parallel workers per query (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "also write each table to results/bench_<id>.json")
		outDir  = flag.String("out", "results", "directory for -json output")
		profile = flag.Bool("profile", false, "print an EXPLAIN ANALYZE span profile of a canonical query and exit")
		auditSm = flag.Bool("audit", false, "run the accuracy-audit smoke: serve sampled queries, drain the audit lane, fail on backlog or errors")
		chaosSm = flag.Bool("chaos", false, "run the chaos gate: serve queries under injected panics/errors, fail on process death, un-flagged degraded responses, invalid CIs, or baseline drift")
		shardSw = flag.Bool("shards", false, "run the shard sweep: scatter-gather latency and CI width at 1/2/4/8 shards")
		teleOv  = flag.Bool("telemetry-overhead", false, "run the observability-cost gate: interleaved A/B exact scans with telemetry on vs off, fail if the telemetry arm's p50 regresses 3% or more")
		contrSw = flag.Bool("contract", false, "run the contract sweep: pilot-sized two-stage runs per engine at 1/2/5% targets, fail if the held rate falls confidently below the stated confidence")
		topSm   = flag.Bool("top", false, "run the workload-insight smoke: serve a mixed template workload, fail unless GET /workload collapses literal variants and ranks the dominant template first")
		remote  = flag.Bool("remote", false, "run the remote-shard chaos gate: boot shard-server child processes, verify bit-identity with in-process shards, SIGKILL one mid-flight, assert honest degraded answers")
		rsChild = flag.Int("remote-shard-child", -1, "internal: serve shard N for the -remote gate (spawned by the gate itself)")
		rsCount = flag.Int("remote-shard-count", 0, "internal: total shard count for -remote-shard-child")
	)
	flag.Parse()

	if *rsChild >= 0 {
		if err := runRemoteShardChild(*rsChild, *rsCount, *rows, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: shard child %d: %v\n", *rsChild, err)
			os.Exit(1)
		}
		return
	}
	if *remote {
		if err := runRemoteGate(*rows, *seed, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: remote gate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *profile {
		if err := runProfile(*rows, *seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: profile: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *auditSm {
		if err := runAuditSmoke(*rows, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: audit smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosSm {
		if err := runChaosGate(*rows, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: chaos gate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *teleOv {
		if err := runTelemetryOverhead(*rows, *seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: telemetry overhead gate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shardSw {
		if err := runShardSweep(*rows, *trials, *seed, *workers, *jsonOut, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: shard sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *contrSw {
		if err := runContractSweep(*rows, *trials, *seed, *workers, *jsonOut, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: contract sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *topSm {
		if err := runTopSmoke(*rows, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: workload-insight smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := experiments.Scale{Rows: *rows, Trials: *trials, Seed: *seed, Workers: *workers}
	ids := experiments.IDs()
	if !strings.EqualFold(*exp, "all") {
		ids = strings.Split(strings.ToUpper(*exp), ",")
	}
	if *jsonOut {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Println(tab)
		fmt.Printf("(%s completed in %s)\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonOut {
			if err := writeJSON(*outDir, tab, scale, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "aqpbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// runProfile generates the star workload, runs one canonical lineitem
// aggregate exactly and once through the advisor, and prints both span
// profiles: per-operator wall time, rows in/out, and per-worker morsel
// counts for the parallel path.
func runProfile(rows int, seed int64, workers int) error {
	const sql = "SELECT l_shipmode, SUM(l_extendedprice), AVG(l_discount), COUNT(*) " +
		"FROM lineitem WHERE l_quantity > 10 GROUP BY l_shipmode"
	star, err := workload.GenerateStar(workload.Config{Seed: seed, LineitemRows: rows})
	if err != nil {
		return err
	}
	db := aqp.Open(star.Catalog)
	ctx := context.Background()
	if workers > 0 {
		ctx = exec.ContextWithWorkers(ctx, workers)
	}

	fmt.Printf("-- %s\n\n", sql)
	pctx, prof := aqp.WithProfile(ctx)
	if _, err := db.QueryContext(pctx, sql); err != nil {
		return err
	}
	fmt.Printf("exact:\n%s\n", prof.String())

	pctx, prof = aqp.WithProfile(ctx)
	res, err := db.QueryApproxContext(pctx, sql+" WITH ERROR 5% CONFIDENCE 95%")
	if err != nil {
		return err
	}
	fmt.Printf("advisor (technique=%s guarantee=%s):\n%s", res.Technique, res.Guarantee, prof.String())
	return nil
}

// runAuditSmoke exercises the full audit lane end to end without a
// server: serve sampled queries over disjoint row windows, hand every
// answer to an embedded auditor, drain, and fail if the backlog is
// nonzero after the drain, any ground-truth run errored, or nothing was
// audited. CI runs this as a release gate on the audit subsystem.
func runAuditSmoke(rows int, seed int64) error {
	const queries = 60
	if rows < queries {
		rows = queries
	}
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8,
	})
	if err != nil {
		return err
	}
	db := aqp.Open(ev.Catalog, aqp.WithOnlineConfig(core.OnlineConfig{
		DefaultRate: 0.5, MinTableRows: 1, Seed: seed,
	}))
	aud := audit.New(db, nil, audit.Config{Fraction: 1, QueueCap: queries + 8, Seed: seed})
	defer aud.Close()

	window := rows / queries
	spec := aqp.ErrorSpec{RelError: 0.5, Confidence: 0.95}
	for i := 0; i < queries; i++ {
		sql := fmt.Sprintf("SELECT SUM(ev_value) FROM events WHERE ev_ts >= %d AND ev_ts < %d",
			i*window, (i+1)*window)
		res, err := db.QueryOnline(sql, spec)
		if err != nil {
			return fmt.Errorf("serve %q: %w", sql, err)
		}
		aud.Offer(res, sql)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := aud.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w (backlog %d)", err, aud.Backlog())
	}
	rep := aud.Report()
	fmt.Print(rep.String())
	if rep.Backlog != 0 {
		return fmt.Errorf("audit backlog %d nonzero after drain", rep.Backlog)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d ground-truth executions failed", rep.Errors)
	}
	if rep.Audited != queries {
		return fmt.Errorf("audited %d of %d served queries", rep.Audited, queries)
	}
	return nil
}

// chaosTechniques pairs each forced mode with the techniques a healthy,
// un-degraded answer may legitimately report. The sampling engines fall
// back to exact on their own (tiny tables, no certified sample), which
// is not degradation; any other substitution must carry degraded:true.
var chaosTechniques = map[string][]string{
	"exact":   {"exact"},
	"online":  {"online-sampling", "exact"},
	"offline": {"offline-samples", "exact"},
	"ola":     {"online-aggregation", "exact"},
}

// runChaosGate is the resilience release gate: record baseline answers
// with injection off, arm a wildcard panic schedule and hammer the
// server handler across every mode, then disarm and assert the baseline
// is bit-identical. During chaos the process must survive every
// injected panic, each response must be either a typed error status or
// a 200 whose substitutions are flagged degraded:true, every reported
// CI must be well-formed, and per-query latency must stay bounded.
func runChaosGate(rows int, seed int64) error {
	const (
		chaosRounds   = 6
		perQueryBound = 30 * time.Second
	)
	if rows < 4096 {
		rows = 4096
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// build constructs a fresh, fully-provisioned deterministic server:
	// offline samples and synopses exist so every ladder rung is live.
	// A fresh instance per phase means chaos-phase breaker state and
	// sample-store mutations cannot leak into the final baseline run.
	build := func() (*server.Server, error) {
		ev, err := workload.GenerateEvents(workload.EventsConfig{
			Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8,
		})
		if err != nil {
			return nil, err
		}
		db := aqp.Open(ev.Catalog,
			aqp.WithOnlineConfig(core.OnlineConfig{DefaultRate: 0.2, MinTableRows: 1, Seed: seed}),
			aqp.WithOfflineConfig(core.OfflineConfig{Seed: seed}),
			aqp.WithOLAConfig(core.OLAConfig{Seed: seed}),
		)
		if err := db.BuildOfflineSamples("events", [][]string{{"ev_group"}}); err != nil {
			return nil, fmt.Errorf("build offline samples: %w", err)
		}
		if err := db.BuildSynopsis("events", "ev_value"); err != nil {
			return nil, fmt.Errorf("build synopsis: %w", err)
		}
		return server.New(db, server.Config{
			Workers:          4,
			QueueCap:         32,
			DefaultTimeout:   10 * time.Second,
			DegradeBudget:    2 * time.Second,
			BreakerThreshold: 8,
			Logger:           logger,
		}), nil
	}

	queries := []string{
		fmt.Sprintf("SELECT SUM(ev_value) FROM events WHERE ev_ts >= 0 AND ev_ts < %d", rows/2),
		"SELECT ev_group, AVG(ev_value), COUNT(*) FROM events GROUP BY ev_group ORDER BY ev_group",
		"SELECT COUNT(*) FROM events WHERE ev_value >= 0",
	}
	modes := []string{"auto", "exact", "online", "offline", "ola"}

	post := func(h http.Handler, req server.QueryRequest) (int, server.QueryResponse, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, server.QueryResponse{}, nil, err
		}
		r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		var qr server.QueryResponse
		if w.Code == http.StatusOK {
			if err := json.Unmarshal(w.Body.Bytes(), &qr); err != nil {
				return w.Code, qr, w.Body.Bytes(), fmt.Errorf("decode 200 body: %w", err)
			}
		}
		return w.Code, qr, w.Body.Bytes(), nil
	}

	// baseline runs every (mode, query) pair once with injection off and
	// returns the responses with timing-dependent fields zeroed, so two
	// baseline passes can be compared bit-for-bit.
	baseline := func(h http.Handler) ([]server.QueryResponse, error) {
		var out []server.QueryResponse
		for _, mode := range modes {
			for _, sql := range queries {
				code, qr, raw, err := post(h, server.QueryRequest{
					SQL: sql, Mode: mode, RelError: 0.5, Confidence: 0.95,
				})
				if err != nil {
					return nil, err
				}
				if code != http.StatusOK {
					return nil, fmt.Errorf("baseline %s %q: status %d: %s", mode, sql, code, raw)
				}
				if qr.Degraded {
					return nil, fmt.Errorf("baseline %s %q: degraded with injection off: %s", mode, sql, raw)
				}
				qr.LatencyMS = 0
				qr.Messages = nil
				qr.Trace = nil
				out = append(out, qr)
			}
		}
		return out, nil
	}

	srv, err := build()
	if err != nil {
		return err
	}
	h := srv.Handler()
	base, err := baseline(h)
	if err != nil {
		return fmt.Errorf("pre-chaos baseline: %w", err)
	}

	fault.Install(fault.Schedule{Seed: seed, Rules: []fault.Rule{
		{Point: "*", Kind: fault.KindPanic, P: 0.25},
	}})
	defer fault.Uninstall()

	allowed := map[int]bool{200: true, 400: true, 408: true, 429: true, 500: true, 503: true, 504: true}
	var served, degraded, errored int
	for round := 0; round < chaosRounds; round++ {
		for _, mode := range modes {
			for _, sql := range queries {
				start := time.Now()
				code, qr, raw, err := post(h, server.QueryRequest{
					SQL: sql, Mode: mode, RelError: 0.5, Confidence: 0.95,
				})
				if err != nil {
					return fmt.Errorf("chaos %s %q: %w", mode, sql, err)
				}
				if d := time.Since(start); d > perQueryBound {
					return fmt.Errorf("chaos %s %q: latency %s exceeds %s bound", mode, sql, d, perQueryBound)
				}
				if !allowed[code] {
					return fmt.Errorf("chaos %s %q: unexpected status %d: %s", mode, sql, code, raw)
				}
				if code != http.StatusOK {
					errored++
					continue
				}
				served++
				if qr.DegradedFrom != "" && !qr.Degraded {
					return fmt.Errorf("chaos %s %q: un-flagged degraded response (degraded_from=%q): %s",
						mode, sql, qr.DegradedFrom, raw)
				}
				if want := chaosTechniques[mode]; want != nil && !qr.Degraded {
					ok := false
					for _, t := range want {
						if qr.Technique == t {
							ok = true
							break
						}
					}
					if !ok {
						return fmt.Errorf("chaos %s %q: technique %s substituted without degraded flag: %s",
							mode, sql, qr.Technique, raw)
					}
				}
				if qr.Degraded {
					degraded++
				}
				for _, row := range qr.Items {
					for _, it := range row {
						if !it.HasCI {
							continue
						}
						// NaN fails both comparisons, so this also
						// rejects estimates whose interval never folded.
						if !(it.CILo <= it.CIHi) || !(it.Confidence > 0 && it.Confidence <= 1) {
							return fmt.Errorf("chaos %s %q: invalid CI [%g, %g] at confidence %g: %s",
								mode, sql, it.CILo, it.CIHi, it.Confidence, raw)
						}
					}
				}
			}
		}
	}

	var hits, fires int64
	for _, st := range fault.Status() {
		hits += st.Hits
		fires += st.Fires
	}
	if fires == 0 {
		return fmt.Errorf("no faults fired across %d chaos queries (%d point hits): injection not wired", served+errored, hits)
	}
	fault.Uninstall()

	srv2, err := build()
	if err != nil {
		return err
	}
	after, err := baseline(srv2.Handler())
	if err != nil {
		return fmt.Errorf("post-chaos baseline: %w", err)
	}
	if !reflect.DeepEqual(base, after) {
		return fmt.Errorf("baseline drift: responses with injection off differ before and after the chaos phase")
	}

	fmt.Printf("chaos gate: %d queries under injection (%d ok, %d degraded, %d typed errors); %d faults fired across %d points; baseline bit-identical with injection off\n",
		served+errored, served, degraded, errored, fires, len(fault.Status()))
	return nil
}

// runTelemetryOverhead is the observability-cost release gate: it
// interleaves identical exact scans against two in-process servers —
// one bare, one with the flight recorder, span exporter, time-series
// store, and SLO engine all live — and fails when the telemetry arm's
// p50 latency regresses by 3% or more. Interleaving A/B pairs inside
// one process (and flipping the within-pair order every iteration)
// cancels the drift that would dominate a run-A-then-run-B comparison
// at millisecond scales: page-cache warming, GC cadence, CPU thermal
// state. The telemetry arm is fully armed — per-query span trees,
// flight-recorder rings, and a running snapshot ticker — so the gate
// measures the real production cost, not a stripped-down one.
func runTelemetryOverhead(rows int, seed int64, workers int) error {
	const (
		pairs      = 60
		warmup     = 8
		maxRegress = 0.03
	)
	if rows < 500_000 {
		rows = 500_000 // the gate's canonical scale: a 500k-row exact scan
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8,
	})
	if err != nil {
		return err
	}
	// Both servers share one read-only DB so the only variable between
	// the arms is the observability layer itself.
	db := aqp.Open(ev.Catalog)
	bare := server.New(db, server.Config{Workers: workers, Logger: logger})
	tele := server.New(db, server.Config{Workers: workers, Logger: logger, Telemetry: true})
	tele.TelemetryStore().Start()
	defer tele.TelemetryStore().Close()

	body, err := json.Marshal(server.QueryRequest{
		SQL: "SELECT SUM(ev_value), COUNT(*) FROM events WHERE ev_value >= 0", Mode: "exact",
	})
	if err != nil {
		return err
	}
	run := func(h http.Handler) (time.Duration, error) {
		r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(w, r)
		d := time.Since(start)
		if w.Code != http.StatusOK {
			return 0, fmt.Errorf("status %d: %s", w.Code, w.Body.String())
		}
		return d, nil
	}
	quantile := func(ds []time.Duration, q float64) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		i := int(q * float64(len(s)-1))
		return s[i]
	}

	bh, th := bare.Handler(), tele.Handler()
	for i := 0; i < warmup; i++ {
		if _, err := run(bh); err != nil {
			return fmt.Errorf("warmup bare: %w", err)
		}
		if _, err := run(th); err != nil {
			return fmt.Errorf("warmup telemetry: %w", err)
		}
	}
	var bareLat, teleLat []time.Duration
	for i := 0; i < pairs; i++ {
		if i%2 == 0 {
			d, err := run(bh)
			if err != nil {
				return fmt.Errorf("pair %d bare: %w", i, err)
			}
			bareLat = append(bareLat, d)
			d, err = run(th)
			if err != nil {
				return fmt.Errorf("pair %d telemetry: %w", i, err)
			}
			teleLat = append(teleLat, d)
		} else {
			d, err := run(th)
			if err != nil {
				return fmt.Errorf("pair %d telemetry: %w", i, err)
			}
			teleLat = append(teleLat, d)
			d, err = run(bh)
			if err != nil {
				return fmt.Errorf("pair %d bare: %w", i, err)
			}
			bareLat = append(bareLat, d)
		}
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	p50b, p50t := quantile(bareLat, 0.5), quantile(teleLat, 0.5)
	p90b, p90t := quantile(bareLat, 0.9), quantile(teleLat, 0.9)
	regress := (ms(p50t) - ms(p50b)) / ms(p50b)
	fmt.Printf("telemetry overhead gate: rows=%d pairs=%d (interleaved, order-flipped)\n", rows, pairs)
	fmt.Printf("  bare:      p50 %8.3f ms   p90 %8.3f ms\n", ms(p50b), ms(p90b))
	fmt.Printf("  telemetry: p50 %8.3f ms   p90 %8.3f ms\n", ms(p50t), ms(p90t))
	fmt.Printf("  p50 regression %+.2f%% (bound %+.0f%%)\n", 100*regress, 100*maxRegress)
	if regress >= maxRegress {
		return fmt.Errorf("telemetry p50 %.3fms regresses %.2f%% over bare p50 %.3fms (bound %.0f%%)",
			ms(p50t), 100*regress, ms(p50b), 100*maxRegress)
	}
	fmt.Println("  gate ok")
	return nil
}

// runShardSweep measures scatter-gather execution against the unsharded
// baseline across shard counts: exact and sampled latency plus the
// realized relative CI half-width of the stratified composition. The
// single-shard row doubles as the overhead floor — it runs the scatter
// path over the base table itself.
//
// One dataset is generated once from the base seed and every row of the
// sweep runs against it with the same pinned engine seed, so the
// CI-width column varies only with the shard count — per-shard seeds are
// derived deterministically from the one base seed — and
// results/bench_shards.json is reproducible run-to-run. Widths are
// medians over the trials (they are bit-identical across trials under a
// pinned seed; the median guards against that invariant silently
// breaking rather than reporting whichever trial ran last).
func runShardSweep(rows, trials int, seed int64, workers int, jsonOut bool, outDir string) error {
	const sql = "SELECT SUM(ev_value) AS s FROM events"
	if trials > 10 {
		trials = 10 // per-count medians stabilize quickly; keep the sweep brisk
	}
	if trials < 3 {
		trials = 3
	}
	ctx := context.Background()
	if workers > 0 {
		ctx = exec.ContextWithWorkers(ctx, workers)
	}

	tab := &experiments.Table{
		ID:     "shards",
		Title:  "Scatter-gather shard sweep: latency and CI width vs shard count",
		Header: []string{"shards", "exact_ms", "online_ms", "rel_ci_width", "coverage"},
		Notes: []string{
			fmt.Sprintf("events rows=%d trials=%d seed=%d query=%q", rows, trials, seed, sql),
			"shards=0 is the unsharded baseline; shards=1 adds only scatter overhead",
			"rel_ci_width is the realized relative CI half-width of the online estimate",
			"one dataset and one pinned engine seed across the whole sweep; widths are medians over trials",
		},
	}

	median := func(ds []time.Duration) float64 {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return float64(ds[len(ds)/2].Microseconds()) / 1e3
	}
	medianF := func(fs []float64) float64 {
		sort.Float64s(fs)
		return fs[len(fs)/2]
	}

	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8})
	if err != nil {
		return err
	}
	for _, n := range []int{0, 1, 2, 4, 8} {
		db := aqp.Open(ev.Catalog, aqp.WithOnlineConfig(core.OnlineConfig{
			DefaultRate: 0.1, MinTableRows: 1, Seed: seed}))
		if n > 0 {
			if _, err := db.ShardTable("events", aqp.ShardKey{
				Column: "ev_user", Kind: aqp.ShardHash, Count: n}); err != nil {
				return err
			}
		}

		var exactLat, onlineLat []time.Duration
		var widths, coverages []float64
		spec := aqp.ErrorSpec{RelError: 0.5, Confidence: 0.95}
		for trial := 0; trial < trials; trial++ {
			start := time.Now()
			if _, err := db.QueryContext(ctx, sql); err != nil {
				return fmt.Errorf("shards=%d exact: %w", n, err)
			}
			exactLat = append(exactLat, time.Since(start))

			start = time.Now()
			res, err := db.QueryOnlineContext(ctx, sql, spec)
			if err != nil {
				return fmt.Errorf("shards=%d online: %w", n, err)
			}
			onlineLat = append(onlineLat, time.Since(start))
			widths = append(widths, res.MaxRelHalfWidth())
			coverage := 1.0
			if sh := res.Diagnostics.Shards; sh != nil {
				coverage = sh.CoverageFraction
			}
			coverages = append(coverages, coverage)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", median(exactLat)),
			fmt.Sprintf("%.3f", median(onlineLat)),
			fmt.Sprintf("%.4f", medianF(widths)),
			fmt.Sprintf("%.4f", medianF(coverages)),
		})
	}

	fmt.Println(tab)
	if jsonOut {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		scale := experiments.Scale{Rows: rows, Trials: trials, Seed: seed, Workers: workers}
		return writeJSON(outDir, tab, scale, 0)
	}
	return nil
}

// runContractSweep is the a-priori contract release gate: for each
// sampling engine × error target it runs pilot-sized two-stage contract
// queries over freshly seeded engines (one derived seed per trial, all
// pinned to the base seed) and checks every "met" verdict against the
// exact answer. The gate fails — exit nonzero — when the held rate falls
// confidently below the stated confidence: Wilson upper bound of the
// hold rate under 95% means broken contracts have exceeded their
// 1−confidence allowance beyond what sampling noise explains.
func runContractSweep(rows, trials int, seed int64, workers int, jsonOut bool, outDir string) error {
	const conf = 0.95
	if rows < 2000 {
		rows = 2000
	}
	if trials < 10 {
		trials = 10
	}
	if trials > 200 {
		trials = 200
	}
	sql := fmt.Sprintf("SELECT SUM(ev_value) FROM events WHERE ev_ts >= 0 AND ev_ts < %d", rows/2)
	ctx := context.Background()
	if workers > 0 {
		ctx = exec.ContextWithWorkers(ctx, workers)
	}

	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8})
	if err != nil {
		return err
	}
	truthRes, err := aqp.Open(ev.Catalog).QueryContext(ctx, sql)
	if err != nil {
		return fmt.Errorf("ground truth: %w", err)
	}
	truth := truthRes.Float(0, 0)

	tab := &experiments.Table{
		ID:    "contract",
		Title: "A-priori contract sweep: verdicts and held rate per engine and target",
		Header: []string{"engine", "target", "trials", "met", "missed", "infeasible",
			"held", "held_rate", "wilson_lo", "wilson_hi", "gate"},
		Notes: []string{
			fmt.Sprintf("events rows=%d trials=%d seed=%d conf=%g query=%q", rows, trials, seed, conf, sql),
			"held = a met-verdict answer whose true relative error is within the target",
			fmt.Sprintf("gate fails when Wilson hi of the held rate drops below the stated confidence %g", conf),
		},
	}

	engines := []aqp.Technique{aqp.TechniqueOnline, aqp.TechniqueOLA, aqp.TechniqueOffline}
	targets := []float64{0.01, 0.02, 0.05}
	failed := false
	for _, tech := range engines {
		for _, target := range targets {
			spec := aqp.ErrorSpec{RelError: target, Confidence: conf}
			cov := stats.NewRollingCoverage(trials)
			var met, missed, infeasible, held int
			for trial := 0; trial < trials; trial++ {
				tseed := seed + int64(trial)*1_000_003
				db := aqp.Open(ev.Catalog,
					aqp.WithOnlineConfig(core.OnlineConfig{DefaultRate: 0.5, MinTableRows: 1, Seed: tseed}),
					aqp.WithOLAConfig(core.OLAConfig{Seed: tseed}),
					aqp.WithOfflineConfig(core.OfflineConfig{Seed: tseed}))
				res, err := db.QueryContractOnContext(ctx, tech, sql, spec)
				if err != nil {
					return fmt.Errorf("%s target=%g trial=%d: %w", tech, target, trial, err)
				}
				c := res.Diagnostics.Contract
				if c == nil {
					return fmt.Errorf("%s target=%g trial=%d: no contract stamped", tech, target, trial)
				}
				switch c.Verdict {
				case aqp.ContractMet:
					met++
					ok := math.Abs(res.Float(0, 0)-truth) <= target*math.Abs(truth)
					cov.Push(ok)
					if ok {
						held++
					}
				case aqp.ContractMissed:
					missed++
				case aqp.ContractInfeasible:
					infeasible++
				}
			}
			gate := "ok"
			wil := stats.Interval{Lo: 0, Hi: 1}
			if cov.N() > 0 {
				wil = cov.Wilson(0.95)
				if wil.Hi < conf {
					gate = "FAIL"
					failed = true
				}
			}
			tab.Rows = append(tab.Rows, []string{
				string(tech), fmt.Sprintf("%g", target), fmt.Sprintf("%d", trials),
				fmt.Sprintf("%d", met), fmt.Sprintf("%d", missed), fmt.Sprintf("%d", infeasible),
				fmt.Sprintf("%d", held), fmt.Sprintf("%.4f", cov.Rate()),
				fmt.Sprintf("%.4f", wil.Lo), fmt.Sprintf("%.4f", wil.Hi), gate,
			})
		}
	}

	fmt.Println(tab)
	if jsonOut {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		scale := experiments.Scale{Rows: rows, Trials: trials, Seed: seed, Workers: workers}
		if err := writeJSON(outDir, tab, scale, 0); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("held rate confidently below the stated confidence %g for at least one engine × target", conf)
	}
	return nil
}

// writeJSON serializes one experiment table to <dir>/bench_<id>.json.
func writeJSON(dir string, tab *experiments.Table, scale experiments.Scale, elapsed time.Duration) error {
	out := benchJSON{
		ID:        tab.ID,
		Title:     tab.Title,
		Rows:      scale.Rows,
		Trials:    scale.Trials,
		Seed:      scale.Seed,
		Workers:   scale.Workers,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		Header:    tab.Header,
		Data:      tab.Rows,
		Notes:     tab.Notes,
	}
	path := filepath.Join(dir, fmt.Sprintf("bench_%s.json", tab.ID))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runTopSmoke is the workload-insight gate: serve a mixed template
// workload through the server handler — one dominant template
// instantiated with many distinct literals, plus minority shapes — then
// assert GET /workload collapsed the literal variants onto a single
// fingerprint and ranks it first by traffic.
func runTopSmoke(rows int, seed int64) error {
	const (
		dominant = 24 // instances of the dominant template (distinct literals)
		minority = 6  // instances of each minority shape
	)
	if rows < 4096 {
		rows = 4096
	}
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8,
	})
	if err != nil {
		return err
	}
	db := aqp.Open(ev.Catalog, aqp.WithOnlineConfig(core.OnlineConfig{
		DefaultRate: 0.5, MinTableRows: 1, Seed: seed,
	}))
	srv := server.New(db, server.Config{
		Workers:   4,
		QueueCap:  32,
		Telemetry: true,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	h := srv.Handler()

	post := func(req server.QueryRequest) (server.QueryResponse, error) {
		body, _ := json.Marshal(req)
		r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			return server.QueryResponse{}, fmt.Errorf("%q: status %d: %s", req.SQL, w.Code, w.Body.String())
		}
		var qr server.QueryResponse
		if err := json.Unmarshal(w.Body.Bytes(), &qr); err != nil {
			return server.QueryResponse{}, fmt.Errorf("decode: %w", err)
		}
		return qr, nil
	}

	// Dominant template: a selective SUM whose threshold literal varies
	// per instance — the exact case fingerprinting must collapse.
	window := rows / dominant
	domFP := ""
	for i := 0; i < dominant; i++ {
		qr, err := post(server.QueryRequest{
			SQL: fmt.Sprintf("SELECT SUM(ev_value) FROM events WHERE ev_ts >= %d AND ev_ts < %d",
				i*window, (i+1)*window),
			Mode: "online", RelError: 0.5, Confidence: 0.95,
		})
		if err != nil {
			return err
		}
		if qr.Fingerprint == "" {
			return fmt.Errorf("response carries no fingerprint")
		}
		if domFP == "" {
			domFP = qr.Fingerprint
		} else if qr.Fingerprint != domFP {
			return fmt.Errorf("literal variants split fingerprints: %s vs %s", domFP, qr.Fingerprint)
		}
	}
	for i := 0; i < minority; i++ {
		if _, err := post(server.QueryRequest{
			SQL: "SELECT ev_group, AVG(ev_value) FROM events GROUP BY ev_group", Mode: "exact",
		}); err != nil {
			return err
		}
		if _, err := post(server.QueryRequest{
			SQL: fmt.Sprintf("SELECT COUNT(*) FROM events WHERE ev_value > %d", i), Mode: "exact",
		}); err != nil {
			return err
		}
	}

	r := httptest.NewRequest(http.MethodGet, "/workload?by=traffic", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		return fmt.Errorf("GET /workload: status %d: %s", w.Code, w.Body.String())
	}
	var wr server.WorkloadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &wr); err != nil {
		return fmt.Errorf("decode /workload: %w", err)
	}
	if wr.Summary.Fingerprints != 3 {
		return fmt.Errorf("tracked %d fingerprints, want 3 (dominant + 2 minority)", wr.Summary.Fingerprints)
	}
	if len(wr.Top) == 0 {
		return fmt.Errorf("empty /workload top")
	}
	top := wr.Top[0]
	if top.Fingerprint != domFP {
		return fmt.Errorf("dominant template not ranked first: top is %s (%s) with %d queries, want %s",
			top.Fingerprint, top.Template, top.Queries, domFP)
	}
	if top.Queries != dominant {
		return fmt.Errorf("dominant card has %d queries, want %d (literal variants not collapsed)",
			top.Queries, dominant)
	}
	if !strings.Contains(top.Template, "?") {
		return fmt.Errorf("dominant template %q is not literal-normalized", top.Template)
	}
	fmt.Printf("workload-insight smoke OK: %d shapes over %d queries; top %s ×%d  %s\n",
		wr.Summary.Fingerprints, wr.Summary.Offered, top.Fingerprint, top.Queries, top.Template)
	for _, c := range wr.Top {
		fmt.Printf("  %s ×%-3d p95=%.2fms  %s\n", c.Fingerprint, c.Queries, c.LatencyP95MS, c.Template)
	}
	return nil
}
