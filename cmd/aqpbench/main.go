// Command aqpbench runs the reproduction experiment suite (E1–E12; see
// DESIGN.md for the per-experiment index) and prints paper-style tables.
//
// Usage:
//
//	aqpbench -exp E4              # one experiment
//	aqpbench -exp all -rows 1000000 -trials 30
//	aqpbench -exp E4 -json        # also write results/bench_E4.json
//	aqpbench -profile             # print an EXPLAIN ANALYZE span profile
//	aqpbench -audit               # smoke-test the accuracy-audit lane
//	aqpbench -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	aqp "repro"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchJSON is the machine-readable form of one experiment run.
type benchJSON struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Rows      int        `json:"rows"`
	Trials    int        `json:"trials"`
	Seed      int64      `json:"seed"`
	Workers   int        `json:"workers,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Header    []string   `json:"header"`
	Data      [][]string `json:"data"`
	Notes     []string   `json:"notes,omitempty"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (E1..E12) or 'all'")
		rows    = flag.Int("rows", experiments.DefaultScale.Rows, "fact-table rows")
		trials  = flag.Int("trials", experiments.DefaultScale.Trials, "Monte-Carlo trials")
		seed    = flag.Int64("seed", experiments.DefaultScale.Seed, "random seed")
		workers = flag.Int("workers", 0, "morsel-parallel workers per query (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "also write each table to results/bench_<id>.json")
		outDir  = flag.String("out", "results", "directory for -json output")
		profile = flag.Bool("profile", false, "print an EXPLAIN ANALYZE span profile of a canonical query and exit")
		auditSm = flag.Bool("audit", false, "run the accuracy-audit smoke: serve sampled queries, drain the audit lane, fail on backlog or errors")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-5s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *profile {
		if err := runProfile(*rows, *seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: profile: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *auditSm {
		if err := runAuditSmoke(*rows, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: audit smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := experiments.Scale{Rows: *rows, Trials: *trials, Seed: *seed, Workers: *workers}
	ids := experiments.IDs()
	if !strings.EqualFold(*exp, "all") {
		ids = strings.Split(strings.ToUpper(*exp), ",")
	}
	if *jsonOut {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Println(tab)
		fmt.Printf("(%s completed in %s)\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonOut {
			if err := writeJSON(*outDir, tab, scale, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "aqpbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// runProfile generates the star workload, runs one canonical lineitem
// aggregate exactly and once through the advisor, and prints both span
// profiles: per-operator wall time, rows in/out, and per-worker morsel
// counts for the parallel path.
func runProfile(rows int, seed int64, workers int) error {
	const sql = "SELECT l_shipmode, SUM(l_extendedprice), AVG(l_discount), COUNT(*) " +
		"FROM lineitem WHERE l_quantity > 10 GROUP BY l_shipmode"
	star, err := workload.GenerateStar(workload.Config{Seed: seed, LineitemRows: rows})
	if err != nil {
		return err
	}
	db := aqp.Open(star.Catalog)
	ctx := context.Background()
	if workers > 0 {
		ctx = exec.ContextWithWorkers(ctx, workers)
	}

	fmt.Printf("-- %s\n\n", sql)
	pctx, prof := aqp.WithProfile(ctx)
	if _, err := db.QueryContext(pctx, sql); err != nil {
		return err
	}
	fmt.Printf("exact:\n%s\n", prof.String())

	pctx, prof = aqp.WithProfile(ctx)
	res, err := db.QueryApproxContext(pctx, sql+" WITH ERROR 5% CONFIDENCE 95%")
	if err != nil {
		return err
	}
	fmt.Printf("advisor (technique=%s guarantee=%s):\n%s", res.Technique, res.Guarantee, prof.String())
	return nil
}

// runAuditSmoke exercises the full audit lane end to end without a
// server: serve sampled queries over disjoint row windows, hand every
// answer to an embedded auditor, drain, and fail if the backlog is
// nonzero after the drain, any ground-truth run errored, or nothing was
// audited. CI runs this as a release gate on the audit subsystem.
func runAuditSmoke(rows int, seed int64) error {
	const queries = 60
	if rows < queries {
		rows = queries
	}
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: seed, Rows: rows, NumGroups: 16, Skew: 0.8,
	})
	if err != nil {
		return err
	}
	db := aqp.Open(ev.Catalog, aqp.WithOnlineConfig(core.OnlineConfig{
		DefaultRate: 0.5, MinTableRows: 1, Seed: seed,
	}))
	aud := audit.New(db, nil, audit.Config{Fraction: 1, QueueCap: queries + 8, Seed: seed})
	defer aud.Close()

	window := rows / queries
	spec := aqp.ErrorSpec{RelError: 0.5, Confidence: 0.95}
	for i := 0; i < queries; i++ {
		sql := fmt.Sprintf("SELECT SUM(ev_value) FROM events WHERE ev_ts >= %d AND ev_ts < %d",
			i*window, (i+1)*window)
		res, err := db.QueryOnline(sql, spec)
		if err != nil {
			return fmt.Errorf("serve %q: %w", sql, err)
		}
		aud.Offer(res, sql)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := aud.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w (backlog %d)", err, aud.Backlog())
	}
	rep := aud.Report()
	fmt.Print(rep.String())
	if rep.Backlog != 0 {
		return fmt.Errorf("audit backlog %d nonzero after drain", rep.Backlog)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d ground-truth executions failed", rep.Errors)
	}
	if rep.Audited != queries {
		return fmt.Errorf("audited %d of %d served queries", rep.Audited, queries)
	}
	return nil
}

// writeJSON serializes one experiment table to <dir>/bench_<id>.json.
func writeJSON(dir string, tab *experiments.Table, scale experiments.Scale, elapsed time.Duration) error {
	out := benchJSON{
		ID:        tab.ID,
		Title:     tab.Title,
		Rows:      scale.Rows,
		Trials:    scale.Trials,
		Seed:      scale.Seed,
		Workers:   scale.Workers,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		Header:    tab.Header,
		Data:      tab.Rows,
		Notes:     tab.Notes,
	}
	path := filepath.Join(dir, fmt.Sprintf("bench_%s.json", tab.ID))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
