package aqp_test

import (
	"fmt"

	aqp "repro"
)

// ExampleDB_Query shows exact execution of a grouped aggregate.
func ExampleDB_Query() {
	db := aqp.New()
	tbl, _ := db.CreateTable("orders", aqp.Schema{
		{Name: "status", Type: aqp.TypeString},
		{Name: "total", Type: aqp.TypeFloat64},
	})
	_ = tbl.AppendRow(aqp.Str("open"), aqp.Float64(10))
	_ = tbl.AppendRow(aqp.Str("open"), aqp.Float64(20))
	_ = tbl.AppendRow(aqp.Str("done"), aqp.Float64(5))

	res, _ := db.Query("SELECT status, COUNT(*) AS n, SUM(total) AS t FROM orders GROUP BY status ORDER BY status")
	for i := 0; i < res.NumRows(); i++ {
		fmt.Printf("%s n=%v t=%v\n", res.Rows[i][0], res.Rows[i][1], res.Rows[i][2])
	}
	fmt.Println(res.Guarantee)
	// Output:
	// done n=1 t=5
	// open n=2 t=30
	// exact
}

// ExampleDB_Advise shows the advisor explaining its routing.
func ExampleDB_Advise() {
	db := aqp.New()
	tbl, _ := db.CreateTable("t", aqp.Schema{{Name: "x", Type: aqp.TypeFloat64}})
	_ = tbl.AppendRow(aqp.Float64(1))

	// MIN is non-linear: no sample can bound its error.
	d, _ := db.Advise("SELECT MIN(x) FROM t")
	fmt.Println(d.Technique)
	// Output:
	// exact
}

// ExampleDB_QueryAsWritten shows manual sampler control via TABLESAMPLE.
func ExampleDB_QueryAsWritten() {
	db := aqp.New()
	tbl, _ := db.CreateTable("big", aqp.Schema{{Name: "v", Type: aqp.TypeFloat64}})
	for i := 0; i < 10000; i++ {
		_ = tbl.AppendRow(aqp.Float64(1))
	}
	// TABLESAMPLE BERNOULLI(100) keeps everything at weight 1: exact sum.
	res, _ := db.QueryAsWritten("SELECT SUM(v) FROM big TABLESAMPLE BERNOULLI (100)")
	fmt.Println(res.Rows[0][0])
	// Output:
	// 10000
}

// ExampleErrorSpec shows the accuracy-contract semantics.
func ExampleErrorSpec() {
	spec := aqp.ErrorSpec{RelError: 0.05, Confidence: 0.95}
	fmt.Println(spec.Valid())
	fmt.Println(aqp.ErrorSpec{}.Valid())
	// Output:
	// true
	// false
}
