// Package core implements the AQP framework that is this repository's
// reproduction target: the design space of approximate query processing
// surveyed by "Approximate Query Processing: No Silver Bullet" (SIGMOD
// 2017). It provides four interchangeable engines over the same SQL and
// storage substrate —
//
//   - Exact: reference execution;
//   - Online: Quickr-style query-time sampling (no precomputation, one
//     pass, a-posteriori error reporting);
//   - Offline: BlinkDB-style precomputed stratified samples over query
//     column sets with error–latency profiles (a-priori error guarantees
//     on predicted workloads, at the cost of maintenance);
//   - OLA: online aggregation with progressively tightening estimates —
//
// plus an Advisor that picks a technique per query and reports, per the
// paper's thesis, which of the desirable properties each choice gives up.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/contract"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
)

// ErrorSpec is the user's accuracy contract: every aggregate estimate must
// simultaneously be within RelError of the truth with probability at least
// Confidence.
type ErrorSpec struct {
	RelError   float64
	Confidence float64
}

// Valid reports whether the spec is well-formed.
func (s ErrorSpec) Valid() bool {
	return s.RelError > 0 && s.RelError < 1 && s.Confidence > 0 && s.Confidence < 1
}

// DefaultErrorSpec is 5% relative error at 95% confidence.
var DefaultErrorSpec = ErrorSpec{RelError: 0.05, Confidence: 0.95}

// Guarantee classifies the statistical strength of a result, the axis the
// paper argues systems are least honest about.
type Guarantee uint8

// Guarantee levels.
const (
	// GuaranteeExact: the answer is exact.
	GuaranteeExact Guarantee = iota
	// GuaranteeAPriori: the error spec was certified before execution
	// (offline samples with a valid profile, fresh data, in-QCS query).
	GuaranteeAPriori
	// GuaranteeAPosteriori: confidence intervals were computed from the
	// realized sample; the spec was checked after the fact.
	GuaranteeAPosteriori
	// GuaranteeNone: the result is approximate with no defensible error
	// statement (e.g. stale offline samples, non-analyzable aggregates).
	GuaranteeNone
)

// String names the guarantee level.
func (g Guarantee) String() string {
	switch g {
	case GuaranteeExact:
		return "exact"
	case GuaranteeAPriori:
		return "a-priori"
	case GuaranteeAPosteriori:
		return "a-posteriori"
	default:
		return "none"
	}
}

// Technique identifies an AQP engine.
type Technique string

// Techniques.
const (
	TechniqueExact    Technique = "exact"
	TechniqueOnline   Technique = "online-sampling"
	TechniqueOffline  Technique = "offline-samples"
	TechniqueOLA      Technique = "online-aggregation"
	TechniqueSynopsis Technique = "synopsis"
)

// ItemResult is the statistical annotation of one select item in one
// output row.
type ItemResult struct {
	// Name is the output column name.
	Name string
	// Value is the point value (also present in the result row).
	Value storage.Value
	// IsAggregate reports whether the item involves aggregation.
	IsAggregate bool
	// HasCI reports whether a confidence interval could be derived.
	HasCI bool
	// CI is the confidence interval (when HasCI).
	CI stats.Interval
	// RelHalfWidth is the CI half-width relative to the estimate.
	RelHalfWidth float64
	// Variance and SampleN are the CLT moments behind the interval (the
	// estimator's variance and the sampled rows contributing to it),
	// stamped for sampled aggregates so a pilot run's result is enough to
	// size a contract stage two. Zero for exact or non-CLT items.
	Variance float64
	SampleN  float64
}

// Diagnostics records the physical and statistical facts of an execution.
type Diagnostics struct {
	Counters exec.Counters
	// SampleFraction is rows emitted / rows in sampled tables (1 for
	// exact runs).
	SampleFraction float64
	// Latency is wall-clock execution time.
	Latency time.Duration
	// FellBackToExact reports that the engine declined to approximate.
	FellBackToExact bool
	// SpecSatisfied reports whether every aggregate's CI met the spec
	// (meaningful for approximate runs).
	SpecSatisfied bool
	// Stale reports that an offline sample was out of date.
	Stale bool
	// Partial reports that execution was cut short by a deadline or
	// cancellation and the result is the best estimate accumulated so
	// far (online aggregation's graceful degradation).
	Partial bool
	// Degraded reports that this result is not what the caller asked for
	// but the best available substitute: a ladder fallback to a cheaper
	// technique, or a partial estimate kept after a mid-query fault. The
	// CI still describes exactly the estimate returned.
	Degraded bool
	// Workers is the resolved morsel-parallel worker count the execution
	// ran with (1 = serial).
	Workers int
	// Fingerprint is the stable hash of the query's shape (the
	// literal-normalized canonical SQL plus its query-column-set),
	// stamped by the facade so callers can correlate results, audits,
	// and logs to the workload template that produced them.
	Fingerprint string
	// Lineage records the provenance of the data the answer was computed
	// from, so accuracy audits can correlate coverage misses with data
	// drift after the fact.
	Lineage SampleLineage
	// Shards summarizes sharded scatter-gather execution; nil for
	// unsharded runs (and thus absent from serialized diagnostics, keeping
	// single-table output identical to before sharding existed).
	Shards *ShardExecSummary
	// Contract records a-priori error-contract execution (pilot sizing,
	// stage-two cost, met/missed/infeasible verdict); nil for ordinary
	// runs, keeping their serialized diagnostics unchanged.
	Contract *contract.Summary
	// Messages carries human-readable engine notes.
	Messages []string
}

// ShardExecSummary records how a scatter-gather execution went: the group
// shape, which shards failed or were pruned, and whether the survivors'
// estimates were extrapolated to the full population.
type ShardExecSummary struct {
	// Table is the sharded table; Count its shard count; Key the
	// partitioning declaration (e.g. "hash(ev_user)/4").
	Table string
	Count int
	Key   string
	// RowsPerShard is each shard's population, in shard order.
	RowsPerShard []int
	// Degraded lists shards that failed to contribute; Pruned lists shards
	// skipped because their key range provably held no matching rows.
	Degraded []int
	Pruned   []int
	// Extrapolated reports that surviving hash shards' totals were scaled
	// to the full population (with variances scaled accordingly).
	Extrapolated bool
	// CoverageFraction is covered rows / total rows (1 when healthy).
	CoverageFraction float64
}

// SampleLineage ties a result to the state of the base table its backing
// sample (or scan) was drawn from. For query-time techniques the build
// watermark equals the execution-time snapshot; for offline samples and
// synopses it is the watermark at construction, which is what makes
// post-hoc staleness attribution possible: an audit that re-executes the
// query exactly and misses can check how many rows arrived after
// BuildRows.
type SampleLineage struct {
	// Table is the primary FROM table.
	Table string
	// TableVersion / TableRows snapshot the base table at execution time.
	TableVersion uint64
	TableRows    int
	// SampleName identifies the stored sample or synopsis answered from
	// ("" for query-time sampling and exact runs).
	SampleName string
	// BuildVersion / BuildRows are the base table's version and row count
	// when the backing sample/synopsis was built (equal to TableVersion /
	// TableRows when the data was read at query time).
	BuildVersion uint64
	BuildRows    int
}

// stampLineage fills d.Lineage for a query-time read of the statement's
// base table: the build watermark is the execution-time snapshot.
func stampLineage(d *Diagnostics, cat *storage.Catalog, table string) {
	t, err := cat.Table(table)
	if err != nil {
		return
	}
	v, n := t.Version(), t.NumRows()
	d.Lineage = SampleLineage{
		Table: table, TableVersion: v, TableRows: n,
		BuildVersion: v, BuildRows: n,
	}
}

// Result is an annotated query result.
type Result struct {
	Columns []string
	Rows    [][]storage.Value
	// Items annotates each row's select items: Items[i][j] corresponds
	// to Rows[i][j].
	Items [][]ItemResult
	// Technique that produced the result.
	Technique Technique
	// Guarantee strength of the error statement.
	Guarantee Guarantee
	// Spec the result was produced under (zero for exact).
	Spec        ErrorSpec
	Diagnostics Diagnostics
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return len(r.Rows) }

// Float returns the row i, column j value as float64.
func (r *Result) Float(i, j int) float64 { return r.Rows[i][j].AsFloat() }

// ColumnIndex returns the index of a named output column, or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// MaxRelHalfWidth returns the largest relative CI half-width across all
// aggregate items (0 if none).
func (r *Result) MaxRelHalfWidth() float64 {
	var m float64
	for _, row := range r.Items {
		for _, it := range row {
			if it.IsAggregate && it.HasCI {
				m = math.Max(m, it.RelHalfWidth)
			}
		}
	}
	return m
}

// Engine executes parsed statements under an error spec.
type Engine interface {
	// Name returns the engine's technique tag.
	Name() Technique
	// Execute runs the statement. Engines that cannot honor the request
	// fall back gracefully (and say so in Diagnostics) rather than fail,
	// unless the query itself is invalid.
	Execute(stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error)
}

// supportedForSampling reports whether every aggregate in the statement is
// sample-approximable: linear (SUM/COUNT/AVG without DISTINCT, via the
// CLT) or PERCENTILE (via the DKW distribution bound). Queries outside
// this class must run exactly: the generality limit of sampling-based AQP.
func supportedForSampling(stmt *sqlparse.SelectStmt) (bool, string) {
	for _, a := range stmt.Aggregates() {
		if !a.Func.SampleApproximable() {
			return false, fmt.Sprintf("aggregate %s is not sample-approximable", a)
		}
		if a.Distinct {
			return false, fmt.Sprintf("aggregate %s uses DISTINCT", a)
		}
	}
	if !stmt.HasAggregates() {
		return false, "query has no aggregates"
	}
	return true, ""
}

// confidencePerEstimate allocates the joint confidence across estimates
// via Boole's inequality: k aggregate slots times g groups.
func confidencePerEstimate(spec ErrorSpec, slots, groups int) float64 {
	k := slots * maxInt(groups, 1)
	return stats.AllocateConfidence(spec.Confidence, k)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// resolveWorkers picks the effective morsel-parallel worker count for a
// plan execution: a context override wins, then the plan's parallelism
// hint, then the engine configuration, then runtime.GOMAXPROCS.
func resolveWorkers(ctx context.Context, p plan.Node, cfgWorkers int) int {
	hint := plan.Parallelism(p)
	if hint <= 0 {
		hint = cfgWorkers
	}
	return exec.ResolveWorkers(ctx, hint)
}
