package core

// A-priori error contracts: two-stage pilot-sized execution.
//
// `WITH ERROR e% CONFIDENCE c%` becomes a promise instead of a wish: a
// cheap pilot measures each aggregate's variance, internal/contract sizes
// the stage-two sampling fraction that makes the CLT half-width land at
// or below the target (chi-square-inflated pilot variance, Bonferroni
// across estimates, finite-population correction folded into the rate
// transform), and stage two runs at that fraction. The sized fraction is
// fixed by stage-one data alone — a data-independent stopping rule in
// Stein's two-stage sense — so stage-two intervals keep their nominal
// coverage, which is what lets the engines stamp GuaranteeAPriori on the
// answer. When sizing proves the target unreachable inside the admission
// budget, the engine refuses honestly: it degrades to a best-effort
// a-posteriori CI at the budget fraction and flags the diagnostics with
// contract.InfeasibleFlag instead of certifying a guess.

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/contract"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/shard"
	"repro/internal/sqlparse"
	"repro/internal/trace"
)

// ContractConfig tunes two-stage contract execution.
type ContractConfig struct {
	// PilotFraction is the stage-one sampling fraction (default 0.05).
	PilotFraction float64
	// MinPilotRows floors the pilot at an absolute row count so variance
	// estimates on small tables are not built from a handful of rows
	// (default 200).
	MinPilotRows int
	// BudgetFraction is the admission budget: the largest stage-two
	// sampling fraction the engine may spend. A contract whose sized
	// fraction exceeds it is refused as infeasible (default 1).
	BudgetFraction float64
	// VarianceConfidence is the one-sided chi-square level of the pilot
	// variance upper bound used for sizing (default 0.9).
	VarianceConfidence float64
}

// DefaultContractConfig returns the engine defaults: a 5% pilot floored
// at 200 rows, the whole table as budget, 90% variance confidence.
func DefaultContractConfig() ContractConfig {
	return ContractConfig{
		PilotFraction:      0.05,
		MinPilotRows:       200,
		BudgetFraction:     1,
		VarianceConfidence: 0.9,
	}
}

func (c ContractConfig) withDefaults() ContractConfig {
	if c.PilotFraction <= 0 || c.PilotFraction > 1 {
		c.PilotFraction = 0.05
	}
	if c.MinPilotRows <= 0 {
		c.MinPilotRows = 200
	}
	if c.BudgetFraction <= 0 || c.BudgetFraction > 1 {
		c.BudgetFraction = 1
	}
	if c.VarianceConfidence <= 0 || c.VarianceConfidence >= 1 {
		c.VarianceConfidence = 0.9
	}
	return c
}

// pilotRate resolves the stage-one fraction for a table of the given
// size: the configured fraction, raised to cover MinPilotRows, capped
// at 1.
func (c ContractConfig) pilotRate(rows int64) float64 {
	pr := c.PilotFraction
	if rows > 0 {
		if min := float64(c.MinPilotRows) / float64(rows); min > pr {
			pr = min
		}
	}
	if pr > 1 {
		pr = 1
	}
	return pr
}

// contractStageSeed derives the stage-two sampler seed from the engine
// seed (splitmix64 finalizer), so the two stages make independent
// inclusion decisions while the whole run stays a pure function of the
// engine seed.
func contractStageSeed(seed int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// contractEstimates extracts the pilot moments contract sizing needs from
// an annotated result: one Estimate per aggregate item per group. An
// aggregate item without CLT moments (PERCENTILE's distribution bound,
// composite aggregate arithmetic) cannot be sized; its name is returned
// so the caller can refuse with a concrete reason.
func contractEstimates(res *Result) ([]contract.Estimate, string) {
	var ests []contract.Estimate
	for i := range res.Items {
		for _, it := range res.Items[i] {
			if !it.IsAggregate {
				continue
			}
			if it.SampleN <= 0 {
				return nil, it.Name
			}
			ests = append(ests, contract.Estimate{
				Value: it.Value.AsFloat(), Variance: it.Variance, N: it.SampleN,
			})
		}
	}
	return ests, ""
}

// newContractSummary starts the diagnostics block every contract path
// fills in.
func newContractSummary(spec ErrorSpec, cfg ContractConfig) *contract.Summary {
	return &contract.Summary{
		TargetRelError: spec.RelError,
		Confidence:     spec.Confidence,
		BudgetFraction: cfg.BudgetFraction,
	}
}

// sizeContract runs the sizing step shared by every engine: unsizable
// aggregates refuse with a named reason, otherwise internal/contract
// computes the binding stage-two fraction under the budget. The returned
// rate is floored at the pilot fraction (stage two is never smaller than
// the pilot) and capped at 1.
func sizeContract(ests []contract.Estimate, badName string, pilotRate float64,
	spec ErrorSpec, cfg ContractConfig) (contract.Sizing, float64) {

	var sz contract.Sizing
	if badName != "" {
		sz = contract.Sizing{
			Rate:         cfg.BudgetFraction,
			RequiredRate: cfg.BudgetFraction,
			Reason:       fmt.Sprintf("aggregate %s has no CLT moments to size from", badName),
		}
	} else {
		sz = contract.Size(ests, pilotRate, spec.RelError, spec.Confidence, contract.Options{
			BudgetRate:         cfg.BudgetFraction,
			VarianceConfidence: cfg.VarianceConfidence,
		})
	}
	rate := sz.Rate
	if rate < pilotRate {
		rate = pilotRate
	}
	if rate > 1 {
		rate = 1
	}
	return sz, rate
}

// stampInfeasible attaches the refusal message operators and tests grep
// for.
func stampInfeasible(d *Diagnostics, sum *contract.Summary) {
	if sum.Infeasible {
		d.Messages = append(d.Messages, fmt.Sprintf(
			"contract: %s — %s; returning best-effort a-posteriori CI at fraction %.4g",
			contract.InfeasibleFlag, sum.Reason, sum.FinalFraction))
	}
}

// exactContract answers the statement exactly and stamps a trivially-met
// contract: an exact answer has zero error, so any valid contract holds.
// Used when the query class cannot be sampled at all — refusing to
// approximate is not refusing to answer.
func exactContract(ctx context.Context, eng *ExactEngine, stmt *sqlparse.SelectStmt,
	spec ErrorSpec, cfg ContractConfig, why string) (*Result, error) {

	res, err := eng.ExecuteContext(ctx, stmt, spec)
	if err != nil {
		return nil, err
	}
	sum := newContractSummary(spec, cfg)
	sum.FinalFraction = 1
	sum.FinalRows = res.Diagnostics.Counters.RowsScanned
	sum.Reason = "answered exactly (" + why + "); the contract holds trivially"
	sum.Conclude(0, false)
	res.Diagnostics.Contract = sum
	res.Diagnostics.FellBackToExact = true
	res.Diagnostics.Messages = append(res.Diagnostics.Messages, "contract: "+sum.Reason)
	return res, nil
}

// setPlanSamplers rewrites every placed sampler's rate and seed in the
// plan — the knob the two stages turn between runs of the same plan.
func setPlanSamplers(p plan.Node, rate float64, seed int64) {
	for _, s := range plan.Scans(p) {
		if s.Sample != nil {
			s.Sample.Rate = rate
			s.Sample.Seed = seed
		}
	}
}

// ExecuteContract runs the statement under an a-priori error contract on
// the online engine: a Bernoulli pilot at the pilot fraction, sizing, and
// a stage-two Bernoulli run at the sized fraction with an independent
// seed. Sharded tables compose the pilot stratum-wise and split the sized
// stage-two budget across shards by Neyman allocation.
func (e *OnlineEngine) ExecuteContract(ctx context.Context, stmt *sqlparse.SelectStmt,
	spec ErrorSpec, cfg ContractConfig) (_ *Result, err error) {

	defer contain(&err)
	if err := injectOnline.Inject(); err != nil {
		return nil, err
	}
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine online contract")
	defer esp.End()
	if !spec.Valid() {
		spec = DefaultErrorSpec
	}
	cfg = cfg.withDefaults()

	if ok, reason := supportedForSampling(stmt); !ok {
		return exactContract(ctx, e.exactEngine(), stmt, spec, cfg, reason)
	}
	p, err := plan.Build(stmt, e.Catalog)
	if err != nil {
		return nil, err
	}
	planned, notes := e.placeSamplers(stmt, p)
	if !planned {
		return exactContract(ctx, e.exactEngine(), stmt, spec, cfg, "no table worth sampling")
	}
	pop := sampledRows(p)
	pr := cfg.pilotRate(pop)
	workers := resolveWorkers(ctx, p, e.Config.Workers)
	esp.SetAttrInt("workers", int64(workers))

	if g := shardGroupFor(e.Shards, stmt); g != nil && exec.Gatherable(p) {
		return e.executeContractSharded(ctx, g, stmt, p, spec, cfg, pr, notes, workers, start)
	}

	// Stage one: pilot at the pilot fraction with the engine seed.
	setPlanSamplers(p, pr, e.Config.Seed)
	psp, pctx := trace.StartSpan(ctx, "contract pilot")
	praw, err := exec.RunParallelContext(pctx, p, workers)
	psp.End()
	if err != nil {
		return nil, err
	}
	pilot := annotate(stmt, praw, spec, TechniqueOnline, GuaranteeAPosteriori)
	ests, badName := contractEstimates(pilot)
	sz, rate2 := sizeContract(ests, badName, pr, spec, cfg)

	sum := newContractSummary(spec, cfg)
	sum.PilotRows = praw.Counters.RowsEmitted
	sum.PilotFraction = pr
	sum.RequiredFraction = sz.RequiredRate
	sum.FinalFraction = rate2
	sum.Infeasible = !sz.Feasible
	sum.Reason = sz.Reason

	// Stage two: independent seed, sized fraction, same plan.
	setPlanSamplers(p, rate2, contractStageSeed(e.Config.Seed))
	ssp, sctx := trace.StartSpan(ctx, "contract stage two")
	raw2, err := exec.RunParallelContext(sctx, p, workers)
	ssp.End()
	if err != nil {
		return nil, err
	}
	guarantee := GuaranteeAPriori
	if !sz.Feasible {
		guarantee = GuaranteeAPosteriori
	}
	out := annotate(stmt, raw2, spec, TechniqueOnline, guarantee)
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, notes...)
	out.Diagnostics.SampleFraction = sampleFraction(raw2.Counters, pop)
	out.Diagnostics.Counters.Add(praw.Counters)
	out.Diagnostics.Counters.Passes = 2
	out.Diagnostics.Workers = workers
	stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)
	sum.FinalRows = raw2.Counters.RowsEmitted
	sum.Conclude(out.MaxRelHalfWidth(), out.Diagnostics.Degraded || out.Diagnostics.Partial)
	out.Diagnostics.Contract = sum
	stampInfeasible(&out.Diagnostics, sum)
	out.Diagnostics.Latency = time.Since(start)
	esp.SetAttrFloat("final_fraction", rate2)
	return out, nil
}

// executeContractSharded is the scatter-gather contract path: the pilot
// scatters at the pilot fraction collecting per-shard slot moments, the
// composed (merged-in-shard-order) pilot sizes stage two exactly like the
// unsharded path — merging HT partials is stratified composition, so the
// composed variance is the one sizing needs — and the sized row budget is
// split across shards Neyman-style from the per-shard pilot spreads.
// With one shard the Neyman step is skipped entirely (nil ShardRates), so
// execution stays bit-identical to the unsharded engine.
func (e *OnlineEngine) executeContractSharded(ctx context.Context, g *shard.Group,
	stmt *sqlparse.SelectStmt, p plan.Node, spec ErrorSpec, cfg ContractConfig,
	pr float64, notes []string, workers int, start time.Time) (*Result, error) {

	var base *sample.Spec
	for _, s := range plan.Scans(p) {
		if s.Sample != nil {
			base = s.Sample
			break
		}
	}
	if base == nil {
		return exactContract(ctx, e.exactEngine(), stmt, spec, cfg, "no sampler placed")
	}

	// Stage one: scatter the pilot, keeping per-shard moments.
	pilotSmp := *base
	pilotSmp.Rate = pr
	pilotSmp.Seed = e.Config.Seed
	prun, err := runSharded(ctx, g, stmt, p, &pilotSmp, workers,
		func(o *shard.ExecOptions) { o.CollectMoments = true })
	if err != nil {
		return nil, err
	}
	pilot := annotate(stmt, prun.raw, spec, TechniqueOnline, GuaranteeAPosteriori)
	ests, badName := contractEstimates(pilot)
	var sz contract.Sizing
	var rate2 float64
	if prun.degraded {
		// A pilot that lost shards measured only part of the population;
		// sizing from it cannot certify the whole. Refuse, run stage two
		// at the budget as best effort.
		sz = contract.Sizing{
			Rate:         cfg.BudgetFraction,
			RequiredRate: cfg.BudgetFraction,
			Reason:       "pilot lost shards; sizing from a partial pilot cannot certify the full population",
		}
		rate2 = math.Max(cfg.BudgetFraction, pr)
	} else {
		sz, rate2 = sizeContract(ests, badName, pr, spec, cfg)
	}

	sum := newContractSummary(spec, cfg)
	sum.PilotRows = prun.raw.Counters.RowsEmitted
	sum.PilotFraction = pr
	sum.RequiredFraction = sz.RequiredRate
	sum.FinalFraction = rate2
	sum.Infeasible = !sz.Feasible
	sum.Reason = sz.Reason

	// Neyman allocation across shards from the pilot's per-shard spreads.
	// Skipped for a single shard (bit-identity with unsharded) and when
	// the pilot is missing any shard's moments.
	var shardRates []float64
	if g.NumShards() > 1 && !prun.degraded && len(prun.moments) == g.NumShards() {
		strata := make([]contract.ShardStratum, g.NumShards())
		usable := true
		var totalRows float64
		for h := range strata {
			rows := 0.0
			if h < len(prun.rows) {
				rows = float64(prun.rows[h])
			}
			totalRows += rows
			strata[h].Rows = rows
			// Per-row spread: Var(Ŝ_h) ≈ N_h²·s_h²·(1−f)/k_h at the pilot,
			// so s_h ≈ sqrt(V_h·k_h)/N_h; the binding slot's spread drives
			// the allocation. Pruned shards (nil moments) provably hold no
			// matching rows: spread 0 earns them the minimum allocation.
			if ms := prun.moments[h]; ms != nil && rows > 0 {
				for _, m := range ms {
					if m.Variance > 0 && m.N > 0 {
						s := math.Sqrt(m.Variance*m.N) / rows
						if s > strata[h].StdDev {
							strata[h].StdDev = s
						}
					}
				}
			} else if ms == nil && !shardPruned(prun.summary, h) {
				usable = false
			}
		}
		if usable && totalRows > 0 {
			shardRates = contract.AllocateShards(strata, rate2*totalRows)
		}
	}

	// Stage two: scatter at the sized fraction with an independent seed,
	// per-shard rates when Neyman applies.
	stageSmp := *base
	stageSmp.Rate = rate2
	stageSmp.Seed = contractStageSeed(e.Config.Seed)
	srun, err := runSharded(ctx, g, stmt, p, &stageSmp, workers,
		func(o *shard.ExecOptions) { o.ShardRates = shardRates })
	if err != nil {
		return nil, err
	}
	guarantee := GuaranteeAPriori
	switch {
	case srun.degraded && !srun.summary.Extrapolated:
		guarantee = GuaranteeNone
	case !sz.Feasible || srun.degraded:
		guarantee = GuaranteeAPosteriori
	}
	out := annotate(stmt, srun.raw, spec, TechniqueOnline, guarantee)
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, notes...)
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, srun.messages...)
	out.Diagnostics.SampleFraction = sampleFraction(srun.raw.Counters, srun.sampledPop)
	out.Diagnostics.Counters.Add(prun.raw.Counters)
	out.Diagnostics.Counters.Passes = 2
	out.Diagnostics.Workers = workers
	out.Diagnostics.Degraded = srun.degraded
	out.Diagnostics.Shards = srun.summary
	stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)
	sum.FinalRows = srun.raw.Counters.RowsEmitted
	sum.ShardFractions = shardRates
	// A stage two that lost shards — even extrapolated over — can never
	// certify the a-priori promise.
	sum.Conclude(out.MaxRelHalfWidth(), srun.degraded || srun.summary.Extrapolated)
	out.Diagnostics.Contract = sum
	stampInfeasible(&out.Diagnostics, sum)
	out.Diagnostics.Latency = time.Since(start)
	return out, nil
}

// shardPruned reports whether shard h was pruned in the summary.
func shardPruned(sum *ShardExecSummary, h int) bool {
	if sum == nil {
		return false
	}
	for _, id := range sum.Pruned {
		if id == h {
			return true
		}
	}
	return false
}

// ExecuteContract runs the statement under an a-priori error contract on
// the OLA engine as Stein-style two-stage prefix sampling: the pilot
// reads a fixed prefix of the seeded permutation (a without-replacement
// SRS), sizing fixes the total fraction from stage-one data alone, and
// stage two re-runs the same permutation to the sized prefix — the final
// estimate uses all rows up to a data-independently chosen cut, so its
// CI keeps nominal coverage and earns GuaranteeAPriori. Both passes run
// with spec-stopping disabled: stopping on an interim CI (peeking) is
// exactly what a contract must not do.
func (e *OLAEngine) ExecuteContract(ctx context.Context, stmt *sqlparse.SelectStmt,
	spec ErrorSpec, cfg ContractConfig) (_ *Result, err error) {

	defer contain(&err)
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine ola contract")
	defer esp.End()
	if !spec.Valid() {
		spec = DefaultErrorSpec
	}
	cfg = cfg.withDefaults()
	if ok, reason := e.supported(stmt); !ok {
		return exactContract(ctx, &ExactEngine{Catalog: e.Catalog, Workers: e.Config.Workers},
			stmt, spec, cfg, reason)
	}
	t, err := e.Catalog.Table(stmt.From.Name)
	if err != nil {
		return nil, err
	}
	pr := cfg.pilotRate(int64(t.NumRows()))

	// Stage one: a MaxFraction-limited pass. The fraction cut is a
	// data-independent stopping rule, so the pilot is an intact SRS.
	pilotEng := &OLAEngine{Catalog: e.Catalog, Config: e.Config}
	pilotEng.Config.StopWhenSpecMet = false
	pilotEng.Config.MaxFraction = pr
	psp, pctx := trace.StartSpan(ctx, "contract pilot")
	pilot, err := pilotEng.ExecuteProgressiveContext(pctx, stmt, spec, nil)
	psp.End()
	if err != nil {
		return nil, err
	}
	pilotFrac := pilot.Diagnostics.SampleFraction
	ests, badName := contractEstimates(pilot)
	sz, rate2 := sizeContract(ests, badName, pilotFrac, spec, cfg)

	sum := newContractSummary(spec, cfg)
	sum.PilotRows = pilot.Diagnostics.Counters.RowsScanned
	sum.PilotFraction = pilotFrac
	sum.RequiredFraction = sz.RequiredRate
	sum.FinalFraction = rate2
	sum.Infeasible = !sz.Feasible
	sum.Reason = sz.Reason

	var out *Result
	if rate2 <= pilotFrac {
		// The pilot already read the sized prefix; it IS stage two.
		out = pilot
		sum.FinalRows = pilot.Diagnostics.Counters.RowsScanned
		sum.FinalFraction = pilotFrac
	} else {
		stageEng := &OLAEngine{Catalog: e.Catalog, Config: e.Config}
		stageEng.Config.StopWhenSpecMet = false
		stageEng.Config.MaxFraction = rate2
		ssp, sctx := trace.StartSpan(ctx, "contract stage two")
		out, err = stageEng.ExecuteProgressiveContext(sctx, stmt, spec, nil)
		ssp.End()
		if err != nil {
			return nil, err
		}
		sum.FinalRows = out.Diagnostics.Counters.RowsScanned
		// The pilot prefix is re-read by stage two (same permutation);
		// its scan cost is still real work performed.
		out.Diagnostics.Counters.RowsScanned += sum.PilotRows
		out.Diagnostics.Counters.Passes = 2
	}
	degraded := out.Diagnostics.Partial || out.Diagnostics.Degraded
	if sz.Feasible && !degraded {
		out.Guarantee = GuaranteeAPriori
	}
	sum.Conclude(out.MaxRelHalfWidth(), degraded)
	out.Diagnostics.Contract = sum
	stampInfeasible(&out.Diagnostics, sum)
	out.Diagnostics.Latency = time.Since(start)
	esp.SetAttrFloat("final_fraction", sum.FinalFraction)
	return out, nil
}

// ExecuteContract runs the statement under an a-priori error contract on
// the offline engine. The stored sample ladder has fixed sizes the
// contract cannot steer, so the engine draws two transient uniform
// samples from the base table instead: a pilot at the pilot fraction and
// a stage-two sample at the sized fraction — paying the build scans like
// any other maintenance cost and recording them in the counters.
func (e *OfflineEngine) ExecuteContract(ctx context.Context, stmt *sqlparse.SelectStmt,
	spec ErrorSpec, cfg ContractConfig) (_ *Result, err error) {

	defer contain(&err)
	if err := injectOffline.Inject(); err != nil {
		return nil, err
	}
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine offline contract")
	defer esp.End()
	if !spec.Valid() {
		spec = DefaultErrorSpec
	}
	cfg = cfg.withDefaults()
	exact := &ExactEngine{Catalog: e.Catalog, Workers: e.Config.Workers}
	if ok, reason := supportedForSampling(stmt); !ok {
		return exactContract(ctx, exact, stmt, spec, cfg, reason)
	}
	t, err := e.Catalog.Table(stmt.From.Name)
	if err != nil {
		return nil, err
	}
	if t.NumRows() == 0 {
		return exactContract(ctx, exact, stmt, spec, cfg, "empty table")
	}
	pr := cfg.pilotRate(int64(t.NumRows()))

	// Stage one: transient uniform pilot sample.
	pres, err := sample.BuildUniformTable(t, pr, e.Config.Seed, stmt.From.Name+"__contract_pilot")
	if err != nil {
		return nil, err
	}
	ps := &StoredSample{Name: pres.Table.Name(), Source: stmt.From.Name, Rate: pr,
		Data: pres.Table, Rows: pres.SampleRows, BuildVersion: pres.BuildVersion,
		BuildRows: pres.SourceRows}
	praw, err := e.executeOn(ctx, ps, stmt)
	if err != nil {
		return nil, err
	}
	pilot := annotate(stmt, praw, spec, TechniqueOffline, GuaranteeAPosteriori)
	ests, badName := contractEstimates(pilot)
	sz, rate2 := sizeContract(ests, badName, pr, spec, cfg)

	sum := newContractSummary(spec, cfg)
	sum.PilotRows = int64(pres.SampleRows)
	sum.PilotFraction = pr
	sum.RequiredFraction = sz.RequiredRate
	sum.FinalFraction = rate2
	sum.Infeasible = !sz.Feasible
	sum.Reason = sz.Reason

	// Stage two: transient uniform sample at the sized fraction.
	sres, err := sample.BuildUniformTable(t, rate2, contractStageSeed(e.Config.Seed),
		stmt.From.Name+"__contract_stage2")
	if err != nil {
		return nil, err
	}
	ss := &StoredSample{Name: sres.Table.Name(), Source: stmt.From.Name, Rate: rate2,
		Data: sres.Table, Rows: sres.SampleRows, BuildVersion: sres.BuildVersion,
		BuildRows: sres.SourceRows}
	raw2, err := e.executeOn(ctx, ss, stmt)
	if err != nil {
		return nil, err
	}
	guarantee := GuaranteeAPriori
	if !sz.Feasible {
		guarantee = GuaranteeAPosteriori
	}
	out := annotate(stmt, raw2, spec, TechniqueOffline, guarantee)
	out.Diagnostics.Counters.Add(praw.Counters)
	// Both sample builds scan the base table: maintenance paid inline.
	out.Diagnostics.Counters.RowsScanned += 2 * int64(t.NumRows())
	out.Diagnostics.Counters.Passes = 2
	out.Diagnostics.Workers = exec.ResolveWorkers(ctx, e.Config.Workers)
	out.Diagnostics.SampleFraction = float64(sres.SampleRows) / float64(t.NumRows())
	stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)
	out.Diagnostics.Lineage.SampleName = ss.Name
	out.Diagnostics.Lineage.BuildVersion = ss.BuildVersion
	out.Diagnostics.Lineage.BuildRows = ss.BuildRows
	sum.FinalRows = int64(sres.SampleRows)
	sum.Conclude(out.MaxRelHalfWidth(), out.Diagnostics.Degraded || out.Diagnostics.Partial)
	out.Diagnostics.Contract = sum
	stampInfeasible(&out.Diagnostics, sum)
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, fmt.Sprintf(
		"offline: contract answered from a transient %d-row uniform sample (fraction %.4g), not the stored ladder",
		sres.SampleRows, rate2))
	out.Diagnostics.Latency = time.Since(start)
	return out, nil
}
