package core

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestEngineNames(t *testing.T) {
	ev := smallEvents(t, 1000, 0)
	if NewExactEngine(ev.Catalog).Name() != TechniqueExact {
		t.Error("exact name")
	}
	if NewOnlineEngine(ev.Catalog, DefaultOnlineConfig()).Name() != TechniqueOnline {
		t.Error("online name")
	}
	if NewOfflineEngine(ev.Catalog, DefaultOfflineConfig()).Name() != TechniqueOffline {
		t.Error("offline name")
	}
	if NewOLAEngine(ev.Catalog, DefaultOLAConfig()).Name() != TechniqueOLA {
		t.Error("ola name")
	}
	if NewSynopsisEngine(ev.Catalog).Name() != TechniqueSynopsis {
		t.Error("synopsis name")
	}
}

func TestGuaranteeStrings(t *testing.T) {
	want := map[Guarantee]string{
		GuaranteeExact:       "exact",
		GuaranteeAPriori:     "a-priori",
		GuaranteeAPosteriori: "a-posteriori",
		GuaranteeNone:        "none",
	}
	for g, s := range want {
		if g.String() != s {
			t.Errorf("%d.String() = %q", g, g.String())
		}
	}
}

func TestProfileTemplates(t *testing.T) {
	ev := smallEvents(t, 20000, 1.0)
	cfg := DefaultOfflineConfig()
	cfg.Caps = []int{256}
	cfg.UniformRates = nil
	e := NewOfflineEngine(ev.Catalog, cfg)
	if err := e.BuildSamples("events", [][]string{{"ev_group"}}); err != nil {
		t.Fatal(err)
	}
	gen := func(rng *rand.Rand) string {
		return "SELECT ev_group, COUNT(*) FROM events GROUP BY ev_group"
	}
	if err := e.ProfileTemplates([]func(*rand.Rand) string{gen}, 2, 1); err != nil {
		t.Fatal(err)
	}
	profiled := false
	for _, s := range e.Samples("events") {
		if len(s.Profile) > 0 {
			profiled = true
		}
	}
	if !profiled {
		t.Error("ProfileTemplates left no profile entries")
	}
}

func TestSynopsisBuildRows(t *testing.T) {
	ev := smallEvents(t, 5000, 0)
	e := NewSynopsisEngine(ev.Catalog)
	if e.BuildRows() != 0 {
		t.Error("fresh engine has no build cost")
	}
	if err := e.BuildColumn("events", "ev_value", 32); err != nil {
		t.Fatal(err)
	}
	if e.BuildRows() != 5000 {
		t.Errorf("build rows = %d", e.BuildRows())
	}
	if err := e.BuildColumn("events", "missing", 32); err == nil {
		t.Error("unknown column must error")
	}
	if err := e.BuildColumn("missing", "x", 32); err == nil {
		t.Error("unknown table must error")
	}
}

func TestOLAJoinResidualPredicate(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 4, LineitemRows: 10000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOLAConfig()
	cfg.StopWhenSpecMet = false
	e := NewOLAEngine(star.Catalog, cfg)
	// ON clause with a residual (non-equi) conjunct.
	sql := `SELECT COUNT(*) AS n FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey AND o_totalprice > 200000`
	res, err := e.Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewExactEngine(star.Catalog).Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Float(0, 0) != exact.Float(0, 0) {
		t.Errorf("full-read OLA with residual = %v vs exact %v", res.Float(0, 0), exact.Float(0, 0))
	}
}

func TestOLAJoinWithoutEquiKeyFails(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 4, LineitemRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	e := NewOLAEngine(star.Catalog, DefaultOLAConfig())
	_, err = e.Execute(parse(t,
		"SELECT COUNT(*) FROM lineitem JOIN orders ON l_quantity > o_totalprice"), DefaultErrorSpec)
	if err == nil {
		t.Error("non-equi OLA join must error")
	}
}

func TestOLAMinAggregatesFallBack(t *testing.T) {
	ev := smallEvents(t, 20000, 0)
	e := NewOLAEngine(ev.Catalog, DefaultOLAConfig())
	res, err := e.Execute(parse(t, "SELECT MIN(ev_value) FROM events"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("MIN must fall back in OLA")
	}
}

func TestExecuteAsWrittenCore(t *testing.T) {
	ev := smallEvents(t, 20000, 0)
	stmt := parse(t, "SELECT COUNT(*) FROM events TABLESAMPLE BERNOULLI (25)")
	res, err := ExecuteAsWritten(ev.Catalog, stmt, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != GuaranteeAPosteriori {
		t.Errorf("sampled as-written: %v", res.Guarantee)
	}
	if res.Diagnostics.SampleFraction <= 0 || res.Diagnostics.SampleFraction >= 1 {
		t.Errorf("fraction = %v", res.Diagnostics.SampleFraction)
	}
	stmt = parse(t, "SELECT COUNT(*) FROM events")
	res, err = ExecuteAsWritten(ev.Catalog, stmt, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != GuaranteeExact || res.Diagnostics.SampleFraction != 1 {
		t.Errorf("unsampled as-written: %v %v", res.Guarantee, res.Diagnostics.SampleFraction)
	}
}

func TestOfflineNoHavingSupport(t *testing.T) {
	// Queries the offline engine cannot see in its QCS fall back cleanly
	// even with strange shapes.
	ev := smallEvents(t, 20000, 0)
	e := NewOfflineEngine(ev.Catalog, DefaultOfflineConfig())
	res, err := e.Execute(parse(t,
		"SELECT ev_group, COUNT(*) FROM events GROUP BY ev_group HAVING COUNT(*) > 10"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("no samples -> exact fallback")
	}
}
