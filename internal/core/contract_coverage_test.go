package core

// The contract-coverage harness: the statistical check behind the
// a-priori error contract. For each sampling engine and each error
// target, many independently seeded two-stage runs execute the same
// query; every "met" verdict is checked against the exact answer. A met
// verdict promises the realized error is within the target at the
// stated confidence, so the fraction of met verdicts that actually hold
// must sit in the same binomial tolerance band coverage_test.go uses
// for plain CI coverage. Each trial also runs at two worker counts and
// must agree bit-for-bit — the contract path (pilot, sizing, stage two)
// is deterministic in (seed, contract) like everything else.

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/contract"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// contractExecutor is implemented by every engine with a contract path.
type contractExecutor interface {
	Engine
	ExecuteContract(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec, cfg ContractConfig) (*Result, error)
}

// contractTrialResult is what one contract trial must report.
type contractTrialResult struct {
	estimate, lo, hi float64
	verdict          contract.Verdict
	finalFraction    float64
	guarantee        Guarantee
}

// runContractTrial executes one contract run at the given worker count,
// enforcing the per-trial guards: a stamped contract block, no silent
// exact fallback, a real CI on the single aggregate.
func runContractTrial(t *testing.T, eng contractExecutor, stmt *sqlparse.SelectStmt,
	spec ErrorSpec, cfg ContractConfig, workers int) contractTrialResult {
	t.Helper()
	ctx := exec.ContextWithWorkers(context.Background(), workers)
	res, err := eng.ExecuteContract(ctx, stmt, spec, cfg)
	if err != nil {
		t.Fatalf("%s: %v", eng.Name(), err)
	}
	sum := res.Diagnostics.Contract
	if sum == nil {
		t.Fatalf("%s: no contract summary stamped", eng.Name())
	}
	if res.Diagnostics.FellBackToExact {
		t.Fatalf("%s fell back to exact: %v", eng.Name(), res.Diagnostics.Messages)
	}
	if res.NumRows() != 1 || len(res.Items[0]) != 1 {
		t.Fatalf("%s: want one row, one item; got %d rows", eng.Name(), res.NumRows())
	}
	it := res.Items[0][0]
	if !it.IsAggregate || !it.HasCI {
		t.Fatalf("%s: aggregate item carries no CI", eng.Name())
	}
	if !(it.CI.Hi > it.CI.Lo) {
		t.Fatalf("%s: degenerate CI [%v, %v]", eng.Name(), it.CI.Lo, it.CI.Hi)
	}
	if sum.Verdict == contract.VerdictMet && res.Guarantee != GuaranteeAPriori {
		t.Fatalf("%s: met verdict with guarantee %s — a met contract must be a-priori",
			eng.Name(), res.Guarantee)
	}
	return contractTrialResult{
		estimate: res.Float(0, 0), lo: it.CI.Lo, hi: it.CI.Hi,
		verdict: sum.Verdict, finalFraction: sum.FinalFraction,
		guarantee: res.Guarantee,
	}
}

// assertContractTrialsEqual requires two runs of the same trial to agree
// bit-for-bit: estimate, interval, verdict, and the sized fraction.
func assertContractTrialsEqual(t *testing.T, name string, trial int, a, b contractTrialResult) {
	t.Helper()
	if math.Float64bits(a.estimate) != math.Float64bits(b.estimate) ||
		math.Float64bits(a.lo) != math.Float64bits(b.lo) ||
		math.Float64bits(a.hi) != math.Float64bits(b.hi) {
		t.Fatalf("%s trial %d: result differs across runs: %v [%v,%v] vs %v [%v,%v]",
			name, trial, a.estimate, a.lo, a.hi, b.estimate, b.lo, b.hi)
	}
	if a.verdict != b.verdict || math.Float64bits(a.finalFraction) != math.Float64bits(b.finalFraction) {
		t.Fatalf("%s trial %d: contract differs across runs: %s@%v vs %s@%v",
			name, trial, a.verdict, a.finalFraction, b.verdict, b.finalFraction)
	}
}

// contractTargets are the error targets of the acceptance harness.
var contractTargets = []float64{0.01, 0.02, 0.05}

// contractEngines builds one fresh engine per (kind, trial); each trial
// gets its own seed so trials are independent draws. The offline engine
// needs no stored sample: the contract path draws transient uniform
// samples (pilot + sized stage two) from the base table per run.
func contractEngines(ev *workload.Events) []struct {
	name string
	mk   func(trial int) contractExecutor
} {
	return []struct {
		name string
		mk   func(trial int) contractExecutor
	}{
		{"online", func(trial int) contractExecutor {
			return NewOnlineEngine(ev.Catalog, OnlineConfig{
				DefaultRate: 0.5, MinTableRows: 1, Seed: int64(1000 + trial)})
		}},
		{"ola", func(trial int) contractExecutor {
			return NewOLAEngine(ev.Catalog, OLAConfig{
				ChunkRows: 512, Seed: int64(3000 + trial)})
		}},
		{"offline", func(trial int) contractExecutor {
			return NewOfflineEngine(ev.Catalog, OfflineConfig{Seed: int64(2000 + trial)})
		}},
	}
}

// TestContractCoverage: ≥500 seeded two-stage trials per engine × target.
// Every met verdict is checked against the exact answer; the held rate
// must stay in the binomial band for the stated 95% confidence, and the
// engine must certify (met) often enough that the band is meaningful.
func TestContractCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("contract harness is long; skipped under -short")
	}
	ev, stmt, truth := coverageFixture(t)
	for _, eng := range contractEngines(ev) {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			for _, target := range contractTargets {
				target := target
				t.Run(fmt.Sprintf("target=%g", target), func(t *testing.T) {
					spec := ErrorSpec{RelError: target, Confidence: 0.95}
					cfg := DefaultContractConfig()
					var met, held, infeasible int
					for trial := 0; trial < coverageTrials; trial++ {
						e := eng.mk(trial)
						serial := runContractTrial(t, e, stmt, spec, cfg, 1)
						parallel := runContractTrial(t, e, stmt, spec, cfg, 4)
						assertContractTrialsEqual(t, eng.name, trial, serial, parallel)
						switch serial.verdict {
						case contract.VerdictMet:
							met++
							if math.Abs(serial.estimate-truth) <= target*math.Abs(truth) {
								held++
							}
						case contract.VerdictInfeasible:
							infeasible++
						}
					}
					if infeasible > 0 {
						t.Errorf("%s target=%g: %d infeasible verdicts under a full budget",
							eng.name, target, infeasible)
					}
					// Sizing uses a 90% variance upper bound, so ~90% of
					// runs should certify; half is a collapse, not noise.
					if met < coverageTrials/2 {
						t.Fatalf("%s target=%g: only %d/%d trials certified met",
							eng.name, target, met, coverageTrials)
					}
					holdRate := float64(held) / float64(met)
					t.Logf("%s target=%g: met %d/%d, held %d/%d (%.4f)",
						eng.name, target, met, coverageTrials, held, met, holdRate)
					if holdRate < coverageLowBand {
						t.Errorf("%s target=%g: held rate %.4f below band %.2f — met verdicts break their promise",
							eng.name, target, holdRate, coverageLowBand)
					}
				})
			}
		})
	}
}

// TestContractShardedCoverage: the same harness over scatter-gather at 1
// and 4 shards. One shard must stay bit-identical to the unsharded path;
// four shards exercise stratified pilot composition and Neyman-allocated
// stage two, and the held rate must stay in band at every fan-out.
func TestContractShardedCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("contract harness is long; skipped under -short")
	}
	ev, stmt, truth := coverageFixture(t)
	for _, n := range []int{1, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			m := shardedFixture(t, ev, n)
			for _, target := range contractTargets {
				target := target
				t.Run(fmt.Sprintf("target=%g", target), func(t *testing.T) {
					spec := ErrorSpec{RelError: target, Confidence: 0.95}
					// The stratified pilot splits across shards, so each
					// stratum's variance bound sees only pilot/n rows; a
					// larger pilot keeps per-shard sizing sharp enough to
					// certify at the same rate as the unsharded path.
					cfg := DefaultContractConfig()
					cfg.MinPilotRows = 400
					var met, held int
					for trial := 0; trial < coverageTrials; trial++ {
						eng := NewOnlineEngine(ev.Catalog, OnlineConfig{
							DefaultRate: 0.5, MinTableRows: 1, Seed: int64(1000 + trial)})
						eng.Shards = m
						serial := runContractTrial(t, eng, stmt, spec, cfg, 1)
						parallel := runContractTrial(t, eng, stmt, spec, cfg, 4)
						assertContractTrialsEqual(t, fmt.Sprintf("sharded-%d", n), trial, serial, parallel)
						if serial.verdict == contract.VerdictMet {
							met++
							if math.Abs(serial.estimate-truth) <= target*math.Abs(truth) {
								held++
							}
						}
					}
					if met < coverageTrials/2 {
						t.Fatalf("shards=%d target=%g: only %d/%d trials certified met",
							n, target, met, coverageTrials)
					}
					holdRate := float64(held) / float64(met)
					t.Logf("shards=%d target=%g: met %d/%d, held %d/%d (%.4f)",
						n, target, met, coverageTrials, held, met, holdRate)
					if holdRate < coverageLowBand {
						t.Errorf("shards=%d target=%g: held rate %.4f below band %.2f",
							n, target, holdRate, coverageLowBand)
					}
				})
			}
		})
	}
}

// TestContractShardBitIdentity: a one-shard contract run must reproduce
// the unsharded contract run bit for bit — same pilot, same sizing, same
// stage two — and repeated runs of either must be byte-stable.
func TestContractShardBitIdentity(t *testing.T) {
	ev, stmt, _ := coverageFixture(t)
	spec := ErrorSpec{RelError: 0.02, Confidence: 0.95}
	cfg := DefaultContractConfig()
	m := shardedFixture(t, ev, 1)
	for trial := 0; trial < 25; trial++ {
		ecfg := OnlineConfig{DefaultRate: 0.5, MinTableRows: 1, Seed: int64(4000 + trial)}
		plain := NewOnlineEngine(ev.Catalog, ecfg)
		sharded := NewOnlineEngine(ev.Catalog, ecfg)
		sharded.Shards = m
		for _, w := range []int{1, 4} {
			a := runContractTrial(t, plain, stmt, spec, cfg, w)
			b := runContractTrial(t, sharded, stmt, spec, cfg, w)
			assertContractTrialsEqual(t, "shard-1-vs-unsharded", trial, a, b)
			// And the run itself is replayable: same seed, same bits.
			assertContractTrialsEqual(t, "replay", trial, a, runContractTrial(t, plain, stmt, spec, cfg, w))
		}
	}
}

// TestContractInfeasibleRefusal: a target provably unreachable within a
// tight admission budget must be refused — verdict infeasible, guarantee
// downgraded to a-posteriori, the infeasible flag in the messages — and
// stage two must not spend beyond the budget.
func TestContractInfeasibleRefusal(t *testing.T) {
	ev, stmt, _ := coverageFixture(t)
	spec := ErrorSpec{RelError: 0.001, Confidence: 0.99}
	cfg := ContractConfig{BudgetFraction: 0.2}
	for _, eng := range contractEngines(ev) {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			e := eng.mk(7)
			res, err := e.ExecuteContract(context.Background(), stmt, spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum := res.Diagnostics.Contract
			if sum == nil {
				t.Fatal("no contract summary stamped")
			}
			if sum.Verdict != contract.VerdictInfeasible || !sum.Infeasible {
				t.Fatalf("want infeasible refusal, got verdict=%s infeasible=%v (required %.4g, budget %.4g)",
					sum.Verdict, sum.Infeasible, sum.RequiredFraction, sum.BudgetFraction)
			}
			if res.Guarantee == GuaranteeAPriori {
				t.Fatal("infeasible contract kept an a-priori guarantee")
			}
			flagged := false
			for _, msg := range res.Diagnostics.Messages {
				if strings.Contains(msg, contract.InfeasibleFlag) {
					flagged = true
				}
			}
			if !flagged {
				t.Fatalf("refusal not flagged %q in messages: %v",
					contract.InfeasibleFlag, res.Diagnostics.Messages)
			}
			// Stage two runs at the budget as best effort, never beyond.
			// (The realized fraction may exceed the nominal budget only by
			// Bernoulli rounding; a sized overshoot would be a bug.)
			if sum.FinalFraction > cfg.BudgetFraction+1e-9 {
				t.Fatalf("stage two sized at %.4g beyond budget %.4g",
					sum.FinalFraction, cfg.BudgetFraction)
			}
			if sum.RequiredFraction <= cfg.BudgetFraction {
				t.Fatalf("refusal with required %.4g within budget %.4g",
					sum.RequiredFraction, cfg.BudgetFraction)
			}
		})
	}
}

// TestContractChaosShardLoss: shard loss anywhere in a contract run must
// keep the verdict honest. A lost pilot shard forces a refusal (a partial
// pilot cannot certify the full population); a lost stage-two shard —
// even one the survivors extrapolate over — must never report "met". The
// fault schedule fires probabilistically, so the seed sweep observes both
// phases losing shards; every degraded outcome is checked.
func TestContractChaosShardLoss(t *testing.T) {
	ev, stmt, _ := coverageFixture(t)
	m := shardedFixture(t, ev, 4)
	spec := ErrorSpec{RelError: 0.02, Confidence: 0.95}
	cfg := DefaultContractConfig()
	rules, err := fault.ParseRules("shard.estimate.2:panic:0.5")
	if err != nil {
		t.Fatal(err)
	}

	var pilotLoss, stageLoss, clean int
	for seed := int64(1); seed <= 40; seed++ {
		fault.Install(fault.Schedule{Seed: seed, Rules: rules})
		eng := NewOnlineEngine(ev.Catalog, OnlineConfig{
			DefaultRate: 0.5, MinTableRows: 1, Seed: 9000 + seed})
		eng.Shards = m
		res, err := eng.ExecuteContract(context.Background(), stmt, spec, cfg)
		fault.Uninstall()
		if err != nil {
			t.Fatalf("seed %d: contract run failed outright under shard loss: %v", seed, err)
		}
		sum := res.Diagnostics.Contract
		if sum == nil {
			t.Fatalf("seed %d: no contract summary", seed)
		}
		sh := res.Diagnostics.Shards
		degraded := res.Diagnostics.Degraded || (sh != nil && (len(sh.Degraded) > 0 || sh.Extrapolated))
		pilotLost := strings.Contains(sum.Reason, "pilot lost shards")
		switch {
		case pilotLost:
			pilotLoss++
			if sum.Verdict == contract.VerdictMet {
				t.Fatalf("seed %d: met verdict sized from a partial pilot", seed)
			}
			if sum.Verdict != contract.VerdictInfeasible {
				t.Fatalf("seed %d: partial pilot not refused: verdict=%s", seed, sum.Verdict)
			}
		case degraded:
			stageLoss++
			if sum.Verdict == contract.VerdictMet {
				t.Fatalf("seed %d: met verdict on a degraded/extrapolated stage two", seed)
			}
			if res.Guarantee == GuaranteeAPriori {
				t.Fatalf("seed %d: a-priori guarantee on a degraded answer", seed)
			}
		default:
			clean++
		}
	}
	t.Logf("chaos sweep: %d pilot losses, %d stage-two losses, %d clean", pilotLoss, stageLoss, clean)
	if pilotLoss == 0 || stageLoss == 0 {
		t.Fatalf("sweep did not exercise both loss phases (pilot=%d stage=%d): adjust seeds",
			pilotLoss, stageLoss)
	}
}
