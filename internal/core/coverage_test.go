package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// The statistical-correctness harness: for each approximate engine, run
// many independently seeded trials of the same query and check that the
// empirical coverage of the reported 95% confidence intervals sits inside
// a binomial tolerance band around the nominal level. With 500 trials at
// p = 0.95 the binomial standard deviation is ~0.0097, so the band below
// is roughly nominal ± 6σ — wide enough never to flake on seed choice,
// tight enough to catch intervals that are wrong (too narrow) or vacuous
// (degenerate or orders of magnitude too wide paired with exact fallback,
// which the per-trial guards reject outright).
const (
	coverageTrials   = 500
	coverageLowBand  = 0.89
	coverageHighBand = 1.0
)

// coverageTrialResult is what one engine trial must report to the harness.
type coverageTrialResult struct {
	estimate float64
	lo, hi   float64
}

// runCoverageTrial executes stmt on eng at the given worker count and
// extracts the single aggregate's estimate and CI, enforcing the per-trial
// sanity guards (a real CI, no silent exact fallback).
func runCoverageTrial(t *testing.T, eng Engine, stmt *sqlparse.SelectStmt, spec ErrorSpec, workers int) coverageTrialResult {
	t.Helper()
	type ctxExecutor interface {
		ExecuteContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error)
	}
	ctx := exec.ContextWithWorkers(context.Background(), workers)
	res, err := eng.(ctxExecutor).ExecuteContext(ctx, stmt, spec)
	if err != nil {
		t.Fatalf("%s: %v", eng.Name(), err)
	}
	if res.Diagnostics.FellBackToExact {
		t.Fatalf("%s fell back to exact: %v", eng.Name(), res.Diagnostics.Messages)
	}
	if res.NumRows() != 1 || len(res.Items[0]) != 1 {
		t.Fatalf("%s: want one row, one item; got %d rows", eng.Name(), res.NumRows())
	}
	it := res.Items[0][0]
	if !it.IsAggregate || !it.HasCI {
		t.Fatalf("%s: aggregate item carries no CI", eng.Name())
	}
	if !(it.CI.Hi > it.CI.Lo) {
		t.Fatalf("%s: degenerate CI [%v, %v]", eng.Name(), it.CI.Lo, it.CI.Hi)
	}
	return coverageTrialResult{estimate: res.Float(0, 0), lo: it.CI.Lo, hi: it.CI.Hi}
}

// checkCoverage asserts the empirical coverage is inside the band and
// that serial and 4-worker runs agreed bit-for-bit on every trial.
func checkCoverage(t *testing.T, name string, covered, trials int) {
	t.Helper()
	cov := float64(covered) / float64(trials)
	t.Logf("%s: empirical 95%%-CI coverage %.4f (%d/%d)", name, cov, covered, trials)
	if cov < coverageLowBand || cov > coverageHighBand {
		t.Errorf("%s: coverage %.4f outside tolerance band [%.2f, %.2f]",
			name, cov, coverageLowBand, coverageHighBand)
	}
}

// assertTrialsEqual requires the serial and parallel trial to be
// bit-identical: the morsel executor's merge order is fixed by the morsel
// grid, not by worker scheduling, so W=1 and W=4 must produce the same
// floats down to the last bit — estimates and interval endpoints alike.
func assertTrialsEqual(t *testing.T, name string, trial int, serial, parallel coverageTrialResult) {
	t.Helper()
	if math.Float64bits(serial.estimate) != math.Float64bits(parallel.estimate) {
		t.Fatalf("%s trial %d: estimate differs across worker counts: %v (W=1) vs %v (W=4)",
			name, trial, serial.estimate, parallel.estimate)
	}
	if math.Float64bits(serial.lo) != math.Float64bits(parallel.lo) ||
		math.Float64bits(serial.hi) != math.Float64bits(parallel.hi) {
		t.Fatalf("%s trial %d: CI differs across worker counts: [%v, %v] vs [%v, %v]",
			name, trial, serial.lo, serial.hi, parallel.lo, parallel.hi)
	}
}

// coverageFixture builds the shared table and ground truth for the
// harness: 4000 exponential-valued rows, SUM over all of them.
func coverageFixture(t *testing.T) (*workload.Events, *sqlparse.SelectStmt, float64) {
	t.Helper()
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 101, Rows: 4000, NumGroups: 16, Skew: 0.8, BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	stmt := parse(t, "SELECT SUM(ev_value) AS s FROM events")
	exact, err := NewExactEngine(ev.Catalog).Execute(stmt, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	return ev, stmt, exact.Float(0, 0)
}

// TestOnlineCoverage: 500 fresh query-time samples, one per seed.
func TestOnlineCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage harness is long; skipped under -short")
	}
	ev, stmt, truth := coverageFixture(t)
	spec := ErrorSpec{RelError: 0.5, Confidence: 0.95}
	covered := 0
	for trial := 0; trial < coverageTrials; trial++ {
		eng := NewOnlineEngine(ev.Catalog, OnlineConfig{
			DefaultRate: 0.1, MinTableRows: 1, Seed: int64(1000 + trial)})
		serial := runCoverageTrial(t, eng, stmt, spec, 1)
		parallel := runCoverageTrial(t, eng, stmt, spec, 4)
		assertTrialsEqual(t, "online", trial, serial, parallel)
		if serial.lo <= truth && truth <= serial.hi {
			covered++
		}
	}
	checkCoverage(t, "online", covered, coverageTrials)
}

// TestOfflineCoverage: 500 independently built uniform samples, each
// profiled so the engine certifies it rather than falling back.
func TestOfflineCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage harness is long; skipped under -short")
	}
	ev, stmt, truth := coverageFixture(t)
	spec := ErrorSpec{RelError: 0.5, Confidence: 0.95}
	sql := stmt.String()
	covered := 0
	for trial := 0; trial < coverageTrials; trial++ {
		eng := NewOfflineEngine(ev.Catalog, OfflineConfig{
			UniformRates: []float64{0.1}, SafetyFactor: 1, Seed: int64(2000 + trial)})
		if err := eng.BuildSamples("events", nil); err != nil {
			t.Fatal(err)
		}
		if err := eng.ProfileQuery(sql); err != nil {
			t.Fatal(err)
		}
		serial := runCoverageTrial(t, eng, stmt, spec, 1)
		parallel := runCoverageTrial(t, eng, stmt, spec, 4)
		assertTrialsEqual(t, "offline", trial, serial, parallel)
		if serial.lo <= truth && truth <= serial.hi {
			covered++
		}
	}
	checkCoverage(t, "offline", covered, coverageTrials)
}

// TestOLACoverage: 500 random row permutations, each stopped at a fixed
// 25% fraction (StopWhenSpecMet off, so no peeking bias in the harness).
func TestOLACoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage harness is long; skipped under -short")
	}
	ev, stmt, truth := coverageFixture(t)
	spec := ErrorSpec{RelError: 0.5, Confidence: 0.95}
	covered := 0
	for trial := 0; trial < coverageTrials; trial++ {
		eng := NewOLAEngine(ev.Catalog, OLAConfig{
			ChunkRows: 512, MaxFraction: 0.25, StopWhenSpecMet: false,
			Seed: int64(3000 + trial)})
		serial := runCoverageTrial(t, eng, stmt, spec, 1)
		parallel := runCoverageTrial(t, eng, stmt, spec, 4)
		assertTrialsEqual(t, "ola", trial, serial, parallel)
		if serial.lo <= truth && truth <= serial.hi {
			covered++
		}
	}
	checkCoverage(t, "ola", covered, coverageTrials)
}

// TestExactWorkerInvariance: the exact engine has no sampling error, so
// across worker counts the answer must be bit-identical and equal to the
// truth the fixture computed.
func TestExactWorkerInvariance(t *testing.T) {
	ev, stmt, truth := coverageFixture(t)
	eng := NewExactEngine(ev.Catalog)
	for _, w := range []int{1, 2, 4, 7} {
		ctx := exec.ContextWithWorkers(context.Background(), w)
		res, err := eng.ExecuteContext(ctx, stmt, DefaultErrorSpec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Float(0, 0)) != math.Float64bits(truth) {
			t.Fatalf("W=%d: exact answer %v != %v", w, res.Float(0, 0), truth)
		}
		if res.Diagnostics.Workers != w {
			t.Errorf("W=%d: diagnostics report %d workers", w, res.Diagnostics.Workers)
		}
	}
}
