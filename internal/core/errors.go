package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fault"
)

// Typed error taxonomy. Every error that escapes an engine is classified
// into (at most) one of these sentinels via %w wrapping, so the server
// can map failure classes to HTTP statuses (504/429/503/500) and the
// degradation ladder can decide which failures are worth falling back
// from. Parse and semantic errors stay unclassified: they are the
// caller's fault and no other engine would fare better.
var (
	// ErrTimeout classifies deadline expiry (maps to 504).
	ErrTimeout = errors.New("query deadline exceeded")
	// ErrOverloaded classifies admission-control shedding (maps to 429).
	ErrOverloaded = errors.New("service overloaded")
	// ErrEngineUnavailable classifies an engine that cannot currently
	// serve — circuit open or an injected engine fault (maps to 503).
	ErrEngineUnavailable = errors.New("engine unavailable")
	// ErrQueryPanic classifies a panic recovered while executing one
	// query; the query is poisoned, the process is not (maps to 500).
	ErrQueryPanic = errors.New("query panicked")
)

// Classify wraps err with its taxonomy sentinel. Already-classified
// errors pass through untouched, so wrapping layers can call it freely.
func Classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrEngineUnavailable) || errors.Is(err, ErrQueryPanic) {
		return err
	}
	switch {
	case errors.Is(err, fault.ErrPanic):
		return fmt.Errorf("%w: %w", ErrQueryPanic, err)
	case fault.Injected(err):
		return fmt.Errorf("%w: %w", ErrEngineUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// contain is the per-engine containment guard: deferred at every engine
// entry point (with named returns) it converts a panic in the engine body
// into an ErrQueryPanic-classified error and classifies whatever error is
// on its way out. The panic poisons only this query.
func contain(errp *error) {
	if r := recover(); r != nil {
		*errp = fault.AsError(r)
	}
	*errp = Classify(*errp)
}
