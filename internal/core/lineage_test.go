package core

import (
	"testing"
)

// Lineage must let an after-the-fact audit reconstruct what data an
// answer was computed from: the base-table snapshot at execution and the
// watermark at sample build.
func TestExactAndOnlineLineage(t *testing.T) {
	ev := smallEvents(t, 2000, 0.5)
	stmt := parse(t, "SELECT SUM(ev_value) FROM events")

	res, err := NewExactEngine(ev.Catalog).Execute(stmt, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	lin := res.Diagnostics.Lineage
	if lin.Table != "events" || lin.TableRows != 2000 || lin.BuildRows != 2000 {
		t.Fatalf("exact lineage %+v, want events/2000/2000", lin)
	}
	if lin.TableVersion != ev.Table.Version() || lin.BuildVersion != lin.TableVersion {
		t.Fatalf("exact lineage versions %+v vs table version %d", lin, ev.Table.Version())
	}

	on := NewOnlineEngine(ev.Catalog, OnlineConfig{DefaultRate: 0.2, MinTableRows: 1, Seed: 3})
	res, err = on.Execute(stmt, ErrorSpec{RelError: 0.5, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	lin = res.Diagnostics.Lineage
	if lin.Table != "events" || lin.BuildRows != 2000 || lin.BuildVersion != ev.Table.Version() {
		t.Fatalf("online lineage %+v", lin)
	}
}

// The offline engine's stored samples must refresh their row watermark on
// Rebuild — a stale watermark makes every post-rebuild audit look like
// drift.
func TestOfflineBuildRowsSurvivesRebuild(t *testing.T) {
	ev := smallEvents(t, 3000, 0.5)
	eng := NewOfflineEngine(ev.Catalog, DefaultOfflineConfig())
	if err := eng.BuildSamples("events", [][]string{{"ev_group"}}); err != nil {
		t.Fatal(err)
	}
	for _, s := range eng.Samples("events") {
		if s.BuildRows != 3000 {
			t.Fatalf("sample %s BuildRows %d, want 3000", s.Name, s.BuildRows)
		}
	}
	if err := ev.AppendShifted(500, 4, 99); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rebuild("events"); err != nil {
		t.Fatal(err)
	}
	for _, s := range eng.Samples("events") {
		if s.BuildRows != 3500 {
			t.Fatalf("sample %s BuildRows %d after rebuild, want 3500", s.Name, s.BuildRows)
		}
		if s.BuildVersion != ev.Table.Version() {
			t.Fatalf("sample %s BuildVersion %d, want %d", s.Name, s.BuildVersion, ev.Table.Version())
		}
	}

	// An answer served from a certified sample carries that watermark.
	sql := "SELECT SUM(ev_value) FROM events GROUP BY ev_group"
	if err := eng.ProfileQuery(sql); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(parse(t, sql), ErrorSpec{RelError: 0.9, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.FellBackToExact {
		t.Skipf("no certified sample under this spec; lineage path not exercised: %v",
			res.Diagnostics.Messages)
	}
	lin := res.Diagnostics.Lineage
	if lin.SampleName == "" || lin.BuildRows != 3500 || lin.TableRows != 3500 {
		t.Fatalf("offline lineage %+v, want sample name and 3500-row watermark", lin)
	}
}

// Synopsis answers carry the build watermark of the column's sketches,
// which lags the live table after appends.
func TestSynopsisLineage(t *testing.T) {
	ev := smallEvents(t, 1500, 0.5)
	eng := NewSynopsisEngine(ev.Catalog)
	if err := eng.BuildColumn("events", "ev_value", 64); err != nil {
		t.Fatal(err)
	}
	if err := ev.AppendShifted(300, 2, 7); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(parse(t, "SELECT COUNT(*) FROM events WHERE ev_value >= 10 AND ev_value < 90"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	lin := res.Diagnostics.Lineage
	if lin.Table != "events" || lin.TableRows != 1800 {
		t.Fatalf("synopsis lineage snapshot %+v, want events/1800", lin)
	}
	if lin.BuildRows != 1500 || lin.SampleName != "events.ev_value" {
		t.Fatalf("synopsis lineage build %+v, want 1500-row watermark on events.ev_value", lin)
	}
	if lin.BuildVersion == lin.TableVersion {
		t.Fatal("build version should lag the live version after appends")
	}
}
