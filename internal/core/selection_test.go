package core

import (
	"testing"

	"repro/internal/workload"
)

func TestEstimateStratifiedRows(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 1, Rows: 10000, NumGroups: 10})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := EstimateStratifiedRows(ev.Table, []string{"ev_group"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 10 groups, each ~1000 rows, cap 100 -> exactly 1000.
	if rows != 1000 {
		t.Errorf("rows = %d, want 1000", rows)
	}
	// Cap larger than every group keeps everything.
	rows, err = EstimateStratifiedRows(ev.Table, []string{"ev_group"}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 10000 {
		t.Errorf("rows = %d, want 10000", rows)
	}
	if _, err := EstimateStratifiedRows(ev.Table, []string{"missing"}, 10); err == nil {
		t.Error("unknown column must error")
	}
}

func TestPlanSampleBudget(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 2, Rows: 20000, NumGroups: 16})
	if err != nil {
		t.Fatal(err)
	}
	cands := []QCSCandidate{
		{QCS: []string{"ev_group"}, Weight: 0.5},
		{QCS: []string{"ev_flag"}, Weight: 0.5},
	}
	// Budget for only one (ev_flag: 2 strata × 64 = 128 rows; ev_group:
	// 16 × 64 = 1024 rows, over budget after the first pick).
	plan, err := PlanSampleBudget(ev.Table, cands, 64, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("plan size = %d (%+v)", len(plan), plan)
	}
	// ev_flag: 2 strata * 64 = 128 rows for weight 0.5 — the best ratio.
	if plan[0].QCS[0] != "ev_flag" {
		t.Errorf("greedy should pick ev_flag first, got %v", plan[0].QCS)
	}
	// Ample budget covers everything.
	plan, err = PlanSampleBudget(ev.Table, cands, 64, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var covered float64
	for _, p := range plan {
		covered += p.Covers
	}
	if covered < 0.99 {
		t.Errorf("covered = %v", covered)
	}
	// Zero budget: nothing.
	plan, err = PlanSampleBudget(ev.Table, cands, 64, 0)
	if err != nil || len(plan) != 0 {
		t.Errorf("zero budget plan = %v, %v", plan, err)
	}
	if _, err := PlanSampleBudget(ev.Table, cands, 0, 100); err == nil {
		t.Error("zero cap must error")
	}
}

func TestPlanSubsumption(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 3, Rows: 20000, NumGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	cands := []QCSCandidate{
		{QCS: []string{"ev_group"}, Weight: 0.3},
		{QCS: []string{"ev_flag"}, Weight: 0.3},
		{QCS: []string{"ev_group", "ev_flag"}, Weight: 0.4},
	}
	plan, err := PlanSampleBudget(ev.Table, cands, 128, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy (by weight-per-row) may take the cheap ev_flag sample first,
	// then the compound set that subsumes the rest — but never needs all
	// three, and must reach full coverage.
	if len(plan) > 2 {
		t.Fatalf("plan should not materialize subsumed samples: %+v", plan)
	}
	var covered float64
	hasCompound := false
	for _, p := range plan {
		covered += p.Covers
		if len(p.QCS) == 2 {
			hasCompound = true
		}
	}
	if covered < 0.99 {
		t.Errorf("covered = %v", covered)
	}
	if !hasCompound {
		t.Errorf("compound QCS should be selected: %+v", plan)
	}
}

func TestBuildPlanned(t *testing.T) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 4, Rows: 20000, NumGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOfflineConfig()
	cfg.UniformRates = []float64{0.01}
	e := NewOfflineEngine(ev.Catalog, cfg)
	plan := []PlannedSample{
		{QCS: []string{"ev_group"}, Cap: 64},
		{QCS: []string{"ev_flag"}, Cap: 32},
	}
	if err := e.BuildPlanned("events", plan); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Samples("events")); got != 2 {
		t.Fatalf("samples = %d, want 2 (no uniform duplicates)", got)
	}
	// Config restored.
	if len(e.Config.UniformRates) != 1 || len(e.Config.Caps) != len(cfg.Caps) {
		t.Error("config not restored after BuildPlanned")
	}
}
