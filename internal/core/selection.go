package core

import (
	"fmt"
	"sort"

	"repro/internal/sample"
	"repro/internal/storage"
)

// Budgeted offline-sample selection — the optimization problem BlinkDB
// solves: given the query column sets (QCS) a workload is expected to use,
// with relative frequencies, and a storage budget in rows, choose which
// stratified samples to materialize so that as much of the workload as
// possible is covered. A sample stratified on set S covers every query
// whose grouping columns are a subset of S.

// QCSCandidate is one predicted query column set with its workload weight.
type QCSCandidate struct {
	QCS    []string
	Weight float64
}

// PlannedSample is one selected sample with its predicted cost.
type PlannedSample struct {
	QCS []string
	Cap int
	// Rows is the exact materialized size (Σ min(cap, |stratum|)).
	Rows int
	// Covers is the summed weight of candidates this sample serves.
	Covers float64
}

// EstimateStratifiedRows computes the exact row count a stratified sample
// on qcs with the given cap would materialize, via one scan of src.
func EstimateStratifiedRows(src *storage.Table, qcs []string, cap int) (int, error) {
	idxs := make([]int, len(qcs))
	for i, c := range qcs {
		idx := src.Schema().ColumnIndex(c)
		if idx < 0 {
			return 0, fmt.Errorf("core: QCS column %q not in table %s", c, src.Name())
		}
		idxs[i] = idx
	}
	counts := make(map[string]int)
	keyBuf := make([]storage.Value, len(idxs))
	n := src.NumRows()
	for i := 0; i < n; i++ {
		for j, idx := range idxs {
			keyBuf[j] = src.Column(idx).Value(i)
		}
		counts[sample.KeyOf(keyBuf)]++
	}
	total := 0
	for _, c := range counts {
		if c < cap {
			total += c
		} else {
			total += cap
		}
	}
	return total, nil
}

// PlanSampleBudget greedily selects stratified samples (one cap per QCS,
// the given cap) under a row budget, maximizing covered workload weight
// per materialized row. It returns the chosen samples in selection order.
//
// Coverage rule: a sample on S covers candidate Q iff Q.QCS ⊆ S. Since
// candidate sets are also the only stratification sets considered, the
// greedy benefit of picking candidate S is the weight of all still-
// uncovered candidates that are subsets of S.
func PlanSampleBudget(src *storage.Table, cands []QCSCandidate, cap, budgetRows int) ([]PlannedSample, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("core: cap must be positive")
	}
	type enriched struct {
		cand QCSCandidate
		rows int
		set  map[string]bool
	}
	items := make([]enriched, 0, len(cands))
	for _, c := range cands {
		if len(c.QCS) == 0 {
			continue
		}
		rows, err := EstimateStratifiedRows(src, c.QCS, cap)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(c.QCS))
		for _, col := range c.QCS {
			set[col] = true
		}
		items = append(items, enriched{cand: c, rows: rows, set: set})
	}
	covered := make([]bool, len(items))
	var chosen []PlannedSample
	remaining := budgetRows
	for {
		bestIdx := -1
		var bestBenefit, bestRatio float64
		for i, it := range items {
			if it.rows > remaining {
				continue
			}
			// Benefit: weight of uncovered candidates whose QCS ⊆ this set.
			var benefit float64
			for j, other := range items {
				if covered[j] {
					continue
				}
				if subsetOf(other.cand.QCS, it.set) {
					benefit += other.cand.Weight
				}
			}
			if benefit <= 0 {
				continue
			}
			ratio := benefit / float64(it.rows)
			if bestIdx < 0 || ratio > bestRatio {
				bestIdx, bestBenefit, bestRatio = i, benefit, ratio
			}
		}
		if bestIdx < 0 {
			break
		}
		it := items[bestIdx]
		chosen = append(chosen, PlannedSample{
			QCS: append([]string(nil), it.cand.QCS...), Cap: cap,
			Rows: it.rows, Covers: bestBenefit,
		})
		remaining -= it.rows
		for j, other := range items {
			if !covered[j] && subsetOf(other.cand.QCS, it.set) {
				covered[j] = true
			}
		}
	}
	sort.SliceStable(chosen, func(i, j int) bool { return chosen[i].Covers > chosen[j].Covers })
	return chosen, nil
}

func subsetOf(qcs []string, set map[string]bool) bool {
	for _, c := range qcs {
		if !set[c] {
			return false
		}
	}
	return true
}

// BuildPlanned materializes a budget plan through the engine, registering
// every chosen sample.
func (e *OfflineEngine) BuildPlanned(table string, plan []PlannedSample) error {
	// Temporarily narrow the ladder to each plan's cap and suppress the
	// per-call uniform samples (they would otherwise be rebuilt once per
	// plan entry).
	savedCaps, savedRates := e.Config.Caps, e.Config.UniformRates
	defer func() { e.Config.Caps, e.Config.UniformRates = savedCaps, savedRates }()
	e.Config.UniformRates = nil
	for _, p := range plan {
		e.Config.Caps = []int{p.Cap}
		if err := e.BuildSamples(table, [][]string{p.QCS}); err != nil {
			return err
		}
	}
	return nil
}
