package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/shard"
	"repro/internal/sketch"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/trace"
)

// injectOnline fires at online-engine entry.
var injectOnline = fault.NewPoint("core.online", "online-sampling engine entry")

// OnlineConfig tunes the query-time sampling engine.
type OnlineConfig struct {
	// DefaultRate is the sampling rate used when the query does not carry
	// its own TABLESAMPLE clause.
	DefaultRate float64
	// MinTableRows is the size threshold below which tables are never
	// sampled (sampling small tables saves nothing and costs accuracy).
	MinTableRows int
	// DistinctKeep is the per-stratum pass-through count of the distinct
	// sampler used for GROUP BY queries.
	DistinctKeep int
	// UseBlockSampling swaps the uniform row sampler for the block
	// sampler (higher scan savings, correlated rows).
	UseBlockSampling bool
	// FallbackToExact re-runs the query exactly when the realized CIs
	// miss the spec. Costs a second pass over the data (recorded in
	// Counters.Passes).
	FallbackToExact bool
	// CacheSamples enables Taster-style sample reuse: the first query
	// that uniform-samples a table materializes the sample, and
	// subsequent queries answer from it without touching the base table,
	// until the base table's version changes. The cache turns the online
	// engine into an online/offline hybrid: zero *up-front* cost, but
	// amortized scans — while inheriting the offline freshness liability,
	// which the engine guards with version checks.
	CacheSamples bool
	// MinExpectedSampleRows is the selectivity guard: when an attached
	// histogram predicts that selectivity × rows × rate falls below this
	// bound, sampling cannot produce a usable estimate and the engine
	// runs the query exactly instead — the "selective queries cannot be
	// sampled" boundary. Zero disables the guard.
	MinExpectedSampleRows float64
	// Seed drives sampler determinism.
	Seed int64
	// Workers is the morsel-parallel worker count; 0 defers to a context
	// override or runtime.GOMAXPROCS.
	Workers int
}

// DefaultOnlineConfig returns the engine defaults: 1% sampling, sampling
// only tables with at least 50k rows, keep-30 distinct strata.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{
		DefaultRate:  0.01,
		MinTableRows: 50_000,
		DistinctKeep: 30,
		Seed:         1,
	}
}

// OnlineEngine is the query-time sampling engine in the style the paper
// attributes to Quickr: no precomputed samples, samplers injected into the
// plan at query time based on plan shape (uniform for plain aggregates,
// distinct for group-bys, universe for joins of two large tables), one
// pass over the data, honest a-posteriori confidence intervals.
type OnlineEngine struct {
	Catalog *storage.Catalog
	Config  OnlineConfig
	// Shards, when set, routes single-table aggregate queries over sharded
	// tables through the scatter-gather executor: each shard samples with
	// an independently derived seed and the partials compose into one
	// stratified estimate. A nil map (or unsharded table) leaves execution
	// exactly as before.
	Shards *shard.Map

	// mu guards the sample cache, the hit/miss counters, and the
	// histogram registry so concurrent queries may share one engine.
	mu sync.RWMutex
	// cache holds Taster-style reusable uniform samples by table name.
	cache map[string]*cachedSample
	// CacheHits / CacheMisses count reuse effectiveness. Read them via
	// CacheStats when other goroutines may be querying.
	CacheHits, CacheMisses int
	// histograms holds per-column selectivity estimators keyed
	// "table.column" (see AttachHistogram).
	histograms map[string]*sketch.EquiDepthHistogram
}

type cachedSample struct {
	data    *storage.Table // sample with weight column
	version uint64         // base table version at build time
	srcRows int            // base table rows at build time
	rate    float64
}

// NewOnlineEngine builds an online engine with the given config.
func NewOnlineEngine(cat *storage.Catalog, cfg OnlineConfig) *OnlineEngine {
	if cfg.DefaultRate <= 0 || cfg.DefaultRate > 1 {
		cfg.DefaultRate = 0.01
	}
	if cfg.DistinctKeep <= 0 {
		cfg.DistinctKeep = 30
	}
	return &OnlineEngine{Catalog: cat, Config: cfg,
		cache:      make(map[string]*cachedSample),
		histograms: make(map[string]*sketch.EquiDepthHistogram)}
}

// exactEngine builds the exact-fallback engine, inheriting the worker
// configuration so fallbacks run at the same parallelism.
func (e *OnlineEngine) exactEngine() *ExactEngine {
	return &ExactEngine{Catalog: e.Catalog, Workers: e.Config.Workers, Shards: e.Shards}
}

// AttachHistogram registers a selectivity estimator for table.column,
// enabling the MinExpectedSampleRows guard on range predicates over that
// column. Histograms are typically built once from internal/sketch.
func (e *OnlineEngine) AttachHistogram(table, column string, h *sketch.EquiDepthHistogram) {
	e.mu.Lock()
	e.histograms[table+"."+column] = h
	e.mu.Unlock()
}

// CacheStats returns the cache hit/miss counters under the engine lock.
func (e *OnlineEngine) CacheStats() (hits, misses int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.CacheHits, e.CacheMisses
}

// BuildHistogram scans a numeric column and attaches an equi-depth
// histogram for it.
func (e *OnlineEngine) BuildHistogram(table, column string, buckets int) error {
	t, err := e.Catalog.Table(table)
	if err != nil {
		return err
	}
	idx := t.Schema().ColumnIndex(column)
	if idx < 0 {
		return fmt.Errorf("core: histogram column %s.%s not found", table, column)
	}
	col := t.Snapshot().Column(idx)
	if !col.Type().Numeric() {
		return fmt.Errorf("core: histogram column %s.%s is not numeric", table, column)
	}
	vals := make([]float64, 0, col.Len())
	for i := 0; i < col.Len(); i++ {
		if !col.IsNull(i) {
			vals = append(vals, col.Value(i).AsFloat())
		}
	}
	if buckets <= 0 {
		buckets = 128
	}
	h, err := sketch.BuildEquiDepth(vals, buckets)
	if err != nil {
		return err
	}
	e.AttachHistogram(table, column, h)
	return nil
}

// estimatedQualifyingRows predicts how many rows of a sampled scan would
// survive its pushed-down filter, using attached histograms for
// single-column range predicates. Returns (estimate, true) when a usable
// prediction exists.
func (e *OnlineEngine) estimatedQualifyingRows(s *plan.Scan) (float64, bool) {
	if s.Filter == nil {
		return float64(s.Table.NumRows()), true
	}
	col, lo, hi, ok := rangePredicate(s.Filter)
	if !ok {
		return 0, false
	}
	e.mu.RLock()
	h := e.histograms[s.TableName+"."+col]
	e.mu.RUnlock()
	if h == nil {
		return 0, false
	}
	return h.EstimateRangeCount(lo, hi), true
}

// Name implements Engine.
func (e *OnlineEngine) Name() Technique { return TechniqueOnline }

// Execute implements Engine.
func (e *OnlineEngine) Execute(stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error) {
	return e.ExecuteContext(context.Background(), stmt, spec)
}

// ExecuteContext is Execute under a context: the sampled scan (and any
// exact fallback) observes cancellation and deadlines.
func (e *OnlineEngine) ExecuteContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec) (_ *Result, err error) {
	defer contain(&err)
	if err := injectOnline.Inject(); err != nil {
		return nil, err
	}
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine online")
	defer esp.End()
	if !spec.Valid() {
		spec = DefaultErrorSpec
	}
	if ok, reason := supportedForSampling(stmt); !ok {
		res, err := e.exactEngine().ExecuteContext(ctx, stmt, spec)
		if err != nil {
			return nil, err
		}
		res.Diagnostics.FellBackToExact = true
		res.Diagnostics.Messages = append(res.Diagnostics.Messages,
			"online: fell back to exact: "+reason)
		return res, nil
	}

	psp, _ := trace.StartSpan(ctx, "plan")
	p, err := plan.Build(stmt, e.Catalog)
	psp.End()
	if err != nil {
		return nil, err
	}
	ssp, _ := trace.StartSpan(ctx, "place-samplers")
	planned, notes := e.placeSamplers(stmt, p)
	ssp.End()
	if !planned {
		res, err := e.exactEngine().ExecuteContext(ctx, stmt, spec)
		if err != nil {
			return nil, err
		}
		res.Diagnostics.FellBackToExact = true
		res.Diagnostics.Messages = append(res.Diagnostics.Messages, notes...)
		return res, nil
	}

	// Selectivity guard: sampling a scan whose filter leaves too few
	// expected rows cannot meet any spec; run exactly instead.
	if e.Config.MinExpectedSampleRows > 0 {
		for _, s := range plan.Scans(p) {
			if s.Sample == nil {
				continue
			}
			if q, ok := e.estimatedQualifyingRows(s); ok {
				if expected := q * s.Sample.Rate; expected < e.Config.MinExpectedSampleRows {
					res, err := e.exactEngine().ExecuteContext(ctx, stmt, spec)
					if err != nil {
						return nil, err
					}
					res.Diagnostics.FellBackToExact = true
					res.Diagnostics.Messages = append(res.Diagnostics.Messages, fmt.Sprintf(
						"online: selectivity guard — histogram predicts ~%.1f sampled qualifying rows on %s (< %g); running exactly",
						expected, s.TableName, e.Config.MinExpectedSampleRows))
					return res, nil
				}
			}
		}
	}

	if g := shardGroupFor(e.Shards, stmt); g != nil && exec.Gatherable(p) {
		// Sharded tables answer scatter-gather; the sample cache does not
		// apply (each shard owns its own independently seeded sample).
		return e.executeSharded(ctx, g, stmt, p, spec, notes, start)
	}

	if e.Config.CacheSamples {
		csp, cctx := trace.StartSpan(ctx, "sample-cache")
		res, handled, err := e.tryCached(cctx, stmt, p, spec, notes, start)
		csp.End()
		if handled {
			return res, err
		}
	}

	workers := resolveWorkers(ctx, p, e.Config.Workers)
	esp.SetAttrInt("workers", int64(workers))
	raw, err := exec.RunParallelContext(ctx, p, workers)
	if err != nil {
		return nil, err
	}
	asp, _ := trace.StartSpan(ctx, "estimate")
	out := annotate(stmt, raw, spec, TechniqueOnline, GuaranteeAPosteriori)
	asp.End()
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, notes...)
	out.Diagnostics.SampleFraction = sampleFraction(raw.Counters, sampledRows(p))
	out.Diagnostics.Workers = workers
	stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)
	esp.SetAttrFloat("sample_fraction", out.Diagnostics.SampleFraction)

	if !out.Diagnostics.SpecSatisfied && e.Config.FallbackToExact {
		exactRes, err := e.exactEngine().ExecuteContext(ctx, stmt, spec)
		if err != nil {
			return nil, err
		}
		exactRes.Diagnostics.Counters.Add(raw.Counters)
		exactRes.Diagnostics.FellBackToExact = true
		exactRes.Diagnostics.Messages = append(exactRes.Diagnostics.Messages,
			"online: sampled CIs missed the spec; re-ran exactly (second pass)")
		exactRes.Diagnostics.Latency = time.Since(start)
		return exactRes, nil
	}
	out.Diagnostics.Latency = time.Since(start)
	return out, nil
}

// executeSharded runs the sampled plan scatter-gather over the shard
// group. The sampler spec placeSamplers chose for the base plan is pushed
// to every shard with a shard-derived seed; merging the per-shard partials
// in shard order composes the stratified estimate losslessly, and the
// finalize step reuses the base plan's above-aggregate chain — with one
// shard, execution is bit-identical to the unsharded path.
func (e *OnlineEngine) executeSharded(ctx context.Context, g *shard.Group, stmt *sqlparse.SelectStmt,
	p plan.Node, spec ErrorSpec, notes []string, start time.Time) (*Result, error) {

	workers := resolveWorkers(ctx, p, e.Config.Workers)
	var smp *sample.Spec
	for _, s := range plan.Scans(p) {
		if s.Sample != nil {
			smp = s.Sample
			break
		}
	}
	run, err := runSharded(ctx, g, stmt, p, smp, workers)
	if err != nil {
		return nil, err
	}
	asp, _ := trace.StartSpan(ctx, "estimate")
	guarantee := GuaranteeAPosteriori
	if run.degraded && !run.summary.Extrapolated {
		// Survivors answer for a population the CI cannot be stretched to
		// cover (range gap): approximate with no defensible statement.
		guarantee = GuaranteeNone
	}
	out := annotate(stmt, run.raw, spec, TechniqueOnline, guarantee)
	asp.End()
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, notes...)
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, run.messages...)
	out.Diagnostics.SampleFraction = sampleFraction(run.raw.Counters, run.sampledPop)
	out.Diagnostics.Workers = workers
	out.Diagnostics.Degraded = run.degraded
	out.Diagnostics.Shards = run.summary
	stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)

	if !out.Diagnostics.SpecSatisfied && !run.degraded && e.Config.FallbackToExact {
		exactRes, err := e.exactEngine().ExecuteContext(ctx, stmt, spec)
		if err != nil {
			return nil, err
		}
		exactRes.Diagnostics.Counters.Add(run.raw.Counters)
		exactRes.Diagnostics.FellBackToExact = true
		exactRes.Diagnostics.Messages = append(exactRes.Diagnostics.Messages,
			"online: sampled CIs missed the spec; re-ran exactly (second pass)")
		exactRes.Diagnostics.Latency = time.Since(start)
		return exactRes, nil
	}
	out.Diagnostics.Latency = time.Since(start)
	return out, nil
}

// tryCached serves the query from a Taster-style reusable uniform sample.
// It applies only when the engine (not the user) placed a single uniform
// sampler; returns handled=false to fall through to the normal path.
// The engine lock is held across the check-and-build so concurrent
// queries over the same table build the cached sample once.
func (e *OnlineEngine) tryCached(ctx context.Context, stmt *sqlparse.SelectStmt, p plan.Node, spec ErrorSpec,
	notes []string, start time.Time) (*Result, bool, error) {
	// User-written TABLESAMPLE clauses opt out of caching.
	if stmt.From.Sample != nil {
		return nil, false, nil
	}
	for _, j := range stmt.Joins {
		if j.Table.Sample != nil {
			return nil, false, nil
		}
	}
	var sampled *plan.Scan
	for _, s := range plan.Scans(p) {
		if s.Sample == nil {
			continue
		}
		if sampled != nil || s.Sample.Kind != sample.KindUniformRow {
			return nil, false, nil // multi-table or non-uniform: no caching
		}
		sampled = s
	}
	if sampled == nil {
		return nil, false, nil
	}
	name := sampled.TableName
	base := sampled.Table
	rate := sampled.Sample.Rate

	var builtRows int64
	e.mu.Lock()
	c := e.cache[name]
	if c == nil || c.version != base.Version() || c.rate != rate {
		res, err := sample.BuildUniformTable(base, rate, e.Config.Seed, name+"__cache")
		if err != nil {
			e.mu.Unlock()
			return nil, true, err
		}
		c = &cachedSample{data: res.Table, version: res.BuildVersion, srcRows: res.SourceRows, rate: rate}
		e.cache[name] = c
		e.CacheMisses++
		builtRows = int64(base.NumRows())
		notes = append(notes, fmt.Sprintf("online: cache miss — materialized %d-row sample of %s",
			res.SampleRows, name))
	} else {
		e.CacheHits++
		notes = append(notes, fmt.Sprintf("online: cache hit — reusing %d-row sample of %s",
			c.data.NumRows(), name))
	}
	e.mu.Unlock()

	shadow := storage.NewCatalog()
	for _, tn := range e.Catalog.Names() {
		if tn == name {
			continue
		}
		t, err := e.Catalog.Table(tn)
		if err != nil {
			return nil, true, err
		}
		if err := shadow.AddAs(tn, t); err != nil {
			return nil, true, err
		}
	}
	if err := shadow.AddAs(name, c.data); err != nil {
		return nil, true, err
	}
	p2, err := plan.Build(stmt, shadow)
	if err != nil {
		return nil, true, err
	}
	workers := resolveWorkers(ctx, p2, e.Config.Workers)
	raw, err := exec.RunParallelContext(ctx, p2, workers)
	if err != nil {
		return nil, true, err
	}
	raw.Counters.RowsScanned += builtRows // the build pass is real work
	out := annotate(stmt, raw, spec, TechniqueOnline, GuaranteeAPosteriori)
	out.Diagnostics.Messages = append(out.Diagnostics.Messages, notes...)
	out.Diagnostics.Workers = workers
	if base.NumRows() > 0 {
		out.Diagnostics.SampleFraction = float64(c.data.NumRows()) / float64(base.NumRows())
	}
	// The cached sample may predate this execution: lineage carries its
	// build watermark, not the current snapshot's.
	stampLineage(&out.Diagnostics, e.Catalog, name)
	out.Diagnostics.Lineage.SampleName = c.data.Name()
	out.Diagnostics.Lineage.BuildVersion = c.version
	out.Diagnostics.Lineage.BuildRows = c.srcRows
	out.Diagnostics.Latency = time.Since(start)
	return out, true, nil
}

// placeSamplers injects samplers into the plan scans following the plan
// shape, honoring user-specified TABLESAMPLE clauses. Returns false when
// no table is worth sampling.
func (e *OnlineEngine) placeSamplers(stmt *sqlparse.SelectStmt, p plan.Node) (bool, []string) {
	var notes []string
	scans := plan.Scans(p)

	// User-specified TABLESAMPLE wins.
	for _, s := range scans {
		if s.Sample != nil {
			notes = append(notes, fmt.Sprintf("online: honoring TABLESAMPLE on %s: %s",
				s.TableName, s.Sample))
			return true, notes
		}
	}

	// Large tables only.
	var large []*plan.Scan
	for _, s := range scans {
		if s.Table.NumRows() >= e.Config.MinTableRows {
			large = append(large, s)
		}
	}
	if len(large) == 0 {
		return false, append(notes, "online: no table large enough to sample")
	}
	var biggest *plan.Scan
	for _, s := range large {
		if biggest == nil || s.Table.NumRows() > biggest.Table.NumRows() {
			biggest = s
		}
	}
	uniformOnBiggest := func(why string) {
		kind := sample.KindUniformRow
		if e.Config.UseBlockSampling {
			kind = sample.KindBlock
		}
		biggest.Sample = &sample.Spec{Kind: kind, Rate: e.Config.DefaultRate, Seed: e.Config.Seed}
		notes = append(notes, fmt.Sprintf("online: %s sampler on %s at %.4g (%s)",
			kind, biggest.TableName, e.Config.DefaultRate, why))
	}

	// Case 1: GROUP BY. Only the largest (fact) table is sampled:
	// sampling a dimension that carries the group columns starves every
	// group's join fan-out and blows up per-group variance. If the group
	// columns live on the fact table, the distinct sampler guarantees
	// group survival; if they live on a (kept-whole) dimension, a plain
	// uniform sample of the fact preserves groups through the join.
	if len(stmt.GroupBy) > 0 {
		if s, cols := groupScanAndColumns(stmt, []*plan.Scan{biggest}); s != nil {
			s.Sample = &sample.Spec{
				Kind:          sample.KindDistinct,
				Rate:          e.Config.DefaultRate,
				KeyColumns:    cols,
				KeepThreshold: e.Config.DistinctKeep,
				Seed:          e.Config.Seed,
			}
			notes = append(notes, fmt.Sprintf("online: distinct sampler on %s keyed on %v",
				s.TableName, cols))
			return true, notes
		}
		uniformOnBiggest("group columns live on unsampled tables, which stay whole")
		return true, notes
	}

	// Case 2: two large tables joined on a single-column equation ->
	// universe sampler on that key on both sides, with a shared salt so
	// the key subsets align exactly.
	if len(large) >= 2 {
		if pr, ok := universePair(p, large); ok {
			salt := uint64(e.Config.Seed)*0x9e3779b97f4a7c15 + 0x1234
			pr.left.Sample = &sample.Spec{
				Kind: sample.KindUniverse, Rate: e.Config.DefaultRate,
				KeyColumns: []string{pr.leftCol}, Salt: salt,
			}
			pr.right.Sample = &sample.Spec{
				Kind: sample.KindUniverse, Rate: e.Config.DefaultRate,
				KeyColumns: []string{pr.rightCol}, Salt: salt,
				// The left side carries the 1/rate HT weight; inclusion
				// of a joined pair is perfectly correlated across sides.
				NoWeight: true,
			}
			notes = append(notes, fmt.Sprintf(
				"online: universe samplers on %s(%s) and %s(%s), shared salt",
				pr.left.TableName, pr.leftCol, pr.right.TableName, pr.rightCol))
			return true, notes
		}
	}

	// Case 3: uniform (or block) sampling on the largest table.
	uniformOnBiggest("default")
	return true, notes
}

// groupScanAndColumns finds a single large scan that carries all GROUP BY
// columns, returning it and the column names.
func groupScanAndColumns(stmt *sqlparse.SelectStmt, large []*plan.Scan) (*plan.Scan, []string) {
	var cols []string
	for _, g := range stmt.GroupBy {
		cols = append(cols, expr.Columns(g)...)
	}
	if len(cols) == 0 {
		return nil, nil
	}
	for _, s := range large {
		all := true
		for _, c := range cols {
			if s.Table.Schema().ColumnIndex(c) < 0 {
				all = false
				break
			}
		}
		if all {
			return s, cols
		}
	}
	return nil, nil
}

type universeJoin struct {
	left, right       *plan.Scan
	leftCol, rightCol string
}

// universePair finds a join equation l.col = r.col connecting two distinct
// large scans with bare column keys on both sides — the shape the universe
// sampler requires (both sides hash the same key domain).
func universePair(p plan.Node, large []*plan.Scan) (universeJoin, bool) {
	largeSet := make(map[*plan.Scan]bool, len(large))
	for _, s := range large {
		largeSet[s] = true
	}
	var found universeJoin
	ok := false
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if ok {
			return
		}
		if j, isJoin := n.(*plan.Join); isJoin {
			for i := range j.LeftKeys {
				lcols := expr.Columns(j.LeftKeys[i])
				rcols := expr.Columns(j.RightKeys[i])
				if len(lcols) != 1 || len(rcols) != 1 {
					continue
				}
				ls := owningScan(j.Left, lcols[0])
				rs := owningScan(j.Right, rcols[0])
				if ls != nil && rs != nil && ls != rs && largeSet[ls] && largeSet[rs] {
					found = universeJoin{left: ls, right: rs, leftCol: lcols[0], rightCol: rcols[0]}
					ok = true
					return
				}
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	return found, ok
}

func owningScan(n plan.Node, col string) *plan.Scan {
	for _, s := range plan.Scans(n) {
		if s.Table.Schema().ColumnIndex(col) >= 0 {
			return s
		}
	}
	return nil
}

// sampledRows totals the row counts of tables that carry samplers.
func sampledRows(p plan.Node) int64 {
	var total int64
	for _, s := range plan.Scans(p) {
		if s.Sample != nil {
			total += int64(s.Table.NumRows())
		}
	}
	return total
}
