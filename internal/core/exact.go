package core

import (
	"context"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/trace"
)

// injectExact fires at exact-engine entry.
var injectExact = fault.NewPoint("core.exact", "exact engine entry")

// ExactEngine executes queries exactly; it is the reference every
// approximate engine is measured against.
type ExactEngine struct {
	Catalog *storage.Catalog
	// Workers is the morsel-parallel worker count; 0 defers to a context
	// override or runtime.GOMAXPROCS.
	Workers int
	// Shards, when set, routes single-table aggregate queries over sharded
	// tables through the scatter-gather executor. A nil map (or unsharded
	// table) leaves execution exactly as before.
	Shards *shard.Map
}

// NewExactEngine builds an exact engine over the catalog.
func NewExactEngine(cat *storage.Catalog) *ExactEngine {
	return &ExactEngine{Catalog: cat}
}

// Name implements Engine.
func (e *ExactEngine) Name() Technique { return TechniqueExact }

// Execute implements Engine. Any TABLESAMPLE clauses in the statement are
// stripped: exact means exact.
func (e *ExactEngine) Execute(stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error) {
	return e.ExecuteContext(context.Background(), stmt, spec)
}

// ExecuteContext is Execute under a context: scans observe cancellation
// and deadlines, aborting with ctx.Err().
func (e *ExactEngine) ExecuteContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec) (_ *Result, err error) {
	defer contain(&err)
	if err := injectExact.Inject(); err != nil {
		return nil, err
	}
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine exact")
	defer esp.End()
	psp, _ := trace.StartSpan(ctx, "plan")
	p, err := plan.Build(stmt, e.Catalog)
	psp.End()
	if err != nil {
		return nil, err
	}
	plan.ClearSamplers(p)
	workers := resolveWorkers(ctx, p, e.Workers)
	esp.SetAttrInt("workers", int64(workers))

	if g := shardGroupFor(e.Shards, stmt); g != nil && exec.Gatherable(p) {
		run, err := runSharded(ctx, g, stmt, p, nil, workers)
		if err != nil {
			return nil, err
		}
		asp, _ := trace.StartSpan(ctx, "estimate")
		guarantee := GuaranteeExact
		if run.degraded {
			// A degraded exact run is missing rows with no variance model
			// to account for them: no defensible error statement exists.
			guarantee = GuaranteeNone
		}
		out := annotate(stmt, run.raw, spec, TechniqueExact, guarantee)
		asp.End()
		out.Diagnostics.Latency = time.Since(start)
		out.Diagnostics.SampleFraction = 1
		out.Diagnostics.Workers = workers
		out.Diagnostics.Degraded = run.degraded
		out.Diagnostics.Shards = run.summary
		out.Diagnostics.Messages = append(out.Diagnostics.Messages, run.messages...)
		stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)
		return out, nil
	}

	res, err := exec.RunParallelContext(ctx, p, workers)
	if err != nil {
		return nil, err
	}
	asp, _ := trace.StartSpan(ctx, "estimate")
	out := annotate(stmt, res, spec, TechniqueExact, GuaranteeExact)
	asp.End()
	out.Diagnostics.Latency = time.Since(start)
	out.Diagnostics.SampleFraction = 1
	out.Diagnostics.Workers = workers
	stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)
	return out, nil
}

// ExecuteAsWritten runs a statement honoring its TABLESAMPLE clauses
// verbatim: the manual path for users who place samplers themselves. The
// result carries a-posteriori intervals when any sampler was present.
func ExecuteAsWritten(cat *storage.Catalog, stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error) {
	return ExecuteAsWrittenContext(context.Background(), cat, stmt, spec)
}

// ExecuteAsWrittenContext is ExecuteAsWritten under a context.
func ExecuteAsWrittenContext(ctx context.Context, cat *storage.Catalog, stmt *sqlparse.SelectStmt, spec ErrorSpec) (_ *Result, err error) {
	defer contain(&err)
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine as-written")
	defer esp.End()
	psp, _ := trace.StartSpan(ctx, "plan")
	p, err := plan.Build(stmt, cat)
	psp.End()
	if err != nil {
		return nil, err
	}
	sampled := false
	for _, s := range plan.Scans(p) {
		if s.Sample != nil {
			sampled = true
		}
	}
	workers := resolveWorkers(ctx, p, 0)
	res, err := exec.RunParallelContext(ctx, p, workers)
	if err != nil {
		return nil, err
	}
	tech, g := TechniqueExact, GuaranteeExact
	if sampled {
		tech, g = TechniqueOnline, GuaranteeAPosteriori
	}
	out := annotate(stmt, res, spec, tech, g)
	out.Diagnostics.Latency = time.Since(start)
	out.Diagnostics.Workers = workers
	if sampled {
		out.Diagnostics.SampleFraction = sampleFraction(res.Counters, sampledRows(p))
	} else {
		out.Diagnostics.SampleFraction = 1
	}
	stampLineage(&out.Diagnostics, cat, stmt.From.Name)
	return out, nil
}
