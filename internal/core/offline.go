package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Offline-engine injection points: engine entry and the sample rebuild
// path (the transient-failure seam the retry/backoff guards).
var (
	injectOffline        = fault.NewPoint("core.offline", "offline-samples engine entry")
	injectOfflineRebuild = fault.NewPoint("core.offline.rebuild", "offline sample store rebuild")
)

// StalePolicy selects the offline engine's behavior when the base table
// has changed since the samples were built.
type StalePolicy uint8

// Stale policies.
const (
	// StaleFallbackExact runs the query exactly (safe, slow).
	StaleFallbackExact StalePolicy = iota
	// StaleServe answers from the stale sample with GuaranteeNone —
	// what a system that skips maintenance silently does.
	StaleServe
	// StaleRebuild rebuilds the affected samples first (the maintenance
	// cost the paper highlights), then answers.
	StaleRebuild
)

// OfflineConfig tunes offline sample construction and selection.
type OfflineConfig struct {
	// Caps are the per-stratum row caps of the stratified samples built
	// per query column set (one sample per cap — the error–latency
	// ladder).
	Caps []int
	// UniformRates are the rates of the workload-agnostic uniform
	// samples built per table.
	UniformRates []float64
	// SafetyFactor inflates profiled errors before certifying a sample
	// against a spec (>= 1).
	SafetyFactor float64
	// StalePolicy picks the staleness behavior.
	StalePolicy StalePolicy
	// Seed drives sample construction.
	Seed int64
	// Workers is the morsel-parallel worker count for sample scans; 0
	// defers to a context override or runtime.GOMAXPROCS.
	Workers int
	// RebuildRetries is the total attempt count for inline sample
	// rebuilds under StaleRebuild; transient failures are retried with
	// jittered exponential backoff (default 3).
	RebuildRetries int
	// RebuildBackoff is the base backoff between rebuild attempts
	// (default 2ms, doubling per attempt).
	RebuildBackoff time.Duration
}

// DefaultOfflineConfig returns caps {64, 256, 1024}, uniform rates
// {1%, 5%}, safety factor 1.5, exact fallback on staleness.
func DefaultOfflineConfig() OfflineConfig {
	return OfflineConfig{
		Caps:         []int{64, 256, 1024},
		UniformRates: []float64{0.01, 0.05},
		SafetyFactor: 1.5,
		Seed:         7,
	}
}

// StoredSample is one materialized sample plus its metadata and
// error–latency profile entries.
type StoredSample struct {
	// Name is the sample's unique identifier.
	Name string
	// Source is the base table name.
	Source string
	// QCS is the stratification column set (nil for uniform samples).
	QCS []string
	// Cap is the per-stratum cap (stratified) or 0.
	Cap int
	// Rate is the sampling rate (uniform) or 0.
	Rate float64
	// Data is the materialized sample (with weight column).
	Data *storage.Table
	// Rows is the sample size.
	Rows int
	// BuildVersion is the base table version at build time.
	BuildVersion uint64
	// BuildRows is the base table row count at build time — the row
	// watermark staleness attribution is measured against. Unlike
	// BuildCostRows it is refreshed on Rebuild.
	BuildRows int
	// BuildCostRows is the number of base rows scanned to build it.
	BuildCostRows int
	// Profile maps a profile key (see profileKey) to the maximum
	// relative error observed when answering profiling queries of that
	// shape from this sample.
	Profile map[string]float64
}

// Fresh reports whether the sample still matches the base table.
func (s *StoredSample) Fresh(cat *storage.Catalog) bool {
	t, err := cat.Table(s.Source)
	if err != nil {
		return false
	}
	return t.Version() == s.BuildVersion
}

// MaintenanceStats tallies the cumulative cost of keeping offline samples
// fresh — the P2 axis.
type MaintenanceStats struct {
	Rebuilds      int
	RowsScanned   int64
	WallTime      time.Duration
	SamplesBuilt  int
	BytesEstimate int64
}

// OfflineEngine answers queries from precomputed stratified/uniform
// samples in the style the paper attributes to BlinkDB: samples are built
// per query column set ahead of time, an error–latency profile maps specs
// to the cheapest adequate sample, and a-priori guarantees hold exactly as
// long as the workload stays inside the predicted QCS set and the data
// does not move.
type OfflineEngine struct {
	Catalog *storage.Catalog
	Config  OfflineConfig

	// mu guards the sample registry, profiles, Maintenance stats, and
	// nextID: queries read the registry concurrently; BuildSamples,
	// Rebuild, and ProfileQuery write it.
	mu          sync.RWMutex
	samples     map[string][]*StoredSample // by source table
	Maintenance MaintenanceStats
	nextID      int
}

// NewOfflineEngine builds an offline engine (no samples yet; call
// BuildSamples).
func NewOfflineEngine(cat *storage.Catalog, cfg OfflineConfig) *OfflineEngine {
	if cfg.SafetyFactor < 1 {
		cfg.SafetyFactor = 1
	}
	return &OfflineEngine{Catalog: cat, Config: cfg,
		samples: make(map[string][]*StoredSample)}
}

// Name implements Engine.
func (e *OfflineEngine) Name() Technique { return TechniqueOffline }

// Samples returns the stored samples for a table (a copied slice; the
// stored samples themselves are shared).
func (e *OfflineEngine) Samples(table string) []*StoredSample {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]*StoredSample(nil), e.samples[table]...)
}

// MaintenanceStats returns a copy of the cumulative maintenance stats
// under the engine lock.
func (e *OfflineEngine) MaintenanceStats() MaintenanceStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.Maintenance
}

// BuildSamples materializes the configured sample ladder for a table:
// one stratified sample per (QCS, cap) pair plus uniform samples at the
// configured rates. This is the precomputation step — its cost is recorded
// in Maintenance.
func (e *OfflineEngine) BuildSamples(table string, qcsList [][]string) error {
	t, err := e.Catalog.Table(table)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	start := time.Now()
	for _, qcs := range qcsList {
		if len(qcs) == 0 {
			continue
		}
		for _, cap := range e.Config.Caps {
			name := e.sampleName(table)
			res, err := sample.BuildStratified(t, sample.StratifiedConfig{
				KeyColumns: qcs, CapPerStratum: cap, Seed: e.Config.Seed + int64(e.nextID),
			}, name)
			if err != nil {
				return err
			}
			e.store(&StoredSample{
				Name: name, Source: table, QCS: append([]string(nil), qcs...),
				Cap: cap, Data: res.Table, Rows: res.SampleRows,
				BuildVersion: res.BuildVersion, BuildRows: res.SourceRows,
				BuildCostRows: res.SourceRows,
				Profile:       make(map[string]float64),
			})
		}
	}
	for _, rate := range e.Config.UniformRates {
		name := e.sampleName(table)
		res, err := sample.BuildUniformTable(t, rate, e.Config.Seed+int64(e.nextID), name)
		if err != nil {
			return err
		}
		e.store(&StoredSample{
			Name: name, Source: table, Rate: rate, Data: res.Table,
			Rows: res.SampleRows, BuildVersion: res.BuildVersion,
			BuildRows: res.SourceRows, BuildCostRows: res.SourceRows,
			Profile: make(map[string]float64),
		})
	}
	e.Maintenance.WallTime += time.Since(start)
	return nil
}

func (e *OfflineEngine) sampleName(table string) string {
	e.nextID++
	return fmt.Sprintf("%s__sample%d", table, e.nextID)
}

func (e *OfflineEngine) store(s *StoredSample) {
	e.samples[s.Source] = append(e.samples[s.Source], s)
	e.Maintenance.SamplesBuilt++
	e.Maintenance.RowsScanned += int64(s.BuildCostRows)
}

// Rebuild refreshes every sample of a table against its current contents,
// accumulating maintenance cost.
func (e *OfflineEngine) Rebuild(table string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuildLocked(table)
}

// rebuildLocked is Rebuild with e.mu already held for writing.
func (e *OfflineEngine) rebuildLocked(table string) error {
	if err := injectOfflineRebuild.Inject(); err != nil {
		return err
	}
	t, err := e.Catalog.Table(table)
	if err != nil {
		return err
	}
	start := time.Now()
	for _, s := range e.samples[table] {
		if len(s.QCS) > 0 {
			res, err := sample.BuildStratified(t, sample.StratifiedConfig{
				KeyColumns: s.QCS, CapPerStratum: s.Cap, Seed: e.Config.Seed + int64(e.nextID),
			}, s.Name)
			if err != nil {
				return err
			}
			s.Data = res.Table
			s.Rows = res.SampleRows
			s.BuildVersion = res.BuildVersion
			s.BuildRows = res.SourceRows
		} else {
			res, err := sample.BuildUniformTable(t, s.Rate, e.Config.Seed+int64(e.nextID), s.Name)
			if err != nil {
				return err
			}
			s.Data = res.Table
			s.Rows = res.SampleRows
			s.BuildVersion = res.BuildVersion
			s.BuildRows = res.SourceRows
		}
		e.nextID++
		e.Maintenance.RowsScanned += int64(t.NumRows())
		// Profiles refer to the old data distribution; conservatively
		// keep them (they were built from the template shapes, which
		// survive a rebuild).
	}
	e.Maintenance.Rebuilds++
	e.Maintenance.WallTime += time.Since(start)
	return nil
}

// profileKey canonicalizes a query's shape for profile lookup: the fact
// table plus its sorted QCS.
func profileKey(table string, qcs []string) string {
	cp := append([]string(nil), qcs...)
	sort.Strings(cp)
	return table + "|" + strings.Join(cp, ",")
}

// ProfileQuery runs one profiling query against every applicable sample,
// comparing with the exact answer, and records the realized maximum
// relative error. Call this offline with representative workload queries
// to build the error–latency profile.
func (e *OfflineEngine) ProfileQuery(sql string) error {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	table := stmt.From.Name
	cands := e.Samples(table)
	if len(cands) == 0 {
		return nil
	}
	exactRes, err := NewExactEngine(e.Catalog).Execute(stmt, DefaultErrorSpec)
	if err != nil {
		return err
	}
	qcs := e.queryQCS(stmt)
	key := profileKey(table, qcs)
	for _, s := range cands {
		if !e.applicable(s, stmt, qcs) {
			continue
		}
		raw, err := e.executeOn(context.Background(), s, stmt)
		if err != nil {
			continue
		}
		approx := annotate(stmt, raw, DefaultErrorSpec, TechniqueOffline, GuaranteeNone)
		relErr, comparable := maxRelError(exactRes, approx)
		if !comparable {
			relErr = 1
		}
		e.mu.Lock()
		if prev, ok := s.Profile[key]; !ok || relErr > prev {
			s.Profile[key] = relErr
		}
		e.mu.Unlock()
	}
	return nil
}

// ProfileTemplates profiles n instances of each (template, instantiator)
// pair. rng drives template parameter draws.
func (e *OfflineEngine) ProfileTemplates(instantiate []func(*rand.Rand) string, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, gen := range instantiate {
		for i := 0; i < n; i++ {
			if err := e.ProfileQuery(gen(rng)); err != nil {
				return err
			}
		}
	}
	return nil
}

// queryQCS extracts the query column set: GROUP BY columns plus
// WHERE-referenced columns that belong to the fact table.
func (e *OfflineEngine) queryQCS(stmt *sqlparse.SelectStmt) []string {
	t, err := e.Catalog.Table(stmt.From.Name)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(cols []string) {
		for _, c := range cols {
			if !seen[c] && t.Schema().ColumnIndex(c) >= 0 {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	for _, g := range stmt.GroupBy {
		add(expr.Columns(g))
	}
	if stmt.Where != nil {
		add(expr.Columns(stmt.Where))
	}
	sort.Strings(out)
	return out
}

// applicable reports whether a sample can answer a query's shape:
// stratified samples require their QCS to cover the query's GROUP BY
// columns (groups guaranteed present); uniform samples apply to
// non-grouped queries and, without coverage guarantees, to grouped ones.
func (e *OfflineEngine) applicable(s *StoredSample, stmt *sqlparse.SelectStmt, qcs []string) bool {
	if len(s.QCS) == 0 {
		return true
	}
	cover := make(map[string]bool, len(s.QCS))
	for _, c := range s.QCS {
		cover[c] = true
	}
	for _, g := range stmt.GroupBy {
		for _, c := range expr.Columns(g) {
			t, err := e.Catalog.Table(stmt.From.Name)
			if err != nil {
				return false
			}
			if t.Schema().ColumnIndex(c) >= 0 && !cover[c] {
				return false
			}
		}
	}
	return true
}

// executeOn runs the statement with the sample substituted for the fact
// table via a shadow catalog.
func (e *OfflineEngine) executeOn(ctx context.Context, s *StoredSample, stmt *sqlparse.SelectStmt) (*exec.Result, error) {
	// Rebuild swaps the sample's Data table wholesale; read the pointer
	// under the lock and scan whichever build we got (each build is
	// immutable once materialized).
	e.mu.RLock()
	data := s.Data
	e.mu.RUnlock()
	shadow := storage.NewCatalog()
	for _, name := range e.Catalog.Names() {
		if name == s.Source {
			continue
		}
		t, err := e.Catalog.Table(name)
		if err != nil {
			return nil, err
		}
		if err := shadow.AddAs(name, t); err != nil {
			return nil, err
		}
	}
	if err := shadow.AddAs(s.Source, data); err != nil {
		return nil, err
	}
	p, err := plan.Build(stmt, shadow)
	if err != nil {
		return nil, err
	}
	return exec.RunParallelContext(ctx, p, resolveWorkers(ctx, p, e.Config.Workers))
}

// Execute implements Engine: pick the cheapest fresh sample certified for
// the spec, else fall back per configuration.
func (e *OfflineEngine) Execute(stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error) {
	return e.ExecuteContext(context.Background(), stmt, spec)
}

// offlineCand is one certified candidate with the facts captured under
// the registry lock, so later reporting needs no further locking.
type offlineCand struct {
	s     *StoredSample
	stale bool
	rows  int
	name  string
	prof  float64
}

// selectSample picks the cheapest applicable, profiled candidate under
// the registry lock. wantRebuild reports that a stale candidate was seen
// under the StaleRebuild policy (the caller rebuilds and reselects).
func (e *OfflineEngine) selectSample(stmt *sqlparse.SelectStmt, spec ErrorSpec,
	table string, qcs []string, key string) (best *offlineCand, wantRebuild bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, s := range e.samples[table] {
		if !e.applicable(s, stmt, qcs) {
			continue
		}
		prof, profiled := s.Profile[key]
		if !profiled || prof*e.Config.SafetyFactor > spec.RelError {
			continue
		}
		stale := !s.Fresh(e.Catalog)
		if stale {
			switch e.Config.StalePolicy {
			case StaleFallbackExact:
				continue
			case StaleRebuild:
				wantRebuild = true
				continue
			case StaleServe:
				// Serve anyway, downgraded guarantee below.
			}
		}
		if best == nil || s.Rows < best.rows {
			best = &offlineCand{s: s, stale: stale, rows: s.Rows, name: s.Name, prof: prof}
		}
	}
	return best, wantRebuild
}

// ExecuteContext is Execute under a context: the sample scan (and any
// exact fallback) observes cancellation and deadlines.
func (e *OfflineEngine) ExecuteContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec) (_ *Result, err error) {
	defer contain(&err)
	if err := injectOffline.Inject(); err != nil {
		return nil, err
	}
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine offline")
	defer esp.End()
	if !spec.Valid() {
		spec = DefaultErrorSpec
	}
	fallback := func(reason string, stale bool) (*Result, error) {
		res, err := (&ExactEngine{Catalog: e.Catalog, Workers: e.Config.Workers}).ExecuteContext(ctx, stmt, spec)
		if err != nil {
			return nil, err
		}
		res.Diagnostics.FellBackToExact = true
		res.Diagnostics.Stale = stale
		res.Diagnostics.Messages = append(res.Diagnostics.Messages, "offline: "+reason)
		res.Diagnostics.Latency = time.Since(start)
		return res, nil
	}

	if ok, reason := supportedForSampling(stmt); !ok {
		return fallback("fell back to exact: "+reason, false)
	}
	table := stmt.From.Name
	if len(e.Samples(table)) == 0 {
		return fallback("no samples for table "+table, false)
	}
	qcs := e.queryQCS(stmt)
	key := profileKey(table, qcs)

	// Certified candidates: applicable, fresh (or policy-permitted), and
	// profiled under the spec with the safety factor.
	selsp, _ := trace.StartSpan(ctx, "select-sample")
	best, wantRebuild := e.selectSample(stmt, spec, table, qcs, key)
	if wantRebuild {
		// The maintenance cost the paper highlights, paid inline: refresh
		// the whole table's ladder, then select again (nothing stale now).
		selsp.SetAttr("rebuild", "true")
		// Rebuilds hit storage and can fail transiently; retry with
		// jittered exponential backoff before giving up on the query.
		rerr := fault.Retry(ctx, fault.RetryConfig{
			Tries: e.Config.RebuildRetries,
			Base:  e.Config.RebuildBackoff,
			Seed:  e.Config.Seed,
		}, func() error { return e.Rebuild(table) })
		if rerr != nil {
			selsp.End()
			return nil, rerr
		}
		best, _ = e.selectSample(stmt, spec, table, qcs, key)
	}
	if best != nil {
		selsp.SetAttr("sample", best.name)
		selsp.SetAttrInt("sample_rows", int64(best.rows))
		selsp.SetAttrFloat("profiled_err", best.prof)
	}
	selsp.End()
	if best == nil {
		return fallback("no certified sample for spec (unpredicted QCS, too-tight spec, or stale samples)", false)
	}

	raw, err := e.executeOn(ctx, best.s, stmt)
	if err != nil {
		return nil, err
	}
	asp, _ := trace.StartSpan(ctx, "estimate")
	guarantee := GuaranteeAPriori
	if best.stale {
		guarantee = GuaranteeNone
	}
	out := annotate(stmt, raw, spec, TechniqueOffline, guarantee)
	asp.End()
	out.Diagnostics.Stale = best.stale
	out.Diagnostics.Latency = time.Since(start)
	out.Diagnostics.Workers = exec.ResolveWorkers(ctx, e.Config.Workers)
	if t, err := e.Catalog.Table(table); err == nil && t.NumRows() > 0 {
		out.Diagnostics.SampleFraction = float64(best.rows) / float64(t.NumRows())
	}
	// Lineage: current snapshot plus the stored sample's build watermark,
	// so audits can tell "sample predates these rows" from "estimator bad".
	stampLineage(&out.Diagnostics, e.Catalog, table)
	out.Diagnostics.Lineage.SampleName = best.name
	out.Diagnostics.Lineage.BuildVersion = best.s.BuildVersion
	out.Diagnostics.Lineage.BuildRows = best.s.BuildRows
	out.Diagnostics.Messages = append(out.Diagnostics.Messages,
		fmt.Sprintf("offline: answered from sample %s (%d rows, profiled err %.4f)",
			best.name, best.rows, best.prof))
	return out, nil
}

// maxRelError compares two results row-by-row on aggregate items,
// returning the maximum relative error. comparable is false when shapes
// differ (e.g. missing groups — itself an error mode).
func maxRelError(exact, approx *Result) (float64, bool) {
	if exact.NumRows() == 0 {
		return 0, approx.NumRows() == 0
	}
	if exact.NumRows() != approx.NumRows() {
		return 1, false
	}
	var m float64
	for i := range exact.Rows {
		for j := range exact.Rows[i] {
			it := exact.Items[i][j]
			if !it.IsAggregate {
				continue
			}
			ev := exact.Float(i, j)
			av := approx.Float(i, j)
			var rel float64
			switch {
			case ev == 0 && av == 0:
				rel = 0
			case ev == 0:
				rel = 1
			default:
				rel = abs(av-ev) / abs(ev)
			}
			if rel > m {
				m = rel
			}
		}
	}
	return m, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
