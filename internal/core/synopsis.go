package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/sketch"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// injectSynopsis fires at synopsis-engine entry.
var injectSynopsis = fault.NewPoint("core.synopsis", "synopsis engine entry")

// SynopsisEngine answers a narrow class of queries from precomputed
// synopses in O(synopsis) time, independent of table size:
//
//   - COUNT(*) with a single range predicate on a summarized numeric
//     column — equi-depth histogram;
//   - COUNT(DISTINCT col) on a summarized column — HyperLogLog;
//   - COUNT(*) with a single equality predicate on a summarized column —
//     Count-Min sketch.
//
// Anything else is unsupported: the generality limit of synopsis-based
// AQP that pushes systems toward sampling.
type SynopsisEngine struct {
	Catalog *storage.Catalog

	// mu guards the synopsis registries: queries read them concurrently,
	// BuildColumn writes.
	mu         sync.RWMutex
	histograms map[string]*sketch.EquiDepthHistogram // table.col
	hlls       map[string]*sketch.HyperLogLog
	cms        map[string]*sketch.CountMin
	built      map[string]synLineage // table.col -> base watermark at build
	buildRows  int64
}

// synLineage is the base-table watermark when a column's synopses were
// built; audits use it to attribute coverage misses to drift.
type synLineage struct {
	version uint64
	rows    int
}

// NewSynopsisEngine builds an empty synopsis engine.
func NewSynopsisEngine(cat *storage.Catalog) *SynopsisEngine {
	return &SynopsisEngine{
		Catalog:    cat,
		histograms: make(map[string]*sketch.EquiDepthHistogram),
		hlls:       make(map[string]*sketch.HyperLogLog),
		cms:        make(map[string]*sketch.CountMin),
		built:      make(map[string]synLineage),
	}
}

// Name implements Engine.
func (e *SynopsisEngine) Name() Technique { return TechniqueSynopsis }

// BuildRows returns the cumulative base rows scanned to build synopses.
func (e *SynopsisEngine) BuildRows() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.buildRows
}

func synKey(table, col string) string { return table + "." + col }

// BuildColumn builds all three synopses for one column (histogram only
// for numeric columns).
func (e *SynopsisEngine) BuildColumn(table, col string, buckets int) error {
	t, err := e.Catalog.Table(table)
	if err != nil {
		return err
	}
	idx := t.Schema().ColumnIndex(col)
	if idx < 0 {
		return fmt.Errorf("core: synopsis column %s.%s not found", table, col)
	}
	version := t.Version()
	c := t.Snapshot().Column(idx)
	key := synKey(table, col)
	hll, err := sketch.NewHyperLogLog(14)
	if err != nil {
		return err
	}
	cm, err := sketch.NewCountMin(0.0005, 0.01)
	if err != nil {
		return err
	}
	var numeric []float64
	for i := 0; i < c.Len(); i++ {
		if c.IsNull(i) {
			continue
		}
		v := c.Value(i)
		gk := v.GroupKey()
		hll.Add(gk)
		cm.Add(gk, 1)
		if c.Type().Numeric() {
			numeric = append(numeric, v.AsFloat())
		}
	}
	var hist *sketch.EquiDepthHistogram
	if len(numeric) > 0 {
		if buckets <= 0 {
			buckets = 128
		}
		hist, err = sketch.BuildEquiDepth(numeric, buckets)
		if err != nil {
			return err
		}
	}
	e.mu.Lock()
	e.buildRows += int64(c.Len())
	e.hlls[key] = hll
	e.cms[key] = cm
	if hist != nil {
		e.histograms[key] = hist
	}
	e.built[key] = synLineage{version: version, rows: c.Len()}
	e.mu.Unlock()
	return nil
}

// Execute implements Engine. Unsupported queries return an error — the
// Advisor is responsible for routing them elsewhere.
func (e *SynopsisEngine) Execute(stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error) {
	return e.ExecuteContext(context.Background(), stmt, spec)
}

// ExecuteContext is Execute under a context. Synopsis answers are
// O(synopsis) — no scan to cancel — so the context is only checked once
// up front.
func (e *SynopsisEngine) ExecuteContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec) (_ *Result, err error) {
	defer contain(&err)
	if err := injectSynopsis.Inject(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	esp, _ := trace.StartSpan(ctx, "engine synopsis")
	defer esp.End()
	if !spec.Valid() {
		spec = DefaultErrorSpec
	}
	est, name, iv, key, err := e.answer(stmt)
	if err != nil {
		return nil, err
	}
	val := storage.Float64(est)
	out := &Result{
		Columns:   []string{name},
		Rows:      [][]storage.Value{{val}},
		Technique: TechniqueSynopsis,
		Guarantee: GuaranteeAPosteriori,
		Spec:      spec,
	}
	rel := iv.RelHalfWidth(est)
	out.Items = [][]ItemResult{{{
		Name: name, Value: val, IsAggregate: true, HasCI: true, CI: iv, RelHalfWidth: rel,
	}}}
	out.Diagnostics.SpecSatisfied = rel <= spec.RelError
	out.Diagnostics.Latency = time.Since(start)
	out.Diagnostics.SampleFraction = 0
	stampLineage(&out.Diagnostics, e.Catalog, stmt.From.Name)
	out.Diagnostics.Lineage.SampleName = key
	e.mu.RLock()
	if bl, ok := e.built[key]; ok {
		out.Diagnostics.Lineage.BuildVersion = bl.version
		out.Diagnostics.Lineage.BuildRows = bl.rows
	}
	e.mu.RUnlock()
	return out, nil
}

// answer pattern-matches the supported query shapes.
func (e *SynopsisEngine) answer(stmt *sqlparse.SelectStmt) (float64, string, stats.Interval, string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	none := stats.Interval{}
	if len(stmt.Joins) > 0 || len(stmt.GroupBy) > 0 || stmt.Having != nil ||
		len(stmt.Items) != 1 {
		return 0, "", none, "", fmt.Errorf("core: synopsis supports single-aggregate single-table queries")
	}
	agg, ok := stmt.Items[0].Expr.(*sqlparse.AggExpr)
	if !ok || agg.Func != sqlparse.AggCount {
		return 0, "", none, "", fmt.Errorf("core: synopsis supports COUNT queries only")
	}
	table := stmt.From.Name
	name := stmt.Items[0].Name(0)

	// COUNT(DISTINCT col), no WHERE.
	if agg.Distinct && agg.Arg != nil && stmt.Where == nil {
		col, ok := agg.Arg.(*expr.ColRef)
		if !ok {
			return 0, "", none, "", fmt.Errorf("core: COUNT(DISTINCT) needs a bare column")
		}
		hll := e.hlls[synKey(table, col.Name)]
		if hll == nil {
			return 0, "", none, "", fmt.Errorf("core: no HLL for %s.%s", table, col.Name)
		}
		est := hll.Estimate()
		se := hll.StdError() * est
		iv := stats.Interval{Lo: est - 2*se, Hi: est + 2*se, Confidence: 0.95}
		return est, name, iv, synKey(table, col.Name), nil
	}

	if !agg.Star || stmt.Where == nil {
		return 0, "", none, "", fmt.Errorf("core: synopsis COUNT needs WHERE or DISTINCT")
	}

	// COUNT(*) WHERE col = literal -> Count-Min.
	if b, ok := stmt.Where.(*expr.Binary); ok && b.Op == expr.OpEq {
		col, okc := b.L.(*expr.ColRef)
		lit, okl := b.R.(*expr.Lit)
		if !okc || !okl {
			col, okc = b.R.(*expr.ColRef)
			lit, okl = b.L.(*expr.Lit)
		}
		if okc && okl {
			cm := e.cms[synKey(table, col.Name)]
			if cm == nil {
				return 0, "", none, "", fmt.Errorf("core: no CMS for %s.%s", table, col.Name)
			}
			est := float64(cm.Estimate(lit.Val.GroupKey()))
			bound := cm.ErrorBound()
			iv := stats.Interval{Lo: math.Max(est-bound, 0), Hi: est, Confidence: 0.99}
			// CMS overestimates: the true count lies in [est-εN, est].
			return est, name, iv, synKey(table, col.Name), nil
		}
	}

	// COUNT(*) WHERE range predicate(s) on one numeric column.
	col, lo, hi, ok := rangePredicate(stmt.Where)
	if ok {
		h := e.histograms[synKey(table, col)]
		if h == nil {
			return 0, "", none, "", fmt.Errorf("core: no histogram for %s.%s", table, col)
		}
		est := h.EstimateRangeCount(lo, hi)
		// Histogram error is bounded by the straddling buckets' mass.
		slack := 2 * h.Total() / float64(h.Buckets())
		iv := stats.Interval{Lo: math.Max(est-slack, 0), Hi: est + slack, Confidence: 0.95}
		return est, name, iv, synKey(table, col), nil
	}
	return 0, "", none, "", fmt.Errorf("core: unsupported predicate for synopsis answering")
}

// rangePredicate recognizes conjunctions of >=/>/<=/< comparisons and
// BETWEEN on a single column, returning the [lo, hi] range.
func rangePredicate(e expr.Expr) (col string, lo, hi float64, ok bool) {
	lo = math.Inf(-1)
	hi = math.Inf(1)
	var conj func(expr.Expr) bool
	conj = func(x expr.Expr) bool {
		b, isB := x.(*expr.Binary)
		if !isB {
			return false
		}
		if b.Op == expr.OpAnd {
			return conj(b.L) && conj(b.R)
		}
		c, okc := b.L.(*expr.ColRef)
		l, okl := b.R.(*expr.Lit)
		flip := false
		if !okc || !okl {
			c, okc = b.R.(*expr.ColRef)
			l, okl = b.L.(*expr.Lit)
			flip = true
		}
		if !okc || !okl || !l.Val.Typ.Numeric() {
			return false
		}
		if col == "" {
			col = c.Name
		} else if col != c.Name {
			return false
		}
		v := l.Val.AsFloat()
		op := b.Op
		if flip {
			switch op {
			case expr.OpLt:
				op = expr.OpGt
			case expr.OpLe:
				op = expr.OpGe
			case expr.OpGt:
				op = expr.OpLt
			case expr.OpGe:
				op = expr.OpLe
			}
		}
		switch op {
		case expr.OpGe, expr.OpGt:
			lo = math.Max(lo, v)
		case expr.OpLe, expr.OpLt:
			hi = math.Min(hi, v)
		case expr.OpEq:
			lo = math.Max(lo, v)
			hi = math.Min(hi, v)
		default:
			return false
		}
		return true
	}
	if !conj(e) || col == "" {
		return "", 0, 0, false
	}
	return col, lo, hi, true
}
