package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/trace"
)

// Advisor routes queries to the technique that can honor the request, and
// generates the "no silver bullet" property matrix: for each technique,
// which of the desirable properties it delivers and which it gives up.
type Advisor struct {
	Exact    *ExactEngine
	Online   *OnlineEngine
	Offline  *OfflineEngine
	OLA      *OLAEngine
	Synopsis *SynopsisEngine
}

// NewAdvisor wires an advisor over a shared catalog with default configs.
func NewAdvisor(exact *ExactEngine, online *OnlineEngine, offline *OfflineEngine,
	ola *OLAEngine, syn *SynopsisEngine) *Advisor {
	return &Advisor{Exact: exact, Online: online, Offline: offline, OLA: ola, Synopsis: syn}
}

// Decision explains a routing choice.
type Decision struct {
	Technique Technique
	Guarantee Guarantee
	Reason    string
}

// Choose picks a technique for the statement under the spec without
// executing it.
func (a *Advisor) Choose(stmt *sqlparse.SelectStmt, spec ErrorSpec) Decision {
	// Non-linear aggregates: synopses may still help COUNT DISTINCT.
	if ok, reason := supportedForSampling(stmt); !ok {
		if a.Synopsis != nil {
			if _, _, _, _, err := a.Synopsis.answer(stmt); err == nil {
				return Decision{Technique: TechniqueSynopsis, Guarantee: GuaranteeAPosteriori,
					Reason: "non-linear aggregate answerable from a synopsis"}
			}
		}
		return Decision{Technique: TechniqueExact, Guarantee: GuaranteeExact,
			Reason: "not analyzable under sampling: " + reason}
	}
	// Synopses answer their narrow class fastest.
	if a.Synopsis != nil {
		if _, _, _, _, err := a.Synopsis.answer(stmt); err == nil {
			return Decision{Technique: TechniqueSynopsis, Guarantee: GuaranteeAPosteriori,
				Reason: "query shape matches a precomputed synopsis"}
		}
	}
	// Offline samples give a-priori guarantees when the workload was
	// predicted, the sample is fresh, and the profile certifies the spec.
	if a.Offline != nil {
		if s := a.certifiedSample(stmt, spec); s != nil {
			return Decision{Technique: TechniqueOffline, Guarantee: GuaranteeAPriori,
				Reason: fmt.Sprintf("certified fresh offline sample %s", s.Name)}
		}
	}
	// Otherwise: query-time sampling, honest a-posteriori intervals.
	if a.Online != nil {
		return Decision{Technique: TechniqueOnline, Guarantee: GuaranteeAPosteriori,
			Reason: "no precomputed sample covers this query; sampling at query time"}
	}
	return Decision{Technique: TechniqueExact, Guarantee: GuaranteeExact,
		Reason: "no approximate engine available"}
}

// certifiedSample returns a fresh stored sample certified for the query
// under the spec, or nil. It reads the offline registry under its lock.
func (a *Advisor) certifiedSample(stmt *sqlparse.SelectStmt, spec ErrorSpec) *StoredSample {
	if a.Offline == nil {
		return nil
	}
	table := stmt.From.Name
	qcs := a.Offline.queryQCS(stmt)
	key := profileKey(table, qcs)
	a.Offline.mu.RLock()
	defer a.Offline.mu.RUnlock()
	for _, s := range a.Offline.samples[table] {
		if !a.Offline.applicable(s, stmt, qcs) || !s.Fresh(a.Offline.Catalog) {
			continue
		}
		if prof, ok := s.Profile[key]; ok && prof*a.Offline.Config.SafetyFactor <= spec.RelError {
			return s
		}
	}
	return nil
}

// Execute parses, routes, and runs a query.
func (a *Advisor) Execute(sql string, spec ErrorSpec) (*Result, Decision, error) {
	return a.ExecuteContext(context.Background(), sql, spec)
}

// ExecuteContext parses, routes, and runs a query under a context: the
// chosen engine observes cancellation and deadlines.
func (a *Advisor) ExecuteContext(ctx context.Context, sql string, spec ErrorSpec) (*Result, Decision, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, Decision{}, err
	}
	return a.ExecuteStmtContext(ctx, stmt, spec)
}

// ExecuteStmtContext routes and runs an already-parsed statement. The
// facade uses it to parse once, peel EXPLAIN handling off, and still get
// advisor routing.
func (a *Advisor) ExecuteStmtContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, Decision, error) {
	if stmt.Error != nil {
		spec = ErrorSpec{RelError: stmt.Error.RelError, Confidence: stmt.Error.Confidence}
	}
	sp, _ := trace.StartSpan(ctx, "advisor")
	d := a.Choose(stmt, spec)
	sp.SetAttr("technique", string(d.Technique))
	sp.End()
	var res *Result
	var err error
	switch d.Technique {
	case TechniqueSynopsis:
		res, err = a.Synopsis.ExecuteContext(ctx, stmt, spec)
	case TechniqueOffline:
		res, err = a.Offline.ExecuteContext(ctx, stmt, spec)
	case TechniqueOnline:
		res, err = a.Online.ExecuteContext(ctx, stmt, spec)
	default:
		res, err = a.Exact.ExecuteContext(ctx, stmt, spec)
	}
	if err != nil {
		return nil, d, err
	}
	return res, d, nil
}

// TechniqueProperties is one row of the no-silver-bullet matrix, measured
// (not asserted) over a probe workload.
type TechniqueProperties struct {
	Technique Technique
	// SupportedFraction: probe queries answered approximately (vs falling
	// back to exact or erroring).
	SupportedFraction float64
	// APrioriFraction: probe queries answered with an a-priori guarantee.
	APrioriFraction float64
	// MeanWorkSaved: 1 - work/exactWork averaged over supported queries,
	// where work = rows scanned + rows fed to downstream operators. Row
	// samplers still scan everything but starve the pipeline (≤50%
	// saved); block samplers and offline samples also skip the scan.
	MeanWorkSaved float64
	// PrecomputeRows: base rows scanned before the first query could run.
	PrecomputeRows int64
	// MaintenanceRows: base rows re-scanned to keep the technique valid
	// across updates (0 when nothing is precomputed).
	MaintenanceRows int64
}

// Matrix measures the property matrix over probe queries. Engines that
// are nil are skipped.
func (a *Advisor) Matrix(probe []string, spec ErrorSpec) ([]TechniqueProperties, error) {
	type engineRow struct {
		tech    Technique
		run     func(*sqlparse.SelectStmt) (*Result, error)
		preRows int64
		mntRows int64
	}
	var rows []engineRow
	rows = append(rows, engineRow{tech: TechniqueExact,
		run: func(s *sqlparse.SelectStmt) (*Result, error) { return a.Exact.Execute(s, spec) }})
	if a.Online != nil {
		rows = append(rows, engineRow{tech: TechniqueOnline,
			run: func(s *sqlparse.SelectStmt) (*Result, error) { return a.Online.Execute(s, spec) }})
	}
	if a.Offline != nil {
		rows = append(rows, engineRow{tech: TechniqueOffline,
			run:     func(s *sqlparse.SelectStmt) (*Result, error) { return a.Offline.Execute(s, spec) },
			preRows: a.Offline.Maintenance.RowsScanned})
	}
	if a.OLA != nil {
		rows = append(rows, engineRow{tech: TechniqueOLA,
			run: func(s *sqlparse.SelectStmt) (*Result, error) { return a.OLA.Execute(s, spec) }})
	}
	if a.Synopsis != nil {
		rows = append(rows, engineRow{tech: TechniqueSynopsis,
			run: func(s *sqlparse.SelectStmt) (*Result, error) {
				stmtRes, err := a.Synopsis.Execute(s, spec)
				return stmtRes, err
			},
			preRows: a.Synopsis.BuildRows()})
	}

	var out []TechniqueProperties
	for _, er := range rows {
		props := TechniqueProperties{Technique: er.tech, PrecomputeRows: er.preRows}
		var supported, apriori int
		var workSaved float64
		var workSamples int
		for _, sql := range probe {
			stmt, err := sqlparse.Parse(sql)
			if err != nil {
				return nil, err
			}
			exactRes, err := a.Exact.Execute(stmt, spec)
			if err != nil {
				return nil, err
			}
			stmt2, _ := sqlparse.Parse(sql)
			res, err := er.run(stmt2)
			if err != nil || res.Diagnostics.FellBackToExact {
				continue
			}
			if er.tech == TechniqueExact {
				supported++
				continue
			}
			supported++
			if res.Guarantee == GuaranteeAPriori {
				apriori++
			}
			exactWork := float64(exactRes.Diagnostics.Counters.RowsScanned +
				exactRes.Diagnostics.Counters.RowsEmitted)
			if exactWork > 0 {
				work := float64(res.Diagnostics.Counters.RowsScanned +
					res.Diagnostics.Counters.RowsEmitted)
				saved := 1 - work/exactWork
				if saved < 0 {
					saved = 0
				}
				workSaved += saved
				workSamples++
			}
		}
		n := float64(len(probe))
		props.SupportedFraction = float64(supported) / n
		props.APrioriFraction = float64(apriori) / n
		if workSamples > 0 {
			props.MeanWorkSaved = workSaved / float64(workSamples)
		}
		if er.tech == TechniqueOffline && a.Offline != nil {
			props.MaintenanceRows = a.Offline.Maintenance.RowsScanned - er.preRows
			if props.MaintenanceRows < 0 {
				props.MaintenanceRows = 0
			}
		}
		out = append(out, props)
	}
	return out, nil
}

// FormatMatrix renders the matrix as an aligned text table.
func FormatMatrix(rows []TechniqueProperties) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %10s %10s %12s %12s\n",
		"technique", "supported", "a-priori", "work-saved", "precompute", "maintenance")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %9.0f%% %9.0f%% %9.0f%% %12d %12d\n",
			r.Technique, r.SupportedFraction*100, r.APrioriFraction*100,
			r.MeanWorkSaved*100, r.PrecomputeRows, r.MaintenanceRows)
	}
	return b.String()
}
