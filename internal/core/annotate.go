package core

import (
	"math"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// annotate converts a raw executor result into an annotated core.Result:
// per-item confidence intervals are derived from the aggregate-level
// Horvitz–Thompson details and propagated through composite item
// expressions with interval arithmetic. The joint confidence is allocated
// across (slots × groups) estimates by Boole's inequality, matching the
// "all estimates simultaneously within the bound" error semantics.
func annotate(stmt *sqlparse.SelectStmt, res *exec.Result, spec ErrorSpec,
	tech Technique, guarantee Guarantee) *Result {

	out := &Result{
		Columns:   res.Schema.Names(),
		Rows:      res.Rows,
		Technique: tech,
		Guarantee: guarantee,
		Spec:      spec,
	}
	aggs := stmt.Aggregates()
	slots := len(aggs)
	groups := res.NumRows()
	conf := confidencePerEstimate(spec, slots, groups)

	specOK := true
	out.Items = make([][]ItemResult, len(res.Rows))
	for i, row := range res.Rows {
		var detail *exec.GroupDetail
		if res.Details != nil {
			detail = res.Details[i]
		}
		items := make([]ItemResult, len(stmt.Items))
		for j, sel := range stmt.Items {
			name := sel.Name(j)
			if j < len(row) {
				items[j] = ItemResult{Name: name, Value: row[j]}
			} else {
				items[j] = ItemResult{Name: name}
			}
			iv, isAgg, ok := itemInterval(sel.Expr, detail, conf)
			items[j].IsAggregate = isAgg
			if isAgg && ok {
				items[j].HasCI = true
				items[j].CI = iv
				items[j].RelHalfWidth = iv.RelHalfWidth(row[j].AsFloat())
				if items[j].RelHalfWidth > spec.RelError {
					specOK = false
				}
			} else if isAgg && !ok {
				specOK = false
			}
			// Expose the CLT moments for direct sampled aggregates so a
			// contract pilot can size stage two from this result alone.
			if ae, isAE := sel.Expr.(*sqlparse.AggExpr); isAE && detail != nil && ae.Slot < len(detail.Aggs) {
				if d := detail.Aggs[ae.Slot]; d.Supported && d.Weighted && !d.HasInterval {
					items[j].Variance = d.Variance
					items[j].SampleN = d.N
				}
			}
		}
		out.Items[i] = items
	}
	out.Diagnostics.Counters = res.Counters
	out.Diagnostics.SpecSatisfied = specOK && groups > 0
	if guarantee == GuaranteeExact {
		out.Diagnostics.SpecSatisfied = true
	}
	return out
}

// itemInterval computes a confidence interval for a select-item expression
// by interval arithmetic over its aggregate leaves. ok is false when no
// defensible interval exists (non-linear aggregates, mixed group+aggregate
// items, non-numeric operations).
func itemInterval(e expr.Expr, detail *exec.GroupDetail, conf float64) (iv stats.Interval, isAgg, ok bool) {
	switch n := e.(type) {
	case *sqlparse.AggExpr:
		if detail == nil || n.Slot >= len(detail.Aggs) {
			return stats.Interval{}, true, false
		}
		d := detail.Aggs[n.Slot]
		if !d.Supported {
			return stats.Interval{}, true, false
		}
		if d.HasInterval {
			// Explicit interval (PERCENTILE's DKW bound); degenerate when
			// the sample is the whole population.
			return stats.Interval{Lo: d.Lo, Hi: d.Hi, Confidence: 0.95}, true, true
		}
		if !d.Weighted {
			// Exact aggregate: degenerate interval.
			return stats.Interval{Lo: d.Estimate, Hi: d.Estimate, Confidence: 1}, true, true
		}
		return stats.CLTInterval(d.Estimate, d.Variance, d.N, conf), true, true
	case *expr.Lit:
		if n.Val.IsNull() || !n.Val.Typ.Numeric() {
			return stats.Interval{}, false, false
		}
		x := n.Val.AsFloat()
		return stats.Interval{Lo: x, Hi: x, Confidence: 1}, false, true
	case *expr.ColRef:
		// A bare group column: exact, but its value is not needed for
		// interval propagation of pure-aggregate siblings. Mixed items
		// (group + aggregate arithmetic) are unsupported.
		return stats.Interval{}, false, false
	case *expr.Unary:
		ivx, isAggX, okX := itemInterval(n.X, detail, conf)
		if n.Op == expr.OpNeg && okX {
			return stats.Interval{Lo: -ivx.Hi, Hi: -ivx.Lo, Confidence: ivx.Confidence}, isAggX, true
		}
		return stats.Interval{}, isAggX, false
	case *expr.Binary:
		ivL, aggL, okL := itemInterval(n.L, detail, conf)
		ivR, aggR, okR := itemInterval(n.R, detail, conf)
		isAgg = aggL || aggR
		if !okL || !okR {
			return stats.Interval{}, isAgg, false
		}
		c := math.Min(nonZeroConf(ivL), nonZeroConf(ivR))
		switch n.Op {
		case expr.OpAdd:
			return stats.Interval{Lo: ivL.Lo + ivR.Lo, Hi: ivL.Hi + ivR.Hi, Confidence: c}, isAgg, true
		case expr.OpSub:
			return stats.Interval{Lo: ivL.Lo - ivR.Hi, Hi: ivL.Hi - ivR.Lo, Confidence: c}, isAgg, true
		case expr.OpMul:
			return stats.CombineIntervalsProduct(0, 0, ivL, ivR), isAgg, true
		case expr.OpDiv:
			return stats.CombineIntervalsRatio(0, 0, ivL, ivR), isAgg, true
		}
		return stats.Interval{}, isAgg, false
	case *expr.Call, *expr.In:
		// Function of aggregates: no closed-form propagation implemented.
		hasAgg := false
		e.Walk(func(x expr.Expr) {
			if _, isA := x.(*sqlparse.AggExpr); isA {
				hasAgg = true
			}
		})
		return stats.Interval{}, hasAgg, false
	}
	return stats.Interval{}, false, false
}

func nonZeroConf(iv stats.Interval) float64 {
	if iv.Confidence == 0 {
		return 1
	}
	return iv.Confidence
}

// sampleFraction computes emitted/scanned rows as the realized sampling
// fraction of an execution.
func sampleFraction(c exec.Counters, totalRows int64) float64 {
	if totalRows <= 0 {
		return 1
	}
	return float64(c.RowsEmitted) / float64(totalRows)
}
