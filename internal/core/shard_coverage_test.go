package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/shard"
	"repro/internal/workload"
)

// shardedFixture partitions the coverage fixture's events table into n
// hash shards on ev_user and returns a registry ready to hand to engines.
func shardedFixture(t *testing.T, ev *workload.Events, n int) *shard.Map {
	t.Helper()
	g, err := shard.Partition(ev.Table,
		shard.Key{Column: "ev_user", Kind: shard.KeyHash, Count: n}, fault.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := shard.NewMap()
	if err := m.Add(g); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardedCoverage: the statistical harness over the scatter-gather
// path. For each shard count, 500 independently seeded query-time samples
// with per-shard derived seeds must keep the composed 95% CI honest — the
// stratified composition neither narrows (undercovers) nor inflates the
// interval, at any fan-out.
func TestShardedCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage harness is long; skipped under -short")
	}
	ev, stmt, truth := coverageFixture(t)
	spec := ErrorSpec{RelError: 0.5, Confidence: 0.95}
	for _, n := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			m := shardedFixture(t, ev, n)
			covered := 0
			for trial := 0; trial < coverageTrials; trial++ {
				eng := NewOnlineEngine(ev.Catalog, OnlineConfig{
					DefaultRate: 0.1, MinTableRows: 1, Seed: int64(1000 + trial)})
				eng.Shards = m
				serial := runCoverageTrial(t, eng, stmt, spec, 1)
				parallel := runCoverageTrial(t, eng, stmt, spec, 4)
				assertTrialsEqual(t, fmt.Sprintf("sharded-%d", n), trial, serial, parallel)
				if serial.lo <= truth && truth <= serial.hi {
					covered++
				}
			}
			checkCoverage(t, fmt.Sprintf("sharded-%d", n), covered, coverageTrials)
		})
	}
}

// TestShardSingleBitIdentity: a one-shard group references the base table
// directly and shard 0 keeps the identity sampler seed, so the sharded
// engine must reproduce the unsharded engine bit for bit — estimates and
// CI endpoints alike — across many seeds.
func TestShardSingleBitIdentity(t *testing.T) {
	ev, stmt, _ := coverageFixture(t)
	spec := ErrorSpec{RelError: 0.5, Confidence: 0.95}
	m := shardedFixture(t, ev, 1)
	for trial := 0; trial < 50; trial++ {
		cfg := OnlineConfig{DefaultRate: 0.1, MinTableRows: 1, Seed: int64(4000 + trial)}
		plain := NewOnlineEngine(ev.Catalog, cfg)
		sharded := NewOnlineEngine(ev.Catalog, cfg)
		sharded.Shards = m
		for _, w := range []int{1, 4} {
			a := runCoverageTrial(t, plain, stmt, spec, w)
			b := runCoverageTrial(t, sharded, stmt, spec, w)
			if math.Float64bits(a.estimate) != math.Float64bits(b.estimate) ||
				math.Float64bits(a.lo) != math.Float64bits(b.lo) ||
				math.Float64bits(a.hi) != math.Float64bits(b.hi) {
				t.Fatalf("trial %d W=%d: sharded N=1 diverged: est %v vs %v, CI [%v,%v] vs [%v,%v]",
					trial, w, b.estimate, a.estimate, b.lo, b.hi, a.lo, a.hi)
			}
		}
	}

	// The exact engine too: one shard, zero shards — same bits.
	exPlain := NewExactEngine(ev.Catalog)
	exSharded := NewExactEngine(ev.Catalog)
	exSharded.Shards = m
	ra, err := exPlain.Execute(stmt, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := exSharded.Execute(stmt, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ra.Float(0, 0)) != math.Float64bits(rb.Float(0, 0)) {
		t.Fatalf("exact sharded N=1 diverged: %v vs %v", rb.Float(0, 0), ra.Float(0, 0))
	}
	if rb.Diagnostics.Shards == nil || rb.Diagnostics.Shards.Count != 1 {
		t.Fatalf("sharded exact run did not report its shard summary: %+v", rb.Diagnostics.Shards)
	}
	if ra.Diagnostics.Shards != nil {
		t.Fatalf("unsharded run reported a shard summary: %+v", ra.Diagnostics.Shards)
	}
}

// TestShardDegradeUnderChaos: an injected panic takes out exactly one of
// four shards; the query still succeeds, reports itself degraded with the
// failed shard attributed, extrapolates the survivors to the full
// population, and keeps a non-degenerate a-posteriori CI.
func TestShardDegradeUnderChaos(t *testing.T) {
	ev, stmt, truth := coverageFixture(t)
	m := shardedFixture(t, ev, 4)
	rules, err := fault.ParseRules("shard.estimate.2:panic:1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(fault.Schedule{Seed: 11, Rules: rules})
	defer fault.Uninstall()

	eng := NewOnlineEngine(ev.Catalog, OnlineConfig{
		DefaultRate: 0.1, MinTableRows: 1, Seed: 42})
	eng.Shards = m
	res, err := eng.ExecuteContext(context.Background(), stmt, ErrorSpec{RelError: 0.5, Confidence: 0.95})
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	if !res.Diagnostics.Degraded {
		t.Fatal("result not marked degraded")
	}
	sum := res.Diagnostics.Shards
	if sum == nil || len(sum.Degraded) != 1 || sum.Degraded[0] != 2 {
		t.Fatalf("shard summary = %+v, want Degraded=[2]", sum)
	}
	if !sum.Extrapolated {
		t.Fatal("hash-sharded sampled degradation must extrapolate survivors")
	}
	if sum.CoverageFraction <= 0.5 || sum.CoverageFraction >= 1 {
		t.Fatalf("coverage fraction %v, want in (0.5, 1)", sum.CoverageFraction)
	}
	if res.Guarantee != GuaranteeAPosteriori {
		t.Fatalf("guarantee %v, want a-posteriori", res.Guarantee)
	}
	it := res.Items[0][0]
	if !it.HasCI || !(it.CI.Hi > it.CI.Lo) {
		t.Fatalf("degraded result has no usable CI: %+v", it)
	}
	// The extrapolated estimate stays in the right ballpark (the lost shard
	// held ~25% of rows; a wildly-off answer means extrapolation is broken).
	est := res.Float(0, 0)
	if math.Abs(est-truth) > 0.5*math.Abs(truth) {
		t.Fatalf("extrapolated estimate %v implausibly far from truth %v", est, truth)
	}

	// Exact sharded runs degrade honestly too: no variance to widen, so the
	// guarantee drops to none rather than faking certainty.
	ex := NewExactEngine(ev.Catalog)
	ex.Shards = m
	exRes, err := ex.Execute(stmt, DefaultErrorSpec)
	if err != nil {
		t.Fatalf("degraded exact query failed outright: %v", err)
	}
	if !exRes.Diagnostics.Degraded || exRes.Guarantee != GuaranteeNone {
		t.Fatalf("degraded exact run: degraded=%v guarantee=%v, want true/none",
			exRes.Diagnostics.Degraded, exRes.Guarantee)
	}
	if exRes.Diagnostics.Shards == nil || exRes.Diagnostics.Shards.Extrapolated {
		t.Fatalf("degraded exact run must not extrapolate: %+v", exRes.Diagnostics.Shards)
	}
}

// TestShardedWorkerInvariance: the exact sharded path is deterministic
// across worker budgets.
func TestShardedWorkerInvariance(t *testing.T) {
	ev, stmt, truth := coverageFixture(t)
	eng := NewExactEngine(ev.Catalog)
	eng.Shards = shardedFixture(t, ev, 4)
	var first float64
	for i, w := range []int{1, 2, 4, 7} {
		ctx := exec.ContextWithWorkers(context.Background(), w)
		res, err := eng.ExecuteContext(ctx, stmt, DefaultErrorSpec)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Float(0, 0)
		if i == 0 {
			first = got
		} else if math.Float64bits(got) != math.Float64bits(first) {
			t.Fatalf("W=%d: sharded exact answer %v != W=1 answer %v", w, got, first)
		}
		// Shard-partition bracketing differs from the unsharded sum; agree
		// to tolerance, not bits.
		if math.Abs(got-truth) > 1e-9*math.Abs(truth) {
			t.Fatalf("W=%d: sharded exact %v far from truth %v", w, got, truth)
		}
	}
}
