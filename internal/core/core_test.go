package core

import (
	"math"
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// smallEvents generates a modest skewed event table for engine tests.
func smallEvents(t *testing.T, rows int, skew float64) *workload.Events {
	t.Helper()
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: 11, Rows: rows, NumGroups: 20, Skew: skew, BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func parse(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func TestErrorSpecValid(t *testing.T) {
	if !DefaultErrorSpec.Valid() {
		t.Error("default spec must be valid")
	}
	for _, bad := range []ErrorSpec{{}, {RelError: 0, Confidence: 0.9}, {RelError: 0.05, Confidence: 1.5}, {RelError: 2, Confidence: 0.9}} {
		if bad.Valid() {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

func TestExactEngine(t *testing.T) {
	ev := smallEvents(t, 5000, 0)
	e := NewExactEngine(ev.Catalog)
	res, err := e.Execute(parse(t, "SELECT COUNT(*) AS n, SUM(ev_value) AS s FROM events"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != GuaranteeExact || res.Technique != TechniqueExact {
		t.Errorf("tags = %v %v", res.Guarantee, res.Technique)
	}
	if res.Float(0, 0) != 5000 {
		t.Errorf("count = %v", res.Float(0, 0))
	}
	if !res.Diagnostics.SpecSatisfied {
		t.Error("exact always satisfies the spec")
	}
	if res.MaxRelHalfWidth() != 0 {
		t.Error("exact CIs are degenerate")
	}
}

func TestExactStripsTablesample(t *testing.T) {
	ev := smallEvents(t, 3000, 0)
	e := NewExactEngine(ev.Catalog)
	res, err := e.Execute(parse(t, "SELECT COUNT(*) FROM events TABLESAMPLE BERNOULLI (10)"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Float(0, 0) != 3000 {
		t.Errorf("exact must ignore TABLESAMPLE: count = %v", res.Float(0, 0))
	}
}

func TestOnlineEngineBasic(t *testing.T) {
	ev := smallEvents(t, 60000, 0)
	cfg := DefaultOnlineConfig()
	cfg.DefaultRate = 0.05
	cfg.MinTableRows = 1000
	e := NewOnlineEngine(ev.Catalog, cfg)
	res, err := e.Execute(parse(t, "SELECT COUNT(*) AS n, AVG(ev_value) AS m FROM events"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueOnline || res.Guarantee != GuaranteeAPosteriori {
		t.Fatalf("tags = %v %v (%v)", res.Technique, res.Guarantee, res.Diagnostics.Messages)
	}
	// Count estimate within 10% of 60000.
	if math.Abs(res.Float(0, 0)-60000)/60000 > 0.1 {
		t.Errorf("count estimate = %v", res.Float(0, 0))
	}
	// Mean estimate within 15% of 100 (exp mean).
	if math.Abs(res.Float(0, 1)-100)/100 > 0.15 {
		t.Errorf("avg estimate = %v", res.Float(0, 1))
	}
	if res.Diagnostics.SampleFraction <= 0 || res.Diagnostics.SampleFraction > 0.15 {
		t.Errorf("sample fraction = %v", res.Diagnostics.SampleFraction)
	}
	// CIs attached to aggregates.
	for _, it := range res.Items[0] {
		if !it.IsAggregate || !it.HasCI {
			t.Errorf("item %s missing CI", it.Name)
		}
	}
}

func TestOnlineUsesDistinctForGroupBy(t *testing.T) {
	ev := smallEvents(t, 60000, 1.4)
	cfg := DefaultOnlineConfig()
	cfg.DefaultRate = 0.02
	cfg.MinTableRows = 1000
	e := NewOnlineEngine(ev.Catalog, cfg)
	exact, err := NewExactEngine(ev.Catalog).Execute(
		parse(t, "SELECT ev_group, COUNT(*) AS n FROM events GROUP BY ev_group"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(parse(t, "SELECT ev_group, COUNT(*) AS n FROM events GROUP BY ev_group"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.Diagnostics.Messages {
		if containsSub(m, "distinct sampler") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected distinct sampler, messages = %v", res.Diagnostics.Messages)
	}
	// The distinct sampler must not lose groups.
	if res.NumRows() != exact.NumRows() {
		t.Errorf("groups: approx %d vs exact %d", res.NumRows(), exact.NumRows())
	}
}

func TestOnlineFallsBackForNonLinear(t *testing.T) {
	ev := smallEvents(t, 60000, 0)
	cfg := DefaultOnlineConfig()
	cfg.MinTableRows = 1000
	e := NewOnlineEngine(ev.Catalog, cfg)
	res, err := e.Execute(parse(t, "SELECT MAX(ev_value) FROM events"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact || res.Guarantee != GuaranteeExact {
		t.Errorf("MAX must fall back to exact: %+v", res.Diagnostics)
	}
	res, err = e.Execute(parse(t, "SELECT COUNT(DISTINCT ev_user) FROM events"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("COUNT DISTINCT must fall back to exact")
	}
}

func TestOnlineSkipsSmallTables(t *testing.T) {
	ev := smallEvents(t, 2000, 0)
	cfg := DefaultOnlineConfig() // MinTableRows 50k
	e := NewOnlineEngine(ev.Catalog, cfg)
	res, err := e.Execute(parse(t, "SELECT SUM(ev_value) FROM events"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("small tables must not be sampled")
	}
}

func TestOnlineUniverseForJoins(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 5, LineitemRows: 40000, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOnlineConfig()
	cfg.MinTableRows = 5000
	cfg.DefaultRate = 0.05
	e := NewOnlineEngine(star.Catalog, cfg)
	res, err := e.Execute(parse(t,
		"SELECT COUNT(*) AS n FROM lineitem JOIN orders ON l_orderkey = o_orderkey"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.Diagnostics.Messages {
		if containsSub(m, "universe") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected universe samplers, messages = %v", res.Diagnostics.Messages)
	}
	// Join count estimate within 25% (universe keeps keys aligned).
	if math.Abs(res.Float(0, 0)-40000)/40000 > 0.25 {
		t.Errorf("join count estimate = %v", res.Float(0, 0))
	}
}

func TestOnlineFallbackToExactOnMiss(t *testing.T) {
	ev := smallEvents(t, 60000, 0)
	cfg := DefaultOnlineConfig()
	cfg.MinTableRows = 1000
	cfg.DefaultRate = 0.001 // far too small for a 0.1% error target
	cfg.FallbackToExact = true
	e := NewOnlineEngine(ev.Catalog, cfg)
	res, err := e.Execute(parse(t, "SELECT SUM(ev_value) FROM events"),
		ErrorSpec{RelError: 0.001, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("expected exact fallback after spec miss")
	}
	if res.Diagnostics.Counters.Passes < 2 {
		t.Errorf("fallback costs a second pass, got %d", res.Diagnostics.Counters.Passes)
	}
}

func TestOnlineSampleCache(t *testing.T) {
	ev := smallEvents(t, 60000, 0)
	cfg := DefaultOnlineConfig()
	cfg.MinTableRows = 1000
	cfg.DefaultRate = 0.05
	cfg.CacheSamples = true
	e := NewOnlineEngine(ev.Catalog, cfg)
	sql := "SELECT SUM(ev_value) AS s FROM events"

	// First query: miss — builds and pays a base scan.
	res1, err := e.Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if e.CacheMisses != 1 || e.CacheHits != 0 {
		t.Fatalf("miss/hit = %d/%d", e.CacheMisses, e.CacheHits)
	}
	if res1.Diagnostics.Counters.RowsScanned < 60000 {
		t.Errorf("miss must pay the base scan: %d", res1.Diagnostics.Counters.RowsScanned)
	}

	// Second (different) query on the same table: hit — scans only the sample.
	res2, err := e.Execute(parse(t, "SELECT AVG(ev_value) AS m, COUNT(*) AS n FROM events"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if e.CacheHits != 1 {
		t.Fatalf("expected cache hit, hits=%d messages=%v", e.CacheHits, res2.Diagnostics.Messages)
	}
	if res2.Diagnostics.Counters.RowsScanned >= 60000 {
		t.Errorf("hit must not rescan the base table: %d", res2.Diagnostics.Counters.RowsScanned)
	}
	// Estimates still sane.
	if math.Abs(res2.Float(0, 1)-60000)/60000 > 0.15 {
		t.Errorf("cached count estimate = %v", res2.Float(0, 1))
	}

	// Appending data invalidates the cache (freshness guard).
	if err := ev.AppendShifted(5000, 1, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(parse(t, sql), DefaultErrorSpec); err != nil {
		t.Fatal(err)
	}
	if e.CacheMisses != 2 {
		t.Errorf("stale cache must rebuild: misses=%d", e.CacheMisses)
	}

	// Explicit TABLESAMPLE opts out of caching.
	hitsBefore := e.CacheHits
	if _, err := e.Execute(parse(t, "SELECT SUM(ev_value) FROM events TABLESAMPLE BERNOULLI (5)"), DefaultErrorSpec); err != nil {
		t.Fatal(err)
	}
	if e.CacheHits != hitsBefore {
		t.Error("user TABLESAMPLE must bypass the cache")
	}
}

func TestOnlineSelectivityGuard(t *testing.T) {
	ev := smallEvents(t, 60000, 0)
	cfg := DefaultOnlineConfig()
	cfg.MinTableRows = 1000
	cfg.DefaultRate = 0.01
	cfg.MinExpectedSampleRows = 30
	e := NewOnlineEngine(ev.Catalog, cfg)
	if err := e.BuildHistogram("events", "ev_value", 128); err != nil {
		t.Fatal(err)
	}

	// Highly selective range: histogram predicts ~0 sampled rows ->
	// exact fallback with an explanatory message.
	res, err := e.Execute(parse(t,
		"SELECT SUM(ev_value) FROM events WHERE ev_value > 1e9"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Fatalf("selective query must fall back: %v", res.Diagnostics.Messages)
	}
	found := false
	for _, m := range res.Diagnostics.Messages {
		if containsSub(m, "selectivity guard") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected selectivity-guard message: %v", res.Diagnostics.Messages)
	}

	// Unselective range: sampling proceeds.
	res, err = e.Execute(parse(t,
		"SELECT SUM(ev_value) FROM events WHERE ev_value > 1"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.FellBackToExact {
		t.Errorf("unselective query should sample: %v", res.Diagnostics.Messages)
	}

	// Predicate on a column without a histogram: no prediction, sampling
	// proceeds (the guard only acts when it can see).
	res, err = e.Execute(parse(t,
		"SELECT SUM(ev_value) FROM events WHERE ev_ts > 100"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.FellBackToExact {
		t.Error("guard must not trigger without a histogram")
	}

	if err := e.BuildHistogram("events", "nope", 10); err == nil {
		t.Error("unknown column must error")
	}
}

func TestOfflineEngineLifecycle(t *testing.T) {
	ev := smallEvents(t, 30000, 1.2)
	cfg := DefaultOfflineConfig()
	cfg.Caps = []int{128, 512}
	cfg.UniformRates = []float64{0.05}
	e := NewOfflineEngine(ev.Catalog, cfg)
	if err := e.BuildSamples("events", [][]string{{"ev_group"}}); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Samples("events")); got != 3 {
		t.Fatalf("samples = %d, want 3 (2 caps + 1 uniform)", got)
	}
	if e.Maintenance.SamplesBuilt != 3 || e.Maintenance.RowsScanned != 90000 {
		t.Errorf("maintenance = %+v", e.Maintenance)
	}

	// Profile the group-by shape.
	sql := "SELECT ev_group, SUM(ev_value) AS s, COUNT(*) AS n FROM events GROUP BY ev_group"
	if err := e.ProfileQuery(sql); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(parse(t, sql), ErrorSpec{RelError: 0.5, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != TechniqueOffline || res.Guarantee != GuaranteeAPriori {
		t.Fatalf("tags = %v %v (%v)", res.Technique, res.Guarantee, res.Diagnostics.Messages)
	}
	if res.Diagnostics.SampleFraction >= 1 || res.Diagnostics.SampleFraction <= 0 {
		t.Errorf("sample fraction = %v", res.Diagnostics.SampleFraction)
	}

	// Unprofiled shape falls back.
	res, err = e.Execute(parse(t, "SELECT ev_flag, AVG(ev_value) FROM events GROUP BY ev_flag"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("unprofiled QCS must fall back")
	}
}

func TestOfflineStaleness(t *testing.T) {
	ev := smallEvents(t, 20000, 0)
	cfg := DefaultOfflineConfig()
	cfg.Caps = []int{512}
	cfg.UniformRates = nil
	e := NewOfflineEngine(ev.Catalog, cfg)
	if err := e.BuildSamples("events", [][]string{{"ev_group"}}); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT ev_group, COUNT(*) FROM events GROUP BY ev_group"
	if err := e.ProfileQuery(sql); err != nil {
		t.Fatal(err)
	}
	spec := ErrorSpec{RelError: 0.5, Confidence: 0.9}

	// Fresh: a-priori.
	res, err := e.Execute(parse(t, sql), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != GuaranteeAPriori {
		t.Fatalf("fresh sample should be a-priori: %v %v", res.Guarantee, res.Diagnostics.Messages)
	}

	// Mutate the base table.
	if err := ev.AppendShifted(5000, 10, 99); err != nil {
		t.Fatal(err)
	}

	// Policy: fallback to exact.
	res, err = e.Execute(parse(t, sql), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("stale + fallback policy must run exactly")
	}

	// Policy: serve stale.
	e.Config.StalePolicy = StaleServe
	res, err = e.Execute(parse(t, sql), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != GuaranteeNone || !res.Diagnostics.Stale {
		t.Errorf("stale serve: %v stale=%v", res.Guarantee, res.Diagnostics.Stale)
	}

	// Policy: rebuild.
	e.Config.StalePolicy = StaleRebuild
	before := e.Maintenance.Rebuilds
	res, err = e.Execute(parse(t, sql), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != GuaranteeAPriori {
		t.Errorf("after rebuild: %v", res.Guarantee)
	}
	if e.Maintenance.Rebuilds != before+1 {
		t.Errorf("rebuilds = %d", e.Maintenance.Rebuilds)
	}
}

func TestOLAEngineConverges(t *testing.T) {
	ev := smallEvents(t, 50000, 0)
	cfg := DefaultOLAConfig()
	cfg.ChunkRows = 2000
	cfg.StopWhenSpecMet = false
	e := NewOLAEngine(ev.Catalog, cfg)
	var widths []float64
	res, err := e.ExecuteProgressive(parse(t, "SELECT SUM(ev_value) AS s FROM events"),
		DefaultErrorSpec, func(p Progress) bool {
			widths = append(widths, p.Result.Items[0][0].CI.Width())
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(widths) < 5 {
		t.Fatalf("checkpoints = %d", len(widths))
	}
	// CI width at the end must be much smaller than at the start.
	if widths[len(widths)-1] >= widths[0]/2 {
		t.Errorf("CI did not shrink: first %v last %v", widths[0], widths[len(widths)-1])
	}
	// Full read: exact-ish estimate.
	exact, _ := NewExactEngine(ev.Catalog).Execute(parse(t, "SELECT SUM(ev_value) AS s FROM events"), DefaultErrorSpec)
	if math.Abs(res.Float(0, 0)-exact.Float(0, 0))/exact.Float(0, 0) > 0.001 {
		t.Errorf("full-read OLA = %v vs exact %v", res.Float(0, 0), exact.Float(0, 0))
	}
}

func TestOLAStopsEarlyWithPeekingCaveat(t *testing.T) {
	ev := smallEvents(t, 50000, 0)
	cfg := DefaultOLAConfig()
	cfg.ChunkRows = 2000
	e := NewOLAEngine(ev.Catalog, cfg)
	res, err := e.Execute(parse(t, "SELECT COUNT(*) AS n FROM events"),
		ErrorSpec{RelError: 0.1, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.SampleFraction >= 1 {
		t.Error("expected early stop")
	}
	if res.Guarantee != GuaranteeNone {
		t.Errorf("peeking must downgrade the guarantee, got %v", res.Guarantee)
	}
	found := false
	for _, m := range res.Diagnostics.Messages {
		if containsSub(m, "peeking") {
			found = true
		}
	}
	if !found {
		t.Error("expected peeking caveat")
	}
}

func TestOLAGroupBy(t *testing.T) {
	ev := smallEvents(t, 30000, 0)
	cfg := DefaultOLAConfig()
	cfg.StopWhenSpecMet = false
	e := NewOLAEngine(ev.Catalog, cfg)
	res, err := e.Execute(parse(t, "SELECT ev_group, COUNT(*) AS n FROM events GROUP BY ev_group"),
		DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 20 {
		t.Errorf("groups = %d", res.NumRows())
	}
	// Full read: counts sum to 30000.
	var sum float64
	for i := 0; i < res.NumRows(); i++ {
		sum += res.Float(i, 1)
	}
	if math.Abs(sum-30000) > 30 {
		t.Errorf("group counts sum to %v", sum)
	}
}

func TestOLAJoins(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 2, LineitemRows: 20000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOLAConfig()
	cfg.StopWhenSpecMet = false
	cfg.ChunkRows = 5000
	e := NewOLAEngine(star.Catalog, cfg)
	sql := "SELECT COUNT(*) AS n, SUM(l_extendedprice) AS s FROM lineitem JOIN orders ON l_orderkey = o_orderkey"
	res, err := e.Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.FellBackToExact {
		t.Fatalf("OLA should handle small-dimension joins: %v", res.Diagnostics.Messages)
	}
	exact, err := NewExactEngine(star.Catalog).Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Full read: OLA over the complete permutation equals exact.
	if math.Abs(res.Float(0, 0)-exact.Float(0, 0)) > 0.5 {
		t.Errorf("OLA join count = %v vs exact %v", res.Float(0, 0), exact.Float(0, 0))
	}
	if math.Abs(res.Float(0, 1)-exact.Float(0, 1))/exact.Float(0, 1) > 1e-9 {
		t.Errorf("OLA join sum = %v vs exact %v", res.Float(0, 1), exact.Float(0, 1))
	}
}

func TestOLAJoinGroupBy(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 3, LineitemRows: 20000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOLAConfig()
	cfg.StopWhenSpecMet = false
	e := NewOLAEngine(star.Catalog, cfg)
	sql := "SELECT o_orderpriority, COUNT(*) AS n FROM lineitem JOIN orders ON l_orderkey = o_orderkey GROUP BY o_orderpriority"
	res, err := e.Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewExactEngine(star.Catalog).Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != exact.NumRows() {
		t.Fatalf("groups: %d vs %d", res.NumRows(), exact.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		if math.Abs(res.Float(i, 1)-exact.Float(i, 1)) > 0.5 {
			t.Errorf("group %s: %v vs %v", res.Rows[i][0].S, res.Float(i, 1), exact.Float(i, 1))
		}
	}
}

func TestOLAJoinFallsBackWhenDimTooLarge(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 2, LineitemRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOLAConfig()
	cfg.MaxBuildRows = 10 // orders is larger than this
	e := NewOLAEngine(star.Catalog, cfg)
	res, err := e.Execute(parse(t,
		"SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey"), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnostics.FellBackToExact {
		t.Error("OLA must fall back when the dimension exceeds MaxBuildRows")
	}
}

func TestSynopsisEngine(t *testing.T) {
	ev := smallEvents(t, 40000, 0)
	e := NewSynopsisEngine(ev.Catalog)
	if err := e.BuildColumn("events", "ev_value", 128); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildColumn("events", "ev_user", 0); err != nil {
		t.Fatal(err)
	}
	exact := NewExactEngine(ev.Catalog)

	// Range count from histogram.
	sql := "SELECT COUNT(*) FROM events WHERE ev_value BETWEEN 50 AND 150"
	got, err := e.Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Execute(parse(t, sql), DefaultErrorSpec)
	if math.Abs(got.Float(0, 0)-want.Float(0, 0))/want.Float(0, 0) > 0.05 {
		t.Errorf("histogram count = %v vs exact %v", got.Float(0, 0), want.Float(0, 0))
	}
	if got.Diagnostics.Counters.RowsScanned != 0 {
		t.Error("synopsis answers must not scan the table")
	}

	// COUNT DISTINCT from HLL.
	sqlD := "SELECT COUNT(DISTINCT ev_user) FROM events"
	gotD, err := e.Execute(parse(t, sqlD), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	wantD, _ := exact.Execute(parse(t, sqlD), DefaultErrorSpec)
	if math.Abs(gotD.Float(0, 0)-wantD.Float(0, 0))/wantD.Float(0, 0) > 0.05 {
		t.Errorf("HLL = %v vs exact %v", gotD.Float(0, 0), wantD.Float(0, 0))
	}

	// Unsupported shape errors.
	if _, err := e.Execute(parse(t, "SELECT SUM(ev_value) FROM events"), DefaultErrorSpec); err == nil {
		t.Error("SUM is not synopsis-answerable")
	}
	if _, err := e.Execute(parse(t, "SELECT COUNT(*) FROM events WHERE ev_flag = true AND ev_value > 3"), DefaultErrorSpec); err == nil {
		t.Error("multi-column predicate is not synopsis-answerable")
	}
}

func TestSynopsisPointCount(t *testing.T) {
	ev := smallEvents(t, 30000, 1.5)
	e := NewSynopsisEngine(ev.Catalog)
	if err := e.BuildColumn("events", "ev_group", 0); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(*) FROM events WHERE ev_group = 1"
	got, err := e.Execute(parse(t, sql), DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewExactEngine(ev.Catalog).Execute(parse(t, sql), DefaultErrorSpec)
	// CMS never underestimates and stays within its bound.
	if got.Float(0, 0) < want.Float(0, 0) {
		t.Errorf("CMS underestimated: %v < %v", got.Float(0, 0), want.Float(0, 0))
	}
}

func TestAdvisorRouting(t *testing.T) {
	ev := smallEvents(t, 60000, 1.2)
	onlineCfg := DefaultOnlineConfig()
	onlineCfg.MinTableRows = 1000
	offCfg := DefaultOfflineConfig()
	offCfg.Caps = []int{512}
	offCfg.UniformRates = nil
	offline := NewOfflineEngine(ev.Catalog, offCfg)
	if err := offline.BuildSamples("events", [][]string{{"ev_group"}}); err != nil {
		t.Fatal(err)
	}
	groupSQL := "SELECT ev_group, SUM(ev_value) AS s FROM events GROUP BY ev_group"
	if err := offline.ProfileQuery(groupSQL); err != nil {
		t.Fatal(err)
	}
	syn := NewSynopsisEngine(ev.Catalog)
	if err := syn.BuildColumn("events", "ev_user", 0); err != nil {
		t.Fatal(err)
	}
	adv := NewAdvisor(NewExactEngine(ev.Catalog), NewOnlineEngine(ev.Catalog, onlineCfg),
		offline, NewOLAEngine(ev.Catalog, DefaultOLAConfig()), syn)

	// Profiled group-by with a loose spec -> offline, a-priori.
	d := adv.Choose(parse(t, groupSQL), ErrorSpec{RelError: 0.5, Confidence: 0.9})
	if d.Technique != TechniqueOffline {
		t.Errorf("choice = %+v", d)
	}
	// Unprofiled ad-hoc query -> online.
	d = adv.Choose(parse(t, "SELECT SUM(ev_value) FROM events WHERE ev_ts > 100"), DefaultErrorSpec)
	if d.Technique != TechniqueOnline {
		t.Errorf("choice = %+v", d)
	}
	// COUNT DISTINCT -> synopsis.
	d = adv.Choose(parse(t, "SELECT COUNT(DISTINCT ev_user) FROM events"), DefaultErrorSpec)
	if d.Technique != TechniqueSynopsis {
		t.Errorf("choice = %+v", d)
	}
	// MIN -> exact.
	d = adv.Choose(parse(t, "SELECT MIN(ev_value) FROM events"), DefaultErrorSpec)
	if d.Technique != TechniqueExact {
		t.Errorf("choice = %+v", d)
	}

	// End-to-end execution through the advisor, spec from SQL.
	res, dec, err := adv.Execute(groupSQL+" WITH ERROR 50% CONFIDENCE 90%", DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Technique != TechniqueOffline || res.Technique != TechniqueOffline {
		t.Errorf("advisor execute: %v / %v", dec.Technique, res.Technique)
	}
}

func TestAdvisorMatrix(t *testing.T) {
	ev := smallEvents(t, 30000, 1.0)
	onlineCfg := DefaultOnlineConfig()
	onlineCfg.MinTableRows = 1000
	onlineCfg.DefaultRate = 0.05
	adv := NewAdvisor(NewExactEngine(ev.Catalog), NewOnlineEngine(ev.Catalog, onlineCfg),
		nil, NewOLAEngine(ev.Catalog, DefaultOLAConfig()), nil)
	probe := []string{
		"SELECT SUM(ev_value) FROM events",
		"SELECT ev_group, COUNT(*) FROM events GROUP BY ev_group",
		"SELECT MAX(ev_value) FROM events",
	}
	rows, err := adv.Matrix(probe, DefaultErrorSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("matrix rows = %d", len(rows))
	}
	var online *TechniqueProperties
	for i := range rows {
		if rows[i].Technique == TechniqueOnline {
			online = &rows[i]
		}
	}
	if online == nil {
		t.Fatal("no online row")
	}
	// Online supports 2/3 probes (MAX falls back).
	if math.Abs(online.SupportedFraction-2.0/3) > 1e-9 {
		t.Errorf("online supported = %v", online.SupportedFraction)
	}
	if online.APrioriFraction != 0 {
		t.Error("online never gives a-priori guarantees")
	}
	out := FormatMatrix(rows)
	if !containsSub(out, "online-sampling") || !containsSub(out, "technique") {
		t.Errorf("matrix render:\n%s", out)
	}
}

func TestConfidenceAllocation(t *testing.T) {
	c := confidencePerEstimate(ErrorSpec{RelError: 0.05, Confidence: 0.95}, 2, 10)
	want := 1 - 0.05/20
	if math.Abs(c-want) > 1e-12 {
		t.Errorf("allocated confidence = %v, want %v", c, want)
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
