package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// injectOLAChunk fires once per progressive chunk, inside the engine's
// chunk-containment scope: a fired panic or error costs one chunk, not
// the estimate accumulated so far.
var injectOLAChunk = fault.NewPoint("core.ola.chunk", "OLA per-chunk processing")

// OLAConfig tunes the online-aggregation engine.
type OLAConfig struct {
	// ChunkRows is the number of rows processed between checkpoints.
	ChunkRows int
	// MaxFraction caps the fraction of the table read (1 = run to
	// completion if never stopped).
	MaxFraction float64
	// StopWhenSpecMet stops at the first checkpoint whose CIs satisfy
	// the spec. NOTE: stopping on an interim CI is the "peeking" problem
	// — the stopped-at interval no longer has its nominal coverage. The
	// engine does it when asked (it is what OLA users do) and downgrades
	// the guarantee accordingly.
	StopWhenSpecMet bool
	// MaxBuildRows caps the size of joined dimension tables: join queries
	// are supported by fully materializing every non-fact table into a
	// hash table (the simplified ripple-join scheme, statistically a
	// cluster sample keyed by fact row) as long as each fits this bound.
	MaxBuildRows int
	// Seed drives the row permutation.
	Seed int64
	// Workers is the morsel-parallel worker count for chunk processing;
	// 0 defers to a context override or runtime.GOMAXPROCS. Estimates are
	// bit-identical for every worker count: the permuted order is cut into
	// fixed shards and shard results merge in shard order.
	Workers int
}

// olaShardRows is the fixed shard size within a chunk. Shard boundaries
// depend only on the chunk bounds, never on the worker count, so float
// accumulation order — shard-local sums folded in shard order — is the
// same no matter how many workers ran.
const olaShardRows = 1024

// DefaultOLAConfig processes 4096-row chunks up to the full table and
// joins dimensions up to one million rows.
func DefaultOLAConfig() OLAConfig {
	return OLAConfig{ChunkRows: 4096, MaxFraction: 1, StopWhenSpecMet: true,
		MaxBuildRows: 1 << 20, Seed: 3}
}

// Progress is one OLA checkpoint delivered to the observer callback.
type Progress struct {
	// RowsRead is the number of permuted rows consumed so far.
	RowsRead int
	// Fraction is RowsRead / table size.
	Fraction float64
	// Result is the current annotated estimate.
	Result *Result
}

// OLAEngine implements online aggregation: rows stream in random order
// and estimates with shrinking confidence intervals are emitted at every
// checkpoint. It supports single-table aggregation queries whose select
// items are bare group columns or bare linear aggregates; anything else
// falls back to exact execution.
type OLAEngine struct {
	Catalog *storage.Catalog
	Config  OLAConfig
}

// NewOLAEngine builds an OLA engine.
func NewOLAEngine(cat *storage.Catalog, cfg OLAConfig) *OLAEngine {
	if cfg.ChunkRows <= 0 {
		cfg.ChunkRows = 4096
	}
	if cfg.MaxFraction <= 0 || cfg.MaxFraction > 1 {
		cfg.MaxFraction = 1
	}
	return &OLAEngine{Catalog: cat, Config: cfg}
}

// Name implements Engine.
func (e *OLAEngine) Name() Technique { return TechniqueOLA }

// Execute implements Engine by running ExecuteProgressive without an
// observer.
func (e *OLAEngine) Execute(stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error) {
	return e.ExecuteProgressive(stmt, spec, nil)
}

// ExecuteContext runs the query under a context. At the deadline the
// engine does not error: it stops reading and returns its best
// progressive estimate so far with an honest a-posteriori CI — the
// error/latency trade-off made explicit (graceful degradation).
func (e *OLAEngine) ExecuteContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec) (*Result, error) {
	return e.ExecuteProgressiveContext(ctx, stmt, spec, nil)
}

// olaAgg is a per-group, per-slot accumulator over the rows read so far.
// For SUM/COUNT estimation it treats the contribution z_i (the aggregate
// argument for rows in the group, 0 otherwise) as a simple random sample
// without replacement of size k from N rows:
//
//	Ŝ = N·z̄,  Var(Ŝ) = N²·(1-k/N)·s_z²/k.
type olaAgg struct {
	sum   float64 // Σ z over group rows
	sumsq float64 // Σ z² over group rows
	n     float64 // rows in group
}

type olaGroup struct {
	key  string
	vals []storage.Value
	aggs []olaAgg
}

// ExecuteProgressive runs the query with checkpoints; observe (if
// non-nil) is called at each checkpoint and may return false to stop.
func (e *OLAEngine) ExecuteProgressive(stmt *sqlparse.SelectStmt, spec ErrorSpec,
	observe func(Progress) bool) (*Result, error) {
	return e.ExecuteProgressiveContext(context.Background(), stmt, spec, observe)
}

// ExecuteProgressiveContext is ExecuteProgressive under a context. The
// context is checked between chunks after the first chunk completes:
// cancellation or a deadline ends the progressive loop and the best
// estimate so far is returned (never an error), keeping its a-posteriori
// guarantee — a deadline is a data-independent stopping rule, so unlike
// spec-triggered early stopping it does not void the CI's coverage.
func (e *OLAEngine) ExecuteProgressiveContext(ctx context.Context, stmt *sqlparse.SelectStmt, spec ErrorSpec,
	observe func(Progress) bool) (_ *Result, err error) {
	defer contain(&err)
	start := time.Now()
	esp, ctx := trace.StartSpan(ctx, "engine ola")
	defer esp.End()
	if !spec.Valid() {
		spec = DefaultErrorSpec
	}
	ok, reason := e.supported(stmt)
	if !ok {
		res, err := (&ExactEngine{Catalog: e.Catalog, Workers: e.Config.Workers}).ExecuteContext(ctx, stmt, spec)
		if err != nil {
			return nil, err
		}
		res.Diagnostics.FellBackToExact = true
		res.Diagnostics.Messages = append(res.Diagnostics.Messages, "ola: fell back to exact: "+reason)
		return res, nil
	}
	setupSp, _ := trace.StartSpan(ctx, "setup")
	t, err := e.Catalog.Table(stmt.From.Name)
	if err != nil {
		setupSp.End()
		return nil, err
	}
	// Stream over a snapshot so the permutation and the reads agree on
	// the row count even while writers keep appending.
	t = t.Snapshot()
	n := t.NumRows()

	// Joined dimensions are fully built into hash tables; the fact table
	// is the sampling unit (simplified ripple join). The combined schema
	// is the fact schema followed by each dimension's schema.
	combined := t.Schema().Clone()
	joins := make([]*olaJoin, 0, len(stmt.Joins))
	for _, jc := range stmt.Joins {
		j, err := e.buildOLAJoin(jc, combined)
		if err != nil {
			return nil, err
		}
		joins = append(joins, j)
		combined = append(combined, j.dimSchema...)
	}

	// Bind expressions against the combined schema.
	var where expr.Expr
	if stmt.Where != nil {
		where = expr.Clone(stmt.Where)
		if err := expr.Bind(where, combined); err != nil {
			return nil, err
		}
	}
	groupExprs := make([]expr.Expr, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		groupExprs[i] = expr.Clone(g)
		if err := expr.Bind(groupExprs[i], combined); err != nil {
			return nil, err
		}
	}
	aggs := stmt.Aggregates()
	argExprs := make([]expr.Expr, len(aggs))
	for i, a := range aggs {
		if a.Arg != nil {
			argExprs[i] = expr.Clone(a.Arg)
			if err := expr.Bind(argExprs[i], combined); err != nil {
				return nil, err
			}
		}
	}

	// Random permutation of row indices.
	rng := rand.New(rand.NewSource(e.Config.Seed))
	perm := rng.Perm(n)
	limit := int(math.Ceil(e.Config.MaxFraction * float64(n)))
	if limit > n {
		limit = n
	}

	q := &olaQuery{t: t, joins: joins, where: where, groupExprs: groupExprs,
		aggs: aggs, argExprs: argExprs, perm: perm}
	workers := exec.ResolveWorkers(ctx, e.Config.Workers)
	setupSp.SetAttrInt("rows", int64(n))
	setupSp.SetAttrInt("workers", int64(workers))
	setupSp.End()

	// Chunk/checkpoint spans accumulate across loop iterations; a span per
	// chunk would bloat the tree at default chunk sizes.
	chunkSp, _ := trace.StartOp(ctx, "chunks")
	ckptSp, _ := trace.StartOp(ctx, "checkpoints")
	var checkpoints int64

	groups := make(map[string]*olaGroup)
	read := 0
	stoppedEarly := false

	var final *Result
	deadlineStopped := false
	var chunkErr error
	for read < limit {
		// Always complete at least one chunk so a too-tight deadline still
		// yields an estimate; after that, the deadline wins between chunks.
		if read > 0 && ctx.Err() != nil {
			deadlineStopped = true
			break
		}
		chunkEnd := read + e.Config.ChunkRows
		if chunkEnd > limit {
			chunkEnd = limit
		}
		var t0 time.Time
		if chunkSp != nil {
			t0 = time.Now()
		}
		cerr := func() (cerr error) {
			defer func() {
				if r := recover(); r != nil {
					cerr = fault.AsError(r)
				}
			}()
			if err := injectOLAChunk.Inject(); err != nil {
				return err
			}
			return processOLAChunk(q, groups, read, chunkEnd, workers)
		}()
		if cerr != nil {
			if read == 0 {
				return nil, cerr
			}
			// A mid-stream chunk fault costs only that chunk: groups are
			// folded only after every shard of a chunk succeeds, so the
			// accumulated prefix is an intact SRS and its a-posteriori CI
			// still describes the estimate we return.
			chunkErr = cerr
			break
		}
		if chunkSp != nil {
			chunkSp.AddTime(time.Since(t0))
			chunkSp.AddRows(int64(chunkEnd - read))
			t0 = time.Now()
		}
		read = chunkEnd
		final = e.checkpoint(stmt, aggs, groups, read, n, spec)
		if ckptSp != nil {
			ckptSp.AddTime(time.Since(t0))
			checkpoints++
		}
		p := Progress{RowsRead: read, Fraction: float64(read) / float64(n), Result: final}
		if observe != nil && !observe(p) {
			stoppedEarly = true
			break
		}
		if e.Config.StopWhenSpecMet && final.Diagnostics.SpecSatisfied && read < limit {
			stoppedEarly = true
			break
		}
	}
	if final == nil {
		final = e.checkpoint(stmt, aggs, groups, maxInt(read, 1), n, spec)
	}
	ckptSp.SetAttrInt("checkpoints", checkpoints)
	esp.SetAttrInt("rows_read", int64(read))
	esp.SetAttrFloat("fraction", float64(read)/math.Max(float64(n), 1))
	final.Diagnostics.Latency = time.Since(start)
	final.Diagnostics.SampleFraction = float64(read) / math.Max(float64(n), 1)
	final.Diagnostics.Workers = workers
	stampLineage(&final.Diagnostics, e.Catalog, stmt.From.Name)
	final.Diagnostics.Counters.RowsScanned = int64(read)
	final.Diagnostics.Counters.RowsEmitted = int64(read)
	final.Diagnostics.Counters.Passes = 1
	if stoppedEarly {
		final.Guarantee = GuaranteeNone
		final.Diagnostics.Messages = append(final.Diagnostics.Messages,
			"ola: stopped on an interim CI; the stopped-at interval does not retain its nominal coverage (peeking)")
	}
	if deadlineStopped {
		final.Diagnostics.Partial = true
		final.Diagnostics.Messages = append(final.Diagnostics.Messages, fmt.Sprintf(
			"ola: deadline/cancellation after %d of %d rows; returning best progressive estimate", read, n))
	}
	if chunkErr != nil {
		final.Diagnostics.Partial = true
		final.Diagnostics.Degraded = true
		final.Diagnostics.Messages = append(final.Diagnostics.Messages, fmt.Sprintf(
			"ola: chunk fault after %d of %d rows (%v); returning best progressive estimate", read, n, chunkErr))
	}
	return final, nil
}

// olaQuery bundles the read-only pieces every shard worker shares: the
// snapshot, prebuilt dimension hash tables, bound expressions (expression
// evaluation is pure), and the row permutation.
type olaQuery struct {
	t          *storage.Table
	joins      []*olaJoin
	where      expr.Expr
	groupExprs []expr.Expr
	aggs       []*sqlparse.AggExpr
	argExprs   []expr.Expr
	perm       []int
}

// olaRowTotals holds per-fact-row totals: the fact row is the sampling
// unit, so for SUM/COUNT variance the contributions of all its joined
// rows must be summed before entering the accumulators.
type olaRowTotals struct {
	total []float64 // per slot: summed SUM/COUNT contribution
	seen  []bool    // per slot: contributed at all
}

// olaShardState accumulates one shard of the permuted order into private
// group accumulators, later folded into the global state in shard order.
type olaShardState struct {
	q          *olaQuery
	groups     map[string]*olaGroup
	keyBuf     []storage.Value
	factTotals map[string]*olaRowTotals
}

func newOLAShardState(q *olaQuery) *olaShardState {
	return &olaShardState{q: q,
		groups:     make(map[string]*olaGroup),
		keyBuf:     make([]storage.Value, len(q.groupExprs)),
		factTotals: make(map[string]*olaRowTotals)}
}

// processPermRows consumes permuted positions [lo, hi).
func (sh *olaShardState) processPermRows(lo, hi int) error {
	q := sh.q
	for i := lo; i < hi; i++ {
		ri := q.perm[i]
		if len(q.joins) == 0 {
			if err := sh.processCombined(tableRowAdapter{t: q.t, idx: ri}); err != nil {
				return err
			}
			sh.flushFactRow()
			continue
		}
		// Expand the fact row through the dimension hash tables.
		rows := [][]storage.Value{q.t.Row(ri)}
		for _, j := range q.joins {
			var next [][]storage.Value
			for _, r := range rows {
				matches, err := j.probe(r)
				if err != nil {
					return err
				}
				next = append(next, matches...)
			}
			rows = next
			if len(rows) == 0 {
				break
			}
		}
		for _, r := range rows {
			if err := sh.processCombined(expr.ValuesRow(r)); err != nil {
				return err
			}
		}
		sh.flushFactRow()
	}
	return nil
}

func (sh *olaShardState) processCombined(row expr.Row) error {
	q := sh.q
	if q.where != nil {
		keep, err := expr.EvalBool(q.where, row)
		if err != nil || !keep {
			return err
		}
	}
	for k2, ge := range q.groupExprs {
		v, err := ge.Eval(row)
		if err != nil {
			return err
		}
		sh.keyBuf[k2] = v
	}
	key := sampleKey(sh.keyBuf)
	g, ok := sh.groups[key]
	if !ok {
		g = &olaGroup{key: key, vals: append([]storage.Value(nil), sh.keyBuf...),
			aggs: make([]olaAgg, len(q.aggs))}
		sh.groups[key] = g
	}
	rt, ok := sh.factTotals[key]
	if !ok {
		rt = &olaRowTotals{total: make([]float64, len(q.aggs)), seen: make([]bool, len(q.aggs))}
		sh.factTotals[key] = rt
	}
	for ai, a := range q.aggs {
		var z float64
		switch a.Func {
		case sqlparse.AggCount:
			z = 1
			if !a.Star && q.argExprs[ai] != nil {
				v, err := q.argExprs[ai].Eval(row)
				if err != nil {
					return err
				}
				if v.IsNull() {
					continue
				}
			}
			rt.total[ai] += z
			rt.seen[ai] = true
		case sqlparse.AggSum:
			v, err := q.argExprs[ai].Eval(row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue
			}
			rt.total[ai] += v.AsFloat()
			rt.seen[ai] = true
		default: // AVG: the joined row is the value unit
			v, err := q.argExprs[ai].Eval(row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue
			}
			z = v.AsFloat()
			g.aggs[ai].sum += z
			g.aggs[ai].sumsq += z * z
			g.aggs[ai].n++
		}
	}
	return nil
}

func (sh *olaShardState) flushFactRow() {
	for key, rt := range sh.factTotals {
		g := sh.groups[key]
		for ai := range sh.q.aggs {
			if !rt.seen[ai] {
				continue
			}
			z := rt.total[ai]
			g.aggs[ai].sum += z
			g.aggs[ai].sumsq += z * z
			g.aggs[ai].n++
		}
		delete(sh.factTotals, key)
	}
}

// processOLAChunk consumes permuted positions [lo, hi), cut into fixed
// olaShardRows shards. Each shard accumulates into a fresh olaShardState
// and folds into groups in shard order; a single worker runs the shards
// sequentially through the same code, so estimates are bit-identical for
// every worker count. The chunk is bounded work: cancellation is observed
// between chunks by the caller, preserving OLA's graceful degradation.
func processOLAChunk(q *olaQuery, groups map[string]*olaGroup, lo, hi, workers int) error {
	nShards := (hi - lo + olaShardRows - 1) / olaShardRows
	if workers > nShards {
		workers = nShards
	}
	shards := make([]*olaShardState, nShards)
	runShard := func(s int) error {
		sh := newOLAShardState(q)
		slo := lo + s*olaShardRows
		shi := slo + olaShardRows
		if shi > hi {
			shi = hi
		}
		if err := sh.processPermRows(slo, shi); err != nil {
			return err
		}
		shards[s] = sh
		return nil
	}
	if workers <= 1 {
		for s := 0; s < nShards; s++ {
			if err := runShard(s); err != nil {
				return err
			}
		}
	} else {
		var (
			next     int64
			wg       sync.WaitGroup
			once     sync.Once
			firstErr error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Contain shard panics to this worker: the chunk fails with
				// a typed error instead of the panic killing the process.
				defer func() {
					if r := recover(); r != nil {
						once.Do(func() { firstErr = fault.AsError(r) })
					}
				}()
				for {
					s := int(atomic.AddInt64(&next, 1)) - 1
					if s >= nShards {
						return
					}
					if err := runShard(s); err != nil {
						once.Do(func() { firstErr = err })
						return
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}
	// Ordered reduction: shard-local sums fold in shard order.
	for _, sh := range shards {
		for key, g := range sh.groups {
			dst, ok := groups[key]
			if !ok {
				groups[key] = g
				continue
			}
			for ai := range dst.aggs {
				dst.aggs[ai].sum += g.aggs[ai].sum
				dst.aggs[ai].sumsq += g.aggs[ai].sumsq
				dst.aggs[ai].n += g.aggs[ai].n
			}
		}
	}
	return nil
}

// checkpoint materializes the current estimates into an annotated Result.
func (e *OLAEngine) checkpoint(stmt *sqlparse.SelectStmt, aggs []*sqlparse.AggExpr,
	groups map[string]*olaGroup, k, n int, spec ErrorSpec) *Result {

	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	conf := confidencePerEstimate(spec, len(aggs), len(groups))
	out := &Result{Technique: TechniqueOLA, Guarantee: GuaranteeAPosteriori, Spec: spec}
	for j, it := range stmt.Items {
		out.Columns = append(out.Columns, it.Name(j))
	}
	fpc := 1 - float64(k)/math.Max(float64(n), 1)
	if fpc < 0 {
		fpc = 0
	}
	specOK := len(groups) > 0
	for _, key := range keys {
		g := groups[key]
		row := make([]storage.Value, len(stmt.Items))
		items := make([]ItemResult, len(stmt.Items))
		for j, it := range stmt.Items {
			name := it.Name(j)
			switch node := it.Expr.(type) {
			case *sqlparse.AggExpr:
				a := g.aggs[node.Slot]
				est, variance := olaEstimate(node.Func, a, k, n, fpc)
				val := storage.Float64(est)
				if node.Func == sqlparse.AggCount {
					val = storage.Int64(int64(est + 0.5))
				}
				row[j] = val
				iv := stats.CLTInterval(est, variance, math.Max(a.n, 2), conf)
				rel := iv.RelHalfWidth(est)
				items[j] = ItemResult{Name: name, Value: val, IsAggregate: true,
					HasCI: true, CI: iv, RelHalfWidth: rel,
					Variance: variance, SampleN: math.Max(a.n, 2)}
				if rel > spec.RelError {
					specOK = false
				}
			case *expr.ColRef:
				// Bare group column: position matches GroupBy order.
				idx := groupColumnIndex(stmt, node.Name)
				var v storage.Value
				if idx >= 0 && idx < len(g.vals) {
					v = g.vals[idx]
				}
				row[j] = v
				items[j] = ItemResult{Name: name, Value: v}
			default:
				row[j] = storage.Value{}
				items[j] = ItemResult{Name: name}
			}
		}
		out.Rows = append(out.Rows, row)
		out.Items = append(out.Items, items)
	}
	out.Diagnostics.SpecSatisfied = specOK
	return out
}

// olaEstimate scales group accumulators to population estimates under
// simple random sampling of k of n rows.
func olaEstimate(fn sqlparse.AggFunc, a olaAgg, k, n int, fpc float64) (est, variance float64) {
	kk := float64(k)
	nn := float64(n)
	switch fn {
	case sqlparse.AggAvg:
		if a.n == 0 {
			return 0, 0
		}
		mean := a.sum / a.n
		if a.n < 2 {
			return mean, mean * mean
		}
		s2 := (a.sumsq - a.sum*a.sum/a.n) / (a.n - 1)
		return mean, s2 / a.n * fpc
	default: // SUM and COUNT share the z-scaling form
		zbar := a.sum / kk
		est = nn * zbar
		// s_z² over all k rows (zeros included for out-of-group rows).
		sz2 := (a.sumsq - kk*zbar*zbar) / math.Max(kk-1, 1)
		variance = nn * nn * fpc * sz2 / kk
		return est, variance
	}
}

func groupColumnIndex(stmt *sqlparse.SelectStmt, col string) int {
	for i, g := range stmt.GroupBy {
		if c, ok := g.(*expr.ColRef); ok && c.Name == col {
			return i
		}
	}
	return -1
}

// olaJoin is one fully-built dimension of an OLA join: the fact table
// streams, each fact row probes the dimension hash table.
type olaJoin struct {
	dimSchema storage.Schema
	leftKeys  []expr.Expr // bound to the combined schema left of this dim
	ht        map[string][][]storage.Value
	residual  expr.Expr // bound to the combined schema including this dim
}

// buildOLAJoin materializes a dimension hash table for one join clause.
func (e *OLAEngine) buildOLAJoin(jc sqlparse.JoinClause, leftSchema storage.Schema) (*olaJoin, error) {
	dim, err := e.Catalog.Table(jc.Table.Name)
	if err != nil {
		return nil, err
	}
	// Build from a snapshot so the hash table is consistent under
	// concurrent appends to the dimension.
	dim = dim.Snapshot()
	if dim.NumRows() > e.Config.MaxBuildRows {
		return nil, fmt.Errorf("core: OLA join table %s has %d rows, above MaxBuildRows %d",
			jc.Table.Name, dim.NumRows(), e.Config.MaxBuildRows)
	}
	dimSchema := dim.Schema()
	j := &olaJoin{dimSchema: dimSchema.Clone(), ht: make(map[string][][]storage.Value)}

	var rightKeys []expr.Expr
	var rest []expr.Expr
	for _, c := range splitAndExpr(expr.Clone(jc.On)) {
		if eq, ok := c.(*expr.Binary); ok && eq.Op == expr.OpEq {
			lc, rc := expr.Columns(eq.L), expr.Columns(eq.R)
			switch {
			case coveredBySchema(lc, leftSchema) && coveredBySchema(rc, dimSchema):
				if err := expr.Bind(eq.L, leftSchema); err != nil {
					return nil, err
				}
				if err := expr.Bind(eq.R, dimSchema); err != nil {
					return nil, err
				}
				j.leftKeys = append(j.leftKeys, eq.L)
				rightKeys = append(rightKeys, eq.R)
				continue
			case coveredBySchema(rc, leftSchema) && coveredBySchema(lc, dimSchema):
				if err := expr.Bind(eq.R, leftSchema); err != nil {
					return nil, err
				}
				if err := expr.Bind(eq.L, dimSchema); err != nil {
					return nil, err
				}
				j.leftKeys = append(j.leftKeys, eq.R)
				rightKeys = append(rightKeys, eq.L)
				continue
			}
		}
		rest = append(rest, c)
	}
	if len(j.leftKeys) == 0 {
		return nil, fmt.Errorf("core: OLA join with %s needs an equi-key", jc.Table.Name)
	}
	if len(rest) > 0 {
		combined := append(leftSchema.Clone(), dimSchema...)
		j.residual = combineAndExpr(rest)
		if err := expr.Bind(j.residual, combined); err != nil {
			return nil, err
		}
	}

	keyVals := make([]storage.Value, len(rightKeys))
	for i := 0; i < dim.NumRows(); i++ {
		row := dim.Row(i)
		r := expr.ValuesRow(row)
		null := false
		for k, ke := range rightKeys {
			v, err := ke.Eval(r)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			keyVals[k] = v
		}
		if null {
			continue
		}
		key := sampleKey(keyVals)
		j.ht[key] = append(j.ht[key], row)
	}
	return j, nil
}

// probe expands one partial combined row through this dimension.
func (j *olaJoin) probe(left []storage.Value) ([][]storage.Value, error) {
	r := expr.ValuesRow(left)
	keyVals := make([]storage.Value, len(j.leftKeys))
	for k, ke := range j.leftKeys {
		v, err := ke.Eval(r)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		keyVals[k] = v
	}
	matches := j.ht[sampleKey(keyVals)]
	if len(matches) == 0 {
		return nil, nil
	}
	out := make([][]storage.Value, 0, len(matches))
	for _, m := range matches {
		combined := make([]storage.Value, 0, len(left)+len(m))
		combined = append(combined, left...)
		combined = append(combined, m...)
		if j.residual != nil {
			ok, err := expr.EvalBool(j.residual, expr.ValuesRow(combined))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, combined)
	}
	return out, nil
}

func splitAndExpr(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(splitAndExpr(b.L), splitAndExpr(b.R)...)
	}
	return []expr.Expr{e}
}

func combineAndExpr(list []expr.Expr) expr.Expr {
	out := list[0]
	for _, e := range list[1:] {
		out = &expr.Binary{Op: expr.OpAnd, L: out, R: e}
	}
	return out
}

func coveredBySchema(cols []string, schema storage.Schema) bool {
	for _, c := range cols {
		if schema.ColumnIndex(c) < 0 {
			return false
		}
	}
	return true
}

// supported checks the OLA engine's query class.
func (e *OLAEngine) supported(stmt *sqlparse.SelectStmt) (bool, string) {
	for _, jc := range stmt.Joins {
		dim, err := e.Catalog.Table(jc.Table.Name)
		if err != nil {
			return false, err.Error()
		}
		if dim.NumRows() > e.Config.MaxBuildRows {
			return false, fmt.Sprintf("join table %s too large to build (%d rows)",
				jc.Table.Name, dim.NumRows())
		}
	}
	if ok, reason := supportedForSampling(stmt); !ok {
		return false, reason
	}
	for _, a := range stmt.Aggregates() {
		if !a.Func.Linear() {
			return false, fmt.Sprintf("aggregate %s is not incrementally estimable by OLA", a)
		}
	}
	if stmt.Having != nil || len(stmt.OrderBy) > 0 || stmt.Limit >= 0 {
		return false, "HAVING/ORDER BY/LIMIT not supported by OLA"
	}
	for _, it := range stmt.Items {
		switch n := it.Expr.(type) {
		case *sqlparse.AggExpr:
		case *expr.ColRef:
			if groupColumnIndex(stmt, n.Name) < 0 {
				return false, fmt.Sprintf("select item %s is not a group column", n.Name)
			}
		default:
			return false, "OLA supports only bare aggregates and group columns as select items"
		}
	}
	return true, ""
}

// tableRowAdapter adapts a storage table row to expr.Row.
type tableRowAdapter struct {
	t   *storage.Table
	idx int
}

// ColumnValue implements expr.Row.
func (r tableRowAdapter) ColumnValue(i int) storage.Value { return r.t.Column(i).Value(r.idx) }

// sampleKey is groupKeyOf for core (avoids an exec dependency cycle).
func sampleKey(vals []storage.Value) string {
	if len(vals) == 0 {
		return ""
	}
	key := vals[0].GroupKey()
	for _, v := range vals[1:] {
		key += "\x1f" + v.GroupKey()
	}
	return key
}
