package core

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/shard"
	"repro/internal/sqlparse"
)

// shardGroupFor returns the shard group the statement can scatter over,
// or nil to run unsharded. Only single-table aggregate queries scatter;
// everything else runs against the base table, which remains the ingest
// surface and always holds every row.
func shardGroupFor(m *shard.Map, stmt *sqlparse.SelectStmt) *shard.Group {
	if m == nil || len(stmt.Joins) > 0 || !stmt.HasAggregates() {
		return nil
	}
	return m.Get(stmt.From.Name)
}

// shardRun is the outcome of one scatter-gather execution, before engine
// annotation.
type shardRun struct {
	raw     *exec.Result
	summary *ShardExecSummary
	// messages are engine notes about degradation and extrapolation.
	messages []string
	degraded bool
	// sampledPop is the population actually subject to sampling (covered
	// rows), the denominator for SampleFraction.
	sampledPop int64
	// moments holds per-shard slot moments (contract pilots only; nil
	// entries mark failed/pruned shards), and rows the matching per-shard
	// populations in shard order.
	moments [][]exec.SlotMoment
	rows    []int
}

// runSharded scatters the statement over the group and finalizes the
// merged partial under the already-built base plan p, so the gather-side
// operator chain (HAVING/projection/sort/limit) is byte-for-byte the one
// an unsharded run would execute. smp, when non-nil, is the sampler spec
// each shard applies with an independently derived seed; nil runs exact.
//
// Lost shards degrade the result instead of failing it. When the group is
// hash-partitioned and sampling is in effect, the survivors are an
// unbiased window on the table, so totals are extrapolated by
// total/covered population with variances scaled by its square — the CI
// stays honest about the full-table estimate. Range-sharded losses are
// systematic gaps and exact runs carry no variance to widen, so neither
// extrapolates; the caller downgrades the guarantee instead.
func runSharded(ctx context.Context, g *shard.Group, stmt *sqlparse.SelectStmt, p plan.Node,
	smp *sample.Spec, workers int, opts ...func(*shard.ExecOptions)) (*shardRun, error) {

	eo := shard.ExecOptions{
		Workers:       workers,
		Sample:        smp,
		AllowDegraded: true,
	}
	for _, o := range opts {
		o(&eo)
	}
	sres, err := g.Scatter(ctx, stmt, eo)
	if err != nil {
		return nil, err
	}

	sum := &ShardExecSummary{
		Table:    g.Name(),
		Count:    g.NumShards(),
		Key:      g.Key().String(),
		Degraded: sres.Failed,
		Pruned:   sres.Pruned,
	}
	for _, o := range sres.Outcomes {
		sum.RowsPerShard = append(sum.RowsPerShard, o.Rows)
	}
	sum.CoverageFraction = 1
	if sres.TotalRows > 0 {
		sum.CoverageFraction = float64(sres.CoveredRows) / float64(sres.TotalRows)
	}

	run := &shardRun{summary: sum, degraded: sres.Degraded(),
		moments: sres.ShardMoments, rows: sum.RowsPerShard}
	if smp != nil {
		run.sampledPop = int64(sres.CoveredRows)
	}
	if sres.Degraded() {
		run.messages = append(run.messages, fmt.Sprintf(
			"shard: %d/%d shards unavailable %v; answered from survivors covering %.1f%% of rows",
			len(sres.Failed), g.NumShards(), sres.Failed, 100*sum.CoverageFraction))
		switch {
		case smp != nil && g.Key().Kind == shard.KeyHash &&
			sres.CoveredRows > 0 && sres.CoveredRows < sres.TotalRows:
			r := float64(sres.TotalRows) / float64(sres.CoveredRows)
			sres.Partial.ScaleForCoverage(r)
			sum.Extrapolated = true
			run.messages = append(run.messages, fmt.Sprintf(
				"shard: extrapolated totals ×%.4g — hash shards are an unbiased window, variance scaled ×%.4g",
				r, r*r))
		case smp == nil:
			run.messages = append(run.messages,
				"shard: no extrapolation — exact partials carry no variance to widen; totals cover surviving shards only")
		default:
			run.messages = append(run.messages,
				"shard: no extrapolation — lost range shards are a systematic gap; totals cover surviving shards only")
		}
	}

	raw, err := exec.FinalizeAggPartial(ctx, p, sres.Partial)
	if err != nil {
		return nil, err
	}
	run.raw = raw
	return run, nil
}
