package core

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// detailWith builds a GroupDetail with the given per-slot estimates and
// variances, all from n=100 weighted observations.
func detailWith(ests, vars []float64) *exec.GroupDetail {
	d := &exec.GroupDetail{GroupN: 100}
	for i := range ests {
		d.Aggs = append(d.Aggs, exec.AggDetail{
			Estimate: ests[i], Variance: vars[i], N: 100, Weighted: true, Supported: true})
	}
	return d
}

func TestItemIntervalSingleAggregate(t *testing.T) {
	agg := &sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 0}
	d := detailWith([]float64{1000}, []float64{100})
	iv, isAgg, ok := itemInterval(agg, d, 0.95)
	if !isAgg || !ok {
		t.Fatalf("isAgg=%v ok=%v", isAgg, ok)
	}
	if !iv.Contains(1000) {
		t.Errorf("interval %v should contain the estimate", iv)
	}
	// Half width ≈ z * sqrt(100) = ~19.6 for normal, a bit more for t(99).
	if iv.HalfWidth() < 15 || iv.HalfWidth() > 25 {
		t.Errorf("half width = %v", iv.HalfWidth())
	}
}

func TestItemIntervalExactAggregate(t *testing.T) {
	agg := &sqlparse.AggExpr{Func: sqlparse.AggCount, Slot: 0}
	d := &exec.GroupDetail{Aggs: []exec.AggDetail{{Estimate: 42, N: 42, Supported: true}}}
	iv, isAgg, ok := itemInterval(agg, d, 0.95)
	if !isAgg || !ok {
		t.Fatal("exact aggregate must still be annotated")
	}
	if iv.Lo != 42 || iv.Hi != 42 {
		t.Errorf("exact aggregate interval must be degenerate: %v", iv)
	}
}

func TestItemIntervalUnsupportedAggregate(t *testing.T) {
	agg := &sqlparse.AggExpr{Func: sqlparse.AggMax, Slot: 0}
	d := &exec.GroupDetail{Aggs: []exec.AggDetail{{Estimate: 5, Weighted: true, Supported: false}}}
	_, isAgg, ok := itemInterval(agg, d, 0.95)
	if !isAgg || ok {
		t.Error("unsupported aggregate must report isAgg && !ok")
	}
}

func TestItemIntervalRatioOfSums(t *testing.T) {
	// SUM(a)/SUM(b) with tight component intervals.
	ratio := &expr.Binary{Op: expr.OpDiv,
		L: &sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 0},
		R: &sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 1},
	}
	d := detailWith([]float64{1000, 500}, []float64{1, 1})
	iv, isAgg, ok := itemInterval(ratio, d, 0.95)
	if !isAgg || !ok {
		t.Fatalf("ratio: isAgg=%v ok=%v", isAgg, ok)
	}
	if !iv.Contains(2) {
		t.Errorf("ratio interval %v should contain 2", iv)
	}
	if iv.Width() > 0.1 {
		t.Errorf("tight components give a tight ratio: %v", iv)
	}
	// Denominator straddling zero blows up honestly.
	d2 := detailWith([]float64{1000, 0}, []float64{1, 100})
	iv, _, ok = itemInterval(ratio, d2, 0.95)
	if !ok {
		t.Fatal("zero-straddling denominator still produces an (unbounded) interval")
	}
	if !math.IsInf(iv.Hi, 1) && !math.IsInf(iv.Lo, -1) {
		t.Errorf("expected unbounded interval, got %v", iv)
	}
}

func TestItemIntervalScaledAggregate(t *testing.T) {
	// SUM(x) * 2 + 10
	e := &expr.Binary{Op: expr.OpAdd,
		L: &expr.Binary{Op: expr.OpMul,
			L: &sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 0},
			R: &expr.Lit{Val: storage.Int64(2)}},
		R: &expr.Lit{Val: storage.Int64(10)},
	}
	d := detailWith([]float64{100}, []float64{4})
	iv, isAgg, ok := itemInterval(e, d, 0.95)
	if !isAgg || !ok {
		t.Fatal("scaled aggregate must propagate")
	}
	if !iv.Contains(210) {
		t.Errorf("interval %v should contain 210", iv)
	}
	// Negation flips bounds.
	neg := &expr.Unary{Op: expr.OpNeg, X: &sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 0}}
	nv, _, ok := itemInterval(neg, d, 0.95)
	if !ok || nv.Hi > 0 {
		t.Errorf("negated interval = %v", nv)
	}
}

func TestItemIntervalMixedGroupAggregate(t *testing.T) {
	// g + SUM(x): no defensible interval.
	e := &expr.Binary{Op: expr.OpAdd,
		L: &expr.ColRef{Name: "g"},
		R: &sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 0},
	}
	d := detailWith([]float64{100}, []float64{4})
	_, isAgg, ok := itemInterval(e, d, 0.95)
	if !isAgg || ok {
		t.Error("mixed group+aggregate items must refuse a CI")
	}
}

func TestItemIntervalFunctionOfAggregate(t *testing.T) {
	e := &expr.Call{Name: "SQRT", Args: []expr.Expr{
		&sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 0}}}
	d := detailWith([]float64{100}, []float64{4})
	_, isAgg, ok := itemInterval(e, d, 0.95)
	if !isAgg || ok {
		t.Error("functions of aggregates have no closed-form propagation")
	}
}

func TestItemIntervalNilDetail(t *testing.T) {
	agg := &sqlparse.AggExpr{Func: sqlparse.AggSum, Slot: 0}
	_, isAgg, ok := itemInterval(agg, nil, 0.95)
	if !isAgg || ok {
		t.Error("missing detail must refuse a CI")
	}
}

func TestAnnotateSpecSatisfaction(t *testing.T) {
	// Build a tiny exec.Result by hand: one group, one SUM with a CI that
	// misses a tight spec but meets a loose one.
	stmt := parse(t, "SELECT SUM(x) AS s FROM t")
	res := &exec.Result{
		Schema: storage.Schema{{Name: "s", Type: storage.TypeFloat64}},
		Rows:   [][]storage.Value{{storage.Float64(1000)}},
		Details: []*exec.GroupDetail{
			{GroupN: 50, Aggs: []exec.AggDetail{
				{Estimate: 1000, Variance: 2500, N: 50, Weighted: true, Supported: true}}},
		},
	}
	tight := annotate(stmt, res, ErrorSpec{RelError: 0.01, Confidence: 0.95},
		TechniqueOnline, GuaranteeAPosteriori)
	if tight.Diagnostics.SpecSatisfied {
		t.Error("1% spec should not be satisfied with sd=50 on 1000")
	}
	loose := annotate(stmt, res, ErrorSpec{RelError: 0.5, Confidence: 0.95},
		TechniqueOnline, GuaranteeAPosteriori)
	if !loose.Diagnostics.SpecSatisfied {
		t.Errorf("50%% spec should be satisfied: rel=%v", loose.MaxRelHalfWidth())
	}
	if tight.MaxRelHalfWidth() <= 0 {
		t.Error("annotated aggregate should have a positive relative half-width")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Columns: []string{"a", "b"},
		Rows: [][]storage.Value{{storage.Int64(1), storage.Float64(2.5)}}}
	if r.ColumnIndex("b") != 1 || r.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex")
	}
	if r.Float(0, 1) != 2.5 {
		t.Error("Float")
	}
	if r.NumRows() != 1 {
		t.Error("NumRows")
	}
}
