// Package workload generates deterministic synthetic datasets and query
// workloads for the experiment suite: a TPC-H-like star schema with
// tunable Zipf skew (substituting for the proprietary benchmarks used by
// the AQP literature), a single-table skewed event log, parameterized
// query templates with query-column-set (QCS) metadata for offline sample
// planning, workload drift, and update streams for staleness experiments.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/storage"
)

// Config controls dataset generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// LineitemRows is the fact-table size; dimension sizes derive from it.
	LineitemRows int
	// Skew is the Zipf exponent for skewed columns (0 disables skew).
	Skew float64
	// BlockSize overrides the storage block size (0 = default).
	BlockSize int
}

// Star holds the generated star-schema catalog and its scale facts.
type Star struct {
	Catalog   *storage.Catalog
	Lineitem  *storage.Table
	Orders    *storage.Table
	Customer  *storage.Table
	Part      *storage.Table
	Supplier  *storage.Table
	NumOrders int
	rng       *rand.Rand
	cfg       Config
}

var (
	returnFlags = []string{"R", "A", "N"}
	lineStatus  = []string{"O", "F"}
	shipModes   = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	brands      = makeNames("Brand#", 25)
	statuses    = []string{"O", "F", "P"}
)

func makeNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i+1)
	}
	return out
}

// GenerateStar builds the star schema. Dimension sizes: orders = L/4,
// customer = orders/10, part = L/20, supplier = L/100 (all at least 8).
func GenerateStar(cfg Config) (*Star, error) {
	if cfg.LineitemRows <= 0 {
		return nil, fmt.Errorf("workload: LineitemRows must be positive")
	}
	bs := cfg.BlockSize
	if bs <= 0 {
		bs = storage.DefaultBlockSize
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Star{Catalog: storage.NewCatalog(), rng: rng, cfg: cfg}

	nOrders := maxInt(cfg.LineitemRows/4, 8)
	nCust := maxInt(nOrders/10, 8)
	nPart := maxInt(cfg.LineitemRows/20, 8)
	nSupp := maxInt(cfg.LineitemRows/100, 8)
	s.NumOrders = nOrders

	s.Supplier = storage.NewTableWithBlockSize("supplier", storage.Schema{
		{Name: "s_suppkey", Type: storage.TypeInt64},
		{Name: "s_nationkey", Type: storage.TypeInt64},
		{Name: "s_acctbal", Type: storage.TypeFloat64},
	}, bs)
	for i := 0; i < nSupp; i++ {
		if err := s.Supplier.AppendRow(
			storage.Int64(int64(i+1)),
			storage.Int64(int64(rng.Intn(25))),
			storage.Float64(round2(rng.Float64()*10000-1000)),
		); err != nil {
			return nil, err
		}
	}

	s.Part = storage.NewTableWithBlockSize("part", storage.Schema{
		{Name: "p_partkey", Type: storage.TypeInt64},
		{Name: "p_brand", Type: storage.TypeString},
		{Name: "p_size", Type: storage.TypeInt64},
		{Name: "p_retailprice", Type: storage.TypeFloat64},
	}, bs)
	for i := 0; i < nPart; i++ {
		if err := s.Part.AppendRow(
			storage.Int64(int64(i+1)),
			storage.Str(brands[rng.Intn(len(brands))]),
			storage.Int64(int64(rng.Intn(50)+1)),
			storage.Float64(round2(900+rng.Float64()*1100)),
		); err != nil {
			return nil, err
		}
	}

	s.Customer = storage.NewTableWithBlockSize("customer", storage.Schema{
		{Name: "c_custkey", Type: storage.TypeInt64},
		{Name: "c_mktsegment", Type: storage.TypeString},
		{Name: "c_nationkey", Type: storage.TypeInt64},
		{Name: "c_acctbal", Type: storage.TypeFloat64},
	}, bs)
	for i := 0; i < nCust; i++ {
		if err := s.Customer.AppendRow(
			storage.Int64(int64(i+1)),
			storage.Str(segments[rng.Intn(len(segments))]),
			storage.Int64(int64(rng.Intn(25))),
			storage.Float64(round2(rng.Float64()*10000-1000)),
		); err != nil {
			return nil, err
		}
	}

	s.Orders = storage.NewTableWithBlockSize("orders", storage.Schema{
		{Name: "o_orderkey", Type: storage.TypeInt64},
		{Name: "o_custkey", Type: storage.TypeInt64},
		{Name: "o_orderdate", Type: storage.TypeInt64}, // days since epoch start
		{Name: "o_totalprice", Type: storage.TypeFloat64},
		{Name: "o_orderpriority", Type: storage.TypeString},
		{Name: "o_orderstatus", Type: storage.TypeString},
	}, bs)
	custPick := newKeyPicker(rng, nCust, cfg.Skew)
	for i := 0; i < nOrders; i++ {
		if err := s.Orders.AppendRow(
			storage.Int64(int64(i+1)),
			storage.Int64(custPick()),
			storage.Int64(int64(rng.Intn(2557))), // ~7 years of days
			storage.Float64(round2(1000+rng.Float64()*450000)),
			storage.Str(priorities[rng.Intn(len(priorities))]),
			storage.Str(statuses[rng.Intn(len(statuses))]),
		); err != nil {
			return nil, err
		}
	}

	s.Lineitem = storage.NewTableWithBlockSize("lineitem", storage.Schema{
		{Name: "l_orderkey", Type: storage.TypeInt64},
		{Name: "l_partkey", Type: storage.TypeInt64},
		{Name: "l_suppkey", Type: storage.TypeInt64},
		{Name: "l_quantity", Type: storage.TypeFloat64},
		{Name: "l_extendedprice", Type: storage.TypeFloat64},
		{Name: "l_discount", Type: storage.TypeFloat64},
		{Name: "l_tax", Type: storage.TypeFloat64},
		{Name: "l_shipdate", Type: storage.TypeInt64},
		{Name: "l_returnflag", Type: storage.TypeString},
		{Name: "l_linestatus", Type: storage.TypeString},
		{Name: "l_shipmode", Type: storage.TypeString},
	}, bs)
	orderPick := newKeyPicker(rng, nOrders, cfg.Skew)
	partPick := newKeyPicker(rng, nPart, cfg.Skew)
	rows := make([][]storage.Value, 0, 4096)
	for i := 0; i < cfg.LineitemRows; i++ {
		qty := float64(rng.Intn(50) + 1)
		price := round2(qty * (900 + rng.Float64()*1100))
		rows = append(rows, []storage.Value{
			storage.Int64(orderPick()),
			storage.Int64(partPick()),
			storage.Int64(int64(rng.Intn(nSupp) + 1)),
			storage.Float64(qty),
			storage.Float64(price),
			storage.Float64(round2(rng.Float64() * 0.1)),
			storage.Float64(round2(rng.Float64() * 0.08)),
			storage.Int64(int64(rng.Intn(2557))),
			storage.Str(returnFlags[rng.Intn(len(returnFlags))]),
			storage.Str(lineStatus[rng.Intn(len(lineStatus))]),
			storage.Str(shipModes[rng.Intn(len(shipModes))]),
		})
		if len(rows) == cap(rows) {
			if err := s.Lineitem.AppendRows(rows); err != nil {
				return nil, err
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		if err := s.Lineitem.AppendRows(rows); err != nil {
			return nil, err
		}
	}

	for _, t := range []*storage.Table{s.Lineitem, s.Orders, s.Customer, s.Part, s.Supplier} {
		if err := s.Catalog.Add(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newKeyPicker returns a generator of keys in [1, n]: uniform when skew is
// 0, Zipf-distributed otherwise (so some keys are far hotter than others).
func newKeyPicker(rng *rand.Rand, n int, skew float64) func() int64 {
	if skew <= 0 {
		return func() int64 { return int64(rng.Intn(n) + 1) }
	}
	z := rand.NewZipf(rng, math.Max(skew, 1.001), 1, uint64(n-1))
	return func() int64 { return int64(z.Uint64()) + 1 }
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// Events is a single skewed event-log table for group-coverage and
// selectivity experiments.
type Events struct {
	Catalog *storage.Catalog
	Table   *storage.Table
	// GroupSizes is the exact per-group row count, keyed by group id.
	GroupSizes map[int64]int
	NumGroups  int
}

// EventsConfig controls event-log generation.
type EventsConfig struct {
	Seed      int64
	Rows      int
	NumGroups int
	// Skew is the Zipf exponent over groups: higher = heavier head.
	Skew float64
	// ValueDist selects the value distribution: "uniform", "exp",
	// "lognormal", or "pareto" (α=1.5 — infinite variance, the regime
	// where outlier indexing matters). Default "exp".
	ValueDist string
	BlockSize int
}

// GenerateEvents builds the skewed event log: ev_group (Zipf), ev_user,
// ev_value (per ValueDist), ev_ts, ev_flag.
func GenerateEvents(cfg EventsConfig) (*Events, error) {
	if cfg.Rows <= 0 || cfg.NumGroups <= 0 {
		return nil, fmt.Errorf("workload: Rows and NumGroups must be positive")
	}
	bs := cfg.BlockSize
	if bs <= 0 {
		bs = storage.DefaultBlockSize
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := storage.NewTableWithBlockSize("events", storage.Schema{
		{Name: "ev_group", Type: storage.TypeInt64},
		{Name: "ev_user", Type: storage.TypeInt64},
		{Name: "ev_value", Type: storage.TypeFloat64},
		{Name: "ev_ts", Type: storage.TypeInt64},
		{Name: "ev_flag", Type: storage.TypeBool},
	}, bs)
	pick := newKeyPicker(rng, cfg.NumGroups, cfg.Skew)
	val := func() float64 { return rng.ExpFloat64() * 100 }
	switch cfg.ValueDist {
	case "uniform":
		val = func() float64 { return rng.Float64() * 200 }
	case "lognormal":
		val = func() float64 { return math.Exp(rng.NormFloat64()*1.0 + 3) }
	case "pareto":
		val = func() float64 {
			u := rng.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			return math.Pow(u, -1/1.5) // Pareto(α=1.5, xm=1)
		}
	}
	ev := &Events{Catalog: storage.NewCatalog(), Table: tbl,
		GroupSizes: make(map[int64]int), NumGroups: cfg.NumGroups}
	rows := make([][]storage.Value, 0, 4096)
	for i := 0; i < cfg.Rows; i++ {
		g := pick()
		ev.GroupSizes[g]++
		rows = append(rows, []storage.Value{
			storage.Int64(g),
			storage.Int64(int64(rng.Intn(cfg.Rows/10 + 1))),
			storage.Float64(val()),
			storage.Int64(int64(i)),
			storage.Bool(rng.Float64() < 0.5),
		})
		if len(rows) == cap(rows) {
			if err := tbl.AppendRows(rows); err != nil {
				return nil, err
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		if err := tbl.AppendRows(rows); err != nil {
			return nil, err
		}
	}
	if err := ev.Catalog.Add(tbl); err != nil {
		return nil, err
	}
	return ev, nil
}

// AppendShifted appends n rows to the events table whose values are
// multiplied by factor — an update stream that drifts the distribution,
// invalidating offline samples (the staleness experiment).
func (e *Events) AppendShifted(n int, factor float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	pick := newKeyPicker(rng, e.NumGroups, 0)
	base := e.Table.NumRows()
	rows := make([][]storage.Value, 0, n)
	for i := 0; i < n; i++ {
		g := pick()
		e.GroupSizes[g]++
		rows = append(rows, []storage.Value{
			storage.Int64(g),
			storage.Int64(int64(rng.Intn(n + 1))),
			storage.Float64(rng.ExpFloat64() * 100 * factor),
			storage.Int64(int64(base + i)),
			storage.Bool(rng.Float64() < 0.5),
		})
	}
	return e.Table.AppendRows(rows)
}
