package workload

import (
	"fmt"
	"math/rand"
)

// Template is a parameterized query with query-column-set (QCS) metadata.
// The QCS — the set of grouping and equality-filter columns — is what
// offline sample-selection systems key their stratified samples on.
type Template struct {
	// Name identifies the template.
	Name string
	// Table is the fact table the template aggregates over.
	Table string
	// QCS is the template's query column set.
	QCS []string
	// Instantiate renders one concrete SQL query.
	Instantiate func(rng *rand.Rand) string
}

// StarTemplates returns the query templates over the star schema used by
// the experiment suite: simple aggregation, selective filters, group-bys
// of varying cardinality, and joins.
func StarTemplates() []Template {
	return []Template{
		{
			Name:  "sum-revenue",
			Table: "lineitem",
			QCS:   nil,
			Instantiate: func(rng *rand.Rand) string {
				return "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem"
			},
		},
		{
			Name:  "pricing-summary",
			Table: "lineitem",
			QCS:   []string{"l_returnflag", "l_linestatus"},
			Instantiate: func(rng *rand.Rand) string {
				cutoff := 2000 + rng.Intn(500)
				return fmt.Sprintf(`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
					SUM(l_extendedprice) AS sum_price, AVG(l_discount) AS avg_disc, COUNT(*) AS n
					FROM lineitem WHERE l_shipdate <= %d
					GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`, cutoff)
			},
		},
		{
			Name:  "forecast-revenue",
			Table: "lineitem",
			QCS:   nil,
			Instantiate: func(rng *rand.Rand) string {
				lo := rng.Intn(2000)
				return fmt.Sprintf(`SELECT SUM(l_extendedprice * l_discount) AS revenue
					FROM lineitem WHERE l_shipdate BETWEEN %d AND %d
					AND l_discount BETWEEN 0.02 AND 0.06 AND l_quantity < 24`, lo, lo+365)
			},
		},
		{
			Name:  "shipmode-volume",
			Table: "lineitem",
			QCS:   []string{"l_shipmode"},
			Instantiate: func(rng *rand.Rand) string {
				return `SELECT l_shipmode, COUNT(*) AS n, SUM(l_extendedprice) AS total
					FROM lineitem GROUP BY l_shipmode ORDER BY l_shipmode`
			},
		},
		{
			Name:  "order-priority-join",
			Table: "lineitem",
			QCS:   []string{"o_orderpriority"},
			Instantiate: func(rng *rand.Rand) string {
				lo := rng.Intn(2000)
				return fmt.Sprintf(`SELECT o_orderpriority, COUNT(*) AS n
					FROM lineitem JOIN orders ON l_orderkey = o_orderkey
					WHERE o_orderdate BETWEEN %d AND %d
					GROUP BY o_orderpriority ORDER BY o_orderpriority`, lo, lo+120)
			},
		},
		{
			Name:  "avg-quantity",
			Table: "lineitem",
			QCS:   nil,
			Instantiate: func(rng *rand.Rand) string {
				return "SELECT AVG(l_quantity) AS aq, COUNT(*) AS n FROM lineitem"
			},
		},
		{
			Name:  "brand-revenue-join",
			Table: "lineitem",
			QCS:   []string{"p_brand"},
			Instantiate: func(rng *rand.Rand) string {
				return `SELECT p_brand, SUM(l_extendedprice) AS revenue
					FROM lineitem JOIN part ON l_partkey = p_partkey
					GROUP BY p_brand ORDER BY p_brand`
			},
		},
		{
			Name:  "selective-count",
			Table: "lineitem",
			QCS:   []string{"l_shipmode"},
			Instantiate: func(rng *rand.Rand) string {
				mode := shipModes[rng.Intn(len(shipModes))]
				return fmt.Sprintf(`SELECT COUNT(*) AS n, SUM(l_quantity) AS q
					FROM lineitem WHERE l_shipmode = '%s' AND l_quantity > 45`, mode)
			},
		},
	}
}

// EventTemplates returns templates over the skewed events table.
func EventTemplates() []Template {
	return []Template{
		{
			Name:  "group-count",
			Table: "events",
			QCS:   []string{"ev_group"},
			Instantiate: func(rng *rand.Rand) string {
				return "SELECT ev_group, COUNT(*) AS n, SUM(ev_value) AS total FROM events GROUP BY ev_group ORDER BY ev_group"
			},
		},
		{
			Name:  "global-avg",
			Table: "events",
			QCS:   nil,
			Instantiate: func(rng *rand.Rand) string {
				return "SELECT AVG(ev_value) AS m, COUNT(*) AS n FROM events"
			},
		},
		{
			Name:  "flag-sum",
			Table: "events",
			QCS:   []string{"ev_flag"},
			Instantiate: func(rng *rand.Rand) string {
				return "SELECT ev_flag, SUM(ev_value) AS total FROM events GROUP BY ev_flag ORDER BY ev_flag"
			},
		},
	}
}

// Drift models a workload whose template mix changes over time: at time
// t in [0,1], templates are drawn from a mixture that interpolates
// between the Before and After weight vectors. Offline AQP tuned on the
// "before" mix degrades as t grows — the maintenance argument.
type Drift struct {
	Templates []Template
	Before    []float64
	After     []float64
	rng       *rand.Rand
}

// NewDrift builds a drift model; weight vectors must match the template
// count and sum to anything positive (they are normalized).
func NewDrift(templates []Template, before, after []float64, seed int64) (*Drift, error) {
	if len(before) != len(templates) || len(after) != len(templates) {
		return nil, fmt.Errorf("workload: weight vectors must match template count")
	}
	return &Drift{Templates: templates, Before: before, After: after,
		rng: rand.New(rand.NewSource(seed))}, nil
}

// Draw picks a template at time t in [0,1] and instantiates it.
func (d *Drift) Draw(t float64) (Template, string) {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	weights := make([]float64, len(d.Templates))
	var total float64
	for i := range weights {
		weights[i] = (1-t)*d.Before[i] + t*d.After[i]
		total += weights[i]
	}
	x := d.rng.Float64() * total
	for i, w := range weights {
		if x < w {
			tpl := d.Templates[i]
			return tpl, tpl.Instantiate(d.rng)
		}
		x -= w
	}
	tpl := d.Templates[len(d.Templates)-1]
	return tpl, tpl.Instantiate(d.rng)
}
