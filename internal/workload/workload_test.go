package workload

import (
	"math/rand"
	"testing"

	"repro/internal/sqlparse"
)

func TestGenerateStarDeterministic(t *testing.T) {
	a, err := GenerateStar(Config{Seed: 1, LineitemRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStar(Config{Seed: 1, LineitemRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Lineitem.NumRows() != 2000 || b.Lineitem.NumRows() != 2000 {
		t.Fatal("row counts")
	}
	// Same seed, same data.
	for i := 0; i < 100; i++ {
		ra, rb := a.Lineitem.Row(i), b.Lineitem.Row(i)
		for j := range ra {
			if !ra[j].Equal(rb[j]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, ra[j], rb[j])
			}
		}
	}
	// All five tables registered.
	if got := len(a.Catalog.Names()); got != 5 {
		t.Fatalf("tables = %d", got)
	}
}

func TestGenerateStarSizes(t *testing.T) {
	s, err := GenerateStar(Config{Seed: 3, LineitemRows: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Orders.NumRows() != 2500 {
		t.Errorf("orders = %d", s.Orders.NumRows())
	}
	if s.Customer.NumRows() != 250 {
		t.Errorf("customer = %d", s.Customer.NumRows())
	}
	if s.Part.NumRows() != 500 || s.Supplier.NumRows() != 100 {
		t.Errorf("part/supplier = %d/%d", s.Part.NumRows(), s.Supplier.NumRows())
	}
	if _, err := GenerateStar(Config{Seed: 1}); err == nil {
		t.Error("zero rows must error")
	}
}

func TestForeignKeysInRange(t *testing.T) {
	s, err := GenerateStar(Config{Seed: 4, LineitemRows: 5000, Skew: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	okIdx := s.Lineitem.Schema().ColumnIndex("l_orderkey")
	n := int64(s.Orders.NumRows())
	for i := 0; i < s.Lineitem.NumRows(); i++ {
		k := s.Lineitem.Column(okIdx).Value(i).I
		if k < 1 || k > n {
			t.Fatalf("l_orderkey %d out of [1,%d]", k, n)
		}
	}
}

func TestGenerateEventsSkew(t *testing.T) {
	uniform, err := GenerateEvents(EventsConfig{Seed: 5, Rows: 20000, NumGroups: 10})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := GenerateEvents(EventsConfig{Seed: 5, Rows: 20000, NumGroups: 10, Skew: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(gs map[int64]int) int {
		m := 0
		for _, n := range gs {
			if n > m {
				m = n
			}
		}
		return m
	}
	if maxOf(skewed.GroupSizes) <= maxOf(uniform.GroupSizes) {
		t.Error("skewed generation should concentrate mass in hot groups")
	}
	var total int
	for _, n := range uniform.GroupSizes {
		total += n
	}
	if total != 20000 {
		t.Errorf("group sizes sum to %d", total)
	}
}

func TestEventsValueDists(t *testing.T) {
	for _, dist := range []string{"uniform", "exp", "lognormal"} {
		ev, err := GenerateEvents(EventsConfig{Seed: 1, Rows: 500, NumGroups: 5, ValueDist: dist})
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if ev.Table.NumRows() != 500 {
			t.Fatalf("%s: rows = %d", dist, ev.Table.NumRows())
		}
	}
	if _, err := GenerateEvents(EventsConfig{Rows: 0, NumGroups: 5}); err == nil {
		t.Error("zero rows must error")
	}
}

func TestAppendShifted(t *testing.T) {
	ev, err := GenerateEvents(EventsConfig{Seed: 9, Rows: 1000, NumGroups: 5})
	if err != nil {
		t.Fatal(err)
	}
	v0 := ev.Table.Version()
	if err := ev.AppendShifted(500, 3, 42); err != nil {
		t.Fatal(err)
	}
	if ev.Table.NumRows() != 1500 {
		t.Errorf("rows = %d", ev.Table.NumRows())
	}
	if ev.Table.Version() == v0 {
		t.Error("version must bump on append")
	}
}

func TestTemplatesParse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tpl := range append(StarTemplates(), EventTemplates()...) {
		for i := 0; i < 3; i++ {
			sql := tpl.Instantiate(rng)
			if _, err := sqlparse.Parse(sql); err != nil {
				t.Errorf("template %s instance %d: %v\n%s", tpl.Name, i, err, sql)
			}
		}
	}
}

func TestTemplatesRunOnStar(t *testing.T) {
	s, err := GenerateStar(Config{Seed: 6, LineitemRows: 3000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, tpl := range StarTemplates() {
		sql := tpl.Instantiate(rng)
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		if stmt.From.Name != tpl.Table {
			t.Errorf("%s: table mismatch", tpl.Name)
		}
		_ = s
	}
}

func TestDrift(t *testing.T) {
	tpls := EventTemplates()
	d, err := NewDrift(tpls, []float64{1, 0, 0}, []float64{0, 0, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 only template 0 is drawn; at t=1 only template 2.
	for i := 0; i < 20; i++ {
		tpl, _ := d.Draw(0)
		if tpl.Name != tpls[0].Name {
			t.Fatalf("t=0 drew %s", tpl.Name)
		}
		tpl, _ = d.Draw(1)
		if tpl.Name != tpls[2].Name {
			t.Fatalf("t=1 drew %s", tpl.Name)
		}
	}
	// Out-of-range t clamps.
	if tpl, _ := d.Draw(-5); tpl.Name != tpls[0].Name {
		t.Error("t<0 must clamp to 0")
	}
	if _, err := NewDrift(tpls, []float64{1}, []float64{1}, 1); err == nil {
		t.Error("weight length mismatch must error")
	}
}
