package contract

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestVarianceUpperBoundInflates(t *testing.T) {
	v := 4.0
	ub := VarianceUpperBound(v, 20, 0.9)
	if ub <= v {
		t.Fatalf("upper bound %g not above sample variance %g at n=20", ub, v)
	}
	// More pilot data → less inflation.
	ub2 := VarianceUpperBound(v, 2000, 0.9)
	if ub2 >= ub {
		t.Fatalf("bound did not tighten with n: n=20 %g vs n=2000 %g", ub, ub2)
	}
	if ub2 > 1.1*v {
		t.Fatalf("bound at n=2000 should be within 10%% of s²: %g vs %g", ub2, v)
	}
	// Degenerate inputs pass through.
	if got := VarianceUpperBound(v, 1, 0.9); got != v {
		t.Fatalf("df<1 should pass through: %g", got)
	}
	if got := VarianceUpperBound(0, 50, 0.9); got != 0 {
		t.Fatalf("zero variance should pass through: %g", got)
	}
}

// TestRequiredRateMatchesClassicBound checks the rate transform against
// the textbook FPC-corrected sample size: for a population of N rows
// with cv = σ/μ, the sized row count rate·N must equal n₀/(1+n₀/N) with
// n₀ = (z·cv/e)² — the PilotDB bound with finite-population correction.
func TestRequiredRateMatchesClassicBound(t *testing.T) {
	const (
		n       = 100000.0 // population rows
		mean    = 10.0
		sigma   = 25.0
		pilot   = 0.01
		relErr  = 0.02
		conf    = 0.95
		varConf = 0.9
	)
	// Bernoulli HT variance at the pilot rate for a SUM over the
	// population: Var = C·(1-r)/r with C = N·σ² (+ the mean² term for
	// sampling counts is omitted — cv is defined on the value column).
	c := n * sigma * sigma
	e := Estimate{
		Value:    n * mean,
		Variance: c * (1 - pilot) / pilot,
		N:        n * pilot,
	}
	rate, reason := RequiredRate(e, pilot, relErr, conf, varConf)
	if reason != "" {
		t.Fatalf("unexpected sizing failure: %s", reason)
	}
	// Expected: classic bound on the chi-square-inflated variance.
	cvUB := math.Sqrt(VarianceUpperBound(c, e.N, varConf)/n) / mean
	n0 := stats.RequiredSampleSizeForRelError(cvUB, relErr, conf)
	want := n0 / (1 + n0/n)
	got := rate * n
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("sized rows %.3f, classic FPC bound %.3f", got, want)
	}
	if rate <= pilot || rate >= 1 {
		t.Fatalf("rate %g out of expected range (pilot %g)", rate, pilot)
	}

	// Tighter target → strictly larger rate.
	r2, _ := RequiredRate(e, pilot, relErr/2, conf, varConf)
	if r2 <= rate {
		t.Fatalf("halving the target should raise the rate: %g vs %g", r2, rate)
	}
	// Higher confidence → strictly larger rate.
	r3, _ := RequiredRate(e, pilot, relErr, 0.99, varConf)
	if r3 <= rate {
		t.Fatalf("raising confidence should raise the rate: %g vs %g", r3, rate)
	}
}

func TestRequiredRateDegenerate(t *testing.T) {
	good := Estimate{Value: 100, Variance: 10, N: 50}
	if _, reason := RequiredRate(Estimate{Value: 0, Variance: 10, N: 50}, 0.1, 0.05, 0.95, 0.9); reason == "" {
		t.Fatal("zero estimate should be unsizable")
	}
	if _, reason := RequiredRate(Estimate{Value: 5, Variance: 10, N: 1}, 0.1, 0.05, 0.95, 0.9); reason == "" {
		t.Fatal("n<2 should be unsizable")
	}
	if _, reason := RequiredRate(good, 0, 0.05, 0.95, 0.9); reason == "" {
		t.Fatal("unknown pilot fraction should be unsizable")
	}
	if r, reason := RequiredRate(good, 1, 0.05, 0.95, 0.9); reason != "" || r != 1 {
		t.Fatalf("exhaustive pilot should size to 1: %g %q", r, reason)
	}
	// Zero spread: any rate works; no reason, rate 0 (engine clamps up).
	if r, reason := RequiredRate(Estimate{Value: 5, Variance: 0, N: 50}, 0.1, 0.05, 0.95, 0.9); reason != "" || r != 0 {
		t.Fatalf("zero-variance pilot: got %g %q", r, reason)
	}
}

func TestSizeBindingAndBudget(t *testing.T) {
	noisy := Estimate{Value: 1000, Variance: 4e6, N: 400}
	quiet := Estimate{Value: 1000, Variance: 100, N: 400}
	s := Size([]Estimate{quiet, noisy}, 0.01, 0.05, 0.95, Options{})
	if !s.Feasible {
		t.Fatalf("expected feasible: %+v", s)
	}
	only := Size([]Estimate{noisy}, 0.01, 0.05, 0.95, Options{})
	if s.RequiredRate < only.RequiredRate {
		t.Fatalf("binding estimate must dominate: joint %g < solo %g", s.RequiredRate, only.RequiredRate)
	}
	// Bonferroni across two estimates makes the joint requirement
	// strictly larger than the noisy estimate alone.
	if s.RequiredRate <= only.RequiredRate {
		t.Fatalf("confidence split should raise the joint rate: %g vs %g", s.RequiredRate, only.RequiredRate)
	}

	tight := Size([]Estimate{noisy}, 0.01, 0.05, 0.95, Options{BudgetRate: only.RequiredRate / 2})
	if tight.Feasible {
		t.Fatalf("expected infeasible under half budget: %+v", tight)
	}
	if tight.Rate != only.RequiredRate/2 {
		t.Fatalf("infeasible rate should fall back to budget: %g", tight.Rate)
	}
	if tight.Reason == "" {
		t.Fatal("infeasible sizing must carry a reason")
	}

	bad := Size([]Estimate{{Value: 0, Variance: 1, N: 50}}, 0.01, 0.05, 0.95, Options{BudgetRate: 0.5})
	if bad.Feasible || bad.Reason == "" || bad.Rate != 0.5 {
		t.Fatalf("unsizable estimate: %+v", bad)
	}
	empty := Size(nil, 0.01, 0.05, 0.95, Options{})
	if empty.Feasible {
		t.Fatalf("no estimates should be infeasible: %+v", empty)
	}
}

func TestAllocateShards(t *testing.T) {
	strata := []ShardStratum{
		{Rows: 1000, StdDev: 1},
		{Rows: 1000, StdDev: 3},
	}
	rates := AllocateShards(strata, 400)
	if len(rates) != 2 {
		t.Fatalf("want 2 rates, got %v", rates)
	}
	if rates[1] <= rates[0] {
		t.Fatalf("higher-variance shard should get the larger fraction: %v", rates)
	}
	var total float64
	for i, r := range rates {
		if r < 0 || r > 1 {
			t.Fatalf("rate %d out of [0,1]: %v", i, rates)
		}
		total += r * strata[i].Rows
	}
	if total > 401 {
		t.Fatalf("allocation exceeds budget: %g rows", total)
	}
	// Neyman beats proportional: stratified variance at the returned
	// allocation must not exceed the proportional split's.
	sizes := []float64{1000, 1000}
	stddevs := []float64{1, 3}
	neyman := []float64{rates[0] * 1000, rates[1] * 1000}
	prop := []float64{200, 200}
	if v, p := stats.StratifiedTotalVariance(sizes, stddevs, neyman), stats.StratifiedTotalVariance(sizes, stddevs, prop); v > p+1e-9 {
		t.Fatalf("Neyman allocation variance %g exceeds proportional %g", v, p)
	}
}

func TestConcludeVerdicts(t *testing.T) {
	s := &Summary{TargetRelError: 0.05}
	s.Conclude(0.03, false)
	if s.Verdict != VerdictMet {
		t.Fatalf("want met, got %s", s.Verdict)
	}
	s = &Summary{TargetRelError: 0.05}
	s.Conclude(0.08, false)
	if s.Verdict != VerdictMissed || s.Reason == "" {
		t.Fatalf("want missed with reason, got %s %q", s.Verdict, s.Reason)
	}
	// Degraded stage two can never certify, even if the width squeaks in.
	s = &Summary{TargetRelError: 0.05}
	s.Conclude(0.01, true)
	if s.Verdict != VerdictMissed {
		t.Fatalf("degraded run must not report met: %s", s.Verdict)
	}
	s = &Summary{TargetRelError: 0.05, Infeasible: true}
	s.Conclude(0.01, false)
	if s.Verdict != VerdictInfeasible {
		t.Fatalf("infeasible sticks: %s", s.Verdict)
	}
}
