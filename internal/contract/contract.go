// Package contract implements a-priori error contracts: the sizing math
// that turns `WITH ERROR e% CONFIDENCE c%` from an after-the-fact wish
// into a promise. A cheap pilot run estimates each aggregate's variance
// and selectivity; the PilotDB-style sizing bound (with a chi-square
// finite-sample correction on the pilot variance and the finite-
// population correction folded into the rate transform) then determines
// the stage-two sampling fraction that makes the CLT half-width land at
// or below the target — or proves that no fraction inside the admission
// budget can, in which case the engine must refuse honestly rather than
// stamp "met" on a guess.
//
// The package is engine-agnostic on purpose: both Bernoulli row sampling
// (Horvitz-Thompson, the online engine) and without-replacement prefix
// sampling (OLA's shuffled scan) have estimator variance of the form
//
//	Var(rate) = C · (1 − rate) / rate
//
// for a constant C the pilot measures, so one sizing rule serves every
// eligible engine, and — because merging per-shard partials in shard
// order is exactly the stratified composition in internal/stats — the
// same rule sizes a scatter-gather run from the composed pilot variance,
// with Neyman allocation deciding how the sized budget splits across
// shards.
package contract

import (
	"math"

	"repro/internal/stats"
)

// Verdict is the contract outcome stamped into Diagnostics.
type Verdict string

const (
	// VerdictMet: stage two ran at the sized fraction and the realized
	// relative CI half-width is at or below the target.
	VerdictMet Verdict = "met"
	// VerdictMissed: the sized run's realized half-width still exceeds
	// the target (pilot variance underestimated the tail), or the run
	// degraded mid-flight — the answer is honest, the promise is not.
	VerdictMissed Verdict = "missed"
	// VerdictInfeasible: sizing proved the target unreachable within the
	// admission budget; the engine degraded to a best-effort a-posteriori
	// CI and says so instead of lying.
	VerdictInfeasible Verdict = "infeasible"
)

// InfeasibleFlag is the diagnostic message token attached when a
// contract is refused; tests and operators grep for it.
const InfeasibleFlag = "contract_infeasible"

// Estimate is one aggregate's pilot moments: the point estimate, the
// estimator's variance at the pilot size, and the number of sampled rows
// behind it.
type Estimate struct {
	Value    float64
	Variance float64
	N        float64
}

// Options tunes sizing.
type Options struct {
	// BudgetRate is the admission budget: the largest stage-two sampling
	// fraction the engine may spend (default 1 = whole table).
	BudgetRate float64
	// VarianceConfidence is the one-sided chi-square confidence level of
	// the finite-sample variance upper bound (default 0.9). Sizing from
	// the raw pilot variance would undershoot roughly half the time.
	VarianceConfidence float64
}

func (o Options) withDefaults() Options {
	if o.BudgetRate <= 0 || o.BudgetRate > 1 {
		o.BudgetRate = 1
	}
	if o.VarianceConfidence <= 0 || o.VarianceConfidence >= 1 {
		o.VarianceConfidence = 0.9
	}
	return o
}

// Sizing is the stage-two plan for one contract.
type Sizing struct {
	// Rate is the stage-two sampling fraction to run at. When the
	// contract is infeasible this is the budget rate (best effort).
	Rate float64
	// RequiredRate is what the contract actually needs, uncapped.
	RequiredRate float64
	// Feasible reports whether Rate honors the contract.
	Feasible bool
	// Reason is non-empty when sizing itself was impossible (degenerate
	// pilot) or the requirement exceeded the budget.
	Reason string
}

// VarianceUpperBound inflates a sample variance to its one-sided
// (1−level missing mass below) chi-square upper confidence bound:
// df·s²/χ²_{1−level}(df). With df = n−1 pilot observations the true σ²
// exceeds this bound with probability ≤ 1−level.
func VarianceUpperBound(variance, n, level float64) float64 {
	df := n - 1
	if df < 1 || variance <= 0 {
		return variance
	}
	q := stats.ChiSquareQuantile(1-level, df)
	if q <= 0 {
		return variance
	}
	return variance * df / q
}

// RequiredRate sizes stage two for one estimate. Both supported
// estimator families obey Var(rate) = C·(1−rate)/rate, so the pilot at
// pilotRate with variance V gives C = V_ub·pilotRate/(1−pilotRate), and
// solving z²·Var(rate) ≤ (relErr·|value|)² for rate yields
//
//	rate = n0 / (n0 + 1),  n0 = z²·C / (relErr·|value|)²
//
// which is exactly the classic n₀ = (z·cv/e)² sample-size bound
// (stats.RequiredSampleSizeForRelError) with the finite-population
// correction n = n₀/(1+n₀/N) absorbed into the rate transform — no
// population size needed, so selectivity cancels out too.
//
// It returns (rate, "") on success and (0, reason) when the pilot is too
// degenerate to size from. A zero-variance pilot returns rate 0 with no
// reason: no observed spread means any fraction suffices, and the engine
// clamps to its minimum.
func RequiredRate(e Estimate, pilotRate, relErr, conf, varConf float64) (float64, string) {
	switch {
	case relErr <= 0 || conf <= 0 || conf >= 1:
		return 0, "invalid error spec"
	case e.N < 2:
		return 0, "pilot too small to estimate variance (fewer than 2 contributing rows)"
	case e.Value == 0:
		return 0, "pilot estimate is zero; a relative-error target cannot be sized"
	case pilotRate >= 1:
		return 1, "" // the pilot already read everything: exact
	case pilotRate <= 0:
		return 0, "pilot fraction unknown"
	}
	varUB := VarianceUpperBound(e.Variance, e.N, varConf)
	if varUB <= 0 {
		return 0, ""
	}
	c := varUB * pilotRate / (1 - pilotRate)
	cv := math.Sqrt(c) / math.Abs(e.Value)
	n0 := stats.RequiredSampleSizeForRelError(cv, relErr, conf)
	if math.IsNaN(n0) || math.IsInf(n0, 0) {
		return 0, "sizing diverged"
	}
	return n0 / (n0 + 1), ""
}

// Size computes the stage-two sampling fraction for a whole query: the
// target confidence is Bonferroni-split across the estimates (matching
// how the engines annotate multi-aggregate and grouped results), each
// estimate is sized independently, and the binding constraint — the
// largest required rate — wins. An unsizable estimate or a requirement
// past the budget makes the contract infeasible; Rate then falls back to
// the budget so the engine can still return its best a-posteriori effort.
func Size(ests []Estimate, pilotRate, relErr, conf float64, opts Options) Sizing {
	opts = opts.withDefaults()
	s := Sizing{Feasible: true}
	if len(ests) == 0 {
		s.Feasible = false
		s.Reason = "pilot produced no aggregate estimates"
		s.Rate = opts.BudgetRate
		return s
	}
	perEst := stats.AllocateConfidence(conf, len(ests))
	for _, e := range ests {
		r, reason := RequiredRate(e, pilotRate, relErr, perEst, opts.VarianceConfidence)
		if reason != "" {
			s.Feasible = false
			s.Reason = reason
			s.Rate = opts.BudgetRate
			s.RequiredRate = math.Max(s.RequiredRate, opts.BudgetRate)
			return s
		}
		if r > s.RequiredRate {
			s.RequiredRate = r
		}
	}
	s.Rate = s.RequiredRate
	if s.RequiredRate > opts.BudgetRate {
		s.Feasible = false
		s.Reason = "required sampling fraction exceeds the admission budget"
		s.Rate = opts.BudgetRate
	}
	return s
}

// ShardStratum is one shard's pilot state for stage-two allocation.
type ShardStratum struct {
	// Rows is the shard's population size.
	Rows float64
	// StdDev is the per-row standard deviation the pilot observed there
	// (any consistent scale across shards works; only ratios matter).
	StdDev float64
}

// AllocateShards splits a sized stage-two row budget across shards
// Neyman-style (n_h ∝ N_h·S_h) and returns per-shard sampling fractions.
// Because Neyman allocation minimizes the stratified total variance for
// a fixed budget — never worse than the proportional allocation the
// sizing bound assumed — the contract target computed from the composed
// pilot variance still holds under the reallocation. Shards the pilot
// saw no spread in get the minimum allocation.
func AllocateShards(strata []ShardStratum, totalRows float64) []float64 {
	if len(strata) == 0 {
		return nil
	}
	sizes := make([]float64, len(strata))
	stddevs := make([]float64, len(strata))
	for i, st := range strata {
		sizes[i] = st.Rows
		stddevs[i] = st.StdDev
	}
	alloc := stats.NeymanAllocation(sizes, stddevs, totalRows)
	rates := make([]float64, len(alloc))
	for i, n := range alloc {
		if sizes[i] <= 0 {
			rates[i] = 1
			continue
		}
		r := n / sizes[i]
		if r > 1 {
			r = 1
		}
		rates[i] = r
	}
	return rates
}

// Summary is the contract block stamped into Diagnostics and serialized
// to clients: what was promised, what the two stages cost, and whether
// the promise was kept.
type Summary struct {
	// TargetRelError / Confidence echo the contract.
	TargetRelError float64 `json:"target_rel_error"`
	Confidence     float64 `json:"confidence"`

	// PilotRows / FinalRows are sampled-row counts per stage;
	// PilotFraction / FinalFraction the corresponding sampling rates.
	PilotRows     int64   `json:"pilot_rows"`
	PilotFraction float64 `json:"pilot_fraction"`
	FinalRows     int64   `json:"final_rows"`
	FinalFraction float64 `json:"final_fraction"`

	// RequiredFraction is what sizing demanded; BudgetFraction is the
	// admission cap it was checked against.
	RequiredFraction float64 `json:"required_fraction"`
	BudgetFraction   float64 `json:"budget_fraction"`

	// RealizedRelError is the realized relative CI half-width of the
	// final answer — the a-posteriori check on the a-priori promise.
	RealizedRelError float64 `json:"realized_rel_error"`

	Verdict    Verdict `json:"verdict"`
	Infeasible bool    `json:"infeasible,omitempty"`
	Reason     string  `json:"reason,omitempty"`

	// ShardFractions is the Neyman-allocated stage-two fraction per
	// shard, present only for scatter-gather contract runs.
	ShardFractions []float64 `json:"shard_fractions,omitempty"`
}

// Conclude fills in the verdict from the realized error. degraded marks
// runs that lost data mid-stage-two (shard loss, chunk faults): such an
// answer may be honest, but an extrapolated or partial result can never
// certify an a-priori contract, so "met" is off the table.
func (s *Summary) Conclude(realized float64, degraded bool) {
	s.RealizedRelError = realized
	switch {
	case s.Infeasible:
		s.Verdict = VerdictInfeasible
	case degraded:
		s.Verdict = VerdictMissed
		if s.Reason == "" {
			s.Reason = "execution degraded during stage two; refusing to certify the contract"
		}
	case realized <= s.TargetRelError:
		s.Verdict = VerdictMet
	default:
		s.Verdict = VerdictMissed
		if s.Reason == "" {
			s.Reason = "realized half-width exceeded the target despite sizing"
		}
	}
}
