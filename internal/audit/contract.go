package audit

// Contract auditing: CI coverage (audit.go) checks whether the *claimed
// interval* contained the truth; this file checks the stronger a-priori
// promise — a "met" contract verdict asserts the realized error is within
// the target at the stated confidence, so across many audited contract
// answers the fraction whose true error exceeds the target must stay
// within the 1−confidence allowance. The rolling miss rate per technique,
// with Wilson bounds, is the contract error budget.

import (
	"repro/internal/contract"
	"repro/internal/stats"
)

// Contract event kinds delivered to Config.OnEvent.
const (
	// EventContractHeld: an audited "met" answer's true error was within
	// the contracted target.
	EventContractHeld = "contract_held"
	// EventContractBroken: an audited "met" answer's true error exceeded
	// the contracted target — one draw from the 1−confidence allowance.
	EventContractBroken = "contract_broken"
	// EventContractViolation: the rolling broken rate for a technique is
	// confidently above its allowance — the sizing model is optimistic.
	EventContractViolation = "contract_violation"
)

// contractState is the rolling contract-budget window for one technique.
// It rings held/broken outcomes alongside each claim's permitted miss
// rate (1−confidence), since different queries may contract different
// confidences into the same window.
type contractState struct {
	held      *stats.RollingCoverage
	allowance []float64
	next, n   int

	violations int64
	violating  bool
}

// meanAllowanceLocked is the window-average permitted miss rate.
func (cs *contractState) meanAllowance() float64 {
	if cs.n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < cs.n; i++ {
		sum += cs.allowance[i]
	}
	return sum / float64(cs.n)
}

// recordContractLocked folds one audited contract answer into the budget
// window. Only "met" verdicts enter: missed/infeasible verdicts already
// disclaimed the a-priori guarantee at serve time, so they spend no
// budget — the plain CI-coverage estimators still audit them.
func (a *Auditor) recordContractLocked(j *job, cmp compareResult) []Event {
	c := j.claimed.Diagnostics.Contract
	if c == nil {
		return nil
	}
	a.contractAudits++
	if c.Verdict != contract.VerdictMet || len(cmp.items) == 0 {
		return nil
	}
	worst := 0.0
	for _, it := range cmp.items {
		if it.relErr > worst {
			worst = it.relErr
		}
	}
	held := worst <= c.TargetRelError && cmp.unmatched == 0

	cs := a.contracts[j.technique]
	if cs == nil {
		cs = &contractState{
			held:      stats.NewRollingCoverage(a.cfg.Window),
			allowance: make([]float64, a.cfg.Window),
		}
		a.contracts[j.technique] = cs
	}
	cs.held.Push(held)
	cs.allowance[cs.next] = 1 - c.Confidence
	cs.next = (cs.next + 1) % len(cs.allowance)
	if cs.n < len(cs.allowance) {
		cs.n++
	}

	kind := EventContractHeld
	if !held {
		kind = EventContractBroken
		a.contractBroken++
	}
	events := []Event{{Kind: kind, Technique: j.technique, RelError: worst}}

	// Budget verdict: the hold rate should sit at or above the mean
	// contracted confidence. A Wilson upper bound confidently below it
	// means broken contracts are outrunning their allowance.
	if cs.held.N() >= a.cfg.BudgetMinAudits {
		wil := cs.held.Wilson(0.95)
		if want := 1 - cs.meanAllowance(); wil.Hi < want {
			cs.violations++
			a.violations++
			events = append(events, Event{Kind: EventContractViolation, Technique: j.technique})
			if !cs.violating {
				cs.violating = true
				if a.cfg.Logger != nil {
					a.cfg.Logger.Warn("audit: contract budget burn",
						"technique", j.technique, "hold_rate", cs.held.Rate(),
						"wilson_hi", wil.Hi, "required", want, "window", cs.held.N())
				}
			}
		} else {
			cs.violating = false
		}
	}
	return events
}

// ContractCoverage is the rolling contract-budget report for one
// technique.
type ContractCoverage struct {
	Technique string `json:"technique"`
	// Audits counts windowed "met"-verdict answers checked against truth.
	Audits int `json:"audits"`
	Held   int `json:"held"`
	// HoldRate is the fraction held; it should sit at or above Required.
	HoldRate float64 `json:"hold_rate"`
	WilsonLo float64 `json:"wilson_lo"`
	WilsonHi float64 `json:"wilson_hi"`
	// Required is the window-mean contracted confidence.
	Required   float64 `json:"required"`
	BudgetOK   bool    `json:"budget_ok"`
	Violations int64   `json:"violations"`
}

// contractReportLocked snapshots the per-technique contract budgets.
func (a *Auditor) contractReportLocked() []ContractCoverage {
	out := make([]ContractCoverage, 0, len(a.contracts))
	for tech, cs := range a.contracts {
		wil := cs.held.Wilson(0.95)
		cc := ContractCoverage{
			Technique:  tech,
			Audits:     cs.held.N(),
			Held:       cs.held.Hits(),
			HoldRate:   cs.held.Rate(),
			WilsonLo:   wil.Lo,
			WilsonHi:   wil.Hi,
			Required:   1 - cs.meanAllowance(),
			Violations: cs.violations,
		}
		cc.BudgetOK = cs.held.N() < a.cfg.BudgetMinAudits || wil.Hi >= cc.Required
		out = append(out, cc)
	}
	return out
}
