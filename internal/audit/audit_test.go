package audit

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/storage"
)

// fakeExec answers every ground-truth query with a fixed scalar.
type fakeExec struct {
	mu    sync.Mutex
	truth float64
	rows  int // TableRows reported in truth lineage
	calls int
	err   error
}

func (f *fakeExec) QueryContext(_ context.Context, _ string) (*core.Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.err != nil {
		return nil, f.err
	}
	val := storage.Float64(f.truth)
	res := &core.Result{
		Columns:   []string{"sum_ev_value"},
		Rows:      [][]storage.Value{{val}},
		Technique: core.TechniqueExact,
		Guarantee: core.GuaranteeExact,
	}
	res.Items = [][]core.ItemResult{{{Name: "sum_ev_value", Value: val, IsAggregate: true}}}
	res.Diagnostics.Lineage = core.SampleLineage{Table: "events", TableRows: f.rows, BuildRows: f.rows}
	return res, nil
}

// claimed builds a served approximate result: one SUM item with a CI.
func claimed(est, lo, hi float64, buildRows int) *core.Result {
	val := storage.Float64(est)
	r := &core.Result{
		Columns:   []string{"sum_ev_value"},
		Rows:      [][]storage.Value{{val}},
		Technique: core.TechniqueOnline,
		Guarantee: core.GuaranteeAPosteriori,
	}
	r.Items = [][]core.ItemResult{{{
		Name: "sum_ev_value", Value: val, IsAggregate: true, HasCI: true,
		CI: stats.Interval{Lo: lo, Hi: hi, Confidence: 0.95},
	}}}
	r.Diagnostics.Lineage = core.SampleLineage{
		Table: "events", TableRows: buildRows, BuildRows: buildRows,
	}
	return r
}

// distinctSQL yields parseable, canonically distinct audit candidates.
func distinctSQL(i int) string {
	return fmt.Sprintf("SELECT SUM(ev_value) FROM events WHERE ev_ts >= %d AND ev_ts < %d",
		i*10, i*10+10)
}

// recorder collects auditor events.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) hook() func(Event) {
	return func(ev Event) {
		r.mu.Lock()
		r.events = append(r.events, ev)
		r.mu.Unlock()
	}
}

func (r *recorder) count(kind string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func drain(t *testing.T, a *Auditor) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("drain: %v (backlog %d)", err, a.Backlog())
	}
}

func TestOfferEligibility(t *testing.T) {
	exec := &fakeExec{truth: 100, rows: 1000}
	a := New(exec, nil, Config{Fraction: 1})
	defer a.Close()

	a.Offer(nil, "SELECT SUM(ev_value) FROM events")
	exact := claimed(100, 0, 0, 1000)
	exact.Guarantee = core.GuaranteeExact
	a.Offer(exact, "SELECT SUM(ev_value) FROM events")
	noCI := claimed(100, 0, 0, 1000)
	noCI.Items[0][0].HasCI = false
	a.Offer(noCI, "SELECT SUM(ev_value) FROM events")

	drain(t, a)
	if r := a.Report(); r.Offered != 0 || r.Audited != 0 {
		t.Fatalf("ineligible results were considered: %+v", r)
	}

	// Fraction 0 disables even eligible results.
	off := New(exec, nil, Config{Fraction: 0})
	defer off.Close()
	off.Offer(claimed(100, 90, 110, 1000), "SELECT SUM(ev_value) FROM events")
	if r := off.Report(); r.Offered != 0 || r.Enabled {
		t.Fatalf("disabled auditor accepted work: %+v", r)
	}
}

func TestCoverageAndDedup(t *testing.T) {
	exec := &fakeExec{truth: 100, rows: 1000}
	rec := &recorder{}
	a := New(exec, nil, Config{Fraction: 1, OnEvent: rec.hook()})
	defer a.Close()

	const n = 20
	for i := 0; i < n; i++ {
		a.Offer(claimed(98, 90, 110, 1000), distinctSQL(i))
	}
	// Re-offer the same statements: all must dedup, not re-audit.
	for i := 0; i < n; i++ {
		a.Offer(claimed(98, 90, 110, 1000), distinctSQL(i))
	}
	drain(t, a)

	r := a.Report()
	if r.Audited != n || r.Deduped != n || r.Sampled != n {
		t.Fatalf("flow counters: %+v", r)
	}
	if len(r.Techniques) != 1 {
		t.Fatalf("want one (technique, aggregate) estimator, got %+v", r.Techniques)
	}
	tc := r.Techniques[0]
	if tc.Technique != string(core.TechniqueOnline) || tc.Aggregate != "SUM" {
		t.Fatalf("estimator key: %+v", tc)
	}
	if tc.Audits != n || tc.Covered != n || tc.Coverage != 1 {
		t.Fatalf("coverage: %+v", tc)
	}
	if !tc.BudgetOK {
		t.Fatalf("full coverage must not burn budget: %+v", tc)
	}
	if tc.RelErrMax <= 0 || tc.RelErrMax > 0.05 {
		t.Fatalf("rel err of 98 vs 100 should be 0.02, got %+v", tc)
	}
	if got := rec.count(EventCovered); got != n {
		t.Fatalf("covered events: %d", got)
	}
	if got := rec.count(EventDeduped); got != n {
		t.Fatalf("deduped events: %d", got)
	}
	if len(r.LastTraces) == 0 {
		t.Fatal("ground-truth runs should leave trace profiles")
	}
}

func TestBudgetViolationOnMisses(t *testing.T) {
	exec := &fakeExec{truth: 100, rows: 1000}
	rec := &recorder{}
	a := New(exec, nil, Config{Fraction: 1, BudgetMinAudits: 5, OnEvent: rec.hook()})
	defer a.Close()

	for i := 0; i < 10; i++ {
		// Claimed CI [200, 210] never contains the truth 100.
		a.Offer(claimed(205, 200, 210, 1000), distinctSQL(i))
	}
	drain(t, a)

	r := a.Report()
	tc := r.Techniques[0]
	if tc.Covered != 0 || tc.Coverage != 0 {
		t.Fatalf("all audits must miss: %+v", tc)
	}
	if tc.BudgetOK {
		t.Fatalf("0%% coverage over 10 audits must burn the budget: %+v", tc)
	}
	if r.Violations == 0 || rec.count(EventViolation) == 0 {
		t.Fatalf("no violation recorded: %+v", r)
	}
	if tc.RelErrP50 < 1 {
		t.Fatalf("rel error of 205 vs 100 should exceed 1: %+v", tc)
	}
}

func TestStalenessAttribution(t *testing.T) {
	// Truth table has grown to 1500 rows; claims were computed from a
	// 1000-row sample build. Misses must be attributed to drift.
	exec := &fakeExec{truth: 100, rows: 1500}
	rec := &recorder{}
	a := New(exec, nil, Config{Fraction: 1, StaleMinMisses: 3, OnEvent: rec.hook()})
	defer a.Close()

	for i := 0; i < 5; i++ {
		a.Offer(claimed(205, 200, 210, 1000), distinctSQL(i))
	}
	drain(t, a)

	r := a.Report()
	if len(r.Tables) != 1 || r.Tables[0].Table != "events" {
		t.Fatalf("tables: %+v", r.Tables)
	}
	tb := r.Tables[0]
	if !tb.Stale || tb.StaleMisses != 5 || tb.FreshMisses != 0 {
		t.Fatalf("staleness: %+v", tb)
	}
	if tb.MaxRowsAppended != 500 {
		t.Fatalf("appended rows: %+v", tb)
	}
	if tb.Hint == "" {
		t.Fatal("stale table should carry a rebuild hint")
	}
	if rec.count(EventStale) != 1 {
		t.Fatalf("stale events: %d", rec.count(EventStale))
	}

	// Fresh misses (no appended rows) must NOT flag staleness.
	exec2 := &fakeExec{truth: 100, rows: 1000}
	b := New(exec2, nil, Config{Fraction: 1, StaleMinMisses: 3})
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.Offer(claimed(205, 200, 210, 1000), distinctSQL(i))
	}
	drain(t, b)
	if rb := b.Report(); len(rb.Tables) != 1 || rb.Tables[0].Stale {
		t.Fatalf("fresh misses flagged stale: %+v", rb.Tables)
	}
}

// blockGate withholds capacity until opened.
type blockGate struct {
	mu   sync.Mutex
	open bool
}

func (g *blockGate) TryAcquireIdle() (func(), bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.open {
		return nil, false
	}
	return func() {}, true
}

func (g *blockGate) unlock() {
	g.mu.Lock()
	g.open = true
	g.mu.Unlock()
}

func TestQueueDropsOldestUnderBackpressure(t *testing.T) {
	exec := &fakeExec{truth: 100, rows: 1000}
	gate := &blockGate{}
	rec := &recorder{}
	a := New(exec, gate, Config{Fraction: 1, QueueCap: 4, OnEvent: rec.hook()})
	defer a.Close()

	const offered = 12
	for i := 0; i < offered; i++ {
		a.Offer(claimed(98, 90, 110, 1000), distinctSQL(i))
	}
	// The worker can hold at most one in-flight job; the queue holds 4.
	if bl := a.Backlog(); bl > 5 {
		t.Fatalf("backlog %d exceeds cap+in-flight", bl)
	}
	gate.unlock()
	drain(t, a)

	r := a.Report()
	if r.Dropped == 0 {
		t.Fatalf("expected drops under backpressure: %+v", r)
	}
	if r.Audited+r.Dropped != offered {
		t.Fatalf("flow conservation: audited %d + dropped %d != %d", r.Audited, r.Dropped, offered)
	}
	if rec.count(EventDropped) != int(r.Dropped) {
		t.Fatalf("dropped events %d vs counter %d", rec.count(EventDropped), r.Dropped)
	}
}

func TestDecideIsDeterministicAndUnbiased(t *testing.T) {
	for i := uint64(0); i < 100; i++ {
		if decide(7, "online", i, 0.5) != decide(7, "online", i, 0.5) {
			t.Fatal("decide is not deterministic")
		}
	}
	n := 0
	const trials = 20000
	for i := uint64(0); i < trials; i++ {
		if decide(42, "offline", i, 0.3) {
			n++
		}
	}
	rate := float64(n) / trials
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("empirical sampling rate %.3f far from 0.3", rate)
	}
	if !decide(1, "x", 0, 1.0) {
		t.Fatal("fraction 1 must always audit")
	}
}

func TestGroundTruthErrorCounted(t *testing.T) {
	exec := &fakeExec{truth: 100, rows: 1000, err: fmt.Errorf("boom")}
	rec := &recorder{}
	a := New(exec, nil, Config{Fraction: 1, OnEvent: rec.hook()})
	defer a.Close()
	a.Offer(claimed(98, 90, 110, 1000), distinctSQL(0))
	drain(t, a)
	r := a.Report()
	if r.Errors != 1 || r.Audited != 0 {
		t.Fatalf("error accounting: %+v", r)
	}
	if rec.count(EventError) != 1 {
		t.Fatal("missing error event")
	}
}

func TestGroupKeyMatchingAndUnmatched(t *testing.T) {
	// Claimed result has two groups; truth has only one of them (plus an
	// extra). Rows are matched by group key, order-independently.
	ga, gb, gc := storage.Str("a"), storage.Str("b"), storage.Str("c")
	mk := func(g storage.Value, est float64, hasRow bool) []core.ItemResult {
		_ = hasRow
		return []core.ItemResult{
			{Name: "ev_group", Value: g},
			{Name: "sum_ev_value", Value: storage.Float64(est), IsAggregate: true, HasCI: true,
				CI: stats.Interval{Lo: est - 10, Hi: est + 10, Confidence: 0.95}},
		}
	}
	cl := &core.Result{
		Columns:   []string{"ev_group", "sum_ev_value"},
		Rows:      [][]storage.Value{{ga, storage.Float64(50)}, {gb, storage.Float64(70)}},
		Technique: core.TechniqueOffline,
		Guarantee: core.GuaranteeAPosteriori,
	}
	cl.Items = [][]core.ItemResult{mk(ga, 50, true), mk(gb, 70, true)}
	cl.Diagnostics.Lineage = core.SampleLineage{Table: "events", TableRows: 1000, BuildRows: 1000}

	truth := &core.Result{
		Columns: []string{"ev_group", "sum_ev_value"},
		// Reversed order plus a group the claim never saw.
		Rows: [][]storage.Value{{gc, storage.Float64(5)}, {ga, storage.Float64(55)}},
	}
	truth.Diagnostics.Lineage = core.SampleLineage{Table: "events", TableRows: 1000}

	exec := &truthExec{res: truth}
	a := New(exec, nil, Config{Fraction: 1})
	defer a.Close()
	a.Offer(cl, "SELECT ev_group, SUM(ev_value) FROM events GROUP BY ev_group")
	drain(t, a)

	r := a.Report()
	if r.Audited != 1 {
		t.Fatalf("audited: %+v", r)
	}
	// Group a matched (55 in [40,60] -> covered); groups b and c unmatched.
	if r.Unmatched != 2 {
		t.Fatalf("unmatched groups: %+v", r)
	}
	tc := r.Techniques[0]
	if tc.Audits != 1 || tc.Covered != 1 {
		t.Fatalf("matched-group coverage: %+v", tc)
	}
}

// truthExec returns one canned result.
type truthExec struct{ res *core.Result }

func (e *truthExec) QueryContext(context.Context, string) (*core.Result, error) {
	return e.res, nil
}

func TestRelError(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{100, 100, 0}, {90, 100, 0.1}, {0, 0, 0}, {5, 0, 1}, {110, 100, 0.1},
	}
	for _, c := range cases {
		if got := relError(c.est, c.truth); !close2(got, c.want) {
			t.Fatalf("relError(%v, %v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
}

func close2(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestShardDegradedAttribution(t *testing.T) {
	exec := &fakeExec{truth: 100, rows: 1000}
	rec := &recorder{}
	a := New(exec, nil, Config{Fraction: 1, OnEvent: rec.hook()})
	defer a.Close()

	// A covered answer and a missed answer, both served off a shard group
	// that lost shard 2, plus one healthy miss for contrast.
	degradedHit := claimed(100, 90, 110, 1000)
	degradedHit.Diagnostics.Shards = &core.ShardExecSummary{
		Table: "events", Count: 4, Degraded: []int{2}, Extrapolated: true, CoverageFraction: 0.75,
	}
	degradedMiss := claimed(10, 5, 15, 1000)
	degradedMiss.Diagnostics.Shards = &core.ShardExecSummary{
		Table: "events", Count: 4, Degraded: []int{2}, Extrapolated: true, CoverageFraction: 0.75,
	}
	healthyMiss := claimed(10, 5, 15, 1000)

	a.Offer(degradedHit, distinctSQL(0))
	a.Offer(degradedMiss, distinctSQL(1))
	a.Offer(healthyMiss, distinctSQL(2))
	drain(t, a)

	rep := a.Report()
	if rep.ShardDegradedAudits != 2 {
		t.Fatalf("ShardDegradedAudits = %d, want 2", rep.ShardDegradedAudits)
	}
	if rep.ShardDegradedMisses != 1 {
		t.Fatalf("ShardDegradedMisses = %d, want 1", rep.ShardDegradedMisses)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var tagged, untagged int
	for _, ev := range rec.events {
		if ev.Kind != EventCovered && ev.Kind != EventMissed {
			continue
		}
		if len(ev.DegradedShards) > 0 {
			if ev.DegradedShards[0] != 2 {
				t.Fatalf("DegradedShards = %v, want [2]", ev.DegradedShards)
			}
			tagged++
		} else {
			untagged++
		}
	}
	if tagged != 2 || untagged != 1 {
		t.Fatalf("tagged %d untagged %d, want 2/1", tagged, untagged)
	}
}
