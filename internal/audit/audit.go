// Package audit implements continuous accuracy auditing: a background
// lane that re-executes a sampled fraction of served approximate queries
// exactly and checks whether the claimed confidence intervals actually
// covered the truth. The paper's thesis is that the error model is the
// hard part of AQP; this package is the production instrument that keeps
// the error model honest after deployment — empirical CI coverage per
// technique and aggregate type with Wilson bounds, relative-error
// quantiles, an error budget with burn alerts, and staleness attribution
// that correlates coverage misses with rows appended after the backing
// sample was built.
//
// Two design rules keep the measurements valid and the service unharmed:
//
//  1. The audit-or-not decision is a deterministic function of a seed and
//     a per-technique arrival counter, fixed before the estimate is seen.
//     Auditing only "suspicious looking" answers would bias the coverage
//     estimate (see DESIGN.md).
//  2. Ground-truth runs borrow serving capacity only when the foreground
//     is idle, through a non-blocking low-priority gate; the audit queue
//     is bounded and sheds its oldest entry on overflow.
package audit

import (
	"context"
	"log/slog"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/trace"
)

// injectGroundTruth fires at each background ground-truth re-execution.
var injectGroundTruth = fault.NewPoint("audit.groundtruth", "auditor ground-truth re-execution")

// Executor re-executes a query exactly; *aqp.DB satisfies it.
type Executor interface {
	QueryContext(ctx context.Context, sql string) (*core.Result, error)
}

// Gate grants low-priority capacity. TryAcquireIdle must not block: it
// returns (release, true) only when serving would not be delayed — no
// foreground query waiting and a worker slot free — and (nil, false)
// otherwise.
type Gate interface {
	TryAcquireIdle() (release func(), ok bool)
}

// Event kinds delivered to Config.OnEvent.
const (
	EventAudited   = "audited"   // one ground-truth comparison completed
	EventCovered   = "covered"   // one claimed CI contained the truth
	EventMissed    = "missed"    // one claimed CI excluded the truth
	EventDropped   = "dropped"   // queue overflow shed the oldest audit
	EventDeduped   = "deduped"   // canonical SQL already audited recently
	EventViolation = "violation" // window coverage confidently under budget
	EventStale     = "stale"     // misses correlated with appended rows
	EventError     = "error"     // ground-truth execution failed
	EventUnmatched = "unmatched" // group rows differed between claim and truth
	EventPanic     = "panic"     // a panic in the audit lane was contained
)

// Event is one observable audit outcome, for wiring into a metrics
// registry. Fields beyond Kind are populated where meaningful.
type Event struct {
	Kind      string
	Technique string
	Aggregate string
	Table     string
	// RelError is the realized relative error (EventMissed/EventCovered).
	RelError float64
	// LagMS is serve-to-audit latency (EventAudited).
	LagMS float64
	// DegradedShards attributes a covered/missed outcome to the shards
	// that failed while the claim was served — a miss on a degraded,
	// extrapolated answer indicts shard loss, not the estimator.
	DegradedShards []int
	// Fingerprint is the audited query's shape hash (from the claimed
	// result's diagnostics), so covered/missed outcomes can fan out to
	// per-fingerprint coverage scorecards.
	Fingerprint string
}

// Config tunes the auditor.
type Config struct {
	// Fraction of eligible served queries audited, in [0, 1]. 0 disables
	// auditing entirely (Offer becomes a no-op).
	Fraction float64
	// QueueCap bounds the audit backlog; overflow drops the oldest
	// pending audit (default 64).
	QueueCap int
	// Window is the rolling-window size of the per-technique coverage and
	// relative-error estimators (default 256).
	Window int
	// TargetLo/TargetHi is the acceptable empirical-coverage band of the
	// error budget (default [0.93, 0.97] around the nominal 95%).
	TargetLo, TargetHi float64
	// BudgetMinAudits is the minimum window occupancy before budget
	// verdicts are issued (default 30) — Wilson bounds on a handful of
	// audits are too wide to mean anything.
	BudgetMinAudits int
	// StaleMinMisses is how many drift-correlated misses a table needs in
	// its window before the staleness signal fires (default 3).
	StaleMinMisses int
	// Timeout bounds each ground-truth execution (default 30s).
	Timeout time.Duration
	// IdleRetry is the backoff while the foreground keeps the gate busy
	// (default 2ms).
	IdleRetry time.Duration
	// Seed drives the deterministic audit-sampling decisions.
	Seed int64
	// Logger receives budget-burn and staleness warnings (nil discards).
	Logger *slog.Logger
	// OnEvent, when set, receives every audit outcome (called outside the
	// auditor's lock; must be safe for concurrent use).
	OnEvent func(Event)
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.TargetLo <= 0 {
		c.TargetLo = 0.93
	}
	if c.TargetHi <= 0 || c.TargetHi > 1 {
		c.TargetHi = 0.97
	}
	if c.BudgetMinAudits <= 0 {
		c.BudgetMinAudits = 30
	}
	if c.StaleMinMisses <= 0 {
		c.StaleMinMisses = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.IdleRetry <= 0 {
		c.IdleRetry = 2 * time.Millisecond
	}
	return c
}

// job is one pending audit: everything captured at serve time. The
// claimed result is immutable after serving, so it is held by reference.
type job struct {
	canonical string
	technique string
	claimed   *core.Result
	aggName   []string // per column: aggregate func name, "" for group cols
	servedAt  time.Time
}

// estKey identifies one rolling estimator: technique × aggregate type.
type estKey struct{ technique, aggregate string }

// estimator is the rolling accuracy state for one (technique, aggregate).
type estimator struct {
	cov        *stats.RollingCoverage
	rel        *stats.RollingQuantiles
	violations int64
	violating  bool
}

// tableObs is one audit outcome attributed to a base table.
type tableObs struct {
	missed   bool
	appended int // rows added after the backing sample was built
}

// tableState is the rolling drift-attribution window for one table.
type tableState struct {
	ring  []tableObs
	next  int
	n     int
	stale bool
}

// Auditor owns the audit queue, the background worker, and the rolling
// accuracy estimators. Create with New, feed with Offer, read with
// Report, stop with Close.
type Auditor struct {
	cfg  Config
	exec Executor
	gate Gate

	mu       sync.Mutex
	queue    []*job
	seen     map[string]struct{} // canonical SQL recently offered
	seenFIFO []string
	arrivals map[string]uint64 // per-technique eligible-arrival counter
	est      map[estKey]*estimator
	tables   map[string]*tableState
	// contracts tracks the a-priori contract error budget per technique
	// (see contract.go).
	contracts map[string]*contractState
	busy      bool // worker is executing an audit
	closed    bool

	offered, sampled, deduped, dropped int64
	audited, errors, unmatched         int64
	violations, panics                 int64
	shardDegraded, shardDegradedMiss   int64
	contractAudits, contractBroken     int64

	lastTraces []string

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New creates an auditor over the exact executor. gate may be nil (no
// capacity coupling — audits run whenever queued), which is what embedded
// single-user tools want; servers pass their admission controller.
func New(exec Executor, gate Gate, cfg Config) *Auditor {
	a := &Auditor{
		cfg:       cfg.withDefaults(),
		exec:      exec,
		gate:      gate,
		seen:      make(map[string]struct{}),
		arrivals:  make(map[string]uint64),
		est:       make(map[estKey]*estimator),
		tables:    make(map[string]*tableState),
		contracts: make(map[string]*contractState),
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go a.worker()
	return a
}

// Close stops the background worker, abandoning any pending audits.
func (a *Auditor) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.stop)
	<-a.done
}

// Backlog reports the number of queued (not yet executed) audits plus
// the one in flight, if any.
func (a *Auditor) Backlog() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.queue)
	if a.busy {
		n++
	}
	return n
}

// Drain blocks until the audit queue is empty and no audit is in flight,
// or ctx expires. It does not stop the auditor.
func (a *Auditor) Drain(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if a.Backlog() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Offer submits one served result for consideration. It is cheap and
// non-blocking: parse + hash + enqueue at worst, and must be called on
// the serving path after the response is sent (or immediately before —
// it never mutates res). Results that are exact or carry no CI are not
// eligible. The decision to audit is made here, deterministically, with
// no reference to the estimate's value — see the package comment.
func (a *Auditor) Offer(res *core.Result, sql string) {
	if a == nil || a.cfg.Fraction <= 0 || res == nil {
		return
	}
	// Offer runs on the serving path: a panic here (parse, hashing,
	// bookkeeping) must cost the audit opportunity, not the response.
	defer func() {
		if r := recover(); r != nil {
			a.notePanic("offer", string(res.Technique), fault.AsError(r))
		}
	}()
	if res.Guarantee == core.GuaranteeExact || !hasCI(res) {
		return
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return // served SQL always parses; belt and braces
	}
	canonical := stmt.String()
	tech := string(res.Technique)

	var events []Event
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.offered++
	if _, dup := a.seen[canonical]; dup {
		a.deduped++
		a.mu.Unlock()
		a.emit(Event{Kind: EventDeduped, Technique: tech})
		return
	}
	a.rememberLocked(canonical)
	n := a.arrivals[tech]
	a.arrivals[tech] = n + 1
	if !decide(a.cfg.Seed, tech, n, a.cfg.Fraction) {
		a.mu.Unlock()
		return
	}
	a.sampled++
	j := &job{
		canonical: canonical,
		technique: tech,
		claimed:   res,
		aggName:   aggNames(stmt, res),
		servedAt:  time.Now(),
	}
	a.queue = append(a.queue, j)
	if len(a.queue) > a.cfg.QueueCap {
		a.queue = a.queue[1:]
		a.dropped++
		events = append(events, Event{Kind: EventDropped})
	}
	a.mu.Unlock()

	for _, ev := range events {
		a.emit(ev)
	}
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// rememberLocked adds a canonical SQL to the dedup set, evicting FIFO
// beyond 4× the queue capacity (so a steady workload re-audits a repeated
// query once its cohort has aged out, rather than never again).
func (a *Auditor) rememberLocked(canonical string) {
	limit := 4 * a.cfg.QueueCap
	if limit < 256 {
		limit = 256
	}
	a.seen[canonical] = struct{}{}
	a.seenFIFO = append(a.seenFIFO, canonical)
	for len(a.seenFIFO) > limit {
		delete(a.seen, a.seenFIFO[0])
		a.seenFIFO = a.seenFIFO[1:]
	}
}

// decide is the deterministic audit-sampling decision: a splitmix64 hash
// of (seed, technique, arrival index) mapped to [0, 1) and compared to
// the configured fraction. Nothing about the query's answer enters.
func decide(seed int64, technique string, arrival uint64, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	h := uint64(seed)
	for _, c := range []byte(technique) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h ^= arrival + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11)/(1<<53) < fraction
}

// hasCI reports whether any item carries a confidence interval.
func hasCI(res *core.Result) bool {
	for _, row := range res.Items {
		for _, it := range row {
			if it.IsAggregate && it.HasCI {
				return true
			}
		}
	}
	return false
}

// aggNames maps each output column to its aggregate function name ("SUM",
// "COUNT", ...), "expr" for composite aggregate items, and "" for group
// columns — the aggregate axis of the coverage estimators.
func aggNames(stmt *sqlparse.SelectStmt, res *core.Result) []string {
	names := make([]string, len(res.Columns))
	for j := range names {
		if j < len(stmt.Items) {
			if agg, ok := stmt.Items[j].Expr.(*sqlparse.AggExpr); ok {
				names[j] = string(agg.Func)
				continue
			}
		}
		if len(res.Items) > 0 && j < len(res.Items[0]) && res.Items[0][j].IsAggregate {
			names[j] = "expr"
		}
	}
	return names
}

// worker is the background audit lane: it pops jobs, waits for idle
// capacity, re-executes exactly, and folds the comparison into the
// rolling estimators.
func (a *Auditor) worker() {
	defer close(a.done)
	for {
		j := a.pop()
		if j == nil {
			select {
			case <-a.wake:
				continue
			case <-a.stop:
				return
			}
		}
		if !a.auditOne(j) {
			return
		}
	}
}

// auditOne runs one audit job under panic containment and reports whether
// the worker should keep running (false only on shutdown). A panic
// anywhere in the audit path — ground truth, comparison, estimator
// folding — is converted to a counted, logged event that poisons only
// this job; aqpd itself never dies for an audit.
func (a *Auditor) auditOne(j *job) (alive bool) {
	defer func() {
		if r := recover(); r != nil {
			a.notePanic("worker", j.technique, fault.AsError(r))
			alive = true
		}
	}()
	release, ok := a.waitIdle()
	if !ok {
		a.finish(j, nil) // stopping; drop the job without stats
		return false
	}
	// The idle slot is held only for the ground-truth execution and is
	// released even if it panics (the deferred recover above fires after).
	truth, err := func() (*core.Result, error) {
		defer func() {
			if release != nil {
				release()
			}
		}()
		return a.groundTruth(j)
	}()
	if err != nil {
		a.mu.Lock()
		a.errors++
		a.busy = false
		a.mu.Unlock()
		a.emit(Event{Kind: EventError, Technique: j.technique})
		return true
	}
	a.finish(j, truth)
	return true
}

// notePanic counts and reports one contained panic.
func (a *Auditor) notePanic(where, technique string, err error) {
	a.mu.Lock()
	a.panics++
	a.busy = false
	a.mu.Unlock()
	if a.cfg.Logger != nil {
		a.cfg.Logger.Error("audit: panic contained", "where", where,
			"technique", technique, "err", err)
	}
	a.emit(Event{Kind: EventPanic, Technique: technique})
}

// pop takes the oldest job and marks the worker busy, so Backlog counts
// the in-flight audit until its stats land.
func (a *Auditor) pop() *job {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) == 0 {
		return nil
	}
	j := a.queue[0]
	a.queue = a.queue[1:]
	a.busy = true
	return j
}

// waitIdle blocks until the gate grants idle capacity or the auditor is
// stopped. A nil gate grants immediately.
func (a *Auditor) waitIdle() (release func(), ok bool) {
	if a.gate == nil {
		return nil, true
	}
	for {
		if release, ok := a.gate.TryAcquireIdle(); ok {
			return release, true
		}
		select {
		case <-a.stop:
			return nil, false
		case <-time.After(a.cfg.IdleRetry):
		}
	}
}

// groundTruth re-executes the canonical SQL exactly under a span-traced
// context and bounded deadline.
func (a *Auditor) groundTruth(j *job) (*core.Result, error) {
	if err := injectGroundTruth.Inject(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Timeout)
	defer cancel()
	tr := trace.New("audit " + j.technique)
	ctx = trace.WithTracer(ctx, tr)
	sp, ctx := trace.StartSpan(ctx, "ground-truth")
	truth, err := a.exec.QueryContext(ctx, j.canonical)
	sp.End()
	tr.Finish()
	a.mu.Lock()
	a.lastTraces = append(a.lastTraces, tr.Profile().String())
	if len(a.lastTraces) > 4 {
		a.lastTraces = a.lastTraces[1:]
	}
	a.mu.Unlock()
	return truth, err
}

// finish folds one completed audit into the estimators. truth == nil
// only when the worker is shutting down.
func (a *Auditor) finish(j *job, truth *core.Result) {
	if truth == nil {
		a.mu.Lock()
		a.busy = false
		a.mu.Unlock()
		return
	}
	cmp := compare(j, truth)

	// Answers served off a degraded shard group carry the failed-shard
	// list so coverage misses can be attributed to shard loss.
	var degraded []int
	if sh := j.claimed.Diagnostics.Shards; sh != nil && len(sh.Degraded) > 0 {
		degraded = sh.Degraded
	}

	var events []Event
	// The unlock is deferred (not straight-line) so a panic while folding
	// estimators leaves the mutex released for the containment handler.
	func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		a.audited++
		if degraded != nil {
			a.shardDegraded++
		}
		a.unmatched += int64(cmp.unmatched)
		lag := time.Since(j.servedAt)
		events = append(events, Event{Kind: EventAudited, Technique: j.technique,
			LagMS: float64(lag.Microseconds()) / 1e3})
		if cmp.unmatched > 0 {
			events = append(events, Event{Kind: EventUnmatched, Technique: j.technique})
		}
		for _, it := range cmp.items {
			key := estKey{technique: j.technique, aggregate: it.aggregate}
			e := a.est[key]
			if e == nil {
				e = &estimator{
					cov: stats.NewRollingCoverage(a.cfg.Window),
					rel: stats.NewRollingQuantiles(a.cfg.Window),
				}
				a.est[key] = e
			}
			e.cov.Push(it.covered)
			e.rel.Push(it.relErr)
			kind := EventCovered
			if !it.covered {
				kind = EventMissed
				if degraded != nil {
					a.shardDegradedMiss++
				}
			}
			events = append(events, Event{Kind: kind, Technique: j.technique,
				Aggregate: it.aggregate, RelError: it.relErr, DegradedShards: degraded,
				Fingerprint: j.claimed.Diagnostics.Fingerprint})
			events = append(events, a.checkBudgetLocked(key, e)...)
		}
		events = append(events, a.recordContractLocked(j, cmp)...)
		events = append(events, a.recordDriftLocked(j, truth, cmp)...)
		a.busy = false
	}()

	for _, ev := range events {
		a.emit(ev)
	}
}

// checkBudgetLocked issues the error-budget verdict for one estimator
// after a new observation: once the window is populated, a Wilson upper
// bound confidently below the target band means the technique is burning
// its error budget — count it and warn on the transition into violation.
func (a *Auditor) checkBudgetLocked(key estKey, e *estimator) []Event {
	if e.cov.N() < a.cfg.BudgetMinAudits {
		return nil
	}
	wil := e.cov.Wilson(0.95)
	if wil.Hi < a.cfg.TargetLo {
		e.violations++
		a.violations++
		ev := Event{Kind: EventViolation, Technique: key.technique, Aggregate: key.aggregate}
		if !e.violating {
			e.violating = true
			if a.cfg.Logger != nil {
				a.cfg.Logger.Warn("audit: coverage budget burn",
					"technique", key.technique, "aggregate", key.aggregate,
					"coverage", e.cov.Rate(), "wilson_hi", wil.Hi,
					"target_lo", a.cfg.TargetLo, "window", e.cov.N())
			}
		}
		return []Event{ev}
	}
	e.violating = false
	return nil
}

// recordDriftLocked attributes the audit outcome to the base table and
// re-evaluates its staleness signal: misses on answers whose backing
// sample predates appended rows, outnumbering misses on fresh answers,
// indicate the sample — not the estimator — is wrong.
func (a *Auditor) recordDriftLocked(j *job, truth *core.Result, cmp compareResult) []Event {
	lin := j.claimed.Diagnostics.Lineage
	table := lin.Table
	if table == "" {
		table = truth.Diagnostics.Lineage.Table
	}
	if table == "" {
		return nil
	}
	appended := 0
	if lin.BuildRows > 0 {
		if d := truth.Diagnostics.Lineage.TableRows - lin.BuildRows; d > 0 {
			appended = d
		}
	}
	ts := a.tables[table]
	if ts == nil {
		ts = &tableState{ring: make([]tableObs, a.cfg.Window)}
		a.tables[table] = ts
	}
	if ts.n == len(ts.ring) {
		// full: overwrite oldest
	} else {
		ts.n++
	}
	ts.ring[ts.next] = tableObs{missed: cmp.missedAny || cmp.unmatched > 0, appended: appended}
	ts.next = (ts.next + 1) % len(ts.ring)

	staleMisses, freshMisses := ts.counts()
	nowStale := staleMisses >= a.cfg.StaleMinMisses && staleMisses > freshMisses
	var events []Event
	if nowStale && !ts.stale {
		events = append(events, Event{Kind: EventStale, Table: table})
		if a.cfg.Logger != nil {
			a.cfg.Logger.Warn("audit: sample staleness detected",
				"table", table, "stale_misses", staleMisses, "fresh_misses", freshMisses,
				"rows_appended", appended,
				"hint", "rebuild offline samples / synopses for "+table)
		}
	}
	ts.stale = nowStale
	return events
}

// counts tallies the in-window misses split by drift attribution.
func (ts *tableState) counts() (staleMisses, freshMisses int) {
	for i := 0; i < ts.n; i++ {
		obs := ts.ring[i]
		if !obs.missed {
			continue
		}
		if obs.appended > 0 {
			staleMisses++
		} else {
			freshMisses++
		}
	}
	return staleMisses, freshMisses
}

func (ts *tableState) maxAppended() int {
	m := 0
	for i := 0; i < ts.n; i++ {
		if ts.ring[i].appended > m {
			m = ts.ring[i].appended
		}
	}
	return m
}

// emit delivers one event to the hook, outside the auditor's lock.
func (a *Auditor) emit(ev Event) {
	if a.cfg.OnEvent != nil {
		a.cfg.OnEvent(ev)
	}
}

// itemOutcome is one claimed CI checked against the truth.
type itemOutcome struct {
	aggregate string
	covered   bool
	relErr    float64
}

// compareResult is everything one audit comparison yields.
type compareResult struct {
	items     []itemOutcome
	unmatched int // group rows present on one side only
	missedAny bool
}

// compare matches claimed rows to ground-truth rows by their group-key
// columns and checks every claimed CI against the exact value. Rows are
// matched by key, not position, so group ordering differences cannot
// fabricate misses; rows present on only one side (a group the sample
// missed entirely, or one that appeared after serving) are counted as
// unmatched — an error mode in its own right.
func compare(j *job, truth *core.Result) compareResult {
	var out compareResult
	claimed := j.claimed
	if len(claimed.Items) == 0 {
		return out
	}
	keyCols := make([]int, 0, len(claimed.Columns))
	for col, it := range claimed.Items[0] {
		if !it.IsAggregate {
			keyCols = append(keyCols, col)
		}
	}
	truthByKey := make(map[string][]int, len(truth.Rows))
	for i := range truth.Rows {
		k := rowKey(truth, i, keyCols)
		truthByKey[k] = append(truthByKey[k], i)
	}
	for i := range claimed.Rows {
		k := rowKey(claimed, i, keyCols)
		idxs := truthByKey[k]
		if len(idxs) == 0 {
			out.unmatched++
			out.missedAny = true
			continue
		}
		ti := idxs[0]
		truthByKey[k] = idxs[1:]
		for col, it := range claimed.Items[i] {
			if !it.IsAggregate || !it.HasCI {
				continue
			}
			tv := truth.Float(ti, col)
			covered := it.CI.Contains(tv)
			agg := "expr"
			if col < len(j.aggName) && j.aggName[col] != "" {
				agg = j.aggName[col]
			}
			out.items = append(out.items, itemOutcome{
				aggregate: agg,
				covered:   covered,
				relErr:    relError(it.Value.AsFloat(), tv),
			})
			if !covered {
				out.missedAny = true
			}
		}
	}
	for _, rest := range truthByKey {
		out.unmatched += len(rest)
		if len(rest) > 0 {
			out.missedAny = true
		}
	}
	return out
}

// rowKey renders the group-key columns of one row into a map key.
func rowKey(res *core.Result, row int, keyCols []int) string {
	if len(keyCols) == 0 {
		return ""
	}
	var b strings.Builder
	for _, c := range keyCols {
		b.WriteString(res.Rows[row][c].String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// relError is |estimate-truth| / |truth|, with the 0-truth edge cases
// pinned: exact agreement is 0, anything else against a zero truth is 1.
func relError(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	rel := math.Abs(est-truth) / math.Abs(truth)
	if math.IsNaN(rel) || math.IsInf(rel, 0) {
		return 1
	}
	return rel
}
