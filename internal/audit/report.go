package audit

import (
	"fmt"
	"sort"
	"strings"
)

// TechniqueCoverage is the rolling accuracy report for one technique ×
// aggregate-type pair.
type TechniqueCoverage struct {
	Technique string  `json:"technique"`
	Aggregate string  `json:"aggregate"`
	Audits    int     `json:"audits"`
	Covered   int     `json:"covered"`
	Coverage  float64 `json:"coverage"`
	WilsonLo  float64 `json:"wilson_lo"`
	WilsonHi  float64 `json:"wilson_hi"`
	RelErrP50 float64 `json:"rel_err_p50"`
	RelErrP90 float64 `json:"rel_err_p90"`
	RelErrMax float64 `json:"rel_err_max"`
	// BudgetOK is true while the Wilson interval overlaps the target
	// coverage band (or the window is too small to judge).
	BudgetOK   bool  `json:"budget_ok"`
	Violations int64 `json:"violations"`
}

// TableReport is the drift-attribution state for one base table.
type TableReport struct {
	Table           string `json:"table"`
	Stale           bool   `json:"stale"`
	StaleMisses     int    `json:"stale_misses"`
	FreshMisses     int    `json:"fresh_misses"`
	MaxRowsAppended int    `json:"max_rows_appended"`
	Hint            string `json:"hint,omitempty"`
}

// Report is a point-in-time snapshot of the auditor: cumulative flow
// counters plus the rolling-window accuracy estimators.
type Report struct {
	Enabled  bool    `json:"enabled"`
	Fraction float64 `json:"fraction"`
	Window   int     `json:"window"`
	TargetLo float64 `json:"target_lo"`
	TargetHi float64 `json:"target_hi"`

	Offered    int64 `json:"offered"`
	Sampled    int64 `json:"sampled"`
	Deduped    int64 `json:"deduped"`
	Dropped    int64 `json:"dropped"`
	Audited    int64 `json:"audited"`
	Errors     int64 `json:"errors"`
	Unmatched  int64 `json:"unmatched_groups"`
	Violations int64 `json:"violations"`
	Panics     int64 `json:"panics"`
	Backlog    int   `json:"backlog"`

	// ShardDegradedAudits counts audited answers that were served off a
	// degraded shard group; ShardDegradedMisses is how many of their CI
	// misses are attributable to shard loss rather than the estimator.
	ShardDegradedAudits int64 `json:"shard_degraded_audits,omitempty"`
	ShardDegradedMisses int64 `json:"shard_degraded_misses,omitempty"`

	// ContractAudits counts audited answers that carried a contract
	// verdict; ContractBroken is how many "met" verdicts turned out to
	// exceed their target error against ground truth.
	ContractAudits int64 `json:"contract_audits,omitempty"`
	ContractBroken int64 `json:"contract_broken,omitempty"`

	Techniques []TechniqueCoverage `json:"techniques"`
	Contracts  []ContractCoverage  `json:"contracts,omitempty"`
	Tables     []TableReport       `json:"tables"`
	LastTraces []string            `json:"last_traces,omitempty"`
}

// Report snapshots the auditor's state.
func (a *Auditor) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := Report{
		Enabled:    a.cfg.Fraction > 0,
		Fraction:   a.cfg.Fraction,
		Window:     a.cfg.Window,
		TargetLo:   a.cfg.TargetLo,
		TargetHi:   a.cfg.TargetHi,
		Offered:    a.offered,
		Sampled:    a.sampled,
		Deduped:    a.deduped,
		Dropped:    a.dropped,
		Audited:    a.audited,
		Errors:     a.errors,
		Unmatched:  a.unmatched,
		Violations: a.violations,
		Panics:     a.panics,
		Backlog:    len(a.queue),

		ShardDegradedAudits: a.shardDegraded,
		ShardDegradedMisses: a.shardDegradedMiss,

		ContractAudits: a.contractAudits,
		ContractBroken: a.contractBroken,
	}
	r.Contracts = a.contractReportLocked()
	sort.Slice(r.Contracts, func(i, j int) bool {
		return r.Contracts[i].Technique < r.Contracts[j].Technique
	})
	if a.busy {
		r.Backlog++
	}
	for key, e := range a.est {
		wil := e.cov.Wilson(0.95)
		tc := TechniqueCoverage{
			Technique:  key.technique,
			Aggregate:  key.aggregate,
			Audits:     e.cov.N(),
			Covered:    e.cov.Hits(),
			Coverage:   e.cov.Rate(),
			WilsonLo:   wil.Lo,
			WilsonHi:   wil.Hi,
			RelErrP50:  e.rel.Quantile(0.5),
			RelErrP90:  e.rel.Quantile(0.9),
			RelErrMax:  e.rel.Max(),
			Violations: e.violations,
		}
		tc.BudgetOK = e.cov.N() < a.cfg.BudgetMinAudits ||
			(wil.Hi >= a.cfg.TargetLo && wil.Lo <= a.cfg.TargetHi)
		r.Techniques = append(r.Techniques, tc)
	}
	sort.Slice(r.Techniques, func(i, j int) bool {
		if r.Techniques[i].Technique != r.Techniques[j].Technique {
			return r.Techniques[i].Technique < r.Techniques[j].Technique
		}
		return r.Techniques[i].Aggregate < r.Techniques[j].Aggregate
	})
	for table, ts := range a.tables {
		sm, fm := ts.counts()
		tr := TableReport{
			Table:           table,
			Stale:           ts.stale,
			StaleMisses:     sm,
			FreshMisses:     fm,
			MaxRowsAppended: ts.maxAppended(),
		}
		if ts.stale {
			tr.Hint = "rebuild offline samples / synopses for " + table
		}
		r.Tables = append(r.Tables, tr)
	}
	sort.Slice(r.Tables, func(i, j int) bool { return r.Tables[i].Table < r.Tables[j].Table })
	r.LastTraces = append(r.LastTraces, a.lastTraces...)
	return r
}

// String renders the report as an aligned text table for terminal use.
func (r Report) String() string {
	var b strings.Builder
	if !r.Enabled {
		b.WriteString("accuracy auditing disabled (fraction 0)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "accuracy audit: fraction %.2f, window %d, target coverage [%.2f, %.2f]\n",
		r.Fraction, r.Window, r.TargetLo, r.TargetHi)
	fmt.Fprintf(&b, "flow: offered %d  sampled %d  deduped %d  dropped %d  audited %d  errors %d  backlog %d\n",
		r.Offered, r.Sampled, r.Deduped, r.Dropped, r.Audited, r.Errors, r.Backlog)
	if r.Unmatched > 0 || r.Violations > 0 || r.Panics > 0 {
		fmt.Fprintf(&b, "alerts: unmatched groups %d  budget violations %d  contained panics %d\n",
			r.Unmatched, r.Violations, r.Panics)
	}
	if r.ShardDegradedAudits > 0 {
		fmt.Fprintf(&b, "shards: %d audited answers served degraded, %d CI misses attributable to shard loss\n",
			r.ShardDegradedAudits, r.ShardDegradedMisses)
	}
	if r.ContractAudits > 0 {
		fmt.Fprintf(&b, "contracts: %d audited, %d \"met\" verdicts broken against ground truth\n",
			r.ContractAudits, r.ContractBroken)
		for _, cc := range r.Contracts {
			budget := "ok"
			if !cc.BudgetOK {
				budget = "BURNING"
			} else if cc.Audits < 30 {
				budget = "warming"
			}
			fmt.Fprintf(&b, "  %-16s %4d met-audits, held %.1f%% [%6.3f,%6.3f] vs required %.1f%% — %s\n",
				cc.Technique, cc.Audits, 100*cc.HoldRate, cc.WilsonLo, cc.WilsonHi, 100*cc.Required, budget)
		}
	}
	if len(r.Techniques) == 0 {
		b.WriteString("no audited queries yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-16s %-8s %6s %9s %17s %8s %8s %8s %s\n",
		"TECHNIQUE", "AGG", "AUDITS", "COVERAGE", "WILSON95", "RELP50", "RELP90", "RELMAX", "BUDGET")
	for _, tc := range r.Techniques {
		budget := "ok"
		if !tc.BudgetOK {
			budget = "BURNING"
		} else if tc.Audits < 30 {
			budget = "warming"
		}
		fmt.Fprintf(&b, "%-16s %-8s %6d %8.1f%% [%6.3f,%6.3f] %8.4f %8.4f %8.4f %s\n",
			tc.Technique, tc.Aggregate, tc.Audits, 100*tc.Coverage,
			tc.WilsonLo, tc.WilsonHi, tc.RelErrP50, tc.RelErrP90, tc.RelErrMax, budget)
	}
	for _, t := range r.Tables {
		if t.Stale {
			fmt.Fprintf(&b, "STALE %s: %d drift-correlated misses vs %d fresh (max %d rows appended) — %s\n",
				t.Table, t.StaleMisses, t.FreshMisses, t.MaxRowsAppended, t.Hint)
		}
	}
	return b.String()
}
