package storage

import "fmt"

// Column is an append-only typed vector of values with optional NULLs.
type Column interface {
	// Type returns the column's element type.
	Type() Type
	// Len returns the number of rows stored.
	Len() int
	// Value returns the i-th value.
	Value(i int) Value
	// Append adds a value; it must match the column type or be NULL.
	Append(v Value) error
	// IsNull reports whether the i-th value is NULL.
	IsNull(i int) bool
	// snapshot returns a read-only view of the column as of now. Because
	// columns are append-only, the rows below the captured length never
	// mutate; copying the slice headers is enough to make the view safe
	// against concurrent appends (which may grow or reallocate the live
	// slices but never touch the captured prefix). Must be called with the
	// owning table's lock held so the headers are read consistently.
	snapshot() Column
}

// NewColumn allocates an empty column of the given type.
func NewColumn(t Type) Column {
	switch t {
	case TypeInt64:
		return &Int64Column{}
	case TypeFloat64:
		return &Float64Column{}
	case TypeString:
		return &StringColumn{}
	case TypeBool:
		return &BoolColumn{}
	default:
		panic(fmt.Sprintf("storage: NewColumn of invalid type %v", t))
	}
}

type nullmap []bool

func (n nullmap) isNull(i int) bool { return n != nil && n[i] }

func (n *nullmap) append(size int, null bool) {
	if *n == nil {
		if !null {
			return
		}
		*n = make([]bool, size)
	}
	*n = append(*n, null)
}

// Int64Column stores 64-bit integers.
type Int64Column struct {
	data  []int64
	nulls nullmap
}

// Type implements Column.
func (c *Int64Column) Type() Type { return TypeInt64 }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.data) }

// IsNull implements Column.
func (c *Int64Column) IsNull(i int) bool { return c.nulls.isNull(i) }

// Value implements Column.
func (c *Int64Column) Value(i int) Value {
	if c.nulls.isNull(i) {
		return NullValue(TypeInt64)
	}
	return Int64(c.data[i])
}

// Int returns the raw int64 at i (0 for NULL).
func (c *Int64Column) Int(i int) int64 { return c.data[i] }

// Append implements Column.
func (c *Int64Column) Append(v Value) error {
	if v.IsNull() {
		c.nulls.append(len(c.data), true)
		c.data = append(c.data, 0)
		return nil
	}
	if !v.Typ.Numeric() {
		return fmt.Errorf("storage: append %v to BIGINT column", v.Typ)
	}
	c.nulls.append(len(c.data), false)
	c.data = append(c.data, v.AsInt())
	return nil
}

// Float64Column stores 64-bit floats.
type Float64Column struct {
	data  []float64
	nulls nullmap
}

// Type implements Column.
func (c *Float64Column) Type() Type { return TypeFloat64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.data) }

// IsNull implements Column.
func (c *Float64Column) IsNull(i int) bool { return c.nulls.isNull(i) }

// Value implements Column.
func (c *Float64Column) Value(i int) Value {
	if c.nulls.isNull(i) {
		return NullValue(TypeFloat64)
	}
	return Float64(c.data[i])
}

// Float returns the raw float64 at i (0 for NULL).
func (c *Float64Column) Float(i int) float64 { return c.data[i] }

// Append implements Column.
func (c *Float64Column) Append(v Value) error {
	if v.IsNull() {
		c.nulls.append(len(c.data), true)
		c.data = append(c.data, 0)
		return nil
	}
	if !v.Typ.Numeric() {
		return fmt.Errorf("storage: append %v to DOUBLE column", v.Typ)
	}
	c.nulls.append(len(c.data), false)
	c.data = append(c.data, v.AsFloat())
	return nil
}

// StringColumn stores strings.
type StringColumn struct {
	data  []string
	nulls nullmap
}

// Type implements Column.
func (c *StringColumn) Type() Type { return TypeString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.data) }

// IsNull implements Column.
func (c *StringColumn) IsNull(i int) bool { return c.nulls.isNull(i) }

// Value implements Column.
func (c *StringColumn) Value(i int) Value {
	if c.nulls.isNull(i) {
		return NullValue(TypeString)
	}
	return Str(c.data[i])
}

// Append implements Column.
func (c *StringColumn) Append(v Value) error {
	if v.IsNull() {
		c.nulls.append(len(c.data), true)
		c.data = append(c.data, "")
		return nil
	}
	if v.Typ != TypeString {
		return fmt.Errorf("storage: append %v to VARCHAR column", v.Typ)
	}
	c.nulls.append(len(c.data), false)
	c.data = append(c.data, v.S)
	return nil
}

// BoolColumn stores booleans.
type BoolColumn struct {
	data  []bool
	nulls nullmap
}

// Type implements Column.
func (c *BoolColumn) Type() Type { return TypeBool }

// Len implements Column.
func (c *BoolColumn) Len() int { return len(c.data) }

// IsNull implements Column.
func (c *BoolColumn) IsNull(i int) bool { return c.nulls.isNull(i) }

// Value implements Column.
func (c *BoolColumn) Value(i int) Value {
	if c.nulls.isNull(i) {
		return NullValue(TypeBool)
	}
	return Bool(c.data[i])
}

// Append implements Column.
func (c *BoolColumn) Append(v Value) error {
	if v.IsNull() {
		c.nulls.append(len(c.data), true)
		c.data = append(c.data, false)
		return nil
	}
	if v.Typ != TypeBool {
		return fmt.Errorf("storage: append %v to BOOLEAN column", v.Typ)
	}
	c.nulls.append(len(c.data), false)
	c.data = append(c.data, v.B)
	return nil
}

// snapshot implements Column.
func (c *Int64Column) snapshot() Column { cp := *c; return &cp }

// snapshot implements Column.
func (c *Float64Column) snapshot() Column { cp := *c; return &cp }

// snapshot implements Column.
func (c *StringColumn) snapshot() Column { cp := *c; return &cp }

// snapshot implements Column.
func (c *BoolColumn) snapshot() Column { cp := *c; return &cp }
