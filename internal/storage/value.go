// Package storage implements the columnar in-memory storage substrate:
// typed values, columns, fixed-size blocks, tables, a catalog, and
// per-column statistics. Every AQP technique in this repository executes
// against this substrate.
package storage

import (
	"fmt"
	"strconv"
)

// Type identifies the runtime type of a Value or Column.
type Type uint8

// Supported column types.
const (
	TypeInvalid Type = iota
	TypeInt64
	TypeFloat64
	TypeString
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "BIGINT"
	case TypeFloat64:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	default:
		return "INVALID"
	}
}

// Numeric reports whether the type supports arithmetic.
func (t Type) Numeric() bool { return t == TypeInt64 || t == TypeFloat64 }

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	Typ  Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// NullValue returns a typed NULL.
func NullValue(t Type) Value { return Value{Typ: t, Null: true} }

// Int64 wraps an int64.
func Int64(v int64) Value { return Value{Typ: TypeInt64, I: v} }

// Float64 wraps a float64.
func Float64(v float64) Value { return Value{Typ: TypeFloat64, F: v} }

// Str wraps a string.
func Str(v string) Value { return Value{Typ: TypeString, S: v} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{Typ: TypeBool, B: v} }

// IsNull reports whether the value is NULL (including the zero Value).
func (v Value) IsNull() bool { return v.Null || v.Typ == TypeInvalid }

// AsFloat converts a numeric value to float64. NULL converts to 0.
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case TypeInt64:
		return float64(v.I)
	case TypeFloat64:
		return v.F
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.Typ {
	case TypeInt64:
		return v.I
	case TypeFloat64:
		return int64(v.F)
	case TypeBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// String renders the value for display.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.Typ {
	case TypeInt64:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "INVALID"
	}
}

// Equal reports deep equality of two values. NULLs are equal to NULLs of
// any type; this is the grouping (not SQL ternary) notion of equality.
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return v.IsNull() && o.IsNull()
	}
	if v.Typ != o.Typ {
		if v.Typ.Numeric() && o.Typ.Numeric() {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.Typ {
	case TypeInt64:
		return v.I == o.I
	case TypeFloat64:
		return v.F == o.F
	case TypeString:
		return v.S == o.S
	case TypeBool:
		return v.B == o.B
	}
	return false
}

// Compare orders two non-NULL values of compatible types.
// NULL sorts before everything. Returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	switch {
	case v.IsNull() && o.IsNull():
		return 0
	case v.IsNull():
		return -1
	case o.IsNull():
		return 1
	}
	if v.Typ.Numeric() && o.Typ.Numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	switch v.Typ {
	case TypeString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	case TypeBool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		default:
			return 0
		}
	}
	return 0
}

// GroupKey renders a value as a canonical string usable as a map key for
// grouping and join hashing. Integers and floats with identical numeric
// value produce identical keys.
func (v Value) GroupKey() string {
	if v.IsNull() {
		return "\x00N"
	}
	switch v.Typ {
	case TypeInt64:
		return "i" + strconv.FormatInt(v.I, 36)
	case TypeFloat64:
		if v.F == float64(int64(v.F)) {
			return "i" + strconv.FormatInt(int64(v.F), 36)
		}
		return "f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case TypeString:
		return "s" + v.S
	case TypeBool:
		if v.B {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// ParseValue parses text into a value of the given type.
func ParseValue(t Type, s string) (Value, error) {
	if s == "" || s == "NULL" || s == "null" {
		return NullValue(t), nil
	}
	switch t {
	case TypeInt64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("storage: parse %q as BIGINT: %w", s, err)
		}
		return Int64(i), nil
	case TypeFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("storage: parse %q as DOUBLE: %w", s, err)
		}
		return Float64(f), nil
	case TypeString:
		return Str(s), nil
	case TypeBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("storage: parse %q as BOOLEAN: %w", s, err)
		}
		return Bool(b), nil
	}
	return Value{}, fmt.Errorf("storage: parse into invalid type")
}
