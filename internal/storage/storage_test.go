package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	cases := []struct {
		v    Value
		s    string
		null bool
	}{
		{Int64(42), "42", false},
		{Float64(2.5), "2.5", false},
		{Str("hi"), "hi", false},
		{Bool(true), "true", false},
		{NullValue(TypeInt64), "NULL", true},
		{Value{}, "NULL", true},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.s {
			t.Errorf("String() = %q, want %q", got, c.s)
		}
		if got := c.v.IsNull(); got != c.null {
			t.Errorf("IsNull(%v) = %v, want %v", c.v, got, c.null)
		}
	}
}

func TestValueNumericCoercion(t *testing.T) {
	if !Int64(3).Equal(Float64(3)) {
		t.Error("3 (int) should equal 3.0 (float)")
	}
	if Int64(3).Equal(Float64(3.5)) {
		t.Error("3 should not equal 3.5")
	}
	if Int64(3).GroupKey() != Float64(3).GroupKey() {
		t.Error("numeric group keys must agree for equal values")
	}
	if Int64(3).Compare(Float64(3.5)) != -1 {
		t.Error("3 < 3.5")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	if NullValue(TypeInt64).Compare(Int64(-100)) != -1 {
		t.Error("NULL must sort first")
	}
	if Str("a").Compare(Str("b")) != -1 || Str("b").Compare(Str("a")) != 1 {
		t.Error("string compare broken")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Error("false < true")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(TypeInt64, "123")
	if err != nil || v.I != 123 {
		t.Fatalf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(TypeFloat64, "1.5")
	if err != nil || v.F != 1.5 {
		t.Fatalf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue(TypeBool, "true")
	if err != nil || !v.B {
		t.Fatalf("ParseValue bool: %v %v", v, err)
	}
	if _, err := ParseValue(TypeInt64, "xyz"); err == nil {
		t.Fatal("expected parse error")
	}
	v, err = ParseValue(TypeInt64, "NULL")
	if err != nil || !v.IsNull() {
		t.Fatalf("ParseValue NULL: %v %v", v, err)
	}
}

func TestColumnTypes(t *testing.T) {
	for _, typ := range []Type{TypeInt64, TypeFloat64, TypeString, TypeBool} {
		c := NewColumn(typ)
		if c.Type() != typ {
			t.Errorf("NewColumn(%v).Type() = %v", typ, c.Type())
		}
		if err := c.Append(NullValue(typ)); err != nil {
			t.Errorf("append NULL to %v: %v", typ, err)
		}
		if !c.IsNull(0) {
			t.Errorf("%v: expected NULL at 0", typ)
		}
	}
}

func TestColumnTypeMismatch(t *testing.T) {
	c := NewColumn(TypeInt64)
	if err := c.Append(Str("x")); err == nil {
		t.Fatal("expected type error appending string to int column")
	}
	s := NewColumn(TypeString)
	if err := s.Append(Int64(5)); err == nil {
		t.Fatal("expected type error appending int to string column")
	}
}

func TestColumnRoundTrip(t *testing.T) {
	c := NewColumn(TypeFloat64)
	want := []float64{1, 2.5, -3, 0}
	for _, f := range want {
		if err := c.Append(Float64(f)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != len(want) {
		t.Fatalf("Len = %d", c.Len())
	}
	for i, f := range want {
		if got := c.Value(i).F; got != f {
			t.Errorf("Value(%d) = %v, want %v", i, got, f)
		}
	}
}

func TestTableAppendAndBlocks(t *testing.T) {
	tbl := NewTableWithBlockSize("t", Schema{{Name: "a", Type: TypeInt64}}, 10)
	for i := 0; i < 25; i++ {
		if err := tbl.AppendRow(Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.NumRows() != 25 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if tbl.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d", tbl.NumBlocks())
	}
	lo, hi := tbl.BlockBounds(2)
	if lo != 20 || hi != 25 {
		t.Fatalf("BlockBounds(2) = %d,%d", lo, hi)
	}
	if v := tbl.Version(); v != 25 {
		t.Fatalf("Version = %d, want 25 (one bump per append)", v)
	}
}

func TestTableSchemaMismatch(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "a", Type: TypeInt64}, {Name: "b", Type: TypeString}})
	if err := tbl.AppendRow(Int64(1)); err == nil {
		t.Fatal("expected arity error")
	}
	if err := tbl.AppendRow(Str("x"), Str("y")); err == nil {
		t.Fatal("expected type error")
	}
}

func TestTableStats(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "x", Type: TypeFloat64}})
	vals := []float64{1, 2, 3, 4, 5}
	for _, v := range vals {
		if err := tbl.AppendRow(Float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AppendRow(NullValue(TypeFloat64)); err != nil {
		t.Fatal(err)
	}
	st, err := tbl.Stats("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.NullCount != 1 {
		t.Errorf("NullCount = %d", st.NullCount)
	}
	if st.Min.F != 1 || st.Max.F != 5 {
		t.Errorf("Min/Max = %v/%v", st.Min, st.Max)
	}
	if st.DistinctCount != 5 {
		t.Errorf("DistinctCount = %d", st.DistinctCount)
	}
	if st.Mean != 3 {
		t.Errorf("Mean = %v", st.Mean)
	}
	if st.Variance != 2 {
		t.Errorf("Variance = %v, want 2", st.Variance)
	}
	if _, err := tbl.Stats("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl := NewTable("orders", Schema{{Name: "id", Type: TypeInt64}})
	if err := c.Add(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(tbl); err == nil {
		t.Fatal("expected duplicate error")
	}
	got, err := c.Table("orders")
	if err != nil || got != tbl {
		t.Fatalf("Table lookup: %v %v", got, err)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "orders" {
		t.Fatalf("Names = %v", names)
	}
	c.Drop("orders")
	if _, err := c.Table("orders"); err == nil {
		t.Fatal("expected error after drop")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{Name: "a", Type: TypeInt64}, {Name: "b", Type: TypeString}}
	if s.ColumnIndex("b") != 1 || s.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex broken")
	}
	cl := s.Clone()
	cl[0].Name = "changed"
	if s[0].Name != "a" {
		t.Error("Clone must deep copy")
	}
	if n := s.Names(); n[0] != "a" || n[1] != "b" {
		t.Errorf("Names = %v", n)
	}
}

// Property: Compare is antisymmetric and Equal implies Compare == 0 for
// same-type numeric values.
func TestValueCompareProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int64(a), Int64(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		if va.Equal(vb) != (va.Compare(vb) == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GroupKey is injective over a random set of int64s (no
// collisions for distinct values).
func TestGroupKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[string]int64)
	for i := 0; i < 10000; i++ {
		v := rng.Int63() - rng.Int63()
		k := Int64(v).GroupKey()
		if prev, ok := seen[k]; ok && prev != v {
			t.Fatalf("GroupKey collision: %d and %d -> %q", prev, v, k)
		}
		seen[k] = v
	}
}

// Property: appending then reading any sequence of optionally-null floats
// round-trips.
func TestColumnRoundTripProperty(t *testing.T) {
	f := func(vals []float64, nullEvery uint8) bool {
		c := NewColumn(TypeFloat64)
		ne := int(nullEvery%5) + 2
		for i, v := range vals {
			var err error
			if i%ne == 0 {
				err = c.Append(NullValue(TypeFloat64))
			} else {
				err = c.Append(Float64(v))
			}
			if err != nil {
				return false
			}
		}
		for i, v := range vals {
			got := c.Value(i)
			if i%ne == 0 {
				if !got.IsNull() {
					return false
				}
			} else if got.F != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
