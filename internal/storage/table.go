package storage

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultBlockSize is the number of rows per logical storage block. Block
// sampling (TABLESAMPLE SYSTEM) selects whole blocks of this size.
const DefaultBlockSize = 1024

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColumnIndex returns the index of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Table is an append-only columnar table divided into fixed-size blocks.
type Table struct {
	name      string
	schema    Schema
	cols      []Column
	blockSize int
	rows      int
	version   uint64 // bumped on every append batch; used for staleness
	mu        sync.RWMutex
}

// NewTable creates an empty table with the given schema and the default
// block size.
func NewTable(name string, schema Schema) *Table {
	return NewTableWithBlockSize(name, schema, DefaultBlockSize)
}

// NewTableWithBlockSize creates an empty table with an explicit block size.
func NewTableWithBlockSize(name string, schema Schema, blockSize int) *Table {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	cols := make([]Column, len(schema))
	for i, def := range schema {
		cols[i] = NewColumn(def.Type)
	}
	return &Table{name: name, schema: schema.Clone(), cols: cols, blockSize: blockSize}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema (shared; do not mutate).
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// BlockSize returns the rows-per-block granularity.
func (t *Table) BlockSize() int { return t.blockSize }

// NumBlocks returns the number of (possibly partial) blocks.
func (t *Table) NumBlocks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.rows == 0 {
		return 0
	}
	return (t.rows + t.blockSize - 1) / t.blockSize
}

// Version returns a counter incremented on every AppendRow/AppendRows call;
// offline sample catalogs use it to detect staleness.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// BlockBounds returns the half-open row range [lo, hi) of block b.
func (t *Table) BlockBounds(b int) (lo, hi int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	lo = b * t.blockSize
	hi = lo + t.blockSize
	if hi > t.rows {
		hi = t.rows
	}
	if lo > t.rows {
		lo = t.rows
	}
	return lo, hi
}

// Snapshot returns a consistent read-only view of the table as of now:
// a detached Table whose row count and column slice headers are frozen
// under the table lock. Because storage is append-only, the frozen prefix
// never mutates, so a snapshot may be scanned freely while writers keep
// appending to the live table. Concurrent query execution takes a
// snapshot per scan; direct Column/Row access on a live table is only
// safe when no writer is active.
func (t *Table) Snapshot() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.snapshot()
	}
	return &Table{
		name:      t.name,
		schema:    t.schema,
		cols:      cols,
		blockSize: t.blockSize,
		rows:      t.rows,
		version:   t.version,
	}
}

// Column returns the i-th column.
func (t *Table) Column(i int) Column { return t.cols[i] }

// ColumnByName returns the named column, or nil.
func (t *Table) ColumnByName(name string) Column {
	i := t.schema.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// Row materializes row i as a slice of values.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c, col := range t.cols {
		out[c] = col.Value(i)
	}
	return out
}

// AppendRow appends one row. The number of values must match the schema.
func (t *Table) AppendRow(vals ...Value) error {
	return t.AppendRows([][]Value{vals})
}

// AppendRows appends a batch of rows atomically with respect to readers of
// NumRows and Version.
func (t *Table) AppendRows(rows [][]Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, vals := range rows {
		if len(vals) != len(t.cols) {
			return fmt.Errorf("storage: table %s: row has %d values, schema has %d columns",
				t.name, len(vals), len(t.cols))
		}
		for i, v := range vals {
			if err := t.cols[i].Append(v); err != nil {
				return fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema[i].Name, err)
			}
		}
		t.rows++
	}
	t.version++
	return nil
}

// ColumnStats summarizes one column for planning and sampling decisions.
type ColumnStats struct {
	Name          string
	Type          Type
	NullCount     int
	Min, Max      Value
	DistinctCount int     // exact over scanned rows
	Mean          float64 // numeric columns only
	Variance      float64 // population variance, numeric columns only
}

// Stats computes column statistics with a full scan. It is intentionally
// exact: the planner experiments need ground truth to compare against.
// The scan runs over a snapshot, so it is safe under concurrent appends.
func (t *Table) Stats(colName string) (ColumnStats, error) {
	idx := t.schema.ColumnIndex(colName)
	if idx < 0 {
		return ColumnStats{}, fmt.Errorf("storage: table %s has no column %s", t.name, colName)
	}
	col := t.Snapshot().cols[idx]
	st := ColumnStats{Name: colName, Type: col.Type()}
	distinct := make(map[string]struct{})
	var n float64
	var mean, m2 float64
	for i := 0; i < col.Len(); i++ {
		if col.IsNull(i) {
			st.NullCount++
			continue
		}
		v := col.Value(i)
		distinct[v.GroupKey()] = struct{}{}
		if st.Min.IsNull() || v.Compare(st.Min) < 0 {
			st.Min = v
		}
		if st.Max.IsNull() || v.Compare(st.Max) > 0 {
			st.Max = v
		}
		if col.Type().Numeric() {
			x := v.AsFloat()
			n++
			d := x - mean
			mean += d / n
			m2 += d * (x - mean)
		}
	}
	st.DistinctCount = len(distinct)
	if n > 0 {
		st.Mean = mean
		st.Variance = m2 / n
	}
	return st, nil
}

// Catalog is a named collection of tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table; replacing an existing table of the same name is an
// error.
func (c *Catalog) Add(t *Table) error {
	return c.AddAs(t.Name(), t)
}

// AddAs registers a table under an explicit name, which may differ from
// the table's own name. AQP engines use this to substitute a materialized
// sample for a base table in a shadow catalog.
func (c *Catalog) AddAs(name string, t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("storage: table %s already exists", name)
	}
	c.tables[name] = t
	return nil
}

// Drop removes a table by name if present.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, name)
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
