package storage

import "testing"

func TestAllColumnAccessors(t *testing.T) {
	ic := &Int64Column{}
	if err := ic.Append(Int64(7)); err != nil {
		t.Fatal(err)
	}
	if ic.Len() != 1 || ic.Int(0) != 7 || ic.Value(0).I != 7 {
		t.Error("int column accessors")
	}
	fc := &Float64Column{}
	if err := fc.Append(Float64(2.5)); err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 1 || fc.Float(0) != 2.5 || fc.Value(0).F != 2.5 {
		t.Error("float column accessors")
	}
	sc := &StringColumn{}
	if err := sc.Append(Str("x")); err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 1 || sc.Value(0).S != "x" {
		t.Error("string column accessors")
	}
	bc := &BoolColumn{}
	if err := bc.Append(Bool(true)); err != nil {
		t.Fatal(err)
	}
	if bc.Len() != 1 || !bc.Value(0).B {
		t.Error("bool column accessors")
	}
	// Type coercion on append: float into int column truncates; bool errors.
	if err := ic.Append(Float64(3.9)); err != nil || ic.Int(1) != 3 {
		t.Error("float into int column truncates")
	}
	if err := fc.Append(Int64(4)); err != nil || fc.Float(1) != 4 {
		t.Error("int into float column widens")
	}
	if err := bc.Append(Int64(1)); err == nil {
		t.Error("int into bool column must error")
	}
	if err := sc.Append(Bool(true)); err == nil {
		t.Error("bool into string column must error")
	}
	// NULLs after non-NULLs lazily allocate the null map.
	if err := ic.Append(NullValue(TypeInt64)); err != nil {
		t.Fatal(err)
	}
	if ic.IsNull(0) || ic.IsNull(1) || !ic.IsNull(2) {
		t.Error("lazy null map")
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := NewTableWithBlockSize("t", Schema{
		{Name: "a", Type: TypeInt64},
		{Name: "b", Type: TypeString},
	}, 16)
	if err := tbl.AppendRow(Int64(1), Str("x")); err != nil {
		t.Fatal(err)
	}
	if tbl.BlockSize() != 16 {
		t.Error("BlockSize")
	}
	if len(tbl.Schema()) != 2 {
		t.Error("Schema")
	}
	if tbl.Column(1).Type() != TypeString {
		t.Error("Column")
	}
	if tbl.ColumnByName("b") == nil || tbl.ColumnByName("z") != nil {
		t.Error("ColumnByName")
	}
	row := tbl.Row(0)
	if row[0].I != 1 || row[1].S != "x" {
		t.Errorf("Row = %v", row)
	}
	// Zero-block-size constructor falls back to the default.
	d := NewTableWithBlockSize("d", Schema{{Name: "x", Type: TypeInt64}}, 0)
	if d.BlockSize() != DefaultBlockSize {
		t.Error("default block size fallback")
	}
	if d.NumBlocks() != 0 {
		t.Error("empty table has no blocks")
	}
}

func TestCatalogAddAs(t *testing.T) {
	c := NewCatalog()
	tbl := NewTable("real_name", Schema{{Name: "x", Type: TypeInt64}})
	if err := c.AddAs("alias", tbl); err != nil {
		t.Fatal(err)
	}
	got, err := c.Table("alias")
	if err != nil || got != tbl {
		t.Fatal("AddAs lookup failed")
	}
	if _, err := c.Table("real_name"); err == nil {
		t.Error("table must only be visible under its registered name")
	}
	if err := c.AddAs("alias", tbl); err == nil {
		t.Error("duplicate alias must error")
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{
		TypeInt64: "BIGINT", TypeFloat64: "DOUBLE",
		TypeString: "VARCHAR", TypeBool: "BOOLEAN", TypeInvalid: "INVALID",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%v.String() = %q", typ, typ.String())
		}
	}
	if !TypeInt64.Numeric() || !TypeFloat64.Numeric() || TypeString.Numeric() || TypeBool.Numeric() {
		t.Error("Numeric()")
	}
}

func TestStatsOnStringColumn(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "s", Type: TypeString}})
	for _, v := range []string{"b", "a", "c", "a"} {
		if err := tbl.AppendRow(Str(v)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tbl.Stats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Min.S != "a" || st.Max.S != "c" || st.DistinctCount != 3 {
		t.Errorf("string stats = %+v", st)
	}
	if st.Mean != 0 || st.Variance != 0 {
		t.Error("non-numeric columns have no moments")
	}
}

func TestBlockBoundsClamping(t *testing.T) {
	tbl := NewTableWithBlockSize("t", Schema{{Name: "x", Type: TypeInt64}}, 10)
	for i := 0; i < 5; i++ {
		if err := tbl.AppendRow(Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := tbl.BlockBounds(0)
	if lo != 0 || hi != 5 {
		t.Errorf("partial block bounds = %d,%d", lo, hi)
	}
	lo, hi = tbl.BlockBounds(7)
	if lo != 5 || hi != 5 {
		t.Errorf("past-end block bounds = %d,%d", lo, hi)
	}
}
