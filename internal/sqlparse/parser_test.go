package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/sample"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSimple(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b FROM t WHERE a > 1")
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if stmt.From.Name != "t" {
		t.Fatalf("from = %q", stmt.From.Name)
	}
	if stmt.Where == nil {
		t.Fatal("missing where")
	}
	if stmt.Limit != -1 {
		t.Fatal("limit should default to -1")
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t")
	aggs := stmt.Aggregates()
	if len(aggs) != 5 {
		t.Fatalf("aggs = %d", len(aggs))
	}
	if aggs[0].Func != AggCount || !aggs[0].Star {
		t.Error("first agg should be COUNT(*)")
	}
	if aggs[1].Func != AggSum || aggs[1].Arg == nil {
		t.Error("second agg should be SUM(x)")
	}
	for i, a := range aggs {
		if a.Slot != i {
			t.Errorf("slot %d = %d", i, a.Slot)
		}
	}
}

func TestParseCompositeAggregate(t *testing.T) {
	stmt := mustParse(t, "SELECT SUM(a)/SUM(b) AS ratio FROM t")
	if len(stmt.Items) != 1 || stmt.Items[0].Alias != "ratio" {
		t.Fatal("alias lost")
	}
	aggs := stmt.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("aggs = %d", len(aggs))
	}
	if _, ok := stmt.Items[0].Expr.(*expr.Binary); !ok {
		t.Fatal("composite aggregate should parse to a binary expression")
	}
}

func TestParseCountDistinct(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(DISTINCT user_id) FROM hits")
	aggs := stmt.Aggregates()
	if len(aggs) != 1 || !aggs[0].Distinct {
		t.Fatal("expected COUNT(DISTINCT ...)")
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT dept, COUNT(*) AS n FROM emp
		GROUP BY dept HAVING COUNT(*) > 5 ORDER BY n DESC, dept LIMIT 10`)
	if len(stmt.GroupBy) != 1 {
		t.Fatal("group by lost")
	}
	if stmt.Having == nil {
		t.Fatal("having lost")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Fatalf("limit = %d", stmt.Limit)
	}
}

func TestParseJoin(t *testing.T) {
	stmt := mustParse(t, `SELECT SUM(l_price) FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey
		JOIN customer ON o_custkey = c_custkey
		WHERE o_year = 1995`)
	if len(stmt.Joins) != 2 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	tables := stmt.Tables()
	if strings.Join(tables, ",") != "lineitem,orders,customer" {
		t.Fatalf("tables = %v", tables)
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	stmt := mustParse(t, "SELECT t.a FROM t WHERE t.a > 0")
	cols := expr.Columns(stmt.Items[0].Expr)
	if len(cols) != 1 || cols[0] != "a" {
		t.Fatalf("qualifier should be stripped: %v", cols)
	}
}

func TestParseTableSample(t *testing.T) {
	cases := []struct {
		sql  string
		kind sample.Kind
		rate float64
	}{
		{"SELECT COUNT(*) FROM t TABLESAMPLE BERNOULLI (5)", sample.KindUniformRow, 0.05},
		{"SELECT COUNT(*) FROM t TABLESAMPLE SYSTEM (1)", sample.KindBlock, 0.01},
		{"SELECT COUNT(*) FROM t TABLESAMPLE UNIVERSE (10) ON (k)", sample.KindUniverse, 0.10},
		{"SELECT COUNT(*) FROM t TABLESAMPLE DISTINCT (2, 50) ON (g)", sample.KindDistinct, 0.02},
	}
	for _, c := range cases {
		stmt := mustParse(t, c.sql)
		ts := stmt.From.Sample
		if ts == nil {
			t.Fatalf("%q: no sample parsed", c.sql)
		}
		if ts.Spec.Kind != c.kind {
			t.Errorf("%q: kind = %v, want %v", c.sql, ts.Spec.Kind, c.kind)
		}
		if diff := ts.Spec.Rate - c.rate; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%q: rate = %v, want %v", c.sql, ts.Spec.Rate, c.rate)
		}
	}
	stmt := mustParse(t, "SELECT COUNT(*) FROM t TABLESAMPLE DISTINCT (2, 50) ON (g)")
	if stmt.From.Sample.Spec.KeepThreshold != 50 {
		t.Errorf("keep = %d", stmt.From.Sample.Spec.KeepThreshold)
	}
}

func TestParseErrorClause(t *testing.T) {
	stmt := mustParse(t, "SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%")
	if stmt.Error == nil {
		t.Fatal("error clause lost")
	}
	if stmt.Error.RelError != 0.05 || stmt.Error.Confidence != 0.95 {
		t.Fatalf("error clause = %+v", stmt.Error)
	}
	// Fractional form without %.
	stmt = mustParse(t, "SELECT SUM(x) FROM t WITH ERROR 0.01")
	if stmt.Error.RelError != 0.01 || stmt.Error.Confidence != 0.95 {
		t.Fatalf("error clause = %+v", stmt.Error)
	}
}

func TestParseExpressions(t *testing.T) {
	good := []string{
		"SELECT a + b * 2 FROM t",
		"SELECT -a FROM t",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE a NOT IN (1, 2)",
		"SELECT a FROM t WHERE name LIKE 'abc%'",
		"SELECT a FROM t WHERE name NOT LIKE '%x%'",
		"SELECT a FROM t WHERE a IS NULL",
		"SELECT a FROM t WHERE a IS NOT NULL",
		"SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
		"SELECT ABS(a), SQRT(b) FROM t",
		"SELECT a FROM t WHERE s = 'it''s'",
		"SELECT a FROM t; ",
		"SELECT a FROM t -- trailing comment",
	}
	for _, sql := range good {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a t t t",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t TABLESAMPLE WRONG (5)",
		"SELECT a FROM t TABLESAMPLE UNIVERSE (5)", // missing ON
		"SELECT a FROM t WHERE 'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestStmtString(t *testing.T) {
	sql := "SELECT dept, SUM(pay) AS total FROM emp WHERE pay > 10 GROUP BY dept ORDER BY total DESC LIMIT 5 WITH ERROR 5% CONFIDENCE 95%"
	stmt := mustParse(t, sql)
	rendered := stmt.String()
	// Round-trip: re-parse the rendered SQL.
	stmt2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse %q: %v", rendered, err)
	}
	if stmt2.String() != rendered {
		t.Errorf("String not fixed-point:\n%s\n%s", rendered, stmt2.String())
	}
}

func TestLexer(t *testing.T) {
	toks, err := Lex("SELECT a1, 'str''x', 1.5e3 <= >= <> != ( )")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokString, TokSymbol,
		TokNumber, TokSymbol, TokSymbol, TokSymbol, TokSymbol, TokSymbol, TokSymbol, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v (%+v)", i, toks[i].Kind, k, toks[i])
		}
	}
	if toks[3].Text != "str'x" {
		t.Errorf("string literal = %q", toks[3].Text)
	}
}

func TestAggFuncLinear(t *testing.T) {
	if !AggSum.Linear() || !AggCount.Linear() || !AggAvg.Linear() {
		t.Error("SUM/COUNT/AVG are linear")
	}
	if AggMin.Linear() || AggMax.Linear() {
		t.Error("MIN/MAX are not linear")
	}
}
