package sqlparse

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/sample"
)

// Fingerprint identifies a query *shape*: the canonical statement with
// every literal replaced by a placeholder, plus the query-column-set
// (the grouping and predicate columns that determine which stratified
// sample or synopsis could serve the shape). Two queries that differ
// only in literal values — `WHERE x > 5` vs `WHERE x > 9`, different
// LIMIT or error-clause numbers, different TABLESAMPLE rates — share a
// fingerprint; any structural change (another column, another operator,
// another aggregate) produces a new one.
type Fingerprint struct {
	// Hash is the stable 64-bit FNV-1a digest of Template and QCS,
	// rendered as 16 hex digits. This is the registry key and the value
	// stamped into Diagnostics.
	Hash string `json:"hash"`
	// Template is the literal-normalized canonical SQL.
	Template string `json:"template"`
	// Table is the base (FROM) table.
	Table string `json:"table"`
	// QCS is the sorted distinct set of columns referenced by GROUP BY
	// and WHERE — the query-column-set that sample/synopsis selection
	// keys on.
	QCS []string `json:"qcs,omitempty"`
}

// Fingerprint computes the statement's shape identity. It is total: any
// parse-able statement fingerprints without error, and the EXPLAIN /
// EXPLAIN ANALYZE prefix is ignored so analysis runs correlate with
// their plain shape.
func (s *SelectStmt) Fingerprint() Fingerprint {
	tmpl := s.TemplateString()
	qcs := s.QueryColumnSet()
	h := fnv.New64a()
	_, _ = h.Write([]byte(tmpl))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(strings.Join(qcs, ",")))
	return Fingerprint{
		Hash:     fmt.Sprintf("%016x", h.Sum64()),
		Template: tmpl,
		Table:    s.From.Name,
		QCS:      qcs,
	}
}

// QueryColumnSet returns the sorted distinct columns referenced by the
// GROUP BY and WHERE clauses — the purely syntactic analogue of the
// offline engine's QCS, computable without a catalog.
func (s *SelectStmt) QueryColumnSet() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, c := range expr.Columns(e) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	for _, g := range s.GroupBy {
		add(g)
	}
	add(s.Where)
	sort.Strings(out)
	return out
}

// TemplateString renders the statement in its canonical form with every
// literal parameterized: scalar literals become `?`, all-literal IN
// lists collapse to `IN (?)` (list arity is a parameter, not shape),
// LIMIT keeps its presence but not its value, WITH ERROR/CONFIDENCE and
// TABLESAMPLE keep their kind but parameterize their rates. Structure —
// columns, operators, aggregate functions (including PERCENTILE's
// quantile, which selects the statistic computed), join topology, sort
// keys — is preserved verbatim.
func (s *SelectStmt) TemplateString() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(templateExpr(it.Expr))
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM " + s.From.Name)
	if s.From.Sample != nil {
		b.WriteString(" TABLESAMPLE " + templateSample(s.From.Sample))
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Table.Name)
		if j.Table.Sample != nil {
			b.WriteString(" TABLESAMPLE " + templateSample(j.Table.Sample))
		}
		b.WriteString(" ON " + templateExpr(j.On))
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + templateExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(templateExpr(g))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + templateExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(templateExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ?")
	}
	if s.Error != nil {
		b.WriteString(" WITH ERROR ? CONFIDENCE ?")
	}
	return b.String()
}

// templateSample renders a TABLESAMPLE clause keeping the sampler kind
// and key columns (shape) while parameterizing rates and thresholds.
func templateSample(ts *TableSample) string {
	sp := ts.Spec
	var b strings.Builder
	switch sp.Kind {
	case sample.KindUniformRow:
		b.WriteString("BERNOULLI (?")
	case sample.KindBlock:
		b.WriteString("SYSTEM (?")
	case sample.KindUniverse:
		b.WriteString("UNIVERSE (?")
	case sample.KindDistinct:
		b.WriteString("DISTINCT (?")
		if sp.KeepThreshold > 1 {
			b.WriteString(", ?")
		}
	case sample.KindBiLevel:
		b.WriteString("BILEVEL (?, ?")
	default:
		return sp.Kind.String() + " (?)"
	}
	b.WriteString(")")
	if len(sp.KeyColumns) > 0 {
		b.WriteString(" ON (" + strings.Join(sp.KeyColumns, ", ") + ")")
	}
	return b.String()
}

// templateExpr renders an expression tree in the canonical String()
// spelling with literals replaced by placeholders. It mirrors each
// node's String method so the template differs from the canonical form
// only at parameterized positions.
func templateExpr(e expr.Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *expr.Lit:
		return "?"
	case *expr.ColRef:
		return n.Name
	case *expr.Binary:
		return fmt.Sprintf("(%s %s %s)", templateExpr(n.L), n.Op, templateExpr(n.R))
	case *expr.Unary:
		return fmt.Sprintf("(%s %s)", n.Op, templateExpr(n.X))
	case *expr.In:
		neg := ""
		if n.Negate {
			neg = " NOT"
		}
		allLit := true
		for _, it := range n.List {
			if _, ok := it.(*expr.Lit); !ok {
				allLit = false
				break
			}
		}
		if allLit {
			// The membership list's arity is a parameter: IN (1, 2) and
			// IN (1, 2, 3) are the same shape with different constants.
			return fmt.Sprintf("(%s%s IN (?))", templateExpr(n.X), neg)
		}
		parts := make([]string, len(n.List))
		for i, it := range n.List {
			parts[i] = templateExpr(it)
		}
		return fmt.Sprintf("(%s%s IN (%s))", templateExpr(n.X), neg, strings.Join(parts, ", "))
	case *expr.Call:
		switch n.Name {
		case "LIKE":
			if len(n.Args) == 2 {
				return fmt.Sprintf("(%s LIKE %s)", templateExpr(n.Args[0]), templateExpr(n.Args[1]))
			}
		case "ISNULL":
			if len(n.Args) == 1 {
				return fmt.Sprintf("(%s IS NULL)", templateExpr(n.Args[0]))
			}
		case "ISNOTNULL":
			if len(n.Args) == 1 {
				return fmt.Sprintf("(%s IS NOT NULL)", templateExpr(n.Args[0]))
			}
		}
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = templateExpr(a)
		}
		return fmt.Sprintf("%s(%s)", n.Name, strings.Join(parts, ", "))
	case *AggExpr:
		arg := "*"
		if !n.Star && n.Arg != nil {
			arg = templateExpr(n.Arg)
		}
		if n.Distinct {
			arg = "DISTINCT " + arg
		}
		if n.Func == AggPercentile {
			// The quantile selects which statistic is computed — shape,
			// like the function name, not a predicate constant.
			return fmt.Sprintf("%s(%s, %g)", n.Func, arg, n.Param)
		}
		return fmt.Sprintf("%s(%s)", n.Func, arg)
	default:
		// Unknown node kinds keep their canonical spelling; fingerprinting
		// must stay total even if the expression grammar grows.
		return e.String()
	}
}
