package sqlparse

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/sample"
	"repro/internal/storage"
)

// AggFunc names an aggregate function.
type AggFunc string

// Supported aggregate functions.
const (
	AggSum        AggFunc = "SUM"
	AggCount      AggFunc = "COUNT"
	AggAvg        AggFunc = "AVG"
	AggMin        AggFunc = "MIN"
	AggMax        AggFunc = "MAX"
	AggPercentile AggFunc = "PERCENTILE"
)

// Linear reports whether the aggregate is a linear (sampling-friendly)
// aggregate. MIN/MAX and COUNT(DISTINCT) are non-linear: samples cannot
// bound their error, so approximate engines must fall back to exact
// execution for them — one of the paper's generality limits.
func (f AggFunc) Linear() bool { return f == AggSum || f == AggCount || f == AggAvg }

// SampleApproximable reports whether the aggregate's error can be bounded
// from a uniform sample. Linear aggregates qualify via the CLT;
// PERCENTILE qualifies via the DKW inequality on the empirical CDF
// (distribution precision). MIN/MAX and COUNT(DISTINCT) do not.
func (f AggFunc) SampleApproximable() bool { return f.Linear() || f == AggPercentile }

// AggExpr is an aggregate call appearing inside a select item. It
// implements expr.Expr so that composite items such as SUM(a)/SUM(b) parse
// into ordinary expression trees; the planner replaces each AggExpr with a
// reference to the aggregate's output slot before evaluation.
type AggExpr struct {
	Func     AggFunc
	Arg      expr.Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
	// Param is PERCENTILE's quantile in (0, 1).
	Param float64
	// Slot is assigned by the planner: the index of this aggregate's
	// output among the query's aggregates.
	Slot int
}

// Eval implements expr.Expr. The planner must rewrite AggExprs away before
// evaluation; reaching Eval is a bug.
func (a *AggExpr) Eval(expr.Row) (storage.Value, error) {
	return storage.Value{}, fmt.Errorf("sqlparse: unplanned aggregate %s", a)
}

// Type implements expr.Expr.
func (a *AggExpr) Type() storage.Type {
	switch a.Func {
	case AggCount:
		return storage.TypeInt64
	case AggAvg, AggPercentile:
		return storage.TypeFloat64
	case AggMin, AggMax:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return storage.TypeFloat64
	default:
		if a.Arg != nil && a.Arg.Type() == storage.TypeInt64 {
			return storage.TypeInt64
		}
		return storage.TypeFloat64
	}
}

// String implements expr.Expr.
func (a *AggExpr) String() string {
	arg := "*"
	if !a.Star && a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	if a.Func == AggPercentile {
		return fmt.Sprintf("%s(%s, %g)", a.Func, arg, a.Param)
	}
	return fmt.Sprintf("%s(%s)", a.Func, arg)
}

// Walk implements expr.Expr.
func (a *AggExpr) Walk(f func(expr.Expr)) {
	f(a)
	if a.Arg != nil {
		a.Arg.Walk(f)
	}
}

// SelectItem is one output column of the query.
type SelectItem struct {
	Expr  expr.Expr // may contain AggExpr nodes
	Alias string
}

// Name returns the display name of the item.
func (s SelectItem) Name(i int) string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Expr != nil {
		return s.Expr.String()
	}
	return fmt.Sprintf("col%d", i)
}

// TableSample is a parsed TABLESAMPLE clause.
type TableSample struct {
	Spec sample.Spec
}

// pctString renders a rate as the percentage literal the parser divides
// back to exactly that rate. The obvious candidate rate*100 can round so
// that fl(x/100) != rate; the few-ulp neighborhood always contains a
// working value for any parser-produced rate, and the shortest decimal
// among them is preferred.
func pctString(rate float64) string {
	best := ""
	try := func(x float64) {
		if x > 0 && x/100 == rate {
			s := strconv.FormatFloat(x, 'g', -1, 64)
			if best == "" || len(s) < len(best) {
				best = s
			}
		}
	}
	x0 := rate * 100
	try(x0)
	up, down := x0, x0
	for i := 0; i < 8; i++ {
		up = math.Nextafter(up, math.Inf(1))
		down = math.Nextafter(down, math.Inf(-1))
		try(up)
		try(down)
	}
	if best == "" {
		best = strconv.FormatFloat(x0, 'g', -1, 64)
	}
	return best
}

// SQL renders the clause body in the grammar parseTableSample accepts, so
// a statement's String() re-parses to the same sampler spec. Seed and
// Salt have no SQL syntax and are omitted.
func (ts *TableSample) SQL() string {
	sp := ts.Spec
	var b strings.Builder
	switch sp.Kind {
	case sample.KindUniformRow:
		b.WriteString("BERNOULLI (" + pctString(sp.Rate))
	case sample.KindBlock:
		b.WriteString("SYSTEM (" + pctString(sp.Rate))
	case sample.KindUniverse:
		b.WriteString("UNIVERSE (" + pctString(sp.Rate))
	case sample.KindDistinct:
		b.WriteString("DISTINCT (" + pctString(sp.Rate))
		if sp.KeepThreshold > 1 {
			b.WriteString(", " + strconv.Itoa(sp.KeepThreshold))
		}
	case sample.KindBiLevel:
		b.WriteString("BILEVEL (" + pctString(sp.Rate) + ", " + pctString(sp.RowRate))
	default:
		// Not expressible in the grammar; fall back to the EXPLAIN form.
		return sp.String()
	}
	b.WriteString(")")
	if len(sp.KeyColumns) > 0 {
		b.WriteString(" ON (" + strings.Join(sp.KeyColumns, ", ") + ")")
	}
	return b.String()
}

// TableRef names a table in FROM, optionally aliased and sampled.
type TableRef struct {
	Name   string
	Alias  string
	Sample *TableSample
}

// Label returns the alias if set, else the table name.
func (t TableRef) Label() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an INNER JOIN with an ON condition.
type JoinClause struct {
	Table TableRef
	On    expr.Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// ErrorClause is the AQP extension: WITH ERROR e [%] CONFIDENCE c [%].
type ErrorClause struct {
	RelError   float64 // e.g. 0.05
	Confidence float64 // e.g. 0.95
}

// SelectStmt is the parsed query.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   expr.Expr
	GroupBy []expr.Expr
	Having  expr.Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
	Error   *ErrorClause

	// Explain marks an EXPLAIN-prefixed statement (plan only); Analyze
	// additionally executes the statement and reports the traced profile.
	// Analyze implies Explain.
	Explain bool
	Analyze bool
}

// Aggregates returns all AggExpr nodes in the select items and HAVING
// clause, in traversal order, assigning Slot numbers as a side effect.
func (s *SelectStmt) Aggregates() []*AggExpr {
	var aggs []*AggExpr
	collect := func(e expr.Expr) {
		if e == nil {
			return
		}
		e.Walk(func(n expr.Expr) {
			if a, ok := n.(*AggExpr); ok {
				a.Slot = len(aggs)
				aggs = append(aggs, a)
			}
		})
	}
	for _, it := range s.Items {
		collect(it.Expr)
	}
	collect(s.Having)
	return aggs
}

// HasAggregates reports whether the query contains any aggregate call.
func (s *SelectStmt) HasAggregates() bool {
	found := false
	for _, it := range s.Items {
		if it.Expr == nil {
			continue
		}
		it.Expr.Walk(func(n expr.Expr) {
			if _, ok := n.(*AggExpr); ok {
				found = true
			}
		})
	}
	return found
}

// Tables returns all referenced table names, base first.
func (s *SelectStmt) Tables() []string {
	out := []string{s.From.Name}
	for _, j := range s.Joins {
		out = append(out, j.Table.Name)
	}
	return out
}

// String renders the statement back to SQL (canonicalized).
func (s *SelectStmt) String() string {
	var b strings.Builder
	if s.Explain {
		b.WriteString("EXPLAIN ")
		if s.Analyze {
			b.WriteString("ANALYZE ")
		}
	}
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM " + s.From.Name)
	if s.From.Sample != nil {
		b.WriteString(" TABLESAMPLE " + s.From.Sample.SQL())
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Table.Name)
		if j.Table.Sample != nil {
			b.WriteString(" TABLESAMPLE " + j.Table.Sample.SQL())
		}
		b.WriteString(" ON " + j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Error != nil {
		fmt.Fprintf(&b, " WITH ERROR %s%% CONFIDENCE %s%%", pctString(s.Error.RelError), pctString(s.Error.Confidence))
	}
	return b.String()
}
