// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL subset supported by the engine: single-block aggregation queries
// with joins, filters, grouping, ordering, TABLESAMPLE clauses, and the
// AQP extension `WITH ERROR e% CONFIDENCE c%`.
package sqlparse

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators
)

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int    // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "JOIN": true,
	"INNER": true, "ON": true, "ASC": true, "DESC": true, "DISTINCT": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"PERCENTILE":  true,
	"TABLESAMPLE": true, "BERNOULLI": true, "SYSTEM": true, "UNIVERSE": true,
	"BILEVEL": true,
	"WITH":    true, "ERROR": true, "CONFIDENCE": true, "NULL": true,
	"TRUE": true, "FALSE": true, "LIKE": true, "IS": true,
	"EXPLAIN": true, "ANALYZE": true,
}

// Lex tokenizes input, returning all tokens including a trailing EOF.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			seenDot := false
			for i < n {
				ch := input[i]
				if ch >= '0' && ch <= '9' {
					i++
					continue
				}
				if ch == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if (ch == 'e' || ch == 'E') && i+1 < n &&
					(input[i+1] >= '0' && input[i+1] <= '9' || input[i+1] == '-' || input[i+1] == '+') {
					i += 2
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '+', '-', '*', '/', '%', '=', '<', '>', ';', '.':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

// Identifiers are ASCII-only. The lexer walks bytes, so admitting
// unicode.IsLetter here would accept stray Latin-1 bytes (invalid UTF-8)
// as identifiers that later mangle under case folding.
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9')
}
