package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/sample"
	"repro/internal/storage"
)

// Parse parses a single SELECT statement.
//
// Qualified column references (alias.col) are accepted; the qualifier is
// discarded, so joined tables must have globally unique column names (the
// convention followed by every schema in this repository, TPC-H style).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	explain := p.acceptKeyword("EXPLAIN")
	analyze := explain && p.acceptKeyword("ANALYZE")
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Explain = explain
	stmt.Analyze = analyze
	// Allow a trailing semicolon.
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

type parser struct {
	toks  []Token
	pos   int
	input string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().Text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, found %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on})
	}
	if p.acceptKeyword("WHERE") {
		stmt.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		stmt.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		p.pos++
		v, err := strconv.Atoi(t.Text)
		if err != nil || v < 0 {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		stmt.Limit = v
	}
	if p.acceptKeyword("WITH") {
		if err := p.expectKeyword("ERROR"); err != nil {
			return nil, err
		}
		e, err := p.parsePercent()
		if err != nil {
			return nil, err
		}
		ec := &ErrorClause{RelError: e, Confidence: 0.95}
		if p.acceptKeyword("CONFIDENCE") {
			c, err := p.parsePercent()
			if err != nil {
				return nil, err
			}
			ec.Confidence = c
		}
		stmt.Error = ec
	}
	return stmt, nil
}

// parsePercent parses a number optionally followed by %. Values above 1
// are treated as percentages even without the sign.
func (p *parser) parsePercent() (float64, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errorf("expected number, found %q", t.Text)
	}
	p.pos++
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q", t.Text)
	}
	if p.acceptSymbol("%") || v > 1 {
		v /= 100
	}
	return v, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent {
		// Bare alias.
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.acceptKeyword("TABLESAMPLE") {
		ts, err := p.parseTableSample()
		if err != nil {
			return TableRef{}, err
		}
		tr.Sample = ts
	}
	if p.acceptKeyword("AS") {
		tr.Alias, err = p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
	} else if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		tr.Alias = t.Text
	}
	// TABLESAMPLE may also follow the alias (SQL standard order).
	if tr.Sample == nil && p.acceptKeyword("TABLESAMPLE") {
		ts, err := p.parseTableSample()
		if err != nil {
			return TableRef{}, err
		}
		tr.Sample = ts
	}
	return tr, nil
}

// parseTableSample parses:
//
//	TABLESAMPLE BERNOULLI (p)
//	TABLESAMPLE SYSTEM (p)
//	TABLESAMPLE UNIVERSE (p) ON (col, ...)
//	TABLESAMPLE DISTINCT (p [, keep]) ON (col, ...)
//
// where p is a percentage.
func (p *parser) parseTableSample() (*TableSample, error) {
	var kind sample.Kind
	switch {
	case p.acceptKeyword("BERNOULLI"):
		kind = sample.KindUniformRow
	case p.acceptKeyword("SYSTEM"):
		kind = sample.KindBlock
	case p.acceptKeyword("UNIVERSE"):
		kind = sample.KindUniverse
	case p.acceptKeyword("DISTINCT"):
		kind = sample.KindDistinct
	case p.acceptKeyword("BILEVEL"):
		kind = sample.KindBiLevel
	default:
		return nil, p.errorf("expected sampling method, found %q", p.peek().Text)
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	// TABLESAMPLE rates are percentages per the SQL standard: SYSTEM (1)
	// samples 1% of blocks.
	t := p.peek()
	if t.Kind != TokNumber {
		return nil, p.errorf("expected sampling percentage, found %q", t.Text)
	}
	p.pos++
	pct, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return nil, p.errorf("bad sampling percentage %q", t.Text)
	}
	p.acceptSymbol("%")
	rate := pct / 100
	spec := sample.Spec{Kind: kind, Rate: rate, KeepThreshold: 1}
	if kind == sample.KindBiLevel {
		// BILEVEL (blockPct, rowPct)
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
		rt := p.peek()
		if rt.Kind != TokNumber {
			return nil, p.errorf("expected row sampling percentage")
		}
		p.pos++
		rowPct, err := strconv.ParseFloat(rt.Text, 64)
		if err != nil {
			return nil, p.errorf("bad row sampling percentage %q", rt.Text)
		}
		p.acceptSymbol("%")
		spec.RowRate = rowPct / 100
	}
	if kind == sample.KindDistinct && p.acceptSymbol(",") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected keep threshold")
		}
		p.pos++
		k, err := strconv.Atoi(t.Text)
		if err != nil || k <= 0 {
			return nil, p.errorf("bad keep threshold %q", t.Text)
		}
		spec.KeepThreshold = k
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if kind == sample.KindUniverse || kind == sample.KindDistinct {
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnName()
			if err != nil {
				return nil, err
			}
			spec.KeyColumns = append(spec.KeyColumns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &TableSample{Spec: spec}, nil
}

// parseColumnName parses ident[.ident], returning the unqualified name.
func (p *parser) parseColumnName() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.acceptSymbol(".") {
		name, err = p.expectIdent()
		if err != nil {
			return "", err
		}
	}
	return name, nil
}

// Expression grammar, lowest precedence first.
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNot, X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		name := "ISNULL"
		if neg {
			name = "ISNOTNULL"
		}
		return &expr.Call{Name: name, Args: []expr.Expr{l}}, nil
	}
	// [NOT] IN / BETWEEN / LIKE
	negate := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		if n := p.toks[p.pos+1]; n.Kind == TokKeyword && (n.Text == "IN" || n.Text == "BETWEEN" || n.Text == "LIKE") {
			p.pos++
			negate = true
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &expr.In{X: l, List: list, Negate: negate}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		rng := &expr.Binary{Op: expr.OpAnd,
			L: &expr.Binary{Op: expr.OpGe, L: l, R: lo},
			R: &expr.Binary{Op: expr.OpLe, L: expr.Clone(l), R: hi}}
		if negate {
			return &expr.Unary{Op: expr.OpNot, X: rng}, nil
		}
		return rng, nil
	}
	if p.acceptKeyword("LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e expr.Expr = &expr.Call{Name: "LIKE", Args: []expr.Expr{l, pat}}
		if negate {
			e = &expr.Unary{Op: expr.OpNot, X: e}
		}
		return e, nil
	}
	t := p.peek()
	if t.Kind == TokSymbol {
		var op expr.Op
		switch t.Text {
		case "=":
			op = expr.OpEq
		case "<>", "!=":
			op = expr.OpNe
		case "<":
			op = expr.OpLt
		case "<=":
			op = expr.OpLe
		case ">":
			op = expr.OpGt
		case ">=":
			op = expr.OpGe
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "+" && t.Text != "-") {
			return l, nil
		}
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := expr.OpAdd
		if t.Text == "-" {
			op = expr.OpSub
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		var op expr.Op
		switch t.Text {
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		default:
			op = expr.OpMod
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNeg, X: x}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &expr.Lit{Val: storage.Float64(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &expr.Lit{Val: storage.Float64(f)}, nil
		}
		return &expr.Lit{Val: storage.Int64(i)}, nil
	case TokString:
		p.pos++
		return &expr.Lit{Val: storage.Str(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &expr.Lit{Val: storage.Value{Typ: storage.TypeString, Null: true}}, nil
		case "TRUE":
			p.pos++
			return &expr.Lit{Val: storage.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &expr.Lit{Val: storage.Bool(false)}, nil
		case "SUM", "COUNT", "AVG", "MIN", "MAX", "PERCENTILE":
			return p.parseAggregate()
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			// Bare * only valid inside COUNT(*), handled there.
			return nil, p.errorf("unexpected *")
		}
		return nil, p.errorf("unexpected symbol %q", t.Text)
	case TokIdent:
		p.pos++
		// Function call?
		if p.peek().Kind == TokSymbol && p.peek().Text == "(" {
			p.pos++
			name := strings.ToUpper(t.Text)
			var args []expr.Expr
			if !(p.peek().Kind == TokSymbol && p.peek().Text == ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &expr.Call{Name: name, Args: args}, nil
		}
		name := t.Text
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = col // qualifier discarded; see Parse doc
		}
		return &expr.ColRef{Name: name, Index: -1}, nil
	}
	return nil, p.errorf("unexpected token %q", t.Text)
}

func (p *parser) parseAggregate() (expr.Expr, error) {
	t := p.next() // the aggregate keyword
	fn := AggFunc(t.Text)
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	agg := &AggExpr{Func: fn}
	if p.acceptKeyword("DISTINCT") {
		agg.Distinct = true
	}
	if p.acceptSymbol("*") {
		if fn != AggCount {
			return nil, p.errorf("%s(*) is not valid", fn)
		}
		agg.Star = true
	} else {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if fn == AggPercentile {
		if err := p.expectSymbol(","); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected percentile quantile, found %q", t.Text)
		}
		p.pos++
		q, err := strconv.ParseFloat(t.Text, 64)
		if err != nil || q <= 0 || q >= 1 {
			return nil, p.errorf("percentile quantile must be in (0,1), got %q", t.Text)
		}
		agg.Param = q
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return agg, nil
}
