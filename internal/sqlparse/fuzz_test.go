package sqlparse

import (
	"testing"
)

// fuzzSeedCorpus covers every clause the grammar knows, drawn from the
// queries the experiment suite and tests actually run.
var fuzzSeedCorpus = []string{
	"SELECT COUNT(*) FROM t",
	"SELECT SUM(x), COUNT(*), AVG(x) FROM t",
	"SELECT SUM(ev_value) FROM events",
	"SELECT ev_group, COUNT(*) FROM events GROUP BY ev_group",
	"SELECT ev_group, SUM(ev_value) FROM events WHERE ev_value > 10 GROUP BY ev_group HAVING SUM(ev_value) > 100 ORDER BY ev_group DESC LIMIT 5",
	"SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem",
	"SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
	"SELECT AVG(x) FROM t TABLESAMPLE BERNOULLI (1)",
	"SELECT SUM(x) FROM t TABLESAMPLE SYSTEM (5) WHERE x < 3",
	"SELECT COUNT(*) FROM t TABLESAMPLE UNIVERSE (1) ON (k)",
	"SELECT COUNT(*) FROM t TABLESAMPLE DISTINCT (1, 30) ON (g, h)",
	"SELECT SUM(x) FROM t TABLESAMPLE BILEVEL (10, 1)",
	"SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%",
	"SELECT SUM(x) FROM t WITH ERROR 0.5",
	"SELECT SUM(x) FROM t WITH ERROR 0.5% CONFIDENCE 99%",
	"SELECT SUM(x) FROM t WITH ERROR 2 % CONFIDENCE 90 %",
	"SELECT SUM(x) FROM t WITH ERROR 0.02 CONFIDENCE 0.95",
	"SELECT AVG(x) FROM t WHERE x > 0 WITH ERROR 1%",
	"SELECT g, SUM(x) FROM t GROUP BY g LIMIT 3 WITH ERROR 5% CONFIDENCE 99%",
	"SELECT SUM(x) FROM t WITH ERROR 100% CONFIDENCE 50%",
	"SELECT PERCENTILE(x, 0.5) FROM t",
	"SELECT MIN(x), MAX(x) FROM t",
	"SELECT COUNT(DISTINCT g) FROM t",
	"SELECT x FROM t WHERE g IN (1, 2, 3) AND NOT x BETWEEN 2 AND 4",
	"SELECT x FROM t WHERE name LIKE 'a%' OR name IS NOT NULL",
	"SELECT x AS v, -x + 3.5e2 FROM t WHERE x % 2 = 1 AND (x / 4) <> 0.25",
	"SELECT x FROM t WHERE s = 'it''s' LIMIT 0;",
	"SELECT t.x FROM big t TABLESAMPLE BERNOULLI (0.1) WHERE t.x >= 1e-3",
	"EXPLAIN SELECT COUNT(*) FROM t",
	"EXPLAIN ANALYZE SELECT SUM(x) FROM t WHERE x > 1 GROUP BY g",
	"EXPLAIN ANALYZE SELECT AVG(x) FROM t WITH ERROR 5% CONFIDENCE 95%",
}

// FuzzParse asserts the two properties the rest of the system leans on:
// the parser never panics on arbitrary input, and for every accepted
// statement the canonical rendering re-parses to the same canonical form
// (String is a fixed point after one round).
func FuzzParse(f *testing.F) {
	for _, sql := range fuzzSeedCorpus {
		f.Add(sql)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		s2 := stmt.String()
		stmt2, err := Parse(s2)
		if err != nil {
			t.Fatalf("rendering of accepted input does not re-parse\ninput:  %q\nrender: %q\nerr: %v", input, s2, err)
		}
		if s3 := stmt2.String(); s3 != s2 {
			t.Fatalf("canonical form is not a fixed point\nfirst:  %q\nsecond: %q", s2, s3)
		}
	})
}

// TestParseRoundTripCorpus runs the fuzz property over the seed corpus in
// a plain test so `go test` exercises it without -fuzz.
func TestParseRoundTripCorpus(t *testing.T) {
	for _, sql := range fuzzSeedCorpus {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("seed %q failed to parse: %v", sql, err)
		}
		s2 := stmt.String()
		stmt2, err := Parse(s2)
		if err != nil {
			t.Fatalf("seed %q rendering %q does not re-parse: %v", sql, s2, err)
		}
		if s3 := stmt2.String(); s3 != s2 {
			t.Fatalf("seed %q not canonical: %q then %q", sql, s2, s3)
		}
	}
}
