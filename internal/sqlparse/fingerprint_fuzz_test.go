package sqlparse

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

// mutateLiterals rewrites every literal in the statement to a different
// same-typed value, plus the non-expression literal positions (LIMIT,
// error clause, sampler rates). By the fingerprint contract, none of
// this may change the hash.
func mutateLiterals(s *SelectStmt) {
	bump := func(e expr.Expr) {
		if e == nil {
			return
		}
		e.Walk(func(n expr.Expr) {
			l, ok := n.(*expr.Lit)
			if !ok || l.Val.Null {
				return
			}
			switch l.Val.Typ {
			case storage.TypeInt64:
				l.Val = storage.Int64(l.Val.I + 13)
			case storage.TypeFloat64:
				l.Val = storage.Float64(l.Val.F*2 + 1.25)
			case storage.TypeString:
				l.Val = storage.Str(l.Val.S + "zz")
			case storage.TypeBool:
				l.Val = storage.Bool(!l.Val.B)
			}
		})
	}
	for _, it := range s.Items {
		bump(it.Expr)
	}
	for _, j := range s.Joins {
		bump(j.On)
	}
	bump(s.Where)
	for _, g := range s.GroupBy {
		bump(g)
	}
	bump(s.Having)
	for _, o := range s.OrderBy {
		bump(o.Expr)
	}
	if s.Limit >= 0 {
		s.Limit += 7
	}
	if s.Error != nil {
		s.Error.RelError /= 2
		s.Error.Confidence *= 0.99
	}
	mutateSample := func(ts *TableSample) {
		if ts == nil {
			return
		}
		ts.Spec.Rate /= 2
		if ts.Spec.RowRate > 0 {
			ts.Spec.RowRate /= 2
		}
		if ts.Spec.KeepThreshold > 1 {
			ts.Spec.KeepThreshold *= 2
		}
	}
	mutateSample(s.From.Sample)
	for i := range s.Joins {
		mutateSample(s.Joins[i].Table.Sample)
	}
}

// FuzzFingerprint asserts the fingerprint contract on every parse-able
// input: totality (no panics), stability under the canonicalization
// round-trip (fingerprint(q) == fingerprint(parse(canonical(q)))),
// invariance under literal mutation, and sensitivity to a structural
// change (toggling LIMIT presence).
func FuzzFingerprint(f *testing.F) {
	for _, sql := range fuzzSeedCorpus {
		f.Add(sql)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		fp := stmt.Fingerprint()
		if len(fp.Hash) != 16 {
			t.Fatalf("hash %q is not 16 hex digits for %q", fp.Hash, input)
		}

		// Stability: the canonical rendering re-parses to the same shape.
		canonical := stmt.String()
		stmt2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical %q of accepted input %q does not re-parse: %v", canonical, input, err)
		}
		if fp2 := stmt2.Fingerprint(); fp2.Hash != fp.Hash || fp2.Template != fp.Template {
			t.Fatalf("fingerprint unstable across canonicalization\ninput: %q\nfirst: %s %q\nsecond: %s %q",
				input, fp.Hash, fp.Template, fp2.Hash, fp2.Template)
		}

		// Literal invariance: perturb every literal position; the shape
		// must not move.
		mutateLiterals(stmt2)
		if fp3 := stmt2.Fingerprint(); fp3.Hash != fp.Hash {
			t.Fatalf("literal mutation changed fingerprint\ninput: %q\nbefore: %s %q\nafter: %s %q",
				input, fp.Hash, fp.Template, fp3.Hash, fp3.Template)
		}

		// Structure sensitivity: toggling LIMIT presence is a different
		// shape.
		if stmt2.Limit >= 0 {
			stmt2.Limit = -1
		} else {
			stmt2.Limit = 7
		}
		if fp4 := stmt2.Fingerprint(); fp4.Hash == fp.Hash {
			t.Fatalf("LIMIT-presence toggle did not change fingerprint for %q (template %q)", input, fp.Template)
		}
	})
}

// TestFingerprintFuzzCorpus runs the fuzz property over the seed corpus
// in a plain test so `go test` exercises it without -fuzz.
func TestFingerprintFuzzCorpus(t *testing.T) {
	for _, sql := range fuzzSeedCorpus {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("seed %q failed to parse: %v", sql, err)
		}
		fp := stmt.Fingerprint()
		stmt2, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("seed %q canonical does not re-parse: %v", sql, err)
		}
		if fp2 := stmt2.Fingerprint(); fp2.Hash != fp.Hash {
			t.Fatalf("seed %q fingerprint unstable: %s vs %s", sql, fp.Hash, fp2.Hash)
		}
		mutateLiterals(stmt2)
		if fp3 := stmt2.Fingerprint(); fp3.Hash != fp.Hash {
			t.Fatalf("seed %q literal mutation moved fingerprint: %s vs %s (%q vs %q)",
				sql, fp.Hash, fp3.Hash, fp.Template, fp3.Template)
		}
	}
}
