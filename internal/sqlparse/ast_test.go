package sqlparse

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func TestAggExprMethods(t *testing.T) {
	a := &AggExpr{Func: AggSum, Arg: &expr.ColRef{Name: "x", Typ: storage.TypeInt64}}
	if _, err := a.Eval(nil); err == nil {
		t.Error("unplanned aggregate Eval must error")
	}
	if a.Type() != storage.TypeInt64 {
		t.Errorf("SUM(int) type = %v", a.Type())
	}
	fa := &AggExpr{Func: AggSum, Arg: &expr.ColRef{Name: "x", Typ: storage.TypeFloat64}}
	if fa.Type() != storage.TypeFloat64 {
		t.Error("SUM(float) is float")
	}
	c := &AggExpr{Func: AggCount, Star: true}
	if c.Type() != storage.TypeInt64 || c.String() != "COUNT(*)" {
		t.Errorf("COUNT(*): %v %q", c.Type(), c.String())
	}
	av := &AggExpr{Func: AggAvg, Arg: &expr.ColRef{Name: "x"}}
	if av.Type() != storage.TypeFloat64 {
		t.Error("AVG is float")
	}
	mn := &AggExpr{Func: AggMin, Arg: &expr.ColRef{Name: "s", Typ: storage.TypeString}}
	if mn.Type() != storage.TypeString {
		t.Error("MIN inherits arg type")
	}
	d := &AggExpr{Func: AggCount, Arg: &expr.ColRef{Name: "u"}, Distinct: true}
	if d.String() != "COUNT(DISTINCT u)" {
		t.Errorf("distinct render = %q", d.String())
	}
	// Walk visits the argument.
	n := 0
	d.Walk(func(expr.Expr) { n++ })
	if n != 2 {
		t.Errorf("walk count = %d", n)
	}
}

func TestSelectItemName(t *testing.T) {
	it := SelectItem{Expr: &expr.ColRef{Name: "x"}, Alias: "al"}
	if it.Name(0) != "al" {
		t.Error("alias wins")
	}
	it.Alias = ""
	if it.Name(0) != "x" {
		t.Error("expr string fallback")
	}
	empty := SelectItem{}
	if empty.Name(3) != "col3" {
		t.Error("positional fallback")
	}
}

func TestTableRefLabel(t *testing.T) {
	tr := TableRef{Name: "orders", Alias: "o"}
	if tr.Label() != "o" {
		t.Error("alias label")
	}
	tr.Alias = ""
	if tr.Label() != "orders" {
		t.Error("name label")
	}
}

func TestHasAggregates(t *testing.T) {
	with := mustParse(t, "SELECT SUM(x) FROM t")
	if !with.HasAggregates() {
		t.Error("has aggregates")
	}
	without := mustParse(t, "SELECT x FROM t")
	if without.HasAggregates() {
		t.Error("no aggregates")
	}
	composite := mustParse(t, "SELECT 1 + SUM(x) FROM t")
	if !composite.HasAggregates() {
		t.Error("nested aggregate detection")
	}
}

func TestParseAliasAfterTablesample(t *testing.T) {
	// SQL-standard order: alias before TABLESAMPLE.
	stmt := mustParse(t, "SELECT COUNT(*) FROM t AS x TABLESAMPLE SYSTEM (5)")
	if stmt.From.Alias != "x" || stmt.From.Sample == nil {
		t.Errorf("alias+sample: %+v", stmt.From)
	}
	// Also accepted: TABLESAMPLE before alias.
	stmt = mustParse(t, "SELECT COUNT(*) FROM t TABLESAMPLE SYSTEM (5) x")
	if stmt.From.Alias != "x" || stmt.From.Sample == nil {
		t.Errorf("sample+alias: %+v", stmt.From)
	}
}

func TestParseQualifiedSamplerKeys(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*) FROM t TABLESAMPLE UNIVERSE (5) ON (t.k)")
	if got := stmt.From.Sample.Spec.KeyColumns[0]; got != "k" {
		t.Errorf("qualified key = %q", got)
	}
}

func TestParseBilevel(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*) FROM t TABLESAMPLE BILEVEL (20, 10)")
	sp := stmt.From.Sample.Spec
	if sp.Rate != 0.2 || sp.RowRate != 0.1 {
		t.Errorf("bilevel spec = %+v", sp)
	}
	if _, err := Parse("SELECT COUNT(*) FROM t TABLESAMPLE BILEVEL (20)"); err == nil {
		t.Error("bilevel needs two rates")
	}
}

func TestParseChainedAndOr(t *testing.T) {
	stmt := mustParse(t, "SELECT x FROM t WHERE a > 1 AND b > 2 AND c > 3 OR d > 4")
	// (((a>1 AND b>2) AND c>3) OR d>4): top must be OR.
	top, ok := stmt.Where.(*expr.Binary)
	if !ok || top.Op != expr.OpOr {
		t.Fatalf("precedence: %s", stmt.Where)
	}
}
