package sqlparse

import (
	"reflect"
	"strings"
	"testing"
)

// TestFingerprintLiteralInvariance: queries differing only in literal
// values share a fingerprint.
func TestFingerprintLiteralInvariance(t *testing.T) {
	groups := [][]string{
		{
			"SELECT SUM(x) FROM t WHERE x > 5",
			"SELECT SUM(x) FROM t WHERE x > 9",
			"SELECT SUM(x) FROM t WHERE x > 1e6",
		},
		{
			"SELECT g, COUNT(*) FROM t WHERE s = 'a' GROUP BY g LIMIT 5",
			"SELECT g, COUNT(*) FROM t WHERE s = 'other' GROUP BY g LIMIT 99",
		},
		{
			// IN-list arity is a parameter, not shape.
			"SELECT COUNT(*) FROM t WHERE g IN (1, 2)",
			"SELECT COUNT(*) FROM t WHERE g IN (3, 4, 5, 6)",
		},
		{
			"SELECT AVG(x) FROM t TABLESAMPLE BERNOULLI (1)",
			"SELECT AVG(x) FROM t TABLESAMPLE BERNOULLI (10)",
		},
		{
			"SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%",
			"SELECT SUM(x) FROM t WITH ERROR 1% CONFIDENCE 99%",
		},
		{
			// EXPLAIN ANALYZE correlates with the plain shape.
			"SELECT SUM(x) FROM t WHERE x > 3",
			"EXPLAIN ANALYZE SELECT SUM(x) FROM t WHERE x > 44",
		},
	}
	for _, g := range groups {
		want := mustParse(t, g[0]).Fingerprint()
		for _, sql := range g[1:] {
			got := mustParse(t, sql).Fingerprint()
			if got.Hash != want.Hash {
				t.Errorf("fingerprints differ within literal-variant group:\n%q -> %s (%s)\n%q -> %s (%s)",
					g[0], want.Hash, want.Template, sql, got.Hash, got.Template)
			}
		}
	}
}

// TestFingerprintStructureSensitivity: structural changes produce
// distinct fingerprints.
func TestFingerprintStructureSensitivity(t *testing.T) {
	shapes := []string{
		"SELECT SUM(x) FROM t WHERE x > 5",
		"SELECT SUM(x) FROM t WHERE x < 5",          // operator
		"SELECT SUM(x) FROM t WHERE g > 5",          // column (QCS)
		"SELECT AVG(x) FROM t WHERE x > 5",          // aggregate
		"SELECT SUM(x) FROM t",                      // predicate dropped
		"SELECT SUM(x) FROM t WHERE x > 5 LIMIT 10", // LIMIT presence
		"SELECT SUM(x) FROM t WHERE x > 5 WITH ERROR 5%",
		"SELECT g, SUM(x) FROM t WHERE x > 5 GROUP BY g",
		"SELECT SUM(x) FROM t TABLESAMPLE BERNOULLI (1) WHERE x > 5",
		"SELECT SUM(x) FROM t TABLESAMPLE SYSTEM (1) WHERE x > 5",
		"SELECT PERCENTILE(x, 0.5) FROM t WHERE x > 5",
		"SELECT PERCENTILE(x, 0.99) FROM t WHERE x > 5", // quantile is shape
		"SELECT COUNT(DISTINCT x) FROM t WHERE x > 5",
	}
	seen := make(map[string]string, len(shapes))
	for _, sql := range shapes {
		fp := mustParse(t, sql).Fingerprint()
		if prev, ok := seen[fp.Hash]; ok {
			t.Errorf("distinct shapes share fingerprint %s:\n%q\n%q", fp.Hash, prev, sql)
		}
		seen[fp.Hash] = sql
	}
}

// TestFingerprintQCS: the query-column-set is the sorted distinct union
// of GROUP BY and WHERE columns.
func TestFingerprintQCS(t *testing.T) {
	cases := []struct {
		sql  string
		want []string
	}{
		{"SELECT COUNT(*) FROM t", nil},
		{"SELECT SUM(x) FROM t WHERE x > 5", []string{"x"}},
		{"SELECT g, SUM(x) FROM t WHERE x > 5 AND h = 'a' GROUP BY g", []string{"g", "h", "x"}},
		{"SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g", []string{"g"}},
		// ORDER BY and select-list columns are not QCS.
		{"SELECT x FROM t ORDER BY x", nil},
	}
	for _, tc := range cases {
		got := mustParse(t, tc.sql).QueryColumnSet()
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("QCS(%q) = %v, want %v", tc.sql, got, tc.want)
		}
	}
}

// TestTemplateString spot-checks the literal-normalized rendering.
func TestTemplateString(t *testing.T) {
	cases := []struct{ sql, want string }{
		{
			"SELECT SUM(x) FROM t WHERE x > 5",
			"SELECT SUM(x) FROM t WHERE (x > ?)",
		},
		{
			"SELECT g, COUNT(*) FROM t WHERE g IN (1,2,3) GROUP BY g LIMIT 4",
			"SELECT g, COUNT(*) FROM t WHERE (g IN (?)) GROUP BY g LIMIT ?",
		},
		{
			"SELECT AVG(x) FROM t TABLESAMPLE UNIVERSE (1) ON (k) WITH ERROR 5% CONFIDENCE 95%",
			"SELECT AVG(x) FROM t TABLESAMPLE UNIVERSE (?) ON (k) WITH ERROR ? CONFIDENCE ?",
		},
		{
			"SELECT x FROM t WHERE name LIKE 'a%' OR name IS NULL",
			"SELECT x FROM t WHERE ((name LIKE ?) OR (name IS NULL))",
		},
	}
	for _, tc := range cases {
		if got := mustParse(t, tc.sql).TemplateString(); got != tc.want {
			t.Errorf("TemplateString(%q)\n got %q\nwant %q", tc.sql, got, tc.want)
		}
	}
}

// TestFingerprintHashShape: 16 lowercase hex digits, present fields.
func TestFingerprintHashShape(t *testing.T) {
	fp := mustParse(t, "SELECT g, SUM(x) FROM t WHERE x > 5 GROUP BY g").Fingerprint()
	if len(fp.Hash) != 16 || strings.Trim(fp.Hash, "0123456789abcdef") != "" {
		t.Fatalf("hash %q is not 16 lowercase hex digits", fp.Hash)
	}
	if fp.Table != "t" {
		t.Fatalf("table = %q, want t", fp.Table)
	}
	if !reflect.DeepEqual(fp.QCS, []string{"g", "x"}) {
		t.Fatalf("qcs = %v", fp.QCS)
	}
	if fp.Template == "" {
		t.Fatal("empty template")
	}
}
