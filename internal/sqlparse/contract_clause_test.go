package sqlparse

import "testing"

// TestContractClauseRoundTrip pins the contract clause grammar: every
// accepted spelling of WITH ERROR e [%] [CONFIDENCE c [%]] parses to the
// expected rates, renders to one canonical form, and that form is a
// fixed point under re-parsing. The clause is the a-priori contract
// syntax, so its canonical rendering is part of the wire format (plan
// cache keys, audit dedup, golden benchmarks) and must not drift.
func TestContractClauseRoundTrip(t *testing.T) {
	cases := []struct {
		sql        string
		relError   float64
		confidence float64
		canonical  string
	}{
		{"SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%", 0.05, 0.95,
			"SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE 95%"},
		{"SELECT SUM(x) FROM t WITH ERROR 0.5% CONFIDENCE 99%", 0.005, 0.99,
			"SELECT SUM(x) FROM t WITH ERROR 0.5% CONFIDENCE 99%"},
		// Bare fractions mean the same thing as their percent forms.
		{"SELECT SUM(x) FROM t WITH ERROR 0.02 CONFIDENCE 0.95", 0.02, 0.95,
			"SELECT SUM(x) FROM t WITH ERROR 2% CONFIDENCE 95%"},
		// Values above 1 are percentages even without the sign.
		{"SELECT SUM(x) FROM t WITH ERROR 2 CONFIDENCE 90", 0.02, 0.90,
			"SELECT SUM(x) FROM t WITH ERROR 2% CONFIDENCE 90%"},
		// CONFIDENCE is optional and defaults to 95%.
		{"SELECT AVG(x) FROM t WITH ERROR 1%", 0.01, 0.95,
			"SELECT AVG(x) FROM t WITH ERROR 1% CONFIDENCE 95%"},
		// The clause composes with the rest of the statement tail.
		{"SELECT g, SUM(x) FROM t WHERE x > 0 GROUP BY g LIMIT 3 WITH ERROR 5% CONFIDENCE 99%", 0.05, 0.99,
			"SELECT g, SUM(x) FROM t WHERE (x > 0) GROUP BY g LIMIT 3 WITH ERROR 5% CONFIDENCE 99%"},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.sql)
		if err != nil {
			t.Fatalf("%q: %v", tc.sql, err)
		}
		if stmt.Error == nil {
			t.Fatalf("%q: no error clause parsed", tc.sql)
		}
		if stmt.Error.RelError != tc.relError || stmt.Error.Confidence != tc.confidence {
			t.Fatalf("%q: parsed (%v, %v), want (%v, %v)", tc.sql,
				stmt.Error.RelError, stmt.Error.Confidence, tc.relError, tc.confidence)
		}
		got := stmt.String()
		if got != tc.canonical {
			t.Fatalf("%q renders %q, want %q", tc.sql, got, tc.canonical)
		}
		again, err := Parse(got)
		if err != nil {
			t.Fatalf("canonical %q does not re-parse: %v", got, err)
		}
		if s2 := again.String(); s2 != got {
			t.Fatalf("canonical form not a fixed point: %q then %q", got, s2)
		}
	}

	// Malformed clauses are rejected, not misread.
	for _, bad := range []string{
		"SELECT SUM(x) FROM t WITH ERROR",
		"SELECT SUM(x) FROM t WITH ERROR x%",
		"SELECT SUM(x) FROM t WITH ERROR 5% CONFIDENCE",
		"SELECT SUM(x) FROM t WITH 5%",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("%q: accepted malformed contract clause", bad)
		}
	}
}
