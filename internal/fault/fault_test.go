package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestInjectDisabledIsFree: with no schedule installed Inject returns nil
// and moves no counters.
func TestInjectDisabledIsFree(t *testing.T) {
	p := NewPoint("test.disabled", "test point")
	t.Cleanup(Uninstall)
	for i := 0; i < 100; i++ {
		if err := p.Inject(); err != nil {
			t.Fatalf("disabled Inject returned %v", err)
		}
	}
	for _, st := range Status() {
		if st.Name == "test.disabled" && (st.Hits != 0 || st.Fires != 0) {
			t.Fatalf("disabled point counted hits=%d fires=%d", st.Hits, st.Fires)
		}
	}
}

// TestInjectDeterministic: the same schedule replayed over the same hit
// sequence fires on exactly the same indices.
func TestInjectDeterministic(t *testing.T) {
	p := NewPoint("test.det", "")
	t.Cleanup(Uninstall)
	sched := Schedule{Seed: 42, Rules: []Rule{{Point: "test.det", Kind: KindError, P: 0.3}}}

	run := func() []int {
		Install(sched)
		var fired []int
		for i := 0; i < 200; i++ {
			if p.Inject() != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times; decision stream looks degenerate", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("replay fired %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// The marginal rate should be near p.
	if got := float64(len(a)) / 200; got < 0.15 || got > 0.45 {
		t.Fatalf("fire rate %.2f far from configured 0.3", got)
	}
}

// TestInjectSeedsDiffer: different seeds give different fire sets.
func TestInjectSeedsDiffer(t *testing.T) {
	p := NewPoint("test.seeds", "")
	t.Cleanup(Uninstall)
	run := func(seed int64) []bool {
		Install(Schedule{Seed: seed, Rules: []Rule{{Point: "test.seeds", Kind: KindError, P: 0.5}}})
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Inject() != nil
		}
		return out
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 64-hit fire patterns")
	}
}

// TestInjectKinds: each kind fires its effect and errors are typed.
func TestInjectKinds(t *testing.T) {
	p := NewPoint("test.kinds", "")
	t.Cleanup(Uninstall)

	Install(Schedule{Rules: []Rule{{Point: "test.kinds", Kind: KindError, P: 1}}})
	err := p.Inject()
	if !Injected(err) {
		t.Fatalf("KindError produced %v, want ErrInjected chain", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "test.kinds" {
		t.Fatalf("injected error not a *Error with the point name: %v", err)
	}

	Install(Schedule{Rules: []Rule{{Point: "test.kinds", Kind: KindPanic, P: 1}}})
	func() {
		defer func() {
			r := recover()
			pv, ok := r.(*PanicValue)
			if !ok || pv.Point != "test.kinds" {
				t.Errorf("KindPanic panicked with %v, want *PanicValue", r)
			}
		}()
		p.Inject()
		t.Error("KindPanic did not panic")
	}()

	Install(Schedule{Rules: []Rule{{Point: "test.kinds", Kind: KindLatency, P: 1, Latency: 5 * time.Millisecond}}})
	start := time.Now()
	if err := p.Inject(); err != nil {
		t.Fatalf("KindLatency returned error %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("KindLatency slept %v, want >= 5ms", d)
	}
}

// TestWildcardAndPrecedence: "*" matches unlisted points; an exact rule
// beats the wildcard.
func TestWildcardAndPrecedence(t *testing.T) {
	a := NewPoint("test.wild.a", "")
	b := NewPoint("test.wild.b", "")
	t.Cleanup(Uninstall)
	Install(Schedule{Rules: []Rule{
		{Point: "*", Kind: KindError, P: 1},
		{Point: "test.wild.b", Kind: KindLatency, P: 1, Latency: time.Microsecond},
	}})
	if err := a.Inject(); !Injected(err) {
		t.Fatalf("wildcard did not arm test.wild.a: %v", err)
	}
	if err := b.Inject(); err != nil {
		t.Fatalf("exact latency rule should win for test.wild.b, got error %v", err)
	}
}

// TestMaxFires: the rule stops firing after MaxFires.
func TestMaxFires(t *testing.T) {
	p := NewPoint("test.maxfires", "")
	t.Cleanup(Uninstall)
	Install(Schedule{Rules: []Rule{{Point: "test.maxfires", Kind: KindError, P: 1, MaxFires: 3}}})
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Inject() != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

// TestAsError: recovered panics become typed errors wrapping ErrPanic and
// carry a stack; AsError is idempotent.
func TestAsError(t *testing.T) {
	err := AsError("boom")
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("AsError result does not wrap ErrPanic: %v", err)
	}
	var re *RecoveredError
	if !errors.As(err, &re) || re.Stack == "" {
		t.Fatalf("AsError did not capture a stack: %#v", err)
	}
	if AsError(err) != err {
		t.Fatal("AsError re-wrapped an already-converted error")
	}
}

// TestParseRules covers the -chaos-config syntax.
func TestParseRules(t *testing.T) {
	rules, err := ParseRules("core.exact:panic:0.1, exec.morsel:latency:0.5:5ms ,*:error:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[0] != (Rule{Point: "core.exact", Kind: KindPanic, P: 0.1}) {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Latency != 5*time.Millisecond {
		t.Fatalf("rule 1 latency = %v", rules[1].Latency)
	}
	for _, bad := range []string{"", "x", "p:zap:0.5", "p:error:0", "p:error:1.5", "p:error:x", "p:latency:0.5", "p:latency:0.5:zz", "p:error:0.5:extra"} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted bad config", bad)
		}
	}
}

// TestBreakerStateMachine walks closed → open → half-open → closed and
// the failed-probe path.
func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute})
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected")
		}
		if b.Record(false) {
			t.Fatalf("tripped after %d failures, threshold 3", i+1)
		}
	}
	if !b.Record(false) {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("breaker not rejecting while open: state=%v", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// Cooldown elapses: exactly one probe.
	clock = clock.Add(time.Minute)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker granted a second probe")
	}
	// Probe succeeds: closed, failures reset.
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}

	// Trip again, then fail the probe: straight back to open.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	clock = clock.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("probe denied after second cooldown")
	}
	if !b.Record(false) {
		t.Fatal("failed probe did not count as a trip")
	}
	if b.Allow() {
		t.Fatal("breaker allowed traffic right after a failed probe")
	}
	if b.Trips() != 3 {
		t.Fatalf("trips = %d, want 3", b.Trips())
	}
}

// TestBreakerSuccessResetsStreak: interleaved successes keep the breaker
// closed forever.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 20; i++ {
		b.Record(false)
		b.Record(false)
		b.Record(true)
	}
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatalf("breaker tripped on non-consecutive failures: state=%v trips=%d", b.State(), b.Trips())
	}
}

// TestRetry: transient errors are retried, permanent success propagates,
// and context errors stop the loop.
func TestRetry(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryConfig{Tries: 4, Base: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry: err=%v calls=%d, want success on call 3", err, calls)
	}

	calls = 0
	sentinel := errors.New("permanent")
	err = Retry(context.Background(), RetryConfig{Tries: 3, Base: time.Microsecond}, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("retry exhaustion: err=%v calls=%d", err, calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	calls = 0
	err = Retry(ctx, RetryConfig{Tries: 5, Base: time.Hour}, func() error {
		calls++
		cancel()
		return errors.New("boom")
	})
	if calls != 1 {
		t.Fatalf("retry kept going after ctx cancel: %d calls", calls)
	}
	if err == nil || err.Error() != "boom" {
		t.Fatalf("retry under cancel returned %v, want the attempt's error", err)
	}
}
