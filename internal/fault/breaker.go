package fault

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed passes all traffic (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects all traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen has granted one probe and awaits its outcome.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long an open breaker waits before granting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// OnTransition, when non-nil, observes every state change. It is
	// invoked after the breaker's lock is released, so it may call back
	// into the breaker (though observers normally just record the event).
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in
// a row trip it open; after Cooldown it grants a single half-open probe
// whose outcome either closes it again or re-opens a fresh cooldown.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // stubbed in tests

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	trips    int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a request may proceed. While open it returns
// false until the cooldown elapses, at which point it grants exactly one
// half-open probe; further calls are rejected until that probe reports
// through Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			cb := b.cfg.OnTransition
			b.mu.Unlock()
			if cb != nil {
				cb(BreakerOpen, BreakerHalfOpen)
			}
			return true
		}
		b.mu.Unlock()
		return false
	default: // half-open: the probe is already out
		b.mu.Unlock()
		return false
	}
}

// Record reports a request outcome. It returns true exactly when this
// outcome trips the breaker open (so the caller can count trips once).
func (b *Breaker) Record(ok bool) (tripped bool) {
	b.mu.Lock()
	from := b.state
	if ok {
		b.state = BreakerClosed
		b.failures = 0
	} else {
		switch b.state {
		case BreakerHalfOpen:
			// The probe failed: straight back to open, new cooldown.
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
			tripped = true
		case BreakerClosed:
			b.failures++
			if b.failures >= b.cfg.Threshold {
				b.state = BreakerOpen
				b.openedAt = b.now()
				b.failures = 0
				b.trips++
				tripped = true
			}
		}
	}
	to := b.state
	cb := b.cfg.OnTransition
	b.mu.Unlock()
	if cb != nil && from != to {
		cb(from, to)
	}
	return tripped
}

// State returns the current position, promoting open→half-open if the
// cooldown has elapsed (matching what Allow would do).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
