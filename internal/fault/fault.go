// Package fault is the process-wide fault-injection and fault-containment
// toolkit: a seeded, deterministic registry of named injection points that
// chaos schedules arm to fire panics, errors, or added latency with a
// configured probability, plus the helpers the rest of the stack uses to
// contain the damage — panic-to-error conversion with stacks attached, a
// per-engine circuit breaker, and jittered exponential backoff for
// transient retries.
//
// Design rules:
//
//  1. Disabled means free. A point with no armed rule costs one atomic
//     pointer load per Inject call; no counters move, nothing allocates.
//     Results with injection uninstalled are bit-identical to a build
//     that never imported this package.
//  2. Deterministic. Whether a given armed hit fires is a pure function of
//     (schedule seed, point name, per-point hit index) via a splitmix64
//     hash — replaying a schedule over a serial workload fires the exact
//     same faults. Under concurrency the hit indices interleave, but the
//     marginal fire rate and the fired set per index stay fixed.
//  3. Injected faults are typed. Errors wrap ErrInjected, injected panics
//     panic with *PanicValue, and recovered panics become errors wrapping
//     ErrPanic — so containment layers can classify what hit them.
package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the effect an armed rule fires.
type Kind uint8

// Fault kinds.
const (
	// KindError makes Inject return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes Inject panic with a *PanicValue.
	KindPanic
	// KindLatency makes Inject sleep for the rule's Latency, then succeed.
	KindLatency
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	default:
		return "error"
	}
}

// ParseKind parses a kind name.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "error":
		return KindError, nil
	case "panic":
		return KindPanic, nil
	case "latency":
		return KindLatency, nil
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want error, panic, or latency)", s)
}

// ErrInjected is the sentinel every injected error wraps; Injected tests
// for it.
var ErrInjected = errors.New("fault: injected")

// Error is one injected error fault.
type Error struct {
	// Point is the injection point that fired.
	Point string
}

// Error implements error.
func (e *Error) Error() string { return "fault: injected error at " + e.Point }

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *Error) Unwrap() error { return ErrInjected }

// Injected reports whether err originates from an injected fault.
func Injected(err error) bool { return errors.Is(err, ErrInjected) }

// PanicValue is what injected panics panic with, so containment tests can
// tell an injected panic from a genuine bug.
type PanicValue struct {
	// Point is the injection point that fired.
	Point string
}

// String renders the panic value.
func (p *PanicValue) String() string { return "fault: injected panic at " + p.Point }

// ErrPanic is the sentinel wrapped by every error produced from a
// recovered panic.
var ErrPanic = errors.New("panic recovered")

// RecoveredError is a panic converted to an error by a containment layer,
// with the stack captured at recovery.
type RecoveredError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the goroutine stack at the recover site.
	Stack string
}

// Error implements error.
func (e *RecoveredError) Error() string { return fmt.Sprintf("panic: %v", e.Val) }

// Unwrap makes errors.Is(err, ErrPanic) true.
func (e *RecoveredError) Unwrap() error { return ErrPanic }

// AsError converts a recover() value into an error wrapping ErrPanic,
// capturing the stack. Call it only from a deferred recover handler.
func AsError(r any) error {
	if err, ok := r.(*RecoveredError); ok {
		return err
	}
	return &RecoveredError{Val: r, Stack: string(debug.Stack())}
}

// Rule arms injection points: Point names one point or "*" for all.
type Rule struct {
	// Point is the injection point name, or "*" to match every point
	// without a more specific rule.
	Point string
	// Kind is the effect to fire.
	Kind Kind
	// P is the per-hit fire probability in (0, 1].
	P float64
	// Latency is the added delay for KindLatency rules.
	Latency time.Duration
	// MaxFires caps how many times this rule fires (0 = unlimited).
	MaxFires int64
}

// String renders the rule in the ParseRules config syntax.
func (r Rule) String() string {
	s := fmt.Sprintf("%s:%s:%g", r.Point, r.Kind, r.P)
	if r.Kind == KindLatency {
		s += ":" + r.Latency.String()
	}
	return s
}

// Schedule is one armed chaos configuration: a seed plus the rules.
type Schedule struct {
	Seed  int64
	Rules []Rule
}

// armedRule is a rule bound to one point, with its decision state.
type armedRule struct {
	rule  Rule
	seed  uint64        // schedule seed mixed with the point name
	n     atomic.Uint64 // per-point armed-hit counter
	fires atomic.Int64
}

// Point is one named injection site. Declare points at package init with
// NewPoint and call Inject in the seam the point guards.
type Point struct {
	name  string
	doc   string
	hits  atomic.Int64
	fires atomic.Int64
	rule  atomic.Pointer[armedRule]
}

// Name returns the point's name.
func (p *Point) Name() string { return p.name }

var (
	regMu     sync.Mutex
	points    = map[string]*Point{}
	installed *Schedule // nil when no schedule is armed

	// onFire is the optional process-global fire observer (the flight
	// recorder). Atomic so the armed fire path reads it without a lock;
	// the disarmed path never reaches it.
	onFire atomic.Pointer[func(point string, kind Kind)]
)

// SetOnFire installs fn to observe every fault fire (nil uninstalls).
// The hook runs on the injection path of an *armed* point only — a
// disarmed Inject stays a single atomic load — so fn must be fast and
// must not itself call Inject.
func SetOnFire(fn func(point string, kind Kind)) {
	if fn == nil {
		onFire.Store(nil)
		return
	}
	onFire.Store(&fn)
}

// NewPoint declares (or returns the already-declared) named injection
// point. If a schedule is already installed, the new point is armed
// against it immediately.
func NewPoint(name, doc string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &Point{name: name, doc: doc}
	points[name] = p
	if installed != nil {
		armLocked(p, *installed)
	}
	return p
}

// Inject consults the point's armed rule. With no schedule installed it
// returns nil after a single atomic load. Armed, it counts the hit and —
// when the seeded decision fires — returns an injected error, panics with
// a *PanicValue, or sleeps, per the rule's kind.
func (p *Point) Inject() error {
	r := p.rule.Load()
	if r == nil {
		return nil
	}
	p.hits.Add(1)
	n := r.n.Add(1) - 1
	if !fire(r.seed, n, r.rule.P) {
		return nil
	}
	if r.rule.MaxFires > 0 && r.fires.Add(1) > r.rule.MaxFires {
		return nil
	}
	p.fires.Add(1)
	if fn := onFire.Load(); fn != nil {
		(*fn)(p.name, r.rule.Kind)
	}
	switch r.rule.Kind {
	case KindPanic:
		panic(&PanicValue{Point: p.name})
	case KindLatency:
		time.Sleep(r.rule.Latency)
		return nil
	default:
		return &Error{Point: p.name}
	}
}

// fire is the deterministic per-hit decision: splitmix64 over the
// point-mixed seed and the hit index, mapped to [0, 1) against p.
func fire(seed, n uint64, p float64) bool {
	if p >= 1 {
		return true
	}
	h := seed + (n+1)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11)/(1<<53) < p
}

// mixSeed folds the point name into the schedule seed so distinct points
// make independent decisions.
func mixSeed(seed int64, name string) uint64 {
	h := uint64(seed) ^ 0xcbf29ce484222325
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h
}

// armLocked binds the schedule's best-matching rule (exact name beats the
// "*" wildcard) to the point, resetting its counters.
func armLocked(p *Point, s Schedule) {
	var match *Rule
	for i := range s.Rules {
		r := &s.Rules[i]
		if r.Point == p.name {
			match = r
			break
		}
		if r.Point == "*" && match == nil {
			match = r
		}
	}
	p.hits.Store(0)
	p.fires.Store(0)
	if match == nil {
		p.rule.Store(nil)
		return
	}
	p.rule.Store(&armedRule{rule: *match, seed: mixSeed(s.Seed, p.name)})
}

// Install arms the schedule process-wide, resetting every point's hit and
// fire counters so a replay starts from a clean decision stream.
func Install(s Schedule) {
	regMu.Lock()
	defer regMu.Unlock()
	cp := s
	cp.Rules = append([]Rule(nil), s.Rules...)
	installed = &cp
	for _, p := range points {
		armLocked(p, cp)
	}
}

// Uninstall disarms every point. Hit and fire counts are kept for
// inspection until the next Install.
func Uninstall() {
	regMu.Lock()
	defer regMu.Unlock()
	installed = nil
	for _, p := range points {
		p.rule.Store(nil)
	}
}

// Active reports whether a schedule is installed.
func Active() bool {
	regMu.Lock()
	defer regMu.Unlock()
	return installed != nil
}

// PointStatus is one point's runtime state for listings (aqpsh \faults,
// GET /faults).
type PointStatus struct {
	Name  string `json:"name"`
	Doc   string `json:"doc,omitempty"`
	Hits  int64  `json:"hits"`
	Fires int64  `json:"fires"`
	// Rule is the armed rule in config syntax, "" when disarmed.
	Rule string `json:"rule,omitempty"`
}

// Status lists every declared injection point with its hit/fire counts
// and armed rule, sorted by name.
func Status() []PointStatus {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]PointStatus, 0, len(points))
	for _, p := range points {
		st := PointStatus{Name: p.name, Doc: p.doc,
			Hits: p.hits.Load(), Fires: p.fires.Load()}
		if r := p.rule.Load(); r != nil {
			st.Rule = r.rule.String()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParseRules parses the -chaos-config syntax: comma-separated rules of
// the form point:kind:probability[:latency], where point may be "*".
//
//	core.exact:panic:0.1,exec.morsel:latency:0.5:5ms,*:error:0.01
func ParseRules(config string) ([]Rule, error) {
	var out []Rule
	for _, spec := range strings.Split(config, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("fault: bad rule %q: want point:kind:probability[:latency]", spec)
		}
		kind, err := ParseKind(parts[1])
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("fault: bad probability %q in rule %q (want (0,1])", parts[2], spec)
		}
		r := Rule{Point: parts[0], Kind: kind, P: p}
		if kind == KindLatency {
			if len(parts) < 4 {
				return nil, fmt.Errorf("fault: latency rule %q needs a duration (point:latency:p:10ms)", spec)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("fault: bad latency in rule %q: %v", spec, err)
			}
			r.Latency = d
		} else if len(parts) > 3 {
			return nil, fmt.Errorf("fault: trailing fields in rule %q", spec)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, errors.New("fault: empty chaos config")
	}
	return out, nil
}
