package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryDeadlineAwareAbort: when the context deadline would expire
// inside the next backoff sleep, Retry must return immediately (wrapping
// context.DeadlineExceeded so the error taxonomy reads it as a timeout)
// instead of sleeping out a doomed backoff. The guard here is wall-clock:
// with Base one hour, a sleeping Retry would hang the test.
func TestRetryDeadlineAwareAbort(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	boom := errors.New("boom")
	calls := 0
	start := time.Now()
	err := Retry(ctx, RetryConfig{Tries: 5, Base: time.Hour}, func() error {
		calls++
		return boom
	})
	elapsed := time.Since(start)
	if calls != 1 {
		t.Fatalf("retry attempted %d times; the backoff cannot fit the deadline, want 1", calls)
	}
	if elapsed > time.Second {
		t.Fatalf("retry took %v to abandon a doomed backoff; should return at once", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned retry returned %v, want context.DeadlineExceeded in the chain", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("abandoned retry returned %v, want the last attempt's error in the chain", err)
	}
}

// TestRetryDeadlineFitsKeepsGoing: a deadline comfortably beyond the
// backoff must not trigger the abandon path.
func TestRetryDeadlineFitsKeepsGoing(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	calls := 0
	err := Retry(ctx, RetryConfig{Tries: 3, Base: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry under a roomy deadline: err=%v calls=%d, want success on call 3", err, calls)
	}
}

// TestRetryNoRetry: errors wrapping ErrNoRetry are permanent — one
// attempt, immediate return, chain intact.
func TestRetryNoRetry(t *testing.T) {
	calls := 0
	inner := errors.New("400 bad request")
	err := Retry(context.Background(), RetryConfig{Tries: 5, Base: time.Microsecond}, func() error {
		calls++
		return fmt.Errorf("%w: %w", ErrNoRetry, inner)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls, want 1", calls)
	}
	if !errors.Is(err, ErrNoRetry) || !errors.Is(err, inner) {
		t.Fatalf("permanent error chain broken: %v", err)
	}
}

// TestBreakerHalfOpenSingleProbe: with many goroutines hammering Allow on
// a cooled-down open breaker, exactly one wins the half-open probe and
// the rest fail fast; the open→half-open transition fires exactly once.
// Run under -race: this is the guard on the breaker's probe admission.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var transitions sync.Map // "from→to" -> *int64
	count := func(from, to BreakerState) {
		key := from.String() + "→" + to.String()
		v, _ := transitions.LoadOrStore(key, new(int64))
		atomic.AddInt64(v.(*int64), 1)
	}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute, OnTransition: count})

	base := time.Now()
	clock := int64(0) // nanoseconds past base, advanced atomically
	b.now = func() time.Time { return base.Add(time.Duration(atomic.LoadInt64(&clock))) }

	if tripped := b.Record(false); !tripped {
		t.Fatal("threshold-1 breaker did not trip on first failure")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	atomic.StoreInt64(&clock, int64(2*time.Minute)) // cooldown elapsed

	const callers = 64
	var admitted int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				atomic.AddInt64(&admitted, 1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if admitted != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", admitted)
	}
	if got := transitionCount(&transitions, "open→half-open"); got != 1 {
		t.Fatalf("open→half-open fired %d times, want exactly once", got)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}

	// The probe's failure reopens once; a success after the next cooldown
	// closes once. Both transitions must be edge-triggered.
	if tripped := b.Record(false); !tripped {
		t.Fatal("failed half-open probe did not count as a trip")
	}
	if got := transitionCount(&transitions, "half-open→open"); got != 1 {
		t.Fatalf("half-open→open fired %d times, want exactly once", got)
	}
	atomic.StoreInt64(&clock, int64(4*time.Minute))
	if !b.Allow() {
		t.Fatal("second cooldown elapsed but no probe granted")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if got := transitionCount(&transitions, "half-open→closed"); got != 1 {
		t.Fatalf("half-open→closed fired %d times, want exactly once", got)
	}
}

func transitionCount(m *sync.Map, key string) int64 {
	v, ok := m.Load(key)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(v.(*int64))
}
