package fault

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrNoRetry, when wrapped into fn's returned error, marks the failure
// permanent: further attempts cannot succeed (e.g. a 4xx rejection of a
// well-formed request), so Retry returns immediately instead of burning
// the backoff budget.
var ErrNoRetry = errors.New("fault: permanent error")

// RetryConfig tunes Retry's jittered exponential backoff.
type RetryConfig struct {
	// Tries is the total number of attempts (default 3).
	Tries int
	// Base is the pre-jitter sleep before the second attempt; it doubles
	// per further attempt (default 2ms).
	Base time.Duration
	// Max caps the pre-jitter sleep (default 250ms).
	Max time.Duration
	// Seed makes the jitter sequence deterministic.
	Seed int64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Tries <= 0 {
		c.Tries = 3
	}
	if c.Base <= 0 {
		c.Base = 2 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 250 * time.Millisecond
	}
	return c
}

// Retry runs fn up to cfg.Tries times, sleeping an exponentially growing,
// deterministically jittered interval between attempts. Context errors —
// from fn or from ctx expiring mid-sleep — stop the loop immediately: a
// caller past its deadline gains nothing from more attempts. Likewise,
// when the context deadline would expire before a backoff sleep finishes,
// Retry returns at once (wrapping context.DeadlineExceeded, which the
// error taxonomy classifies as a timeout) rather than burning the
// caller's remaining budget in a doomed sleep. Errors wrapping ErrNoRetry
// are permanent and returned without further attempts. Otherwise the
// returned error is fn's last, unwrapped chain intact.
func Retry(ctx context.Context, cfg RetryConfig, fn func() error) error {
	cfg = cfg.withDefaults()
	var err error
	for attempt := 0; attempt < cfg.Tries; attempt++ {
		if attempt > 0 {
			d := cfg.Base << (attempt - 1)
			if d > cfg.Max {
				d = cfg.Max
			}
			// Jitter in [0.5, 1.5) of the backoff, seeded per attempt so
			// replays sleep identically.
			h := mixSeed(cfg.Seed, "retry") + uint64(attempt)*0x9e3779b97f4a7c15
			h ^= h >> 30
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
			frac := 0.5 + float64(h>>11)/(1<<53)
			sleep := time.Duration(float64(d) * frac)
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= sleep {
				// The deadline lands inside the backoff: the next attempt
				// could never start, let alone complete.
				return fmt.Errorf("fault: retry abandoned: deadline expires within the %v backoff: %w (last error: %w)",
					sleep, context.DeadlineExceeded, err)
			}
			t := time.NewTimer(sleep)
			select {
			case <-ctx.Done():
				t.Stop()
				return err // last attempt's error, not ctx.Err(): it has the cause
			case <-t.C:
			}
		}
		if err = fn(); err == nil {
			return nil
		}
		if errors.Is(err, ErrNoRetry) {
			return err
		}
		if ctx.Err() != nil || context.Cause(ctx) != nil {
			return err
		}
	}
	return err
}
