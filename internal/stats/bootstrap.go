package stats

import (
	"math/rand"
	"sort"
)

// Bootstrap computes a percentile-bootstrap confidence interval for an
// arbitrary statistic of a sample. data is the observed sample; stat maps a
// resample to the statistic of interest; reps is the number of bootstrap
// resamples (500–2000 is typical).
func Bootstrap(rng *rand.Rand, data []float64, stat func([]float64) float64,
	reps int, confidence float64) Interval {
	if len(data) == 0 || reps <= 0 {
		return Interval{Confidence: confidence}
	}
	ests := make([]float64, reps)
	buf := make([]float64, len(data))
	for r := 0; r < reps; r++ {
		for i := range buf {
			buf[i] = data[rng.Intn(len(data))]
		}
		ests[r] = stat(buf)
	}
	sort.Float64s(ests)
	alpha := (1 - confidence) / 2
	lo := ests[clampIndex(int(alpha*float64(reps)), reps)]
	hi := ests[clampIndex(int((1-alpha)*float64(reps)), reps)]
	return Interval{Lo: lo, Hi: hi, Confidence: confidence}
}

// BootstrapWeighted is Bootstrap for weighted samples: each resampled
// element keeps its weight, and stat receives parallel value/weight slices.
func BootstrapWeighted(rng *rand.Rand, data, weights []float64,
	stat func(vals, ws []float64) float64, reps int, confidence float64) Interval {
	if len(data) == 0 || reps <= 0 || len(data) != len(weights) {
		return Interval{Confidence: confidence}
	}
	ests := make([]float64, reps)
	bufV := make([]float64, len(data))
	bufW := make([]float64, len(data))
	for r := 0; r < reps; r++ {
		for i := range bufV {
			j := rng.Intn(len(data))
			bufV[i] = data[j]
			bufW[i] = weights[j]
		}
		ests[r] = stat(bufV, bufW)
	}
	sort.Float64s(ests)
	alpha := (1 - confidence) / 2
	lo := ests[clampIndex(int(alpha*float64(reps)), reps)]
	hi := ests[clampIndex(int((1-alpha)*float64(reps)), reps)]
	return Interval{Lo: lo, Hi: hi, Confidence: confidence}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// HTSum is a convenience statistic for BootstrapWeighted: the
// Horvitz–Thompson sum Σ wᵢxᵢ.
func HTSum(vals, ws []float64) float64 {
	var s float64
	for i, v := range vals {
		s += v * ws[i]
	}
	return s
}

// Mean is a convenience statistic for Bootstrap.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
