package stats

// Stratified composition of per-stratum estimators.
//
// Sharded scatter-gather execution treats each shard as an independent
// stratum: the shard draws its own sample, forms its own Horvitz–Thompson
// estimate, and the gather step composes the per-shard estimates into a
// population-level answer. Because samples are drawn independently across
// shards (per-shard seeds, see internal/shard.DeriveSeed), the variance of
// a composed total is exactly the sum of the per-shard variances, and the
// variance of a composed mean is the population-weighted combination —
// no covariance terms appear.
//
// The primary gather path does not go through these functions: merging the
// per-shard HT partial states (plain sums over sampled rows) *is* the
// stratified composition, losslessly — see exec.MergeAggPartials. The
// functions here are the reference algebra: tests verify the HT merge
// agrees with them, and the degraded-coverage extrapolation below uses
// them when shards are lost mid-query.

// Stratum is one independent stratum's (estimate, variance) pair with the
// sample size that produced it and the stratum's population size.
type Stratum struct {
	// Estimate is the stratum-level point estimate (a total for
	// CombineTotals, a mean for CombineMeans).
	Estimate float64
	// Variance is the estimated variance of Estimate.
	Variance float64
	// N is the number of sampled observations behind the estimate.
	N float64
	// Pop is the stratum population size (rows in the shard).
	Pop float64
}

// CombineTotals composes independent per-stratum totals: the population
// total is the sum of stratum totals, and — with independent samples — its
// variance is the sum of stratum variances. The returned n is the combined
// sample size, which downstream CLT intervals use for the Student-t
// small-sample correction.
func CombineTotals(strata []Stratum) (est, variance, n float64) {
	for _, s := range strata {
		est += s.Estimate
		variance += s.Variance
		n += s.N
	}
	return est, variance, n
}

// CombineMeans composes independent per-stratum means into the population
// mean: each stratum mean is weighted by its population share W_h =
// Pop_h / ΣPop, so
//
//	μ̂ = Σ W_h μ̂_h,   Var(μ̂) = Σ W_h² Var(μ̂_h).
//
// Strata with zero population contribute nothing. When every Pop is zero
// the unweighted average is returned (degenerate but defined).
func CombineMeans(strata []Stratum) (est, variance, n float64) {
	var pop float64
	for _, s := range strata {
		pop += s.Pop
		n += s.N
	}
	if pop == 0 {
		k := float64(len(strata))
		if k == 0 {
			return 0, 0, 0
		}
		for _, s := range strata {
			est += s.Estimate / k
			variance += s.Variance / (k * k)
		}
		return est, variance, n
	}
	for _, s := range strata {
		w := s.Pop / pop
		est += w * s.Estimate
		variance += w * w * s.Variance
	}
	return est, variance, n
}

// FPC is the finite-population correction (Pop - n) / (Pop - 1): the
// variance shrink factor for sampling n of Pop rows without replacement.
// It applies when a stratum's sample is a substantial fraction of its
// population — per-shard samples of small shards — and degenerates to 0
// when the sample is the whole population (a census has no sampling
// error) and to ~1 when n ≪ Pop. Callers multiply a with-replacement
// (or Bernoulli) variance estimate by it; out-of-range inputs return 1
// so the correction never inflates variance.
func FPC(pop, n float64) float64 {
	if pop <= 1 || n <= 0 || n > pop {
		return 1
	}
	return (pop - n) / (pop - 1)
}

// ExtrapolateTotal rescales a total estimated from a covered subpopulation
// to the full population, under the assumption that covered and uncovered
// rows are exchangeable (hash sharding assigns rows to shards uniformly,
// so surviving shards are an unbiased window on the whole table). With
// R = totalPop / coveredPop the point estimate scales by R and the
// variance by R²: Var(R·Ŝ) = R²·Var(Ŝ). The exchangeability assumption
// is exactly why range-sharded groups must NOT extrapolate — a lost range
// shard is a systematic, not random, coverage gap.
func ExtrapolateTotal(est, variance, coveredPop, totalPop float64) (float64, float64) {
	if coveredPop <= 0 || totalPop <= coveredPop {
		return est, variance
	}
	r := totalPop / coveredPop
	return est * r, variance * r * r
}

// ScalePopulation rescales the estimator as if the sampled population were
// 1/r of the full one: totals (Sum, Count) scale by r and their variances
// by r², while ratio estimates (Mean) and their delta-method variances are
// invariant — every term of MeanVariance's numerator picks up r² and the
// denominator wTot² does too. This is the estimator-level form of
// ExtrapolateTotal, used when shards are lost mid-query: the surviving
// shards' merged HT state is scaled by total/covered population.
func (h *HTEstimator) ScalePopulation(r float64) {
	if r <= 0 || r == 1 {
		return
	}
	h.sum *= r
	h.varSum *= r * r
	h.wTot *= r
	h.w2Tot *= r * r
	h.covsn *= r * r
}
