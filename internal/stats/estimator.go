package stats

import "math"

// Interval is a two-sided confidence interval around an estimate.
type Interval struct {
	Lo, Hi     float64
	Confidence float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// HalfWidth returns half the interval width.
func (iv Interval) HalfWidth() float64 { return iv.Width() / 2 }

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// RelHalfWidth returns the half width relative to the estimate magnitude.
func (iv Interval) RelHalfWidth(estimate float64) float64 {
	if estimate == 0 {
		if iv.Width() == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return iv.HalfWidth() / math.Abs(estimate)
}

// Moments is a Welford accumulator for (optionally weighted) means and
// variances. The zero value is ready to use.
type Moments struct {
	n    float64 // count of observations
	w    float64 // total weight
	mean float64 // weighted mean
	m2   float64 // weighted sum of squared deviations
}

// Add accumulates an unweighted observation.
func (m *Moments) Add(x float64) { m.AddWeighted(x, 1) }

// AddWeighted accumulates an observation with weight w > 0.
func (m *Moments) AddWeighted(x, w float64) {
	if w <= 0 {
		return
	}
	m.n++
	m.w += w
	d := x - m.mean
	m.mean += (w / m.w) * d
	m.m2 += w * d * (x - m.mean)
}

// Count returns the number of observations.
func (m *Moments) Count() float64 { return m.n }

// Weight returns the total accumulated weight.
func (m *Moments) Weight() float64 { return m.w }

// Mean returns the weighted mean.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the weighted population variance.
func (m *Moments) Variance() float64 {
	if m.w == 0 {
		return 0
	}
	return m.m2 / m.w
}

// SampleVariance returns the bias-corrected sample variance (unweighted
// correction n/(n-1) applied to the weighted population variance).
func (m *Moments) SampleVariance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.Variance() * m.n / (m.n - 1)
}

// StdDev returns the square root of SampleVariance.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.SampleVariance()) }

// Merge combines another accumulator into m.
func (m *Moments) Merge(o Moments) {
	if o.w == 0 {
		return
	}
	if m.w == 0 {
		*m = o
		return
	}
	w := m.w + o.w
	d := o.mean - m.mean
	m.mean += d * o.w / w
	m.m2 += o.m2 + d*d*m.w*o.w/w
	m.w = w
	m.n += o.n
}

// HTEstimator accumulates a Horvitz–Thompson estimate of a population SUM
// from a without-replacement sample where row i was included with
// probability 1/weight(i). For each sampled row call Add(x, w) with
// w = 1/π_i. The variance estimator assumes independent inclusions
// (Poisson/Bernoulli sampling), which matches every sampler in this
// repository:
//
//	Var̂(Ŝ) = Σ_sampled w_i (w_i - 1) x_i²
//
// Rows included with certainty (w=1, e.g. rare strata kept whole by the
// distinct sampler) contribute zero variance, as they should.
type HTEstimator struct {
	sum    float64 // Σ w x  — the HT point estimate
	varSum float64 // Σ w (w-1) x²
	n      float64 // sampled rows
	wTot   float64 // Σ w — HT estimate of population size
	w2Tot  float64 // Σ w (w-1) — variance of the COUNT estimate
	covsn  float64 // Σ w (w-1) x — Cov(Ŝ, N̂) under independent inclusion
}

// Add accumulates one sampled row with value x and weight w = 1/π.
func (h *HTEstimator) Add(x, w float64) {
	h.sum += w * x
	h.varSum += w * (w - 1) * x * x
	h.n++
	h.wTot += w
	h.w2Tot += w * (w - 1)
	h.covsn += w * (w - 1) * x
}

// Merge folds another estimator's accumulations into h. Every field is a
// plain sum over sampled rows, so merging partial estimators in a fixed
// order reproduces the same float operation sequence on every run.
func (h *HTEstimator) Merge(o HTEstimator) {
	h.sum += o.sum
	h.varSum += o.varSum
	h.n += o.n
	h.wTot += o.wTot
	h.w2Tot += o.w2Tot
	h.covsn += o.covsn
}

// N returns the number of sampled rows observed.
func (h *HTEstimator) N() float64 { return h.n }

// Sum returns the HT point estimate of the population sum.
func (h *HTEstimator) Sum() float64 { return h.sum }

// Count returns the HT point estimate of the population row count.
func (h *HTEstimator) Count() float64 { return h.wTot }

// SumVariance returns the estimated variance of Sum().
func (h *HTEstimator) SumVariance() float64 { return h.varSum }

// CountVariance returns the estimated variance of Count().
func (h *HTEstimator) CountVariance() float64 { return h.w2Tot }

// Mean returns the ratio (Hájek) estimate of the population mean.
func (h *HTEstimator) Mean() float64 {
	if h.wTot == 0 {
		return 0
	}
	return h.sum / h.wTot
}

// MeanVariance estimates the variance of Mean() by the delta method for a
// ratio of two correlated HT estimators. With R = S/N:
//
//	Var(R) ≈ (Var(S) - 2R Cov(S,N) + R² Var(N)) / N²
//
// where, under independent inclusions, Cov(Ŝ, N̂) = Σ w(w-1) x.
func (h *HTEstimator) MeanVariance() float64 {
	if h.wTot == 0 {
		return 0
	}
	r := h.Mean()
	v := h.varSum - 2*r*h.covsn + r*r*h.w2Tot
	if v < 0 {
		v = 0
	}
	return v / (h.wTot * h.wTot)
}

// HTState is the exported accumulator state of an HTEstimator, for wire
// serialization of partial aggregation states. Every component is a plain
// sum over sampled rows, so State/HTFromState round-trip the estimator
// exactly: a deserialized estimator merges and finalizes bit-identically
// to the original.
type HTState struct {
	Sum    float64
	VarSum float64
	N      float64
	WTot   float64
	W2Tot  float64
	CovSN  float64
}

// State exports the accumulator for serialization.
func (h *HTEstimator) State() HTState {
	return HTState{Sum: h.sum, VarSum: h.varSum, N: h.n, WTot: h.wTot, W2Tot: h.w2Tot, CovSN: h.covsn}
}

// HTFromState reconstructs an estimator from an exported state.
func HTFromState(s HTState) HTEstimator {
	return HTEstimator{sum: s.Sum, varSum: s.VarSum, n: s.N, wTot: s.WTot, w2Tot: s.W2Tot, covsn: s.CovSN}
}

// SumInterval returns a CLT confidence interval for the population sum.
func (h *HTEstimator) SumInterval(confidence float64) Interval {
	return cltInterval(h.sum, h.varSum, h.n, confidence)
}

// CountInterval returns a CLT confidence interval for the population count.
func (h *HTEstimator) CountInterval(confidence float64) Interval {
	return cltInterval(h.wTot, h.w2Tot, h.n, confidence)
}

// MeanInterval returns a CLT confidence interval for the population mean.
func (h *HTEstimator) MeanInterval(confidence float64) Interval {
	return cltInterval(h.Mean(), h.MeanVariance(), h.n, confidence)
}

// CLTInterval builds an estimate ± t·σ interval from an estimate, its
// variance, and the contributing sample size, using Student's t for small
// samples and the normal for large ones.
func CLTInterval(est, variance, n, confidence float64) Interval {
	return cltInterval(est, variance, n, confidence)
}

// cltInterval builds an estimate ± t·σ interval, using Student's t for
// small samples and the normal for large ones.
func cltInterval(est, variance, n, confidence float64) Interval {
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)
	var q float64
	p := 1 - (1-confidence)/2
	if n >= 2 && n < 200 {
		q = StudentTQuantile(p, n-1)
	} else {
		q = NormalQuantile(p)
	}
	if n < 2 {
		// One observation: no variance information; widen maximally.
		q = NormalQuantile(p)
		if sd == 0 && est != 0 {
			sd = math.Abs(est)
		}
	}
	return Interval{Lo: est - q*sd, Hi: est + q*sd, Confidence: confidence}
}
