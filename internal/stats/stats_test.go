package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.995, 2.575829304},
		{0.841344746, 1.0},
		{0.025, -1.959963985},
	}
	for _, c := range cases {
		approx(t, NormalQuantile(c.p), c.z, 1e-6, "NormalQuantile")
	}
}

func TestNormalQuantileCDFInverse(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
		z := NormalQuantile(p)
		approx(t, NormalCDF(z), p, 1e-9, "CDF(Quantile(p))")
	}
}

func TestStudentTKnownValues(t *testing.T) {
	// Classical t-table values.
	cases := []struct{ p, df, want float64 }{
		{0.975, 1, 12.7062},
		{0.975, 5, 2.5706},
		{0.975, 10, 2.2281},
		{0.975, 30, 2.0423},
		{0.95, 10, 1.8125},
		{0.99, 20, 2.5280},
	}
	for _, c := range cases {
		approx(t, StudentTQuantile(c.p, c.df), c.want, 2e-3, "StudentTQuantile")
	}
	// Large df converges to normal.
	approx(t, StudentTQuantile(0.975, 1e7), 1.959964, 1e-4, "t->normal")
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 17, 100} {
		for _, x := range []float64{0.3, 1, 2.5} {
			l := StudentTCDF(-x, df)
			r := StudentTCDF(x, df)
			approx(t, l+r, 1, 1e-10, "t CDF symmetry")
		}
	}
	approx(t, StudentTCDF(0, 7), 0.5, 1e-12, "t CDF at 0")
}

func TestChiSquareKnownValues(t *testing.T) {
	cases := []struct{ p, df, want float64 }{
		{0.95, 1, 3.8415},
		{0.95, 10, 18.307},
		{0.05, 10, 3.9403},
		{0.99, 5, 15.086},
	}
	for _, c := range cases {
		approx(t, ChiSquareQuantile(c.p, c.df), c.want, 2e-3, "ChiSquareQuantile")
	}
}

func TestMomentsAgainstDirect(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var m Moments
	for _, v := range vals {
		m.Add(v)
	}
	approx(t, m.Mean(), 5, 1e-12, "mean")
	approx(t, m.Variance(), 4, 1e-12, "population variance")
	approx(t, m.SampleVariance(), 4*8.0/7.0, 1e-12, "sample variance")
}

func TestMomentsWeighted(t *testing.T) {
	// Weight 2 on a value is the same as adding it twice, for mean and
	// population variance.
	var a, b Moments
	a.AddWeighted(1, 2)
	a.AddWeighted(4, 1)
	b.Add(1)
	b.Add(1)
	b.Add(4)
	approx(t, a.Mean(), b.Mean(), 1e-12, "weighted mean")
	approx(t, a.Variance(), b.Variance(), 1e-12, "weighted variance")
}

func TestMomentsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, l, r Moments
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 10
		all.Add(v)
		if i%2 == 0 {
			l.Add(v)
		} else {
			r.Add(v)
		}
	}
	l.Merge(r)
	approx(t, l.Mean(), all.Mean(), 1e-9, "merged mean")
	approx(t, l.Variance(), all.Variance(), 1e-9, "merged variance")
	approx(t, l.Count(), all.Count(), 0, "merged count")
}

// The HT estimator over a Bernoulli(p) sample must be unbiased and its
// variance estimate must match the closed form (1-p)/p * Σx².
func TestHTEstimatorUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 20000
	xs := make([]float64, n)
	var trueSum float64
	for i := range xs {
		xs[i] = rng.Float64()*10 + 1
		trueSum += xs[i]
	}
	p := 0.05
	trials := 300
	var est Moments
	for tr := 0; tr < trials; tr++ {
		var ht HTEstimator
		for _, x := range xs {
			if rng.Float64() < p {
				ht.Add(x, 1/p)
			}
		}
		est.Add(ht.Sum())
	}
	// Unbiasedness: mean of estimates within 3 standard errors.
	se := math.Sqrt(est.SampleVariance() / float64(trials))
	if math.Abs(est.Mean()-trueSum) > 4*se {
		t.Errorf("HT sum biased: mean est %v, true %v, se %v", est.Mean(), trueSum, se)
	}
	// Variance estimate close to empirical variance across trials.
	var ht HTEstimator
	for _, x := range xs {
		if rng.Float64() < p {
			ht.Add(x, 1/p)
		}
	}
	ratio := ht.SumVariance() / est.SampleVariance()
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("variance estimate off: est %v vs empirical %v", ht.SumVariance(), est.SampleVariance())
	}
}

func TestHTWeightOneIsExact(t *testing.T) {
	var ht HTEstimator
	for _, x := range []float64{1, 2, 3} {
		ht.Add(x, 1)
	}
	if ht.Sum() != 6 || ht.SumVariance() != 0 || ht.Count() != 3 {
		t.Errorf("exact HT: sum %v var %v count %v", ht.Sum(), ht.SumVariance(), ht.Count())
	}
	iv := ht.SumInterval(0.95)
	if iv.Lo != 6 || iv.Hi != 6 {
		t.Errorf("interval should be degenerate: %+v", iv)
	}
}

func TestHTMeanRatioEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ht HTEstimator
	var sum, n float64
	for i := 0; i < 50000; i++ {
		x := rng.Float64() * 4
		sum += x
		n++
		if rng.Float64() < 0.1 {
			ht.Add(x, 10)
		}
	}
	trueMean := sum / n
	if math.Abs(ht.Mean()-trueMean) > 0.1 {
		t.Errorf("HT mean %v vs true %v", ht.Mean(), trueMean)
	}
	iv := ht.MeanInterval(0.95)
	if !iv.Contains(trueMean) {
		t.Logf("mean interval %v does not contain %v (5%% expected failure rate)", iv, trueMean)
	}
	if iv.Width() <= 0 {
		t.Error("mean interval must have positive width")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 8, Hi: 12, Confidence: 0.95}
	if iv.Width() != 4 || iv.HalfWidth() != 2 {
		t.Error("width helpers broken")
	}
	if !iv.Contains(10) || iv.Contains(13) {
		t.Error("contains broken")
	}
	approx(t, iv.RelHalfWidth(10), 0.2, 1e-12, "rel half width")
	if (Interval{}).RelHalfWidth(0) != 0 {
		t.Error("degenerate zero interval has zero relative width")
	}
	zero := Interval{Lo: -1, Hi: 1}
	if !math.IsInf(zero.RelHalfWidth(0), 1) {
		t.Error("nonzero interval around zero estimate has infinite relative width")
	}
}

func TestCoverageFormulas(t *testing.T) {
	// (1-p)^m basics.
	approx(t, GroupMissProbRow(0.5, 1), 0.5, 1e-12, "miss prob")
	approx(t, GroupMissProbRow(0.1, 10), math.Pow(0.9, 10), 1e-12, "miss prob 10")
	if GroupMissProbRow(1, 5) != 0 || GroupMissProbRow(0, 5) != 1 {
		t.Error("edge rates")
	}
	// Required rate inverts the miss probability.
	p := RequiredRateForCoverage(100, 0.01)
	approx(t, GroupMissProbRow(p, 100), 0.01, 1e-9, "rate inversion")
	// Block bound is never smaller than the row bound for b >= 1 rows...
	// the block miss probability uses fewer units so it is larger.
	if GroupMissProbBlock(0.1, 100, 10) < GroupMissProbRow(0.1, 100) {
		t.Error("block miss prob must exceed row miss prob for the same rate")
	}
}

func TestRequiredSampleSize(t *testing.T) {
	// cv=1, 1% error, 95% confidence: n = (1.96/0.01)^2 ≈ 38416.
	n := RequiredSampleSizeForRelError(1, 0.01, 0.95)
	if n < 38000 || n > 39000 {
		t.Errorf("n = %v", n)
	}
	if !math.IsInf(RequiredSampleSizeForRelError(1, 0, 0.95), 1) {
		t.Error("zero error requires infinite sample")
	}
}

func TestSampleSizeLowerBound(t *testing.T) {
	lb := SampleSizeLowerBound(10000, 0.1, 0.05)
	if lb >= 1000 || lb < 900 {
		t.Errorf("lower bound = %v, want slightly under 1000", lb)
	}
	if SampleSizeLowerBound(10, 0.001, 0.05) != 0 {
		t.Error("tiny expected size clamps to 0")
	}
}

func TestPropagationRules(t *testing.T) {
	approx(t, PropagateProduct(0.01, 0.02), 0.0302, 1e-12, "product")
	approx(t, PropagateRatio(0.01, 0.02), 0.03/0.98, 1e-12, "ratio")
	if !math.IsInf(PropagateRatio(0.1, 1), 1) {
		t.Error("ratio blows up at e2=1")
	}
	approx(t, PropagateSum(0.01, 0.02), 0.02, 1e-12, "sum")
}

// Property: the product rule is a true upper bound over random positive
// quantities and estimate errors.
func TestPropagateProductIsBound(t *testing.T) {
	f := func(xRaw, yRaw, e1Raw, e2Raw uint16) bool {
		x := 1 + float64(xRaw%1000)
		y := 1 + float64(yRaw%1000)
		e1 := float64(e1Raw%100) / 500 // up to 20%
		e2 := float64(e2Raw%100) / 500
		// Worst-case estimates at the edge of the error bounds.
		for _, sx := range []float64{1 - e1, 1 + e1} {
			for _, sy := range []float64{1 - e2, 1 + e2} {
				est := (x * sx) * (y * sy)
				rel := math.Abs(est-x*y) / (x * y)
				if rel > PropagateProduct(e1, e2)+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocateRules(t *testing.T) {
	// Two-way product split keeps the composite under budget.
	e := AllocateRelError(0.05, 2)
	if PropagateProduct(e, e) > 0.05+1e-12 {
		t.Errorf("allocated %v breaks budget", e)
	}
	approx(t, AllocateConfidence(0.95, 1), 0.95, 0, "k=1")
	// Boole: two events each at 97.5% give >= 95% jointly.
	c := AllocateConfidence(0.95, 2)
	approx(t, c, 0.975, 1e-12, "k=2")
}

func TestIntervalArithmetic(t *testing.T) {
	ix := Interval{Lo: 9, Hi: 11, Confidence: 0.975}
	iy := Interval{Lo: 1.9, Hi: 2.1, Confidence: 0.975}
	pr := CombineIntervalsProduct(10, 2, ix, iy)
	if pr.Lo > 9*1.9 || pr.Hi < 11*2.1 {
		t.Errorf("product interval %+v", pr)
	}
	ra := CombineIntervalsRatio(10, 2, ix, iy)
	if ra.Lo > 9/2.1 || ra.Hi < 11/1.9 {
		t.Errorf("ratio interval %+v", ra)
	}
	// Denominator straddling zero.
	bad := CombineIntervalsRatio(10, 0, ix, Interval{Lo: -1, Hi: 1})
	if !math.IsInf(bad.Lo, -1) || !math.IsInf(bad.Hi, 1) {
		t.Error("ratio by zero-straddling interval must be unbounded")
	}
}

func TestBootstrapCoversMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]float64, 500)
	for i := range data {
		data[i] = rng.NormFloat64()*2 + 7
	}
	iv := Bootstrap(rng, data, Mean, 500, 0.95)
	if !iv.Contains(7) {
		t.Logf("bootstrap interval %+v may occasionally miss 7", iv)
	}
	if iv.Width() <= 0 || iv.Width() > 2 {
		t.Errorf("bootstrap width %v implausible", iv.Width())
	}
}

func TestBootstrapWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vals := []float64{10, 20, 30}
	ws := []float64{2, 2, 2}
	iv := BootstrapWeighted(rng, vals, ws, HTSum, 300, 0.9)
	if iv.Lo < 3*10*2-1e-9 && iv.Hi > 0 {
		// The HT sum of resamples of this tiny set ranges in [60, 180].
		if iv.Lo < 60-1e9 || iv.Hi > 180+1e-9 {
			t.Errorf("weighted bootstrap out of range: %+v", iv)
		}
	}
}

func TestBlockDesignEffect(t *testing.T) {
	// Homogeneous blocks (within-variance 0): block sampling needs b× the
	// rows of row sampling.
	deff := BlockDesignEffect(4, 0, 10)
	approx(t, deff, 10, 1e-12, "homogeneous blocks")
	// Fully heterogeneous blocks (within == total variance): block
	// sampling is as efficient per row as row sampling.
	deff = BlockDesignEffect(4, 4, 10)
	approx(t, deff, 1, 1e-12, "heterogeneous blocks")
	if BlockDesignEffect(0, 0, 10) != 1 {
		t.Error("degenerate variance returns 1")
	}
}

// Empirical CI coverage: nominal 95% CLT intervals over Bernoulli samples
// of a well-behaved population should cover the truth ~95% of the time
// (within Monte-Carlo slack).
func TestCLTCoverageEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 5000
	xs := make([]float64, n)
	var trueSum float64
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 5
		trueSum += xs[i]
	}
	trials := 400
	covered := 0
	for tr := 0; tr < trials; tr++ {
		var ht HTEstimator
		for _, x := range xs {
			if rng.Float64() < 0.1 {
				ht.Add(x, 10)
			}
		}
		if ht.SumInterval(0.95).Contains(trueSum) {
			covered++
		}
	}
	rate := float64(covered) / float64(trials)
	if rate < 0.90 {
		t.Errorf("95%% CI coverage = %v, badly undercovering", rate)
	}
}
