package stats

import (
	"math"
	"sort"
)

// WilsonInterval returns the Wilson score interval for a binomial
// proportion: successes out of n trials at the given confidence. Unlike
// the Wald (normal-approximation) interval it behaves sensibly at the
// extremes — n small, or the observed proportion at 0 or 1 — which is
// exactly where an empirical CI-coverage estimate lives (coverage near
// 0.95 with a few dozen audits). n <= 0 returns the vacuous [0, 1].
func WilsonInterval(successes, n int, confidence float64) Interval {
	if n <= 0 {
		return Interval{Lo: 0, Hi: 1, Confidence: confidence}
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	z := NormalQuantile(1 - (1-confidence)/2)
	nn := float64(n)
	p := float64(successes) / nn
	z2 := z * z
	denom := 1 + z2/nn
	center := p + z2/(2*nn)
	half := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo := (center - half) / denom
	hi := (center + half) / denom
	return Interval{Lo: math.Max(0, lo), Hi: math.Min(1, hi), Confidence: confidence}
}

// RollingCoverage tracks a boolean outcome (CI covered the truth or not)
// over a sliding window of the last Cap observations. The zero value is
// unusable; construct with NewRollingCoverage. Not safe for concurrent
// use — callers serialize access.
type RollingCoverage struct {
	ring []bool
	next int
	n    int
	hits int
}

// NewRollingCoverage creates a window holding up to cap observations
// (minimum 1).
func NewRollingCoverage(cap int) *RollingCoverage {
	if cap < 1 {
		cap = 1
	}
	return &RollingCoverage{ring: make([]bool, cap)}
}

// Push records one outcome, evicting the oldest when the window is full.
func (r *RollingCoverage) Push(covered bool) {
	if r.n == len(r.ring) {
		if r.ring[r.next] {
			r.hits--
		}
	} else {
		r.n++
	}
	r.ring[r.next] = covered
	if covered {
		r.hits++
	}
	r.next = (r.next + 1) % len(r.ring)
}

// N returns the number of observations currently in the window.
func (r *RollingCoverage) N() int { return r.n }

// Hits returns how many in-window observations were covered.
func (r *RollingCoverage) Hits() int { return r.hits }

// Rate returns the in-window coverage fraction (0 when empty).
func (r *RollingCoverage) Rate() float64 {
	if r.n == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.n)
}

// Wilson returns the Wilson score interval for the in-window coverage.
func (r *RollingCoverage) Wilson(confidence float64) Interval {
	return WilsonInterval(r.hits, r.n, confidence)
}

// RollingQuantiles tracks a float statistic (e.g. realized relative
// error) over a sliding window of the last Cap observations and answers
// quantile queries over the window. Exact, O(window) space, O(n log n)
// per query — windows here are hundreds of entries, so the simple form
// beats a sketch. Not safe for concurrent use.
type RollingQuantiles struct {
	ring []float64
	next int
	n    int
}

// NewRollingQuantiles creates a window holding up to cap observations
// (minimum 1).
func NewRollingQuantiles(cap int) *RollingQuantiles {
	if cap < 1 {
		cap = 1
	}
	return &RollingQuantiles{ring: make([]float64, cap)}
}

// Push records one value, evicting the oldest when the window is full.
func (r *RollingQuantiles) Push(v float64) {
	if r.n < len(r.ring) {
		r.n++
	}
	r.ring[r.next] = v
	r.next = (r.next + 1) % len(r.ring)
}

// N returns the number of observations currently in the window.
func (r *RollingQuantiles) N() int { return r.n }

// Quantile returns the q-quantile (0 <= q <= 1) of the window using the
// nearest-rank method; 0 when the window is empty.
func (r *RollingQuantiles) Quantile(q float64) float64 {
	if r.n == 0 {
		return 0
	}
	vals := make([]float64, r.n)
	copy(vals, r.ring[:r.n])
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[r.n-1]
	}
	idx := int(math.Ceil(q*float64(r.n))) - 1
	if idx < 0 {
		idx = 0
	}
	return vals[idx]
}

// Max returns the largest in-window value (0 when empty).
func (r *RollingQuantiles) Max() float64 {
	var m float64
	for i := 0; i < r.n; i++ {
		if r.ring[i] > m {
			m = r.ring[i]
		}
	}
	return m
}
