// Package stats provides the statistical machinery for approximate query
// processing: distribution quantiles, Horvitz–Thompson estimators,
// closed-form variances under Bernoulli and stratified sampling, CLT and
// bootstrap confidence intervals, group-coverage probabilities, and
// relative-error propagation rules for composite aggregates.
package stats

import "math"

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using the Acklam rational approximation (|relative error|
// < 1.15e-9 over p in (0,1)).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One step of Halley refinement using the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// logGamma returns ln Γ(x) via the Lanczos approximation.
func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := logGamma(a+b) - logGamma(a) - logGamma(b) +
		a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T <= x) for Student's t with df degrees of freedom.
func StudentTCDF(x, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	p := 0.5 * regIncBeta(df/2, 0.5, df/(df+x*x))
	if x > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the p-th quantile of Student's t with df degrees
// of freedom, via bisection on the CDF (the CDF is exact to ~1e-12, so 80
// bisection steps give full double precision for practical purposes).
func StudentTQuantile(p, df float64) float64 {
	if df <= 0 || p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		if p >= 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	if df > 1e6 {
		return NormalQuantile(p)
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(lo)) {
			break
		}
	}
	return (lo + hi) / 2
}

// ChiSquareQuantile returns the p-th quantile of the chi-squared
// distribution with df degrees of freedom using the Wilson–Hilferty
// approximation refined by bisection on the regularized gamma CDF.
func ChiSquareQuantile(p, df float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Wilson–Hilferty starting point.
	z := NormalQuantile(p)
	x := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
	if x < 0 {
		x = 0
	}
	lo, hi := 0.0, math.Max(4*x+10*df, 100)
	for gammaCDF(hi, df/2) < p {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if gammaCDF(mid, df/2) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+lo) {
			break
		}
	}
	return (lo + hi) / 2
}

// gammaCDF returns P(X <= x) for X ~ chi-squared with 2k degrees of
// freedom, i.e. the regularized lower incomplete gamma P(k, x/2).
func gammaCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return regLowerGamma(k, x/2)
}

// regLowerGamma computes P(a, x), the regularized lower incomplete gamma
// function, by series for x < a+1 and by continued fraction otherwise.
func regLowerGamma(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-logGamma(a))
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-logGamma(a)) * h
	return 1 - q
}
