package stats

import (
	"math"
	"testing"
)

func TestCombineTotals(t *testing.T) {
	est, v, n := CombineTotals([]Stratum{
		{Estimate: 100, Variance: 4, N: 10, Pop: 50},
		{Estimate: 200, Variance: 9, N: 20, Pop: 100},
		{Estimate: -50, Variance: 1, N: 5, Pop: 25},
	})
	if est != 250 || v != 14 || n != 35 {
		t.Fatalf("got est=%v v=%v n=%v", est, v, n)
	}
	if est, v, n = CombineTotals(nil); est != 0 || v != 0 || n != 0 {
		t.Fatalf("empty strata: got est=%v v=%v n=%v", est, v, n)
	}
}

func TestCombineMeans(t *testing.T) {
	// Two strata, populations 75/25: mean = .75*10 + .25*20 = 12.5,
	// variance = .75²·4 + .25²·8 = 2.75.
	est, v, n := CombineMeans([]Stratum{
		{Estimate: 10, Variance: 4, N: 30, Pop: 75},
		{Estimate: 20, Variance: 8, N: 10, Pop: 25},
	})
	if math.Abs(est-12.5) > 1e-12 || math.Abs(v-2.75) > 1e-12 || n != 40 {
		t.Fatalf("got est=%v v=%v n=%v", est, v, n)
	}
	// Zero-population strata contribute nothing.
	est, _, _ = CombineMeans([]Stratum{
		{Estimate: 10, Variance: 4, N: 30, Pop: 100},
		{Estimate: 999, Variance: 1, N: 1, Pop: 0},
	})
	if math.Abs(est-10) > 1e-12 {
		t.Fatalf("zero-pop stratum shifted the mean: %v", est)
	}
	// All-zero populations: degenerate unweighted average.
	est, _, _ = CombineMeans([]Stratum{{Estimate: 4}, {Estimate: 8}})
	if est != 6 {
		t.Fatalf("degenerate average: %v", est)
	}
	if est, v, n = CombineMeans(nil); est != 0 || v != 0 || n != 0 {
		t.Fatalf("empty strata: got est=%v v=%v n=%v", est, v, n)
	}
}

func TestFPC(t *testing.T) {
	if got := FPC(100, 100); got != 0 {
		t.Fatalf("census FPC = %v, want 0", got)
	}
	if got := FPC(101, 1); got != 1 {
		t.Fatalf("n=1 FPC = %v, want (101-1)/(101-1)=1", got)
	}
	if got := FPC(1e9, 10); got < 0.999999 || got > 1 {
		t.Fatalf("n<<Pop FPC = %v, want ~1", got)
	}
	for _, bad := range [][2]float64{{0, 5}, {1, 1}, {10, 0}, {10, 11}, {10, -1}} {
		if got := FPC(bad[0], bad[1]); got != 1 {
			t.Fatalf("FPC(%v, %v) = %v, want 1 (out of range)", bad[0], bad[1], got)
		}
	}
	// In range, FPC shrinks variance.
	if got := FPC(100, 50); got <= 0 || got >= 1 {
		t.Fatalf("FPC(100, 50) = %v, want in (0,1)", got)
	}
}

func TestExtrapolateTotal(t *testing.T) {
	est, v := ExtrapolateTotal(100, 16, 500, 1000)
	if est != 200 || v != 64 {
		t.Fatalf("got est=%v v=%v, want 200, 64", est, v)
	}
	// Degenerate inputs pass through unchanged.
	for _, c := range [][2]float64{{0, 1000}, {1000, 1000}, {1000, 500}} {
		est, v = ExtrapolateTotal(100, 16, c[0], c[1])
		if est != 100 || v != 16 {
			t.Fatalf("covered=%v total=%v: got est=%v v=%v, want unchanged", c[0], c[1], est, v)
		}
	}
}

// TestMergeIsStratifiedComposition verifies the central claim of the
// sharded gather path: merging per-stratum HT partial states reproduces —
// bit for bit — the stratified composition of the per-stratum estimates,
// because both are the same plain sums in the same order.
func TestMergeIsStratifiedComposition(t *testing.T) {
	var s1, s2 HTEstimator
	for i := 0; i < 40; i++ {
		s1.Add(float64(i)*1.25, 10)
	}
	for i := 0; i < 25; i++ {
		s2.Add(float64(i)*-0.75, 4)
	}

	wantEst, wantVar, wantN := CombineTotals([]Stratum{
		{Estimate: s1.Sum(), Variance: s1.SumVariance(), N: s1.N()},
		{Estimate: s2.Sum(), Variance: s2.SumVariance(), N: s2.N()},
	})

	merged := s1 // copy
	merged.Merge(s2)
	if math.Float64bits(merged.Sum()) != math.Float64bits(wantEst) {
		t.Fatalf("merged sum %v != composed %v", merged.Sum(), wantEst)
	}
	if math.Float64bits(merged.SumVariance()) != math.Float64bits(wantVar) {
		t.Fatalf("merged variance %v != composed %v", merged.SumVariance(), wantVar)
	}
	if merged.N() != wantN {
		t.Fatalf("merged n %v != composed %v", merged.N(), wantN)
	}
}

// TestScalePopulationInvariants: scaling by r multiplies totals by r and
// their variances by r², and leaves the Hájek mean and its delta-method
// variance untouched (bit-for-bit when r is a power of two).
func TestScalePopulationInvariants(t *testing.T) {
	build := func() HTEstimator {
		var h HTEstimator
		for i := 0; i < 100; i++ {
			h.Add(math.Sin(float64(i))*10+5, 8)
		}
		return h
	}
	orig := build()
	scaled := build()
	scaled.ScalePopulation(2)

	if math.Float64bits(scaled.Sum()) != math.Float64bits(2*orig.Sum()) {
		t.Fatalf("sum: %v != 2·%v", scaled.Sum(), orig.Sum())
	}
	if math.Float64bits(scaled.SumVariance()) != math.Float64bits(4*orig.SumVariance()) {
		t.Fatalf("sum variance: %v != 4·%v", scaled.SumVariance(), orig.SumVariance())
	}
	if math.Float64bits(scaled.Count()) != math.Float64bits(2*orig.Count()) {
		t.Fatalf("count: %v != 2·%v", scaled.Count(), orig.Count())
	}
	if math.Float64bits(scaled.Mean()) != math.Float64bits(orig.Mean()) {
		t.Fatalf("mean not invariant: %v != %v", scaled.Mean(), orig.Mean())
	}
	if math.Float64bits(scaled.MeanVariance()) != math.Float64bits(orig.MeanVariance()) {
		t.Fatalf("mean variance not invariant: %v != %v", scaled.MeanVariance(), orig.MeanVariance())
	}
	// n is a sample-size fact, not a population estimate: unchanged.
	if scaled.N() != orig.N() {
		t.Fatalf("n changed: %v != %v", scaled.N(), orig.N())
	}

	// Non-dyadic ratios hold to rounding error.
	frac := build()
	r := 4.0 / 3.0
	frac.ScalePopulation(r)
	if math.Abs(frac.Sum()-r*orig.Sum()) > 1e-9*math.Abs(orig.Sum()) {
		t.Fatalf("sum: %v !≈ %v·%v", frac.Sum(), r, orig.Sum())
	}
	if math.Abs(frac.Mean()-orig.Mean()) > 1e-12*math.Abs(orig.Mean()) {
		t.Fatalf("mean: %v !≈ %v", frac.Mean(), orig.Mean())
	}

	// Guard values are no-ops.
	noop := build()
	noop.ScalePopulation(1)
	noop.ScalePopulation(0)
	noop.ScalePopulation(-3)
	if math.Float64bits(noop.Sum()) != math.Float64bits(orig.Sum()) {
		t.Fatalf("guarded scale changed the estimator")
	}
}
