package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWilsonIntervalBasics(t *testing.T) {
	iv := WilsonInterval(95, 100, 0.95)
	if !(iv.Lo < 0.95 && 0.95 < iv.Hi) {
		t.Fatalf("Wilson(95/100) = [%f, %f], want to contain 0.95", iv.Lo, iv.Hi)
	}
	// Known reference: Wilson 95% for 95/100 is roughly [0.887, 0.979].
	if math.Abs(iv.Lo-0.8872) > 0.005 || math.Abs(iv.Hi-0.9785) > 0.005 {
		t.Fatalf("Wilson(95/100) = [%f, %f], want ~[0.887, 0.979]", iv.Lo, iv.Hi)
	}
	// Extremes stay inside [0, 1] and are non-degenerate.
	if iv = WilsonInterval(0, 10, 0.95); iv.Lo > 1e-12 || iv.Hi <= 0 || iv.Hi >= 1 {
		t.Fatalf("Wilson(0/10) = [%f, %f]", iv.Lo, iv.Hi)
	}
	if iv = WilsonInterval(10, 10, 0.95); iv.Hi < 1-1e-12 || iv.Lo <= 0 {
		t.Fatalf("Wilson(10/10) = [%f, %f]", iv.Lo, iv.Hi)
	}
	if iv = WilsonInterval(0, 0, 0.95); iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("Wilson(0/0) = [%f, %f], want [0, 1]", iv.Lo, iv.Hi)
	}
}

// The Wilson interval's own coverage: across seeded binomial draws the
// interval should contain the true proportion about as often as promised.
func TestWilsonIntervalCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials, n, p = 400, 60, 0.93
	covered := 0
	for i := 0; i < trials; i++ {
		succ := 0
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				succ++
			}
		}
		if iv := WilsonInterval(succ, n, 0.95); iv.Lo <= p && p <= iv.Hi {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 0.89 {
		t.Fatalf("Wilson coverage %f, want >= 0.89", frac)
	}
}

func TestRollingCoverageWindow(t *testing.T) {
	r := NewRollingCoverage(4)
	for _, b := range []bool{true, true, false, true} {
		r.Push(b)
	}
	if r.N() != 4 || r.Hits() != 3 {
		t.Fatalf("N=%d hits=%d, want 4/3", r.N(), r.Hits())
	}
	// Two more pushes evict the two oldest (true, true).
	r.Push(false)
	r.Push(false)
	if r.N() != 4 || r.Hits() != 1 {
		t.Fatalf("after eviction N=%d hits=%d, want 4/1", r.N(), r.Hits())
	}
	if got := r.Rate(); got != 0.25 {
		t.Fatalf("rate %f, want 0.25", got)
	}
	iv := r.Wilson(0.95)
	if !(iv.Lo <= 0.25 && 0.25 <= iv.Hi) {
		t.Fatalf("Wilson [%f, %f] excludes the point estimate", iv.Lo, iv.Hi)
	}
}

func TestRollingQuantiles(t *testing.T) {
	r := NewRollingQuantiles(8)
	for _, v := range []float64{5, 1, 4, 2, 3} {
		r.Push(v)
	}
	if got := r.Quantile(0.5); got != 3 {
		t.Fatalf("median %f, want 3", got)
	}
	if got := r.Max(); got != 5 {
		t.Fatalf("max %f, want 5", got)
	}
	// Fill past capacity: {5,1,4} evicted, window = {2,3,10,11,12,13,14,15}.
	for _, v := range []float64{10, 11, 12, 13, 14, 15} {
		r.Push(v)
	}
	if got := r.Quantile(0); got != 2 {
		t.Fatalf("min %f, want 2 after eviction", got)
	}
	if got := r.Quantile(1); got != 15 {
		t.Fatalf("p100 %f, want 15", got)
	}
	if got := r.N(); got != 8 {
		t.Fatalf("N %d, want 8", got)
	}
}
