package stats

// NeymanAllocation computes the optimal (variance-minimizing) allocation
// of a fixed sample budget across strata for estimating a population
// total/mean: n_h ∝ N_h·S_h, where N_h is the stratum size and S_h its
// standard deviation. Strata with zero spread get the minimum allocation
// (they need a single representative row).
//
// The returned allocations are clamped to [min(1, N_h), N_h] and then
// re-normalized greedily so that Σ n_h ≤ total whenever total ≥ #strata.
func NeymanAllocation(sizes, stddevs []float64, total float64) []float64 {
	k := len(sizes)
	if k == 0 || len(stddevs) != k {
		return nil
	}
	out := make([]float64, k)
	var denom float64
	for h := 0; h < k; h++ {
		denom += sizes[h] * stddevs[h]
	}
	if denom <= 0 {
		// All strata constant: spread the budget evenly.
		per := total / float64(k)
		for h := range out {
			out[h] = clampAlloc(per, sizes[h])
		}
		return out
	}
	for h := 0; h < k; h++ {
		out[h] = clampAlloc(total*sizes[h]*stddevs[h]/denom, sizes[h])
	}
	// Clamping can leave unused budget (strata capped at N_h) — greedily
	// hand the remainder to uncapped strata in proportion. One pass is
	// enough for practical inputs; repeated passes converge.
	for pass := 0; pass < 4; pass++ {
		var used, head float64
		for h := 0; h < k; h++ {
			used += out[h]
			if out[h] < sizes[h] {
				head += sizes[h] * stddevs[h]
			}
		}
		spare := total - used
		if spare <= 0.5 || head <= 0 {
			break
		}
		for h := 0; h < k; h++ {
			if out[h] < sizes[h] {
				out[h] = clampAlloc(out[h]+spare*sizes[h]*stddevs[h]/head, sizes[h])
			}
		}
	}
	return out
}

func clampAlloc(x, size float64) float64 {
	if size < 1 {
		return size
	}
	if x < 1 {
		return 1
	}
	if x > size {
		return size
	}
	return x
}

// StratifiedTotalVariance returns the variance of the stratified estimator
// of the population total under per-stratum SRS with allocations n_h:
//
//	Var = Σ N_h² (1 - n_h/N_h) S_h² / n_h
func StratifiedTotalVariance(sizes, stddevs, alloc []float64) float64 {
	var v float64
	for h := range sizes {
		n := alloc[h]
		if n <= 0 {
			n = 1
		}
		fpc := 1 - n/sizes[h]
		if fpc < 0 {
			fpc = 0
		}
		v += sizes[h] * sizes[h] * fpc * stddevs[h] * stddevs[h] / n
	}
	return v
}
