package stats

import "math"

// GroupMissProbRow returns the probability that uniform row-level Bernoulli
// sampling at rate p misses every one of the m rows of a group:
// (1-p)^m.
func GroupMissProbRow(p float64, m int) float64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return 1
	}
	return math.Pow(1-p, float64(m))
}

// GroupMissProbBlock returns an upper bound on the probability that
// block-level Bernoulli sampling at rate p misses a group of m rows when
// the table block size is b: the group occupies at least ceil(m/b) blocks,
// so the miss probability is at most (1-p)^ceil(m/b).
func GroupMissProbBlock(p float64, m, b int) float64 {
	if b <= 0 {
		b = 1
	}
	blocks := (m + b - 1) / b
	return GroupMissProbRow(p, blocks)
}

// RequiredRateForCoverage returns the minimum Bernoulli row-sampling rate
// that misses any single group of at least m rows with probability at most
// delta: p >= 1 - delta^(1/m).
func RequiredRateForCoverage(m int, delta float64) float64 {
	if m <= 0 {
		return 1
	}
	if delta <= 0 {
		return 1
	}
	if delta >= 1 {
		return 0
	}
	return 1 - math.Pow(delta, 1/float64(m))
}

// RequiredRateForCoverageAll bounds the probability (by a union bound over
// g groups) that *any* group of at least m rows is missed by delta.
func RequiredRateForCoverageAll(m, g int, delta float64) float64 {
	if g <= 0 {
		g = 1
	}
	return RequiredRateForCoverage(m, delta/float64(g))
}

// ExpectedSampleSize returns n*p, the expected Bernoulli sample size.
func ExpectedSampleSize(n int, p float64) float64 { return float64(n) * p }

// SampleSizeLowerBound returns a probabilistic lower bound on the Bernoulli
// sample size: with probability at least 1-delta, the realized sample size
// of Binomial(n, p) is at least the returned value (normal approximation
// with continuity ignored; clamped at 0).
func SampleSizeLowerBound(n int, p, delta float64) float64 {
	mu := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	lb := mu - NormalQuantile(1-delta)*sd
	if lb < 0 {
		lb = 0
	}
	return lb
}

// RequiredSampleSizeForRelError returns the sample size n such that a CLT
// interval at the given confidence has relative half-width at most relErr
// for a population with coefficient of variation cv = sigma/|mu|:
//
//	n >= (z * cv / relErr)²
func RequiredSampleSizeForRelError(cv, relErr, confidence float64) float64 {
	if relErr <= 0 {
		return math.Inf(1)
	}
	z := NormalQuantile(1 - (1-confidence)/2)
	n := z * cv / relErr
	return n * n
}

// BlockDesignEffect returns the ratio between the sample size needed by
// block sampling and by row sampling for equal accuracy, following the
// standard cluster-sampling design-effect: with block size b, overall
// variance sigma², and mean within-block variance wv,
//
//	deff_blocks/rows = (sigma² - wv·(1-1/b)·b/(b-1)) ... simplified to
//	ratio = 1 - avgWithinVar/sigma² ... per-block-unit formulation:
//
// ratio = (sigma² - meanWithinVar) / (sigma² / b) · (1/b) = 1 - wv/sigma².
// Callers pass the population variance and the mean within-block variance;
// the return value is the block-to-row sample-size ratio in *rows*:
// blockRows/rowRows = b · (1 - wv/sigma²) ... see Lemma 4.1 analogue:
// ratio = 1 - wv/sigma² per sampled row times b rows per block.
func BlockDesignEffect(sigma2, meanWithinVar float64, blockSize int) float64 {
	if sigma2 <= 0 {
		return 1
	}
	b := float64(blockSize)
	betweenVar := sigma2 - meanWithinVar
	if betweenVar < 0 {
		betweenVar = 0
	}
	// Variance of a block mean ≈ betweenVar + withinVar/b; variance of a
	// row mean over k·b independent rows ≈ sigma²/(k·b). Equating accuracy
	// for k sampled blocks versus n sampled rows yields
	// rows(block)/rows(row) = b · (betweenVar + wv/b) / sigma².
	return b * (betweenVar + meanWithinVar/b) / sigma2
}
