package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNeymanAllocationProportional(t *testing.T) {
	// Two strata, equal size, one with 3x the spread: allocation 3:1.
	sizes := []float64{1000, 1000}
	devs := []float64{3, 1}
	a := NeymanAllocation(sizes, devs, 400)
	if math.Abs(a[0]-300) > 1 || math.Abs(a[1]-100) > 1 {
		t.Errorf("allocation = %v, want ~[300 100]", a)
	}
}

func TestNeymanAllocationClamping(t *testing.T) {
	// A tiny stratum cannot absorb its proportional share; the spare
	// budget flows to the others.
	sizes := []float64{10, 10000}
	devs := []float64{100, 1}
	a := NeymanAllocation(sizes, devs, 2000)
	if a[0] != 10 {
		t.Errorf("tiny stratum must cap at its size: %v", a)
	}
	if a[1] < 1500 {
		t.Errorf("spare budget should flow to the big stratum: %v", a)
	}
	total := a[0] + a[1]
	if total > 2000+1 {
		t.Errorf("allocation exceeds budget: %v", total)
	}
}

func TestNeymanAllocationConstantStrata(t *testing.T) {
	// All-zero spread: even split, respecting sizes.
	a := NeymanAllocation([]float64{100, 100, 2}, []float64{0, 0, 0}, 90)
	if a[2] != 2 {
		t.Errorf("constant stratum of size 2 takes 2: %v", a)
	}
	if math.Abs(a[0]-30) > 1 || math.Abs(a[1]-30) > 1 {
		t.Errorf("even split expected: %v", a)
	}
	// Zero-spread strata still get at least one representative.
	b := NeymanAllocation([]float64{100, 100}, []float64{0, 5}, 50)
	if b[0] < 1 {
		t.Errorf("zero-spread stratum needs a representative: %v", b)
	}
}

func TestNeymanBeatsEqualAllocation(t *testing.T) {
	// Variance under Neyman allocation is never worse than equal split.
	f := func(s1, s2, s3, d1, d2, d3 uint8) bool {
		sizes := []float64{float64(s1%50)*20 + 100, float64(s2%50)*20 + 100, float64(s3%50)*20 + 100}
		devs := []float64{float64(d1 % 20), float64(d2 % 20), float64(d3 % 20)}
		budget := 150.0
		ney := NeymanAllocation(sizes, devs, budget)
		eq := []float64{budget / 3, budget / 3, budget / 3}
		for h := range eq {
			if eq[h] > sizes[h] {
				eq[h] = sizes[h]
			}
		}
		vNey := StratifiedTotalVariance(sizes, devs, ney)
		vEq := StratifiedTotalVariance(sizes, devs, eq)
		return vNey <= vEq*1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNeymanDegenerate(t *testing.T) {
	if NeymanAllocation(nil, nil, 10) != nil {
		t.Error("empty input")
	}
	if NeymanAllocation([]float64{1}, []float64{1, 2}, 10) != nil {
		t.Error("length mismatch")
	}
}

func TestStratifiedTotalVariance(t *testing.T) {
	// Full enumeration of every stratum: zero variance.
	sizes := []float64{10, 20}
	devs := []float64{5, 3}
	v := StratifiedTotalVariance(sizes, devs, []float64{10, 20})
	if v != 0 {
		t.Errorf("census variance = %v", v)
	}
	// Halving the allocation increases variance.
	v1 := StratifiedTotalVariance(sizes, devs, []float64{5, 10})
	v2 := StratifiedTotalVariance(sizes, devs, []float64{2, 4})
	if !(v2 > v1 && v1 > 0) {
		t.Errorf("variance ordering: %v %v", v1, v2)
	}
}
