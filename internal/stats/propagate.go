package stats

import "math"

// Relative-error propagation rules for composite aggregates. Each rule
// bounds the relative error of a composite estimator given relative-error
// bounds e1, e2 on its positive inputs. These are the standard
// uncertainty-propagation bounds, provable by direct algebra:
//
//	product:  |xy − x̂ŷ|/(xy)       ≤ e1 + e2 + e1·e2
//	ratio:    |x/y − x̂/ŷ|/(x/y)    ≤ (e1 + e2) / (1 − e2)   (e2 < 1)
//	sum:      |ax+by − ax̂−bŷ| / (ax+by) ≤ max(e1, e2)       (a,b ≥ 0)

// PropagateProduct bounds the relative error of a product of two estimates.
func PropagateProduct(e1, e2 float64) float64 { return e1 + e2 + e1*e2 }

// PropagateRatio bounds the relative error of a ratio of two estimates.
// Returns +Inf when the denominator error can reach 1 (total loss).
func PropagateRatio(e1, e2 float64) float64 {
	if e2 >= 1 {
		return math.Inf(1)
	}
	return (e1 + e2) / (1 - e2)
}

// PropagateSum bounds the relative error of a nonnegative linear
// combination of two estimates.
func PropagateSum(e1, e2 float64) float64 { return math.Max(e1, e2) }

// AllocateRelError splits a composite relative-error budget evenly across k
// simple aggregates such that propagating the per-part errors through any
// chain of the rules above stays within the budget. For products the split
// must satisfy k·e + O(e²) ≤ budget; we solve the product case exactly for
// k = 2 and fall back to budget/k (safe for sums and ratios with small e).
func AllocateRelError(budget float64, k int) float64 {
	if k <= 1 {
		return budget
	}
	if k == 2 {
		// Solve 2e + e² = budget  →  e = sqrt(1+budget) − 1.
		return math.Sqrt(1+budget) - 1
	}
	return budget / float64(k)
}

// AllocateConfidence splits an overall confidence across k events by
// Boole's inequality: if each event individually fails with probability
// (1-c')/1 where c' is the returned per-event confidence, the probability
// that any fails is at most k·(1-c') = 1-c.
func AllocateConfidence(c float64, k int) float64 {
	if k <= 1 {
		return c
	}
	return 1 - (1-c)/float64(k)
}

// CombineIntervalsProduct returns an interval for the product X·Y of two
// independent positive estimates with intervals ix, iy, by interval
// arithmetic (conservative).
func CombineIntervalsProduct(x, y float64, ix, iy Interval) Interval {
	candidates := [4]float64{ix.Lo * iy.Lo, ix.Lo * iy.Hi, ix.Hi * iy.Lo, ix.Hi * iy.Hi}
	lo, hi := candidates[0], candidates[0]
	for _, c := range candidates[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return Interval{Lo: lo, Hi: hi, Confidence: math.Min(ix.Confidence, iy.Confidence)}
}

// CombineIntervalsRatio returns an interval for X/Y by interval arithmetic.
// If iy straddles zero the result is unbounded and Lo/Hi are ±Inf.
func CombineIntervalsRatio(x, y float64, ix, iy Interval) Interval {
	conf := math.Min(ix.Confidence, iy.Confidence)
	if iy.Lo <= 0 && iy.Hi >= 0 {
		return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), Confidence: conf}
	}
	candidates := [4]float64{ix.Lo / iy.Lo, ix.Lo / iy.Hi, ix.Hi / iy.Lo, ix.Hi / iy.Hi}
	lo, hi := candidates[0], candidates[0]
	for _, c := range candidates[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return Interval{Lo: lo, Hi: hi, Confidence: conf}
}
