// Package plan defines the logical query plan, the builder that turns a
// parsed SELECT statement into a plan tree, and the rule-based optimizer
// (predicate pushdown, sampler placement). Plans are consumed by
// internal/exec.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Node is a logical plan operator.
type Node interface {
	// Schema returns the operator's output schema.
	Schema() storage.Schema
	// Children returns input operators, left to right.
	Children() []Node
	// Explain renders one line of EXPLAIN output (without children).
	Explain() string
}

// Scan reads a base table, optionally applying a pushed-down filter and a
// sampler. If the table carries a trailing sample.WeightColumn (an offline
// materialized sample), the scan consumes it as the row weight and hides
// it from the output schema.
type Scan struct {
	Table     *storage.Table
	TableName string
	// Filter is a predicate over the table schema evaluated during the
	// scan, before weighting (filters commute with sampling).
	Filter expr.Expr
	// Sample, when non-nil, applies the sampler at scan time.
	Sample *sample.Spec
	// Projection, when non-nil, restricts output to the named columns (in
	// the given order). Weight columns are always consumed regardless.
	Projection []string
	// Parallelism, when > 0, hints the worker count for morsel-parallel
	// execution of this scan; 0 defers to engine and runtime defaults.
	Parallelism int

	out storage.Schema
}

// NewScan builds a scan node over table.
func NewScan(t *storage.Table) *Scan {
	s := &Scan{Table: t, TableName: t.Name()}
	s.rebuildSchema()
	return s
}

func (s *Scan) rebuildSchema() {
	src := s.Table.Schema()
	out := make(storage.Schema, 0, len(src))
	for _, def := range src {
		if def.Name == sample.WeightColumn {
			continue
		}
		if s.Projection != nil && !contains(s.Projection, def.Name) {
			continue
		}
		out = append(out, def)
	}
	s.out = out
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// SetProjection restricts the scan's output columns.
func (s *Scan) SetProjection(cols []string) {
	s.Projection = cols
	s.rebuildSchema()
}

// WeightColumnIndex returns the index of the hidden weight column in the
// underlying table, or -1.
func (s *Scan) WeightColumnIndex() int {
	return s.Table.Schema().ColumnIndex(sample.WeightColumn)
}

// Schema implements Node.
func (s *Scan) Schema() storage.Schema { return s.out }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Explain implements Node.
func (s *Scan) Explain() string {
	b := "Scan " + s.TableName
	if s.Sample != nil {
		b += " sample=" + s.Sample.String()
	}
	if s.Filter != nil {
		b += " filter=" + s.Filter.String()
	}
	return b
}

// Filter drops rows whose predicate is not true.
type Filter struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() storage.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Explain implements Node.
func (f *Filter) Explain() string { return "Filter " + f.Pred.String() }

// Project computes output expressions.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string

	out storage.Schema
}

// NewProject builds a projection; exprs must already be bound to the
// child's schema.
func NewProject(child Node, exprs []expr.Expr, names []string) *Project {
	p := &Project{Child: child, Exprs: exprs, Names: names}
	out := make(storage.Schema, len(exprs))
	for i, e := range exprs {
		out[i] = storage.ColumnDef{Name: names[i], Type: e.Type()}
	}
	p.out = out
	return p
}

// Schema implements Node.
func (p *Project) Schema() storage.Schema { return p.out }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Explain implements Node.
func (p *Project) Explain() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// Join is an inner equi-join (hash join). LeftKeys/RightKeys are parallel
// key expressions bound to the respective child schemas; Residual is an
// extra predicate over the concatenated schema.
type Join struct {
	Left, Right Node
	LeftKeys    []expr.Expr
	RightKeys   []expr.Expr
	Residual    expr.Expr

	out storage.Schema
}

// NewJoin builds an inner hash join node.
func NewJoin(l, r Node, lk, rk []expr.Expr, residual expr.Expr) *Join {
	j := &Join{Left: l, Right: r, LeftKeys: lk, RightKeys: rk, Residual: residual}
	j.out = append(append(storage.Schema{}, l.Schema()...), r.Schema()...)
	return j
}

// Schema implements Node.
func (j *Join) Schema() storage.Schema { return j.out }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Explain implements Node.
func (j *Join) Explain() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = j.LeftKeys[i].String() + "=" + j.RightKeys[i].String()
	}
	s := "HashJoin " + strings.Join(parts, " AND ")
	if j.Residual != nil {
		s += " residual=" + j.Residual.String()
	}
	return s
}

// AggSpec describes one aggregate computed by an Aggregate node.
type AggSpec struct {
	Func     sqlparse.AggFunc
	Arg      expr.Expr // bound to child schema; nil for COUNT(*)
	Star     bool
	Distinct bool
	// Param is PERCENTILE's quantile in (0,1).
	Param float64
	Name  string // output column name
}

// OutType returns the aggregate's output column type.
func (a AggSpec) OutType() storage.Type {
	switch a.Func {
	case sqlparse.AggCount:
		return storage.TypeInt64
	case sqlparse.AggAvg:
		return storage.TypeFloat64
	case sqlparse.AggMin, sqlparse.AggMax:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return storage.TypeFloat64
	default:
		return storage.TypeFloat64
	}
}

// Aggregate groups rows and computes aggregates. Output schema is the
// group columns followed by one column per aggregate.
type Aggregate struct {
	Child      Node
	GroupBy    []expr.Expr
	GroupNames []string
	Aggs       []AggSpec

	out storage.Schema
}

// NewAggregate builds an aggregation node; expressions must be bound to
// the child's schema.
func NewAggregate(child Node, groupBy []expr.Expr, groupNames []string, aggs []AggSpec) *Aggregate {
	a := &Aggregate{Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs}
	out := make(storage.Schema, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		out = append(out, storage.ColumnDef{Name: groupNames[i], Type: g.Type()})
	}
	for _, spec := range aggs {
		out = append(out, storage.ColumnDef{Name: spec.Name, Type: spec.OutType()})
	}
	a.out = out
	return a
}

// Schema implements Node.
func (a *Aggregate) Schema() storage.Schema { return a.out }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// Explain implements Node.
func (a *Aggregate) Explain() string {
	var parts []string
	for _, s := range a.Aggs {
		arg := "*"
		if s.Arg != nil {
			arg = s.Arg.String()
		}
		parts = append(parts, fmt.Sprintf("%s(%s)", s.Func, arg))
	}
	s := "HashAggregate " + strings.Join(parts, ", ")
	if len(a.GroupBy) > 0 {
		var gs []string
		for _, g := range a.GroupBy {
			gs = append(gs, g.String())
		}
		s += " group by " + strings.Join(gs, ", ")
	}
	return s
}

// SortKey is one ORDER BY key over the child's output schema.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort orders its input.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() storage.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Explain implements Node.
func (s *Sort) Explain() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit truncates its input to N rows.
type Limit struct {
	Child Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() storage.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Explain implements Node.
func (l *Limit) Explain() string { return fmt.Sprintf("Limit %d", l.N) }

// Explain renders the whole plan tree, one node per line, indented.
func Explain(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Explain())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// Scans returns every Scan node in the plan, left to right.
func Scans(n Node) []*Scan {
	var out []*Scan
	var rec func(Node)
	rec = func(n Node) {
		if s, ok := n.(*Scan); ok {
			out = append(out, s)
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(n)
	return out
}

// SetParallelism stamps a worker-count hint on every scan of the plan.
func SetParallelism(n Node, workers int) {
	for _, s := range Scans(n) {
		s.Parallelism = workers
	}
}

// Parallelism returns the largest positive per-scan worker-count hint in
// the plan, or 0 when no scan carries one.
func Parallelism(n Node) int {
	hint := 0
	for _, s := range Scans(n) {
		if s.Parallelism > hint {
			hint = s.Parallelism
		}
	}
	return hint
}

// FindAggregate returns the (single) Aggregate node of the plan, or nil.
func FindAggregate(n Node) *Aggregate {
	if a, ok := n.(*Aggregate); ok {
		return a
	}
	for _, c := range n.Children() {
		if a := FindAggregate(c); a != nil {
			return a
		}
	}
	return nil
}
