package plan

import (
	"repro/internal/expr"
	"repro/internal/sample"
)

// Optimize applies the rule-based rewrites:
//
//  1. Predicate pushdown — conjuncts of Filter nodes that reference only
//     one base table move into that table's Scan, where they are evaluated
//     against the raw row before materialization.
//  2. Sampler/filter commutation — samplers always execute at the scan
//     (Scan.Sample), *before* the pushed-down filter in plan order but the
//     two commute: a row passes iff it passes both, and its weight is
//     unaffected by the filter. This is the sampling-equivalence rule that
//     lets the error analysis treat "sample then filter" and "filter then
//     sample" identically (verified empirically in the sample tests).
//
// Optimize never changes result semantics for exact plans and never
// changes sample *distributions* for approximate plans.
func Optimize(root Node) Node {
	root = pushFilters(root)
	alignUniverseWeights(root)
	return root
}

// alignUniverseWeights fixes Horvitz–Thompson weights for correlated
// universe samplers: when several scans carry universe samplers with the
// same rate and salt (the join-sampling pattern), a joined row's inclusion
// probability is the shared rate — not the product — so exactly one scan
// keeps the 1/rate weight and the rest are set to weight 1.
func alignUniverseWeights(root Node) {
	type key struct {
		rate float64
		salt uint64
	}
	first := make(map[key]bool)
	for _, s := range Scans(root) {
		if s.Sample == nil || s.Sample.Kind != sample.KindUniverse {
			continue
		}
		k := key{rate: s.Sample.Rate, salt: s.Sample.Salt}
		if first[k] {
			s.Sample.NoWeight = true
		} else {
			first[k] = true
			s.Sample.NoWeight = false
		}
	}
}

// pushFilters rewrites Filter-over-(Join|Scan) trees routing single-table
// conjuncts into scans.
func pushFilters(n Node) Node {
	switch t := n.(type) {
	case *Filter:
		child := pushFilters(t.Child)
		remaining := routeConjuncts(SplitAnd(t.Pred), child)
		if len(remaining) == 0 {
			return child
		}
		pred := CombineAnd(remaining)
		// Re-bind against the child schema (clone-route may have stolen
		// pieces, the rest is untouched and still bound).
		return &Filter{Child: child, Pred: pred}
	case *Project:
		t.Child = pushFilters(t.Child)
		return t
	case *Join:
		t.Left = pushFilters(t.Left)
		t.Right = pushFilters(t.Right)
		return t
	case *Aggregate:
		t.Child = pushFilters(t.Child)
		return t
	case *Sort:
		t.Child = pushFilters(t.Child)
		return t
	case *Limit:
		t.Child = pushFilters(t.Child)
		return t
	default:
		return n
	}
}

// routeConjuncts tries to sink each conjunct into a scan beneath n,
// returning the conjuncts that could not be sunk.
func routeConjuncts(conjuncts []expr.Expr, n Node) []expr.Expr {
	scans := Scans(n)
	var remaining []expr.Expr
outer:
	for _, c := range conjuncts {
		cols := expr.Columns(c)
		if len(cols) == 0 {
			remaining = append(remaining, c)
			continue
		}
		for _, s := range scans {
			if coveredBy(cols, s.Table.Schema()) {
				cp := expr.Clone(c)
				if err := expr.Bind(cp, s.Table.Schema()); err != nil {
					remaining = append(remaining, c)
					continue outer
				}
				if s.Filter == nil {
					s.Filter = cp
				} else {
					s.Filter = &expr.Binary{Op: expr.OpAnd, L: s.Filter, R: cp}
				}
				continue outer
			}
		}
		remaining = append(remaining, c)
	}
	return remaining
}

// ApplySampler sets a sampler spec on the scan of the named table within
// the plan, returning false if the table is not scanned. AQP engines use
// this to inject samplers chosen at plan time (the Quickr pattern).
func ApplySampler(root Node, table string, spec sample.Spec) bool {
	for _, s := range Scans(root) {
		if s.TableName == table {
			cp := spec
			s.Sample = &cp
			return true
		}
	}
	return false
}

// ClearSamplers removes all samplers from the plan (used to derive the
// exact twin of an approximate plan).
func ClearSamplers(root Node) {
	for _, s := range Scans(root) {
		s.Sample = nil
	}
}
