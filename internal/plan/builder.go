package plan

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Build turns a parsed statement into an optimized logical plan over the
// catalog. The same builder serves exact and approximate execution; AQP
// engines additionally set sampler specs on scans (directly or via
// TABLESAMPLE clauses carried by the statement).
func Build(stmt *sqlparse.SelectStmt, cat *storage.Catalog) (Node, error) {
	b := &builder{cat: cat}
	root, err := b.build(stmt)
	if err != nil {
		return nil, err
	}
	return Optimize(root), nil
}

type builder struct {
	cat *storage.Catalog
}

func (b *builder) build(stmt *sqlparse.SelectStmt) (Node, error) {
	// Collect every column name referenced anywhere, for scan pruning.
	referenced := collectReferencedColumns(stmt)

	// Base scans.
	scan, err := b.makeScan(stmt.From, referenced)
	if err != nil {
		return nil, err
	}
	var root Node = scan

	for _, jc := range stmt.Joins {
		rscan, err := b.makeScan(jc.Table, referenced)
		if err != nil {
			return nil, err
		}
		on := expr.Clone(jc.On)
		lk, rk, residual, err := splitJoinKeys(on, root.Schema(), rscan.Schema())
		if err != nil {
			return nil, err
		}
		root = NewJoin(root, rscan, lk, rk, residual)
	}

	if stmt.Where != nil {
		pred := expr.Clone(stmt.Where)
		if err := expr.Bind(pred, root.Schema()); err != nil {
			return nil, err
		}
		root = &Filter{Child: root, Pred: pred}
	}

	aggs := stmt.Aggregates()
	if len(aggs) > 0 || len(stmt.GroupBy) > 0 {
		root, err = b.buildAggregate(stmt, root, aggs)
		if err != nil {
			return nil, err
		}
	} else {
		root, err = b.buildProjection(stmt, root)
		if err != nil {
			return nil, err
		}
	}

	if len(stmt.OrderBy) > 0 {
		keys := make([]SortKey, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			k := expr.Clone(o.Expr)
			if err := expr.Bind(k, root.Schema()); err != nil {
				return nil, fmt.Errorf("plan: ORDER BY: %w", err)
			}
			keys[i] = SortKey{Expr: k, Desc: o.Desc}
		}
		root = &Sort{Child: root, Keys: keys}
	}
	if stmt.Limit >= 0 {
		root = &Limit{Child: root, N: stmt.Limit}
	}
	return root, nil
}

func (b *builder) makeScan(tr sqlparse.TableRef, referenced map[string]bool) (*Scan, error) {
	t, err := b.cat.Table(tr.Name)
	if err != nil {
		return nil, err
	}
	s := NewScan(t)
	// Prune to referenced columns (keep all if none referenced, e.g.
	// SELECT COUNT(*) still needs zero columns but an empty projection
	// means "keep all", so project to the narrowest single column).
	var proj []string
	for _, def := range t.Schema() {
		if referenced[def.Name] {
			proj = append(proj, def.Name)
		}
	}
	if proj == nil && len(t.Schema()) > 0 {
		proj = []string{t.Schema()[0].Name}
	}
	s.SetProjection(proj)
	if tr.Sample != nil {
		spec := tr.Sample.Spec
		s.Sample = &spec
	}
	return s, nil
}

// collectReferencedColumns gathers all column names appearing in the
// statement's expressions and sampler key lists.
func collectReferencedColumns(stmt *sqlparse.SelectStmt) map[string]bool {
	ref := make(map[string]bool)
	add := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, c := range expr.Columns(e) {
			ref[c] = true
		}
	}
	for _, it := range stmt.Items {
		add(it.Expr)
	}
	add(stmt.Where)
	add(stmt.Having)
	for _, g := range stmt.GroupBy {
		add(g)
	}
	for _, o := range stmt.OrderBy {
		add(o.Expr)
	}
	for _, j := range stmt.Joins {
		add(j.On)
	}
	addSample := func(tr sqlparse.TableRef) {
		if tr.Sample != nil {
			for _, c := range tr.Sample.Spec.KeyColumns {
				ref[c] = true
			}
		}
	}
	addSample(stmt.From)
	for _, j := range stmt.Joins {
		addSample(j.Table)
	}
	return ref
}

// splitJoinKeys splits an ON condition into equi-join key pairs and a
// residual predicate. Key sides are bound to their respective schemas;
// the residual is bound to the concatenated schema.
func splitJoinKeys(on expr.Expr, lschema, rschema storage.Schema) (lk, rk []expr.Expr, residual expr.Expr, err error) {
	conjuncts := SplitAnd(on)
	var rest []expr.Expr
	for _, c := range conjuncts {
		if eq, ok := c.(*expr.Binary); ok && eq.Op == expr.OpEq {
			lcols, rcols := expr.Columns(eq.L), expr.Columns(eq.R)
			switch {
			case coveredBy(lcols, lschema) && coveredBy(rcols, rschema):
				if err := expr.Bind(eq.L, lschema); err != nil {
					return nil, nil, nil, err
				}
				if err := expr.Bind(eq.R, rschema); err != nil {
					return nil, nil, nil, err
				}
				lk = append(lk, eq.L)
				rk = append(rk, eq.R)
				continue
			case coveredBy(lcols, rschema) && coveredBy(rcols, lschema):
				if err := expr.Bind(eq.R, lschema); err != nil {
					return nil, nil, nil, err
				}
				if err := expr.Bind(eq.L, rschema); err != nil {
					return nil, nil, nil, err
				}
				lk = append(lk, eq.R)
				rk = append(rk, eq.L)
				continue
			}
		}
		rest = append(rest, c)
	}
	if len(lk) == 0 {
		return nil, nil, nil, fmt.Errorf("plan: join requires at least one equi-key in ON clause")
	}
	if len(rest) > 0 {
		residual = CombineAnd(rest)
		both := append(append(storage.Schema{}, lschema...), rschema...)
		if err := expr.Bind(residual, both); err != nil {
			return nil, nil, nil, err
		}
	}
	return lk, rk, residual, nil
}

func coveredBy(cols []string, schema storage.Schema) bool {
	for _, c := range cols {
		if schema.ColumnIndex(c) < 0 {
			return false
		}
	}
	return true
}

// aggColumnName returns the hidden output column name of aggregate slot i.
func aggColumnName(i int) string { return fmt.Sprintf("__agg%d", i) }

func (b *builder) buildAggregate(stmt *sqlparse.SelectStmt, child Node, aggs []*sqlparse.AggExpr) (Node, error) {
	inSchema := child.Schema()

	// Group-by expressions, named after matching select-item aliases when
	// possible.
	groupNames := make([]string, len(stmt.GroupBy))
	groupExprs := make([]expr.Expr, len(stmt.GroupBy))
	groupKeyByText := make(map[string]string) // expr text -> output column name
	for i, g := range stmt.GroupBy {
		ge := expr.Clone(g)
		if err := expr.Bind(ge, inSchema); err != nil {
			return nil, fmt.Errorf("plan: GROUP BY: %w", err)
		}
		name := g.String()
		for _, it := range stmt.Items {
			if it.Alias != "" && it.Expr != nil && it.Expr.String() == g.String() {
				name = it.Alias
				break
			}
		}
		groupExprs[i] = ge
		groupNames[i] = name
		groupKeyByText[g.String()] = name
	}

	// Aggregate specs.
	specs := make([]AggSpec, len(aggs))
	for i, a := range aggs {
		spec := AggSpec{Func: a.Func, Star: a.Star, Distinct: a.Distinct, Param: a.Param, Name: aggColumnName(i)}
		if a.Arg != nil {
			arg := expr.Clone(a.Arg)
			if err := expr.Bind(arg, inSchema); err != nil {
				return nil, fmt.Errorf("plan: aggregate %s: %w", a, err)
			}
			spec.Arg = arg
		}
		specs[i] = spec
	}
	aggNode := NewAggregate(child, groupExprs, groupNames, specs)
	var root Node = aggNode

	// HAVING: rewrite aggregates and group refs, filter above aggregation.
	if stmt.Having != nil {
		h, err := rewritePostAgg(stmt.Having, groupKeyByText)
		if err != nil {
			return nil, err
		}
		if err := expr.Bind(h, aggNode.Schema()); err != nil {
			return nil, fmt.Errorf("plan: HAVING: %w", err)
		}
		root = &Filter{Child: root, Pred: h}
	}

	// Final projection over the aggregate output.
	exprs := make([]expr.Expr, len(stmt.Items))
	names := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		e, err := rewritePostAgg(it.Expr, groupKeyByText)
		if err != nil {
			return nil, err
		}
		if err := expr.Bind(e, aggNode.Schema()); err != nil {
			return nil, fmt.Errorf("plan: select item %d: %w", i, err)
		}
		exprs[i] = e
		names[i] = it.Name(i)
	}
	return NewProject(root, exprs, names), nil
}

func (b *builder) buildProjection(stmt *sqlparse.SelectStmt, child Node) (Node, error) {
	exprs := make([]expr.Expr, len(stmt.Items))
	names := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		e := expr.Clone(it.Expr)
		if err := expr.Bind(e, child.Schema()); err != nil {
			return nil, fmt.Errorf("plan: select item %d: %w", i, err)
		}
		exprs[i] = e
		names[i] = it.Name(i)
	}
	return NewProject(child, exprs, names), nil
}

// rewritePostAgg clones e, replacing AggExpr nodes with references to
// their aggregate output columns and any subtree textually equal to a
// GROUP BY expression with a reference to the group column.
func rewritePostAgg(e expr.Expr, groupKeyByText map[string]string) (expr.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if name, ok := groupKeyByText[e.String()]; ok {
		return &expr.ColRef{Name: name, Index: -1}, nil
	}
	switch n := e.(type) {
	case *sqlparse.AggExpr:
		return &expr.ColRef{Name: aggColumnName(n.Slot), Index: -1}, nil
	case *expr.ColRef:
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or inside an aggregate", n.Name)
	case *expr.Lit:
		cp := *n
		return &cp, nil
	case *expr.Binary:
		l, err := rewritePostAgg(n.L, groupKeyByText)
		if err != nil {
			return nil, err
		}
		r, err := rewritePostAgg(n.R, groupKeyByText)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: n.Op, L: l, R: r}, nil
	case *expr.Unary:
		x, err := rewritePostAgg(n.X, groupKeyByText)
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: n.Op, X: x}, nil
	case *expr.In:
		x, err := rewritePostAgg(n.X, groupKeyByText)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(n.List))
		for i, a := range n.List {
			la, err := rewritePostAgg(a, groupKeyByText)
			if err != nil {
				return nil, err
			}
			list[i] = la
		}
		return &expr.In{X: x, List: list, Negate: n.Negate}, nil
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := rewritePostAgg(a, groupKeyByText)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return &expr.Call{Name: n.Name, Args: args}, nil
	}
	return nil, fmt.Errorf("plan: cannot rewrite expression %T", e)
}

// SplitAnd flattens a conjunction into its conjuncts.
func SplitAnd(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(SplitAnd(b.L), SplitAnd(b.R)...)
	}
	return []expr.Expr{e}
}

// CombineAnd rebuilds a conjunction from conjuncts (nil for empty input).
func CombineAnd(list []expr.Expr) expr.Expr {
	if len(list) == 0 {
		return nil
	}
	out := list[0]
	for _, e := range list[1:] {
		out = &expr.Binary{Op: expr.OpAnd, L: out, R: e}
	}
	return out
}
