package plan_test

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

func buildCatalog(t testing.TB) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	a := storage.NewTableWithBlockSize("ta", storage.Schema{
		{Name: "a_id", Type: storage.TypeInt64},
		{Name: "a_val", Type: storage.TypeFloat64},
		{Name: "a_tag", Type: storage.TypeString},
	}, 64)
	rng := rand.New(rand.NewSource(4))
	tags := []string{"x", "y", "z"}
	for i := 0; i < 1000; i++ {
		if err := a.AppendRow(
			storage.Int64(int64(i%100)),
			storage.Float64(rng.Float64()*100),
			storage.Str(tags[rng.Intn(3)]),
		); err != nil {
			t.Fatal(err)
		}
	}
	bt := storage.NewTable("tb", storage.Schema{
		{Name: "b_id", Type: storage.TypeInt64},
		{Name: "b_w", Type: storage.TypeFloat64},
	})
	for i := 0; i < 100; i++ {
		if err := bt.AppendRow(storage.Int64(int64(i)), storage.Float64(float64(i)*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(bt); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustBuild(t testing.TB, cat *storage.Catalog, sql string) plan.Node {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPredicatePushdownStructure(t *testing.T) {
	cat := buildCatalog(t)
	p := mustBuild(t, cat, "SELECT a_id FROM ta WHERE a_val > 50 AND a_tag = 'x'")
	scans := plan.Scans(p)
	if len(scans) != 1 {
		t.Fatalf("scans = %d", len(scans))
	}
	if scans[0].Filter == nil {
		t.Fatalf("single-table predicate not pushed down:\n%s", plan.Explain(p))
	}
	// No residual Filter node should remain above the scan.
	if strings.Contains(plan.Explain(p), "\nFilter") {
		t.Errorf("residual filter remains:\n%s", plan.Explain(p))
	}
}

func TestJoinPushdownSplitsBySide(t *testing.T) {
	cat := buildCatalog(t)
	p := mustBuild(t, cat,
		"SELECT COUNT(*) FROM ta JOIN tb ON a_id = b_id WHERE a_val > 10 AND b_w < 100")
	for _, s := range plan.Scans(p) {
		if s.Filter == nil {
			t.Errorf("scan %s has no pushed filter:\n%s", s.TableName, plan.Explain(p))
		}
	}
}

func TestCrossTablePredicateStaysAbove(t *testing.T) {
	cat := buildCatalog(t)
	p := mustBuild(t, cat,
		"SELECT COUNT(*) FROM ta JOIN tb ON a_id = b_id WHERE a_val > b_w")
	out := plan.Explain(p)
	if !strings.Contains(out, "Filter") {
		t.Errorf("cross-table predicate must stay as a Filter node:\n%s", out)
	}
}

func TestColumnPruning(t *testing.T) {
	cat := buildCatalog(t)
	p := mustBuild(t, cat, "SELECT SUM(a_val) FROM ta")
	scans := plan.Scans(p)
	if got := len(scans[0].Schema()); got != 1 {
		t.Errorf("pruned scan should expose 1 column, got %d (%v)",
			got, scans[0].Schema().Names())
	}
}

func TestApplyAndClearSamplers(t *testing.T) {
	cat := buildCatalog(t)
	p := mustBuild(t, cat, "SELECT COUNT(*) FROM ta")
	spec := sample.Spec{Kind: sample.KindUniformRow, Rate: 0.5, Seed: 1}
	if !plan.ApplySampler(p, "ta", spec) {
		t.Fatal("ApplySampler failed")
	}
	if plan.ApplySampler(p, "nope", spec) {
		t.Fatal("ApplySampler on unknown table should fail")
	}
	if plan.Scans(p)[0].Sample == nil {
		t.Fatal("sampler not applied")
	}
	plan.ClearSamplers(p)
	if plan.Scans(p)[0].Sample != nil {
		t.Fatal("sampler not cleared")
	}
}

func TestUniverseWeightAlignment(t *testing.T) {
	cat := buildCatalog(t)
	stmt, err := sqlparse.Parse(`SELECT COUNT(*) FROM ta TABLESAMPLE UNIVERSE (50) ON (a_id)
		JOIN tb TABLESAMPLE UNIVERSE (50) ON (b_id) ON a_id = b_id`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	scans := plan.Scans(p)
	carrying := 0
	for _, s := range scans {
		if s.Sample != nil && s.Sample.Kind == sample.KindUniverse && !s.Sample.NoWeight {
			carrying++
		}
	}
	if carrying != 1 {
		t.Errorf("exactly one universe scan must carry the HT weight, got %d", carrying)
	}
}

func TestFindAggregate(t *testing.T) {
	cat := buildCatalog(t)
	p := mustBuild(t, cat, "SELECT a_tag, COUNT(*) FROM ta GROUP BY a_tag ORDER BY a_tag LIMIT 2")
	if plan.FindAggregate(p) == nil {
		t.Error("aggregate not found")
	}
	p2 := mustBuild(t, cat, "SELECT a_id FROM ta")
	if plan.FindAggregate(p2) != nil {
		t.Error("false aggregate")
	}
}

func TestBuildErrors(t *testing.T) {
	cat := buildCatalog(t)
	bad := []string{
		"SELECT nope FROM ta",
		"SELECT a_id FROM missing",
		"SELECT a_id, COUNT(*) FROM ta",                  // non-grouped column with aggregate
		"SELECT COUNT(*) FROM ta JOIN tb ON a_val > b_w", // no equi-key
		"SELECT a_id FROM ta ORDER BY nope",              // unknown sort key
		"SELECT a_tag, COUNT(*) FROM ta GROUP BY a_tag HAVING nope > 1",
	}
	for _, sql := range bad {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := plan.Build(stmt, cat); err == nil {
			t.Errorf("Build(%q) should fail", sql)
		}
	}
}

// Property: the optimizer (predicate pushdown) never changes results.
// Random single-table filter queries are executed twice — once through
// Build (optimized) and once with the filter kept above the scan — and
// must agree exactly.
func TestPushdownEquivalenceProperty(t *testing.T) {
	cat := buildCatalog(t)
	f := func(loRaw, hiRaw uint8, tagIdx uint8) bool {
		lo := float64(loRaw) / 3
		hi := lo + float64(hiRaw)/3
		tag := []string{"x", "y", "z"}[tagIdx%3]
		sql := "SELECT COUNT(*) AS n, SUM(a_val) AS s FROM ta WHERE a_val BETWEEN " +
			trim(lo) + " AND " + trim(hi) + " AND a_tag = '" + tag + "'"
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return false
		}
		optimized, err := plan.Build(stmt, cat)
		if err != nil {
			return false
		}
		r1, err := exec.Run(optimized)
		if err != nil {
			return false
		}
		// Reference: a fresh build, filters cleared from scans by moving
		// the predicate into a HAVING-free re-parse... simplest honest
		// reference is a second Build of the same SQL (determinism) plus
		// a manual filter check against raw table contents.
		n, s := brute(cat, lo, hi, tag)
		if r1.NumRows() != 1 {
			return false
		}
		gotN := r1.Rows[0][0].AsFloat()
		gotS := r1.Rows[0][1].AsFloat()
		return gotN == n && almostEq(gotS, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func brute(cat *storage.Catalog, lo, hi float64, tag string) (n, s float64) {
	ta, _ := cat.Table("ta")
	valIdx := ta.Schema().ColumnIndex("a_val")
	tagIdx := ta.Schema().ColumnIndex("a_tag")
	for i := 0; i < ta.NumRows(); i++ {
		v := ta.Column(valIdx).Value(i).F
		g := ta.Column(tagIdx).Value(i).S
		if v >= lo && v <= hi && g == tag {
			n++
			s += v
		}
	}
	return n, s
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 {
		scale = b
	}
	return d/scale < 1e-9
}

func trim(x float64) string {
	s := strconv.FormatFloat(x, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
