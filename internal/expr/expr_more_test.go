package expr

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestStringRendering(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&ColRef{Name: "x"}, "x"},
		{&Lit{storage.Int64(5)}, "5"},
		{&Lit{storage.Str("a'b")}, "'a''b'"},
		{&Binary{Op: OpAdd, L: &ColRef{Name: "a"}, R: &Lit{storage.Int64(1)}}, "(a + 1)"},
		{&Binary{Op: OpAnd, L: &Lit{storage.Bool(true)}, R: &Lit{storage.Bool(false)}}, "(true AND false)"},
		{&Unary{Op: OpNot, X: &ColRef{Name: "f"}}, "(NOT f)"},
		{&Unary{Op: OpNeg, X: &ColRef{Name: "v"}}, "(- v)"},
		{&In{X: &ColRef{Name: "k"}, List: []Expr{&Lit{storage.Int64(1)}, &Lit{storage.Int64(2)}}}, "(k IN (1, 2))"},
		{&In{X: &ColRef{Name: "k"}, List: []Expr{&Lit{storage.Int64(1)}}, Negate: true}, "(k NOT IN (1))"},
		{&Call{Name: "ABS", Args: []Expr{&ColRef{Name: "x"}}}, "ABS(x)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%T) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[Op]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR", OpNot: "NOT",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if OpInvalid.String() != "?" {
		t.Error("invalid op renders ?")
	}
}

func TestTypeInferenceMore(t *testing.T) {
	// Unary types.
	if (&Unary{Op: OpNot, X: &Lit{storage.Bool(true)}}).Type() != storage.TypeBool {
		t.Error("NOT is bool")
	}
	if (&Unary{Op: OpNeg, X: &Lit{storage.Int64(1)}}).Type() != storage.TypeInt64 {
		t.Error("neg int is int")
	}
	// In is bool.
	if (&In{X: &Lit{storage.Int64(1)}, List: []Expr{&Lit{storage.Int64(1)}}}).Type() != storage.TypeBool {
		t.Error("IN is bool")
	}
	// Call types.
	callTypes := map[string]storage.Type{
		"ABS": storage.TypeInt64, "HASH64": storage.TypeInt64,
		"LENGTH": storage.TypeInt64, "SQRT": storage.TypeFloat64,
		"LOWER": storage.TypeString, "LIKE": storage.TypeBool,
		"ISNULL": storage.TypeBool, "UNKNOWN_FN": storage.TypeFloat64,
	}
	for name, want := range callTypes {
		args := []Expr{&Lit{storage.Int64(1)}}
		if got := (&Call{Name: name, Args: args}).Type(); got != want {
			t.Errorf("%s type = %v, want %v", name, got, want)
		}
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	e := &Binary{Op: OpOr,
		L: &In{X: &ColRef{Name: "a"}, List: []Expr{&Lit{storage.Int64(1)}}},
		R: &Unary{Op: OpNot, X: &Call{Name: "ISNULL", Args: []Expr{&ColRef{Name: "b"}}}},
	}
	count := 0
	e.Walk(func(Expr) { count++ })
	// Binary, In, ColRef a, Lit, Unary, Call, ColRef b = 7 nodes.
	if count != 7 {
		t.Errorf("walk visited %d nodes, want 7", count)
	}
}

func TestEvalBool(t *testing.T) {
	tru := &Lit{storage.Bool(true)}
	if ok, err := EvalBool(tru, nil); err != nil || !ok {
		t.Error("true must be true")
	}
	null := &Lit{storage.NullValue(storage.TypeBool)}
	if ok, err := EvalBool(null, nil); err != nil || ok {
		t.Error("NULL collapses to false")
	}
	num := &Lit{storage.Int64(1)}
	if ok, err := EvalBool(num, nil); err != nil || ok {
		t.Error("non-bool is not true")
	}
	bad := &Call{Name: "NO_SUCH"}
	if _, err := EvalBool(bad, nil); err == nil {
		t.Error("error propagates")
	}
}

func TestCloneAllNodeTypes(t *testing.T) {
	exprs := []Expr{
		&ColRef{Name: "x", Index: 3},
		&Lit{storage.Float64(1.5)},
		&Binary{Op: OpMul, L: &ColRef{Name: "a"}, R: &ColRef{Name: "b"}},
		&Unary{Op: OpNeg, X: &ColRef{Name: "a"}},
		&In{X: &ColRef{Name: "a"}, List: []Expr{&Lit{storage.Int64(1)}}, Negate: true},
		&Call{Name: "POW", Args: []Expr{&Lit{storage.Float64(2)}, &Lit{storage.Float64(3)}}},
	}
	for _, e := range exprs {
		cp := Clone(e)
		if cp.String() != e.String() {
			t.Errorf("clone of %T differs: %s vs %s", e, cp, e)
		}
		if cp == e {
			t.Errorf("clone of %T is the same pointer", e)
		}
	}
	// Clone independence: binding the clone must not touch the original.
	orig := &ColRef{Name: "x", Index: -1}
	cp := Clone(orig).(*ColRef)
	cp.Index = 5
	if orig.Index != -1 {
		t.Error("clone shares state")
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	e := &Binary{Op: OpAdd, L: &Lit{storage.Str("a")}, R: &Lit{storage.Int64(1)}}
	if _, err := e.Eval(nil); err == nil {
		t.Error("string arithmetic must error")
	}
	u := &Unary{Op: OpInvalid, X: &Lit{storage.Int64(1)}}
	if _, err := u.Eval(nil); err == nil {
		t.Error("invalid unary op must error")
	}
}

func TestFunctionArityErrors(t *testing.T) {
	for _, c := range []*Call{
		{Name: "POW", Args: []Expr{&Lit{storage.Float64(2)}}},
		{Name: "SUBSTR", Args: []Expr{&Lit{storage.Str("x")}}},
		{Name: "STARTS_WITH", Args: []Expr{&Lit{storage.Str("x")}}},
		{Name: "LIKE", Args: []Expr{&Lit{storage.Str("x")}}},
	} {
		if _, err := c.Eval(nil); err == nil {
			t.Errorf("%s with wrong arity must error", c.Name)
		}
	}
}

func TestSubstrEdges(t *testing.T) {
	eval := func(s string, start, n int64) string {
		c := &Call{Name: "SUBSTR", Args: []Expr{
			&Lit{storage.Str(s)}, &Lit{storage.Int64(start)}, &Lit{storage.Int64(n)}}}
		v, err := c.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		return v.S
	}
	if eval("hello", 1, 2) != "he" {
		t.Error("basic substr")
	}
	if eval("hello", 10, 2) != "" {
		t.Error("start past end")
	}
	if eval("hello", -3, 2) != "he" {
		t.Error("negative start clamps")
	}
	if eval("hello", 4, 100) != "lo" {
		t.Error("length past end clamps")
	}
}

func TestNegNull(t *testing.T) {
	u := &Unary{Op: OpNeg, X: &Lit{storage.NullValue(storage.TypeInt64)}}
	v, err := u.Eval(nil)
	if err != nil || !v.IsNull() {
		t.Error("-NULL is NULL")
	}
}

func TestInWithNullProbe(t *testing.T) {
	in := &In{X: &Lit{storage.NullValue(storage.TypeInt64)},
		List: []Expr{&Lit{storage.Int64(1)}}}
	v, err := in.Eval(nil)
	if err != nil || v.B {
		t.Error("NULL IN (...) collapses to false")
	}
}

func TestCallStringJoins(t *testing.T) {
	c := &Call{Name: "POW", Args: []Expr{&ColRef{Name: "x"}, &Lit{storage.Int64(2)}}}
	if !strings.Contains(c.String(), "POW(x, 2)") {
		t.Errorf("call string = %q", c.String())
	}
}
