// Package expr defines the scalar expression AST shared by the SQL parser,
// the planner, and the executor, together with a row-at-a-time evaluator.
package expr

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/storage"
)

// Op enumerates binary and unary operators.
type Op uint8

// Operators.
const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	case OpNeg:
		return "-"
	}
	return "?"
}

// Comparison reports whether the operator yields a boolean from two scalars.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// Row abstracts positional access to the current input row.
type Row interface {
	// ColumnValue returns the value of the column bound at index i.
	ColumnValue(i int) storage.Value
}

// ValuesRow is a Row over a plain slice.
type ValuesRow []storage.Value

// ColumnValue implements Row.
func (r ValuesRow) ColumnValue(i int) storage.Value { return r[i] }

// Expr is a scalar expression node.
type Expr interface {
	// Eval computes the expression over one row.
	Eval(row Row) (storage.Value, error)
	// Type returns the static result type (after Bind).
	Type() storage.Type
	// String renders the expression as SQL-ish text.
	String() string
	// Walk calls f on this node and recursively on all children.
	Walk(f func(Expr))
}

// ColRef references an input column. Name is as written; Index is resolved
// by Bind against an output schema.
type ColRef struct {
	Name  string
	Index int
	Typ   storage.Type
}

// Eval implements Expr.
func (c *ColRef) Eval(row Row) (storage.Value, error) {
	return row.ColumnValue(c.Index), nil
}

// Type implements Expr.
func (c *ColRef) Type() storage.Type { return c.Typ }

// String implements Expr.
func (c *ColRef) String() string { return c.Name }

// Walk implements Expr.
func (c *ColRef) Walk(f func(Expr)) { f(c) }

// Lit is a literal constant.
type Lit struct {
	Val storage.Value
}

// Eval implements Expr.
func (l *Lit) Eval(Row) (storage.Value, error) { return l.Val, nil }

// Type implements Expr.
func (l *Lit) Type() storage.Type { return l.Val.Typ }

// String implements Expr.
func (l *Lit) String() string {
	if l.Val.Typ == storage.TypeString && !l.Val.IsNull() {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// Walk implements Expr.
func (l *Lit) Walk(f func(Expr)) { f(l) }

// Binary applies Op to two operands.
type Binary struct {
	Op   Op
	L, R Expr
}

// Type implements Expr.
func (b *Binary) Type() storage.Type {
	if b.Op.Comparison() || b.Op == OpAnd || b.Op == OpOr {
		return storage.TypeBool
	}
	lt, rt := b.L.Type(), b.R.Type()
	if b.Op == OpDiv {
		return storage.TypeFloat64
	}
	if lt == storage.TypeFloat64 || rt == storage.TypeFloat64 {
		return storage.TypeFloat64
	}
	return storage.TypeInt64
}

// String implements Expr.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Walk implements Expr.
func (b *Binary) Walk(f func(Expr)) {
	f(b)
	b.L.Walk(f)
	b.R.Walk(f)
}

// Eval implements Expr.
func (b *Binary) Eval(row Row) (storage.Value, error) {
	// Short-circuit boolean connectives with SQL three-valued logic
	// collapsed to two-valued (NULL counts as false).
	if b.Op == OpAnd || b.Op == OpOr {
		lv, err := b.L.Eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		lb := !lv.IsNull() && lv.B
		if b.Op == OpAnd && !lb {
			return storage.Bool(false), nil
		}
		if b.Op == OpOr && lb {
			return storage.Bool(true), nil
		}
		rv, err := b.R.Eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.Bool(!rv.IsNull() && rv.B), nil
	}
	lv, err := b.L.Eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	rv, err := b.R.Eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	if b.Op.Comparison() {
		if lv.IsNull() || rv.IsNull() {
			return storage.Bool(false), nil
		}
		cmp := lv.Compare(rv)
		switch b.Op {
		case OpEq:
			return storage.Bool(lv.Equal(rv)), nil
		case OpNe:
			return storage.Bool(!lv.Equal(rv)), nil
		case OpLt:
			return storage.Bool(cmp < 0), nil
		case OpLe:
			return storage.Bool(cmp <= 0), nil
		case OpGt:
			return storage.Bool(cmp > 0), nil
		case OpGe:
			return storage.Bool(cmp >= 0), nil
		}
	}
	if lv.IsNull() || rv.IsNull() {
		return storage.NullValue(b.Type()), nil
	}
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(b.Op, lv, rv)
	}
	return storage.Value{}, fmt.Errorf("expr: unsupported binary op %v", b.Op)
}

func evalArith(op Op, lv, rv storage.Value) (storage.Value, error) {
	if !lv.Typ.Numeric() || !rv.Typ.Numeric() {
		return storage.Value{}, fmt.Errorf("expr: arithmetic on non-numeric types %v, %v", lv.Typ, rv.Typ)
	}
	if op == OpDiv {
		d := rv.AsFloat()
		if d == 0 {
			return storage.NullValue(storage.TypeFloat64), nil
		}
		return storage.Float64(lv.AsFloat() / d), nil
	}
	if lv.Typ == storage.TypeInt64 && rv.Typ == storage.TypeInt64 {
		a, c := lv.I, rv.I
		switch op {
		case OpAdd:
			return storage.Int64(a + c), nil
		case OpSub:
			return storage.Int64(a - c), nil
		case OpMul:
			return storage.Int64(a * c), nil
		case OpMod:
			if c == 0 {
				return storage.NullValue(storage.TypeInt64), nil
			}
			return storage.Int64(a % c), nil
		}
	}
	a, c := lv.AsFloat(), rv.AsFloat()
	switch op {
	case OpAdd:
		return storage.Float64(a + c), nil
	case OpSub:
		return storage.Float64(a - c), nil
	case OpMul:
		return storage.Float64(a * c), nil
	case OpMod:
		if c == 0 {
			return storage.NullValue(storage.TypeFloat64), nil
		}
		return storage.Float64(math.Mod(a, c)), nil
	}
	return storage.Value{}, fmt.Errorf("expr: unsupported arithmetic op %v", op)
}

// Unary applies OpNot or OpNeg.
type Unary struct {
	Op Op
	X  Expr
}

// Type implements Expr.
func (u *Unary) Type() storage.Type {
	if u.Op == OpNot {
		return storage.TypeBool
	}
	return u.X.Type()
}

// String implements Expr.
func (u *Unary) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.X) }

// Walk implements Expr.
func (u *Unary) Walk(f func(Expr)) {
	f(u)
	u.X.Walk(f)
}

// Eval implements Expr.
func (u *Unary) Eval(row Row) (storage.Value, error) {
	v, err := u.X.Eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	switch u.Op {
	case OpNot:
		return storage.Bool(!(!v.IsNull() && v.B)), nil
	case OpNeg:
		if v.IsNull() {
			return v, nil
		}
		if v.Typ == storage.TypeInt64 {
			return storage.Int64(-v.I), nil
		}
		return storage.Float64(-v.AsFloat()), nil
	}
	return storage.Value{}, fmt.Errorf("expr: unsupported unary op %v", u.Op)
}

// In tests membership of X in a literal list.
type In struct {
	X      Expr
	List   []Expr
	Negate bool
}

// Type implements Expr.
func (in *In) Type() storage.Type { return storage.TypeBool }

// String implements Expr.
func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	neg := ""
	if in.Negate {
		neg = " NOT"
	}
	return fmt.Sprintf("(%s%s IN (%s))", in.X, neg, strings.Join(parts, ", "))
}

// Walk implements Expr.
func (in *In) Walk(f func(Expr)) {
	f(in)
	in.X.Walk(f)
	for _, e := range in.List {
		e.Walk(f)
	}
}

// Eval implements Expr.
func (in *In) Eval(row Row) (storage.Value, error) {
	x, err := in.X.Eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	if x.IsNull() {
		return storage.Bool(false), nil
	}
	found := false
	for _, e := range in.List {
		v, err := e.Eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		if x.Equal(v) {
			found = true
			break
		}
	}
	return storage.Bool(found != in.Negate), nil
}

// Call invokes a built-in scalar function.
type Call struct {
	Name string // upper case
	Args []Expr
}

// Type implements Expr.
func (c *Call) Type() storage.Type {
	switch c.Name {
	case "ABS":
		if len(c.Args) == 1 {
			return c.Args[0].Type()
		}
		return storage.TypeFloat64
	case "HASH64", "LENGTH":
		return storage.TypeInt64
	case "SQRT", "LN", "EXP", "POW":
		return storage.TypeFloat64
	case "LOWER", "UPPER", "SUBSTR":
		return storage.TypeString
	case "LIKE", "STARTS_WITH", "ISNULL", "ISNOTNULL":
		return storage.TypeBool
	}
	return storage.TypeFloat64
}

// String implements Expr. The predicates the parser desugars (LIKE,
// IS [NOT] NULL) render back in their SQL spelling so that a statement's
// String() re-parses; everything else uses call syntax.
func (c *Call) String() string {
	switch c.Name {
	case "LIKE":
		if len(c.Args) == 2 {
			return fmt.Sprintf("(%s LIKE %s)", c.Args[0], c.Args[1])
		}
	case "ISNULL":
		if len(c.Args) == 1 {
			return fmt.Sprintf("(%s IS NULL)", c.Args[0])
		}
	case "ISNOTNULL":
		if len(c.Args) == 1 {
			return fmt.Sprintf("(%s IS NOT NULL)", c.Args[0])
		}
	}
	parts := make([]string, len(c.Args))
	for i, e := range c.Args {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// Walk implements Expr.
func (c *Call) Walk(f func(Expr)) {
	f(c)
	for _, e := range c.Args {
		e.Walk(f)
	}
}

// Hash64 is the deterministic value hash used by the universe sampler and
// by HASH64(). Both sides of a join must agree on it exactly.
func Hash64(v storage.Value) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(v.GroupKey()))
	return h.Sum64()
}

// Eval implements Expr.
func (c *Call) Eval(row Row) (storage.Value, error) {
	args := make([]storage.Value, len(c.Args))
	for i, e := range c.Args {
		v, err := e.Eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		args[i] = v
	}
	switch c.Name {
	case "ABS":
		if args[0].IsNull() {
			return args[0], nil
		}
		if args[0].Typ == storage.TypeInt64 {
			if args[0].I < 0 {
				return storage.Int64(-args[0].I), nil
			}
			return args[0], nil
		}
		return storage.Float64(math.Abs(args[0].AsFloat())), nil
	case "SQRT":
		return storage.Float64(math.Sqrt(args[0].AsFloat())), nil
	case "LN":
		return storage.Float64(math.Log(args[0].AsFloat())), nil
	case "EXP":
		return storage.Float64(math.Exp(args[0].AsFloat())), nil
	case "POW":
		if len(args) != 2 {
			return storage.Value{}, fmt.Errorf("expr: POW takes 2 arguments")
		}
		return storage.Float64(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	case "HASH64":
		return storage.Int64(int64(Hash64(args[0]) >> 1)), nil
	case "LENGTH":
		return storage.Int64(int64(len(args[0].S))), nil
	case "LOWER":
		return storage.Str(strings.ToLower(args[0].S)), nil
	case "UPPER":
		return storage.Str(strings.ToUpper(args[0].S)), nil
	case "SUBSTR":
		if len(args) != 3 {
			return storage.Value{}, fmt.Errorf("expr: SUBSTR takes 3 arguments")
		}
		s := args[0].S
		start := int(args[1].AsInt()) - 1
		n := int(args[2].AsInt())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return storage.Str(s[start:end]), nil
	case "STARTS_WITH":
		if len(args) != 2 {
			return storage.Value{}, fmt.Errorf("expr: STARTS_WITH takes 2 arguments")
		}
		return storage.Bool(strings.HasPrefix(args[0].S, args[1].S)), nil
	case "ISNULL":
		return storage.Bool(args[0].IsNull()), nil
	case "ISNOTNULL":
		return storage.Bool(!args[0].IsNull()), nil
	case "LIKE":
		if len(args) != 2 {
			return storage.Value{}, fmt.Errorf("expr: LIKE takes 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return storage.Bool(false), nil
		}
		return storage.Bool(likeMatch(args[0].S, args[1].S)), nil
	}
	return storage.Value{}, fmt.Errorf("expr: unknown function %s", c.Name)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte)
// wildcards via iterative backtracking.
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// Bind resolves every ColRef in e against the given schema, setting Index
// and Typ. It returns an error for unknown columns.
func Bind(e Expr, schema storage.Schema) error {
	var err error
	e.Walk(func(n Expr) {
		if c, ok := n.(*ColRef); ok {
			idx := schema.ColumnIndex(c.Name)
			if idx < 0 {
				if err == nil {
					err = fmt.Errorf("expr: unknown column %q", c.Name)
				}
				return
			}
			c.Index = idx
			c.Typ = schema[idx].Type
		}
	})
	return err
}

// Columns returns the distinct column names referenced by e, in first-use
// order.
func Columns(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	e.Walk(func(n Expr) {
		if c, ok := n.(*ColRef); ok && !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c.Name)
		}
	})
	return out
}

// EvalBool evaluates e and coerces the result to a plain bool (NULL=false).
func EvalBool(e Expr, row Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Typ == storage.TypeBool && v.B, nil
}

// Clone deep-copies an expression tree.
func Clone(e Expr) Expr {
	switch n := e.(type) {
	case *ColRef:
		cp := *n
		return &cp
	case *Lit:
		cp := *n
		return &cp
	case *Binary:
		return &Binary{Op: n.Op, L: Clone(n.L), R: Clone(n.R)}
	case *Unary:
		return &Unary{Op: n.Op, X: Clone(n.X)}
	case *In:
		list := make([]Expr, len(n.List))
		for i, a := range n.List {
			list[i] = Clone(a)
		}
		return &In{X: Clone(n.X), List: list, Negate: n.Negate}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Clone(a)
		}
		return &Call{Name: n.Name, Args: args}
	}
	panic(fmt.Sprintf("expr: Clone of unknown node %T", e))
}
