package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func row(vals ...storage.Value) Row { return ValuesRow(vals) }

func mustEval(t *testing.T, e Expr, r Row) storage.Value {
	t.Helper()
	v, err := e.Eval(r)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   Op
		l, r storage.Value
		want storage.Value
	}{
		{OpAdd, storage.Int64(2), storage.Int64(3), storage.Int64(5)},
		{OpSub, storage.Int64(2), storage.Int64(3), storage.Int64(-1)},
		{OpMul, storage.Int64(4), storage.Int64(3), storage.Int64(12)},
		{OpDiv, storage.Int64(7), storage.Int64(2), storage.Float64(3.5)},
		{OpMod, storage.Int64(7), storage.Int64(3), storage.Int64(1)},
		{OpAdd, storage.Float64(1.5), storage.Int64(1), storage.Float64(2.5)},
		{OpMul, storage.Float64(2), storage.Float64(2.5), storage.Float64(5)},
	}
	for _, c := range cases {
		e := &Binary{Op: c.op, L: &Lit{c.l}, R: &Lit{c.r}}
		got := mustEval(t, e, nil)
		if !got.Equal(c.want) {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	e := &Binary{Op: OpDiv, L: &Lit{storage.Int64(1)}, R: &Lit{storage.Int64(0)}}
	if v := mustEval(t, e, nil); !v.IsNull() {
		t.Errorf("1/0 = %v, want NULL", v)
	}
	e = &Binary{Op: OpMod, L: &Lit{storage.Int64(1)}, R: &Lit{storage.Int64(0)}}
	if v := mustEval(t, e, nil); !v.IsNull() {
		t.Errorf("1%%0 = %v, want NULL", v)
	}
}

func TestComparisons(t *testing.T) {
	tt := storage.Bool(true)
	ff := storage.Bool(false)
	cases := []struct {
		op   Op
		l, r storage.Value
		want storage.Value
	}{
		{OpEq, storage.Int64(1), storage.Int64(1), tt},
		{OpEq, storage.Int64(1), storage.Float64(1), tt},
		{OpNe, storage.Int64(1), storage.Int64(2), tt},
		{OpLt, storage.Str("a"), storage.Str("b"), tt},
		{OpGe, storage.Int64(2), storage.Int64(2), tt},
		{OpGt, storage.Int64(2), storage.Int64(3), ff},
		{OpEq, storage.NullValue(storage.TypeInt64), storage.Int64(1), ff},
	}
	for _, c := range cases {
		e := &Binary{Op: c.op, L: &Lit{c.l}, R: &Lit{c.r}}
		got := mustEval(t, e, nil)
		if got.B != c.want.B {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	// The right side would error (unknown function), but AND
	// short-circuits on false.
	bad := &Call{Name: "NO_SUCH_FN"}
	e := &Binary{Op: OpAnd, L: &Lit{storage.Bool(false)}, R: bad}
	v := mustEval(t, e, nil)
	if v.B {
		t.Error("false AND x = true?")
	}
	e2 := &Binary{Op: OpOr, L: &Lit{storage.Bool(true)}, R: bad}
	v = mustEval(t, e2, nil)
	if !v.B {
		t.Error("true OR x = false?")
	}
}

func TestUnary(t *testing.T) {
	e := &Unary{Op: OpNeg, X: &Lit{storage.Int64(5)}}
	if v := mustEval(t, e, nil); v.I != -5 {
		t.Errorf("-5 = %v", v)
	}
	e = &Unary{Op: OpNot, X: &Lit{storage.Bool(true)}}
	if v := mustEval(t, e, nil); v.B {
		t.Error("NOT true = true?")
	}
	// NOT NULL is true under collapsed two-valued logic.
	e = &Unary{Op: OpNot, X: &Lit{storage.NullValue(storage.TypeBool)}}
	if v := mustEval(t, e, nil); !v.B {
		t.Error("NOT NULL should collapse to true (NULL counts as false)")
	}
}

func TestIn(t *testing.T) {
	in := &In{X: &Lit{storage.Int64(2)}, List: []Expr{
		&Lit{storage.Int64(1)}, &Lit{storage.Int64(2)}}}
	if v := mustEval(t, in, nil); !v.B {
		t.Error("2 IN (1,2) = false?")
	}
	in.Negate = true
	if v := mustEval(t, in, nil); v.B {
		t.Error("2 NOT IN (1,2) = true?")
	}
}

func TestColRefBind(t *testing.T) {
	schema := storage.Schema{
		{Name: "a", Type: storage.TypeInt64},
		{Name: "b", Type: storage.TypeFloat64},
	}
	e := &Binary{Op: OpAdd, L: &ColRef{Name: "a"}, R: &ColRef{Name: "b"}}
	if err := Bind(e, schema); err != nil {
		t.Fatal(err)
	}
	v := mustEval(t, e, row(storage.Int64(1), storage.Float64(2.5)))
	if v.AsFloat() != 3.5 {
		t.Errorf("a+b = %v", v)
	}
	bad := &ColRef{Name: "zzz"}
	if err := Bind(bad, schema); err == nil {
		t.Error("expected bind error for unknown column")
	}
}

func TestColumnsCollect(t *testing.T) {
	e := &Binary{Op: OpAnd,
		L: &Binary{Op: OpGt, L: &ColRef{Name: "x"}, R: &Lit{storage.Int64(0)}},
		R: &Binary{Op: OpLt, L: &ColRef{Name: "y"}, R: &ColRef{Name: "x"}},
	}
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "x" || cols[1] != "y" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestFunctions(t *testing.T) {
	cases := []struct {
		name string
		args []Expr
		want storage.Value
	}{
		{"ABS", []Expr{&Lit{storage.Int64(-4)}}, storage.Int64(4)},
		{"ABS", []Expr{&Lit{storage.Float64(-1.5)}}, storage.Float64(1.5)},
		{"SQRT", []Expr{&Lit{storage.Float64(9)}}, storage.Float64(3)},
		{"LENGTH", []Expr{&Lit{storage.Str("abc")}}, storage.Int64(3)},
		{"LOWER", []Expr{&Lit{storage.Str("AbC")}}, storage.Str("abc")},
		{"UPPER", []Expr{&Lit{storage.Str("AbC")}}, storage.Str("ABC")},
		{"POW", []Expr{&Lit{storage.Float64(2)}, &Lit{storage.Float64(10)}}, storage.Float64(1024)},
		{"SUBSTR", []Expr{&Lit{storage.Str("hello")}, &Lit{storage.Int64(2)}, &Lit{storage.Int64(3)}}, storage.Str("ell")},
		{"STARTS_WITH", []Expr{&Lit{storage.Str("hello")}, &Lit{storage.Str("he")}}, storage.Bool(true)},
		{"ISNULL", []Expr{&Lit{storage.NullValue(storage.TypeInt64)}}, storage.Bool(true)},
		{"ISNOTNULL", []Expr{&Lit{storage.Int64(1)}}, storage.Bool(true)},
	}
	for _, c := range cases {
		e := &Call{Name: c.name, Args: c.args}
		got := mustEval(t, e, nil)
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", e, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_x", false},
		{"hello", "%", true},
		{"", "%", true},
		{"abc", "a%c%", true},
		{"abc", "a_", false},
	}
	for _, c := range cases {
		e := &Call{Name: "LIKE", Args: []Expr{&Lit{storage.Str(c.s)}, &Lit{storage.Str(c.pat)}}}
		got := mustEval(t, e, nil)
		if got.B != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got.B, c.want)
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	a := Hash64(storage.Int64(12345))
	b := Hash64(storage.Int64(12345))
	if a != b {
		t.Error("Hash64 must be deterministic")
	}
	// Numeric coercion: int 3 and float 3.0 hash identically (same key).
	if Hash64(storage.Int64(3)) != Hash64(storage.Float64(3)) {
		t.Error("Hash64 must agree across numeric representations")
	}
}

func TestClonePreservesEval(t *testing.T) {
	schema := storage.Schema{{Name: "a", Type: storage.TypeInt64}}
	e := &Binary{Op: OpMul,
		L: &Binary{Op: OpAdd, L: &ColRef{Name: "a"}, R: &Lit{storage.Int64(1)}},
		R: &Lit{storage.Int64(2)}}
	cp := Clone(e)
	if err := Bind(cp, schema); err != nil {
		t.Fatal(err)
	}
	// The original is unbound; the clone must be independent.
	if e.L.(*Binary).L.(*ColRef).Index == 0 {
		t.Skip("original was mutated") // would indicate shallow clone
	}
	v := mustEval(t, cp, row(storage.Int64(4)))
	if v.I != 10 {
		t.Errorf("(a+1)*2 with a=4 = %v", v)
	}
}

func TestTypeInference(t *testing.T) {
	intLit := &Lit{storage.Int64(1)}
	fLit := &Lit{storage.Float64(1)}
	if (&Binary{Op: OpAdd, L: intLit, R: intLit}).Type() != storage.TypeInt64 {
		t.Error("int+int should be int")
	}
	if (&Binary{Op: OpAdd, L: intLit, R: fLit}).Type() != storage.TypeFloat64 {
		t.Error("int+float should be float")
	}
	if (&Binary{Op: OpDiv, L: intLit, R: intLit}).Type() != storage.TypeFloat64 {
		t.Error("division is always float")
	}
	if (&Binary{Op: OpLt, L: intLit, R: intLit}).Type() != storage.TypeBool {
		t.Error("comparison is bool")
	}
}

// Property: arithmetic on int literals matches Go semantics.
func TestArithmeticProperty(t *testing.T) {
	f := func(a, b int32) bool {
		l, r := &Lit{storage.Int64(int64(a))}, &Lit{storage.Int64(int64(b))}
		add, _ := (&Binary{Op: OpAdd, L: l, R: r}).Eval(nil)
		sub, _ := (&Binary{Op: OpSub, L: l, R: r}).Eval(nil)
		mul, _ := (&Binary{Op: OpMul, L: l, R: r}).Eval(nil)
		return add.I == int64(a)+int64(b) &&
			sub.I == int64(a)-int64(b) &&
			mul.I == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LIKE with a pattern equal to the string (no wildcards) always
// matches, and appending "%" preserves the match.
func TestLikeProperty(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' && r < 128 {
				clean += string(r)
			}
		}
		e1 := &Call{Name: "LIKE", Args: []Expr{&Lit{storage.Str(clean)}, &Lit{storage.Str(clean)}}}
		v1, err := e1.Eval(nil)
		if err != nil || !v1.B {
			return false
		}
		e2 := &Call{Name: "LIKE", Args: []Expr{&Lit{storage.Str(clean)}, &Lit{storage.Str(clean + "%")}}}
		v2, err := e2.Eval(nil)
		return err == nil && v2.B
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
