package insight

import "testing"

// fill pushes n copies of v, returning whether any push fired or
// recovered.
func fill(s *sentinel, v float64, n int) (fired, recovered bool) {
	for i := 0; i < n; i++ {
		f, rec := s.push(v)
		fired = fired || f
		recovered = recovered || rec
	}
	return fired, recovered
}

// TestSentinelNoTripWhileFilling: no evaluation until the 2W ring is
// full, even for wild values.
func TestSentinelNoTripWhileFilling(t *testing.T) {
	s := newSentinel(4, 2, 1)
	for i, v := range []float64{1, 1, 1, 1000, 1000, 1000, 1000} {
		if fired, recovered := s.push(v); fired || recovered {
			t.Fatalf("transition at push %d while ring (cap 8) still filling", i)
		}
	}
}

// TestSentinelTripsOnSeededJump: a steady shape whose latency doubles
// trips exactly once on the edge.
func TestSentinelTripsOnSeededJump(t *testing.T) {
	s := newSentinel(4, 2, 1)
	fill(s, 10, 8) // full ring of steady 10ms
	if s.tripped {
		t.Fatal("steady window tripped")
	}
	var fires int
	for i := 0; i < 4; i++ {
		fired, recovered := s.push(100)
		if recovered {
			t.Fatal("spurious recovery during regression")
		}
		if fired {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("fired %d times during sustained jump, want exactly 1 (edge-triggered)", fires)
	}
	if !s.tripped {
		t.Fatal("sentinel not tripped after sustained jump")
	}
	if s.baseline >= s.current {
		t.Fatalf("baseline %v !< current %v", s.baseline, s.current)
	}
}

// TestSentinelFloorGatesNoise: a doubling that stays under the absolute
// floor never trips (microsecond noise on fast shapes).
func TestSentinelFloorGatesNoise(t *testing.T) {
	s := newSentinel(4, 2, 1) // floor 1ms
	fill(s, 0.1, 8)
	if fired, _ := fill(s, 0.3, 4); fired || s.tripped {
		t.Fatal("sub-floor tripled latency tripped the sentinel")
	}
}

// TestSentinelRecovers: after the regression passes, the sentinel emits
// one recovered edge; a *sustained* regression becomes its own baseline
// and also reads as recovered (alert on change, not level).
func TestSentinelRecovers(t *testing.T) {
	s := newSentinel(4, 2, 1)
	fill(s, 10, 8)
	if fired, _ := fill(s, 100, 4); !fired {
		t.Fatal("jump did not trip")
	}
	// Four more regressed observations: the regressed half slides into
	// the baseline half, so current (100) vs baseline (100) is no longer
	// a change.
	var recoveries int
	for i := 0; i < 4; i++ {
		fired, recovered := s.push(100)
		if fired {
			t.Fatal("re-fired while already tripped")
		}
		if recovered {
			recoveries++
		}
	}
	if recoveries != 1 {
		t.Fatalf("recovered %d times, want exactly 1", recoveries)
	}
	if s.tripped {
		t.Fatal("still tripped after regression became the baseline")
	}
}

// TestSentinelQuantiles: display quantiles reflect the halves.
func TestSentinelQuantiles(t *testing.T) {
	s := newSentinel(2, 2, 1)
	for _, v := range []float64{1, 2, 30, 40} {
		s.push(v)
	}
	if got := s.quantileBaseline(0.95); got != 2 {
		t.Fatalf("baseline p95 = %v, want 2", got)
	}
	if got := s.quantileCurrent(0.95); got != 40 {
		t.Fatalf("current p95 = %v, want 40", got)
	}
	if got := s.quantileAll(0.5); got != 2 {
		t.Fatalf("overall p50 = %v, want 2", got)
	}
}

// TestRegistrySeededLatencyRegression: end-to-end through the registry —
// a seeded latency jump on one fingerprint emits a regression event for
// that fingerprint only, and the scorecard exposes the sentinel state.
func TestRegistrySeededLatencyRegression(t *testing.T) {
	var events []Event
	r := New(Config{Window: 4, OnEvent: func(ev Event) { events = append(events, ev) }})
	victim := "SELECT SUM(x) FROM t WHERE x > 5"
	bystander := "SELECT COUNT(*) FROM t"
	var victimHash string
	for i := 0; i < 8; i++ {
		victimHash = r.Offer(victim, obs("online", 10))
		r.Offer(bystander, obs("exact", 10))
	}
	for i := 0; i < 4; i++ {
		r.Offer(victim, obs("online", 200)) // seeded regression
		r.Offer(bystander, obs("exact", 10))
	}
	var reg []Event
	for _, ev := range events {
		if ev.Kind == EventRegression {
			reg = append(reg, ev)
		}
	}
	if len(reg) != 1 {
		t.Fatalf("regression events = %+v, want exactly 1", reg)
	}
	if reg[0].Fingerprint != victimHash || reg[0].Signal != SignalLatency {
		t.Fatalf("regression event = %+v, want fingerprint %s signal %s", reg[0], victimHash, SignalLatency)
	}
	if reg[0].Template == "" || reg[0].Current <= reg[0].Baseline {
		t.Fatalf("regression event lacks context: %+v", reg[0])
	}
	if got := r.Regressions(); got != 1 {
		t.Fatalf("Regressions() = %d, want 1", got)
	}
	byReg := r.Top(1, ByRegressions)
	if byReg[0].Fingerprint != victimHash || byReg[0].Regressions != 1 {
		t.Fatalf("top-by-regressions = %+v", byReg[0])
	}
	if len(byReg[0].Active) != 1 || byReg[0].Active[0] != SignalLatency {
		t.Fatalf("active regressions = %v, want [%s]", byReg[0].Active, SignalLatency)
	}
	if byReg[0].BaselineLatencyP95MS == 0 {
		t.Fatal("snapshot missing trailing-baseline p95")
	}
}

// TestRegistryCoverageSentinel: sustained audit misses on one technique
// trip the Wilson-gated coverage sentinel; covered audits recover it.
func TestRegistryCoverageSentinel(t *testing.T) {
	var events []Event
	r := New(Config{Window: 64, MinAudits: 20, CoverageFloor: 0.85,
		OnEvent: func(ev Event) { events = append(events, ev) }})
	sql := "SELECT SUM(x) FROM t WHERE x > 5"
	h := r.Offer(sql, obs("online", 1))
	// All misses: after MinAudits the Wilson upper bound collapses far
	// below the floor.
	for i := 0; i < 30; i++ {
		r.ReportAudit(h, "online", false)
	}
	var trip *Event
	for i := range events {
		if events[i].Kind == EventRegression {
			trip = &events[i]
			break
		}
	}
	if trip == nil {
		t.Fatalf("coverage sentinel never tripped; events = %+v", events)
	}
	if trip.Signal != SignalCoverage || trip.Technique != "online" || trip.Fingerprint != h {
		t.Fatalf("trip = %+v", trip)
	}
	// A run of covered audits pushes the window back above the floor.
	for i := 0; i < 64; i++ {
		r.ReportAudit(h, "online", true)
	}
	recovered := false
	for _, ev := range events {
		if ev.Kind == EventRecovered && ev.Signal == SignalCoverage {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("coverage sentinel never recovered after covered audits")
	}
	// The tripped period is visible on the card.
	top := r.Top(1, ByTraffic)
	if len(top[0].Techniques) != 1 || top[0].Techniques[0].CoverageN == 0 {
		t.Fatalf("technique coverage missing: %+v", top[0].Techniques)
	}
}
