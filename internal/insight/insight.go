// Package insight is the workload-observability substrate: it
// fingerprints every served query by shape (literal-normalized
// canonical SQL plus query-column-set), keeps a bounded registry of
// per-fingerprint scorecards — rolling latency quantiles, rows scanned,
// realized CI relative width, audit coverage, contract verdicts, and
// degradation/extrapolation counts, broken down per technique — and
// runs regression sentinels that compare each fingerprint's current
// window against its own trailing baseline. The paper's "no silver
// bullet" claim is a claim about workloads, not queries: this registry
// is the per-shape evidence a workload-adaptive advisor needs to learn
// which technique wins where.
package insight

import (
	"sort"
	"sync"
	"time"

	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// Config tunes the registry. Zero values take the stated defaults.
type Config struct {
	// Cap bounds the number of fingerprints retained; the coldest
	// (least-recently-offered) is evicted when a new shape arrives at
	// capacity (default 256, minimum 1).
	Cap int
	// Window is the per-half sentinel window: each fingerprint retains
	// 2*Window latency and CI-width observations, the older half being
	// the trailing baseline and the newer half the current window
	// (default 64).
	Window int
	// LatencyFactor trips the latency sentinel when the current-window
	// p95 exceeds factor × baseline p95 (default 2).
	LatencyFactor float64
	// LatencyFloorMS is the absolute regression floor: current p95 must
	// also exceed baseline by this many milliseconds, so microsecond
	// noise on fast shapes never pages (default 1ms).
	LatencyFloorMS float64
	// WidthFactor and WidthFloor are the CI relative-width analogues
	// (defaults 2 and 0.005).
	WidthFactor float64
	WidthFloor  float64
	// CoverageFloor is the audited CI coverage below which the coverage
	// sentinel trips, judged by the Wilson upper bound so small samples
	// cannot page (default 0.85).
	CoverageFloor float64
	// MinAudits is the minimum audited count before the coverage
	// sentinel may trip (default 20).
	MinAudits int
	// Confidence is the Wilson confidence for the coverage gate
	// (default 0.95).
	Confidence float64
	// OnEvent, when non-nil, receives sentinel and eviction events. It
	// is called outside the registry lock; callbacks must not re-enter
	// the registry.
	OnEvent func(Event)
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Cap <= 0 {
		c.Cap = 256
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.LatencyFactor <= 1 {
		c.LatencyFactor = 2
	}
	if c.LatencyFloorMS <= 0 {
		c.LatencyFloorMS = 1
	}
	if c.WidthFactor <= 1 {
		c.WidthFactor = 2
	}
	if c.WidthFloor <= 0 {
		c.WidthFloor = 0.005
	}
	if c.CoverageFloor <= 0 || c.CoverageFloor >= 1 {
		c.CoverageFloor = 0.85
	}
	if c.MinAudits <= 0 {
		c.MinAudits = 20
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	return c
}

// Event kinds.
const (
	EventRegression = "regression"
	EventRecovered  = "recovered"
	EventEvicted    = "evicted"
)

// Sentinel signals.
const (
	SignalLatency  = "latency_p95"
	SignalCIWidth  = "ci_width_p95"
	SignalCoverage = "coverage"
)

// Event is one sentinel transition or eviction.
type Event struct {
	Kind        string  `json:"kind"`
	Signal      string  `json:"signal,omitempty"`
	Fingerprint string  `json:"fingerprint"`
	Template    string  `json:"template"`
	Technique   string  `json:"technique,omitempty"`
	Baseline    float64 `json:"baseline,omitempty"`
	Current     float64 `json:"current,omitempty"`
}

// Observation is one served (or failed) query's outcome, attributed to
// the shape it instantiates.
type Observation struct {
	Technique   string
	LatencyMS   float64
	RowsScanned int64
	// RelWidth is the realized maximum relative CI half-width;
	// meaningful only when Approximate.
	RelWidth    float64
	Approximate bool
	Degraded    bool
	// Extrapolated counts shard-loss extrapolation (answer scaled up
	// from surviving shards).
	Extrapolated    bool
	Partial         bool
	ContractVerdict string
	Err             bool
}

// Registry is the bounded per-fingerprint scorecard store. All methods
// are safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	cfg         Config
	cards       map[string]*card
	hot         []string // recency order, hottest first
	offered     uint64
	unparseable uint64
	evictions   uint64
	regressions uint64
}

// card is one fingerprint's live scorecard.
type card struct {
	fp        sqlparse.Fingerprint
	firstSeen time.Time
	lastSeen  time.Time

	queries      int64
	errors       int64
	rowsScanned  int64
	degraded     int64
	extrapolated int64
	partial      int64
	contract     map[string]int64

	lat   *sentinel
	width *sentinel

	techs map[string]*techCard

	regressions int64
	active      map[string]bool // currently-tripped signals
}

// techCard is the per-(fingerprint, technique) sub-scorecard — the unit
// a learning advisor compares techniques on.
type techCard struct {
	queries      int64
	rowsScanned  int64
	degraded     int64
	extrapolated int64
	contract     map[string]int64
	lat          *stats.RollingQuantiles
	width        *stats.RollingQuantiles
	cov          *stats.RollingCoverage
	covTripped   bool
}

// New builds a registry.
func New(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	return &Registry{
		cfg:   cfg,
		cards: make(map[string]*card, cfg.Cap),
	}
}

func (r *Registry) now() time.Time {
	if r.cfg.Now != nil {
		return r.cfg.Now()
	}
	return time.Now()
}

// Offer files one query outcome. The SQL is parsed and fingerprinted
// here; unparseable SQL is counted and dropped (fingerprinting is a
// pure observer — it must never fail a query). Returns the fingerprint
// hash, or "" when the SQL does not parse.
func (r *Registry) Offer(sql string, obs Observation) string {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		r.mu.Lock()
		r.unparseable++
		r.mu.Unlock()
		return ""
	}
	return r.ObserveStmt(stmt, obs)
}

// ObserveStmt files one outcome for an already-parsed statement.
func (r *Registry) ObserveStmt(stmt *sqlparse.SelectStmt, obs Observation) string {
	fp := stmt.Fingerprint()
	var events []Event

	r.mu.Lock()
	r.offered++
	c := r.touch(fp, &events)
	c.lastSeen = r.now()
	c.queries++
	if obs.Err {
		c.errors++
	}
	c.rowsScanned += obs.RowsScanned
	if obs.Degraded {
		c.degraded++
	}
	if obs.Extrapolated {
		c.extrapolated++
	}
	if obs.Partial {
		c.partial++
	}
	if obs.ContractVerdict != "" {
		c.contract[obs.ContractVerdict]++
	}
	if !obs.Err {
		r.pushSentinel(c, c.lat, SignalLatency, obs.LatencyMS, &events)
		if obs.Approximate {
			r.pushSentinel(c, c.width, SignalCIWidth, obs.RelWidth, &events)
		}
	}
	if obs.Technique != "" {
		t := c.tech(obs.Technique, r.cfg.Window)
		t.queries++
		t.rowsScanned += obs.RowsScanned
		if obs.Degraded {
			t.degraded++
		}
		if obs.Extrapolated {
			t.extrapolated++
		}
		if obs.ContractVerdict != "" {
			t.contract[obs.ContractVerdict]++
		}
		if !obs.Err {
			t.lat.Push(obs.LatencyMS)
			if obs.Approximate {
				t.width.Push(obs.RelWidth)
			}
		}
	}
	r.mu.Unlock()

	r.emit(events)
	return fp.Hash
}

// ReportAudit folds one auditor verdict — the claimed CI covered the
// exact ground truth, or missed it — into the (fingerprint, technique)
// coverage window, and evaluates the Wilson-gated coverage sentinel.
// Unknown fingerprints (evicted since the query was served, or from a
// build that predates stamping) are ignored.
func (r *Registry) ReportAudit(fingerprint, technique string, covered bool) {
	if fingerprint == "" || technique == "" {
		return
	}
	var events []Event

	r.mu.Lock()
	c, ok := r.cards[fingerprint]
	if !ok {
		r.mu.Unlock()
		return
	}
	t := c.tech(technique, r.cfg.Window)
	t.cov.Push(covered)
	iv := t.cov.Wilson(r.cfg.Confidence)
	low := t.cov.N() >= r.cfg.MinAudits && iv.Hi < r.cfg.CoverageFloor
	if low != t.covTripped {
		t.covTripped = low
		kind := EventRecovered
		if low {
			kind = EventRegression
			c.regressions++
			r.regressions++
		}
		c.active[SignalCoverage+":"+technique] = low
		events = append(events, Event{
			Kind: kind, Signal: SignalCoverage,
			Fingerprint: c.fp.Hash, Template: c.fp.Template,
			Technique: technique,
			Baseline:  r.cfg.CoverageFloor, Current: t.cov.Rate(),
		})
	}
	r.mu.Unlock()

	r.emit(events)
}

// touch returns the card for fp, creating (and possibly evicting) as
// needed, and moves it to the front of the recency order. Caller holds
// r.mu.
func (r *Registry) touch(fp sqlparse.Fingerprint, events *[]Event) *card {
	c, ok := r.cards[fp.Hash]
	if !ok {
		if len(r.cards) >= r.cfg.Cap {
			cold := r.hot[len(r.hot)-1]
			victim := r.cards[cold]
			delete(r.cards, cold)
			r.hot = r.hot[:len(r.hot)-1]
			r.evictions++
			*events = append(*events, Event{
				Kind:        EventEvicted,
				Fingerprint: victim.fp.Hash,
				Template:    victim.fp.Template,
			})
		}
		c = &card{
			fp:        fp,
			firstSeen: r.now(),
			contract:  make(map[string]int64),
			lat:       newSentinel(r.cfg.Window, r.cfg.LatencyFactor, r.cfg.LatencyFloorMS),
			width:     newSentinel(r.cfg.Window, r.cfg.WidthFactor, r.cfg.WidthFloor),
			techs:     make(map[string]*techCard),
			active:    make(map[string]bool),
		}
		r.cards[fp.Hash] = c
		r.hot = append([]string{fp.Hash}, r.hot...)
		return c
	}
	// Move to front. The scan is O(cap); caps are small (hundreds).
	for i, h := range r.hot {
		if h == fp.Hash {
			copy(r.hot[1:i+1], r.hot[:i])
			r.hot[0] = h
			break
		}
	}
	return c
}

// pushSentinel records v and translates any sentinel transition into an
// event. Caller holds r.mu.
func (r *Registry) pushSentinel(c *card, s *sentinel, signal string, v float64, events *[]Event) {
	fired, recovered := s.push(v)
	if fired {
		c.regressions++
		r.regressions++
		c.active[signal] = true
		*events = append(*events, Event{
			Kind: EventRegression, Signal: signal,
			Fingerprint: c.fp.Hash, Template: c.fp.Template,
			Baseline: s.baseline, Current: s.current,
		})
	}
	if recovered {
		c.active[signal] = false
		*events = append(*events, Event{
			Kind: EventRecovered, Signal: signal,
			Fingerprint: c.fp.Hash, Template: c.fp.Template,
			Baseline: s.baseline, Current: s.current,
		})
	}
}

func (c *card) tech(name string, window int) *techCard {
	t, ok := c.techs[name]
	if !ok {
		t = &techCard{
			contract: make(map[string]int64),
			lat:      stats.NewRollingQuantiles(window),
			width:    stats.NewRollingQuantiles(window),
			cov:      stats.NewRollingCoverage(window),
		}
		c.techs[name] = t
	}
	return t
}

func (r *Registry) emit(events []Event) {
	if r.cfg.OnEvent == nil {
		return
	}
	for _, ev := range events {
		r.cfg.OnEvent(ev)
	}
}

// Len returns the number of fingerprints currently tracked.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cards)
}

// Evictions returns the lifetime eviction count.
func (r *Registry) Evictions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

// Regressions returns the lifetime sentinel-trip count.
func (r *Registry) Regressions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.regressions
}

// TechSnapshot is one (fingerprint, technique) sub-scorecard.
type TechSnapshot struct {
	Technique    string  `json:"technique"`
	Queries      int64   `json:"queries"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	RelWidthP95  float64 `json:"rel_width_p95,omitempty"`
	RowsScanned  int64   `json:"rows_scanned"`
	Degraded     int64   `json:"degraded,omitempty"`
	Extrapolated int64   `json:"extrapolated,omitempty"`
	// Audited coverage over the rolling window, with its Wilson bounds.
	CoverageN    int              `json:"coverage_n,omitempty"`
	CoverageRate float64          `json:"coverage_rate,omitempty"`
	CoverageLo   float64          `json:"coverage_lo,omitempty"`
	CoverageHi   float64          `json:"coverage_hi,omitempty"`
	Contract     map[string]int64 `json:"contract,omitempty"`
}

// CardSnapshot is one fingerprint's scorecard at a point in time.
type CardSnapshot struct {
	Fingerprint string    `json:"fingerprint"`
	Template    string    `json:"template"`
	Table       string    `json:"table"`
	QCS         []string  `json:"qcs,omitempty"`
	FirstSeen   time.Time `json:"first_seen"`
	LastSeen    time.Time `json:"last_seen"`

	Queries      int64            `json:"queries"`
	Errors       int64            `json:"errors,omitempty"`
	RowsScanned  int64            `json:"rows_scanned"`
	Degraded     int64            `json:"degraded,omitempty"`
	Extrapolated int64            `json:"extrapolated,omitempty"`
	Partial      int64            `json:"partial,omitempty"`
	Contract     map[string]int64 `json:"contract,omitempty"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	// BaselineLatencyP95MS is the trailing-baseline half's p95 — what
	// the latency sentinel compares the current half against (0 until
	// the sentinel window fills).
	BaselineLatencyP95MS float64 `json:"baseline_latency_p95_ms,omitempty"`
	RelWidthP95          float64 `json:"rel_width_p95,omitempty"`

	Regressions int64    `json:"regressions,omitempty"`
	Active      []string `json:"active_regressions,omitempty"`

	Techniques []TechSnapshot `json:"techniques,omitempty"`
}

// Summary is the registry-level report around a Top listing.
type Summary struct {
	Fingerprints int    `json:"fingerprints"`
	Cap          int    `json:"cap"`
	Offered      uint64 `json:"offered"`
	Unparseable  uint64 `json:"unparseable,omitempty"`
	Evictions    uint64 `json:"evictions,omitempty"`
	Regressions  uint64 `json:"regressions,omitempty"`
}

// Summary returns the registry-level counters.
func (r *Registry) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Summary{
		Fingerprints: len(r.cards),
		Cap:          r.cfg.Cap,
		Offered:      r.offered,
		Unparseable:  r.unparseable,
		Evictions:    r.evictions,
		Regressions:  r.regressions,
	}
}

// Top orders. "traffic" (query count), "latency" (current p95), and
// "regressions" (sentinel trips) are accepted; anything else falls back
// to traffic.
const (
	ByTraffic     = "traffic"
	ByLatency     = "latency"
	ByRegressions = "regressions"
)

// Top returns the n highest-ranked scorecards under the given order.
// n <= 0 returns all.
func (r *Registry) Top(n int, by string) []CardSnapshot {
	r.mu.Lock()
	out := make([]CardSnapshot, 0, len(r.cards))
	for _, c := range r.cards {
		out = append(out, c.snapshot())
	}
	r.mu.Unlock()

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch by {
		case ByLatency:
			if a.LatencyP95MS != b.LatencyP95MS {
				return a.LatencyP95MS > b.LatencyP95MS
			}
		case ByRegressions:
			if a.Regressions != b.Regressions {
				return a.Regressions > b.Regressions
			}
		}
		if a.Queries != b.Queries {
			return a.Queries > b.Queries
		}
		// Full tie: deterministic order by fingerprint.
		return a.Fingerprint < b.Fingerprint
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// snapshot copies the card's state. Caller holds the registry lock.
func (c *card) snapshot() CardSnapshot {
	cs := CardSnapshot{
		Fingerprint:  c.fp.Hash,
		Template:     c.fp.Template,
		Table:        c.fp.Table,
		QCS:          append([]string(nil), c.fp.QCS...),
		FirstSeen:    c.firstSeen,
		LastSeen:     c.lastSeen,
		Queries:      c.queries,
		Errors:       c.errors,
		RowsScanned:  c.rowsScanned,
		Degraded:     c.degraded,
		Extrapolated: c.extrapolated,
		Partial:      c.partial,
		Contract:     copyCounts(c.contract),
		LatencyP50MS: c.lat.quantileAll(0.50),
		LatencyP95MS: c.lat.quantileCurrent(0.95),
		RelWidthP95:  c.width.quantileCurrent(0.95),
		Regressions:  c.regressions,
	}
	if c.lat.full() {
		cs.BaselineLatencyP95MS = c.lat.quantileBaseline(0.95)
	}
	for sig, on := range c.active {
		if on {
			cs.Active = append(cs.Active, sig)
		}
	}
	sort.Strings(cs.Active)
	names := make([]string, 0, len(c.techs))
	for name := range c.techs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.techs[name]
		ts := TechSnapshot{
			Technique:    name,
			Queries:      t.queries,
			LatencyP50MS: t.lat.Quantile(0.50),
			LatencyP95MS: t.lat.Quantile(0.95),
			RelWidthP95:  t.width.Quantile(0.95),
			RowsScanned:  t.rowsScanned,
			Degraded:     t.degraded,
			Extrapolated: t.extrapolated,
			Contract:     copyCounts(t.contract),
		}
		if n := t.cov.N(); n > 0 {
			iv := t.cov.Wilson(0.95)
			ts.CoverageN = n
			ts.CoverageRate = t.cov.Rate()
			ts.CoverageLo = iv.Lo
			ts.CoverageHi = iv.Hi
		}
		cs.Techniques = append(cs.Techniques, ts)
	}
	return cs
}

func copyCounts(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
