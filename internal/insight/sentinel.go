package insight

import (
	"math"
	"sort"
)

// sentinel detects per-fingerprint regressions by comparing the newest
// window of a statistic against the fingerprint's own trailing
// baseline: a ring of 2W observations whose chronologically older half
// is the baseline and newer half the current window. Both halves slide
// together, so the baseline always trails the current window by exactly
// W observations — a shape that regressed and stayed regressed
// eventually becomes its own (new) baseline, which is the desired
// "alert on change, not on level" semantics. Not safe for concurrent
// use; the registry serializes access.
type sentinel struct {
	buf  []float64 // capacity 2W, chronological ring
	next int
	n    int

	factor float64 // current p95 must exceed factor × baseline p95 ...
	floor  float64 // ... and baseline + floor (absolute noise gate)

	tripped  bool
	baseline float64 // last evaluated baseline p95
	current  float64 // last evaluated current p95
}

func newSentinel(window int, factor, floor float64) *sentinel {
	if window < 1 {
		window = 1
	}
	return &sentinel{buf: make([]float64, 2*window), factor: factor, floor: floor}
}

func (s *sentinel) full() bool { return s.n == len(s.buf) }

// push records one observation and re-evaluates once the ring is full.
// It returns edge-triggered transitions: fired on the regression edge,
// recovered on the way back.
func (s *sentinel) push(v float64) (fired, recovered bool) {
	s.buf[s.next] = v
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	if !s.full() {
		return false, false
	}
	w := len(s.buf) / 2
	// Chronological order starts at next once the ring is full.
	older := make([]float64, 0, w)
	newer := make([]float64, 0, w)
	for i := 0; i < len(s.buf); i++ {
		x := s.buf[(s.next+i)%len(s.buf)]
		if i < w {
			older = append(older, x)
		} else {
			newer = append(newer, x)
		}
	}
	s.baseline = quantile(older, 0.95)
	s.current = quantile(newer, 0.95)
	bad := s.current > s.factor*s.baseline && s.current > s.baseline+s.floor
	switch {
	case bad && !s.tripped:
		s.tripped = true
		return true, false
	case !bad && s.tripped:
		s.tripped = false
		return false, true
	}
	return false, false
}

// quantileAll is the display quantile over every retained observation.
func (s *sentinel) quantileAll(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	vals := make([]float64, s.n)
	copy(vals, s.buf[:s.n])
	return quantile(vals, q)
}

// quantileCurrent is the display quantile over the newest half (or over
// everything while the ring is still filling).
func (s *sentinel) quantileCurrent(q float64) float64 {
	if !s.full() {
		return s.quantileAll(q)
	}
	w := len(s.buf) / 2
	newer := make([]float64, 0, w)
	for i := w; i < len(s.buf); i++ {
		newer = append(newer, s.buf[(s.next+i)%len(s.buf)])
	}
	return quantile(newer, q)
}

// quantileBaseline is the trailing-baseline half's quantile (0 while
// filling).
func (s *sentinel) quantileBaseline(q float64) float64 {
	if !s.full() {
		return 0
	}
	w := len(s.buf) / 2
	older := make([]float64, 0, w)
	for i := 0; i < w; i++ {
		older = append(older, s.buf[(s.next+i)%len(s.buf)])
	}
	return quantile(older, q)
}

// quantile is the nearest-rank quantile of vals; vals is sorted in
// place.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return vals[idx]
}
