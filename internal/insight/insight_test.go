package insight

import (
	"fmt"
	"sync"
	"testing"
)

func obs(tech string, lat float64) Observation {
	return Observation{Technique: tech, LatencyMS: lat, RowsScanned: 100}
}

// TestOfferFingerprintsAndCounts: literal variants collapse onto one
// scorecard; distinct shapes get their own.
func TestOfferFingerprintsAndCounts(t *testing.T) {
	r := New(Config{})
	h1 := r.Offer("SELECT SUM(x) FROM t WHERE x > 5", obs("online", 1))
	h2 := r.Offer("SELECT SUM(x) FROM t WHERE x > 900", obs("online", 2))
	h3 := r.Offer("SELECT AVG(x) FROM t WHERE x > 5", obs("exact", 3))
	if h1 == "" || h1 != h2 {
		t.Fatalf("literal variants got different fingerprints: %q vs %q", h1, h2)
	}
	if h3 == h1 {
		t.Fatalf("distinct shapes share fingerprint %q", h1)
	}
	if n := r.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	top := r.Top(10, ByTraffic)
	if len(top) != 2 {
		t.Fatalf("Top returned %d cards", len(top))
	}
	if top[0].Fingerprint != h1 || top[0].Queries != 2 {
		t.Fatalf("top card = %+v, want fingerprint %s with 2 queries", top[0], h1)
	}
	if len(top[0].Techniques) != 1 || top[0].Techniques[0].Technique != "online" {
		t.Fatalf("technique mix = %+v", top[0].Techniques)
	}
}

// TestOfferUnparseableIsTotal: garbage SQL is counted, not fatal.
func TestOfferUnparseableIsTotal(t *testing.T) {
	r := New(Config{})
	if h := r.Offer("DELETE FROM t", obs("exact", 1)); h != "" {
		t.Fatalf("unparseable SQL produced fingerprint %q", h)
	}
	if s := r.Summary(); s.Unparseable != 1 || s.Fingerprints != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestEvictionLRU: at cap, the coldest fingerprint is evicted; hot ones
// survive.
func TestEvictionLRU(t *testing.T) {
	var mu sync.Mutex
	var evicted []string
	r := New(Config{Cap: 3, OnEvent: func(ev Event) {
		if ev.Kind == EventEvicted {
			mu.Lock()
			evicted = append(evicted, ev.Fingerprint)
			mu.Unlock()
		}
	}})
	sqlFor := func(i int) string { return fmt.Sprintf("SELECT SUM(c%d) FROM t", i) }
	h0 := r.Offer(sqlFor(0), obs("exact", 1))
	h1 := r.Offer(sqlFor(1), obs("exact", 1))
	h2 := r.Offer(sqlFor(2), obs("exact", 1))
	// Re-touch 0 so 1 is now coldest.
	r.Offer(sqlFor(0), obs("exact", 1))
	h3 := r.Offer(sqlFor(3), obs("exact", 1)) // evicts 1
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if len(evicted) != 1 || evicted[0] != h1 {
		t.Fatalf("evicted %v, want [%s]", evicted, h1)
	}
	if r.Evictions() != 1 {
		t.Fatalf("Evictions = %d", r.Evictions())
	}
	kept := map[string]bool{}
	for _, c := range r.Top(0, ByTraffic) {
		kept[c.Fingerprint] = true
	}
	for _, want := range []string{h0, h2, h3} {
		if !kept[want] {
			t.Fatalf("hot fingerprint %s evicted; kept %v", want, kept)
		}
	}
}

// TestEvictionUnderCapPressureConcurrent hammers a tiny registry from
// concurrent Offer and ReportAudit callers (run with -race): the cap
// must hold and the counters must stay consistent — every offer
// accounted for, live cards plus evictions balancing admissions.
// (Deterministic hot-survival is TestEvictionLRU; under concurrent
// churn a true LRU can in principle rotate any key out.)
func TestEvictionUnderCapPressureConcurrent(t *testing.T) {
	r := New(Config{Cap: 4, Window: 8})
	hot := "SELECT COUNT(*) FROM t WHERE x > 1"
	hotHash := r.Offer(hot, obs("online", 1))

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Every worker keeps the hot shape warm while churning its
				// own cold shapes through the cap.
				r.Offer(hot, obs("online", float64(i%7)))
				r.Offer(fmt.Sprintf("SELECT SUM(c%d_%d) FROM t", w, i%6), obs("exact", 1))
				r.ReportAudit(hotHash, "online", i%5 != 0)
			}
		}(w)
	}
	wg.Wait()

	if n := r.Len(); n > 4 {
		t.Fatalf("Len = %d exceeds cap 4", n)
	}
	s := r.Summary()
	wantOffered := uint64(2*workers*perWorker + 1)
	if s.Offered != wantOffered {
		t.Fatalf("offered = %d, want %d", s.Offered, wantOffered)
	}
	// 49 distinct shapes churned through a cap-4 registry: evictions must
	// have happened, and the books must balance — admissions (live +
	// evicted) cover at least every distinct shape and never exceed the
	// offer count.
	if s.Evictions == 0 {
		t.Fatal("no evictions under cap pressure")
	}
	admissions := uint64(s.Fingerprints) + s.Evictions
	if distinct := uint64(1 + workers*6); admissions < distinct {
		t.Fatalf("admissions %d < distinct shapes %d", admissions, distinct)
	}
	if admissions > s.Offered {
		t.Fatalf("admissions %d exceed offers %d", admissions, s.Offered)
	}

	// Deterministic post-phase: re-warm the hot shape and audit it
	// serially; the bounded coverage window must hold exactly Window
	// outcomes.
	if got := r.Offer(hot, obs("online", 1)); got != hotHash {
		t.Fatalf("hot fingerprint changed: %s vs %s", got, hotHash)
	}
	for i := 0; i < 12; i++ {
		r.ReportAudit(hotHash, "online", true)
	}
	for _, c := range r.Top(0, ByTraffic) {
		if c.Fingerprint != hotHash {
			continue
		}
		for _, ts := range c.Techniques {
			if ts.Technique == "online" {
				if ts.CoverageN != 8 {
					t.Fatalf("coverage window N = %d, want 8 (bounded)", ts.CoverageN)
				}
				return
			}
		}
		t.Fatal("hot card has no online technique sub-scorecard")
	}
	t.Fatal("hot card missing after re-warm")
}

// TestReportAuditUnknownFingerprint: audits for evicted or never-seen
// fingerprints are ignored without creating cards.
func TestReportAuditUnknownFingerprint(t *testing.T) {
	r := New(Config{})
	r.ReportAudit("deadbeefdeadbeef", "online", true)
	r.ReportAudit("", "online", true)
	if r.Len() != 0 {
		t.Fatalf("ReportAudit created %d cards", r.Len())
	}
}

// TestTopOrders: the three rankings order as documented.
func TestTopOrders(t *testing.T) {
	r := New(Config{Window: 2})
	// Shape A: high traffic, fast.
	for i := 0; i < 10; i++ {
		r.Offer("SELECT COUNT(*) FROM t", obs("exact", 1))
	}
	// Shape B: low traffic, slow.
	for i := 0; i < 3; i++ {
		r.Offer("SELECT SUM(x) FROM t WHERE x > 1", obs("online", 500))
	}
	byTraffic := r.Top(0, ByTraffic)
	if byTraffic[0].Queries != 10 {
		t.Fatalf("traffic order wrong: %+v", byTraffic[0])
	}
	byLat := r.Top(0, ByLatency)
	if byLat[0].LatencyP95MS != 500 {
		t.Fatalf("latency order wrong: %+v", byLat[0])
	}
}

// TestErrorsCounted: failed queries count toward the shape without
// polluting its latency window.
func TestErrorsCounted(t *testing.T) {
	r := New(Config{})
	sql := "SELECT SUM(x) FROM t WHERE x > 2"
	r.Offer(sql, obs("online", 5))
	r.Offer(sql, Observation{Err: true, LatencyMS: 10000})
	top := r.Top(1, ByTraffic)
	if top[0].Queries != 2 || top[0].Errors != 1 {
		t.Fatalf("card = %+v", top[0])
	}
	if top[0].LatencyP95MS > 100 {
		t.Fatalf("error latency leaked into the quantile window: %+v", top[0])
	}
}
