// Package trace is an allocation-light span recorder for per-query
// execution profiles. A Tracer owns a tree of Spans (name, accumulated
// duration, rows in/out, string attrs); the current span travels through
// the stack via context.Context.
//
// The package is built around one invariant: when no Tracer is installed
// on the context, every entry point is a no-op that allocates nothing.
// StartSpan returns a nil *Span on a tracer-less context, and every Span
// method is nil-safe, so call sites never need their own "is tracing on"
// branch on the hot path — though loops that would call time.Now per row
// should still guard on `sp != nil`.
//
// Spans record observations only; they must never influence execution
// (morsel sizing, claim order, merge order), so that a traced run is
// bit-identical to an untraced one.
package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer is the root of one query's span tree. Every tracer owns a
// 128-bit trace ID; every span it creates gets a 64-bit span ID derived
// from the trace ID and a counter (splitmix64), so span-ID assignment
// costs no syscalls and no locks beyond the counter.
type Tracer struct {
	root    *Span
	traceID TraceID
	idSeed  uint64
	idCtr   atomic.Uint64
}

// New creates a Tracer with a fresh random trace ID whose root span has
// the given name. The root span starts immediately; call Finish (or
// root.End) before rendering.
func New(name string) *Tracer {
	return NewWithParent(name, NewTraceID(), SpanID{})
}

// NewWithParent creates a Tracer that continues an existing trace: the
// root span joins trace tid as a child of remote span parent (zero
// parent = this tracer starts the trace). Used when a query arrives with
// a W3C traceparent header.
func NewWithParent(name string, tid TraceID, parent SpanID) *Tracer {
	if tid.IsZero() {
		tid = NewTraceID()
	}
	t := &Tracer{
		traceID: tid,
		idSeed:  binary.BigEndian.Uint64(tid[8:]),
	}
	t.root = &Span{name: name, start: time.Now(), timed: true, tr: t, parentID: parent}
	t.root.spanID = t.nextSpanID()
	return t
}

// TraceID returns the tracer's trace identifier.
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

func (t *Tracer) nextSpanID() SpanID {
	x := splitmix64(t.idSeed + t.idCtr.Add(1))
	if x == 0 {
		x = 1
	}
	var id SpanID
	binary.BigEndian.PutUint64(id[:], x)
	return id
}

// Root returns the root span.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span. Idempotent.
func (t *Tracer) Finish() {
	if t != nil {
		t.root.End()
	}
}

// Profile snapshots the span tree into an exportable form. The root is
// ended first if still running.
func (t *Tracer) Profile() *Profile {
	if t == nil {
		return nil
	}
	t.root.End()
	return t.root.profile()
}

// ctxKey carries the *current* span (not the tracer): children attach to
// whatever span is on the context.
type ctxKey struct{}

func withSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// WithTracer installs t's root span as the current span on ctx.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return withSpan(ctx, t.root)
}

// ContextWithSpan installs sp as the current span on ctx (no-op for a
// nil span). Fan-out paths that pre-create per-leg spans — the scatter
// executor — use this so each leg's context carries its own span, and a
// remote call made under it propagates the leg's traceparent, not the
// parent's.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return withSpan(ctx, sp)
}

// Propagate copies src's current span onto dst, so work continuing
// under a fresh context (a degradation-ladder rung with its own budget)
// keeps appending to the same trace. No-op when src carries no span.
func Propagate(dst, src context.Context) context.Context {
	if sp := SpanFromContext(src); sp != nil {
		return withSpan(dst, sp)
	}
	return dst
}

// SpanFromContext returns the current span, or nil when tracing is off.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Enabled reports whether a span is installed on ctx.
func Enabled(ctx context.Context) bool { return SpanFromContext(ctx) != nil }

// StartSpan opens a timed child of the current span and returns it along
// with a context carrying it. When tracing is disabled it returns
// (nil, ctx) without allocating.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	sp := parent.newChild(name)
	sp.start = time.Now()
	sp.timed = true
	return sp, withSpan(ctx, sp)
}

// StartOp opens an *accumulating* child of the current span: it has no
// start time, and its duration is whatever the caller adds via AddTime.
// Operators use this so their reported time is busy time inside
// Open/Next/Close, not wall time from build to close.
func StartOp(ctx context.Context, name string) (*Span, context.Context) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	sp := parent.newChild(name)
	return sp, withSpan(ctx, sp)
}

// Span is one node in the profile tree. All methods are safe on a nil
// receiver (no-ops), and safe for concurrent use: morsel workers append
// to their own pre-created spans while the parent holds others.
type Span struct {
	name  string
	start time.Time
	timed bool // duration = end-start; otherwise accumulated via AddTime

	tr       *Tracer // owning tracer (trace ID, span-ID allocator)
	spanID   SpanID
	parentID SpanID

	mu       sync.Mutex
	done     bool
	dur      time.Duration
	rowsIn   int64
	rowsInOK bool
	rowsOut  int64
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span. A slice (not a map) keeps
// rendering order deterministic: insertion order.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// End stops a timed span's clock. Idempotent; no-op for accumulating
// spans and nil spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done && s.timed {
		s.dur = time.Since(s.start)
	}
	s.done = true
	s.mu.Unlock()
}

// AddTime adds d to the span's accumulated duration.
func (s *Span) AddTime(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur += d
	s.mu.Unlock()
}

// AddRows adds n to the span's rows-out counter.
func (s *Span) AddRows(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rowsOut += n
	s.mu.Unlock()
}

// SetRowsIn records the span's input cardinality explicitly. Without it,
// rows-in is inferred at snapshot time as the sum of child rows-out.
func (s *Span) SetRowsIn(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rowsIn = n
	s.rowsInOK = true
	s.mu.Unlock()
}

// SetAttr records (or overwrites) a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// SetAttrFloat records a float attribute with compact formatting.
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%g", v))
}

// NewChild attaches an accumulating child span and returns it. Use for
// spans whose time is added explicitly (workers, merge phases).
func (s *Span) NewChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.newChild(name)
}

// StartChild attaches a timed child span (clock running) and returns it.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	sp := s.newChild(name)
	sp.start = time.Now()
	sp.timed = true
	return sp
}

func (s *Span) newChild(name string) *Span {
	// start is recorded on every child for span export; only timed
	// spans use it for duration.
	sp := &Span{name: name, start: time.Now(), tr: s.tr, parentID: s.spanID}
	if s.tr != nil {
		sp.spanID = s.tr.nextSpanID()
	}
	s.mu.Lock()
	s.children = append(s.children, sp)
	s.mu.Unlock()
	return sp
}

// TraceID returns the owning tracer's trace ID (zero for nil spans or
// spans created outside a tracer).
func (s *Span) TraceID() TraceID {
	if s == nil || s.tr == nil {
		return TraceID{}
	}
	return s.tr.traceID
}

// SpanID returns the span's identifier (zero for nil spans).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// Traceparent renders the W3C traceparent header that would propagate
// this span's context to a downstream service ("" when untraced). This
// is the exact string a remote-shard RPC will carry.
func (s *Span) Traceparent() string {
	if s == nil || s.tr == nil || s.tr.traceID.IsZero() {
		return ""
	}
	return FormatTraceparent(s.tr.traceID, s.spanID)
}

// Snapshot exports the subtree rooted at s without ending it (nil-safe).
// Timed spans that are still running report zero duration.
func (s *Span) Snapshot() *Profile {
	if s == nil {
		return nil
	}
	return s.profile()
}

// Profile is the exportable snapshot of a span tree, JSON-encodable and
// pretty-printable.
type Profile struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	// TraceID/SpanID/ParentSpanID are lowercase hex (W3C widths: 32, 16,
	// 16 chars); empty when the span tree was built without a tracer.
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// StartUnixNano anchors the span on the wall clock for export;
	// 0 for pre-identity snapshots.
	StartUnixNano int64      `json:"start_unix_nano,omitempty"`
	RowsIn        int64      `json:"rows_in,omitempty"`
	RowsOut       int64      `json:"rows_out,omitempty"`
	Attrs         []Attr     `json:"attrs,omitempty"`
	Children      []*Profile `json:"children,omitempty"`
}

func (s *Span) profile() *Profile {
	s.mu.Lock()
	p := &Profile{
		Name:       s.name,
		DurationMS: float64(s.dur) / float64(time.Millisecond),
		RowsOut:    s.rowsOut,
	}
	if s.tr != nil && !s.tr.traceID.IsZero() {
		p.TraceID = s.tr.traceID.String()
		p.SpanID = s.spanID.String()
		if !s.parentID.IsZero() {
			p.ParentSpanID = s.parentID.String()
		}
	}
	if !s.start.IsZero() {
		p.StartUnixNano = s.start.UnixNano()
	}
	p.Attrs = append(p.Attrs, s.attrs...)
	children := append([]*Span(nil), s.children...)
	rowsIn, rowsInOK := s.rowsIn, s.rowsInOK
	s.mu.Unlock()

	var childOut int64
	for _, c := range children {
		cp := c.profile()
		p.Children = append(p.Children, cp)
		childOut += cp.RowsOut
	}
	if rowsInOK {
		p.RowsIn = rowsIn
	} else if len(children) > 0 {
		p.RowsIn = childOut
	}
	return p
}

// Attr returns the value of the named attribute ("" if absent).
func (p *Profile) Attr(key string) string {
	for _, a := range p.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Find returns the first profile node (depth-first, p included) whose
// name contains substr, or nil.
func (p *Profile) Find(substr string) *Profile {
	if p == nil {
		return nil
	}
	if strings.Contains(p.Name, substr) {
		return p
	}
	for _, c := range p.Children {
		if hit := c.Find(substr); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every node (depth-first) whose name contains substr.
func (p *Profile) FindAll(substr string) []*Profile {
	if p == nil {
		return nil
	}
	var out []*Profile
	if strings.Contains(p.Name, substr) {
		out = append(out, p)
	}
	for _, c := range p.Children {
		out = append(out, c.FindAll(substr)...)
	}
	return out
}

// String renders the profile as an indented tree, one node per line,
// with durations right-aligned to the widest label and per-span
// throughput (rows-out per second of span time):
//
//	query                                12.40ms
//	├─ engine exact                      12.30ms
//	│  └─ HashAggregate(...)             11.90ms  in=500000 out=1  84 rows/s  workers=4
func (p *Profile) String() string {
	width := p.labelWidth("")
	if width < 24 {
		width = 24
	}
	var sb strings.Builder
	p.render(&sb, "", "", width)
	return sb.String()
}

// Lines returns the rendered tree split into lines (no trailing blank).
func (p *Profile) Lines() []string {
	return strings.Split(strings.TrimRight(p.String(), "\n"), "\n")
}

// labelWidth returns the widest rendered label (branch glyphs + name, in
// runes) in the subtree, so durations can right-align as a column.
func (p *Profile) labelWidth(indent string) int {
	w := len([]rune(indent)) + len([]rune(p.Name))
	for _, c := range p.Children {
		// Children render under indent plus a 3-rune branch glyph.
		if cw := c.labelWidth(indent + "   "); cw > w {
			w = cw
		}
	}
	return w
}

// formatRate renders a rows/s throughput compactly: 850/s, 12.4k/s,
// 3.1M/s.
func formatRate(rowsPerSec float64) string {
	switch {
	case rowsPerSec >= 1e6:
		return fmt.Sprintf("%.1fM rows/s", rowsPerSec/1e6)
	case rowsPerSec >= 1e3:
		return fmt.Sprintf("%.1fk rows/s", rowsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f rows/s", rowsPerSec)
	}
}

func (p *Profile) render(sb *strings.Builder, branch, indent string, width int) {
	label := branch + p.Name
	pad := width - len([]rune(label))
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(sb, "%s%s %9.2fms", label, strings.Repeat(" ", pad), p.DurationMS)
	if p.RowsIn > 0 || p.RowsOut > 0 {
		fmt.Fprintf(sb, "  in=%d out=%d", p.RowsIn, p.RowsOut)
	}
	if p.RowsOut > 0 && p.DurationMS > 0 {
		fmt.Fprintf(sb, "  %s", formatRate(float64(p.RowsOut)/(p.DurationMS/1e3)))
	}
	for _, a := range p.Attrs {
		fmt.Fprintf(sb, "  %s=%s", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	for i, c := range p.Children {
		last := i == len(p.Children)-1
		cb, ci := "├─ ", "│  "
		if last {
			cb, ci = "└─ ", "   "
		}
		c.render(sb, indent+cb, indent+ci, width)
	}
}

// SortChildrenByName orders each node's children lexically. Useful for
// stable assertions in tests where concurrent attachment order varies.
// (Worker spans are pre-created in index order, so normal profiles are
// already deterministic; this exists for defensive test hygiene.)
func (p *Profile) SortChildrenByName() {
	sort.SliceStable(p.Children, func(i, j int) bool { return p.Children[i].Name < p.Children[j].Name })
	for _, c := range p.Children {
		c.SortChildrenByName()
	}
}
