package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"time"
)

// TraceID is a W3C trace-context 128-bit trace identifier.
type TraceID [16]byte

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is a W3C trace-context 64-bit span identifier.
type SpanID [8]byte

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// NewTraceID returns a random, non-zero trace ID. crypto/rand failure
// (never seen in practice) falls back to a time-derived value rather
// than panicking inside query handling.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil || t.IsZero() {
		now := uint64(time.Now().UnixNano())
		binary.BigEndian.PutUint64(t[:8], splitmix64(now))
		binary.BigEndian.PutUint64(t[8:], splitmix64(now+1))
	}
	return t
}

// splitmix64 is the finalizer-style mixer used elsewhere in this repo
// for deterministic fault sampling; here it stretches one random seed
// into a stream of span IDs without per-span syscalls.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FormatTraceparent renders the W3C traceparent header (version 00,
// sampled flag set): 00-<32 hex trace id>-<16 hex span id>-01.
func FormatTraceparent(tid TraceID, sid SpanID) string {
	return "00-" + tid.String() + "-" + sid.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header. It accepts any
// known-layout version (two hex chars other than "ff") and rejects
// malformed lengths, non-hex fields, and all-zero IDs, per the spec.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	if len(h) < 55 {
		return tid, sid, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false
	}
	ver := h[:2]
	if !isHex(ver) || ver == "ff" {
		return tid, sid, false
	}
	// Version 00 is exactly 55 chars; later versions may append fields
	// after another dash.
	if len(h) > 55 && (ver == "00" || h[55] != '-') {
		return tid, sid, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return tid, sid, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return tid, sid, false
	}
	if !isHex(h[53:55]) || tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}
