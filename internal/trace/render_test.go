package trace

import (
	"strings"
	"testing"
)

// TestRenderGolden pins the exact tree rendering so formatting drift is
// caught: right-aligned duration column sized to the widest label, rows
// in/out, rows/s throughput, then attrs.
func TestRenderGolden(t *testing.T) {
	p := &Profile{
		Name:       "query",
		DurationMS: 12.4,
		Children: []*Profile{
			{
				Name:       "engine exact",
				DurationMS: 12.3,
				RowsIn:     500000,
				RowsOut:    1,
				Children: []*Profile{
					{
						Name:       "HashAggregate",
						DurationMS: 10,
						RowsIn:     500000,
						RowsOut:    1,
						Attrs:      []Attr{{Key: "workers", Value: "4"}},
					},
					{
						Name:       "scan t",
						DurationMS: 2,
						RowsOut:    500000,
					},
				},
			},
			{Name: "encode", DurationMS: 0.1},
		},
	}
	got := p.String()
	want := strings.Join([]string{
		"query                        12.40ms",
		"├─ engine exact              12.30ms  in=500000 out=1  81 rows/s",
		"│  ├─ HashAggregate          10.00ms  in=500000 out=1  100 rows/s  workers=4",
		"│  └─ scan t                  2.00ms  in=0 out=500000  250.0M rows/s",
		"└─ encode                     0.10ms",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("rendering drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRenderWideLabels verifies the duration column moves right as a
// unit when a deep label exceeds the minimum width.
func TestRenderWideLabels(t *testing.T) {
	p := &Profile{
		Name:       "q",
		DurationMS: 1,
		Children: []*Profile{{
			Name:       strings.Repeat("x", 40),
			DurationMS: 1,
		}},
	}
	lines := p.Lines()
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Both lines' duration fields must end at the same visual column
	// (rune count — the branch glyphs are multi-byte).
	col := func(line string) int { return len([]rune(line[:strings.Index(line, "ms")])) }
	i0 := col(lines[0])
	i1 := col(lines[1])
	if i0 != i1 {
		t.Fatalf("duration column misaligned: %d vs %d\n%s\n%s", i0, i1, lines[0], lines[1])
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{850, "850 rows/s"},
		{12400, "12.4k rows/s"},
		{3.1e6, "3.1M rows/s"},
	}
	for _, c := range cases {
		if got := formatRate(c.in); got != c.want {
			t.Errorf("formatRate(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
