package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestDisabledPathAllocatesZero is the load-bearing property: with no
// tracer on the context, the full span API must not allocate, so the
// executor can call it unconditionally.
func TestDisabledPathAllocatesZero(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp, ctx2 := StartSpan(ctx, "op")
		sp.SetAttr("k", "v")
		sp.AddRows(10)
		sp.AddTime(time.Millisecond)
		sp.SetRowsIn(5)
		child := sp.NewChild("w")
		child.End()
		sp.End()
		op, _ := StartOp(ctx2, "op2")
		op.End()
		if Enabled(ctx2) {
			t.Fatal("tracing unexpectedly enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocated %v times per run, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var sp *Span
	sp.End()
	sp.AddTime(time.Second)
	sp.AddRows(1)
	sp.SetRowsIn(1)
	sp.SetAttr("a", "b")
	sp.SetAttrInt("a", 1)
	sp.SetAttrFloat("a", 0.5)
	if c := sp.NewChild("x"); c != nil {
		t.Fatal("NewChild on nil span should return nil")
	}
	if c := sp.StartChild("x"); c != nil {
		t.Fatal("StartChild on nil span should return nil")
	}
	var tr *Tracer
	tr.Finish()
	if tr.Profile() != nil {
		t.Fatal("nil tracer Profile should be nil")
	}
	if tr.Root() != nil {
		t.Fatal("nil tracer Root should be nil")
	}
}

func TestSpanTreeAndProfile(t *testing.T) {
	tr := New("query")
	ctx := WithTracer(context.Background(), tr)
	if !Enabled(ctx) {
		t.Fatal("tracing should be enabled")
	}

	eng, ectx := StartSpan(ctx, "engine exact")
	op, _ := StartOp(ectx, "HashAggregate")
	op.AddTime(3 * time.Millisecond)
	op.AddRows(2)
	op.SetRowsIn(100)
	op.SetAttr("workers", "4")
	w0 := op.NewChild("worker 0")
	w0.AddTime(time.Millisecond)
	w0.SetAttrInt("morsels", 7)
	eng.End()
	tr.Finish()

	p := tr.Profile()
	if p.Name != "query" {
		t.Fatalf("root name = %q", p.Name)
	}
	agg := p.Find("HashAggregate")
	if agg == nil {
		t.Fatal("HashAggregate span missing from profile")
	}
	if agg.RowsIn != 100 || agg.RowsOut != 2 {
		t.Fatalf("agg rows in/out = %d/%d, want 100/2", agg.RowsIn, agg.RowsOut)
	}
	if agg.DurationMS < 3 {
		t.Fatalf("agg duration %vms, want >= 3ms", agg.DurationMS)
	}
	if agg.Attr("workers") != "4" {
		t.Fatalf("workers attr = %q", agg.Attr("workers"))
	}
	worker := p.Find("worker 0")
	if worker == nil || worker.Attr("morsels") != "7" {
		t.Fatalf("worker span missing or wrong: %+v", worker)
	}
	if got := len(p.FindAll("worker")); got != 1 {
		t.Fatalf("FindAll(worker) = %d nodes, want 1", got)
	}

	// Rows-in inference: a span without SetRowsIn reports the sum of its
	// children's rows-out.
	if eng := p.Find("engine exact"); eng.RowsIn != 2 {
		t.Fatalf("inferred rows-in = %d, want 2 (child rows-out)", eng.RowsIn)
	}

	// JSON encodes without error and round-trips the structure.
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Profile
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Find("worker 0") == nil {
		t.Fatal("worker span lost in JSON round-trip")
	}

	// Pretty rendering contains the tree glyphs and row counts.
	s := p.String()
	for _, want := range []string{"query", "└─", "HashAggregate", "in=100 out=2", "workers=4", "worker 0", "morsels=7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered profile missing %q:\n%s", want, s)
		}
	}
	if got := len(p.Lines()); got < 4 {
		t.Fatalf("Lines() = %d lines, want >= 4\n%s", got, s)
	}
}

func TestSetAttrOverwrites(t *testing.T) {
	tr := New("q")
	tr.Root().SetAttr("k", "1")
	tr.Root().SetAttr("k", "2")
	p := tr.Profile()
	if len(p.Attrs) != 1 || p.Attrs[0].Value != "2" {
		t.Fatalf("attrs = %+v, want single k=2", p.Attrs)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New("q")
	sp := tr.Root().StartChild("s")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	d1 := tr.Profile().Children[0].DurationMS
	time.Sleep(5 * time.Millisecond)
	sp.End()
	d2 := tr.Profile().Children[0].DurationMS
	if d1 != d2 {
		t.Fatalf("End not idempotent: %v then %v", d1, d2)
	}
	if d1 <= 0 {
		t.Fatalf("duration %v, want > 0", d1)
	}
}

func TestConcurrentWorkersRace(t *testing.T) {
	tr := New("q")
	op := tr.Root().NewChild("agg")
	const workers = 8
	spans := make([]*Span, workers)
	for i := range spans {
		spans[i] = op.NewChild("worker")
	}
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func(sp *Span) {
			for j := 0; j < 100; j++ {
				sp.AddTime(time.Microsecond)
				sp.AddRows(1)
				sp.SetAttrInt("n", int64(j))
			}
			done <- struct{}{}
		}(spans[i])
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	p := tr.Profile()
	if got := len(p.Find("agg").Children); got != workers {
		t.Fatalf("worker spans = %d, want %d", got, workers)
	}
	if p.Find("agg").RowsIn != workers*100 {
		t.Fatalf("inferred rows-in = %d, want %d", p.Find("agg").RowsIn, workers*100)
	}
}
