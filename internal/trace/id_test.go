package trace

import (
	"strings"
	"testing"
)

func TestNewTraceIDNonZeroAndDistinct(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("zero trace ID generated")
	}
	if a == b {
		t.Fatal("two trace IDs collided")
	}
	if len(a.String()) != 32 {
		t.Fatalf("trace ID hex width %d, want 32", len(a.String()))
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	tr := NewWithParent("query", tid, SpanID{})
	h := tr.Root().Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") || len(h) != 55 {
		t.Fatalf("traceparent %q malformed", h)
	}
	gotTid, gotSid, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", h)
	}
	if gotTid != tid {
		t.Fatalf("trace ID did not round-trip: %s != %s", gotTid, tid)
	}
	if gotSid != tr.Root().SpanID() {
		t.Fatal("span ID did not round-trip")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e47XX-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 must be exactly 55
		"00+4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
	// A later version with trailing fields is accepted (forward compat).
	if _, _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"); !ok {
		t.Error("future version with extension rejected")
	}
}

func TestNewWithParentJoinsTrace(t *testing.T) {
	remoteTid, remoteSid, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := NewWithParent("query", remoteTid, remoteSid)
	if tr.TraceID() != remoteTid {
		t.Fatal("tracer did not adopt the remote trace ID")
	}
	p := tr.Profile()
	if p.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("profile trace ID %s", p.TraceID)
	}
	if p.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("root parent %s, want the remote span", p.ParentSpanID)
	}
	// Zero trace ID falls back to a fresh one.
	if NewWithParent("q", TraceID{}, SpanID{}).TraceID().IsZero() {
		t.Fatal("zero trace ID not replaced")
	}
}

func TestSpanIDsUniqueWithinTrace(t *testing.T) {
	tr := New("query")
	ids := map[SpanID]bool{tr.Root().SpanID(): true}
	sp := tr.Root()
	for i := 0; i < 100; i++ {
		c := sp.NewChild("c")
		id := c.SpanID()
		if id.IsZero() {
			t.Fatal("zero span ID assigned")
		}
		if ids[id] {
			t.Fatalf("span ID collision at %d", i)
		}
		ids[id] = true
	}
	// Profile threads parent IDs down the tree.
	child := tr.Root().StartChild("child")
	grand := child.StartChild("grand")
	_ = grand
	p := tr.Profile()
	var check func(p *Profile)
	check = func(p *Profile) {
		for _, c := range p.Children {
			if c.ParentSpanID != p.SpanID {
				t.Fatalf("child %s parent %s, want %s", c.Name, c.ParentSpanID, p.SpanID)
			}
			check(c)
		}
	}
	check(p)
}

func TestUntracedSpanHasNoIdentity(t *testing.T) {
	var sp *Span
	if sp.Traceparent() != "" || !sp.TraceID().IsZero() || !sp.SpanID().IsZero() {
		t.Fatal("nil span leaked identity")
	}
}
