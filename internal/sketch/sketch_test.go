package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEquiDepthBasics(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h, err := BuildEquiDepth(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 10 || h.Total() != 1000 {
		t.Fatalf("buckets=%d total=%v", h.Buckets(), h.Total())
	}
	// Full range covers everything.
	if got := h.EstimateRangeCount(-1, 1e9); math.Abs(got-1000) > 1 {
		t.Errorf("full range = %v", got)
	}
	// Half range ~500 under uniform data.
	if got := h.EstimateRangeCount(0, 499.5); math.Abs(got-500) > 25 {
		t.Errorf("half range = %v", got)
	}
	// Empty range.
	if got := h.EstimateRangeCount(2000, 3000); got != 0 {
		t.Errorf("empty range = %v", got)
	}
	if got := h.EstimateRangeCount(10, 5); got != 0 {
		t.Errorf("inverted range = %v", got)
	}
}

func TestEquiDepthSelectivityAndQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	h, err := BuildEquiDepth(vals, 64)
	if err != nil {
		t.Fatal(err)
	}
	// P(|Z|<=1) ≈ 0.683.
	sel := h.EstimateSelectivity(-1, 1)
	if math.Abs(sel-0.683) > 0.03 {
		t.Errorf("selectivity = %v", sel)
	}
	med := h.Quantile(0.5)
	if math.Abs(med) > 0.05 {
		t.Errorf("median = %v", med)
	}
	if h.Quantile(0) != h.min || h.Quantile(1) != h.max {
		t.Error("quantile edges")
	}
}

func TestEquiDepthErrors(t *testing.T) {
	if _, err := BuildEquiDepth(nil, 4); err == nil {
		t.Error("empty input")
	}
	if _, err := BuildEquiDepth([]float64{1}, 0); err == nil {
		t.Error("zero buckets")
	}
	// More buckets than values is clamped.
	h, err := BuildEquiDepth([]float64{1, 2}, 10)
	if err != nil || h.Buckets() > 2 {
		t.Errorf("clamp: %v %v", h, err)
	}
}

func TestEquiWidth(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 100)
	}
	h, err := BuildEquiWidth(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1000 {
		t.Fatal("total")
	}
	got := h.EstimateRangeCount(0, 49.5)
	if math.Abs(got-500) > 60 {
		t.Errorf("half range = %v", got)
	}
	// Constant column.
	hc, err := BuildEquiWidth([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := hc.EstimateRangeCount(4, 6); got <= 0 {
		t.Errorf("constant column range = %v", got)
	}
}

// Property: equi-depth range estimates are monotone in the range.
func TestHistogramMonotoneProperty(t *testing.T) {
	vals := make([]float64, 500)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	h, err := BuildEquiDepth(vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw, cRaw uint16) bool {
		a := float64(aRaw % 100)
		b := a + float64(bRaw%100)
		c := b + float64(cRaw%100)
		return h.EstimateRangeCount(a, b) <= h.EstimateRangeCount(a, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[string]uint64)
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.2, 1, 5000)
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k%d", z.Uint64())
		truth[k]++
		cm.Add(k, 1)
	}
	for k, c := range truth {
		if est := cm.Estimate(k); est < c {
			t.Fatalf("CMS underestimated %s: %d < %d", k, est, c)
		}
	}
	if cm.N() != 20000 {
		t.Fatalf("N = %d", cm.N())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	cm, err := NewCountMin(0.005, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[string]uint64)
	rng := rand.New(rand.NewSource(7))
	z := rand.NewZipf(rng, 1.3, 1, 10000)
	for i := 0; i < 50000; i++ {
		k := fmt.Sprintf("k%d", z.Uint64())
		truth[k]++
		cm.Add(k, 1)
	}
	bound := cm.ErrorBound()
	violations := 0
	for k, c := range truth {
		if float64(cm.Estimate(k)-c) > bound {
			violations++
		}
	}
	if frac := float64(violations) / float64(len(truth)); frac > 0.05 {
		t.Errorf("CMS error bound violated for %v of keys", frac)
	}
	if cm.Bytes() <= 0 {
		t.Error("Bytes")
	}
}

func TestCountMinMerge(t *testing.T) {
	a, _ := NewCountMin(0.01, 0.05)
	b, _ := NewCountMin(0.01, 0.05)
	a.Add("x", 3)
	b.Add("x", 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate("x") < 7 {
		t.Errorf("merged estimate = %d", a.Estimate("x"))
	}
	c, _ := NewCountMin(0.1, 0.05)
	if err := a.Merge(c); err == nil {
		t.Error("dimension mismatch must error")
	}
}

func TestCountMinParamValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := NewCountMin(bad[0], bad[1]); err == nil {
			t.Errorf("NewCountMin(%v) should fail", bad)
		}
	}
}

func TestHLLAccuracy(t *testing.T) {
	h, err := NewHyperLogLog(12)
	if err != nil {
		t.Fatal(err)
	}
	n := 100000
	for i := 0; i < n; i++ {
		h.Add(fmt.Sprintf("user-%d", i))
	}
	est := h.Estimate()
	rel := math.Abs(est-float64(n)) / float64(n)
	if rel > 3*h.StdError() {
		t.Errorf("HLL estimate %v for %d distinct (rel err %v, se %v)", est, n, rel, h.StdError())
	}
}

func TestHLLSmallRangeLinearCounting(t *testing.T) {
	h, _ := NewHyperLogLog(12)
	for i := 0; i < 100; i++ {
		h.Add(fmt.Sprintf("k%d", i))
	}
	est := h.Estimate()
	if math.Abs(est-100) > 10 {
		t.Errorf("small-range estimate = %v", est)
	}
}

func TestHLLDuplicatesDontInflate(t *testing.T) {
	h, _ := NewHyperLogLog(10)
	for i := 0; i < 10000; i++ {
		h.Add("same-key")
	}
	if est := h.Estimate(); est > 3 {
		t.Errorf("duplicate-only estimate = %v", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, _ := NewHyperLogLog(12)
	b, _ := NewHyperLogLog(12)
	for i := 0; i < 5000; i++ {
		a.Add(fmt.Sprintf("a%d", i))
		b.Add(fmt.Sprintf("b%d", i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := a.Estimate()
	if math.Abs(est-10000)/10000 > 0.1 {
		t.Errorf("merged estimate = %v", est)
	}
	c, _ := NewHyperLogLog(10)
	if err := a.Merge(c); err == nil {
		t.Error("precision mismatch must error")
	}
	if _, err := NewHyperLogLog(3); err == nil {
		t.Error("precision 3 invalid")
	}
}

func TestAMSF2(t *testing.T) {
	a, err := NewAMS(256, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Stream with known F2: 100 keys with frequency 10 => F2 = 100*100 = 10000.
	for k := 0; k < 100; k++ {
		a.Add(fmt.Sprintf("k%d", k), 10)
	}
	est := a.EstimateF2()
	if math.Abs(est-10000)/10000 > 0.3 {
		t.Errorf("AMS F2 = %v, want ~10000", est)
	}
	if _, err := NewAMS(0, 1); err == nil {
		t.Error("bad dims must error")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}
