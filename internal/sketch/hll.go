package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HyperLogLog estimates the number of distinct keys in a stream using
// 2^precision one-byte registers. Standard error is ~1.04/sqrt(2^p).
type HyperLogLog struct {
	p    uint8
	m    uint32
	regs []uint8
}

// NewHyperLogLog allocates a sketch with the given precision (4..18).
func NewHyperLogLog(precision uint8) (*HyperLogLog, error) {
	if precision < 4 || precision > 18 {
		return nil, fmt.Errorf("sketch: HLL precision %d out of [4,18]", precision)
	}
	m := uint32(1) << precision
	return &HyperLogLog{p: precision, m: m, regs: make([]uint8, m)}, nil
}

// Add observes one key.
func (h *HyperLogLog) Add(key string) {
	x := hashBytes([]byte(key), 0x1b873593)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure nonzero
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Estimate returns the cardinality estimate with the standard bias
// corrections (linear counting for small ranges).
func (h *HyperLogLog) Estimate() float64 {
	m := float64(h.m)
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	switch h.m {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	}
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Linear counting for the small range.
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// StdError returns the theoretical relative standard error.
func (h *HyperLogLog) StdError() float64 { return 1.04 / math.Sqrt(float64(h.m)) }

// Bytes returns the register memory footprint.
func (h *HyperLogLog) Bytes() int { return len(h.regs) }

// Merge takes the register-wise max of another sketch with identical
// precision (union semantics).
func (h *HyperLogLog) Merge(o *HyperLogLog) error {
	if h.p != o.p {
		return fmt.Errorf("sketch: HLL precision mismatch")
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// AMS estimates the second frequency moment F2 = Σ f(k)² of a stream
// (useful for self-join size estimation) with depth×width counters of
// random ±1 projections.
type AMS struct {
	width  int
	depth  int
	cells  []float64
	seedsA []uint64
}

// NewAMS allocates an AMS sketch. Relative error ~ 1/sqrt(width) with
// failure probability shrinking in depth (median of means).
func NewAMS(width, depth int) (*AMS, error) {
	if width <= 0 || depth <= 0 {
		return nil, fmt.Errorf("sketch: AMS dimensions must be positive")
	}
	a := &AMS{width: width, depth: depth,
		cells: make([]float64, width*depth), seedsA: make([]uint64, depth*width)}
	var s uint64 = 0x2545F4914F6CDD1D
	for i := range a.seedsA {
		s = mix64(s + 0x9e3779b97f4a7c15)
		a.seedsA[i] = s
	}
	return a, nil
}

// Add observes key with multiplicity delta.
func (a *AMS) Add(key string, delta float64) {
	b := []byte(key)
	for d := 0; d < a.depth; d++ {
		for w := 0; w < a.width; w++ {
			h := hashBytes(b, a.seedsA[d*a.width+w])
			sign := float64(1)
			if h&1 == 1 {
				sign = -1
			}
			a.cells[d*a.width+w] += sign * delta
		}
	}
}

// EstimateF2 returns the median over depth of the mean over width of the
// squared projections.
func (a *AMS) EstimateF2() float64 {
	meds := make([]float64, a.depth)
	for d := 0; d < a.depth; d++ {
		var mean float64
		for w := 0; w < a.width; w++ {
			c := a.cells[d*a.width+w]
			mean += c * c
		}
		meds[d] = mean / float64(a.width)
	}
	return median(meds)
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
