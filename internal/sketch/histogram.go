// Package sketch implements precomputed synopses — the non-sampling branch
// of the AQP design space the paper surveys: histograms (equi-depth and
// equi-width) for range aggregates and selectivity estimation, a Count-Min
// sketch for point frequencies, HyperLogLog for distinct counts, and an
// AMS sketch for second frequency moments. Synopses answer their narrow
// query class in O(synopsis) time but cannot serve arbitrary queries —
// the generality limit that motivates sampling-based AQP.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// EquiDepthHistogram summarizes a numeric column with buckets of (roughly)
// equal row counts, the standard selectivity-estimation structure.
type EquiDepthHistogram struct {
	bounds []float64 // len = buckets+1; bounds[0]=min, bounds[len-1]=max
	counts []float64 // rows per bucket
	total  float64
	min    float64
	max    float64
}

// BuildEquiDepth builds a histogram with at most buckets buckets over the
// values (which it sorts in place).
func BuildEquiDepth(values []float64, buckets int) (*EquiDepthHistogram, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("sketch: empty input")
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("sketch: buckets must be positive")
	}
	sort.Float64s(values)
	n := len(values)
	if buckets > n {
		buckets = n
	}
	h := &EquiDepthHistogram{total: float64(n), min: values[0], max: values[n-1]}
	h.bounds = append(h.bounds, values[0])
	per := float64(n) / float64(buckets)
	for b := 1; b <= buckets; b++ {
		idx := int(math.Round(per*float64(b))) - 1
		if idx >= n {
			idx = n - 1
		}
		lo := int(math.Round(per * float64(b-1)))
		h.counts = append(h.counts, float64(idx-lo+1))
		h.bounds = append(h.bounds, values[idx])
	}
	return h, nil
}

// Buckets returns the number of buckets.
func (h *EquiDepthHistogram) Buckets() int { return len(h.counts) }

// Total returns the summarized row count.
func (h *EquiDepthHistogram) Total() float64 { return h.total }

// EstimateRangeCount estimates |{x : lo <= x <= hi}| assuming uniform
// spread within buckets.
func (h *EquiDepthHistogram) EstimateRangeCount(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	var est float64
	for b := 0; b < len(h.counts); b++ {
		blo, bhi := h.bounds[b], h.bounds[b+1]
		if bhi < lo || blo > hi {
			continue
		}
		width := bhi - blo
		if width <= 0 {
			// Degenerate bucket (single value).
			if blo >= lo && blo <= hi {
				est += h.counts[b]
			}
			continue
		}
		l := math.Max(lo, blo)
		r := math.Min(hi, bhi)
		est += h.counts[b] * (r - l) / width
	}
	return est
}

// EstimateSelectivity estimates the fraction of rows in [lo, hi].
func (h *EquiDepthHistogram) EstimateSelectivity(lo, hi float64) float64 {
	if h.total == 0 {
		return 0
	}
	return h.EstimateRangeCount(lo, hi) / h.total
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]).
func (h *EquiDepthHistogram) Quantile(q float64) float64 {
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * h.total
	var acc float64
	for b := 0; b < len(h.counts); b++ {
		if acc+h.counts[b] >= target {
			frac := (target - acc) / h.counts[b]
			return h.bounds[b] + frac*(h.bounds[b+1]-h.bounds[b])
		}
		acc += h.counts[b]
	}
	return h.max
}

// EquiWidthHistogram summarizes values with fixed-width buckets.
type EquiWidthHistogram struct {
	min, max float64
	width    float64
	counts   []float64
	total    float64
}

// BuildEquiWidth builds a fixed-width histogram.
func BuildEquiWidth(values []float64, buckets int) (*EquiWidthHistogram, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("sketch: empty input")
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("sketch: buckets must be positive")
	}
	mn, mx := values[0], values[0]
	for _, v := range values {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	h := &EquiWidthHistogram{min: mn, max: mx, counts: make([]float64, buckets), total: float64(len(values))}
	if mx == mn {
		h.width = 1
	} else {
		h.width = (mx - mn) / float64(buckets)
	}
	for _, v := range values {
		b := int((v - mn) / h.width)
		if b >= buckets {
			b = buckets - 1
		}
		h.counts[b]++
	}
	return h, nil
}

// EstimateRangeCount estimates the count of values in [lo, hi].
func (h *EquiWidthHistogram) EstimateRangeCount(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	var est float64
	for b := range h.counts {
		blo := h.min + float64(b)*h.width
		bhi := blo + h.width
		if bhi < lo || blo > hi {
			continue
		}
		l := math.Max(lo, blo)
		r := math.Min(hi, bhi)
		est += h.counts[b] * (r - l) / h.width
	}
	return est
}

// Total returns the summarized row count.
func (h *EquiWidthHistogram) Total() float64 { return h.total }
