package sketch

import (
	"fmt"
	"math"
)

// CountMin is a Count-Min sketch: a compact frequency summary with
// one-sided error. Estimate(x) >= count(x) always, and
// Estimate(x) <= count(x) + ε·N with probability 1-δ, where
// ε = e/width and δ = e^-depth.
type CountMin struct {
	width uint32
	depth uint32
	cells []uint64
	seeds []uint64
	n     uint64
}

// NewCountMin allocates a sketch with the given error profile:
// ε (additive error as a fraction of the stream length) and δ
// (failure probability).
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: bad CountMin parameters ε=%v δ=%v", epsilon, delta)
	}
	width := uint32(math.Ceil(math.E / epsilon))
	depth := uint32(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	cm := &CountMin{width: width, depth: depth,
		cells: make([]uint64, int(width)*int(depth)),
		seeds: make([]uint64, depth)}
	var s uint64 = 0x9e3779b97f4a7c15
	for i := range cm.seeds {
		s = mix64(s + uint64(i)*0xbf58476d1ce4e5b9)
		cm.seeds[i] = s
	}
	return cm, nil
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func hashBytes(b []byte, seed uint64) uint64 {
	h := seed ^ 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return mix64(h)
}

// Add increments the count of key by delta.
func (cm *CountMin) Add(key string, delta uint64) {
	b := []byte(key)
	for d := uint32(0); d < cm.depth; d++ {
		idx := hashBytes(b, cm.seeds[d]) % uint64(cm.width)
		cm.cells[uint64(d)*uint64(cm.width)+idx] += delta
	}
	cm.n += delta
}

// Estimate returns the (over-)estimated count of key.
func (cm *CountMin) Estimate(key string) uint64 {
	b := []byte(key)
	var min uint64 = math.MaxUint64
	for d := uint32(0); d < cm.depth; d++ {
		idx := hashBytes(b, cm.seeds[d]) % uint64(cm.width)
		if c := cm.cells[uint64(d)*uint64(cm.width)+idx]; c < min {
			min = c
		}
	}
	if min == math.MaxUint64 {
		return 0
	}
	return min
}

// N returns the total stream length.
func (cm *CountMin) N() uint64 { return cm.n }

// ErrorBound returns the additive error ε·N exceeded with probability at
// most δ.
func (cm *CountMin) ErrorBound() float64 {
	return math.E / float64(cm.width) * float64(cm.n)
}

// Bytes returns the memory footprint of the cells array.
func (cm *CountMin) Bytes() int { return len(cm.cells) * 8 }

// Merge adds another sketch with identical dimensions into cm.
func (cm *CountMin) Merge(o *CountMin) error {
	if cm.width != o.width || cm.depth != o.depth {
		return fmt.Errorf("sketch: CountMin dimension mismatch")
	}
	for i := range cm.cells {
		cm.cells[i] += o.cells[i]
	}
	cm.n += o.n
	return nil
}
