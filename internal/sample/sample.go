// Package sample implements the sampler taxonomy surveyed by the paper:
// uniform (Bernoulli) row sampling, block/page sampling, reservoir
// sampling, the distinct sampler (which keeps rare strata whole so
// group-by queries do not lose groups), the universe sampler (which hashes
// join keys so both sides of a join retain an identical key subset), and
// offline stratified-sample construction.
//
// Every sampler is deterministic given its seed: inclusion decisions are
// pure functions of (seed, row identity), so plans can be re-executed and
// the pushdown rewrites in internal/plan preserve sample distributions.
package sample

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// Kind enumerates sampler families.
type Kind uint8

// Sampler kinds.
const (
	KindNone Kind = iota
	KindUniformRow
	KindBlock
	KindDistinct
	KindUniverse
	KindBiLevel
)

// String names the sampler kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindUniformRow:
		return "uniform"
	case KindBlock:
		return "block"
	case KindDistinct:
		return "distinct"
	case KindUniverse:
		return "universe"
	case KindBiLevel:
		return "bilevel"
	}
	return "?"
}

// Spec declares a sampler to apply at a table scan.
type Spec struct {
	Kind Kind
	// Rate is the Bernoulli inclusion probability in (0, 1]. For the
	// bi-level sampler it is the *block*-level rate.
	Rate float64
	// RowRate is the within-block row rate of the bi-level sampler
	// (ignored by the other kinds). Overall rate = Rate · RowRate.
	RowRate float64
	// KeyColumns are the stratification (distinct) or hash (universe)
	// columns. Unused for uniform and block sampling.
	KeyColumns []string
	// KeepThreshold is the distinct sampler's per-stratum pass-through
	// count: the first KeepThreshold rows of every stratum are kept with
	// weight 1, guaranteeing small groups survive.
	KeepThreshold int
	// Seed randomizes uniform/block/distinct decisions. The universe
	// sampler deliberately ignores Seed for its hash (both join sides
	// must agree) unless Salt is set.
	Seed int64
	// Salt perturbs the universe hash; both sides of a join must share it.
	Salt uint64
	// NoWeight makes kept rows carry weight 1 instead of 1/Rate. Used for
	// the non-carrying side of a universe-sampled join: when both sides
	// share salt and rate, a joined pair's inclusion probability is Rate
	// (decisions are perfectly correlated), so exactly one side must
	// carry the Horvitz–Thompson weight.
	NoWeight bool
}

// Validate checks internal consistency of the spec.
func (s Spec) Validate() error {
	if s.Kind == KindNone {
		return nil
	}
	if s.Rate <= 0 || s.Rate > 1 {
		return fmt.Errorf("sample: rate %v out of (0,1]", s.Rate)
	}
	switch s.Kind {
	case KindDistinct, KindUniverse:
		if len(s.KeyColumns) == 0 {
			return fmt.Errorf("sample: %s sampler requires key columns", s.Kind)
		}
	}
	if s.Kind == KindDistinct && s.KeepThreshold < 0 {
		return fmt.Errorf("sample: negative keep threshold")
	}
	if s.Kind == KindBiLevel && (s.RowRate <= 0 || s.RowRate > 1) {
		return fmt.Errorf("sample: bilevel row rate %v out of (0,1]", s.RowRate)
	}
	return nil
}

// String renders the spec for EXPLAIN output.
func (s Spec) String() string {
	if s.Kind == KindNone {
		return "none"
	}
	b := fmt.Sprintf("%s(p=%.4g", s.Kind, s.Rate)
	if len(s.KeyColumns) > 0 {
		b += ", keys=" + strings.Join(s.KeyColumns, ",")
	}
	if s.Kind == KindDistinct {
		b += fmt.Sprintf(", keep=%d", s.KeepThreshold)
	}
	if s.Kind == KindBiLevel {
		b += fmt.Sprintf(", rowRate=%.4g", s.RowRate)
	}
	return b + ")"
}

// splitmix64 is the SplitMix64 finalizer; a high-quality 64-bit mixer used
// to turn (seed, index) into pseudo-random bits deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashToUnit maps a 64-bit hash to [0, 1).
func hashToUnit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// RowDecision is the outcome of a sampling decision for one row.
type RowDecision struct {
	Keep   bool
	Weight float64 // 1/π, the Horvitz–Thompson weight; 0 if dropped
}

// RowSampler decides row inclusion in streaming fashion.
type RowSampler interface {
	// Decide returns the decision for the row at absolute index rowIdx
	// whose sampler key (canonical string of the key columns) is key.
	// Samplers that do not use keys ignore it.
	Decide(rowIdx int, key string) RowDecision
	// Rate returns the configured base sampling rate.
	Rate() float64
}

// Uniform is Bernoulli row-level sampling: each row is kept independently
// with probability p; kept rows carry weight 1/p.
type Uniform struct {
	p    float64
	seed uint64
}

// NewUniform returns a uniform row sampler.
func NewUniform(p float64, seed int64) *Uniform {
	return &Uniform{p: p, seed: uint64(seed)}
}

// Rate implements RowSampler.
func (u *Uniform) Rate() float64 { return u.p }

// Decide implements RowSampler.
func (u *Uniform) Decide(rowIdx int, _ string) RowDecision {
	h := splitmix64(u.seed ^ splitmix64(uint64(rowIdx)))
	if hashToUnit(h) < u.p {
		return RowDecision{Keep: true, Weight: 1 / u.p}
	}
	return RowDecision{}
}

// Block is block-level (page) Bernoulli sampling: whole blocks of
// blockSize rows are kept with probability p; rows in kept blocks carry
// weight 1/p. It is the TABLESAMPLE SYSTEM analogue and the source of the
// "system efficiency vs. statistical efficiency" trade-off: it reads
// 1/p-th of the data sequentially but rows within a block are correlated.
type Block struct {
	p         float64
	seed      uint64
	blockSize int
}

// NewBlock returns a block sampler over blocks of blockSize rows.
func NewBlock(p float64, blockSize int, seed int64) *Block {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	return &Block{p: p, seed: uint64(seed), blockSize: blockSize}
}

// Rate implements RowSampler.
func (b *Block) Rate() float64 { return b.p }

// BlockSize returns the sampling granularity in rows.
func (b *Block) BlockSize() int { return b.blockSize }

// DecideBlock returns the decision for an entire block.
func (b *Block) DecideBlock(blockIdx int) RowDecision {
	h := splitmix64(b.seed ^ splitmix64(uint64(blockIdx)*0x5851f42d4c957f2d+1))
	if hashToUnit(h) < b.p {
		return RowDecision{Keep: true, Weight: 1 / b.p}
	}
	return RowDecision{}
}

// Decide implements RowSampler by delegating to the row's block.
func (b *Block) Decide(rowIdx int, _ string) RowDecision {
	return b.DecideBlock(rowIdx / b.blockSize)
}

// Universe keeps a row iff the hash of its key columns falls below p.
// Applying the same universe sampler (same key domain and salt) to both
// sides of an equi-join keeps *aligned* key subsets, so the join of the
// samples equals a p-fraction (by key universe) of the true join — the
// sampler Quickr introduces to make join sampling effective.
type Universe struct {
	p    float64
	salt uint64
}

// NewUniverse returns a universe sampler. Both join sides must use equal
// salt.
func NewUniverse(p float64, salt uint64) *Universe {
	return &Universe{p: p, salt: salt}
}

// Rate implements RowSampler.
func (u *Universe) Rate() float64 { return u.p }

// Decide implements RowSampler. The decision depends only on the key, so
// all rows with one key are kept or dropped together, on every table.
func (u *Universe) Decide(_ int, key string) RowDecision {
	h := splitmix64(hashString(key) ^ u.salt)
	if hashToUnit(h) < u.p {
		return RowDecision{Keep: true, Weight: 1 / u.p}
	}
	return RowDecision{}
}

// hashString hashes a canonical key string.
func hashString(s string) uint64 {
	// FNV-1a, inlined to avoid allocation.
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return splitmix64(h)
}

// Distinct passes the first KeepThreshold rows of every stratum (distinct
// key-column combination) with weight 1, then samples the remainder of the
// stratum at rate p with weight 1/p. Rare groups therefore survive whole
// while frequent values are thinned — the sampler that rescues skewed
// GROUP BY queries.
//
// Distinct is stateful (it counts rows per stratum) and must see rows in a
// deterministic order for reproducibility; scans feed it in row order.
type Distinct struct {
	p     float64
	keep  int
	seed  uint64
	seen  map[string]int
	limit int // safety cap on strata tracked
}

// NewDistinct returns a distinct sampler with per-stratum pass-through
// count keep and tail rate p.
func NewDistinct(p float64, keep int, seed int64) *Distinct {
	if keep <= 0 {
		keep = 1
	}
	return &Distinct{p: p, keep: keep, seed: uint64(seed),
		seen: make(map[string]int), limit: 1 << 22}
}

// Rate implements RowSampler.
func (d *Distinct) Rate() float64 { return d.p }

// StrataSeen returns the number of distinct strata observed so far.
func (d *Distinct) StrataSeen() int { return len(d.seen) }

// Decide implements RowSampler.
func (d *Distinct) Decide(rowIdx int, key string) RowDecision {
	n := d.seen[key]
	if len(d.seen) < d.limit || n > 0 {
		d.seen[key] = n + 1
	}
	if n < d.keep {
		return RowDecision{Keep: true, Weight: 1}
	}
	h := splitmix64(d.seed ^ splitmix64(uint64(rowIdx)*0x9e3779b97f4a7c15+7))
	if hashToUnit(h) < d.p {
		return RowDecision{Keep: true, Weight: 1 / d.p}
	}
	return RowDecision{}
}

// BiLevel composes block-level Bernoulli sampling (rate pb, so non-sampled
// blocks are skipped entirely) with within-block row-level Bernoulli
// sampling (rate pr). Kept rows carry weight 1/(pb·pr). The
// Haas–König-style remedy for the block design effect: block skipping
// keeps the I/O savings, within-block thinning decorrelates the rows.
type BiLevel struct {
	block *Block
	row   *Uniform
}

// NewBiLevel returns a bi-level sampler.
func NewBiLevel(blockRate, rowRate float64, blockSize int, seed int64) *BiLevel {
	return &BiLevel{
		block: NewBlock(blockRate, blockSize, seed),
		row:   NewUniform(rowRate, seed^0x5bd1e995),
	}
}

// Rate implements RowSampler with the overall inclusion probability.
func (b *BiLevel) Rate() float64 { return b.block.Rate() * b.row.Rate() }

// BlockSampler exposes the block stage for scan-level block skipping.
func (b *BiLevel) BlockSampler() *Block { return b.block }

// DecideRow is the within-block stage for rows of kept blocks.
func (b *BiLevel) DecideRow(rowIdx int) RowDecision { return b.row.Decide(rowIdx, "") }

// Decide implements RowSampler (combined stages, for non-skipping paths).
func (b *BiLevel) Decide(rowIdx int, key string) RowDecision {
	bd := b.block.Decide(rowIdx, key)
	if !bd.Keep {
		return RowDecision{}
	}
	rd := b.row.Decide(rowIdx, key)
	if !rd.Keep {
		return RowDecision{}
	}
	return RowDecision{Keep: true, Weight: bd.Weight * rd.Weight}
}

// New constructs the RowSampler described by spec for a table with the
// given block size.
func New(spec Spec, blockSize int) (RowSampler, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var rs RowSampler
	switch spec.Kind {
	case KindUniformRow:
		rs = NewUniform(spec.Rate, spec.Seed)
	case KindBlock:
		rs = NewBlock(spec.Rate, blockSize, spec.Seed)
	case KindUniverse:
		rs = NewUniverse(spec.Rate, spec.Salt)
	case KindDistinct:
		rs = NewDistinct(spec.Rate, spec.KeepThreshold, spec.Seed)
	case KindBiLevel:
		rs = NewBiLevel(spec.Rate, spec.RowRate, blockSize, spec.Seed)
	case KindNone:
		return nil, nil
	default:
		return nil, fmt.Errorf("sample: unknown sampler kind %d", spec.Kind)
	}
	if spec.NoWeight {
		rs = unitWeight{rs}
	}
	return rs, nil
}

// unitWeight keeps the wrapped sampler's decisions but forces weight 1.
type unitWeight struct {
	inner RowSampler
}

// Rate implements RowSampler.
func (u unitWeight) Rate() float64 { return u.inner.Rate() }

// Decide implements RowSampler.
func (u unitWeight) Decide(rowIdx int, key string) RowDecision {
	d := u.inner.Decide(rowIdx, key)
	if d.Keep {
		d.Weight = 1
	}
	return d
}

// KeyOf renders the canonical sampler key for a row: the concatenated
// group keys of the key column values, in spec order.
func KeyOf(vals []storage.Value) string {
	if len(vals) == 1 {
		return vals[0].GroupKey()
	}
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(v.GroupKey())
	}
	return b.String()
}

// UniverseKeyHash exposes the universe inclusion test for planner
// reasoning and tests: returns true if key survives at rate p with salt.
func UniverseKeyHash(key string, p float64, salt uint64) bool {
	h := splitmix64(hashString(key) ^ salt)
	return hashToUnit(h) < p
}
