package sample

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDominanceBasics(t *testing.T) {
	uni := func(p float64) Spec { return Spec{Kind: KindUniformRow, Rate: p} }
	if !Dominates(Spec{Kind: KindNone}, uni(0.5)) {
		t.Error("exact dominates any sample")
	}
	if Dominates(uni(0.5), Spec{Kind: KindNone}) {
		t.Error("no sample dominates exact")
	}
	if !Dominates(uni(0.5), uni(0.1)) || Dominates(uni(0.1), uni(0.5)) {
		t.Error("uniform rate monotonicity")
	}
	if !Equivalent(uni(0.3), uni(0.3)) {
		t.Error("self equivalence")
	}
}

func TestDominanceDistinct(t *testing.T) {
	d := func(p float64, k int) Spec {
		return Spec{Kind: KindDistinct, Rate: p, KeyColumns: []string{"g"}, KeepThreshold: k}
	}
	if !Dominates(d(0.1, 50), d(0.1, 10)) {
		t.Error("bigger keep threshold dominates")
	}
	if Dominates(d(0.1, 10), d(0.1, 50)) {
		t.Error("smaller keep threshold must not dominate")
	}
	// Distinct dominates uniform at the same rate.
	if !Dominates(d(0.1, 10), Spec{Kind: KindUniformRow, Rate: 0.1}) {
		t.Error("distinct dominates uniform at equal rate")
	}
	// Different key columns are incomparable.
	other := Spec{Kind: KindDistinct, Rate: 0.2, KeyColumns: []string{"h"}, KeepThreshold: 10}
	if Dominates(other, d(0.1, 10)) {
		t.Error("different stratification keys are incomparable")
	}
}

func TestDominanceUniverse(t *testing.T) {
	u := func(p float64, salt uint64) Spec {
		return Spec{Kind: KindUniverse, Rate: p, KeyColumns: []string{"k"}, Salt: salt}
	}
	if !Dominates(u(0.5, 7), u(0.1, 7)) {
		t.Error("universe rate monotonicity on same salt")
	}
	if Dominates(u(0.5, 7), u(0.1, 8)) {
		t.Error("different salts keep unrelated key subsets")
	}
}

func TestDominanceBlockVsRowIncomparable(t *testing.T) {
	blk := Spec{Kind: KindBlock, Rate: 0.5}
	row := Spec{Kind: KindUniformRow, Rate: 0.01}
	// Even a 50% block sample cannot be proven at least as accurate as a
	// 1% row sample: on a clustered layout (E15) it can be worse.
	if Dominates(blk, row) || Dominates(row, blk) {
		t.Error("block vs row sampling must be incomparable")
	}
}

func TestDominanceBiLevel(t *testing.T) {
	bi := func(pb, pr float64) Spec { return Spec{Kind: KindBiLevel, Rate: pb, RowRate: pr} }
	if !Dominates(bi(0.5, 0.5), bi(0.2, 0.5)) {
		t.Error("bi-level stage monotonicity")
	}
	if Dominates(bi(0.5, 0.1), bi(0.2, 0.5)) {
		t.Error("crossed stages are incomparable")
	}
	// uniform(p) dominates bi-level with the same overall rate.
	if !Dominates(Spec{Kind: KindUniformRow, Rate: 0.1}, bi(0.5, 0.2)) {
		t.Error("uniform dominates bi-level at equal overall rate")
	}
	// bilevel(p, 1) degenerates to block(p).
	if !Dominates(bi(0.5, 1), Spec{Kind: KindBlock, Rate: 0.5}) {
		t.Error("bi-level with rowRate 1 dominates block at equal rate")
	}
}

func TestDominanceNoWeight(t *testing.T) {
	a := Spec{Kind: KindUniverse, Rate: 0.5, KeyColumns: []string{"k"}}
	b := a
	b.NoWeight = true
	if Dominates(a, b) || Dominates(b, a) {
		t.Error("weight-suppressed specs are incomparable with weighted ones")
	}
}

// Property: Dominates is reflexive and transitive over random uniform and
// distinct specs (a partial order needs both).
func TestDominancePartialOrderProperty(t *testing.T) {
	mk := func(kindBit bool, rateRaw, keepRaw uint8) Spec {
		rate := (float64(rateRaw%100) + 1) / 101
		if kindBit {
			return Spec{Kind: KindUniformRow, Rate: rate}
		}
		return Spec{Kind: KindDistinct, Rate: rate, KeyColumns: []string{"g"},
			KeepThreshold: int(keepRaw%50) + 1}
	}
	reflexive := func(kb bool, r, k uint8) bool {
		s := mk(kb, r, k)
		return Dominates(s, s)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error("reflexivity:", err)
	}
	transitive := func(k1, k2, k3 bool, r1, r2, r3, kp1, kp2, kp3 uint8) bool {
		a, b, c := mk(k1, r1, kp1), mk(k2, r2, kp2), mk(k3, r3, kp3)
		if Dominates(a, b) && Dominates(b, c) {
			return Dominates(a, c)
		}
		return true
	}
	if err := quick.Check(transitive, &quick.Config{MaxCount: 500}); err != nil {
		t.Error("transitivity:", err)
	}
}

// Empirical cross-check: if a dominates b (uniform case), a's realized
// estimates have no larger variance across seeds.
func TestDominanceEmpirical(t *testing.T) {
	xs := make([]float64, 5000)
	var truth float64
	for i := range xs {
		xs[i] = float64(i%31) + 1
		truth += xs[i]
	}
	varianceOf := func(p float64) float64 {
		var acc, acc2 float64
		trials := 80
		for seed := 0; seed < trials; seed++ {
			u := NewUniform(p, int64(seed))
			var est float64
			for i, x := range xs {
				if d := u.Decide(i, ""); d.Keep {
					est += d.Weight * x
				}
			}
			acc += est
			acc2 += est * est
		}
		mean := acc / float64(trials)
		return acc2/float64(trials) - mean*mean
	}
	hi := varianceOf(0.2)
	lo := varianceOf(0.02)
	if hi >= lo {
		t.Errorf("dominating (higher-rate) sampler must have lower variance: %v vs %v",
			math.Sqrt(hi), math.Sqrt(lo))
	}
}
