package sample

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{Kind: KindNone},
		{Kind: KindUniformRow, Rate: 0.5},
		{Kind: KindBlock, Rate: 1},
		{Kind: KindUniverse, Rate: 0.1, KeyColumns: []string{"k"}},
		{Kind: KindDistinct, Rate: 0.1, KeyColumns: []string{"g"}, KeepThreshold: 5},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", s, err)
		}
	}
	bad := []Spec{
		{Kind: KindUniformRow, Rate: 0},
		{Kind: KindUniformRow, Rate: 1.5},
		{Kind: KindUniverse, Rate: 0.1},
		{Kind: KindDistinct, Rate: 0.1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%v) should fail", s)
		}
	}
}

func TestUniformRateEmpirical(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5} {
		u := NewUniform(p, 42)
		n := 200000
		kept := 0
		for i := 0; i < n; i++ {
			if d := u.Decide(i, ""); d.Keep {
				kept++
				if d.Weight != 1/p {
					t.Fatalf("weight = %v, want %v", d.Weight, 1/p)
				}
			}
		}
		got := float64(kept) / float64(n)
		if math.Abs(got-p) > 4*math.Sqrt(p*(1-p)/float64(n)) {
			t.Errorf("p=%v: empirical rate %v", p, got)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := NewUniform(0.3, 7)
	b := NewUniform(0.3, 7)
	for i := 0; i < 1000; i++ {
		if a.Decide(i, "").Keep != b.Decide(i, "").Keep {
			t.Fatal("same seed must give same decisions")
		}
	}
	c := NewUniform(0.3, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Decide(i, "").Keep == c.Decide(i, "").Keep {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds should differ")
	}
}

func TestBlockSampler(t *testing.T) {
	b := NewBlock(0.5, 100, 1)
	// Rows in the same block share the decision.
	for blk := 0; blk < 50; blk++ {
		d0 := b.Decide(blk*100, "")
		for _, off := range []int{1, 50, 99} {
			if b.Decide(blk*100+off, "").Keep != d0.Keep {
				t.Fatalf("block %d rows disagree", blk)
			}
		}
	}
	// Empirical block rate.
	kept := 0
	n := 10000
	for blk := 0; blk < n; blk++ {
		if b.DecideBlock(blk).Keep {
			kept++
		}
	}
	got := float64(kept) / float64(n)
	if math.Abs(got-0.5) > 0.03 {
		t.Errorf("block rate = %v", got)
	}
}

func TestUniverseAlignment(t *testing.T) {
	// The same key must receive the same decision from two independent
	// sampler instances with the same salt — the property that makes
	// join sampling work.
	a := NewUniverse(0.3, 123)
	b := NewUniverse(0.3, 123)
	for i := 0; i < 5000; i++ {
		key := storage.Int64(int64(i)).GroupKey()
		if a.Decide(0, key).Keep != b.Decide(999, key).Keep {
			t.Fatal("universe samplers with same salt must agree on keys")
		}
	}
	// Different salt decorrelates.
	c := NewUniverse(0.3, 456)
	agree := 0
	for i := 0; i < 5000; i++ {
		key := storage.Int64(int64(i)).GroupKey()
		if a.Decide(0, key).Keep == c.Decide(0, key).Keep {
			agree++
		}
	}
	if agree == 5000 {
		t.Error("different salts should decorrelate")
	}
}

func TestUniverseRate(t *testing.T) {
	u := NewUniverse(0.2, 9)
	kept := 0
	n := 100000
	for i := 0; i < n; i++ {
		if u.Decide(0, storage.Int64(int64(i)).GroupKey()).Keep {
			kept++
		}
	}
	got := float64(kept) / float64(n)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("universe rate = %v", got)
	}
}

func TestDistinctKeepsRareStrata(t *testing.T) {
	d := NewDistinct(0.01, 3, 5)
	// A rare stratum with 3 rows: all kept with weight 1.
	for i := 0; i < 3; i++ {
		dec := d.Decide(i, "rare")
		if !dec.Keep || dec.Weight != 1 {
			t.Fatalf("rare row %d: %+v", i, dec)
		}
	}
	// A huge stratum: first 3 kept, the rest sampled at ~1%.
	kept := 0
	n := 100000
	for i := 0; i < n; i++ {
		if dec := d.Decide(1000+i, "big"); dec.Keep {
			kept++
			if i >= 3 && dec.Weight != 100 {
				t.Fatalf("tail weight = %v", dec.Weight)
			}
		}
	}
	rate := float64(kept-3) / float64(n-3)
	if math.Abs(rate-0.01) > 0.002 {
		t.Errorf("distinct tail rate = %v", rate)
	}
	if d.StrataSeen() != 2 {
		t.Errorf("strata seen = %d", d.StrataSeen())
	}
}

// Property: HT estimation over the uniform sampler is unbiased — the mean
// of the weighted sum across seeds approaches the true sum.
func TestUniformHTUnbiasedProperty(t *testing.T) {
	xs := make([]float64, 5000)
	var trueSum float64
	for i := range xs {
		xs[i] = float64(i%97) + 1
		trueSum += xs[i]
	}
	var acc, acc2 float64
	trials := 200
	for seed := 0; seed < trials; seed++ {
		u := NewUniform(0.1, int64(seed))
		var est float64
		for i, x := range xs {
			if d := u.Decide(i, ""); d.Keep {
				est += x * d.Weight
			}
		}
		acc += est
		acc2 += est * est
	}
	mean := acc / float64(trials)
	sd := math.Sqrt(acc2/float64(trials) - mean*mean)
	se := sd / math.Sqrt(float64(trials))
	if math.Abs(mean-trueSum) > 4*se+1e-9 {
		t.Errorf("uniform HT biased: mean %v, true %v, se %v", mean, trueSum, se)
	}
}

// Property: sampling commutes with filtering for the uniform sampler —
// the set of (row, keep) decisions is independent of any filter, so
// filter∘sample = sample∘filter exactly.
func TestSampleFilterCommutes(t *testing.T) {
	f := func(seed int64, keepMod uint8) bool {
		mod := int(keepMod%7) + 2
		u := NewUniform(0.3, seed)
		var a, b []int
		// sample then filter
		for i := 0; i < 2000; i++ {
			if u.Decide(i, "").Keep && i%mod == 0 {
				a = append(a, i)
			}
		}
		// filter then sample
		for i := 0; i < 2000; i++ {
			if i%mod == 0 && u.Decide(i, "").Keep {
				b = append(b, i)
			}
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBiLevelSampler(t *testing.T) {
	bl := NewBiLevel(0.2, 0.1, 100, 3)
	if math.Abs(bl.Rate()-0.02) > 1e-12 {
		t.Fatalf("overall rate = %v", bl.Rate())
	}
	// Rows of skipped blocks never pass; rows of kept blocks pass at the
	// row rate with the combined weight.
	kept := 0
	n := 200000
	for i := 0; i < n; i++ {
		d := bl.Decide(i, "")
		if d.Keep {
			kept++
			if math.Abs(d.Weight-50) > 1e-9 { // 1/(0.2*0.1)
				t.Fatalf("weight = %v", d.Weight)
			}
			if !bl.BlockSampler().DecideBlock(i / 100).Keep {
				t.Fatal("row kept from a skipped block")
			}
		}
	}
	got := float64(kept) / float64(n)
	if math.Abs(got-0.02) > 0.005 {
		t.Errorf("empirical bilevel rate = %v", got)
	}
}

func TestBiLevelHTUnbiased(t *testing.T) {
	xs := make([]float64, 20000)
	var truth float64
	for i := range xs {
		xs[i] = float64(i%113) + 1
		truth += xs[i]
	}
	var acc float64
	trials := 150
	for seed := 0; seed < trials; seed++ {
		bl := NewBiLevel(0.3, 0.2, 64, int64(seed))
		var est float64
		for i, x := range xs {
			if d := bl.Decide(i, ""); d.Keep {
				est += d.Weight * x
			}
		}
		acc += est
	}
	mean := acc / float64(trials)
	if math.Abs(mean-truth)/truth > 0.03 {
		t.Errorf("bilevel HT mean %v vs truth %v", mean, truth)
	}
}

func TestBiLevelSpec(t *testing.T) {
	good := Spec{Kind: KindBiLevel, Rate: 0.2, RowRate: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := New(good, 128)
	if err != nil || s == nil {
		t.Fatalf("New: %v", err)
	}
	bad := Spec{Kind: KindBiLevel, Rate: 0.2}
	if err := bad.Validate(); err == nil {
		t.Error("missing row rate must fail validation")
	}
	if !containsStr(good.String(), "rowRate") {
		t.Errorf("String = %q", good.String())
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }

func TestReservoir(t *testing.T) {
	r := NewReservoir[int](10, 3)
	for i := 0; i < 1000; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 10 {
		t.Fatalf("items = %d", len(r.Items()))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen = %d", r.Seen())
	}
	if r.Weight() != 100 {
		t.Fatalf("weight = %v", r.Weight())
	}
	// Under capacity: everything kept with weight 1.
	r2 := NewReservoir[int](10, 3)
	r2.Add(1)
	r2.Add(2)
	if len(r2.Items()) != 2 || r2.Weight() != 1 {
		t.Fatal("under-capacity reservoir broken")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 100 items should land in a k=10 reservoir with prob 1/10.
	counts := make([]int, 100)
	trials := 3000
	for s := 0; s < trials; s++ {
		r := NewReservoir[int](10, int64(s))
		for i := 0; i < 100; i++ {
			r.Add(i)
		}
		for _, it := range r.Items() {
			counts[it]++
		}
	}
	for i, c := range counts {
		got := float64(c) / float64(trials)
		if math.Abs(got-0.1) > 0.04 {
			t.Errorf("item %d inclusion rate %v, want 0.1", i, got)
		}
	}
}

func makeTable(t *testing.T, groups []int) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("src", storage.Schema{
		{Name: "g", Type: storage.TypeInt64},
		{Name: "v", Type: storage.TypeFloat64},
	})
	row := 0
	for g, n := range groups {
		for i := 0; i < n; i++ {
			if err := tbl.AppendRow(storage.Int64(int64(g)), storage.Float64(float64(row))); err != nil {
				t.Fatal(err)
			}
			row++
		}
	}
	return tbl
}

func TestBuildStratified(t *testing.T) {
	// Group sizes: 2, 50, 500.
	tbl := makeTable(t, []int{2, 50, 500})
	res, err := BuildStratified(tbl, StratifiedConfig{
		KeyColumns: []string{"g"}, CapPerStratum: 10, Seed: 1}, "s")
	if err != nil {
		t.Fatal(err)
	}
	if res.Strata != 3 {
		t.Fatalf("strata = %d", res.Strata)
	}
	if res.SampleRows != 2+10+10 {
		t.Fatalf("sample rows = %d", res.SampleRows)
	}
	// Weight column present and correct: stratum g=0 has weight 1,
	// g=1 weight 5, g=2 weight 50.
	wIdx := res.Table.Schema().ColumnIndex(WeightColumn)
	gIdx := res.Table.Schema().ColumnIndex("g")
	if wIdx < 0 || gIdx < 0 {
		t.Fatal("columns missing")
	}
	wantW := map[int64]float64{0: 1, 1: 5, 2: 50}
	for i := 0; i < res.Table.NumRows(); i++ {
		g := res.Table.Column(gIdx).Value(i).I
		w := res.Table.Column(wIdx).Value(i).F
		if w != wantW[g] {
			t.Fatalf("row %d: g=%d w=%v want %v", i, g, w, wantW[g])
		}
	}
	// HT count over the sample equals the true row count exactly (each
	// stratum contributes size/cap * cap).
	var htCount float64
	for i := 0; i < res.Table.NumRows(); i++ {
		htCount += res.Table.Column(wIdx).Value(i).F
	}
	if htCount != 552 {
		t.Fatalf("HT count = %v, want 552", htCount)
	}
	if res.Fraction() <= 0 || res.Fraction() > 1 {
		t.Fatalf("fraction = %v", res.Fraction())
	}
	if res.BuildVersion != tbl.Version() {
		t.Error("build version mismatch")
	}
}

func TestBuildStratifiedErrors(t *testing.T) {
	tbl := makeTable(t, []int{5})
	if _, err := BuildStratified(tbl, StratifiedConfig{KeyColumns: []string{"nope"}, CapPerStratum: 5}, "s"); err == nil {
		t.Error("expected unknown column error")
	}
	if _, err := BuildStratified(tbl, StratifiedConfig{KeyColumns: []string{"g"}}, "s"); err == nil {
		t.Error("expected cap error")
	}
}

func TestBuildUniformTable(t *testing.T) {
	tbl := makeTable(t, []int{1000})
	res, err := BuildUniformTable(tbl, 0.2, 9, "u")
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Fraction()
	if math.Abs(frac-0.2) > 0.06 {
		t.Fatalf("fraction = %v", frac)
	}
	wIdx := res.Table.Schema().ColumnIndex(WeightColumn)
	for i := 0; i < res.Table.NumRows(); i++ {
		if res.Table.Column(wIdx).Value(i).F != 5 {
			t.Fatal("uniform weight must be 1/p")
		}
	}
	if _, err := BuildUniformTable(tbl, 0, 1, "u2"); err == nil {
		t.Error("expected rate error")
	}
}

func TestKeyOf(t *testing.T) {
	one := KeyOf([]storage.Value{storage.Int64(5)})
	if one != storage.Int64(5).GroupKey() {
		t.Error("single key must match GroupKey")
	}
	multi := KeyOf([]storage.Value{storage.Int64(1), storage.Str("a")})
	multi2 := KeyOf([]storage.Value{storage.Int64(1), storage.Str("a")})
	if multi != multi2 {
		t.Error("KeyOf must be deterministic")
	}
	diff := KeyOf([]storage.Value{storage.Int64(1), storage.Str("b")})
	if multi == diff {
		t.Error("different tuples must produce different keys")
	}
}

func TestNewFromSpec(t *testing.T) {
	cases := []Spec{
		{Kind: KindUniformRow, Rate: 0.1},
		{Kind: KindBlock, Rate: 0.1},
		{Kind: KindUniverse, Rate: 0.1, KeyColumns: []string{"k"}},
		{Kind: KindDistinct, Rate: 0.1, KeyColumns: []string{"g"}, KeepThreshold: 2},
	}
	for _, spec := range cases {
		s, err := New(spec, 128)
		if err != nil || s == nil {
			t.Errorf("New(%v): %v", spec, err)
			continue
		}
		if s.Rate() != 0.1 {
			t.Errorf("rate = %v", s.Rate())
		}
	}
	if s, err := New(Spec{Kind: KindNone}, 128); err != nil || s != nil {
		t.Error("KindNone should return nil sampler")
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Kind: KindDistinct, Rate: 0.05, KeyColumns: []string{"a", "b"}, KeepThreshold: 10}
	str := s.String()
	if str == "" || str == "none" {
		t.Errorf("String = %q", str)
	}
	if (Spec{}).String() != "none" {
		t.Error("zero spec renders none")
	}
}
