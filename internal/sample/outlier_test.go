package sample

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func heavyTable(t *testing.T, n int, seed int64) (*storage.Table, float64) {
	t.Helper()
	tbl := storage.NewTable("h", storage.Schema{
		{Name: "v", Type: storage.TypeFloat64},
	})
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		v := math.Pow(rng.Float64()+1e-12, -1/1.5)
		sum += v
		if err := tbl.AppendRow(storage.Float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl, sum
}

func TestOutlierIndexEstimate(t *testing.T) {
	tbl, truth := heavyTable(t, 50000, 3)
	idx, err := BuildOutlierIndex(tbl, "v", 500, 0.02, 1, "oi")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.OutlierRows) != 500 {
		t.Fatalf("outliers = %d", len(idx.OutlierRows))
	}
	est, variance := idx.EstimateSum()
	if variance < 0 {
		t.Fatal("negative variance")
	}
	if math.Abs(est-truth)/truth > 0.1 {
		t.Errorf("estimate %v vs truth %v", est, truth)
	}
	if idx.StorageRows() != 500+idx.SampleRows {
		t.Error("storage accounting")
	}
	if idx.BuildVersion != tbl.Version() {
		t.Error("version")
	}
}

func TestOutlierIndexBeatsUniformOnTail(t *testing.T) {
	tbl, truth := heavyTable(t, 50000, 5)
	trials := 15
	var uniErr, oiErr float64
	for tr := 0; tr < trials; tr++ {
		// Uniform at storage-matched rate (0.02 + 0.01 outliers).
		u := NewUniform(0.03, int64(tr)*7+1)
		var est float64
		vcol := tbl.Column(0)
		for i := 0; i < tbl.NumRows(); i++ {
			if d := u.Decide(i, ""); d.Keep {
				est += d.Weight * vcol.Value(i).AsFloat()
			}
		}
		uniErr += math.Abs(est-truth) / truth

		idx, err := BuildOutlierIndex(tbl, "v", 500, 0.02, int64(tr)*13+1, "oi2")
		if err != nil {
			t.Fatal(err)
		}
		oest, _ := idx.EstimateSum()
		oiErr += math.Abs(oest-truth) / truth
	}
	if oiErr >= uniErr {
		t.Errorf("outlier index should beat uniform on Pareto tails: oi=%v uni=%v", oiErr, uniErr)
	}
}

func TestOutlierIndexValidation(t *testing.T) {
	tbl, _ := heavyTable(t, 100, 1)
	if _, err := BuildOutlierIndex(tbl, "v", 0, 0.1, 1, "x"); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := BuildOutlierIndex(tbl, "v", 10, 0, 1, "x"); err == nil {
		t.Error("rate 0 must error")
	}
	if _, err := BuildOutlierIndex(tbl, "nope", 10, 0.1, 1, "x"); err == nil {
		t.Error("unknown column must error")
	}
	s := storage.NewTable("s", storage.Schema{{Name: "name", Type: storage.TypeString}})
	if err := s.AppendRow(storage.Str("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildOutlierIndex(s, "name", 1, 0.5, 1, "x"); err == nil {
		t.Error("non-numeric column must error")
	}
}
