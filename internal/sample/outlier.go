package sample

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/storage"
)

// OutlierIndex implements the outlier-indexing idea from the AQP
// literature the paper builds on (Chaudhuri, Das, Datar, Motwani,
// Narasayya, ICDE 2001): heavy-tailed aggregation columns make uniform
// samples high-variance because a few extreme rows carry much of the sum.
// The fix is to split the table into
//
//   - an exact outlier set: the k rows with the largest |value - median|
//     contribution, always read in full, and
//   - the remainder, answered from an ordinary uniform sample.
//
// SUM(value) = exactSum(outliers) + HT(sample of remainder), whose
// variance only sees the (bounded) remainder.
type OutlierIndex struct {
	// Column is the aggregation column the index protects.
	Column string
	// OutlierRows are the row indexes of src stored exactly.
	OutlierRows []int
	// OutlierSum is the exact sum of Column over the outlier rows.
	OutlierSum float64
	// Sample is the uniform Bernoulli sample of the remainder,
	// materialized with a weight column.
	Sample *storage.Table
	// SampleRows / SourceRows record sizes.
	SampleRows, SourceRows int
	// Rate is the remainder sampling rate.
	Rate float64
	// BuildVersion is the source version at build time.
	BuildVersion uint64
}

// outlierHeap is a min-heap over (deviation, row) keeping the k largest.
type outlierHeap struct {
	dev  []float64
	rows []int
}

func (h *outlierHeap) Len() int           { return len(h.rows) }
func (h *outlierHeap) Less(i, j int) bool { return h.dev[i] < h.dev[j] }
func (h *outlierHeap) Swap(i, j int) {
	h.dev[i], h.dev[j] = h.dev[j], h.dev[i]
	h.rows[i], h.rows[j] = h.rows[j], h.rows[i]
}
func (h *outlierHeap) Push(x any) {
	p := x.([2]float64)
	h.dev = append(h.dev, p[0])
	h.rows = append(h.rows, int(p[1]))
}
func (h *outlierHeap) Pop() any {
	n := len(h.rows) - 1
	out := [2]float64{h.dev[n], float64(h.rows[n])}
	h.dev = h.dev[:n]
	h.rows = h.rows[:n]
	return out
}

// BuildOutlierIndex builds an outlier index over src.column keeping the k
// most deviant rows exactly and sampling the rest at rate p.
func BuildOutlierIndex(src *storage.Table, column string, k int, p float64, seed int64, name string) (*OutlierIndex, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sample: outlier count must be positive")
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("sample: outlier remainder rate %v out of (0,1]", p)
	}
	// Scan a snapshot so the build is safe under concurrent appends.
	src = src.Snapshot()
	colIdx := src.Schema().ColumnIndex(column)
	if colIdx < 0 {
		return nil, fmt.Errorf("sample: outlier column %q not in table %s", column, src.Name())
	}
	col := src.Column(colIdx)
	if !col.Type().Numeric() {
		return nil, fmt.Errorf("sample: outlier column %q is not numeric", column)
	}
	n := src.NumRows()

	// First pass: mean as the deviation center (single-pass Welford).
	var mean float64
	var cnt float64
	for i := 0; i < n; i++ {
		if col.IsNull(i) {
			continue
		}
		cnt++
		mean += (col.Value(i).AsFloat() - mean) / cnt
	}

	// Second pass: top-k by |x - mean| via a size-k min-heap.
	h := &outlierHeap{}
	heap.Init(h)
	for i := 0; i < n; i++ {
		if col.IsNull(i) {
			continue
		}
		dev := math.Abs(col.Value(i).AsFloat() - mean)
		if h.Len() < k {
			heap.Push(h, [2]float64{dev, float64(i)})
		} else if dev > h.dev[0] {
			heap.Pop(h)
			heap.Push(h, [2]float64{dev, float64(i)})
		}
	}
	isOutlier := make(map[int]bool, h.Len())
	idx := &OutlierIndex{Column: column, Rate: p, SourceRows: n, BuildVersion: src.Version()}
	for i, row := range h.rows {
		_ = i
		isOutlier[row] = true
		idx.OutlierRows = append(idx.OutlierRows, row)
		idx.OutlierSum += col.Value(row).AsFloat()
	}

	// Third pass: uniform sample of the remainder with weights.
	u := NewUniform(p, seed)
	outSchema := append(src.Schema().Clone(), storage.ColumnDef{Name: WeightColumn, Type: storage.TypeFloat64})
	out := storage.NewTable(name, outSchema)
	for i := 0; i < n; i++ {
		if isOutlier[i] {
			continue
		}
		d := u.Decide(i, "")
		if !d.Keep {
			continue
		}
		vals := append(src.Row(i), storage.Float64(d.Weight))
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	idx.Sample = out
	idx.SampleRows = out.NumRows()
	return idx, nil
}

// EstimateSum returns the outlier-index estimate of SUM(Column) over src
// and the estimated variance of that estimate: exact outlier sum plus the
// HT estimate over the sampled remainder.
func (idx *OutlierIndex) EstimateSum() (est, variance float64) {
	colIdx := idx.Sample.Schema().ColumnIndex(idx.Column)
	wIdx := idx.Sample.Schema().ColumnIndex(WeightColumn)
	est = idx.OutlierSum
	for i := 0; i < idx.Sample.NumRows(); i++ {
		c := idx.Sample.Column(colIdx)
		if c.IsNull(i) {
			continue
		}
		x := c.Value(i).AsFloat()
		w := idx.Sample.Column(wIdx).Value(i).F
		est += w * x
		variance += w * (w - 1) * x * x
	}
	return est, variance
}

// StorageRows returns the total rows materialized (outliers + sample).
func (idx *OutlierIndex) StorageRows() int { return len(idx.OutlierRows) + idx.SampleRows }
