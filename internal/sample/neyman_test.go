package sample

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// heteroTable builds strata with wildly different spreads: group 0 is
// constant, group 1 moderate, group 2 heavy.
func heteroTable(t *testing.T, perGroup int, seed int64) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("h", storage.Schema{
		{Name: "g", Type: storage.TypeInt64},
		{Name: "v", Type: storage.TypeFloat64},
	})
	rng := rand.New(rand.NewSource(seed))
	for g := 0; g < 3; g++ {
		for i := 0; i < perGroup; i++ {
			var v float64
			switch g {
			case 0:
				v = 10 // constant
			case 1:
				v = 100 + rng.NormFloat64()*10
			default:
				v = 1000 + rng.NormFloat64()*500
			}
			if err := tbl.AppendRow(storage.Int64(int64(g)), storage.Float64(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

func TestBuildStratifiedNeymanAllocatesBySpread(t *testing.T) {
	tbl := heteroTable(t, 2000, 3)
	res, err := BuildStratifiedNeyman(tbl, NeymanConfig{
		KeyColumns: []string{"g"}, ValueColumn: "v", TotalBudget: 600, Seed: 1}, "ny")
	if err != nil {
		t.Fatal(err)
	}
	if res.Strata != 3 {
		t.Fatalf("strata = %d", res.Strata)
	}
	// Count sampled rows per group: the heavy group must dominate.
	gIdx := res.Table.Schema().ColumnIndex("g")
	counts := map[int64]int{}
	for i := 0; i < res.Table.NumRows(); i++ {
		counts[res.Table.Column(gIdx).Value(i).I]++
	}
	if counts[2] <= counts[1] || counts[1] <= counts[0] {
		t.Errorf("allocation should follow spread: %v", counts)
	}
	if counts[0] < 1 {
		t.Error("constant stratum still needs a representative")
	}
	// Budget respected (within rounding).
	if res.SampleRows > 620 {
		t.Errorf("sample rows = %d over budget", res.SampleRows)
	}
	// HT count is exact: Σ weights = population.
	wIdx := res.Table.Schema().ColumnIndex(WeightColumn)
	var htCount float64
	for i := 0; i < res.Table.NumRows(); i++ {
		htCount += res.Table.Column(wIdx).Value(i).F
	}
	if math.Abs(htCount-6000) > 1e-6 {
		t.Errorf("HT count = %v, want 6000", htCount)
	}
}

func TestNeymanBeatsEqualCapEmpirically(t *testing.T) {
	tbl := heteroTable(t, 3000, 9)
	// True sum.
	vIdx := tbl.Schema().ColumnIndex("v")
	var truth float64
	for i := 0; i < tbl.NumRows(); i++ {
		truth += tbl.Column(vIdx).Value(i).F
	}
	sumOf := func(st *StratifiedResult) float64 {
		vi := st.Table.Schema().ColumnIndex("v")
		wi := st.Table.Schema().ColumnIndex(WeightColumn)
		var s float64
		for i := 0; i < st.Table.NumRows(); i++ {
			s += st.Table.Column(vi).Value(i).F * st.Table.Column(wi).Value(i).F
		}
		return s
	}
	trials := 25
	var neyErr, eqErr float64
	for tr := 0; tr < trials; tr++ {
		ney, err := BuildStratifiedNeyman(tbl, NeymanConfig{
			KeyColumns: []string{"g"}, ValueColumn: "v", TotalBudget: 300,
			Seed: int64(tr) * 7}, "n")
		if err != nil {
			t.Fatal(err)
		}
		eq, err := BuildStratified(tbl, StratifiedConfig{
			KeyColumns: []string{"g"}, CapPerStratum: 100, Seed: int64(tr) * 7}, "e")
		if err != nil {
			t.Fatal(err)
		}
		neyErr += math.Abs(sumOf(ney)-truth) / truth
		eqErr += math.Abs(sumOf(eq)-truth) / truth
	}
	if neyErr >= eqErr {
		t.Errorf("Neyman allocation should beat equal caps at equal budget: %v vs %v",
			neyErr/float64(trials), eqErr/float64(trials))
	}
}

func TestBuildStratifiedNeymanValidation(t *testing.T) {
	tbl := heteroTable(t, 10, 1)
	if _, err := BuildStratifiedNeyman(tbl, NeymanConfig{
		KeyColumns: []string{"g"}, ValueColumn: "v"}, "x"); err == nil {
		t.Error("zero budget must error")
	}
	if _, err := BuildStratifiedNeyman(tbl, NeymanConfig{
		KeyColumns: []string{"nope"}, ValueColumn: "v", TotalBudget: 10}, "x"); err == nil {
		t.Error("bad key column must error")
	}
	if _, err := BuildStratifiedNeyman(tbl, NeymanConfig{
		KeyColumns: []string{"g"}, ValueColumn: "nope", TotalBudget: 10}, "x"); err == nil {
		t.Error("bad value column must error")
	}
}
