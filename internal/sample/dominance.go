package sample

// Accuracy dominance — the partial order Quickr uses to reason about
// sampler placement: spec A dominates spec B when, for every row, A's
// inclusion probability is at least B's (and A's pass-through guarantees
// subsume B's). A dominating sampler is never less accurate for linear
// aggregates, so the planner may freely substitute it; incomparable specs
// (e.g. block vs row sampling, whose relative accuracy depends on the
// physical layout — see experiment E15) must not be swapped on accuracy
// grounds.

// Dominates reports whether sampling with a is guaranteed to be at least
// as accurate as sampling with b for linear aggregates, based on
// pointwise inclusion probabilities. It is conservative: false means
// "not provably dominant", not "worse".
func Dominates(a, b Spec) bool {
	// Exact (no sampling) dominates everything.
	if a.Kind == KindNone {
		return true
	}
	if b.Kind == KindNone {
		return false
	}
	// Weight suppression breaks estimator comparability.
	if a.NoWeight != b.NoWeight {
		return false
	}
	switch {
	case a.Kind == b.Kind:
		return dominatesSameKind(a, b)
	case a.Kind == KindDistinct && b.Kind == KindUniformRow:
		// The distinct sampler includes every row with probability at
		// least its tail rate, and the first KeepThreshold rows of every
		// stratum with certainty: pointwise ≥ uniform at the same rate.
		return a.Rate >= b.Rate
	case a.Kind == KindUniformRow && b.Kind == KindBiLevel:
		// uniform(p) == bilevel(1, p); more generally uniform dominates
		// any bi-level scheme with the same or smaller overall rate,
		// since it removes the block-stage correlation.
		return a.Rate >= b.Rate*b.RowRate
	case a.Kind == KindBiLevel && b.Kind == KindBlock:
		// Bi-level with block rate ≥ b's rate and row rate 1 degenerates
		// to b; only that boundary case is provable.
		return a.RowRate == 1 && a.Rate >= b.Rate
	default:
		// Cross-kind pairs (block vs row, universe vs anything keyed
		// differently) are incomparable in general.
		return false
	}
}

func dominatesSameKind(a, b Spec) bool {
	switch a.Kind {
	case KindUniformRow, KindBlock:
		return a.Rate >= b.Rate
	case KindUniverse:
		// Universe samplers are only comparable on the same key domain
		// and salt (otherwise they keep unrelated key subsets).
		return sameKeyColumns(a.KeyColumns, b.KeyColumns) && a.Salt == b.Salt && a.Rate >= b.Rate
	case KindDistinct:
		return sameKeyColumns(a.KeyColumns, b.KeyColumns) &&
			a.Rate >= b.Rate && a.KeepThreshold >= b.KeepThreshold
	case KindBiLevel:
		// Both stages must be at least as inclusive.
		return a.Rate >= b.Rate && a.RowRate >= b.RowRate
	}
	return false
}

func sameKeyColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equivalent reports mutual dominance: the two specs have identical
// pointwise inclusion behavior for accuracy purposes.
func Equivalent(a, b Spec) bool {
	return Dominates(a, b) && Dominates(b, a)
}
