package sample

import "repro/internal/storage"

// Lineage is the build watermark of a materialized sample: the source
// table's version and row count at construction time. It is the minimal
// provenance needed to attribute estimator failures observed later (e.g.
// by an accuracy audit) to data that arrived after the sample was drawn,
// as opposed to a defective estimator.
type Lineage struct {
	Version uint64
	Rows    int
}

// Lineage returns the build watermark recorded at construction.
func (r *StratifiedResult) Lineage() Lineage {
	return Lineage{Version: r.BuildVersion, Rows: r.SourceRows}
}

// Fresh reports whether the source table is unchanged since the build.
func (l Lineage) Fresh(src *storage.Table) bool {
	return src != nil && src.Version() == l.Version
}

// RowsAppendedSince returns how many rows the source table has gained
// since the build (0 when the table shrank or is nil — truncation is a
// rebuild signal in its own right, not an append count).
func (l Lineage) RowsAppendedSince(src *storage.Table) int {
	if src == nil {
		return 0
	}
	if d := src.NumRows() - l.Rows; d > 0 {
		return d
	}
	return 0
}
