package sample

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/storage"
)

// WeightColumn is the name of the hidden Horvitz–Thompson weight column
// appended to materialized sample tables. Executors recognize it and use
// it as the row weight.
const WeightColumn = "__aqp_weight"

// StratifiedConfig controls offline stratified-sample construction
// (the BlinkDB-style "sample over a query column set").
type StratifiedConfig struct {
	// KeyColumns is the query column set (QCS) to stratify on.
	KeyColumns []string
	// CapPerStratum is K: each stratum keeps at most K rows (uniformly at
	// random within the stratum), so rare groups are kept whole and big
	// groups are thinned. Must be positive.
	CapPerStratum int
	// Seed drives the per-stratum reservoirs.
	Seed int64
}

// StratifiedResult is a materialized stratified sample: a table with the
// source schema plus a trailing weight column, and build metadata.
type StratifiedResult struct {
	Table        *storage.Table
	SourceRows   int
	SampleRows   int
	Strata       int
	SourceName   string
	KeyColumns   []string
	CapPerStrata int
	// BuildVersion is the source table's Version() at build time; compare
	// with the live version to detect staleness.
	BuildVersion uint64
}

// Fraction returns the achieved sampling fraction.
func (r *StratifiedResult) Fraction() float64 {
	if r.SourceRows == 0 {
		return 0
	}
	return float64(r.SampleRows) / float64(r.SourceRows)
}

// BuildStratified materializes a stratified sample of src. Each distinct
// combination of cfg.KeyColumns forms a stratum; a per-stratum reservoir
// of cfg.CapPerStratum rows is kept, and each kept row is assigned weight
// strataSize/min(strataSize, K).
func BuildStratified(src *storage.Table, cfg StratifiedConfig, name string) (*StratifiedResult, error) {
	if cfg.CapPerStratum <= 0 {
		return nil, fmt.Errorf("sample: stratified cap must be positive")
	}
	// Scan a snapshot so the build is safe under concurrent appends.
	src = src.Snapshot()

	keyIdx := make([]int, len(cfg.KeyColumns))
	for i, col := range cfg.KeyColumns {
		idx := src.Schema().ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("sample: stratify column %q not in table %s", col, src.Name())
		}
		keyIdx[i] = idx
	}
	version := src.Version()
	n := src.NumRows()

	type stratum struct {
		res  *Reservoir[int]
		size int
	}
	strata := make(map[string]*stratum)
	keyVals := make([]storage.Value, len(keyIdx))
	for i := 0; i < n; i++ {
		for j, idx := range keyIdx {
			keyVals[j] = src.Column(idx).Value(i)
		}
		key := KeyOf(keyVals)
		st, ok := strata[key]
		if !ok {
			st = &stratum{res: NewReservoir[int](cfg.CapPerStratum, cfg.Seed+int64(len(strata)))}
			strata[key] = st
		}
		st.res.Add(i)
		st.size++
	}

	outSchema := append(src.Schema().Clone(), storage.ColumnDef{Name: WeightColumn, Type: storage.TypeFloat64})
	out := storage.NewTable(name, outSchema)

	// Deterministic output order: sort strata keys, then row indexes.
	keys := make([]string, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := strata[k]
		rows := append([]int(nil), st.res.Items()...)
		sort.Ints(rows)
		w := float64(st.size) / float64(len(rows))
		for _, ri := range rows {
			vals := src.Row(ri)
			vals = append(vals, storage.Float64(w))
			if err := out.AppendRow(vals...); err != nil {
				return nil, err
			}
		}
	}
	return &StratifiedResult{
		Table:        out,
		SourceRows:   n,
		SampleRows:   out.NumRows(),
		Strata:       len(strata),
		SourceName:   src.Name(),
		KeyColumns:   append([]string(nil), cfg.KeyColumns...),
		CapPerStrata: cfg.CapPerStratum,
		BuildVersion: version,
	}, nil
}

// NeymanConfig controls variance-optimal stratified construction.
type NeymanConfig struct {
	// KeyColumns is the stratification column set.
	KeyColumns []string
	// ValueColumn is the numeric aggregation column whose per-stratum
	// spread drives the allocation (n_h ∝ N_h·S_h).
	ValueColumn string
	// TotalBudget is the target total sample size in rows.
	TotalBudget int
	// Seed drives the per-stratum reservoirs.
	Seed int64
}

// BuildStratifiedNeyman materializes a stratified sample whose per-stratum
// allocation minimizes the variance of SUM(ValueColumn) estimates for a
// fixed total budget (Neyman/optimal allocation — the STRAT-style upgrade
// over equal per-stratum caps). Two passes: stratum statistics, then
// per-stratum reservoirs at their allocated sizes.
func BuildStratifiedNeyman(src *storage.Table, cfg NeymanConfig, name string) (*StratifiedResult, error) {
	if cfg.TotalBudget <= 0 {
		return nil, fmt.Errorf("sample: Neyman budget must be positive")
	}
	// Scan a snapshot so the build is safe under concurrent appends.
	src = src.Snapshot()

	keyIdx := make([]int, len(cfg.KeyColumns))
	for i, col := range cfg.KeyColumns {
		idx := src.Schema().ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("sample: stratify column %q not in table %s", col, src.Name())
		}
		keyIdx[i] = idx
	}
	valIdx := src.Schema().ColumnIndex(cfg.ValueColumn)
	if valIdx < 0 {
		return nil, fmt.Errorf("sample: value column %q not in table %s", cfg.ValueColumn, src.Name())
	}
	if !src.Schema()[valIdx].Type.Numeric() {
		return nil, fmt.Errorf("sample: value column %q is not numeric", cfg.ValueColumn)
	}
	version := src.Version()
	n := src.NumRows()

	// Pass 1: per-stratum size and spread (Welford).
	type stratStat struct {
		n, mean, m2 float64
	}
	statsBy := make(map[string]*stratStat)
	var order []string
	keyVals := make([]storage.Value, len(keyIdx))
	for i := 0; i < n; i++ {
		for j, idx := range keyIdx {
			keyVals[j] = src.Column(idx).Value(i)
		}
		key := KeyOf(keyVals)
		st, ok := statsBy[key]
		if !ok {
			st = &stratStat{}
			statsBy[key] = st
			order = append(order, key)
		}
		st.n++
		x := src.Column(valIdx).Value(i).AsFloat()
		d := x - st.mean
		st.mean += d / st.n
		st.m2 += d * (x - st.mean)
	}
	sort.Strings(order)
	sizes := make([]float64, len(order))
	devs := make([]float64, len(order))
	for h, key := range order {
		st := statsBy[key]
		sizes[h] = st.n
		if st.n > 1 {
			devs[h] = math.Sqrt(st.m2 / st.n)
		}
	}
	alloc := stats.NeymanAllocation(sizes, devs, float64(cfg.TotalBudget))
	capBy := make(map[string]int, len(order))
	for h, key := range order {
		c := int(alloc[h] + 0.5)
		if c < 1 {
			c = 1
		}
		capBy[key] = c
	}

	// Pass 2: per-stratum reservoirs at the allocated sizes.
	res := make(map[string]*Reservoir[int], len(order))
	for h, key := range order {
		res[key] = NewReservoir[int](capBy[key], cfg.Seed+int64(h))
	}
	for i := 0; i < n; i++ {
		for j, idx := range keyIdx {
			keyVals[j] = src.Column(idx).Value(i)
		}
		res[KeyOf(keyVals)].Add(i)
	}

	outSchema := append(src.Schema().Clone(), storage.ColumnDef{Name: WeightColumn, Type: storage.TypeFloat64})
	out := storage.NewTable(name, outSchema)
	for _, key := range order {
		r := res[key]
		rows := append([]int(nil), r.Items()...)
		sort.Ints(rows)
		w := float64(statsBy[key].n) / float64(len(rows))
		for _, ri := range rows {
			vals := append(src.Row(ri), storage.Float64(w))
			if err := out.AppendRow(vals...); err != nil {
				return nil, err
			}
		}
	}
	return &StratifiedResult{
		Table:        out,
		SourceRows:   n,
		SampleRows:   out.NumRows(),
		Strata:       len(order),
		SourceName:   src.Name(),
		KeyColumns:   append([]string(nil), cfg.KeyColumns...),
		BuildVersion: version,
	}, nil
}

// BuildUniformTable materializes a uniform Bernoulli sample of src at rate
// p as a standalone table with a weight column (all weights 1/p).
func BuildUniformTable(src *storage.Table, p float64, seed int64, name string) (*StratifiedResult, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("sample: uniform rate %v out of (0,1]", p)
	}
	// Scan a snapshot so the build is safe under concurrent appends.
	src = src.Snapshot()

	version := src.Version()
	n := src.NumRows()
	u := NewUniform(p, seed)
	outSchema := append(src.Schema().Clone(), storage.ColumnDef{Name: WeightColumn, Type: storage.TypeFloat64})
	out := storage.NewTable(name, outSchema)
	for i := 0; i < n; i++ {
		d := u.Decide(i, "")
		if !d.Keep {
			continue
		}
		vals := append(src.Row(i), storage.Float64(d.Weight))
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return &StratifiedResult{
		Table:        out,
		SourceRows:   n,
		SampleRows:   out.NumRows(),
		Strata:       1,
		SourceName:   src.Name(),
		BuildVersion: version,
	}, nil
}
