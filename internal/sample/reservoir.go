package sample

import "math/rand"

// Reservoir maintains a uniform without-replacement sample of fixed
// capacity k over a stream of unknown length (Algorithm R).
type Reservoir[T any] struct {
	k     int
	seen  int
	items []T
	rng   *rand.Rand
}

// NewReservoir returns an empty reservoir of capacity k.
func NewReservoir[T any](k int, seed int64) *Reservoir[T] {
	return &Reservoir[T]{k: k, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one stream element to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	j := r.rng.Intn(r.seen)
	if j < r.k {
		r.items[j] = item
	}
}

// Items returns the current sample (shared slice; do not mutate).
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns the number of elements offered so far.
func (r *Reservoir[T]) Seen() int { return r.seen }

// Weight returns the Horvitz–Thompson weight of each retained element:
// seen/k when the reservoir is full, 1 otherwise.
func (r *Reservoir[T]) Weight() float64 {
	if len(r.items) == 0 {
		return 0
	}
	if r.seen <= r.k {
		return 1
	}
	return float64(r.seen) / float64(r.k)
}
