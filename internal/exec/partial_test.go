package exec

import (
	"context"
	"math"
	"testing"

	"repro/internal/storage"
)

// TestPartialFinalizeMatchesDirect: computing the aggregate as a partial
// and finalizing it must be bit-identical to the direct execution path —
// both fold the same group states in the same order, and the gather chain
// rebuilds the same above-aggregate operators.
func TestPartialFinalizeMatchesDirect(t *testing.T) {
	cat := parallelCatalog(t, 40_000)
	queries := append([]string{}, parallelQueries...)
	queries = append(queries,
		"SELECT g, SUM(v) AS s FROM ev GROUP BY g HAVING SUM(v) > 1000 ORDER BY g",
		"SELECT g, COUNT(*) FROM ev GROUP BY g ORDER BY g LIMIT 3",
	)
	for _, sql := range queries {
		direct, err := RunParallel(buildPlan(t, cat, sql), 4)
		if err != nil {
			t.Fatalf("direct %q: %v", sql, err)
		}
		p := buildPlan(t, cat, sql)
		part, err := RunAggPartialContext(context.Background(), p, 4)
		if err != nil {
			t.Fatalf("partial %q: %v", sql, err)
		}
		// A single partial merges as a move: no float is touched.
		merged := MergeAggPartials([]*AggPartial{nil, part, nil})
		if merged != part {
			t.Fatalf("%q: single-partial merge did not reuse the partial", sql)
		}
		got, err := FinalizeAggPartial(context.Background(), p, merged)
		if err != nil {
			t.Fatalf("finalize %q: %v", sql, err)
		}
		assertResultsBitIdentical(t, sql, direct, got)
	}
}

// TestMergedPartialsMatchWholeTable: running partials over two disjoint
// halves of the data and merging them must agree with the whole-table run
// (to float tolerance: the split changes the summation bracketing).
func TestMergedPartialsMatchWholeTable(t *testing.T) {
	cat := parallelCatalog(t, 20_000)
	whole, err := cat.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	halves := []*storage.Table{
		storage.NewTableWithBlockSize("ev", whole.Schema().Clone(), whole.BlockSize()),
		storage.NewTableWithBlockSize("ev", whole.Schema().Clone(), whole.BlockSize()),
	}
	cut := whole.NumRows() / 2
	for i := 0; i < whole.NumRows(); i++ {
		dst := 0
		if i >= cut {
			dst = 1
		}
		if err := halves[dst].AppendRow(whole.Row(i)...); err != nil {
			t.Fatal(err)
		}
	}

	sql := "SELECT g, COUNT(*), SUM(v), AVG(v) FROM ev GROUP BY g ORDER BY g"
	direct, err := RunParallel(buildPlan(t, cat, sql), 4)
	if err != nil {
		t.Fatal(err)
	}

	var parts []*AggPartial
	for _, h := range halves {
		hcat := storage.NewCatalog()
		if err := hcat.Add(h); err != nil {
			t.Fatal(err)
		}
		part, err := RunAggPartialContext(context.Background(), buildPlan(t, hcat, sql), 2)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, part)
	}
	merged := MergeAggPartials(parts)
	got, err := FinalizeAggPartial(context.Background(), buildPlan(t, cat, sql), merged)
	if err != nil {
		t.Fatal(err)
	}

	if got.NumRows() != direct.NumRows() {
		t.Fatalf("row count: merged %d vs direct %d", got.NumRows(), direct.NumRows())
	}
	for i := range direct.Rows {
		for j := range direct.Rows[i] {
			dv, gv := direct.Value(i, j), got.Value(i, j)
			if dv.Typ == storage.TypeFloat64 && !dv.IsNull() {
				d, g := dv.AsFloat(), gv.AsFloat()
				if math.Abs(d-g) > 1e-9*math.Max(1, math.Abs(d)) {
					t.Errorf("row %d col %d: merged %v vs direct %v", i, j, g, d)
				}
				continue
			}
			if dv != gv {
				t.Errorf("row %d col %d: merged %v vs direct %v", i, j, gv, dv)
			}
		}
	}
}

// TestGatherableShapes: only single-aggregate chains are gatherable.
func TestGatherableShapes(t *testing.T) {
	cat := parallelCatalog(t, 1_000)
	for sql, want := range map[string]bool{
		"SELECT SUM(v) FROM ev": true,
		"SELECT g, SUM(v) FROM ev GROUP BY g HAVING SUM(v) > 0 ORDER BY g LIMIT 2": true,
		"SELECT k, v FROM ev": false, // no aggregate
	} {
		if got := Gatherable(buildPlan(t, cat, sql)); got != want {
			t.Errorf("Gatherable(%q) = %v, want %v", sql, got, want)
		}
	}
}

// TestScaleForCoverage: scaling a partial rescales SUM/COUNT estimates by
// r (variances by r²) and leaves AVG untouched, end to end through
// finalize.
func TestScaleForCoverage(t *testing.T) {
	cat := parallelCatalog(t, 10_000)
	sql := "SELECT COUNT(*) AS c, SUM(v) AS s, AVG(v) AS a FROM ev TABLESAMPLE BERNOULLI (20)"
	p := buildPlan(t, cat, sql)
	base, err := RunAggPartialContext(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FinalizeAggPartial(context.Background(), buildPlan(t, cat, sql), base)
	if err != nil {
		t.Fatal(err)
	}

	scaled, err := RunAggPartialContext(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	scaled.ScaleForCoverage(2)
	got, err := FinalizeAggPartial(context.Background(), buildPlan(t, cat, sql), scaled)
	if err != nil {
		t.Fatal(err)
	}

	refDet, gotDet := ref.Details[0], got.Details[0]
	// COUNT and SUM double, with 4× variance.
	for _, j := range []int{0, 1} {
		if math.Abs(gotDet.Aggs[j].Estimate-2*refDet.Aggs[j].Estimate) > 1e-6*math.Abs(refDet.Aggs[j].Estimate) {
			t.Errorf("agg %d estimate %v, want 2·%v", j, gotDet.Aggs[j].Estimate, refDet.Aggs[j].Estimate)
		}
		if math.Abs(gotDet.Aggs[j].Variance-4*refDet.Aggs[j].Variance) > 1e-6*math.Abs(refDet.Aggs[j].Variance) {
			t.Errorf("agg %d variance %v, want 4·%v", j, gotDet.Aggs[j].Variance, refDet.Aggs[j].Variance)
		}
	}
	// AVG is a ratio: invariant (bitwise, r = 2).
	if math.Float64bits(gotDet.Aggs[2].Estimate) != math.Float64bits(refDet.Aggs[2].Estimate) {
		t.Errorf("avg estimate changed: %v vs %v", gotDet.Aggs[2].Estimate, refDet.Aggs[2].Estimate)
	}
	if math.Float64bits(gotDet.Aggs[2].Variance) != math.Float64bits(refDet.Aggs[2].Variance) {
		t.Errorf("avg variance changed: %v vs %v", gotDet.Aggs[2].Variance, refDet.Aggs[2].Variance)
	}
}

// assertResultsBitIdentical requires identical rows (bitwise for floats)
// and identical per-group statistical details.
func assertResultsBitIdentical(t *testing.T, sql string, want, got *Result) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%q: %d rows vs %d", sql, got.NumRows(), want.NumRows())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			wv, gv := want.Value(i, j), got.Value(i, j)
			if wv.Typ == storage.TypeFloat64 && !wv.IsNull() && !gv.IsNull() {
				if math.Float64bits(wv.AsFloat()) != math.Float64bits(gv.AsFloat()) {
					t.Fatalf("%q row %d col %d: %v vs %v (bits differ)", sql, i, j, gv, wv)
				}
				continue
			}
			if wv != gv {
				t.Fatalf("%q row %d col %d: %v vs %v", sql, i, j, gv, wv)
			}
		}
	}
	if len(want.Details) != len(got.Details) {
		t.Fatalf("%q: %d details vs %d", sql, len(got.Details), len(want.Details))
	}
	for i := range want.Details {
		wd, gd := want.Details[i], got.Details[i]
		if wd.Key != gd.Key || wd.GroupN != gd.GroupN || len(wd.Aggs) != len(gd.Aggs) {
			t.Fatalf("%q detail %d: %+v vs %+v", sql, i, gd, wd)
		}
		for j := range wd.Aggs {
			if math.Float64bits(wd.Aggs[j].Estimate) != math.Float64bits(gd.Aggs[j].Estimate) ||
				math.Float64bits(wd.Aggs[j].Variance) != math.Float64bits(gd.Aggs[j].Variance) {
				t.Fatalf("%q detail %d agg %d: %+v vs %+v", sql, i, j, gd.Aggs[j], wd.Aggs[j])
			}
		}
	}
}
