package exec

// Wire serialization of AggPartial states.
//
// Remote shards return their partial aggregation state over an HTTP/JSON
// seam, and the gather step merges the decoded partials exactly as it
// merges in-process ones. Bit-reproducibility is a repository guarantee,
// so the codec must be lossless to the bit: every float64 is rendered as
// its shortest decimal form that parses back to the identical bits
// (strconv 'g'/-1, which also round-trips ±0, ±Inf, and NaN), group
// states are emitted in sorted key order, and distinct sets as sorted
// slices, so encoding is deterministic and golden-testable. The schema is
// versioned; decoding an unknown version is refused loudly rather than
// guessed at — a silently misread accumulator would be a silently wrong
// answer.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/stats"
	"repro/internal/storage"
)

// AggPartialWireVersion is the current wire schema version for
// serialized partial aggregation states.
const AggPartialWireVersion = 1

// encF renders a float64 as the shortest decimal string that parses back
// to the same bits.
func encF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func decF(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("exec: wire float %q: %w", s, err)
	}
	return f, nil
}

// wireValue is a storage.Value on the wire. The float field travels as a
// decimal string so ±0 and full precision survive the round trip.
type wireValue struct {
	T    uint8  `json:"t"`
	Null bool   `json:"null,omitempty"`
	I    int64  `json:"i,omitempty"`
	F    string `json:"f,omitempty"`
	S    string `json:"s,omitempty"`
	B    bool   `json:"b,omitempty"`
}

func encValue(v storage.Value) wireValue {
	w := wireValue{T: uint8(v.Typ), Null: v.Null, I: v.I, S: v.S, B: v.B}
	if v.F != 0 || math.Signbit(v.F) {
		w.F = encF(v.F)
	}
	return w
}

func decValue(w wireValue) (storage.Value, error) {
	v := storage.Value{Typ: storage.Type(w.T), Null: w.Null, I: w.I, S: w.S, B: w.B}
	if w.F != "" {
		f, err := decF(w.F)
		if err != nil {
			return storage.Value{}, err
		}
		v.F = f
	}
	return v, nil
}

// wireHT is the exported Horvitz–Thompson accumulator, fields as float
// strings.
type wireHT struct {
	Sum    string `json:"sum"`
	VarSum string `json:"var_sum"`
	N      string `json:"n"`
	WTot   string `json:"w_tot"`
	W2Tot  string `json:"w2_tot"`
	CovSN  string `json:"cov_sn"`
}

func encHT(s stats.HTState) wireHT {
	return wireHT{Sum: encF(s.Sum), VarSum: encF(s.VarSum), N: encF(s.N),
		WTot: encF(s.WTot), W2Tot: encF(s.W2Tot), CovSN: encF(s.CovSN)}
}

func decHT(w wireHT) (stats.HTState, error) {
	var s stats.HTState
	var err error
	for _, f := range []struct {
		src string
		dst *float64
	}{
		{w.Sum, &s.Sum}, {w.VarSum, &s.VarSum}, {w.N, &s.N},
		{w.WTot, &s.WTot}, {w.W2Tot, &s.W2Tot}, {w.CovSN, &s.CovSN},
	} {
		if *f.dst, err = decF(f.src); err != nil {
			return s, err
		}
	}
	return s, nil
}

// wireAgg is one aggregate slot's accumulator: the HT state plus the
// slot-specific extras (extrema, distinct set, percentile observations).
// Weight-1 per-stratum keeps from the distinct sampler are ordinary rows
// here — their w(w-1)=0 terms contribute zero variance, which is the FPC
// behavior the estimator encodes.
type wireAgg struct {
	HT         wireHT     `json:"ht"`
	Min        *wireValue `json:"min,omitempty"`
	Max        *wireValue `json:"max,omitempty"`
	Distinct   []string   `json:"distinct,omitempty"`
	Weighted   bool       `json:"weighted,omitempty"`
	NonNull    string     `json:"non_null"`
	PctVals    []string   `json:"pct_vals,omitempty"`
	PctWeights []string   `json:"pct_weights,omitempty"`
}

type wireGroup struct {
	Key      string      `json:"key"`
	GroupVal []wireValue `json:"group_val,omitempty"`
	N        string      `json:"n"`
	Aggs     []wireAgg   `json:"aggs"`
}

type aggPartialWire struct {
	V        int         `json:"v"`
	Counters Counters    `json:"counters"`
	Groups   []wireGroup `json:"groups"`
}

// EncodeAggPartialWire serializes a partial aggregation state. The output
// is deterministic: groups are emitted in sorted key order and distinct
// sets as sorted slices.
func EncodeAggPartialWire(p *AggPartial) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("exec: cannot encode a nil partial")
	}
	w := aggPartialWire{V: AggPartialWireVersion, Counters: p.Counters, Groups: []wireGroup{}}
	keys := make([]string, 0, len(p.groups))
	for k := range p.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		gs := p.groups[k]
		wg := wireGroup{Key: gs.key, N: encF(gs.n)}
		for _, v := range gs.groupVal {
			wg.GroupVal = append(wg.GroupVal, encValue(v))
		}
		for _, st := range gs.aggs {
			wa := wireAgg{HT: encHT(st.ht.State()), Weighted: st.weighted, NonNull: encF(st.nonNull)}
			if !st.min.IsNull() {
				v := encValue(st.min)
				wa.Min = &v
			}
			if !st.max.IsNull() {
				v := encValue(st.max)
				wa.Max = &v
			}
			if st.distinct != nil {
				wa.Distinct = make([]string, 0, len(st.distinct))
				for d := range st.distinct {
					wa.Distinct = append(wa.Distinct, d)
				}
				sort.Strings(wa.Distinct)
			}
			for _, f := range st.pctVals {
				wa.PctVals = append(wa.PctVals, encF(f))
			}
			for _, f := range st.pctWeights {
				wa.PctWeights = append(wa.PctWeights, encF(f))
			}
			wg.Aggs = append(wg.Aggs, wa)
		}
		w.Groups = append(w.Groups, wg)
	}
	return json.Marshal(w)
}

// DecodeAggPartialWire deserializes a partial aggregation state. Unknown
// schema versions are rejected loudly: misreading an accumulator would
// produce a silently wrong answer, which this repository never does.
func DecodeAggPartialWire(data []byte) (*AggPartial, error) {
	var w aggPartialWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("exec: decode partial wire: %w", err)
	}
	if w.V != AggPartialWireVersion {
		return nil, fmt.Errorf("exec: partial wire version %d unsupported (this build speaks v%d): refusing to guess at an accumulator schema", w.V, AggPartialWireVersion)
	}
	p := &AggPartial{groups: make(map[string]*groupState, len(w.Groups)), Counters: w.Counters}
	for _, wg := range w.Groups {
		gs := &groupState{key: wg.Key}
		var err error
		if gs.n, err = decF(wg.N); err != nil {
			return nil, err
		}
		for _, wv := range wg.GroupVal {
			v, err := decValue(wv)
			if err != nil {
				return nil, err
			}
			gs.groupVal = append(gs.groupVal, v)
		}
		for _, wa := range wg.Aggs {
			st := &aggState{weighted: wa.Weighted}
			hs, err := decHT(wa.HT)
			if err != nil {
				return nil, err
			}
			st.ht = stats.HTFromState(hs)
			if st.nonNull, err = decF(wa.NonNull); err != nil {
				return nil, err
			}
			if wa.Min != nil {
				if st.min, err = decValue(*wa.Min); err != nil {
					return nil, err
				}
			}
			if wa.Max != nil {
				if st.max, err = decValue(*wa.Max); err != nil {
					return nil, err
				}
			}
			if wa.Distinct != nil {
				st.distinct = make(map[string]struct{}, len(wa.Distinct))
				for _, d := range wa.Distinct {
					st.distinct[d] = struct{}{}
				}
			}
			for _, s := range wa.PctVals {
				f, err := decF(s)
				if err != nil {
					return nil, err
				}
				st.pctVals = append(st.pctVals, f)
			}
			for _, s := range wa.PctWeights {
				f, err := decF(s)
				if err != nil {
					return nil, err
				}
				st.pctWeights = append(st.pctWeights, f)
			}
			gs.aggs = append(gs.aggs, st)
		}
		p.groups[gs.key] = gs
	}
	return p, nil
}
