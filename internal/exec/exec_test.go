package exec

import (
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// testCatalog builds a small deterministic catalog:
//
//	emp(id, dept, pay, age)   — 10 rows
//	dept(dname, budget)       — 3 rows
func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	emp := storage.NewTableWithBlockSize("emp", storage.Schema{
		{Name: "id", Type: storage.TypeInt64},
		{Name: "dept", Type: storage.TypeString},
		{Name: "pay", Type: storage.TypeFloat64},
		{Name: "age", Type: storage.TypeInt64},
	}, 4)
	rows := []struct {
		id   int64
		dept string
		pay  float64
		age  int64
	}{
		{1, "eng", 100, 30},
		{2, "eng", 110, 35},
		{3, "eng", 120, 40},
		{4, "sales", 80, 25},
		{5, "sales", 90, 45},
		{6, "hr", 70, 50},
		{7, "eng", 130, 28},
		{8, "sales", 85, 33},
		{9, "hr", 75, 38},
		{10, "eng", 140, 42},
	}
	for _, r := range rows {
		if err := emp.AppendRow(storage.Int64(r.id), storage.Str(r.dept),
			storage.Float64(r.pay), storage.Int64(r.age)); err != nil {
			t.Fatal(err)
		}
	}
	dept := storage.NewTable("dept", storage.Schema{
		{Name: "dname", Type: storage.TypeString},
		{Name: "budget", Type: storage.TypeFloat64},
	})
	for _, d := range []struct {
		n string
		b float64
	}{{"eng", 1000}, {"sales", 500}, {"hr", 200}} {
		if err := dept.AppendRow(storage.Str(d.n), storage.Float64(d.b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(dept); err != nil {
		t.Fatal(err)
	}
	return cat
}

func runSQL(t *testing.T, cat *storage.Catalog, sql string) *Result {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	res, err := Run(p)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func f(t *testing.T, r *Result, i, j int) float64 {
	t.Helper()
	return r.Value(i, j).AsFloat()
}

func TestScanProject(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT id, pay FROM emp")
	if res.NumRows() != 10 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Schema[0].Name != "id" || res.Schema[1].Name != "pay" {
		t.Fatalf("schema = %v", res.Schema.Names())
	}
	if res.Counters.RowsScanned != 10 || res.Counters.Passes != 1 {
		t.Fatalf("counters = %+v", res.Counters)
	}
}

func TestFilterPushdown(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT id FROM emp WHERE pay > 100 AND dept = 'eng'")
	if res.NumRows() != 4 { // ids 2,3,7,10
		t.Fatalf("rows = %d", res.NumRows())
	}
	// Also verify via plan explain that the filter reached the scan.
	stmt, _ := sqlparse.Parse("SELECT id FROM emp WHERE pay > 100")
	p, _ := plan.Build(stmt, cat)
	scans := plan.Scans(p)
	if len(scans) != 1 || scans[0].Filter == nil {
		t.Fatalf("filter not pushed down: %s", plan.Explain(p))
	}
}

func TestExpressionsInSelect(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT pay * 2 + 1 AS x FROM emp WHERE id = 1")
	if res.NumRows() != 1 || f(t, res, 0, 0) != 201 {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestGlobalAggregates(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT COUNT(*), SUM(pay), AVG(pay), MIN(pay), MAX(pay) FROM emp")
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if f(t, res, 0, 0) != 10 {
		t.Errorf("count = %v", f(t, res, 0, 0))
	}
	if f(t, res, 0, 1) != 1000 {
		t.Errorf("sum = %v", f(t, res, 0, 1))
	}
	if f(t, res, 0, 2) != 100 {
		t.Errorf("avg = %v", f(t, res, 0, 2))
	}
	if f(t, res, 0, 3) != 70 || f(t, res, 0, 4) != 140 {
		t.Errorf("min/max = %v/%v", f(t, res, 0, 3), f(t, res, 0, 4))
	}
	if res.Details == nil || len(res.Details) != 1 {
		t.Fatal("missing agg details")
	}
	d := res.Details[0]
	if d.GroupN != 10 || len(d.Aggs) != 5 {
		t.Fatalf("detail = %+v", d)
	}
	for i, a := range d.Aggs {
		if a.Weighted {
			t.Errorf("agg %d should be unweighted", i)
		}
	}
}

func TestGroupBy(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT dept, COUNT(*) AS n, SUM(pay) AS total FROM emp GROUP BY dept ORDER BY dept")
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	want := []struct {
		dept  string
		n     float64
		total float64
	}{{"eng", 5, 600}, {"hr", 2, 145}, {"sales", 3, 255}}
	for i, w := range want {
		if res.Value(i, 0).S != w.dept || f(t, res, i, 1) != w.n || f(t, res, i, 2) != w.total {
			t.Errorf("row %d = %v, want %+v", i, res.Rows[i], w)
		}
	}
}

func TestGroupByExpression(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT age / 10 AS decade, COUNT(*) FROM emp GROUP BY age / 10 ORDER BY decade")
	if res.NumRows() < 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestHaving(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING COUNT(*) >= 3 ORDER BY dept")
	if res.NumRows() != 2 { // eng(5), sales(3)
		t.Fatalf("rows = %d: %v", res.NumRows(), res.Rows)
	}
}

func TestCompositeAggregate(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT SUM(pay) / COUNT(*) AS mean FROM emp")
	if math.Abs(f(t, res, 0, 0)-100) > 1e-9 {
		t.Fatalf("mean = %v", f(t, res, 0, 0))
	}
}

func TestJoin(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, `SELECT dept, budget, COUNT(*) AS n FROM emp
		JOIN dept ON dept = dname GROUP BY dept, budget ORDER BY dept`)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	// eng: budget 1000, n 5.
	if res.Value(0, 0).S != "eng" || f(t, res, 0, 1) != 1000 || f(t, res, 0, 2) != 5 {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
}

func TestJoinWithResidual(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, `SELECT COUNT(*) FROM emp JOIN dept ON dept = dname AND pay < budget / 5`)
	// pay < budget/5: eng 1000/5=200 (all 5), sales 100 (80,90,85 -> 3), hr 40 (none)
	if f(t, res, 0, 0) != 8 {
		t.Fatalf("count = %v", f(t, res, 0, 0))
	}
}

func TestOrderByLimit(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT id, pay FROM emp ORDER BY pay DESC LIMIT 3")
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if f(t, res, 0, 1) != 140 || f(t, res, 1, 1) != 130 || f(t, res, 2, 1) != 120 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT COUNT(DISTINCT dept) FROM emp")
	if f(t, res, 0, 0) != 3 {
		t.Fatalf("count distinct = %v", f(t, res, 0, 0))
	}
}

func TestEmptyInputAggregate(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT COUNT(*), SUM(pay) FROM emp WHERE pay > 1e9")
	if res.NumRows() != 1 {
		t.Fatalf("global agg over empty input must yield one row, got %d", res.NumRows())
	}
	if f(t, res, 0, 0) != 0 {
		t.Errorf("count = %v", f(t, res, 0, 0))
	}
	if !res.Value(0, 1).IsNull() {
		t.Errorf("sum over empty = %v, want NULL", res.Value(0, 1))
	}
}

func TestEmptyGroupByResult(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT dept, COUNT(*) FROM emp WHERE pay > 1e9 GROUP BY dept")
	if res.NumRows() != 0 {
		t.Fatalf("grouped agg over empty input must yield no rows, got %d", res.NumRows())
	}
}

func TestBernoulliSampleFullRate(t *testing.T) {
	cat := testCatalog(t)
	// 100% sampling keeps everything with weight 1.
	res := runSQL(t, cat, "SELECT COUNT(*), SUM(pay) FROM emp TABLESAMPLE BERNOULLI (100)")
	if f(t, res, 0, 0) != 10 || f(t, res, 0, 1) != 1000 {
		t.Fatalf("rows = %v", res.Rows)
	}
	d := res.Details[0]
	if d.Aggs[0].Estimate != 10 {
		t.Fatalf("estimate = %v", d.Aggs[0].Estimate)
	}
}

func TestSampledAggregateIsWeighted(t *testing.T) {
	cat := testCatalog(t)
	res := runSQL(t, cat, "SELECT SUM(pay) FROM emp TABLESAMPLE BERNOULLI (50)")
	d := res.Details[0]
	if !d.Aggs[0].Weighted {
		t.Fatal("sampled aggregate should be flagged weighted")
	}
	if d.Aggs[0].Variance <= 0 {
		t.Fatal("sampled aggregate should carry positive variance estimate")
	}
}

func TestBlockSamplingSkipsBlocks(t *testing.T) {
	cat := testCatalog(t)
	// Block size is 4 (3 blocks of 10 rows). At 50% some blocks skip.
	res := runSQL(t, cat, "SELECT COUNT(*) FROM emp TABLESAMPLE SYSTEM (50)")
	c := res.Counters
	if c.BlocksScanned+c.BlocksSkipped != 3 {
		t.Fatalf("blocks = %+v", c)
	}
	if c.BlocksSkipped > 0 && c.RowsScanned == 10 {
		t.Fatal("skipped blocks should reduce rows scanned")
	}
}

func TestWeightColumnConsumed(t *testing.T) {
	cat := storage.NewCatalog()
	// A materialized sample table with explicit weights: 2 rows standing
	// in for 6 (weights 2 and 4).
	tbl := storage.NewTable("s", storage.Schema{
		{Name: "x", Type: storage.TypeFloat64},
		{Name: sample.WeightColumn, Type: storage.TypeFloat64},
	})
	if err := tbl.AppendRow(storage.Float64(10), storage.Float64(2)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(storage.Float64(5), storage.Float64(4)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, "SELECT COUNT(*), SUM(x) FROM s")
	if f(t, res, 0, 0) != 6 {
		t.Errorf("weighted count = %v, want 6", f(t, res, 0, 0))
	}
	if f(t, res, 0, 1) != 40 { // 10*2 + 5*4
		t.Errorf("weighted sum = %v, want 40", f(t, res, 0, 1))
	}
	// The hidden weight column must not leak into the schema.
	if res.ColumnIndex(sample.WeightColumn) != -1 {
		t.Error("weight column leaked")
	}
	for _, def := range res.Schema {
		if def.Name == sample.WeightColumn {
			t.Error("weight column in schema")
		}
	}
}

func TestNullHandlingInAggregates(t *testing.T) {
	cat := storage.NewCatalog()
	tbl := storage.NewTable("n", storage.Schema{{Name: "x", Type: storage.TypeFloat64}})
	for _, v := range []storage.Value{storage.Float64(1), storage.NullValue(storage.TypeFloat64), storage.Float64(3)} {
		if err := tbl.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, "SELECT COUNT(*), COUNT(x), SUM(x), AVG(x) FROM n")
	if f(t, res, 0, 0) != 3 || f(t, res, 0, 1) != 2 {
		t.Errorf("counts = %v, %v", f(t, res, 0, 0), f(t, res, 0, 1))
	}
	if f(t, res, 0, 2) != 4 || f(t, res, 0, 3) != 2 {
		t.Errorf("sum/avg = %v/%v", f(t, res, 0, 2), f(t, res, 0, 3))
	}
}

func TestUniverseSampleAlignsJoin(t *testing.T) {
	// Two tables sharing a key domain; universe sampling both at 50% with
	// the same salt must keep identical key subsets, so the join of
	// samples only contains keys sampled on both sides — and every joined
	// key appears with *all* its rows.
	cat := storage.NewCatalog()
	l := storage.NewTable("l", storage.Schema{
		{Name: "lk", Type: storage.TypeInt64}, {Name: "lv", Type: storage.TypeFloat64}})
	r := storage.NewTable("r", storage.Schema{
		{Name: "rk", Type: storage.TypeInt64}, {Name: "rv", Type: storage.TypeFloat64}})
	for i := 0; i < 200; i++ {
		if err := l.AppendRow(storage.Int64(int64(i%50)), storage.Float64(1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := r.AppendRow(storage.Int64(int64(i)), storage.Float64(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(l); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(r); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, `SELECT COUNT(*) FROM l TABLESAMPLE UNIVERSE (50) ON (lk)
		JOIN r TABLESAMPLE UNIVERSE (50) ON (rk) ON lk = rk`)
	// True join count is 200 (each l row matches exactly one r row).
	// The HT estimate uses weight 1/0.5 * 1/0.5 = 4 per surviving row,
	// but universe alignment means each surviving key keeps all 4 rows,
	// so the estimate is 4 * #survivors... we only sanity-check that the
	// estimate is within a factor ~2 and — crucially — not near zero,
	// which independent uniform sampling at these rates would risk.
	got := f(t, res, 0, 0)
	if got <= 0 {
		t.Fatalf("universe join estimate = %v", got)
	}
}

func TestExplainRendering(t *testing.T) {
	cat := testCatalog(t)
	stmt, _ := sqlparse.Parse("SELECT dept, SUM(pay) FROM emp WHERE age > 30 GROUP BY dept ORDER BY dept LIMIT 2")
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(p)
	for _, want := range []string{"Limit 2", "Sort", "Project", "HashAggregate", "Scan emp"} {
		if !containsStr(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
