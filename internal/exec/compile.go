package exec

// Compiled row kernels for the morsel-parallel hot loop.
//
// The tree-walking evaluator allocates a Row adapter per row and pays an
// interface dispatch plus Value boxing per expression node. For the
// expression shapes that dominate aggregate scans — column references,
// numeric literals, arithmetic, comparisons, AND/OR — we compile the tree
// once per morsel run into closures that read the typed column storage
// directly. Compilation is best-effort: any unsupported node returns a
// nil kernel and the caller falls back to the general evaluator for that
// expression only.
//
// Faithfulness: every kernel reproduces the tree-walker's float operation
// sequence exactly (AsFloat conversions, NULL propagation, short-circuit
// two-valued logic, division-by-zero to NULL), so fast and slow paths are
// bit-identical and the choice never changes a result.

import (
	"repro/internal/expr"
	"repro/internal/storage"
)

// numKernel evaluates a numeric expression for one table row, returning
// the value as float64 (the evaluator's AsFloat form) and a NULL flag.
type numKernel func(row int) (float64, bool)

// boolKernel evaluates a predicate for one table row with SQL
// three-valued logic collapsed to two-valued (NULL is false).
type boolKernel func(row int) bool

// colMap translates an expression's bound column index to a table column
// index; nil means identity (the expression is bound to the table schema).
type colMap []int

func (m colMap) col(i int) int {
	if m == nil {
		return i
	}
	return m[i]
}

// compileNum compiles a numeric expression against t, or returns nil.
func compileNum(e expr.Expr, t *storage.Table, m colMap) numKernel {
	switch n := e.(type) {
	case *expr.ColRef:
		switch c := t.Column(m.col(n.Index)).(type) {
		case *storage.Int64Column:
			return func(row int) (float64, bool) {
				if c.IsNull(row) {
					return 0, true
				}
				return float64(c.Int(row)), false
			}
		case *storage.Float64Column:
			return func(row int) (float64, bool) {
				if c.IsNull(row) {
					return 0, true
				}
				return c.Float(row), false
			}
		}
		return nil
	case *expr.Lit:
		if !n.Val.Typ.Numeric() {
			return nil
		}
		v, null := n.Val.AsFloat(), n.Val.IsNull()
		return func(int) (float64, bool) { return v, null }
	case *expr.Binary:
		// Integer-typed Add/Sub/Mul use int64 arithmetic in the tree
		// walker; only the float branch is compiled, which evalArith takes
		// exactly when either operand is (or division makes the result)
		// TypeFloat64.
		if n.Type() != storage.TypeFloat64 {
			return nil
		}
		l := compileNum(n.L, t, m)
		r := compileNum(n.R, t, m)
		if l == nil || r == nil {
			return nil
		}
		switch n.Op {
		case expr.OpAdd:
			return func(row int) (float64, bool) {
				a, an := l(row)
				b, bn := r(row)
				if an || bn {
					return 0, true
				}
				return a + b, false
			}
		case expr.OpSub:
			return func(row int) (float64, bool) {
				a, an := l(row)
				b, bn := r(row)
				if an || bn {
					return 0, true
				}
				return a - b, false
			}
		case expr.OpMul:
			return func(row int) (float64, bool) {
				a, an := l(row)
				b, bn := r(row)
				if an || bn {
					return 0, true
				}
				return a * b, false
			}
		case expr.OpDiv:
			return func(row int) (float64, bool) {
				a, an := l(row)
				b, bn := r(row)
				if an || bn || b == 0 {
					return 0, true
				}
				return a / b, false
			}
		}
		return nil
	}
	return nil
}

// compileBool compiles a predicate against t, or returns nil.
func compileBool(e expr.Expr, t *storage.Table, m colMap) boolKernel {
	switch n := e.(type) {
	case *expr.ColRef:
		if n.Typ != storage.TypeBool {
			return nil
		}
		c := t.Column(m.col(n.Index))
		return func(row int) bool {
			v := c.Value(row)
			return !v.IsNull() && v.B
		}
	case *expr.Binary:
		switch n.Op {
		case expr.OpAnd:
			l := compileBool(n.L, t, m)
			r := compileBool(n.R, t, m)
			if l == nil || r == nil {
				return nil
			}
			return func(row int) bool { return l(row) && r(row) }
		case expr.OpOr:
			l := compileBool(n.L, t, m)
			r := compileBool(n.R, t, m)
			if l == nil || r == nil {
				return nil
			}
			return func(row int) bool { return l(row) || r(row) }
		}
		if !n.Op.Comparison() {
			return nil
		}
		// Value.Equal compares same-typed int64s as integers; beyond 2^53
		// a float comparison could disagree, so Eq/Ne require a float
		// operand. The ordering operators always go through Value.Compare,
		// which promotes every numeric pair to float64.
		if n.Op == expr.OpEq || n.Op == expr.OpNe {
			if n.L.Type() != storage.TypeFloat64 && n.R.Type() != storage.TypeFloat64 {
				return nil
			}
		}
		l := compileNum(n.L, t, m)
		r := compileNum(n.R, t, m)
		if l == nil || r == nil {
			return nil
		}
		switch n.Op {
		case expr.OpEq:
			return func(row int) bool {
				a, an := l(row)
				b, bn := r(row)
				return !an && !bn && a == b
			}
		case expr.OpNe:
			return func(row int) bool {
				a, an := l(row)
				b, bn := r(row)
				return !an && !bn && a != b
			}
		case expr.OpLt:
			return func(row int) bool {
				a, an := l(row)
				b, bn := r(row)
				return !an && !bn && a < b
			}
		case expr.OpLe:
			return func(row int) bool {
				a, an := l(row)
				b, bn := r(row)
				return !an && !bn && a <= b
			}
		case expr.OpGt:
			return func(row int) bool {
				a, an := l(row)
				b, bn := r(row)
				return !an && !bn && a > b
			}
		case expr.OpGe:
			return func(row int) bool {
				a, an := l(row)
				b, bn := r(row)
				return !an && !bn && a >= b
			}
		}
	}
	return nil
}
