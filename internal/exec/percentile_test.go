package exec

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

func percentileCatalog(t *testing.T, n int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	tbl := storage.NewTable("p", storage.Schema{
		{Name: "g", Type: storage.TypeInt64},
		{Name: "v", Type: storage.TypeFloat64},
	})
	// v = 0..n-1 shuffled deterministically; true q-quantile ≈ q·(n-1).
	for i := 0; i < n; i++ {
		v := float64((i*7919 + 13) % n) // a permutation for n coprime with 7919
		if err := tbl.AppendRow(storage.Int64(int64(i%4)), storage.Float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPercentileExact(t *testing.T) {
	cat := percentileCatalog(t, 10000)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		res := runSQL(t, cat, fmt.Sprintf("SELECT PERCENTILE(v, %g) FROM p", q))
		got := f(t, res, 0, 0)
		want := q * 9999
		if math.Abs(got-want) > 10 {
			t.Errorf("q=%v: got %v, want ~%v", q, got, want)
		}
		d := res.Details[0].Aggs[0]
		if !d.Supported || !d.HasInterval {
			t.Fatalf("percentile detail = %+v", d)
		}
		if got < d.Lo || got > d.Hi {
			t.Errorf("estimate outside its own interval")
		}
	}
}

func TestPercentileSampled(t *testing.T) {
	cat := percentileCatalog(t, 50000)
	trials := 20
	covered := 0
	want := 0.5 * 49999
	for tr := 0; tr < trials; tr++ {
		stmt, err := sqlparse.Parse("SELECT PERCENTILE(v, 0.5) FROM p")
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(stmt, cat)
		if err != nil {
			t.Fatal(err)
		}
		plan.ApplySampler(p, "p", sample.Spec{
			Kind: sample.KindUniformRow, Rate: 0.05, Seed: int64(tr) * 31})
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Rows[0][0].AsFloat()
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("trial %d: sampled median %v vs %v", tr, got, want)
		}
		d := res.Details[0].Aggs[0]
		if want >= d.Lo && want <= d.Hi {
			covered++
		}
	}
	// The DKW interval at 95% should cover nearly always.
	if covered < trials*8/10 {
		t.Errorf("DKW interval covered %d/%d", covered, trials)
	}
}

func TestPercentileByGroup(t *testing.T) {
	cat := percentileCatalog(t, 8000)
	res := runSQL(t, cat, "SELECT g, PERCENTILE(v, 0.5) AS med FROM p GROUP BY g ORDER BY g")
	if res.NumRows() != 4 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	for i := 0; i < 4; i++ {
		med := f(t, res, i, 1)
		if math.Abs(med-4000) > 400 {
			t.Errorf("group %d median = %v", i, med)
		}
	}
}

func TestPercentileNulls(t *testing.T) {
	cat := storage.NewCatalog()
	tbl := storage.NewTable("n", storage.Schema{{Name: "x", Type: storage.TypeFloat64}})
	for _, v := range []storage.Value{
		storage.Float64(1), storage.NullValue(storage.TypeFloat64), storage.Float64(3)} {
		if err := tbl.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, "SELECT PERCENTILE(x, 0.5) FROM n")
	if got := f(t, res, 0, 0); got != 1 && got != 3 {
		t.Errorf("median of {1,3} = %v", got)
	}
	// All-NULL input yields NULL.
	empty := runSQL(t, cat, "SELECT PERCENTILE(x, 0.5) FROM n WHERE x > 100")
	if !empty.Rows[0][0].IsNull() {
		t.Error("empty percentile must be NULL")
	}
}
