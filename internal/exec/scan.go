package exec

import (
	"context"
	"fmt"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/storage"
)

// scanOp reads a base table block by block, applying (in order) the block
// sampler decision, the pushed-down filter, and then the row-level sampler
// decision. Filter-before-sampler matters for the stateful distinct
// sampler: its per-stratum pass-through must count only qualifying rows so
// small *output* groups survive; for the stateless samplers the two orders
// are distributionally identical (the sampling-equivalence rule).
type scanOp struct {
	scan     *plan.Scan
	counters *Counters
	ctx      context.Context

	outIdx    []int // table column index per output column
	weightIdx int   // hidden weight column in table, or -1
	keyIdx    []int // sampler key columns in table
	sampler   sample.RowSampler
	blockSamp *sample.Block

	table   *storage.Table
	nRows   int
	row     int
	block   int
	keyBuf  []storage.Value
	scanned int64 // rows examined by this operator (for trace rows-in)
}

// inputRows implements inputRowsReporter.
func (op *scanOp) inputRows() int64 { return op.scanned }

func newScanOp(ctx context.Context, s *plan.Scan, counters *Counters) (*scanOp, error) {
	op := &scanOp{scan: s, counters: counters, ctx: ctx, table: s.Table, weightIdx: -1}
	tschema := s.Table.Schema()
	for _, def := range s.Schema() {
		idx := tschema.ColumnIndex(def.Name)
		if idx < 0 {
			return nil, fmt.Errorf("exec: scan %s: lost column %s", s.TableName, def.Name)
		}
		op.outIdx = append(op.outIdx, idx)
	}
	op.weightIdx = s.WeightColumnIndex()
	if s.Sample != nil {
		rs, err := sample.New(*s.Sample, s.Table.BlockSize())
		if err != nil {
			return nil, err
		}
		switch st := rs.(type) {
		case *sample.Block:
			op.blockSamp = st
		case *sample.BiLevel:
			// Split the stages so non-sampled blocks are skipped at the
			// block level and kept blocks are thinned row by row.
			op.blockSamp = st.BlockSampler()
			op.sampler = biLevelRowStage{st}
		default:
			op.sampler = rs
		}
		for _, col := range s.Sample.KeyColumns {
			idx := tschema.ColumnIndex(col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: sampler key column %q not in table %s", col, s.TableName)
			}
			op.keyIdx = append(op.keyIdx, idx)
		}
		op.keyBuf = make([]storage.Value, len(op.keyIdx))
	}
	return op, nil
}

// Schema implements Operator.
func (op *scanOp) Schema() storage.Schema { return op.scan.Schema() }

// Open implements Operator.
func (op *scanOp) Open() error {
	// Scan a snapshot: concurrent appends to the live table neither tear
	// the read prefix nor move the row count mid-scan.
	op.table = op.scan.Table.Snapshot()
	op.nRows = op.table.NumRows()
	op.row = 0
	op.block = 0
	op.counters.Passes++
	return nil
}

// biLevelRowStage adapts the within-block stage of a bi-level sampler to
// the RowSampler interface used in the scan's per-row loop; the block
// stage runs separately so whole blocks can be skipped.
type biLevelRowStage struct {
	bl *sample.BiLevel
}

// Decide implements sample.RowSampler.
func (b biLevelRowStage) Decide(rowIdx int, _ string) sample.RowDecision {
	return b.bl.DecideRow(rowIdx)
}

// Rate implements sample.RowSampler.
func (b biLevelRowStage) Rate() float64 { return b.bl.Rate() }

// tableRow adapts direct table access to expr.Row for filter evaluation
// bound against the full table schema.
type tableRow struct {
	t   *storage.Table
	idx int
}

// ColumnValue implements expr.Row.
func (r tableRow) ColumnValue(i int) storage.Value { return r.t.Column(i).Value(r.idx) }

// Next implements Operator.
func (op *scanOp) Next() (*Batch, error) {
	if op.row >= op.nRows {
		return nil, nil
	}
	// One cancellation checkpoint per batch: long scans under a blocking
	// parent (hash aggregate, sort) still observe deadlines at BatchSize
	// granularity because every batch is produced here.
	if err := op.ctx.Err(); err != nil {
		return nil, err
	}
	batch := &Batch{}
	blockSize := op.table.BlockSize()
	for batch.Len() < BatchSize && op.row < op.nRows {
		blockEnd := (op.block + 1) * blockSize
		if blockEnd > op.nRows {
			blockEnd = op.nRows
		}
		blockWeight := 1.0
		if op.blockSamp != nil {
			d := op.blockSamp.DecideBlock(op.block)
			if !d.Keep {
				op.counters.BlocksSkipped++
				op.row = blockEnd
				op.block++
				continue
			}
			if op.row == op.block*blockSize {
				// Count each kept block once, on first entry.
				op.counters.BlocksScanned++
			}
			blockWeight = d.Weight
		}
		for ; op.row < blockEnd && batch.Len() < BatchSize; op.row++ {
			op.counters.RowsScanned++
			op.scanned++
			tr := tableRow{t: op.table, idx: op.row}
			if op.scan.Filter != nil {
				ok, err := expr.EvalBool(op.scan.Filter, tr)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			w := blockWeight
			if op.sampler != nil {
				key := ""
				if len(op.keyIdx) > 0 {
					for i, idx := range op.keyIdx {
						op.keyBuf[i] = op.table.Column(idx).Value(op.row)
					}
					key = sample.KeyOf(op.keyBuf)
				}
				d := op.sampler.Decide(op.row, key)
				if !d.Keep {
					continue
				}
				w *= d.Weight
			}
			if op.weightIdx >= 0 {
				wv := op.table.Column(op.weightIdx).Value(op.row)
				if !wv.IsNull() {
					w *= wv.AsFloat()
				}
			}
			out := make([]storage.Value, len(op.outIdx))
			for i, idx := range op.outIdx {
				out[i] = op.table.Column(idx).Value(op.row)
			}
			batch.Rows = append(batch.Rows, out)
			if w != 1 || batch.Weights != nil {
				if batch.Weights == nil {
					batch.Weights = make([]float64, batch.Len()-1)
					for i := range batch.Weights {
						batch.Weights[i] = 1
					}
				}
				batch.Weights = append(batch.Weights, w)
			}
			op.counters.RowsEmitted++
		}
		if op.row >= blockEnd {
			op.block++
		}
	}
	if batch.Len() == 0 {
		// The loop exits with an empty batch only when the table is
		// exhausted.
		return nil, nil
	}
	return batch, nil
}

// Close implements Operator.
func (op *scanOp) Close() error { return nil }
