package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the partial-wire golden fixtures")

// wireQueries pins one query per aggregate kind the wire schema must
// carry: plain and column COUNTs, COUNT(DISTINCT), SUM, AVG, MIN/MAX
// (extrema values), PERCENTILE (observation lists), group-by keys, and
// the weighted samplers whose per-stratum weight-1 keeps carry zero
// variance (the FPC behavior). Each entry becomes a golden fixture.
var wireQueries = []struct{ name, sql string }{
	{"count_star", "SELECT COUNT(*) FROM ev"},
	{"count_col", "SELECT COUNT(v) FROM ev"},
	{"count_distinct", "SELECT COUNT(DISTINCT g) FROM ev"},
	{"sum_avg", "SELECT SUM(v), AVG(v) FROM ev"},
	{"min_max", "SELECT MIN(v), MAX(v) FROM ev"},
	{"percentile", "SELECT PERCENTILE(v, 0.5) FROM ev"},
	{"group_by", "SELECT g, COUNT(*), SUM(v) FROM ev GROUP BY g ORDER BY g"},
	{"weighted_bernoulli", "SELECT COUNT(*), SUM(v) FROM ev TABLESAMPLE BERNOULLI (50)"},
	{"weighted_universe", "SELECT COUNT(*) FROM ev TABLESAMPLE UNIVERSE (50) ON (g)"},
	{"group_by_sampled", "SELECT g, COUNT(*) FROM ev TABLESAMPLE SYSTEM (50) GROUP BY g ORDER BY g"},
}

// TestAggPartialWireGolden: the wire encoding of every aggregate kind is
// byte-for-byte pinned by a golden fixture (run with -update to
// regenerate), decode→re-encode is byte-identical, and finalizing the
// decoded partial is bit-identical to finalizing the original — the
// losslessness the remote-shard guarantee rests on.
func TestAggPartialWireGolden(t *testing.T) {
	cat := parallelCatalog(t, 500)
	for _, q := range wireQueries {
		t.Run(q.name, func(t *testing.T) {
			part, err := RunAggPartialContext(context.Background(), buildPlan(t, cat, q.sql), 2)
			if err != nil {
				t.Fatalf("partial %q: %v", q.sql, err)
			}
			blob, err := EncodeAggPartialWire(part)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}

			path := filepath.Join("testdata", "partial_wire", q.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(bytes.Clone(blob), '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture: %v (run with -update to generate)", err)
			}
			if !bytes.Equal(blob, bytes.TrimSuffix(want, []byte("\n"))) {
				t.Errorf("encoding drifted from golden %s:\n got: %s\nwant: %s", path, blob, want)
			}

			dec, err := DecodeAggPartialWire(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			blob2, err := EncodeAggPartialWire(dec)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Errorf("decode→re-encode not byte-identical:\n got: %s\nwant: %s", blob2, blob)
			}

			direct, err := FinalizeAggPartial(context.Background(), buildPlan(t, cat, q.sql), part)
			if err != nil {
				t.Fatalf("finalize original: %v", err)
			}
			viaWire, err := FinalizeAggPartial(context.Background(), buildPlan(t, cat, q.sql), dec)
			if err != nil {
				t.Fatalf("finalize decoded: %v", err)
			}
			assertResultsBitIdentical(t, q.sql, direct, viaWire)
		})
	}
}

// TestAggPartialWireSpecialFloats: ±0, ±Inf, and NaN-free extremes must
// survive the string round trip with their exact bits.
func TestAggPartialWireSpecialFloats(t *testing.T) {
	for _, s := range []string{"-0", "0", "1e-323", "-1.7976931348623157e+308", "+Inf", "-Inf", "NaN"} {
		f, err := decF(s)
		if err != nil {
			t.Fatalf("decF(%q): %v", s, err)
		}
		back, err := decF(encF(f))
		if err != nil {
			t.Fatalf("re-decode %q: %v", encF(f), err)
		}
		if encF(back) != encF(f) {
			t.Errorf("float %q did not round-trip: %q vs %q", s, encF(back), encF(f))
		}
	}
}

// TestAggPartialWireVersionRejected: an unknown schema version must be
// refused loudly — a misread accumulator would be a silently wrong
// answer.
func TestAggPartialWireVersionRejected(t *testing.T) {
	cat := parallelCatalog(t, 100)
	part, err := RunAggPartialContext(context.Background(), buildPlan(t, cat, "SELECT COUNT(*) FROM ev"), 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeAggPartialWire(part)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	raw["v"] = json.RawMessage("99")
	skewed, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAggPartialWire(skewed); err == nil {
		t.Fatal("decoded a version-99 partial without complaint")
	} else if !strings.Contains(err.Error(), "version 99 unsupported") {
		t.Fatalf("version rejection message %q does not name the versions", err)
	}

	if _, err := DecodeAggPartialWire([]byte("{not json")); err == nil {
		t.Fatal("decoded malformed JSON without complaint")
	}
	if _, err := EncodeAggPartialWire(nil); err == nil {
		t.Fatal("encoded a nil partial without complaint")
	}
}
