package exec

import (
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// filterOp applies a residual predicate, preserving weights and details.
type filterOp struct {
	child Op
	pred  expr.Expr
}

// Op bundles Operator with its source plan schema.
type Op = Operator

// Schema implements Operator.
func (op *filterOp) Schema() storage.Schema { return op.child.Schema() }

// Open implements Operator.
func (op *filterOp) Open() error { return op.child.Open() }

// Close implements Operator.
func (op *filterOp) Close() error { return op.child.Close() }

// Next implements Operator.
func (op *filterOp) Next() (*Batch, error) {
	for {
		in, err := op.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		out := &Batch{}
		for i, row := range in.Rows {
			ok, err := expr.EvalBool(op.pred, expr.ValuesRow(row))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			out.Rows = append(out.Rows, row)
			if in.Weights != nil {
				out.Weights = append(out.Weights, in.Weights[i])
			}
			if in.Details != nil {
				out.Details = append(out.Details, in.Details[i])
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

// projectOp computes output expressions row by row.
type projectOp struct {
	child  Op
	node   *plan.Project
	schema storage.Schema
}

// Schema implements Operator.
func (op *projectOp) Schema() storage.Schema { return op.schema }

// Open implements Operator.
func (op *projectOp) Open() error { return op.child.Open() }

// Close implements Operator.
func (op *projectOp) Close() error { return op.child.Close() }

// Next implements Operator.
func (op *projectOp) Next() (*Batch, error) {
	in, err := op.child.Next()
	if err != nil || in == nil {
		return nil, err
	}
	out := &Batch{Weights: in.Weights, Details: in.Details}
	out.Rows = make([][]storage.Value, 0, in.Len())
	for _, row := range in.Rows {
		vals := make([]storage.Value, len(op.node.Exprs))
		r := expr.ValuesRow(row)
		for j, e := range op.node.Exprs {
			v, err := e.Eval(r)
			if err != nil {
				return nil, err
			}
			vals[j] = v
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, nil
}

// hashJoinOp is an inner equi hash join: the right child is built into a
// hash table, the left child probes it. Output weight is the product of
// the input weights — the Horvitz–Thompson weight of a joined pair under
// independent sampling of the inputs.
type hashJoinOp struct {
	node   *plan.Join
	left   Op
	right  Op
	schema storage.Schema

	built   bool
	ht      map[string][]buildEntry
	pending *Batch
}

type buildEntry struct {
	row    []storage.Value
	weight float64
}

// Schema implements Operator.
func (op *hashJoinOp) Schema() storage.Schema { return op.schema }

// Open implements Operator.
func (op *hashJoinOp) Open() error {
	if err := op.left.Open(); err != nil {
		return err
	}
	return op.right.Open()
}

// Close implements Operator.
func (op *hashJoinOp) Close() error {
	if err := op.left.Close(); err != nil {
		_ = op.right.Close()
		return err
	}
	return op.right.Close()
}

func (op *hashJoinOp) build() error {
	op.ht = make(map[string][]buildEntry)
	keyBuf := make([]storage.Value, len(op.node.RightKeys))
	for {
		b, err := op.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i, row := range b.Rows {
			r := expr.ValuesRow(row)
			null := false
			for k, ke := range op.node.RightKeys {
				v, err := ke.Eval(r)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				keyBuf[k] = v
			}
			if null {
				continue
			}
			key := groupKeyOf(keyBuf)
			op.ht[key] = append(op.ht[key], buildEntry{row: row, weight: b.Weight(i)})
		}
	}
	op.built = true
	return nil
}

// Next implements Operator.
func (op *hashJoinOp) Next() (*Batch, error) {
	if !op.built {
		if err := op.build(); err != nil {
			return nil, err
		}
	}
	keyBuf := make([]storage.Value, len(op.node.LeftKeys))
	for {
		in, err := op.left.Next()
		if err != nil || in == nil {
			return nil, err
		}
		out := &Batch{}
		for i, lrow := range in.Rows {
			r := expr.ValuesRow(lrow)
			null := false
			for k, ke := range op.node.LeftKeys {
				v, err := ke.Eval(r)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					null = true
					break
				}
				keyBuf[k] = v
			}
			if null {
				continue
			}
			matches := op.ht[groupKeyOf(keyBuf)]
			if len(matches) == 0 {
				continue
			}
			lw := in.Weight(i)
			for _, m := range matches {
				joined := make([]storage.Value, 0, len(lrow)+len(m.row))
				joined = append(joined, lrow...)
				joined = append(joined, m.row...)
				if op.node.Residual != nil {
					ok, err := expr.EvalBool(op.node.Residual, expr.ValuesRow(joined))
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				out.Rows = append(out.Rows, joined)
				w := lw * m.weight
				if out.Weights == nil && w != 1 {
					out.Weights = make([]float64, len(out.Rows)-1)
					for j := range out.Weights {
						out.Weights[j] = 1
					}
				}
				if out.Weights != nil {
					out.Weights = append(out.Weights, w)
				}
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

// groupKeyOf builds the canonical composite key of a value tuple.
func groupKeyOf(vals []storage.Value) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) == 1 {
		return vals[0].GroupKey()
	}
	key := vals[0].GroupKey()
	for _, v := range vals[1:] {
		key += "\x1f" + v.GroupKey()
	}
	return key
}

// sortOp materializes and orders its input.
type sortOp struct {
	node  *plan.Sort
	child Op

	done bool
	out  *Batch
}

// Schema implements Operator.
func (op *sortOp) Schema() storage.Schema { return op.child.Schema() }

// Open implements Operator.
func (op *sortOp) Open() error { return op.child.Open() }

// Close implements Operator.
func (op *sortOp) Close() error { return op.child.Close() }

// Next implements Operator.
func (op *sortOp) Next() (*Batch, error) {
	if op.done {
		return nil, nil
	}
	all := &Batch{}
	hasWeights := false
	for {
		b, err := op.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for i, row := range b.Rows {
			all.Rows = append(all.Rows, row)
			all.Weights = append(all.Weights, b.Weight(i))
			if b.Weights != nil {
				hasWeights = true
			}
			if b.Details != nil {
				all.Details = append(all.Details, b.Details[i])
			} else {
				all.Details = append(all.Details, nil)
			}
		}
	}
	if err := sortBatch(all, op.node.Keys); err != nil {
		return nil, err
	}
	if !hasWeights {
		all.Weights = nil
	}
	anyDetail := false
	for _, d := range all.Details {
		if d != nil {
			anyDetail = true
			break
		}
	}
	if !anyDetail {
		all.Details = nil
	}
	op.done = true
	if all.Len() == 0 {
		return nil, nil
	}
	return all, nil
}

// limitOp truncates its input to N rows.
type limitOp struct {
	child Op
	n     int
	seen  int
}

// Schema implements Operator.
func (op *limitOp) Schema() storage.Schema { return op.child.Schema() }

// Open implements Operator.
func (op *limitOp) Open() error { return op.child.Open() }

// Close implements Operator.
func (op *limitOp) Close() error { return op.child.Close() }

// Next implements Operator.
func (op *limitOp) Next() (*Batch, error) {
	if op.seen >= op.n {
		return nil, nil
	}
	in, err := op.child.Next()
	if err != nil || in == nil {
		return nil, err
	}
	remain := op.n - op.seen
	if in.Len() <= remain {
		op.seen += in.Len()
		return in, nil
	}
	out := &Batch{Rows: in.Rows[:remain]}
	if in.Weights != nil {
		out.Weights = in.Weights[:remain]
	}
	if in.Details != nil {
		out.Details = in.Details[:remain]
	}
	op.seen = op.n
	return out, nil
}
