package exec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestChaosCancelMidMorsel cancels the context while a morsel-parallel
// scan is in flight and asserts the contract: RunParallelContext
// returns context.Canceled (not a partial result), and every worker
// goroutine has exited by the time it returns — the final goroutine
// count settles back to the pre-scan baseline, so repeated cancelled
// queries cannot accrete leaked workers.
func TestChaosCancelMidMorsel(t *testing.T) {
	t.Cleanup(fault.Uninstall)
	cat := parallelCatalog(t, 200000)
	p := buildPlan(t, cat, "SELECT g, SUM(v), COUNT(*) FROM ev GROUP BY g ORDER BY g")

	// Slow each morsel down deterministically so the scan is reliably
	// still running when the cancel lands: ~25 morsels × 1ms across 4
	// workers keeps the pipeline busy for several milliseconds.
	fault.Install(fault.Schedule{Seed: 11, Rules: []fault.Rule{
		{Point: "exec.morsel", Kind: fault.KindLatency, P: 1, Latency: time.Millisecond},
	}})

	baseline := runtime.NumGoroutine()
	cancelled := 0
	for attempt := 0; attempt < 20; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(2*time.Millisecond, cancel)
		res, err := RunParallelContext(ctx, p, 4)
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			// The scan outran the cancel; fine, try again.
			if res == nil {
				t.Fatal("nil result with nil error")
			}
		case errors.Is(err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("attempt %d: error = %v, want context.Canceled", attempt, err)
		}
	}
	if cancelled == 0 {
		t.Fatal("cancel never observed mid-scan across 20 attempts")
	}

	// Workers join before RunParallelContext returns, so the goroutine
	// count must settle back to baseline (small slack for runtime and
	// timer goroutines winding down).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after %d cancelled scans: %d goroutines, baseline %d\n%s",
				cancelled, runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
