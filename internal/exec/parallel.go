package exec

// Morsel-driven parallel execution.
//
// RunParallelContext splits an eligible plan — a hash aggregate over a
// (filtered, sampled) base-table scan — into fixed, block-aligned row
// ranges ("morsels"), processes each morsel on one of a pool of workers
// with a fused scan+filter+sample+partial-aggregate pipeline, and merges
// the per-morsel partial aggregation states in ascending morsel order.
//
// Determinism: morsel boundaries depend only on the table (row count and
// block size), never on the worker count, and the reduction folds
// partials in morsel-index order, so every floating-point operation
// happens in the same sequence regardless of how many workers ran.
// Results and confidence intervals are therefore bit-identical for any
// worker count. See DESIGN.md for the full argument.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/trace"
)

// minMorselRows is the minimum morsel size; the actual morsel is the
// smallest multiple of the table's block size that reaches it, keeping
// morsel boundaries block-aligned and independent of the worker count.
const minMorselRows = 8192

// injectMorsel fires once per claimed morsel inside the worker's
// containment scope, so an injected panic exercises the same recovery
// path a genuine kernel bug would.
var injectMorsel = fault.NewPoint("exec.morsel", "morsel worker, per claimed morsel")

// workersCtxKey carries a per-request worker-count override in a context.
type workersCtxKey struct{}

// ContextWithWorkers returns ctx carrying a per-query worker-count
// override, consulted first by ResolveWorkers. The server uses it to cap
// per-query parallelism under admission control without widening engine
// signatures.
func ContextWithWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, workersCtxKey{}, n)
}

// WorkersFromContext returns the worker override carried by ctx, or 0.
func WorkersFromContext(ctx context.Context) int {
	n, _ := ctx.Value(workersCtxKey{}).(int)
	if n < 0 {
		return 0
	}
	return n
}

// ResolveWorkers resolves the effective worker count: a context override
// wins, then a positive hint (plan hint or engine configuration), then
// runtime.GOMAXPROCS. The result is always at least 1.
func ResolveWorkers(ctx context.Context, hint int) int {
	if n := WorkersFromContext(ctx); n > 0 {
		return n
	}
	if hint > 0 {
		return hint
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// RunParallel executes a logical plan with the given worker count.
func RunParallel(root plan.Node, workers int) (*Result, error) {
	return RunParallelContext(context.Background(), root, workers)
}

// RunParallelContext executes a logical plan under ctx, running eligible
// aggregate-over-scan subtrees on the morsel-parallel path with the given
// worker count (≤ 0 resolves via ResolveWorkers). Plans with no eligible
// subtree run on the serial operators; results are identical either way
// up to float summation order.
func RunParallelContext(ctx context.Context, root plan.Node, workers int) (*Result, error) {
	if workers <= 0 {
		workers = ResolveWorkers(ctx, 0)
	}
	var counters Counters
	op, err := buildParallelOperator(ctx, root, &counters, workers)
	if err != nil {
		return nil, err
	}
	return drainOperator(ctx, op, root.Schema(), &counters)
}

// buildParallelOperator mirrors BuildOperatorContext but replaces each
// eligible Aggregate subtree with the fused morsel-parallel operator.
// Ineligible shapes (joins below the aggregate, the stateful distinct
// sampler) fall back to the serial operators. Span creation happens per
// case (not in a shared wrapper) because the default case delegates to
// BuildOperatorContext, which opens its own span for the node.
func buildParallelOperator(ctx context.Context, n plan.Node, counters *Counters, workers int) (Operator, error) {
	switch t := n.(type) {
	case *plan.Aggregate:
		if scan, residual, ok := morselEligible(t); ok {
			sp, _ := trace.StartOp(ctx, t.Explain()+" [morsel]")
			op, err := newMorselAggOp(ctx, t, scan, residual, counters, workers)
			if err != nil {
				return nil, err
			}
			op.sp = sp
			sp.SetAttr("scan", scan.Explain())
			return wrapOp(op, sp), nil
		}
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildParallelOperator(cctx, t.Child, counters, workers)
		if err != nil {
			return nil, err
		}
		return wrapOp(&hashAggOp{node: t, child: child}, sp), nil
	case *plan.Filter:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildParallelOperator(cctx, t.Child, counters, workers)
		if err != nil {
			return nil, err
		}
		return wrapOp(&filterOp{child: child, pred: t.Pred}, sp), nil
	case *plan.Project:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildParallelOperator(cctx, t.Child, counters, workers)
		if err != nil {
			return nil, err
		}
		return wrapOp(&projectOp{child: child, node: t, schema: t.Schema()}, sp), nil
	case *plan.Sort:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildParallelOperator(cctx, t.Child, counters, workers)
		if err != nil {
			return nil, err
		}
		return wrapOp(&sortOp{node: t, child: child}, sp), nil
	case *plan.Limit:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildParallelOperator(cctx, t.Child, counters, workers)
		if err != nil {
			return nil, err
		}
		return wrapOp(&limitOp{child: child, n: t.N}, sp), nil
	}
	return BuildOperatorContext(ctx, n, counters)
}

// morselEligible reports whether the aggregate sits on a Filter*→Scan
// chain it can fuse, returning the scan and the residual predicates in
// application order (innermost first). The distinct sampler is excluded:
// it counts rows per stratum, so its decisions depend on scan order and
// must be made serially.
func morselEligible(a *plan.Aggregate) (*plan.Scan, []expr.Expr, bool) {
	var residual []expr.Expr
	n := a.Child
	for {
		switch c := n.(type) {
		case *plan.Filter:
			residual = append(residual, c.Pred)
			n = c.Child
		case *plan.Scan:
			if c.Sample != nil && c.Sample.Kind == sample.KindDistinct {
				return nil, nil, false
			}
			for i, j := 0, len(residual)-1; i < j; i, j = i+1, j-1 {
				residual[i], residual[j] = residual[j], residual[i]
			}
			return c, residual, true
		default:
			return nil, nil, false
		}
	}
}

// morselAggOp is the fused parallel operator: per morsel it scans,
// filters, samples, and partially aggregates without materializing
// intermediate batches, then merges partials deterministically.
type morselAggOp struct {
	ctx      context.Context
	node     *plan.Aggregate
	scan     *plan.Scan
	residual []expr.Expr
	counters *Counters
	workers  int

	outIdx    []int // table column index per scan output column
	weightIdx int   // hidden weight column in table, or -1
	keyIdx    []int // sampler key columns in table

	kern morselKernels // compiled against the snapshot in Next
	done bool

	sp      *trace.Span // operator span, nil when tracing is off
	scanned int64       // total rows examined across workers
}

// inputRows implements inputRowsReporter.
func (op *morselAggOp) inputRows() int64 { return op.scanned }

// Aggregate-slot fast-path modes; slotGeneral falls back to accumulate.
const (
	slotGeneral = iota
	slotCountStar
	slotCountCol
	slotSumAvg
	slotPercentile
)

// morselKernels holds the best-effort compiled form of the fused
// pipeline's expressions. Nil kernels (and slotGeneral slots) fall back to
// the tree-walking evaluator per expression; the compiled and interpreted
// forms are bit-identical, so mixing them is safe.
type morselKernels struct {
	filter   boolKernel   // scan filter, bound to the table schema
	residual []boolKernel // per residual predicate, bound to scan output
	groupCol []int        // table column per ColRef group expr, else -1
	slotMode []int
	slotArg  []numKernel
	needRow  bool // some fallback still needs the mappedRow adapter
}

// compileKernels compiles what it can of the pipeline against a concrete
// table snapshot.
func (op *morselAggOp) compileKernels(t *storage.Table) morselKernels {
	k := morselKernels{
		residual: make([]boolKernel, len(op.residual)),
		groupCol: make([]int, len(op.node.GroupBy)),
		slotMode: make([]int, len(op.node.Aggs)),
		slotArg:  make([]numKernel, len(op.node.Aggs)),
	}
	if op.scan.Filter != nil {
		k.filter = compileBool(op.scan.Filter, t, nil)
	}
	m := colMap(op.outIdx)
	for i, pred := range op.residual {
		k.residual[i] = compileBool(pred, t, m)
		if k.residual[i] == nil {
			k.needRow = true
		}
	}
	for i, ge := range op.node.GroupBy {
		k.groupCol[i] = -1
		if c, ok := ge.(*expr.ColRef); ok {
			k.groupCol[i] = op.outIdx[c.Index]
		} else {
			k.needRow = true
		}
	}
	for j, spec := range op.node.Aggs {
		k.slotMode[j] = slotGeneral
		switch spec.Func {
		case sqlparse.AggCount:
			if spec.Star {
				k.slotMode[j] = slotCountStar
			} else if !spec.Distinct && spec.Arg != nil {
				if arg := compileNum(spec.Arg, t, m); arg != nil {
					k.slotMode[j] = slotCountCol
					k.slotArg[j] = arg
				}
			}
		case sqlparse.AggSum, sqlparse.AggAvg:
			if arg := compileNum(spec.Arg, t, m); arg != nil {
				k.slotMode[j] = slotSumAvg
				k.slotArg[j] = arg
			}
		case sqlparse.AggPercentile:
			if arg := compileNum(spec.Arg, t, m); arg != nil {
				k.slotMode[j] = slotPercentile
				k.slotArg[j] = arg
			}
		}
		if k.slotMode[j] == slotGeneral {
			k.needRow = true
		}
	}
	return k
}

func newMorselAggOp(ctx context.Context, a *plan.Aggregate, s *plan.Scan, residual []expr.Expr, counters *Counters, workers int) (*morselAggOp, error) {
	op := &morselAggOp{
		ctx: ctx, node: a, scan: s, residual: residual,
		counters: counters, workers: workers,
		weightIdx: s.WeightColumnIndex(),
	}
	tschema := s.Table.Schema()
	for _, def := range s.Schema() {
		idx := tschema.ColumnIndex(def.Name)
		if idx < 0 {
			return nil, fmt.Errorf("exec: scan %s: lost column %s", s.TableName, def.Name)
		}
		op.outIdx = append(op.outIdx, idx)
	}
	if s.Sample != nil {
		for _, col := range s.Sample.KeyColumns {
			idx := tschema.ColumnIndex(col)
			if idx < 0 {
				return nil, fmt.Errorf("exec: sampler key column %q not in table %s", col, s.TableName)
			}
			op.keyIdx = append(op.keyIdx, idx)
		}
	}
	return op, nil
}

// Schema implements Operator.
func (op *morselAggOp) Schema() storage.Schema { return op.node.Schema() }

// Open implements Operator.
func (op *morselAggOp) Open() error { return nil }

// Close implements Operator.
func (op *morselAggOp) Close() error { return nil }

// mappedRow adapts direct table access to the scan's output schema:
// column i of the scan output is column out[i] of the table. Residual
// predicates and aggregate expressions are bound to the scan output.
type mappedRow struct {
	t   *storage.Table
	idx int
	out []int
}

// ColumnValue implements expr.Row.
func (r mappedRow) ColumnValue(i int) storage.Value { return r.t.Column(r.out[i]).Value(r.idx) }

// Next implements Operator. The single call performs the whole parallel
// scan-aggregate and returns the merged output batch.
func (op *morselAggOp) Next() (*Batch, error) {
	if op.done {
		return nil, nil
	}
	op.done = true
	groups, err := op.computeGroups()
	if err != nil {
		return nil, err
	}
	out := finalizeGroups(op.node, groups)
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

// computeGroups runs the parallel scan-aggregate and returns the merged
// partial group states without finalizing them — the seam the sharded
// scatter executor uses to ship mergeable partials instead of finished
// batches.
func (op *morselAggOp) computeGroups() (map[string]*groupState, error) {
	// Scan a snapshot: concurrent appends to the live table neither tear
	// the read prefix nor move the row count mid-scan, and every worker
	// sees the same version.
	table := op.scan.Table.Snapshot()
	nRows := table.NumRows()
	op.counters.Passes++
	op.kern = op.compileKernels(table)

	blockSize := table.BlockSize()
	morselRows := blockSize
	for morselRows < minMorselRows {
		morselRows += blockSize
	}
	nMorsels := (nRows + morselRows - 1) / morselRows

	workers := op.workers
	if workers > nMorsels {
		workers = nMorsels
	}
	if workers < 1 {
		workers = 1
	}

	wks := make([]*morselWorker, workers)
	for w := range wks {
		wk, err := op.newWorker(table)
		if err != nil {
			return nil, err
		}
		wks[w] = wk
	}

	// Trace setup happens before the workers launch and only observes the
	// already-decided morsel geometry: worker spans are pre-created here in
	// index order so the profile is deterministic, and nothing below feeds
	// back into sizing, claiming, or merge order.
	var workerSpans []*trace.Span
	if op.sp != nil {
		op.sp.SetAttrInt("workers", int64(workers))
		op.sp.SetAttrInt("morsels", int64(nMorsels))
		op.sp.SetAttrInt("morsel_rows", int64(morselRows))
		if op.scan.Sample != nil {
			op.sp.SetAttr("sample", op.scan.Sample.String())
		}
		workerSpans = make([]*trace.Span, workers)
		for w := range workerSpans {
			workerSpans[w] = op.sp.NewChild(fmt.Sprintf("worker %d", w))
		}
	}

	partials := make([]map[string]*groupState, nMorsels)
	if nMorsels > 0 {
		runCtx, cancel := context.WithCancel(op.ctx)
		defer cancel()
		var (
			next     int64
			wg       sync.WaitGroup
			once     sync.Once
			firstErr error
		)
		fail := func(err error) {
			// First failure wins and cancels the siblings.
			once.Do(func() { firstErr = err; cancel() })
		}
		for w, wk := range wks {
			var wsp *trace.Span
			if workerSpans != nil {
				wsp = workerSpans[w]
			}
			wg.Add(1)
			go func(wk *morselWorker, wsp *trace.Span) {
				defer wg.Done()
				// Contain worker panics: convert to a typed error that fails
				// only this query and cancels the sibling workers, instead
				// of killing the process.
				defer func() {
					if r := recover(); r != nil {
						fail(fault.AsError(r))
					}
				}()
				var (
					busy      time.Duration
					morsels   int64
					wallStart time.Time
				)
				if wsp != nil {
					wallStart = time.Now()
				}
				for {
					m := int(atomic.AddInt64(&next, 1)) - 1
					if m >= nMorsels {
						break
					}
					if err := injectMorsel.Inject(); err != nil {
						fail(err)
						break
					}
					lo := m * morselRows
					hi := lo + morselRows
					if hi > nRows {
						hi = nRows
					}
					var part map[string]*groupState
					var err error
					if wsp != nil {
						t0 := time.Now()
						part, err = wk.processMorsel(runCtx, lo, hi)
						busy += time.Since(t0)
						morsels++
					} else {
						part, err = wk.processMorsel(runCtx, lo, hi)
					}
					if err != nil {
						fail(err)
						break
					}
					partials[m] = part
				}
				if wsp != nil {
					// Stall = wall time minus morsel-processing time: claim
					// contention plus tail idling after the last morsel.
					wsp.AddTime(busy)
					wsp.SetAttrInt("morsels", morsels)
					stall := time.Since(wallStart) - busy
					if stall < 0 {
						stall = 0
					}
					wsp.SetAttr("stall", stall.Round(time.Microsecond).String())
					wsp.SetRowsIn(wk.counters.RowsScanned)
					wsp.AddRows(wk.counters.RowsEmitted)
				}
			}(wk, wsp)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	for _, wk := range wks {
		op.counters.Add(wk.counters)
		op.scanned += wk.counters.RowsScanned
	}

	var mergeStart time.Time
	if op.sp != nil {
		mergeStart = time.Now()
	}
	// Ordered reduction: fold partials in ascending morsel order. Each
	// morsel contributes to a group exactly once, so per group the float
	// operation sequence is fixed by morsel index alone — map iteration
	// order within a partial only interleaves independent groups.
	groups := make(map[string]*groupState)
	for _, part := range partials {
		for key, gs := range part {
			if dst, ok := groups[key]; ok {
				mergeGroupState(dst, gs)
			} else {
				groups[key] = gs
			}
		}
	}
	if op.sp != nil {
		ms := op.sp.NewChild("merge")
		ms.AddTime(time.Since(mergeStart))
		ms.SetAttrInt("partials", int64(nMorsels))
		ms.SetAttrInt("groups", int64(len(groups)))
	}
	return groups, nil
}

// morselWorker holds one worker's private sampler and counters. Samplers
// are deterministic functions of (seed, row/block index, key), so every
// worker's instance makes identical decisions; each worker gets its own
// only to keep the hot loop free of sharing.
type morselWorker struct {
	op        *morselAggOp
	table     *storage.Table
	sampler   sample.RowSampler
	blockSamp *sample.Block
	keyBuf    []storage.Value
	groupBuf  []storage.Value
	counters  Counters
}

func (op *morselAggOp) newWorker(table *storage.Table) (*morselWorker, error) {
	wk := &morselWorker{op: op, table: table,
		groupBuf: make([]storage.Value, len(op.node.GroupBy))}
	if s := op.scan.Sample; s != nil {
		rs, err := sample.New(*s, table.BlockSize())
		if err != nil {
			return nil, err
		}
		switch st := rs.(type) {
		case *sample.Block:
			wk.blockSamp = st
		case *sample.BiLevel:
			wk.blockSamp = st.BlockSampler()
			wk.sampler = biLevelRowStage{st}
		default:
			wk.sampler = rs
		}
		wk.keyBuf = make([]storage.Value, len(op.keyIdx))
	}
	return wk, nil
}

// processMorsel runs the fused pipeline over rows [lo, hi) — morsels are
// block-aligned, so each block belongs to exactly one morsel and the
// block counters stay exact — and returns the partial aggregation state.
func (wk *morselWorker) processMorsel(ctx context.Context, lo, hi int) (map[string]*groupState, error) {
	op := wk.op
	kern := &op.kern
	groups := make(map[string]*groupState)
	blockSize := wk.table.BlockSize()
	var weightCol storage.Column
	if op.weightIdx >= 0 {
		weightCol = wk.table.Column(op.weightIdx)
	}
	// Global aggregates have a single group; hoist it out of the row loop.
	var global *groupState
	if len(op.node.GroupBy) == 0 {
		global = newGroupState("", nil, len(op.node.Aggs))
		groups[""] = global
	}
	for row := lo; row < hi; {
		// One cancellation checkpoint per block.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		block := row / blockSize
		blockEnd := (block + 1) * blockSize
		if blockEnd > hi {
			blockEnd = hi
		}
		blockWeight := 1.0
		if wk.blockSamp != nil {
			d := wk.blockSamp.DecideBlock(block)
			if !d.Keep {
				wk.counters.BlocksSkipped++
				row = blockEnd
				continue
			}
			wk.counters.BlocksScanned++
			blockWeight = d.Weight
		}
		for ; row < blockEnd; row++ {
			wk.counters.RowsScanned++
			if kern.filter != nil {
				if !kern.filter(row) {
					continue
				}
			} else if op.scan.Filter != nil {
				ok, err := expr.EvalBool(op.scan.Filter, tableRow{t: wk.table, idx: row})
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			w := blockWeight
			if wk.sampler != nil {
				key := ""
				if len(op.keyIdx) > 0 {
					for i, idx := range op.keyIdx {
						wk.keyBuf[i] = wk.table.Column(idx).Value(row)
					}
					key = sample.KeyOf(wk.keyBuf)
				}
				d := wk.sampler.Decide(row, key)
				if !d.Keep {
					continue
				}
				w *= d.Weight
			}
			if weightCol != nil {
				wv := weightCol.Value(row)
				if !wv.IsNull() {
					w *= wv.AsFloat()
				}
			}
			wk.counters.RowsEmitted++
			var mr mappedRow
			if kern.needRow {
				mr = mappedRow{t: wk.table, idx: row, out: op.outIdx}
			}
			keep := true
			for i, pred := range op.residual {
				if k := kern.residual[i]; k != nil {
					if !k(row) {
						keep = false
						break
					}
					continue
				}
				ok, err := expr.EvalBool(pred, mr)
				if err != nil {
					return nil, err
				}
				if !ok {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			gs := global
			if gs == nil {
				for k, ge := range op.node.GroupBy {
					if ci := kern.groupCol[k]; ci >= 0 {
						wk.groupBuf[k] = wk.table.Column(ci).Value(row)
						continue
					}
					v, err := ge.Eval(mr)
					if err != nil {
						return nil, err
					}
					wk.groupBuf[k] = v
				}
				key := groupKeyOf(wk.groupBuf)
				var ok bool
				if gs, ok = groups[key]; !ok {
					gs = newGroupState(key, wk.groupBuf, len(op.node.Aggs))
					groups[key] = gs
				}
			}
			gs.n++
			for j := range op.node.Aggs {
				st := gs.aggs[j]
				if w != 1 {
					st.weighted = true
				}
				switch kern.slotMode[j] {
				case slotCountStar:
					st.ht.Add(1, w)
					st.nonNull++
				case slotCountCol:
					if _, null := kern.slotArg[j](row); !null {
						st.ht.Add(1, w)
						st.nonNull++
					}
				case slotSumAvg:
					if v, null := kern.slotArg[j](row); !null {
						st.ht.Add(v, w)
						st.nonNull++
					}
				case slotPercentile:
					if v, null := kern.slotArg[j](row); !null {
						st.pctVals = append(st.pctVals, v)
						st.pctWeights = append(st.pctWeights, w)
						st.nonNull++
					}
				default:
					if err := accumulate(st, op.node.Aggs[j], mr, w); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return groups, nil
}

// newGroupState builds an empty group state; groupVal is copied.
func newGroupState(key string, groupVal []storage.Value, slots int) *groupState {
	gs := &groupState{key: key}
	if len(groupVal) > 0 {
		gs.groupVal = append([]storage.Value(nil), groupVal...)
	}
	gs.aggs = make([]*aggState, slots)
	for j := range gs.aggs {
		gs.aggs[j] = &aggState{}
	}
	return gs
}

// mergeGroupState folds src into dst; callers fold in morsel order.
func mergeGroupState(dst, src *groupState) {
	dst.n += src.n
	for j := range dst.aggs {
		mergeAggState(dst.aggs[j], src.aggs[j])
	}
}

// mergeAggState folds one aggregate's partial state into another. Every
// component is a plain sum, union, extremum, or ordered concatenation, so
// folding partials in morsel order reproduces the serial accumulation
// sequence of the same morsel decomposition exactly.
func mergeAggState(dst, src *aggState) {
	dst.ht.Merge(src.ht)
	dst.weighted = dst.weighted || src.weighted
	dst.nonNull += src.nonNull
	if !src.min.IsNull() && (dst.min.IsNull() || src.min.Compare(dst.min) < 0) {
		dst.min = src.min
	}
	if !src.max.IsNull() && (dst.max.IsNull() || src.max.Compare(dst.max) > 0) {
		dst.max = src.max
	}
	if len(src.distinct) > 0 {
		if dst.distinct == nil {
			dst.distinct = make(map[string]struct{}, len(src.distinct))
		}
		for k := range src.distinct {
			dst.distinct[k] = struct{}{}
		}
	}
	dst.pctVals = append(dst.pctVals, src.pctVals...)
	dst.pctWeights = append(dst.pctWeights, src.pctWeights...)
}
