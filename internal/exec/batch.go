// Package exec implements the physical, streaming (Volcano-style, batched)
// executor for logical plans: table scans with inline sampling, filters,
// projections, hash joins, weighted hash aggregation with
// Horvitz–Thompson variance tracking, sorting, and limits.
package exec

import (
	"repro/internal/storage"
)

// BatchSize is the number of rows per batch flowing between operators.
const BatchSize = 4096

// AggDetail carries the statistical state of one aggregate in one group,
// used by AQP engines to build confidence intervals.
type AggDetail struct {
	// Estimate is the (Horvitz–Thompson) point estimate.
	Estimate float64
	// Variance is the estimated variance of the estimator.
	Variance float64
	// N is the number of input rows that contributed.
	N float64
	// Weighted reports whether any contributing row had weight != 1
	// (i.e. the value is an estimate rather than an exact answer).
	Weighted bool
	// Supported is false for aggregates whose error cannot be analyzed
	// under sampling (MIN, MAX, COUNT DISTINCT).
	Supported bool
	// HasInterval marks aggregates whose uncertainty is an explicit
	// interval rather than a variance (PERCENTILE, via the DKW bound).
	// Lo/Hi then bracket the estimate at ~95% confidence.
	HasInterval bool
	Lo, Hi      float64
}

// GroupDetail aggregates the per-aggregate details of one output group.
type GroupDetail struct {
	// Key is the canonical group key ("" for global aggregates).
	Key string
	// GroupN is the number of input rows in the group.
	GroupN float64
	// Aggs has one entry per aggregate slot.
	Aggs []AggDetail
}

// Batch is a unit of rows flowing between operators.
type Batch struct {
	Rows [][]storage.Value
	// Weights are per-row Horvitz–Thompson weights; nil means all 1.
	Weights []float64
	// Details, when non-nil, parallels Rows with per-group statistics
	// produced by an upstream aggregation.
	Details []*GroupDetail
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Weight returns the weight of row i.
func (b *Batch) Weight(i int) float64 {
	if b.Weights == nil {
		return 1
	}
	return b.Weights[i]
}

// Counters tallies the physical work of a plan execution; the experiment
// harness uses them as scale-free cost measures.
type Counters struct {
	// RowsScanned counts base-table rows the scan had to read (rows in
	// visited blocks). Row-level samplers still read every row; the block
	// sampler skips whole blocks.
	RowsScanned int64
	// RowsEmitted counts rows surviving scan filters and samplers.
	RowsEmitted int64
	// BlocksScanned / BlocksSkipped count block-sampler decisions.
	BlocksScanned int64
	BlocksSkipped int64
	// Passes counts table scans opened (passes over base data).
	Passes int64
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.RowsScanned += o.RowsScanned
	c.RowsEmitted += o.RowsEmitted
	c.BlocksScanned += o.BlocksScanned
	c.BlocksSkipped += o.BlocksSkipped
	c.Passes += o.Passes
}

// Operator is a physical operator. Usage: Open, then Next until it
// returns a nil batch, then Close.
type Operator interface {
	Schema() storage.Schema
	Open() error
	Next() (*Batch, error)
	Close() error
}

// Result is a fully drained plan execution.
type Result struct {
	Schema storage.Schema
	Rows   [][]storage.Value
	// Weights parallels Rows (nil = all 1).
	Weights []float64
	// Details parallels Rows when the plan aggregates.
	Details  []*GroupDetail
	Counters Counters
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return len(r.Rows) }

// Value returns the value at row i, column j.
func (r *Result) Value(i, j int) storage.Value { return r.Rows[i][j] }

// ColumnIndex returns the index of the named output column, or -1.
func (r *Result) ColumnIndex(name string) int { return r.Schema.ColumnIndex(name) }
