package exec

// Operator-level tracing. Each plan node gets a span named by its
// Explain() string; the operator is wrapped in traceOp, which accumulates
// busy time across Open/Next/Close and counts rows out. When tracing is
// disabled (no tracer on the context) the builders return the bare
// operator unchanged, so the untraced hot path is untouched.

import (
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// inputRowsReporter is implemented by operators that know their true input
// cardinality (rows scanned), which is not visible from child batches:
// scanOp and the fused morselAggOp. For everything else rows-in is
// inferred at snapshot time from child rows-out.
type inputRowsReporter interface {
	inputRows() int64
}

// traceOp decorates an operator with span accounting. Reported time is
// inclusive: a parent's span includes time spent pulling from children,
// exactly like EXPLAIN ANALYZE in row-store databases.
type traceOp struct {
	inner Operator
	sp    *trace.Span
}

// wrapOp attaches op to sp, or returns op unchanged when tracing is off.
func wrapOp(op Operator, sp *trace.Span) Operator {
	if sp == nil {
		return op
	}
	return &traceOp{inner: op, sp: sp}
}

// Schema implements Operator.
func (op *traceOp) Schema() storage.Schema { return op.inner.Schema() }

// Open implements Operator.
func (op *traceOp) Open() error {
	t0 := time.Now()
	err := op.inner.Open()
	op.sp.AddTime(time.Since(t0))
	return err
}

// Next implements Operator.
func (op *traceOp) Next() (*Batch, error) {
	t0 := time.Now()
	b, err := op.inner.Next()
	op.sp.AddTime(time.Since(t0))
	if b != nil {
		op.sp.AddRows(int64(b.Len()))
	}
	return b, err
}

// Close implements Operator.
func (op *traceOp) Close() error {
	t0 := time.Now()
	err := op.inner.Close()
	op.sp.AddTime(time.Since(t0))
	if r, ok := op.inner.(inputRowsReporter); ok {
		op.sp.SetRowsIn(r.inputRows())
	}
	return err
}
