package exec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
)

// hashAggOp groups rows and computes (possibly weighted) aggregates. When
// any input row carries a weight != 1 the outputs are Horvitz–Thompson
// estimates, and per-group variance estimates are published in the batch's
// Details for downstream confidence-interval construction.
type hashAggOp struct {
	node  *plan.Aggregate
	child Op

	done bool
}

type aggState struct {
	ht       stats.HTEstimator
	min, max storage.Value
	distinct map[string]struct{}
	weighted bool
	nonNull  float64
	// Percentile state: the (weighted) observed values.
	pctVals    []float64
	pctWeights []float64
}

type groupState struct {
	key      string
	groupVal []storage.Value
	aggs     []*aggState
	n        float64
}

// Schema implements Operator.
func (op *hashAggOp) Schema() storage.Schema { return op.node.Schema() }

// Open implements Operator.
func (op *hashAggOp) Open() error { return op.child.Open() }

// Close implements Operator.
func (op *hashAggOp) Close() error { return op.child.Close() }

// Next implements Operator.
func (op *hashAggOp) Next() (*Batch, error) {
	if op.done {
		return nil, nil
	}
	op.done = true

	groups := make(map[string]*groupState)
	if err := drainIntoGroups(op.node, op.child, groups); err != nil {
		return nil, err
	}

	out := finalizeGroups(op.node, groups)
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

// drainIntoGroups drains child, accumulating every row into the group
// states. Shared by the serial hash aggregate and the per-shard partial
// executor (which finalizes only after merging partials across shards).
func drainIntoGroups(node *plan.Aggregate, child Op, groups map[string]*groupState) error {
	keyBuf := make([]storage.Value, len(node.GroupBy))
	for {
		in, err := child.Next()
		if err != nil {
			return err
		}
		if in == nil {
			return nil
		}
		for i, row := range in.Rows {
			r := expr.ValuesRow(row)
			for k, ge := range node.GroupBy {
				v, err := ge.Eval(r)
				if err != nil {
					return err
				}
				keyBuf[k] = v
			}
			key := groupKeyOf(keyBuf)
			gs, ok := groups[key]
			if !ok {
				gs = newGroupState(key, keyBuf, len(node.Aggs))
				groups[key] = gs
			}
			w := in.Weight(i)
			gs.n++
			for j, spec := range node.Aggs {
				if err := accumulate(gs.aggs[j], spec, r, w); err != nil {
					return err
				}
			}
		}
	}
}

// finalizeGroups renders accumulated group states to an output batch with
// per-group statistical details, ordered by canonical group key. Shared
// by the serial hash aggregate and the morsel-parallel operator.
func finalizeGroups(node *plan.Aggregate, groups map[string]*groupState) *Batch {
	// SQL semantics: a global aggregate over empty input yields one row.
	if len(groups) == 0 && len(node.GroupBy) == 0 {
		gs := &groupState{key: ""}
		gs.aggs = make([]*aggState, len(node.Aggs))
		for j := range gs.aggs {
			gs.aggs[j] = &aggState{}
		}
		groups[""] = gs
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := &Batch{}
	for _, k := range keys {
		gs := groups[k]
		row := make([]storage.Value, 0, len(gs.groupVal)+len(gs.aggs))
		row = append(row, gs.groupVal...)
		detail := &GroupDetail{Key: gs.key, GroupN: gs.n, Aggs: make([]AggDetail, len(gs.aggs))}
		for j, spec := range node.Aggs {
			v, d := finalize(gs.aggs[j], spec)
			row = append(row, v)
			detail.Aggs[j] = d
		}
		out.Rows = append(out.Rows, row)
		out.Details = append(out.Details, detail)
	}
	return out
}

func accumulate(st *aggState, spec plan.AggSpec, r expr.Row, w float64) error {
	if w != 1 {
		st.weighted = true
	}
	var v storage.Value
	if spec.Arg != nil {
		var err error
		v, err = spec.Arg.Eval(r)
		if err != nil {
			return err
		}
	}
	switch spec.Func {
	case sqlparse.AggCount:
		if spec.Star {
			st.ht.Add(1, w)
			st.nonNull++
			return nil
		}
		if v.IsNull() {
			return nil
		}
		if spec.Distinct {
			if st.distinct == nil {
				st.distinct = make(map[string]struct{})
			}
			st.distinct[v.GroupKey()] = struct{}{}
			return nil
		}
		st.ht.Add(1, w)
		st.nonNull++
	case sqlparse.AggSum, sqlparse.AggAvg:
		if v.IsNull() {
			return nil
		}
		if !v.Typ.Numeric() {
			return fmt.Errorf("exec: %s over non-numeric value", spec.Func)
		}
		st.ht.Add(v.AsFloat(), w)
		st.nonNull++
	case sqlparse.AggPercentile:
		if v.IsNull() {
			return nil
		}
		if !v.Typ.Numeric() {
			return fmt.Errorf("exec: PERCENTILE over non-numeric value")
		}
		st.pctVals = append(st.pctVals, v.AsFloat())
		st.pctWeights = append(st.pctWeights, w)
		st.nonNull++
	case sqlparse.AggMin:
		if v.IsNull() {
			return nil
		}
		st.nonNull++
		if st.min.IsNull() || v.Compare(st.min) < 0 {
			st.min = v
		}
	case sqlparse.AggMax:
		if v.IsNull() {
			return nil
		}
		st.nonNull++
		if st.max.IsNull() || v.Compare(st.max) > 0 {
			st.max = v
		}
	default:
		return fmt.Errorf("exec: unsupported aggregate %s", spec.Func)
	}
	return nil
}

func finalize(st *aggState, spec plan.AggSpec) (storage.Value, AggDetail) {
	switch spec.Func {
	case sqlparse.AggCount:
		if spec.Distinct {
			est := float64(len(st.distinct))
			return storage.Int64(int64(len(st.distinct))), AggDetail{
				Estimate: est, N: st.nonNull, Weighted: st.weighted, Supported: !st.weighted}
		}
		est := st.ht.Sum()
		return storage.Int64(int64(est + 0.5)), AggDetail{
			Estimate: est, Variance: st.ht.SumVariance(), N: st.ht.N(),
			Weighted: st.weighted, Supported: true}
	case sqlparse.AggSum:
		if st.nonNull == 0 {
			return storage.NullValue(storage.TypeFloat64), AggDetail{Supported: true}
		}
		return storage.Float64(st.ht.Sum()), AggDetail{
			Estimate: st.ht.Sum(), Variance: st.ht.SumVariance(), N: st.ht.N(),
			Weighted: st.weighted, Supported: true}
	case sqlparse.AggAvg:
		if st.nonNull == 0 {
			return storage.NullValue(storage.TypeFloat64), AggDetail{Supported: true}
		}
		return storage.Float64(st.ht.Mean()), AggDetail{
			Estimate: st.ht.Mean(), Variance: st.ht.MeanVariance(), N: st.ht.N(),
			Weighted: st.weighted, Supported: true}
	case sqlparse.AggMin:
		if st.min.IsNull() {
			return storage.NullValue(spec.OutType()), AggDetail{Supported: !st.weighted}
		}
		return st.min, AggDetail{Estimate: st.min.AsFloat(), N: st.nonNull,
			Weighted: st.weighted, Supported: !st.weighted}
	case sqlparse.AggMax:
		if st.max.IsNull() {
			return storage.NullValue(spec.OutType()), AggDetail{Supported: !st.weighted}
		}
		return st.max, AggDetail{Estimate: st.max.AsFloat(), N: st.nonNull,
			Weighted: st.weighted, Supported: !st.weighted}
	case sqlparse.AggPercentile:
		if len(st.pctVals) == 0 {
			return storage.NullValue(storage.TypeFloat64), AggDetail{Supported: true}
		}
		est, lo, hi := weightedQuantileWithDKW(st.pctVals, st.pctWeights, spec.Param, 0.95)
		return storage.Float64(est), AggDetail{
			Estimate: est, N: float64(len(st.pctVals)),
			Weighted: st.weighted, Supported: true,
			HasInterval: true, Lo: lo, Hi: hi}
	}
	return storage.Value{}, AggDetail{}
}

// weightedQuantileWithDKW computes the weighted q-quantile of the sample
// and a distribution-precision interval from the Dvoretzky–Kiefer–
// Wolfowitz inequality: with n observations, the empirical CDF deviates
// from the truth by more than ε with probability at most 2·e^(−2nε²), so
// the true q-quantile lies between the sample quantiles at q±ε.
func weightedQuantileWithDKW(vals, weights []float64, q, confidence float64) (est, lo, hi float64) {
	type vw struct{ v, w float64 }
	pairs := make([]vw, len(vals))
	var totalW float64
	for i := range vals {
		pairs[i] = vw{vals[i], weights[i]}
		totalW += weights[i]
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	quantile := func(p float64) float64 {
		if p <= 0 {
			return pairs[0].v
		}
		if p >= 1 {
			return pairs[len(pairs)-1].v
		}
		target := p * totalW
		var acc float64
		for _, pr := range pairs {
			acc += pr.w
			if acc >= target {
				return pr.v
			}
		}
		return pairs[len(pairs)-1].v
	}
	est = quantile(q)
	// DKW ε for the requested confidence; effective n is the observation
	// count (weights shift mass, observations carry the information).
	n := float64(len(pairs))
	eps := math.Sqrt(math.Log(2/(1-confidence)) / (2 * n))
	lo = quantile(q - eps)
	hi = quantile(q + eps)
	return est, lo, hi
}
