package exec

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// sortBatch orders the batch in place by the sort keys.
func sortBatch(b *Batch, keys []plan.SortKey) error {
	type rowKey struct {
		idx  int
		vals []storage.Value
	}
	rks := make([]rowKey, b.Len())
	for i, row := range b.Rows {
		vals := make([]storage.Value, len(keys))
		r := expr.ValuesRow(row)
		for k, sk := range keys {
			v, err := sk.Expr.Eval(r)
			if err != nil {
				return err
			}
			vals[k] = v
		}
		rks[i] = rowKey{idx: i, vals: vals}
	}
	sort.SliceStable(rks, func(i, j int) bool {
		for k, sk := range keys {
			c := rks[i].vals[k].Compare(rks[j].vals[k])
			if c == 0 {
				continue
			}
			if sk.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	rows := make([][]storage.Value, b.Len())
	var weights []float64
	if b.Weights != nil {
		weights = make([]float64, b.Len())
	}
	var details []*GroupDetail
	if b.Details != nil {
		details = make([]*GroupDetail, b.Len())
	}
	for i, rk := range rks {
		rows[i] = b.Rows[rk.idx]
		if weights != nil {
			weights[i] = b.Weights[rk.idx]
		}
		if details != nil {
			details[i] = b.Details[rk.idx]
		}
	}
	b.Rows = rows
	if weights != nil {
		b.Weights = weights
	}
	if details != nil {
		b.Details = details
	}
	return nil
}
