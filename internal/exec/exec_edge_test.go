package exec

import (
	"math"
	"testing"

	"repro/internal/storage"
)

// bigCatalog builds a table large enough to span many batches and blocks.
func bigCatalog(t *testing.T, rows, blockSize int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	tbl := storage.NewTableWithBlockSize("big", storage.Schema{
		{Name: "k", Type: storage.TypeInt64},
		{Name: "v", Type: storage.TypeFloat64},
	}, blockSize)
	batch := make([][]storage.Value, 0, 4096)
	for i := 0; i < rows; i++ {
		batch = append(batch, []storage.Value{
			storage.Int64(int64(i % 97)), storage.Float64(float64(i%1000) / 10)})
		if len(batch) == cap(batch) {
			if err := tbl.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := tbl.AppendRows(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestMultiBatchScan(t *testing.T) {
	// Rows > BatchSize forces several batches; counts must be exact.
	cat := bigCatalog(t, BatchSize*3+17, 64)
	res := runSQL(t, cat, "SELECT COUNT(*) FROM big")
	if got := f(t, res, 0, 0); got != float64(BatchSize*3+17) {
		t.Fatalf("count = %v", got)
	}
}

func TestWeightsSurviveSortAndLimit(t *testing.T) {
	cat := bigCatalog(t, 20000, 256)
	// Group-by over a sampled scan, then sort and limit: the Details
	// (needed for CIs) must follow the rows through both operators.
	res := runSQL(t, cat, `SELECT k, SUM(v) AS s FROM big TABLESAMPLE BERNOULLI (20)
		GROUP BY k ORDER BY s DESC LIMIT 5`)
	if res.NumRows() != 5 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Details == nil {
		t.Fatal("details lost through sort/limit")
	}
	for i, d := range res.Details {
		if d == nil {
			t.Fatalf("row %d detail nil", i)
		}
		if !d.Aggs[0].Weighted {
			t.Errorf("row %d should be weighted", i)
		}
	}
	// Sorted descending on the estimate.
	for i := 1; i < res.NumRows(); i++ {
		if f(t, res, i, 1) > f(t, res, i-1, 1) {
			t.Fatal("not sorted")
		}
	}
}

func TestDetailsSurviveHaving(t *testing.T) {
	cat := bigCatalog(t, 20000, 256)
	res := runSQL(t, cat, `SELECT k, COUNT(*) AS n FROM big TABLESAMPLE BERNOULLI (50)
		GROUP BY k HAVING COUNT(*) > 50`)
	if res.NumRows() == 0 {
		t.Fatal("having filtered everything")
	}
	if res.Details == nil || res.Details[0] == nil {
		t.Fatal("details lost through having filter")
	}
}

func TestBiLevelScanSkipsBlocks(t *testing.T) {
	cat := bigCatalog(t, 50000, 500) // 100 blocks
	res := runSQL(t, cat, "SELECT COUNT(*), SUM(v) FROM big TABLESAMPLE BILEVEL (20, 10)")
	c := res.Counters
	if c.BlocksSkipped == 0 {
		t.Fatal("bilevel must skip blocks")
	}
	if c.BlocksScanned+c.BlocksSkipped != 100 {
		t.Fatalf("blocks = %+v", c)
	}
	// Rows scanned only from kept blocks.
	if c.RowsScanned != c.BlocksScanned*500 {
		t.Fatalf("rows scanned %d from %d blocks", c.RowsScanned, c.BlocksScanned)
	}
	// HT count estimate within 35% of 50000 at this tiny effective size.
	got := f(t, res, 0, 0)
	if math.Abs(got-50000)/50000 > 0.35 {
		t.Errorf("bilevel count estimate = %v", got)
	}
}

func TestScanFilterPlusSamplerOrder(t *testing.T) {
	// The distinct sampler must see only qualifying rows: a group that is
	// large pre-filter but tiny post-filter must still be kept whole.
	cat := storage.NewCatalog()
	tbl := storage.NewTable("t", storage.Schema{
		{Name: "g", Type: storage.TypeInt64},
		{Name: "flag", Type: storage.TypeBool},
	})
	// Group 1: 1000 rows, only 3 with flag=true.
	for i := 0; i < 1000; i++ {
		if err := tbl.AppendRow(storage.Int64(1), storage.Bool(i < 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, `SELECT g, COUNT(*) AS n FROM t TABLESAMPLE DISTINCT (1, 30) ON (g)
		WHERE flag = true GROUP BY g`)
	if res.NumRows() != 1 {
		t.Fatalf("group lost: %d rows", res.NumRows())
	}
	// All 3 qualifying rows pass through the keep window with weight 1:
	// the count is exact.
	if f(t, res, 0, 1) != 3 {
		t.Errorf("count = %v, want exactly 3 (filter-then-sample ordering)", f(t, res, 0, 1))
	}
}

func TestLimitAcrossBatches(t *testing.T) {
	cat := bigCatalog(t, BatchSize*2, 512)
	res := runSQL(t, cat, "SELECT v FROM big LIMIT 5000")
	if res.NumRows() != 5000 {
		t.Fatalf("limit across batches = %d", res.NumRows())
	}
}

func TestJoinNullKeysDropped(t *testing.T) {
	cat := storage.NewCatalog()
	l := storage.NewTable("l", storage.Schema{{Name: "lk", Type: storage.TypeInt64}})
	r := storage.NewTable("r", storage.Schema{{Name: "rk", Type: storage.TypeInt64}})
	if err := l.AppendRow(storage.Int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRow(storage.NullValue(storage.TypeInt64)); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendRow(storage.Int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendRow(storage.NullValue(storage.TypeInt64)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(l); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(r); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, "SELECT COUNT(*) FROM l JOIN r ON lk = rk")
	if f(t, res, 0, 0) != 1 {
		t.Fatalf("NULL join keys must not match: count = %v", f(t, res, 0, 0))
	}
}

func TestGroupByNullValues(t *testing.T) {
	cat := storage.NewCatalog()
	tbl := storage.NewTable("t", storage.Schema{{Name: "g", Type: storage.TypeString}})
	for _, v := range []storage.Value{
		storage.Str("a"), storage.NullValue(storage.TypeString),
		storage.NullValue(storage.TypeString), storage.Str("a")} {
		if err := tbl.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, "SELECT g, COUNT(*) FROM t GROUP BY g")
	// NULLs group together (grouping equality, not SQL ternary).
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d", res.NumRows())
	}
}

func TestCountersAccumulateAcrossScans(t *testing.T) {
	cat := bigCatalog(t, 10000, 512)
	tbl2 := storage.NewTable("small", storage.Schema{{Name: "k", Type: storage.TypeInt64}})
	for i := 0; i < 97; i++ {
		if err := tbl2.AppendRow(storage.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl2); err != nil {
		t.Fatal(err)
	}
	res := runSQL(t, cat, "SELECT COUNT(*) FROM big JOIN small ON big.k = small.k")
	if res.Counters.Passes != 2 {
		t.Fatalf("passes = %d", res.Counters.Passes)
	}
	if res.Counters.RowsScanned != 10000+97 {
		t.Fatalf("rows scanned = %d", res.Counters.RowsScanned)
	}
}
