package exec

// Partial aggregation states as first-class values.
//
// Sharded scatter-gather execution fans a query's aggregate subtree out to
// independent shards, each of which returns an AggPartial — the same
// mergeable group states the morsel-parallel operator folds internally —
// and the gather step merges them in shard order, finalizes once, and
// re-applies the plan nodes sitting above the aggregate (HAVING filter,
// projection, sort, limit). Merging HT partials across shards is exactly
// stratified composition of per-shard estimators (every component is a
// plain sum over sampled rows), so the composed confidence intervals are
// the ones internal/stats.CombineTotals/CombineMeans would produce — see
// the equivalence test in stats — and folding in fixed shard order keeps
// the float operation sequence deterministic, preserving the repository's
// bit-reproducibility guarantee.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/trace"
)

// AggPartial is the portable partial-aggregation state of one execution
// unit (one shard, or one unsharded run): the per-group accumulator map of
// a single Aggregate node plus the physical work counters of producing it.
type AggPartial struct {
	groups map[string]*groupState
	// Counters is the physical work performed to produce this partial.
	Counters Counters
}

// NumGroups returns the number of groups accumulated so far.
func (p *AggPartial) NumGroups() int { return len(p.groups) }

// EmptyAggPartial returns a partial with no accumulated groups — the
// correct state when every execution unit was provably empty of matches
// (e.g. all shards pruned). Finalizing it applies the usual SQL
// semantics: a global aggregate still emits its one row.
func EmptyAggPartial() *AggPartial {
	return &AggPartial{groups: map[string]*groupState{}}
}

// RunAggPartialContext executes root's aggregate subtree — the (single)
// Aggregate node and everything below it — and returns the mergeable
// partial state without finalizing it. Eligible aggregate-over-scan shapes
// run on the morsel-parallel path with the given worker count; other
// shapes (e.g. the stateful distinct sampler) accumulate serially. Plan
// nodes above the aggregate are not executed here; FinalizeAggPartial
// re-applies them after partials are merged.
func RunAggPartialContext(ctx context.Context, root plan.Node, workers int) (*AggPartial, error) {
	a := plan.FindAggregate(root)
	if a == nil {
		return nil, fmt.Errorf("exec: plan has no aggregate to compute a partial for")
	}
	if workers <= 0 {
		workers = ResolveWorkers(ctx, 0)
	}
	part := &AggPartial{}
	if scan, residual, ok := morselEligible(a); ok {
		sp, _ := trace.StartOp(ctx, a.Explain()+" [morsel partial]")
		op, err := newMorselAggOp(ctx, a, scan, residual, &part.Counters, workers)
		if err != nil {
			sp.End()
			return nil, err
		}
		op.sp = sp
		sp.SetAttr("scan", scan.Explain())
		groups, err := op.computeGroups()
		sp.AddRows(op.scanned)
		sp.End()
		if err != nil {
			return nil, err
		}
		part.groups = groups
		return part, nil
	}
	// Serial path: run the child operator tree and accumulate its rows.
	sp, cctx := trace.StartOp(ctx, a.Explain()+" [serial partial]")
	defer sp.End()
	child, err := BuildOperatorContext(cctx, a.Child, &part.Counters)
	if err != nil {
		return nil, err
	}
	if err := child.Open(); err != nil {
		return nil, err
	}
	groups := make(map[string]*groupState)
	if err := drainIntoGroups(a, child, groups); err != nil {
		_ = child.Close()
		return nil, err
	}
	if err := child.Close(); err != nil {
		return nil, err
	}
	part.groups = groups
	return part, nil
}

// MergeAggPartials folds the partials together in slice order and returns
// the combined state. Nil entries (failed or skipped units) are ignored.
// The first non-nil partial is reused as the merge base, so merging a
// single partial is a move, not a recomputation — the shard-count-1 path
// performs exactly the float operations of the unsharded path. Per group
// the fold order is fixed by slice position alone; map iteration within a
// partial only interleaves independent groups.
func MergeAggPartials(parts []*AggPartial) *AggPartial {
	var dst *AggPartial
	for _, p := range parts {
		if p == nil {
			continue
		}
		if dst == nil {
			dst = p
			continue
		}
		dst.Counters.Add(p.Counters)
		for key, gs := range p.groups {
			if g, ok := dst.groups[key]; ok {
				mergeGroupState(g, gs)
			} else {
				dst.groups[key] = gs
			}
		}
	}
	return dst
}

// SlotMoment summarizes one aggregate slot across all of a partial's
// groups: the summed Horvitz–Thompson estimate, its summed variance, and
// the sampled rows contributing. Summing over groups is valid because
// per-group HT components are sums over disjoint row sets; a contract
// pilot uses these totals to measure per-shard spread without finalizing.
type SlotMoment struct {
	Estimate float64
	Variance float64
	N        float64
}

// SlotMoments extracts per-slot pilot moments from the partial. The
// result is deterministic (each entry is a sum over groups of values
// that are themselves order-independent per group, and float addition
// over the map is confined to per-slot totals folded in group-key
// order). Returns nil when the partial has no groups.
func (p *AggPartial) SlotMoments() []SlotMoment {
	if p == nil || len(p.groups) == 0 {
		return nil
	}
	var slots int
	keys := make([]string, 0, len(p.groups))
	for key, gs := range p.groups {
		keys = append(keys, key)
		if len(gs.aggs) > slots {
			slots = len(gs.aggs)
		}
	}
	sort.Strings(keys)
	out := make([]SlotMoment, slots)
	for _, key := range keys {
		for i, st := range p.groups[key].aggs {
			out[i].Estimate += st.ht.Sum()
			out[i].Variance += st.ht.SumVariance()
			out[i].N += st.ht.N()
		}
	}
	return out
}

// ScaleForCoverage rescales every group's estimators as if the covered
// population were 1/r of the full one: SUM and COUNT estimates scale by r
// with variances ×r², while AVG (a ratio of two scaled totals) and its
// delta-method variance are invariant, and MIN/MAX/PERCENTILE states are
// untouched. Used when hash-distributed shards are lost mid-query: the
// surviving shards are an unbiased window on the table, so scaling by
// total/covered rows extrapolates honestly (see stats.ExtrapolateTotal
// for why this is wrong for range shards).
func (p *AggPartial) ScaleForCoverage(r float64) {
	if r <= 0 || r == 1 {
		return
	}
	for _, gs := range p.groups {
		for _, st := range gs.aggs {
			st.ht.ScalePopulation(r)
		}
	}
}

// partialSourceOp is a leaf operator that finalizes an already-merged
// partial into the aggregate's output batch: the gather-side stand-in for
// the whole scan…aggregate subtree.
type partialSourceOp struct {
	node *plan.Aggregate
	part *AggPartial
	done bool
}

// Schema implements Operator.
func (op *partialSourceOp) Schema() storage.Schema { return op.node.Schema() }

// Open implements Operator.
func (op *partialSourceOp) Open() error { return nil }

// Close implements Operator.
func (op *partialSourceOp) Close() error { return nil }

// Next implements Operator.
func (op *partialSourceOp) Next() (*Batch, error) {
	if op.done {
		return nil, nil
	}
	op.done = true
	out := finalizeGroups(op.node, op.part.groups)
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

// Gatherable reports whether root has the plan shape FinalizeAggPartial
// can reassemble: a single Aggregate with only Filter/Project/Sort/Limit
// above it. Callers check this before committing to scatter-gather.
func Gatherable(root plan.Node) bool {
	n := root
	for {
		switch t := n.(type) {
		case *plan.Aggregate:
			return true
		case *plan.Filter:
			n = t.Child
		case *plan.Project:
			n = t.Child
		case *plan.Sort:
			n = t.Child
		case *plan.Limit:
			n = t.Child
		default:
			return false
		}
	}
}

// FinalizeAggPartial finalizes a merged partial under root's plan shape:
// the Aggregate node is replaced by the precomputed partial and the chain
// above it (HAVING filter, projection, sort, limit) executes normally, so
// gather-side results are shaped and detailed exactly like an unsharded
// run. The partial's counters are carried into the result.
func FinalizeAggPartial(ctx context.Context, root plan.Node, part *AggPartial) (*Result, error) {
	counters := part.Counters
	op, err := buildGatherOperator(ctx, root, part, &counters)
	if err != nil {
		return nil, err
	}
	return drainOperator(ctx, op, root.Schema(), &counters)
}

// buildGatherOperator compiles the above-aggregate plan chain, splicing in
// the precomputed partial at the Aggregate node. Shapes with anything but
// Filter/Project/Sort/Limit above the aggregate are not gatherable.
func buildGatherOperator(ctx context.Context, n plan.Node, part *AggPartial, counters *Counters) (Operator, error) {
	switch t := n.(type) {
	case *plan.Aggregate:
		sp, _ := trace.StartOp(ctx, t.Explain()+" [gather]")
		sp.SetAttrInt("groups", int64(len(part.groups)))
		return wrapOp(&partialSourceOp{node: t, part: part}, sp), nil
	case *plan.Filter:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildGatherOperator(cctx, t.Child, part, counters)
		if err != nil {
			return nil, err
		}
		return wrapOp(&filterOp{child: child, pred: t.Pred}, sp), nil
	case *plan.Project:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildGatherOperator(cctx, t.Child, part, counters)
		if err != nil {
			return nil, err
		}
		return wrapOp(&projectOp{child: child, node: t, schema: t.Schema()}, sp), nil
	case *plan.Sort:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildGatherOperator(cctx, t.Child, part, counters)
		if err != nil {
			return nil, err
		}
		return wrapOp(&sortOp{node: t, child: child}, sp), nil
	case *plan.Limit:
		sp, cctx := trace.StartOp(ctx, t.Explain())
		child, err := buildGatherOperator(cctx, t.Child, part, counters)
		if err != nil {
			return nil, err
		}
		return wrapOp(&limitOp{child: child, n: t.N}, sp), nil
	}
	return nil, fmt.Errorf("exec: plan node %T above the aggregate is not gatherable", n)
}
