package exec

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// Sampling at rate 100% must be *exactly* equivalent to not sampling, for
// every sampler kind and every query shape: all rows keep, all weights 1,
// so the full pipeline (weights, details, HT estimators) degenerates to
// exact execution. This is the strongest end-to-end invariant the
// weighted executor has.
func TestFullRateSamplingEquivalence(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 13, LineitemRows: 5000, BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT COUNT(*), SUM(l_quantity), AVG(l_extendedprice) FROM lineitem%s",
		"SELECT l_returnflag, COUNT(*) AS n, SUM(l_extendedprice) AS s FROM lineitem%s GROUP BY l_returnflag ORDER BY l_returnflag",
		"SELECT SUM(l_extendedprice) FROM lineitem%s WHERE l_quantity < 25 AND l_discount > 0.01",
		"SELECT o_orderpriority, COUNT(*) FROM lineitem%s JOIN orders ON l_orderkey = o_orderkey GROUP BY o_orderpriority ORDER BY o_orderpriority",
		"SELECT l_shipmode, AVG(l_quantity) FROM lineitem%s GROUP BY l_shipmode HAVING COUNT(*) > 10 ORDER BY l_shipmode",
	}
	samplers := []string{
		" TABLESAMPLE BERNOULLI (100)",
		" TABLESAMPLE SYSTEM (100)",
		" TABLESAMPLE UNIVERSE (100) ON (l_orderkey)",
		" TABLESAMPLE DISTINCT (100, 5) ON (l_returnflag)",
		" TABLESAMPLE BILEVEL (100, 100)",
	}
	for _, q := range queries {
		want := runSQL(t, star.Catalog, fmt.Sprintf(q, ""))
		for _, s := range samplers {
			got := runSQL(t, star.Catalog, fmt.Sprintf(q, s))
			if got.NumRows() != want.NumRows() {
				t.Fatalf("%s with %s: %d rows vs %d", q, s, got.NumRows(), want.NumRows())
			}
			for i := range want.Rows {
				for j := range want.Rows[i] {
					a, b := got.Rows[i][j], want.Rows[i][j]
					if a.AsFloat() != b.AsFloat() && a.String() != b.String() {
						t.Errorf("%s with %s: row %d col %d = %v, want %v", q, s, i, j, a, b)
					}
				}
			}
		}
	}
}

// A sampled aggregate plus its CI must bracket the exact value most of the
// time across seeds — the executor-level version of the coverage claim.
func TestSampledCIBracketsExact(t *testing.T) {
	star, err := workload.GenerateStar(workload.Config{Seed: 17, LineitemRows: 20000})
	if err != nil {
		t.Fatal(err)
	}
	exact := runSQL(t, star.Catalog, "SELECT SUM(l_quantity) FROM lineitem")
	truth := exact.Rows[0][0].AsFloat()
	res := runSQL(t, star.Catalog, "SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE BERNOULLI (10)")
	d := res.Details[0].Aggs[0]
	if !d.Weighted {
		t.Fatal("should be weighted")
	}
	est := d.Estimate
	sd := d.Variance
	// est ± 4·sqrt(var) must bracket the truth for this well-behaved case.
	lo, hi := est-4*sqrt(sd), est+4*sqrt(sd)
	if truth < lo || truth > hi {
		t.Errorf("truth %v outside [%v, %v]", truth, lo, hi)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
