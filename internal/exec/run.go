package exec

import (
	"context"
	"fmt"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/trace"
)

// BuildOperator compiles a logical plan into a physical operator tree.
// All scans share the provided counters. The tree observes no
// cancellation; use BuildOperatorContext for deadline-aware execution.
func BuildOperator(n plan.Node, counters *Counters) (Operator, error) {
	return BuildOperatorContext(context.Background(), n, counters)
}

// BuildOperatorContext compiles a logical plan into a physical operator
// tree whose scans check ctx between batches, so long scans observe
// cancellation and deadlines at BatchSize granularity. When the context
// carries a trace span, every operator is wrapped with span accounting
// under a child span named by the plan node.
func BuildOperatorContext(ctx context.Context, n plan.Node, counters *Counters) (Operator, error) {
	sp, cctx := trace.StartOp(ctx, n.Explain())
	op, err := buildSerialOp(cctx, n, counters)
	if err != nil {
		return nil, err
	}
	return wrapOp(op, sp), nil
}

// buildSerialOp is the span-free body of BuildOperatorContext; recursive
// child builds go back through BuildOperatorContext so each node gets its
// own span nested under the parent's.
func buildSerialOp(ctx context.Context, n plan.Node, counters *Counters) (Operator, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return newScanOp(ctx, t, counters)
	case *plan.Filter:
		child, err := BuildOperatorContext(ctx, t.Child, counters)
		if err != nil {
			return nil, err
		}
		return &filterOp{child: child, pred: t.Pred}, nil
	case *plan.Project:
		child, err := BuildOperatorContext(ctx, t.Child, counters)
		if err != nil {
			return nil, err
		}
		return &projectOp{child: child, node: t, schema: t.Schema()}, nil
	case *plan.Join:
		left, err := BuildOperatorContext(ctx, t.Left, counters)
		if err != nil {
			return nil, err
		}
		right, err := BuildOperatorContext(ctx, t.Right, counters)
		if err != nil {
			return nil, err
		}
		return &hashJoinOp{node: t, left: left, right: right, schema: t.Schema()}, nil
	case *plan.Aggregate:
		child, err := BuildOperatorContext(ctx, t.Child, counters)
		if err != nil {
			return nil, err
		}
		return &hashAggOp{node: t, child: child}, nil
	case *plan.Sort:
		child, err := BuildOperatorContext(ctx, t.Child, counters)
		if err != nil {
			return nil, err
		}
		return &sortOp{node: t, child: child}, nil
	case *plan.Limit:
		child, err := BuildOperatorContext(ctx, t.Child, counters)
		if err != nil {
			return nil, err
		}
		return &limitOp{child: child, n: t.N}, nil
	}
	return nil, fmt.Errorf("exec: unknown plan node %T", n)
}

// Run executes a logical plan to completion, materializing the result.
func Run(root plan.Node) (*Result, error) {
	return RunContext(context.Background(), root)
}

// RunContext executes a logical plan to completion under ctx. Scans check
// the context between batches, so a deadline or cancellation aborts the
// query mid-scan with ctx.Err() rather than running to completion.
func RunContext(ctx context.Context, root plan.Node) (*Result, error) {
	var counters Counters
	op, err := BuildOperatorContext(ctx, root, &counters)
	if err != nil {
		return nil, err
	}
	return drainOperator(ctx, op, root.Schema(), &counters)
}

// drainOperator opens op, drains it to a materialized Result under ctx,
// and closes it. Shared by the serial and morsel-parallel entry points.
func drainOperator(ctx context.Context, op Operator, schema storage.Schema, counters *Counters) (*Result, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	res := &Result{Schema: schema}
	for {
		if err := ctx.Err(); err != nil {
			_ = op.Close()
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		for i, row := range b.Rows {
			res.Rows = append(res.Rows, row)
			if b.Weights != nil {
				if res.Weights == nil {
					res.Weights = make([]float64, len(res.Rows)-1)
					for j := range res.Weights {
						res.Weights[j] = 1
					}
				}
				res.Weights = append(res.Weights, b.Weights[i])
			} else if res.Weights != nil {
				res.Weights = append(res.Weights, 1)
			}
			if b.Details != nil {
				if res.Details == nil {
					res.Details = make([]*GroupDetail, len(res.Rows)-1)
				}
				res.Details = append(res.Details, b.Details[i])
			} else if res.Details != nil {
				res.Details = append(res.Details, nil)
			}
		}
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	res.Counters = *counters
	return res, nil
}
