package exec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// parallelCatalog builds an events-like table big enough to span several
// morsels (block size 256, minMorselRows 8192 → one morsel per 8192 rows).
func parallelCatalog(t testing.TB, rows int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	tbl := storage.NewTableWithBlockSize("ev", storage.Schema{
		{Name: "k", Type: storage.TypeInt64},
		{Name: "g", Type: storage.TypeString},
		{Name: "v", Type: storage.TypeFloat64},
		{Name: "flag", Type: storage.TypeInt64},
	}, 256)
	rng := rand.New(rand.NewSource(7))
	batch := make([][]storage.Value, 0, 1024)
	for i := 0; i < rows; i++ {
		var v storage.Value
		if rng.Intn(97) == 0 {
			v = storage.NullValue(storage.TypeFloat64) // exercise NULL propagation
		} else {
			v = storage.Float64(rng.ExpFloat64() * 100)
		}
		batch = append(batch, []storage.Value{
			storage.Int64(int64(i)),
			storage.Str(fmt.Sprintf("g%02d", rng.Intn(13))),
			v,
			storage.Int64(int64(rng.Intn(2))),
		})
		if len(batch) == cap(batch) {
			if err := tbl.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := tbl.AppendRows(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Add(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

func buildPlan(t testing.TB, cat *storage.Catalog, sql string) plan.Node {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return p
}

// parallelQueries covers the morsel-eligible shapes: global aggregates,
// group-bys (ordered so output order is defined), residual filters,
// percentiles, arithmetic aggregate args, and the weighted samplers.
var parallelQueries = []string{
	"SELECT COUNT(*), SUM(v), AVG(v) FROM ev",
	"SELECT SUM(v * 2 + 1), COUNT(v) FROM ev WHERE v >= 50",
	"SELECT g, SUM(v), COUNT(*) FROM ev WHERE flag = 1 GROUP BY g ORDER BY g",
	"SELECT PERCENTILE(v, 0.5), PERCENTILE(v, 0.95) FROM ev",
	"SELECT MIN(v), MAX(v) FROM ev WHERE k % 3 = 0",
	"SELECT COUNT(*), SUM(v) FROM ev TABLESAMPLE BERNOULLI (20)",
	"SELECT g, COUNT(*) FROM ev TABLESAMPLE SYSTEM (25) GROUP BY g ORDER BY g",
	"SELECT COUNT(*) FROM ev TABLESAMPLE UNIVERSE (30) ON (g)",
}

// TestParallelMatchesSerial checks the morsel path against the serial
// Volcano operators. The two accumulate floats in different orders, so
// float aggregates compare under a relative tolerance; everything else
// must match exactly.
func TestParallelMatchesSerial(t *testing.T) {
	cat := parallelCatalog(t, 40_000)
	for _, sql := range parallelQueries {
		serial, err := Run(buildPlan(t, cat, sql))
		if err != nil {
			t.Fatalf("serial %q: %v", sql, err)
		}
		par, err := RunParallel(buildPlan(t, cat, sql), 4)
		if err != nil {
			t.Fatalf("parallel %q: %v", sql, err)
		}
		if par.NumRows() != serial.NumRows() {
			t.Fatalf("%q: %d parallel rows vs %d serial", sql, par.NumRows(), serial.NumRows())
		}
		for i := range serial.Rows {
			for j := range serial.Rows[i] {
				sv, pv := serial.Value(i, j), par.Value(i, j)
				if sv.Typ == storage.TypeFloat64 && !sv.IsNull() && !pv.IsNull() {
					s, p := sv.AsFloat(), pv.AsFloat()
					if math.Abs(s-p) > 1e-9*math.Max(1, math.Abs(s)) {
						t.Errorf("%q row %d col %d: parallel %v vs serial %v", sql, i, j, p, s)
					}
					continue
				}
				if sv != pv {
					t.Errorf("%q row %d col %d: parallel %v vs serial %v", sql, i, j, pv, sv)
				}
			}
		}
	}
}

// TestParallelWorkerInvariance is the core determinism contract: for any
// worker count the morsel grid and the merge order are the same, so the
// results — including sampled ones — must be bit-identical.
func TestParallelWorkerInvariance(t *testing.T) {
	cat := parallelCatalog(t, 40_000)
	for _, sql := range parallelQueries {
		ref, err := RunParallel(buildPlan(t, cat, sql), 1)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		for _, w := range []int{2, 3, 4, 8} {
			got, err := RunParallel(buildPlan(t, cat, sql), w)
			if err != nil {
				t.Fatalf("%q W=%d: %v", sql, w, err)
			}
			if got.NumRows() != ref.NumRows() {
				t.Fatalf("%q W=%d: %d rows vs %d at W=1", sql, w, got.NumRows(), ref.NumRows())
			}
			for i := range ref.Rows {
				for j := range ref.Rows[i] {
					rv, gv := ref.Value(i, j), got.Value(i, j)
					if rv.Typ == storage.TypeFloat64 && !rv.IsNull() && !gv.IsNull() {
						if math.Float64bits(rv.AsFloat()) != math.Float64bits(gv.AsFloat()) {
							t.Errorf("%q W=%d row %d col %d: %v not bit-identical to %v",
								sql, w, i, j, gv.AsFloat(), rv.AsFloat())
						}
						continue
					}
					if rv != gv {
						t.Errorf("%q W=%d row %d col %d: %v vs %v", sql, w, i, j, gv, rv)
					}
				}
			}
			if got.Counters.RowsScanned != ref.Counters.RowsScanned {
				t.Errorf("%q W=%d: scanned %d rows vs %d at W=1",
					sql, w, got.Counters.RowsScanned, ref.Counters.RowsScanned)
			}
		}
	}
}

// TestParallelDistinctFallsBackSerial: the distinct sampler is stateful
// (per-stratum pass counts depend on scan order), so the morsel path must
// decline it and the result must equal the serial executor's exactly.
func TestParallelDistinctFallsBackSerial(t *testing.T) {
	cat := parallelCatalog(t, 20_000)
	sql := "SELECT g, COUNT(*) FROM ev TABLESAMPLE DISTINCT (10, 50) ON (g) GROUP BY g ORDER BY g"
	serial, err := Run(buildPlan(t, cat, sql))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(buildPlan(t, cat, sql), 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.NumRows() != serial.NumRows() {
		t.Fatalf("%d rows vs %d serial", par.NumRows(), serial.NumRows())
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if serial.Value(i, j) != par.Value(i, j) {
				t.Errorf("row %d col %d: %v vs %v", i, j, par.Value(i, j), serial.Value(i, j))
			}
		}
	}
}

// TestParallelCancellation: a cancelled context must stop the morsel
// workers and surface the cancellation instead of a result.
func TestParallelCancellation(t *testing.T) {
	cat := parallelCatalog(t, 40_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunParallelContext(ctx, buildPlan(t, cat, "SELECT SUM(v) FROM ev"), 4)
	if err == nil {
		t.Fatal("cancelled context produced a result")
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
}

// TestResolveWorkers pins the resolution chain: context override, then
// hint, then GOMAXPROCS, never below 1.
func TestResolveWorkers(t *testing.T) {
	bg := context.Background()
	if got := ResolveWorkers(bg, 3); got != 3 {
		t.Errorf("hint 3 resolved to %d", got)
	}
	if got := ResolveWorkers(ContextWithWorkers(bg, 2), 3); got != 2 {
		t.Errorf("context override lost to hint: %d", got)
	}
	if got := ResolveWorkers(bg, 0); got != runtime.GOMAXPROCS(0) && got != 1 {
		t.Errorf("no hint resolved to %d", got)
	}
	if got := ResolveWorkers(bg, -5); got < 1 {
		t.Errorf("negative hint resolved to %d", got)
	}
	if got := ResolveWorkers(ContextWithWorkers(bg, -1), 0); got < 1 {
		t.Errorf("negative override resolved to %d", got)
	}
}

// TestParallelRaceStress hammers the morsel executor from many goroutines
// with different worker counts while a writer appends to the live table
// and a reader takes snapshots. Answers vary as rows land (each query
// sees its own snapshot) — the test asserts absence of errors and, under
// `go test -race`, absence of data races between scans and appends.
func TestParallelRaceStress(t *testing.T) {
	cat := parallelCatalog(t, 20_000)
	tbl, err := cat.Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT COUNT(*), SUM(v) FROM ev",
		"SELECT g, AVG(v) FROM ev WHERE flag = 1 GROUP BY g ORDER BY g",
		"SELECT COUNT(*) FROM ev TABLESAMPLE BERNOULLI (30)",
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				w := 1 + (q+iter)%4
				ctx := ContextWithWorkers(context.Background(), w)
				if _, err := RunParallelContext(ctx, buildPlan(t, cat, queries[(q+iter)%len(queries)]), 0); err != nil {
					errc <- fmt.Errorf("query goroutine %d iter %d (W=%d): %w", q, iter, w, err)
					return
				}
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			rows := make([][]storage.Value, 64)
			for r := range rows {
				rows[r] = []storage.Value{
					storage.Int64(int64(1_000_000 + i*64 + r)),
					storage.Str("gx"),
					storage.Float64(float64(i)),
					storage.Int64(0),
				}
			}
			if err := tbl.AppendRows(rows); err != nil {
				errc <- fmt.Errorf("writer batch %d: %w", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			snap := tbl.Snapshot()
			if snap.NumRows() < 20_000 {
				errc <- fmt.Errorf("snapshot %d saw %d rows", i, snap.NumRows())
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
