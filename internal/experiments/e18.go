package experiments

import (
	"math"

	"repro/internal/sample"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() {
	register("E18", "Neyman vs equal-cap stratified allocation at equal storage", runE18)
}

// E18 — allocation ablation. Claim (STRAT, in the surveyed lineage):
// splitting a fixed sample budget across strata in proportion to N_h·S_h
// (Neyman allocation) minimizes the variance of totals; equal per-stratum
// caps — the simple BlinkDB-style rule — waste budget on quiet strata.
// The gap grows with the heterogeneity of per-stratum spreads.
func runE18(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 32, Skew: 0, ValueDist: "lognormal"})
	if err != nil {
		return nil, err
	}
	tbl := ev.Table

	// Make the strata heterogeneous: scale each group's values by its id,
	// so spreads differ by more than an order of magnitude. We materialize
	// a derived table rather than mutating the generator's output.
	src := storage.NewTable("hetero", tbl.Schema())
	gIdx := tbl.Schema().ColumnIndex("ev_group")
	vIdx := tbl.Schema().ColumnIndex("ev_value")
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		g := row[gIdx].I
		row[vIdx] = storage.Float64(row[vIdx].F * float64(g*g))
		if err := src.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	var truth float64
	for i := 0; i < src.NumRows(); i++ {
		truth += src.Column(vIdx).Value(i).F
	}

	sumOf := func(st *sample.StratifiedResult) float64 {
		vi := st.Table.Schema().ColumnIndex("ev_value")
		wi := st.Table.Schema().ColumnIndex(sample.WeightColumn)
		var sum float64
		for i := 0; i < st.Table.NumRows(); i++ {
			sum += st.Table.Column(vi).Value(i).F * st.Table.Column(wi).Value(i).F
		}
		return sum
	}

	t := &Table{ID: "E18", Title: "stratified allocation: Neyman vs equal caps (SUM, equal storage)",
		Header: []string{"budget_rows", "method", "mean_rel_err", "max_rel_err", "rows_used"}}
	// Budgets scale with the table so the allocation pressure (budget ≪
	// stratum sizes) is preserved at every experiment scale.
	budgets := []int{maxInt(s.Rows/600, 96), maxInt(s.Rows/150, 384), maxInt(s.Rows/40, 1536)}
	for _, budget := range budgets {
		capEq := budget / 32
		if capEq < 1 {
			capEq = 1
		}
		var neyErr, neyMax, eqErr, eqMax float64
		var neyRows, eqRows int
		for tr := 0; tr < s.Trials; tr++ {
			ney, err := sample.BuildStratifiedNeyman(src, sample.NeymanConfig{
				KeyColumns: []string{"ev_group"}, ValueColumn: "ev_value",
				TotalBudget: budget, Seed: s.Seed + int64(tr)*11}, "ny")
			if err != nil {
				return nil, err
			}
			eq, err := sample.BuildStratified(src, sample.StratifiedConfig{
				KeyColumns: []string{"ev_group"}, CapPerStratum: capEq,
				Seed: s.Seed + int64(tr)*11}, "eq")
			if err != nil {
				return nil, err
			}
			re := math.Abs(sumOf(ney)-truth) / truth
			neyErr += re
			neyMax = math.Max(neyMax, re)
			neyRows = ney.SampleRows
			re = math.Abs(sumOf(eq)-truth) / truth
			eqErr += re
			eqMax = math.Max(eqMax, re)
			eqRows = eq.SampleRows
		}
		n := float64(s.Trials)
		t.AddRow(itoa(int64(budget)), "neyman", f4(neyErr/n), f4(neyMax), itoa(int64(neyRows)))
		t.AddRow(itoa(int64(budget)), "equal-cap", f4(eqErr/n), f4(eqMax), itoa(int64(eqRows)))
	}
	t.AddNote("strata spreads differ by ~3 orders of magnitude (value scaled by group id squared)")
	t.AddNote("Neyman spends the budget where the variance lives; equal caps pay the quiet strata the same")
	return t, nil
}
