package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() {
	register("E1", "uniform-sampling error vs sampling rate (SUM/COUNT/AVG)", runE1)
	register("E2", "work saved vs sampling rate; crossover where sampling stops paying", runE2)
	register("E3", "group coverage on skewed data: uniform vs distinct sampler", runE3)
	register("E4", "join sampling: uniform both sides vs universe vs one side", runE4)
}

// runSampled executes sql after forcing the given sampler spec onto the
// named table, returning the annotated executor result. workers sets the
// morsel-parallel worker count (0 defers to runtime.GOMAXPROCS).
func runSampled(cat *storage.Catalog, sql, table string, spec *sample.Spec, workers int) (*exec.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(stmt, cat)
	if err != nil {
		return nil, err
	}
	if spec != nil {
		if !plan.ApplySampler(p, table, *spec) {
			return nil, fmt.Errorf("experiments: table %s not scanned", table)
		}
		// Re-run the weight alignment in case of correlated samplers.
		_ = plan.Optimize(p)
	}
	return exec.RunParallel(p, workers)
}

func exactFloat(cat *storage.Catalog, sql string, workers int) (float64, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, err
	}
	res, err := (&core.ExactEngine{Catalog: cat, Workers: workers}).Execute(stmt, core.DefaultErrorSpec)
	if err != nil {
		return 0, err
	}
	if res.NumRows() == 0 {
		return 0, fmt.Errorf("experiments: empty exact result")
	}
	return res.Float(0, 0), nil
}

// E1 — uniform sampling error vs rate. Claim: relative error of linear
// aggregates shrinks as ~1/sqrt(n·p); at moderate rates errors are well
// under a percent, which is why sampling-based AQP is viable at all.
func runE1(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 16, ValueDist: "exp"})
	if err != nil {
		return nil, err
	}
	aggs := []struct{ name, sql string }{
		{"SUM", "SELECT SUM(ev_value) FROM events"},
		{"COUNT", "SELECT COUNT(*) FROM events"},
		{"AVG", "SELECT AVG(ev_value) FROM events"},
	}
	truth := make([]float64, len(aggs))
	for i, a := range aggs {
		truth[i], err = exactFloat(ev.Catalog, a.sql, s.Workers)
		if err != nil {
			return nil, err
		}
	}
	t := &Table{ID: "E1", Title: "uniform-sampling relative error vs rate",
		Header: []string{"rate", "agg", "mean_rel_err", "max_rel_err", "mean_ci_rel", "theory~1/sqrt(np)"}}
	rates := []float64{0.001, 0.005, 0.01, 0.05, 0.1}
	for _, rate := range rates {
		for i, a := range aggs {
			var sumErr, maxErr, sumCI float64
			for tr := 0; tr < s.Trials; tr++ {
				spec := &sample.Spec{Kind: sample.KindUniformRow, Rate: rate,
					Seed: s.Seed + int64(tr)*1001}
				res, err := runSampled(ev.Catalog, a.sql, "events", spec, s.Workers)
				if err != nil {
					return nil, err
				}
				if res.NumRows() == 0 {
					sumErr++
					maxErr = 1
					continue
				}
				est := res.Rows[0][0].AsFloat()
				re := relErr(est, truth[i])
				sumErr += re
				if re > maxErr {
					maxErr = re
				}
				if res.Details != nil && res.Details[0] != nil {
					d := res.Details[0].Aggs[0]
					iv := stats.CLTInterval(d.Estimate, d.Variance, d.N, 0.95)
					sumCI += iv.RelHalfWidth(est)
				}
			}
			n := float64(s.Trials)
			t.AddRow(pct(rate), a.name, f4(sumErr/n), f4(maxErr), f4(sumCI/n),
				f4(1/math.Sqrt(float64(s.Rows)*rate)))
		}
	}
	t.AddNote("errors scale ~1/sqrt(n·p): halving error costs 4x the sample — the core AQP trade")
	return t, nil
}

// E2 — work saved vs rate. Claim: sampling saves work roughly in
// proportion to 1-p for block sampling (which skips I/O), much less for
// row sampling (which must still scan everything), and above ~10% the
// speedup evaporates — the crossover where exact execution wins.
func runE2(s Scale) (*Table, error) {
	star, err := workload.GenerateStar(workload.Config{
		Seed: s.Seed, LineitemRows: s.Rows, BlockSize: 1024})
	if err != nil {
		return nil, err
	}
	sql := "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem"
	truth, err := exactFloat(star.Catalog, sql, s.Workers)
	if err != nil {
		return nil, err
	}
	timeIt := func(spec *sample.Spec) (time.Duration, *exec.Result, error) {
		var best time.Duration
		var last *exec.Result
		reps := 3
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			res, err := runSampled(star.Catalog, sql, "lineitem", spec, s.Workers)
			if err != nil {
				return 0, nil, err
			}
			el := time.Since(t0)
			if best == 0 || el < best {
				best = el
			}
			last = res
		}
		return best, last, nil
	}
	exactTime, _, err := timeIt(nil)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "E2", Title: "work saved vs sampling rate",
		Header: []string{"rate", "method", "latency", "speedup", "scan_frac", "rel_err"}}
	t.AddRow("100%", "exact", exactTime.Round(time.Microsecond).String(), "1.00", "1.0000", "0.0000")
	for _, rate := range []float64{0.001, 0.01, 0.05, 0.1, 0.25} {
		for _, m := range []struct {
			name string
			kind sample.Kind
		}{{"row-bernoulli", sample.KindUniformRow}, {"block", sample.KindBlock}} {
			spec := &sample.Spec{Kind: m.kind, Rate: rate, Seed: s.Seed + 7}
			el, res, err := timeIt(spec)
			if err != nil {
				return nil, err
			}
			est := 0.0
			if res.NumRows() > 0 {
				est = res.Rows[0][0].AsFloat()
			}
			scanFrac := float64(res.Counters.RowsScanned) / float64(s.Rows)
			t.AddRow(pct(rate), m.name, el.Round(time.Microsecond).String(),
				f2(float64(exactTime)/float64(el)), f4(scanFrac), f4(relErr(est, truth)))
		}
	}
	t.AddNote("block sampling reduces rows *scanned*; row sampling only reduces downstream work")
	t.AddNote("as the rate grows the speedup decays toward 1 — sampling above ~10%% is not worth it")
	return t, nil
}

// E3 — group coverage. Claim: uniform sampling misses rare groups on
// skewed data; the distinct sampler (pass-through of the first K rows per
// stratum) keeps every group while still thinning heavy hitters.
func runE3(s Scale) (*Table, error) {
	t := &Table{ID: "E3", Title: "group coverage under skew: uniform vs distinct sampler",
		Header: []string{"zipf_skew", "groups", "sampler", "missing_groups", "max_group_relerr", "rows_kept"}}
	rate := 0.01
	groups := 400
	for _, skew := range []float64{0, 1.1, 1.4} {
		ev, err := workload.GenerateEvents(workload.EventsConfig{
			Seed: s.Seed + int64(skew*10), Rows: s.Rows, NumGroups: groups, Skew: skew})
		if err != nil {
			return nil, err
		}
		sql := "SELECT ev_group, COUNT(*) FROM events GROUP BY ev_group"
		exactStmt, _ := sqlparse.Parse(sql)
		exactRes, err := core.NewExactEngine(ev.Catalog).Execute(exactStmt, core.DefaultErrorSpec)
		if err != nil {
			return nil, err
		}
		truthByGroup := make(map[int64]float64, exactRes.NumRows())
		for i := 0; i < exactRes.NumRows(); i++ {
			truthByGroup[exactRes.Rows[i][0].I] = exactRes.Float(i, 1)
		}
		for _, m := range []struct {
			name string
			spec sample.Spec
		}{
			{"uniform", sample.Spec{Kind: sample.KindUniformRow, Rate: rate}},
			{"distinct", sample.Spec{Kind: sample.KindDistinct, Rate: rate,
				KeyColumns: []string{"ev_group"}, KeepThreshold: 30}},
		} {
			var missing, rows int
			var maxRel float64
			for tr := 0; tr < s.Trials; tr++ {
				spec := m.spec
				spec.Seed = s.Seed + int64(tr)*31
				res, err := runSampled(ev.Catalog, sql, "events", &spec, s.Workers)
				if err != nil {
					return nil, err
				}
				seen := make(map[int64]float64, res.NumRows())
				for i := 0; i < res.NumRows(); i++ {
					seen[res.Rows[i][0].I] = res.Rows[i][1].AsFloat()
				}
				rows += int(res.Counters.RowsEmitted)
				for g, truth := range truthByGroup {
					est, ok := seen[g]
					if !ok {
						missing++
						continue
					}
					if re := relErr(est, truth); re > maxRel {
						maxRel = re
					}
				}
			}
			t.AddRow(f2(skew), itoa(int64(len(truthByGroup))), m.name,
				f2(float64(missing)/float64(s.Trials)), f4(maxRel),
				itoa(int64(rows/s.Trials)))
		}
	}
	t.AddNote("the distinct sampler never misses a group (pass-through of first K rows per stratum)")
	t.AddNote("uniform sampling misses tail groups once skew concentrates mass in the head")
	return t, nil
}

// E4 — join sampling. Claim: independently uniform-sampling both join
// inputs at rate p keeps only ~p² of join output and inflates error;
// the universe sampler keeps aligned key subsets so the join retains a
// p-fraction with far lower variance; sampling only one side is the safe
// middle ground.
func runE4(s Scale) (*Table, error) {
	star, err := workload.GenerateStar(workload.Config{Seed: s.Seed, LineitemRows: s.Rows})
	if err != nil {
		return nil, err
	}
	sql := "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem JOIN orders ON l_orderkey = o_orderkey"
	stmt, _ := sqlparse.Parse(sql)
	exactRes, err := core.NewExactEngine(star.Catalog).Execute(stmt, core.DefaultErrorSpec)
	if err != nil {
		return nil, err
	}
	truthCount := exactRes.Float(0, 0)
	truthSum := exactRes.Float(0, 1)

	t := &Table{ID: "E4", Title: "join over samples: who keeps the join alive",
		Header: []string{"rate", "strategy", "mean_out_rows", "count_relerr", "sum_relerr"}}

	type strategy struct {
		name  string
		build func(p plan.Node, rate float64, seed int64)
	}
	strategies := []strategy{
		{"uniform-both", func(p plan.Node, rate float64, seed int64) {
			plan.ApplySampler(p, "lineitem", sample.Spec{Kind: sample.KindUniformRow, Rate: rate, Seed: seed})
			plan.ApplySampler(p, "orders", sample.Spec{Kind: sample.KindUniformRow, Rate: rate, Seed: seed + 5})
		}},
		{"universe-both", func(p plan.Node, rate float64, seed int64) {
			salt := uint64(seed)*2654435761 + 99
			plan.ApplySampler(p, "lineitem", sample.Spec{Kind: sample.KindUniverse, Rate: rate,
				KeyColumns: []string{"l_orderkey"}, Salt: salt})
			plan.ApplySampler(p, "orders", sample.Spec{Kind: sample.KindUniverse, Rate: rate,
				KeyColumns: []string{"o_orderkey"}, Salt: salt, NoWeight: true})
		}},
		{"uniform-one-side", func(p plan.Node, rate float64, seed int64) {
			plan.ApplySampler(p, "lineitem", sample.Spec{Kind: sample.KindUniformRow, Rate: rate, Seed: seed})
		}},
	}
	for _, rate := range []float64{0.01, 0.05, 0.1} {
		for _, st := range strategies {
			var outRows int64
			var cErr, sErr float64
			for tr := 0; tr < s.Trials; tr++ {
				stmt2, _ := sqlparse.Parse(sql)
				p, err := plan.Build(stmt2, star.Catalog)
				if err != nil {
					return nil, err
				}
				st.build(p, rate, s.Seed+int64(tr)*77)
				res, err := exec.RunParallel(p, s.Workers)
				if err != nil {
					return nil, err
				}
				if res.NumRows() == 0 || res.Details == nil {
					cErr++
					sErr++
					continue
				}
				d := res.Details[0]
				outRows += int64(d.GroupN)
				cErr += relErr(d.Aggs[0].Estimate, truthCount)
				sErr += relErr(d.Aggs[1].Estimate, truthSum)
			}
			n := float64(s.Trials)
			t.AddRow(pct(rate), st.name, itoa(outRows/int64(s.Trials)), f4(cErr/n), f4(sErr/n))
		}
	}
	t.AddNote("uniform-both keeps ~p² of the join output; universe-both keeps ~p with aligned keys")
	t.AddNote("the error gap is the reason Quickr introduced the universe sampler for joins")
	return t, nil
}
