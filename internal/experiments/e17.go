package experiments

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func init() {
	register("E17", "per-query engine comparison across the star-schema template suite", runE17)
}

// E17 — the per-query view. Claim: engine choice is per-query, not
// per-system: across a realistic template suite each engine wins on some
// queries and degrades or falls back on others. This is the
// query-granularity version of E12's matrix.
func runE17(s Scale) (*Table, error) {
	star, err := workload.GenerateStar(workload.Config{Seed: s.Seed, LineitemRows: s.Rows})
	if err != nil {
		return nil, err
	}
	onCfg := core.DefaultOnlineConfig()
	onCfg.MinTableRows = 1000
	onCfg.DefaultRate = 0.02
	online := core.NewOnlineEngine(star.Catalog, onCfg)
	olaCfg := core.DefaultOLAConfig()
	olaCfg.ChunkRows = maxInt(s.Rows/20, 1000)
	ola := core.NewOLAEngine(star.Catalog, olaCfg)
	exact := core.NewExactEngine(star.Catalog)

	spec := core.ErrorSpec{RelError: 0.1, Confidence: 0.95}
	rng := rand.New(rand.NewSource(s.Seed))

	t := &Table{ID: "E17", Title: "per-query comparison over the star template suite (10% spec)",
		Header: []string{"template", "engine", "latency", "speedup", "max_relerr", "note"}}

	for _, tpl := range workload.StarTemplates() {
		sql := tpl.Instantiate(rng)
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		exRes, err := exact.Execute(stmt, spec)
		if err != nil {
			return nil, err
		}
		exTime := time.Since(t0)
		t.AddRow(tpl.Name, "exact", exTime.Round(time.Microsecond).String(), "1.00", "0.0000", "")

		for _, eng := range []struct {
			name string
			run  func(*sqlparse.SelectStmt) (*core.Result, error)
		}{
			{"online", func(st *sqlparse.SelectStmt) (*core.Result, error) { return online.Execute(st, spec) }},
			{"ola", func(st *sqlparse.SelectStmt) (*core.Result, error) { return ola.Execute(st, spec) }},
		} {
			st2, _ := sqlparse.Parse(sql)
			t0 = time.Now()
			res, err := eng.run(st2)
			if err != nil {
				t.AddRow(tpl.Name, eng.name, "-", "-", "-", "error: "+err.Error())
				continue
			}
			el := time.Since(t0)
			note := ""
			if res.Diagnostics.FellBackToExact {
				note = "fell back to exact"
			}
			maxErr, comparable := resultMaxRelErr(exRes, res)
			errStr := f4(maxErr)
			if !comparable {
				errStr = "shape-mismatch"
			}
			t.AddRow(tpl.Name, eng.name, el.Round(time.Microsecond).String(),
				f2(float64(exTime)/float64(el)), errStr, note)
		}
	}
	t.AddNote("engine choice is per-query: samplers shine on scans and FK joins, fall back on tiny or unsupported shapes")
	return t, nil
}

// resultMaxRelErr compares aggregate items of two results row-aligned.
func resultMaxRelErr(exact, approx *core.Result) (float64, bool) {
	if exact.NumRows() != approx.NumRows() {
		return 1, false
	}
	var m float64
	for i := range exact.Rows {
		for j := range exact.Rows[i] {
			if j >= len(exact.Items[i]) || !exact.Items[i][j].IsAggregate {
				continue
			}
			if j >= len(approx.Rows[i]) {
				return 1, false
			}
			re := relErr(approx.Float(i, j), exact.Float(i, j))
			if re > m {
				m = re
			}
		}
	}
	return m, true
}
