package experiments

import (
	"fmt"

	"repro/internal/sample"
	"repro/internal/workload"
)

func init() {
	register("E19", "approximate percentiles: sampled quantiles with DKW distribution bounds", runE19)
}

// E19 — percentile approximation. Claim (the distribution-precision side
// of the design space, à la Sample+Seek): quantiles are not linear
// aggregates, yet a uniform sample answers them with *distribution*
// guarantees — the DKW inequality bounds the empirical CDF's deviation,
// so the sampled q-quantile is bracketed by the sample's (q±ε)-quantiles.
func runE19(s Scale) (*Table, error) {
	ev, err := workload.GenerateEvents(workload.EventsConfig{
		Seed: s.Seed, Rows: s.Rows, NumGroups: 8, ValueDist: "lognormal"})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "E19", Title: "sampled percentiles with DKW intervals (lognormal values)",
		Header: []string{"quantile", "rate", "mean_rel_err", "max_rel_err", "dkw_coverage", "mean_rel_width"}}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		sql := fmt.Sprintf("SELECT PERCENTILE(ev_value, %g) FROM events", q)
		truth, err := exactFloat(ev.Catalog, sql, s.Workers)
		if err != nil {
			return nil, err
		}
		for _, rate := range []float64{0.01, 0.05} {
			var sumErr, maxErr, width float64
			covered := 0
			for tr := 0; tr < s.Trials; tr++ {
				spec := &sample.Spec{Kind: sample.KindUniformRow, Rate: rate,
					Seed: s.Seed + int64(tr)*23}
				res, err := runSampled(ev.Catalog, sql, "events", spec, s.Workers)
				if err != nil {
					return nil, err
				}
				if res.NumRows() == 0 {
					maxErr = 1
					sumErr++
					continue
				}
				est := res.Rows[0][0].AsFloat()
				re := relErr(est, truth)
				sumErr += re
				if re > maxErr {
					maxErr = re
				}
				d := res.Details[0].Aggs[0]
				if truth >= d.Lo && truth <= d.Hi {
					covered++
				}
				if truth > 0 {
					width += (d.Hi - d.Lo) / truth
				}
			}
			n := float64(s.Trials)
			t.AddRow(fmt.Sprintf("p%g", q*100), pct(rate), f4(sumErr/n), f4(maxErr),
				pct(float64(covered)/n), f4(width/n))
		}
	}
	t.AddNote("DKW brackets the true quantile at ~95%% despite PERCENTILE being non-linear")
	t.AddNote("tail quantiles (p99) cost more: the CDF is flat there, so q±ε spans a wide value range")
	return t, nil
}
